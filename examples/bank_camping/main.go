// Bank camping: reproduce the paper's §V-B pathology, where a kernel's
// access pattern funnels every request onto one DRAM bank (a new row each
// time) while the other banks sit idle, and contrast it with the same
// kernel striding at unit distance so requests interleave across banks.
//
// The demo runs the strided_saxpy probe twice under the GTX 1050 model —
// once with the camping stride (RowBytes*NumBanks bytes between
// consecutive threads), once streaming — and renders the per-bank DRAM
// efficiency/utilization heat maps AerialVision plots in the paper's
// Figs. 9-14, plus the per-kernel memory counters. Camped traffic shows
// one hot row in the heat map and an average segment latency tens of
// times the streaming run's; spread traffic lights every bank.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/aerial"
	"repro/internal/core"
)

const (
	ctas    = 4
	threads = 64
)

func run(name string, stride int) {
	res, err := core.RunStridedSaxpy(core.GTX1050, 1, ctas, threads, stride)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Engine.Stats()
	fmt.Printf("\n--- %s (stride %d floats) ---\n", name, stride)
	fmt.Printf("%d cycles, avg segment latency %.1f, DRAM row hits %d/%d, ingress stalls %d\n",
		res.Cycles, st.AvgSegmentLatency(), st.DRAMRowHits, st.DRAMAccesses, st.IngressStallCycles)
	aerial.KernelMemSummary(os.Stdout, "per-kernel memory counters", []aerial.KernelMemRow{{
		Name:           res.Kernel.Name,
		Launches:       1,
		L2Accesses:     res.Kernel.L2Accesses,
		L2Hits:         res.Kernel.L2Hits,
		DRAMAccesses:   res.Kernel.DRAMAccesses,
		DRAMRowHits:    res.Kernel.DRAMRowHits,
		MemStallCycles: res.Kernel.MemStallCycles,
	}})
	for pi, ch := range res.Engine.Partitions() {
		reads, writes, _, busy := ch.Totals()
		if reads+writes == 0 {
			continue
		}
		fmt.Printf("partition %d: %d reads, %d writes, %d busy cycles\n", pi, reads, writes, busy)
		aerial.HeatMap(os.Stdout, fmt.Sprintf("DRAM efficiency, partition %d (banks bottom-up)", pi),
			ch.EfficiencySeries(), func(b int) string { return fmt.Sprintf("bank%d", b) },
			res.Engine.Stats().Interval())
		aerial.HeatMap(os.Stdout, fmt.Sprintf("DRAM utilization, partition %d (banks bottom-up)", pi),
			ch.UtilizationSeries(), func(b int) string { return fmt.Sprintf("bank%d", b) },
			res.Engine.Stats().Interval())
	}
}

func main() {
	cfg, err := core.GTX1050.TimingConfig()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bank camping (paper §V-B) vs bank-parallel streaming, GTX 1050 model")
	run("camped", core.CampingStrideFloats(cfg))
	run("streaming", 1)
}
