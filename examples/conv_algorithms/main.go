// conv_algorithms sweeps every cuDNN convolution algorithm of the paper's
// §V-A case study on the GTX 1080 Ti timing model and prints a comparison
// table plus the warp-issue highlights the paper discusses (Winograd
// Nonfused's high IPC, the backward-filter load imbalance, Implicit
// GEMM's idle/data-hazard slots).
package main

import (
	"fmt"
	"log"

	gpgpusim "repro"
	"repro/internal/core"
)

func main() {
	shape := core.DefaultConvShape()
	fmt.Printf("conv_sample sweep: N=%d C=%d HxW=%dx%d K=%d R=%d pad=%d (GTX 1080 Ti model)\n\n",
		shape.N, shape.C, shape.H, shape.W, shape.K, shape.R, shape.Pad)
	fmt.Printf("%-10s %-18s %10s %7s %8s\n", "direction", "algorithm", "cycles", "IPC", "kernels")

	type key struct {
		dir  core.ConvDirection
		algo string
	}
	ipcs := map[key]float64{}
	for _, dir := range []core.ConvDirection{core.Forward, core.BackwardData, core.BackwardFilter} {
		for _, algo := range core.AlgorithmsFor(dir) {
			res, err := gpgpusim.RunConvSample(gpgpusim.GTX1080Ti, dir, algo, shape)
			if err != nil {
				log.Fatalf("%s/%s: %v", dir, algo, err)
			}
			ipc := res.Engine.Stats().TotalIPC(res.Cycles)
			ipcs[key{dir, algo}] = ipc
			fmt.Printf("%-10s %-18s %10d %7.2f %8d\n", dir, algo, res.Cycles, ipc, len(res.Kernels))
		}
		fmt.Println()
	}

	// Paper §V-C: "The Winograd Nonfused algorithm has the highest IPCs
	// for all three types of convolution."
	for _, dir := range []core.ConvDirection{core.Forward, core.BackwardData, core.BackwardFilter} {
		best, bestAlgo := 0.0, ""
		for _, algo := range core.AlgorithmsFor(dir) {
			if v := ipcs[key{dir, algo}]; v > best {
				best, bestAlgo = v, algo
			}
		}
		fmt.Printf("highest IPC for %-10s: %s (%.2f)\n", dir, bestAlgo, best)
	}
}
