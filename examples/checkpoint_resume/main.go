// checkpoint_resume demonstrates the paper's §III-F flow: fast-forward an
// application in the cheap functional mode to a chosen kernel/CTA point,
// snapshot Data1 (registers, SIMT stacks, shared memory) and Data2
// (global memory), then resume inside the kernel under the 7-8x slower
// cycle-level performance model.
package main

import (
	"fmt"
	"log"

	gpgpusim "repro"
	"repro/internal/checkpoint"
	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/timing"
)

// app is the replayed application: relu -> tiled GEMM -> relu.
func app(ctx *cudart.Context) (uint64, error) {
	h, err := cudnn.Create(ctx)
	if err != nil {
		return 0, err
	}
	m, n, k := 64, 48, 32
	x := make([]float32, m*k)
	w := make([]float32, k*n)
	for i := range x {
		x[i] = float32(i%9)*0.5 - 2
	}
	for i := range w {
		w[i] = float32(i%5)*0.25 - 0.5
	}
	px, err := ctx.Malloc(uint64(4 * len(x)))
	if err != nil {
		return 0, err
	}
	ctx.MemcpyF32HtoD(px, x)
	pw, err := ctx.Malloc(uint64(4 * len(w)))
	if err != nil {
		return 0, err
	}
	ctx.MemcpyF32HtoD(pw, w)
	pa, err := ctx.Malloc(uint64(4 * len(x)))
	if err != nil {
		return 0, err
	}
	pc, err := ctx.Malloc(uint64(4 * m * n))
	if err != nil {
		return 0, err
	}
	if err := h.ActivationForward(px, pa, len(x)); err != nil {
		return 0, err
	}
	if err := h.Gemm(pa, pw, pc, m, n, k, 1, 0); err != nil {
		return 0, err
	}
	return pc, h.ActivationForward(pc, pc, m*n)
}

func main() {
	// --- capture phase: functional fast-forward to kernel 1, CTA 2 ---
	point := gpgpusim.CheckpointPoint{KernelX: 1, CTAM: 2, CTAT: 1, InstrY: 40}
	ctx := gpgpusim.NewContext(gpgpusim.BugSet{})
	cap := &checkpoint.CaptureRunner{Ctx: ctx, P: point}
	ctx.SetRunner(cap)
	if _, err := app(ctx); err != nil {
		log.Fatal(err)
	}
	blob, err := cap.State.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint at kernel x=%d, CTA M=%d, t=%d, y=%d instructions/warp\n",
		point.KernelX, point.CTAM, point.CTAT, point.InstrY)
	fmt.Printf("  kernel: %s; in-flight CTAs saved: %d; serialized size: %d bytes\n",
		cap.State.Kernel, len(cap.State.CTAs), len(blob))

	// --- resume phase: performance mode from the checkpoint ---
	st, err := checkpoint.Decode(blob)
	if err != nil {
		log.Fatal(err)
	}
	ctx2 := gpgpusim.NewContext(gpgpusim.BugSet{})
	eng, err := timing.New(timing.GTX1050())
	if err != nil {
		log.Fatal(err)
	}
	res := &checkpoint.ResumeRunner{Ctx: ctx2, State: st, Engine: eng}
	ctx2.SetRunner(res)
	res.Restore()
	pc, err := app(ctx2)
	if err != nil {
		log.Fatal(err)
	}
	out := ctx2.MemcpyF32DtoH(pc, 6)
	fmt.Printf("resumed in performance mode: %d cycles simulated\n", eng.Cycle())
	fmt.Printf("final output[0:6] = %v\n", out)
}
