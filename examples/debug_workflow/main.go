// debug_workflow reproduces the paper's §III-D debugging episode as a
// library user would: inject GPGPU-Sim's kind of functional bug into the
// simulator, watch the MNIST-style convolution break, and let the debug
// tool walk its three steps down to the first faulty instruction.
package main

import (
	"fmt"
	"log"

	gpgpusim "repro"
	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/ptx"
)

func main() {
	workload := func(ctx *cudart.Context) error {
		h, err := cudnn.Create(ctx)
		if err != nil {
			return err
		}
		xd := cudnn.TensorDesc{N: 1, C: 1, H: 28, W: 28}
		fd := cudnn.FilterDesc{K: 4, C: 1, R: 5, S: 5}
		cd := cudnn.ConvDesc{Pad: 0, Stride: 1}
		x := make([]float32, xd.Count())
		for i := range x {
			x[i] = float32(i%29) * 0.1
		}
		w := make([]float32, fd.Count())
		for i := range w {
			w[i] = float32(i%7)*0.3 - 1
		}
		px, err := ctx.Malloc(uint64(4 * len(x)))
		if err != nil {
			return err
		}
		ctx.MemcpyF32HtoD(px, x)
		pw, err := ctx.Malloc(uint64(4 * len(w)))
		if err != nil {
			return err
		}
		ctx.MemcpyF32HtoD(pw, w)
		py, err := ctx.Malloc(uint64(4 * 4 * 24 * 24))
		if err != nil {
			return err
		}
		// The FFT algorithm: the same path in which the paper found the
		// rem bug inside fft2d_r2c_32x32 (28x28 + 5x5 -> 32x32 frames).
		_, err = h.ConvolutionForward(cudnn.FwdAlgoFFT, px, xd, pw, fd, cd, py)
		return err
	}

	fmt.Println("injecting a faulty rem implementation (the paper's bug class)…")
	tool := &gpgpusim.DebugTool{
		Workload: workload,
		Bugs:     gpgpusim.BugSet{BreakOp: ptx.OpRem},
	}
	rep, err := tool.Run()
	if err != nil {
		log.Fatal(err)
	}
	if rep.BadLaunch < 0 {
		log.Fatal("the injected bug produced no divergence")
	}
	fmt.Printf("step 2: first incorrect API call: %s\n", rep.BadAPI)
	fmt.Printf("        first incorrect kernel:   %s (launch %d)\n", rep.BadKernel, rep.BadLaunch)
	fmt.Printf("step 3: first faulty instruction: pc %d: %s\n", rep.BadPC, rep.BadInstr)
	fmt.Printf("        golden=%#x simulator=%#x (thread %d)\n", rep.GoldenVal, rep.BuggyVal, rep.BadThread)
}
