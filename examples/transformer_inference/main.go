// Transformer inference on the detailed timing model: a small N-layer
// encoder (embedding + positional add, pre-LN blocks with multi-head
// attention and a GELU feed-forward, final layernorm) run over a batch
// of sequences. Per layer the forward pass issues ~20 small
// heterogeneous kernels — batched NN/NT GEMMs, softmax, layernorm,
// GELU, head permutes, residual adds — exactly the kernel population the
// paper found dominates ML workloads. The demo runs the batch twice:
// once with every sequence's kernel chain on its own CUDA stream
// (overlapping in the multi-grid dispatcher), once serialized on the
// default stream, verifies both against the CPU oracle, and reports the
// per-kernel stats and the overlap speedup.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const (
	nSeqs  = 4
	seqLen = 12
)

func main() {
	res, err := core.RunTransformerSample(0, nSeqs, seqLen)
	if err != nil {
		log.Fatal(err)
	}
	cfg := res.Config
	fmt.Printf("transformer encoder: %d layers, %d heads, d_model %d, ff %d — %d sequences × %d tokens\n",
		cfg.Layers, cfg.Heads, cfg.DModel, cfg.FF, res.Seqs, res.SeqLen)
	fmt.Printf("%-20s %9s %14s %12s\n", "kernel", "launches", "warp instrs", "cycles")
	for _, a := range res.PerKernel {
		fmt.Printf("%-20s %9d %14d %12d\n", a.Name, a.Launches, a.WarpInstrs, a.Cycles)
	}
	fmt.Printf("max |sim - cpu| = %.2g over %d outputs\n", res.MaxAbsDiff, res.Seqs*res.SeqLen*cfg.DModel)
	fmt.Printf("%d sequences on %d concurrent streams: %d cycles (IPC %.2f)\n",
		res.Seqs, res.Seqs, res.ConcurrentCycles, res.IPC())
	fmt.Printf("same batch serialized on the default stream: %d cycles\n", res.SerializedCycles)
	fmt.Printf("overlap speedup: %.2fx\n", res.Speedup())
}
