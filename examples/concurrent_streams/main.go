// Concurrent streams: launch the same small kernel on several CUDA
// streams and watch the detailed timing model overlap them — the
// paper's observation that ML workloads are dominated by many small
// kernels which only keep a GPU busy when streams run concurrently.
//
// The demo runs the workload twice under the GTX 1050 model: once with
// every launch on its own stream (async copies included), once
// serialized on the legacy default stream, and reports the cycle savings.
package main

import (
	"fmt"
	"log"

	gpgpusim "repro"
)

const scalePTX = `
.version 6.0
.target sm_61
.address_size 64

.visible .entry scale(
	.param .u64 pY,
	.param .f32 pA,
	.param .u32 pIters
)
{
	.reg .pred %p<2>;
	.reg .f32 %f<3>;
	.reg .b32 %r<8>;
	.reg .b64 %rd<4>;

	ld.param.u64 %rd1, [pY];
	ld.param.f32 %f2, [pA];
	ld.param.u32 %r1, [pIters];
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mov.u32 %r4, %tid.x;
	mad.lo.s32 %r5, %r2, %r3, %r4;
	cvta.to.global.u64 %rd1, %rd1;
	mul.wide.u32 %rd2, %r5, 4;
	add.s64 %rd3, %rd1, %rd2;
	ld.global.f32 %f1, [%rd3];
	mov.u32 %r6, 0;
LOOP:
	fma.rn.f32 %f1, %f1, %f2, %f2;
	add.s32 %r6, %r6, 1;
	setp.lt.u32 %p1, %r6, %r1;
	@%p1 bra LOOP;
	st.global.f32 [%rd3], %f1;
	ret;
}
`

const (
	nStreams = 4
	nElems   = 256
	iters    = 200
)

// run executes nStreams async-copy + launch pairs — each pair on its own
// stream when concurrent, all pairs on ONE created stream otherwise — and
// returns the total engine cycles. Both variants route every copy and
// kernel through the detailed model, so the two totals are directly
// comparable: the only difference is stream-level concurrency.
func run(concurrent bool) (total uint64, err error) {
	ctx := gpgpusim.NewContext(gpgpusim.BugSet{})
	if _, err = ctx.RegisterModule(scalePTX); err != nil {
		return
	}
	eng, err := gpgpusim.NewTimingEngine(gpgpusim.GTX1050)
	if err != nil {
		return
	}
	gpgpusim.UseTiming(ctx, eng)

	// Stage every stream's input up front (sync copies are
	// device-synchronizing and would serialise queued launches).
	bufs := make([]uint64, nStreams)
	inputs := make([][]byte, nStreams)
	for i := range bufs {
		if bufs[i], err = ctx.Malloc(4 * nElems); err != nil {
			return
		}
		buf := make([]byte, 4*nElems)
		for j := range buf {
			buf[j] = byte((i + j) % 7)
		}
		inputs[i] = buf
	}

	start := eng.Cycle()
	serialStream := ctx.StreamCreate()
	for i := range bufs {
		s := serialStream
		if concurrent {
			s = ctx.StreamCreate()
		}
		// async upload rides the stream through the modelled copy engine
		if err = ctx.MemcpyHtoDAsync(bufs[i], inputs[i], s); err != nil {
			return
		}
		p := gpgpusim.NewParams().Ptr(bufs[i]).F32(1.0001).U32(iters)
		grid := gpgpusim.Dim3{X: 2}
		block := gpgpusim.Dim3{X: nElems / 2}
		if _, err = ctx.LaunchOnStream(s, "scale", grid, block, p, 0); err != nil {
			return
		}
	}
	if err = ctx.DeviceSynchronize(); err != nil {
		return
	}
	total = eng.Cycle() - start
	return
}

func main() {
	conc, err := run(true)
	if err != nil {
		log.Fatal(err)
	}
	serial, err := run(false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d copy+kernel pairs on %d concurrent streams: %d cycles\n", nStreams, nStreams, conc)
	fmt.Printf("same pairs serialized on one stream: %d cycles\n", serial)
	fmt.Printf("overlap speedup: %.2fx\n", float64(serial)/float64(conc))
}
