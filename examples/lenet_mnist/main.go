// LeNet/MNIST on the simulated GPU: the paper's evaluation workload run
// through the PyTorch-analog framework — training steps, inference, and
// the sample's self-check against the CPU reference (§IV).
package main

import (
	"fmt"
	"log"

	gpgpusim "repro"
)

func main() {
	model, _, err := gpgpusim.NewLeNet(gpgpusim.BugSet{})
	if err != nil {
		log.Fatal(err)
	}
	ds := gpgpusim.NewMNISTDataset(42)

	// A few SGD steps on the simulated GPU: forward FFT/Winograd convs,
	// backward data/filter kernels, pooling/LRN/softmax gradients.
	fmt.Println("training 6 steps on the simulated GPU…")
	images, labels := ds.Batch(2)
	for step := 0; step < 6; step++ {
		loss, err := model.TrainStep(images, labels, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  step %d: loss %.4f\n", step, loss)
	}

	// The paper's setup: classify 3 images and self-check the simulated
	// GPU's classifications against the CPU reference implementation.
	testImgs, testLabels := ds.Batch(3)
	ok, gpu, cpu, err := model.SelfCheck(testImgs, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nself-check over 3 images: agreement=%v\n", ok)
	for i := range gpu {
		fmt.Printf("  image %d: label=%d  GPU=%d  CPU=%d\n", i, testLabels[i], gpu[i], cpu[i])
	}
	if !ok {
		log.Fatal("simulated GPU diverged from the CPU reference")
	}
}
