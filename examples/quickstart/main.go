// Quickstart: write a small PTX kernel by hand, run it on the simulator in
// both functional and performance modes, and read the results back — the
// minimal end-to-end path through the public API.
package main

import (
	"fmt"
	"log"

	gpgpusim "repro"
)

const saxpyPTX = `
.version 6.0
.target sm_61
.address_size 64

.visible .entry saxpy(
	.param .u64 pX,
	.param .u64 pY,
	.param .f32 pA,
	.param .u32 pN
)
{
	.reg .pred %p<2>;
	.reg .f32 %f<5>;
	.reg .b32 %r<6>;
	.reg .b64 %rd<6>;

	ld.param.u64 %rd1, [pX];
	ld.param.u64 %rd2, [pY];
	ld.param.f32 %f1, [pA];
	ld.param.u32 %r1, [pN];
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mov.u32 %r4, %tid.x;
	mad.lo.s32 %r5, %r2, %r3, %r4;
	setp.ge.u32 %p1, %r5, %r1;
	@%p1 bra DONE;
	cvta.to.global.u64 %rd1, %rd1;
	cvta.to.global.u64 %rd2, %rd2;
	mul.wide.u32 %rd3, %r5, 4;
	add.s64 %rd4, %rd1, %rd3;
	add.s64 %rd5, %rd2, %rd3;
	ld.global.f32 %f2, [%rd4];
	ld.global.f32 %f3, [%rd5];
	fma.rn.f32 %f4, %f2, %f1, %f3;
	st.global.f32 [%rd5], %f4;
DONE:
	ret;
}
`

func main() {
	// 1. Create a simulated-GPU context (functional mode by default).
	ctx := gpgpusim.NewContext(gpgpusim.BugSet{})
	if _, err := ctx.RegisterModule(saxpyPTX); err != nil {
		log.Fatal(err)
	}

	// 2. Allocate and fill device memory.
	const n = 1000
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i] = float32(i)
		y[i] = 1
	}
	px, err := ctx.Malloc(4 * n)
	if err != nil {
		log.Fatal(err)
	}
	ctx.MemcpyF32HtoD(px, x)
	py, err := ctx.Malloc(4 * n)
	if err != nil {
		log.Fatal(err)
	}
	ctx.MemcpyF32HtoD(py, y)

	// 3. Launch (functional mode).
	params := gpgpusim.NewParams().Ptr(px).Ptr(py).F32(2).U32(n)
	st, err := ctx.Launch("saxpy", gpgpusim.Dim3{X: (n + 127) / 128}, gpgpusim.Dim3{X: 128}, params, 0)
	if err != nil {
		log.Fatal(err)
	}
	got := ctx.MemcpyF32DtoH(py, 4)
	fmt.Printf("functional mode: %d warp instructions, y[0:4] = %v\n", st.WarpInstrs, got)

	// 4. Same launch under the cycle-level GTX 1050 model.
	ctx2 := gpgpusim.NewContext(gpgpusim.BugSet{})
	if _, err := ctx2.RegisterModule(saxpyPTX); err != nil {
		log.Fatal(err)
	}
	eng, err := gpgpusim.NewTimingEngine(gpgpusim.GTX1050)
	if err != nil {
		log.Fatal(err)
	}
	gpgpusim.UseTiming(ctx2, eng)
	px2, _ := ctx2.Malloc(4 * n)
	ctx2.MemcpyF32HtoD(px2, x)
	py2, _ := ctx2.Malloc(4 * n)
	ctx2.MemcpyF32HtoD(py2, y)
	params2 := gpgpusim.NewParams().Ptr(px2).Ptr(py2).F32(2).U32(n)
	st2, err := ctx2.Launch("saxpy", gpgpusim.Dim3{X: (n + 127) / 128}, gpgpusim.Dim3{X: 128}, params2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("performance mode: %d cycles, IPC %.2f, L1 accesses %d, DRAM accesses %d\n",
		st2.Cycles, float64(st2.WarpInstrs)/float64(st2.Cycles),
		eng.Stats().L1Accesses, eng.Stats().DRAMAccesses)
}
