package gpgpusim

// Smoke tests for the main packages under cmd/ and examples/: every one
// must compile, and the quickstart / standalone-simulator / LeNet paths
// must run end to end with tiny configurations.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const smokeSaxpyPTX = `
.version 6.0
.target sm_61
.address_size 64

.visible .entry saxpy(
	.param .u64 pX,
	.param .u64 pY,
	.param .f32 pA,
	.param .u32 pN
)
{
	.reg .pred %p<2>;
	.reg .f32 %f<5>;
	.reg .b32 %r<6>;
	.reg .b64 %rd<6>;

	ld.param.u64 %rd1, [pX];
	ld.param.u64 %rd2, [pY];
	ld.param.f32 %f1, [pA];
	ld.param.u32 %r1, [pN];
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mov.u32 %r4, %tid.x;
	mad.lo.s32 %r5, %r2, %r3, %r4;
	setp.ge.u32 %p1, %r5, %r1;
	@%p1 bra DONE;
	cvta.to.global.u64 %rd1, %rd1;
	cvta.to.global.u64 %rd2, %rd2;
	mul.wide.u32 %rd3, %r5, 4;
	add.s64 %rd4, %rd1, %rd3;
	add.s64 %rd5, %rd2, %rd3;
	ld.global.f32 %f2, [%rd4];
	ld.global.f32 %f3, [%rd5];
	fma.rn.f32 %f4, %f2, %f1, %f3;
	st.global.f32 [%rd5], %f4;
DONE:
	ret;
}
`

// buildMains compiles every main package into a temp dir and returns it.
func buildMains(t *testing.T) string {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	dir := t.TempDir()
	cmd := exec.Command(goTool, "build", "-o", dir+string(os.PathSeparator), "./cmd/...", "./examples/...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building main packages failed: %v\n%s", err, out)
	}
	return dir
}

// TestMainPackagesSmoke builds all cmd/ and examples/ binaries, then
// drives the standalone simulator and the quickstart example with tiny
// configs, asserting success and non-empty statistics output.
func TestMainPackagesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bin := buildMains(t)

	// every expected binary exists
	for _, name := range []string{
		"gpgpusim", "mnistsim", "aerialvision", "convsample", "debugtool",
		"quickstart", "lenet_mnist", "conv_algorithms", "checkpoint_resume",
		"debug_workflow", "concurrent_streams", "transformer_inference",
		"bank_camping",
	} {
		if _, err := os.Stat(filepath.Join(bin, name)); err != nil {
			t.Errorf("binary %s not built: %v", name, err)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	ptxFile := filepath.Join(t.TempDir(), "saxpy.ptx")
	if err := os.WriteFile(ptxFile, []byte(smokeSaxpyPTX), 0o644); err != nil {
		t.Fatal(err)
	}

	t.Run("gpgpusim_functional", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "gpgpusim"),
			"-args", "buf256,buf256,f2,i256", "-grid", "2", "-block", "128", ptxFile)
		if !strings.Contains(out, "functional mode") || !strings.Contains(out, "warp instructions") {
			t.Fatalf("unexpected output:\n%s", out)
		}
	})

	t.Run("gpgpusim_perf_streams", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "gpgpusim"),
			"-perf", "-streams", "2", "-j", "2",
			"-args", "buf256,buf256,f2,i256", "-grid", "2", "-block", "128", ptxFile)
		if !strings.Contains(out, "overlap speedup") || !strings.Contains(out, "cycles") {
			t.Fatalf("missing concurrent-stream stats in output:\n%s", out)
		}
	})

	t.Run("quickstart", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "quickstart"))
		if !strings.Contains(out, "functional mode") || !strings.Contains(out, "performance mode") {
			t.Fatalf("quickstart did not report both modes:\n%s", out)
		}
	})

	t.Run("concurrent_streams", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "concurrent_streams"))
		if !strings.Contains(out, "overlap speedup") {
			t.Fatalf("concurrent_streams did not report a speedup:\n%s", out)
		}
	})

	t.Run("gpgpusim_workload_transformer", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "gpgpusim"),
			"-workload", "transformer", "-streams", "2", "-j", "2")
		for _, want := range []string{"transformer workload", "max |sim - cpu|", "overlap speedup"} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in transformer workload output:\n%s", want, out)
			}
		}
	})

	t.Run("gpgpusim_workload_transformer_replay", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "gpgpusim"),
			"-workload", "transformer", "-replay")
		for _, want := range []string{"transformer replay workload", "replay coverage", "hits", "per-kernel replay coverage"} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in transformer replay output:\n%s", want, out)
			}
		}
	})

	t.Run("gpgpusim_workload_decode", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "gpgpusim"),
			"-workload", "decode", "-streams", "2", "-prompt", "3", "-gen", "3", "-j", "2")
		for _, want := range []string{
			"decode workload", "tokens/sec", "overlap speedup",
			"replay coverage", "hybrid throughput", "per-kernel replay coverage",
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in decode workload output:\n%s", want, out)
			}
		}
	})

	t.Run("gpgpusim_workload_train", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "gpgpusim"),
			"-workload", "train", "-steps", "3", "-replay", "-j", "2")
		for _, want := range []string{
			"train workload", "3 steps", "training loss (device vs CPU mirror)",
			"cpu_loss", "max |device - cpu| loss diff", "tokens/Mcycle",
			"replay coverage", "per-kernel replay coverage",
			"layernorm_backward", "sgd_update",
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in train workload output:\n%s", want, out)
			}
		}
	})

	t.Run("gpgpusim_workload_train_multigpu", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "gpgpusim"),
			"-workload", "train", "-devices", "2", "-steps", "2", "-j", "2")
		for _, want := range []string{
			"multi-GPU train workload: data-parallel across 2 devices",
			"rank0", "rank1", "max |device - cpu mirror| loss diff",
			"final weights byte-identical across devices",
			"nvlink:", "per-device engine counters", "gpu0", "gpu1",
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in multi-GPU train output:\n%s", want, out)
			}
		}
	})

	t.Run("gpgpusim_workload_transformer_multigpu", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "gpgpusim"),
			"-workload", "transformer", "-devices", "2", "-j", "2")
		for _, want := range []string{
			"multi-GPU transformer workload: tensor-parallel across 2 devices",
			"outputs bitwise identical to the single-device reference",
			"all-gathers", "nvlink:", "per-device engine counters", "gpu1",
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in multi-GPU transformer output:\n%s", want, out)
			}
		}
	})

	// invalid flag combinations must fail loudly (exit 2 with a usage
	// hint) instead of silently ignoring the flag
	t.Run("gpgpusim_invalid_flag_combos", func(t *testing.T) {
		for _, c := range []struct {
			args []string
			want string
		}{
			{[]string{"-workload", "decode", "-decode"}, "-decode only applies to -workload serve"},
			{[]string{"-workload", "transformer", "-prompt", "3"}, "-prompt/-gen only apply to"},
			{[]string{"-workload", "transformer", "-gen", "5"}, "-prompt/-gen only apply to"},
			{[]string{"-workload", "serve", "-rate", "10", "-trace", "x.trace"}, "mutually exclusive"},
			{[]string{"-workload", "decode", "-steps", "2"}, "-steps only applies to -workload train"},
			{[]string{"-workload", "train", "-devices", "0"}, "-devices must be >= 1"},
			{[]string{"-workload", "serve", "-devices", "2"}, "-devices only applies to -workload train or transformer"},
			{[]string{"-workload", "transformer", "-devices", "2", "-streams", "2"}, "-streams only applies to single-device runs"},
		} {
			out, code := runBinaryExpectError(t, filepath.Join(bin, "gpgpusim"), c.args...)
			if code != 2 {
				t.Errorf("gpgpusim %v exited %d, want usage exit 2\n%s", c.args, code, out)
			}
			if !strings.Contains(out, c.want) {
				t.Errorf("gpgpusim %v: missing %q in error output:\n%s", c.args, c.want, out)
			}
		}
	})

	t.Run("gpgpusim_workload_serve", func(t *testing.T) {
		// a pinned 16-request trace: arrivals every 40k cycles, 12 tokens,
		// 2 chain iterations each — the percentile summary must appear
		var trace strings.Builder
		trace.WriteString("# gpgpusim-serve-trace v1\n")
		for i := 0; i < 16; i++ {
			fmt.Fprintf(&trace, "%d 12 2\n", i*40000)
		}
		traceFile := filepath.Join(t.TempDir(), "arrivals.trace")
		if err := os.WriteFile(traceFile, []byte(trace.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		out := runBinary(t, filepath.Join(bin, "gpgpusim"),
			"-workload", "serve", "-trace", traceFile, "-j", "2")
		for _, want := range []string{
			"serve workload", "16 requests", "latency p50", "p99.9",
			"ttft p50", "goodput", "latency percentiles over serving time",
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in serve workload output:\n%s", want, out)
			}
		}
	})

	t.Run("gpgpusim_workload_serve_diurnal", func(t *testing.T) {
		// replay the checked-in diurnal v2 trace (low→peak→low KV-cached
		// decode day) end to end through the CLI
		trace := filepath.Join("internal", "serve", "testdata", "diurnal.trace")
		if _, err := os.Stat(trace); err != nil {
			t.Fatalf("checked-in diurnal trace missing: %v", err)
		}
		out := runBinary(t, filepath.Join(bin, "gpgpusim"),
			"-workload", "serve", "-trace", trace, "-j", "2")
		for _, want := range []string{
			"serve workload", "22 requests", "decode serving", "KV budget",
			"latency p50", "ttft p50", "goodput",
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in diurnal serve output:\n%s", want, out)
			}
		}
	})

	t.Run("gpgpusim_workload_membound", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "gpgpusim"), "-workload", "membound")
		for _, want := range []string{"membound workload", "avg_seg_lat", "load-dependent latency", "per-kernel memory counters"} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in membound workload output:\n%s", want, out)
			}
		}
	})

	t.Run("bank_camping", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "bank_camping"))
		for _, want := range []string{"camped", "streaming", "DRAM utilization", "avg segment latency"} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in bank_camping output:\n%s", want, out)
			}
		}
	})

	t.Run("transformer_inference", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "transformer_inference"))
		for _, want := range []string{"transformer encoder", "warp instrs", "max |sim - cpu|", "overlap speedup"} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in transformer_inference output:\n%s", want, out)
			}
		}
	})

	// the remaining fast binaries must emit their statistics output, not
	// just exit 0 (lenet_mnist and conv_algorithms run for tens of
	// seconds and stay build-only here)
	t.Run("mnistsim", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "mnistsim"), "-images", "1")
		for _, want := range []string{"self-check", "correlation", "cycles"} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in mnistsim output:\n%s", want, out)
			}
		}
	})

	t.Run("convsample", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "convsample"), "-c", "2", "-k", "2", "-hw", "12")
		for _, want := range []string{"conv_sample", "cycles", "IPC"} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in convsample output:\n%s", want, out)
			}
		}
	})

	t.Run("debugtool", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "debugtool"))
		if !strings.Contains(out, "first incorrectly executing kernel") &&
			!strings.Contains(out, "first incorrectly executing instruction") &&
			!strings.Contains(out, "incorrect") {
			t.Fatalf("debugtool did not report a localised fault:\n%s", out)
		}
	})

	t.Run("checkpoint_resume", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "checkpoint_resume"))
		for _, want := range []string{"checkpoint", "resumed in performance mode", "cycles"} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in checkpoint_resume output:\n%s", want, out)
			}
		}
	})

	t.Run("debug_workflow", func(t *testing.T) {
		out := runBinary(t, filepath.Join(bin, "debug_workflow"))
		if !strings.Contains(out, "faulty instruction") {
			t.Fatalf("debug_workflow did not localise the fault:\n%s", out)
		}
	})

	t.Run("aerialvision", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "aerial")
		out := runBinary(t, filepath.Join(bin, "aerialvision"), "-o", dir, "-replay", "-decode", "-serve", "-train", "-train-steps", "2")
		if !strings.Contains(out, "wrote") {
			t.Fatalf("aerialvision reported no files:\n%s", out)
		}
		entries, err := os.ReadDir(dir)
		if err != nil || len(entries) == 0 {
			t.Fatalf("aerialvision wrote no CSVs (err=%v)", err)
		}
		if _, err := os.Stat(filepath.Join(dir, "kernel_mem.csv")); err != nil {
			t.Fatalf("aerialvision did not write the per-kernel memory CSV: %v", err)
		}
		replayCSV, err := os.ReadFile(filepath.Join(dir, "kernel_replay.csv"))
		if err != nil {
			t.Fatalf("aerialvision -replay did not write the replay coverage CSV: %v", err)
		}
		if !strings.HasPrefix(string(replayCSV), "kernel,launches,replayed,") {
			t.Fatalf("kernel_replay.csv header unexpected:\n%s", replayCSV[:min(len(replayCSV), 200)])
		}
		decodeCSV, err := os.ReadFile(filepath.Join(dir, "decode_throughput.csv"))
		if err != nil {
			t.Fatalf("aerialvision -decode did not write the decode throughput CSV: %v", err)
		}
		if !strings.HasPrefix(string(decodeCSV), "mode,iters,tokens,total_cycles,") {
			t.Fatalf("decode_throughput.csv header unexpected:\n%s", decodeCSV[:min(len(decodeCSV), 200)])
		}
		serveCSV, err := os.ReadFile(filepath.Join(dir, "serve_latency.csv"))
		if err != nil {
			t.Fatalf("aerialvision -serve did not write the serving latency CSV: %v", err)
		}
		if !strings.HasPrefix(string(serveCSV), "window_end_cycle,completed,p50_cycles,") {
			t.Fatalf("serve_latency.csv header unexpected:\n%s", serveCSV[:min(len(serveCSV), 200)])
		}
		trainCSV, err := os.ReadFile(filepath.Join(dir, "train_loss.csv"))
		if err != nil {
			t.Fatalf("aerialvision -train did not write the training loss CSV: %v", err)
		}
		if !strings.HasPrefix(string(trainCSV), "step,loss,cpu_loss,replayed") {
			t.Fatalf("train_loss.csv header unexpected:\n%s", trainCSV[:min(len(trainCSV), 200)])
		}
	})
}

// runBinaryExpectError runs a binary that must FAIL, returning its
// combined output and exit code.
func runBinaryExpectError(t *testing.T, path string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(path, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v succeeded, expected failure\n%s", filepath.Base(path), args, out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s %v did not run: %v", filepath.Base(path), args, err)
	}
	return string(out), ee.ExitCode()
}

func runBinary(t *testing.T, path string, args ...string) string {
	t.Helper()
	cmd := exec.Command(path, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", filepath.Base(path), args, err, out)
	}
	if len(out) == 0 {
		t.Fatalf("%s produced no output", filepath.Base(path))
	}
	return string(out)
}

// TestQuickstartInProcess exercises the quickstart path through the
// public API: a hand-written kernel in functional then performance mode.
func TestQuickstartInProcess(t *testing.T) {
	for _, perf := range []bool{false, true} {
		ctx := NewContext(BugSet{})
		if _, err := ctx.RegisterModule(smokeSaxpyPTX); err != nil {
			t.Fatal(err)
		}
		if perf {
			eng, err := NewTimingEngine(GTX1050)
			if err != nil {
				t.Fatal(err)
			}
			UseTiming(ctx, eng)
		}
		const n = 256
		x := make([]float32, n)
		y := make([]float32, n)
		for i := range x {
			x[i] = float32(i)
			y[i] = 1
		}
		px, _ := ctx.Malloc(4 * n)
		ctx.MemcpyF32HtoD(px, x)
		py, _ := ctx.Malloc(4 * n)
		ctx.MemcpyF32HtoD(py, y)
		p := NewParams().Ptr(px).Ptr(py).F32(2).U32(n)
		st, err := ctx.Launch("saxpy", Dim3{X: 2}, Dim3{X: 128}, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.WarpInstrs == 0 {
			t.Fatal("no instructions recorded")
		}
		if perf && st.Cycles == 0 {
			t.Fatal("no cycles recorded in performance mode")
		}
		got := ctx.MemcpyF32DtoH(py, n)
		for i, v := range got {
			want := float32(i)*2 + 1
			if v != want {
				t.Fatalf("y[%d] = %v, want %v (perf=%v)", i, v, want, perf)
			}
		}
	}
}

// TestLeNetInProcess runs a tiny LeNet forward pass (1 image) against
// its CPU oracle — the in-process version of the lenet_mnist example.
func TestLeNetInProcess(t *testing.T) {
	model, _, err := NewLeNet(BugSet{})
	if err != nil {
		t.Fatal(err)
	}
	ds := NewMNISTDataset(7)
	images, _ := ds.Batch(1)
	probs, err := model.Forward(images, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 10 {
		t.Fatalf("expected 10 class probabilities, got %d", len(probs))
	}
	var sum float32
	for _, p := range probs {
		sum += p
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("probabilities do not sum to 1: %v", sum)
	}
	if got := ctxStatCount(model); got == 0 {
		t.Fatal("no kernels launched for the forward pass")
	}
}

func ctxStatCount(m *LeNet) int { return len(m.Dev.Ctx.KernelStatsLog()) }
