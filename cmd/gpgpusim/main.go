// Command gpgpusim runs a standalone PTX file on the simulator, in
// functional or performance mode — the equivalent of invoking GPGPU-Sim
// on a CUDA binary's extracted PTX.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/aerial"
	"repro/internal/core"
	"repro/internal/cudart"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/timing"
)

func main() {
	kernel := flag.String("kernel", "", "entry name to launch (default: first kernel of the file)")
	grid := flag.String("grid", "1,1,1", "grid dimensions x,y,z")
	block := flag.String("block", "32,1,1", "block dimensions x,y,z")
	perf := flag.Bool("perf", false, "use the Performance simulation mode (GTX 1050)")
	workers := flag.Int("j", 1, "worker goroutines stepping SM cores in -perf mode (0 = all CPUs); results are identical for any value")
	streams := flag.Int("streams", 1, "in -perf mode, launch the kernel once per stream on N concurrent CUDA streams (each with its own buffers) and report the overlap")
	args := flag.String("args", "", "comma-separated kernel arguments: bufN (device buffer of N floats), iV (u32), fV (f32)")
	dump := flag.Int("dump", 8, "floats to dump from each buffer argument after the run")
	workload := flag.String("workload", "", "built-in workload instead of a PTX file: "+workloadUsage())
	replay := flag.Bool("replay", false, "with -workload transformer: repeat the batch in hybrid replay mode (memoized kernel timing) and report cache coverage")
	resample := flag.Int("replay-resample", 0, "with -replay: re-simulate every Nth cache hit in detail and report the drift (0 = never)")
	rate := flag.Float64("rate", 40, "with -workload serve: offered Poisson arrival rate in requests per million cycles (ignored with -trace)")
	traceFile := flag.String("trace", "", "with -workload serve: replayable arrival-trace file to serve instead of a generated Poisson stream")
	requests := flag.Int("requests", 24, "with -workload serve: requests in the generated Poisson stream (ignored with -trace)")
	serveSeed := flag.Int64("serve-seed", 1, "with -workload serve: seed of the generated Poisson stream (ignored with -trace)")
	prompt := flag.Int("prompt", 4, "with -workload decode (or serve -decode): prompt tokens each sequence prefills")
	gen := flag.Int("gen", 8, "with -workload decode (or serve -decode): tokens each sequence greedy-decodes")
	serveDecode := flag.Bool("decode", false, "with -workload serve: generate a decode trace (-prompt prefill, -gen decode tokens per request) instead of encoder requests; KV-cache bytes gate admission")
	steps := flag.Int("steps", 4, "with -workload train: training steps to run")
	devices := flag.Int("devices", 1, "with -workload train or transformer: simulate N GPUs as one node (data-parallel training / tensor-parallel inference over a modelled NVLink fabric); -j host workers step the devices concurrently")
	flag.Parse()

	// Most workload flags have non-zero defaults, so a value comparison
	// cannot tell "left at default" from "explicitly set": collect the
	// flags the user actually passed and reject combinations that would
	// otherwise be silently ignored.
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if err := validateFlagCombos(*workload, *serveDecode, *devices, setFlags); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *workload != "" {
		opts := workloadOpts{
			workers: *workers, streams: *streams, replay: *replay, resampleEvery: *resample,
			rate: *rate, traceFile: *traceFile, requests: *requests, serveSeed: *serveSeed,
			prompt: *prompt, gen: *gen, serveDecode: *serveDecode, steps: *steps,
			devices: *devices,
		}
		if err := runWorkloadFlag(*workload, opts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *replay || *resample != 0 {
		fmt.Fprintln(os.Stderr, "-replay/-replay-resample need -workload transformer (replay pays off on repeated launches, not a single PTX run)")
		os.Exit(2)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gpgpusim [flags] file.ptx  (or -workload transformer)")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ctx := cudart.NewContext(exec.BugSet{})
	mod, err := ctx.RegisterModule(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "parse:", err)
		os.Exit(1)
	}
	name := *kernel
	if name == "" {
		names := mod.KernelNames()
		if len(names) == 0 {
			fmt.Fprintln(os.Stderr, "no kernels in module")
			os.Exit(1)
		}
		name = names[0]
	}

	if *streams > 1 && !*perf {
		fmt.Fprintln(os.Stderr, "-streams needs -perf (concurrent streams run in the detailed model)")
		os.Exit(2)
	}

	if *streams > 1 {
		// Concurrent-stream mode: one launch per stream, each with its
		// own buffer set, overlapping in the detailed timing model. The
		// baseline is a real serialized run of the same workload on a
		// fresh engine, not the sum of concurrent per-kernel cycles
		// (those span the overlapped window and would inflate the win).
		conc, log, cctx, bufs, bufLens, err := runStreamWorkload(string(src), name, *grid, *block, *args, *workers, *streams, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		serial, _, _, _, _, err := runStreamWorkload(string(src), name, *grid, *block, *args, *workers, *streams, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var instrs uint64
		for _, k := range log {
			instrs += k.WarpInstrs
			fmt.Printf("kernel %s (launch %d): %d cycles, %d warp instructions\n",
				k.Name, k.LaunchID, k.Cycles, k.WarpInstrs)
		}
		fmt.Printf("%d streams: %d total cycles concurrent vs %d serialized (overlap speedup %.2fx), IPC %.2f\n",
			*streams, conc, serial, float64(serial)/float64(conc), float64(instrs)/float64(conc))
		dumpBufs(cctx, bufs, bufLens, *dump)
		return
	}

	if *perf {
		eng, err := timing.New(timing.GTX1050(), timing.WithWorkers(*workers))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ctx.SetRunner(timing.Runner{E: eng})
	}

	p, bufs, bufLens := buildParams(ctx, *args)
	st, err := ctx.Launch(name, parseDim(*grid), parseDim(*block), p, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "launch:", err)
		os.Exit(1)
	}
	mode := "functional"
	if *perf {
		mode = "performance"
	}
	fmt.Printf("kernel %s: %s mode, %d warp instructions", name, mode, st.WarpInstrs)
	if *perf {
		fmt.Printf(", %d cycles, IPC %.2f", st.Cycles,
			float64(st.WarpInstrs)/float64(st.Cycles))
	}
	fmt.Println()
	dumpBufs(ctx, bufs, bufLens, *dump)
}

// workloadOpts carries the flags a -workload built-in may consume.
type workloadOpts struct {
	workers, streams int
	replay           bool
	resampleEvery    int
	rate             float64
	traceFile        string
	requests         int
	serveSeed        int64
	prompt, gen      int
	serveDecode      bool
	steps            int
	devices          int
}

// validateFlagCombos rejects flag combinations a workload would silently
// ignore: each error names the offending flag and the run that would
// actually honour it, and the CLI exits 2 (usage) instead of producing
// misleading output.
func validateFlagCombos(workload string, serveDecode bool, devices int, set map[string]bool) error {
	if set["devices"] {
		if devices < 1 {
			return fmt.Errorf("-devices must be >= 1, got %d (usage: `gpgpusim -devices 2 -workload train`)", devices)
		}
		if workload != "train" && workload != "transformer" {
			return fmt.Errorf("-devices only applies to -workload train or transformer; multi-GPU serve/decode is not supported yet (usage: `gpgpusim -devices 2 -workload train`)")
		}
		if set["streams"] {
			return fmt.Errorf("-streams only applies to single-device runs: tensor-parallel inference spreads each sequence across all devices instead of across streams (usage: `gpgpusim -devices 2 -workload transformer`)")
		}
		if set["replay"] && workload == "transformer" {
			return fmt.Errorf("-replay with -devices only applies to -workload train (the tensor-parallel inference phases are launched once per sequence — nothing repeats; usage: `gpgpusim -devices 2 -workload train -replay`)")
		}
	}
	if set["decode"] && workload != "serve" {
		return fmt.Errorf("-decode only applies to -workload serve (usage: `gpgpusim -workload serve -decode`; for the standalone decode batch use `-workload decode`)")
	}
	if (set["prompt"] || set["gen"]) && workload != "decode" && !(workload == "serve" && serveDecode) {
		return fmt.Errorf("-prompt/-gen only apply to -workload decode or -workload serve -decode; they would be silently ignored here (usage: `gpgpusim -workload decode -prompt 4 -gen 8`)")
	}
	if set["rate"] && set["trace"] {
		return fmt.Errorf("-rate and -trace are mutually exclusive: -trace replays a pinned arrival trace, so the Poisson -rate would be silently ignored (drop one of them)")
	}
	if set["steps"] && workload != "train" {
		return fmt.Errorf("-steps only applies to -workload train; it would be silently ignored here (usage: `gpgpusim -workload train -steps 4`)")
	}
	return nil
}

// workloads is the single registry of -workload built-ins: the flag's
// usage string and the unknown-workload error both derive from it, so a
// new workload added here shows up in both automatically.
var workloads = []struct {
	name string
	desc string
	run  func(workloadOpts) error
}{
	{
		name: "transformer",
		desc: "runs the encoder inference batch in the detailed model (-streams sequences, -j workers); add -replay to repeat the batch in hybrid replay mode, or -devices N for tensor-parallel inference across N simulated GPUs",
		run: func(o workloadOpts) error {
			if o.devices > 1 {
				return runMultiTransformerWorkload(o)
			}
			if o.replay {
				return runTransformerReplayWorkload(o)
			}
			return runTransformerWorkload(o.workers, o.streams)
		},
	},
	{
		name: "serve",
		desc: "serves an open-loop inference request stream (-rate or -trace) with continuous batching and reports p50/p99/p99.9 latency, TTFT and goodput; -replay retires repeated chains from the replay cache",
		run:  runServeWorkload,
	},
	{
		name: "decode",
		desc: "runs the KV-cached greedy-decode batch (-streams sequences, -prompt prefill + -gen generated tokens) in the detailed model, then repeats it in hybrid replay mode and reports tokens/sec and replay coverage",
		run:  runDecodeWorkload,
	},
	{
		name: "train",
		desc: "runs -steps transformer training steps (forward, loss, backward, SGD) in the detailed model, each step's loss checked against the CPU mirror; -replay retires steady-state steps from the replay cache, -devices N trains data-parallel across N simulated GPUs",
		run: func(o workloadOpts) error {
			if o.devices > 1 {
				return runMultiTrainWorkload(o)
			}
			return runTrainWorkload(o)
		},
	},
	{
		name: "membound",
		desc: "sweeps a streaming kernel across occupancies to show load-dependent memory latency",
		run: func(o workloadOpts) error {
			if o.replay {
				return fmt.Errorf("-replay only applies to the transformer workload (membound launches each configuration once — nothing repeats)")
			}
			return runMemBoundWorkload(o.workers)
		},
	},
}

func workloadUsage() string {
	var b strings.Builder
	for i, w := range workloads {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "'%s' %s", w.name, w.desc)
	}
	return b.String()
}

func workloadNames() string {
	names := make([]string, len(workloads))
	for i, w := range workloads {
		names[i] = w.name
	}
	return strings.Join(names, ", ")
}

// runWorkloadFlag dispatches the -workload built-ins.
func runWorkloadFlag(name string, o workloadOpts) error {
	for _, w := range workloads {
		if w.name == name {
			return w.run(o)
		}
	}
	return fmt.Errorf("unknown workload %q (available: %s)", name, workloadNames())
}

// runMemBoundWorkload sweeps the streaming strided_saxpy kernel across
// occupancy levels on the GTX 1050 model, demonstrating the
// bandwidth-aware memory hierarchy: average segment latency rises with
// load instead of staying at the unloaded L2/DRAM latency.
func runMemBoundWorkload(workers int) error {
	ctas := []int{1, 8, 40, 160}
	res, err := core.RunMemBound(core.GTX1050, workers, 64, 1, ctas)
	if err != nil {
		return err
	}
	fmt.Printf("membound workload: streaming strided_saxpy, %d threads/CTA, stride %d\n",
		res.Threads, res.Stride)
	fmt.Printf("%-6s %10s %14s %14s %12s\n", "ctas", "cycles", "avg_seg_lat", "ingress_stall", "dram_rowhit")
	var rows []aerial.KernelMemRow
	for _, p := range res.Points {
		fmt.Printf("%-6d %10d %14.1f %14d %12d\n",
			p.CTAs, p.Cycles, p.AvgSegLatency, p.IngressStalls, p.Kernel.DRAMRowHits)
		rows = append(rows, aerial.KernelMemRow{
			Name:           fmt.Sprintf("saxpy_ctas%d", p.CTAs),
			Launches:       1,
			L2Accesses:     p.Kernel.L2Accesses,
			L2Hits:         p.Kernel.L2Hits,
			DRAMAccesses:   p.Kernel.DRAMAccesses,
			DRAMRowHits:    p.Kernel.DRAMRowHits,
			MemStallCycles: p.Kernel.MemStallCycles,
		})
	}
	lo, hi := res.Points[0], res.Points[len(res.Points)-1]
	fmt.Printf("load-dependent latency: %.1f cycles at %d CTAs -> %.1f cycles at %d CTAs (%.2fx)\n",
		lo.AvgSegLatency, lo.CTAs, hi.AvgSegLatency, hi.CTAs, hi.AvgSegLatency/lo.AvgSegLatency)
	aerial.KernelMemSummary(os.Stdout, "per-kernel memory counters", rows)
	return nil
}

// runTransformerWorkload runs the transformer-encoder inference batch in
// the detailed model: `streams` sequences, each forward pass on its own
// CUDA stream, verified against the ForwardCPU oracle and compared with
// a serialized run of the same batch.
func runTransformerWorkload(workers, streams int) error {
	res, err := core.RunTransformerSample(workers, streams, 12)
	if err != nil {
		return err
	}
	fmt.Printf("transformer workload: %d layers, %d heads, d_model %d — %d sequences × %d tokens, %d kernel launches\n",
		res.Config.Layers, res.Config.Heads, res.Config.DModel, res.Seqs, res.SeqLen, res.Launches)
	fmt.Printf("max |sim - cpu| = %.2g\n", res.MaxAbsDiff)
	fmt.Printf("%d streams: %d total cycles concurrent vs %d serialized (overlap speedup %.2fx), IPC %.2f\n",
		res.Seqs, res.ConcurrentCycles, res.SerializedCycles, res.Speedup(), res.IPC())
	return nil
}

// runTransformerReplayWorkload repeats the transformer inference batch
// in hybrid replay mode: the first iteration simulates in detail and
// warms the replay cache, later iterations retire from it. The coverage
// line is what smoke_test.go pins.
func runTransformerReplayWorkload(o workloadOpts) error {
	const iters = 4
	res, err := core.RunTransformerReplay(o.workers, o.streams, 12, iters, o.resampleEvery, true)
	if err != nil {
		return err
	}
	fmt.Printf("transformer replay workload: %d layers, %d heads, d_model %d — %d sequences × %d tokens, %d iterations, %d kernel launches\n",
		res.Config.Layers, res.Config.Heads, res.Config.DModel, res.Seqs, res.SeqLen, res.Iters, res.Launches)
	fmt.Printf("max |sim - cpu| = %.2g (first iteration; later iterations bit-equal by construction)\n", res.MaxAbsDiff)
	fmt.Printf("replay coverage %.1f%%: %d hits, %d misses, %d resamples, %d memo-applied\n",
		100*res.Coverage, res.ReplayHits, res.ReplayMisses, res.ReplayResamples, res.ReplayMemoApplied)
	fmt.Printf("cycles: %d first iteration (detailed), %d total; %d replayed vs %d detailed kernel cycles",
		res.FirstIterCycles, res.TotalCycles, res.ReplayedCycles, res.DetailedKernelCycles)
	if res.ReplayResamples > 0 {
		fmt.Printf("; resample drift %d cycles", res.ReplayDriftCycles)
	}
	fmt.Println()
	var rows []aerial.KernelReplayRow
	for _, k := range res.PerKernel {
		rows = append(rows, aerial.KernelReplayRow{
			Name:           k.Name,
			Launches:       uint64(k.Launches),
			Replayed:       uint64(k.Replayed),
			Cycles:         k.Cycles,
			ReplayedCycles: k.ReplayedCycles,
		})
	}
	aerial.KernelReplaySummary(os.Stdout, "per-kernel replay coverage", rows)
	return nil
}

// runStreamWorkload runs the kernel once per lane on a fresh context and
// engine — one stream per lane when concurrent, back-to-back on the
// default stream otherwise — and returns the total engine cycles, the
// per-kernel stats log, and the first lane's buffers for dumping. All
// buffer uploads happen before the first launch (synchronous copies are
// device-synchronizing and would serialise the streams).
func runStreamWorkload(src, name, grid, block, args string, workers, lanes int, concurrent bool) (uint64, []cudart.KernelStats, *cudart.Context, []uint64, []int, error) {
	ctx := cudart.NewContext(exec.BugSet{})
	eng, err := timing.New(timing.GTX1050(), timing.WithWorkers(workers))
	if err != nil {
		return 0, nil, nil, nil, nil, err
	}
	ctx.SetRunner(timing.Runner{E: eng})
	if _, err := ctx.RegisterModule(src); err != nil {
		return 0, nil, nil, nil, nil, err
	}
	var allParams []*cudart.Params
	var firstBufs []uint64
	var bufLens []int
	for i := 0; i < lanes; i++ {
		p, bufs, lens := buildParams(ctx, args)
		allParams = append(allParams, p)
		if i == 0 {
			firstBufs, bufLens = bufs, lens
		}
	}
	start := eng.Cycle()
	for i := 0; i < lanes; i++ {
		s := cudart.DefaultStream
		if concurrent {
			s = ctx.StreamCreate()
		}
		if _, err := ctx.LaunchOnStream(s, name, parseDim(grid), parseDim(block), allParams[i], 0); err != nil {
			return 0, nil, nil, nil, nil, err
		}
	}
	if err := ctx.DeviceSynchronize(); err != nil {
		return 0, nil, nil, nil, nil, err
	}
	return eng.Cycle() - start, ctx.KernelStatsLog(), ctx, firstBufs, bufLens, nil
}

// buildParams marshals the -args spec into a parameter buffer, allocating
// and initialising a fresh device buffer for every bufN argument (so each
// concurrent stream gets its own working set).
func buildParams(ctx *cudart.Context, args string) (*cudart.Params, []uint64, []int) {
	p := cudart.NewParams()
	var bufs []uint64
	var bufLens []int
	if args == "" {
		return p, bufs, bufLens
	}
	for _, a := range strings.Split(args, ",") {
		a = strings.TrimSpace(a)
		switch {
		case strings.HasPrefix(a, "buf"):
			n, err := strconv.Atoi(a[3:])
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad buffer arg %q\n", a)
				os.Exit(2)
			}
			addr, err := ctx.Malloc(uint64(4 * n))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			init := make([]float32, n)
			for i := range init {
				init[i] = float32(i)
			}
			ctx.MemcpyF32HtoD(addr, init)
			p.Ptr(addr)
			bufs = append(bufs, addr)
			bufLens = append(bufLens, n)
		case strings.HasPrefix(a, "i"):
			v, err := strconv.ParseUint(a[1:], 0, 32)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad int arg %q\n", a)
				os.Exit(2)
			}
			p.U32(uint32(v))
		case strings.HasPrefix(a, "f"):
			v, err := strconv.ParseFloat(a[1:], 32)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad float arg %q\n", a)
				os.Exit(2)
			}
			p.F32(float32(v))
		default:
			fmt.Fprintf(os.Stderr, "bad arg %q\n", a)
			os.Exit(2)
		}
	}
	return p, bufs, bufLens
}

// dumpBufs prints the first `dump` floats of each buffer argument.
func dumpBufs(ctx *cudart.Context, bufs []uint64, bufLens []int, dump int) {
	for i, addr := range bufs {
		n := bufLens[i]
		if n > dump {
			n = dump
		}
		vals := ctx.MemcpyF32DtoH(addr, n)
		parts := make([]string, n)
		for j, v := range vals {
			parts[j] = stats.Fmt(float64(v))
		}
		fmt.Printf("buf%d[0:%d] = [%s]\n", i, n, strings.Join(parts, " "))
	}
}

func parseDim(s string) exec.Dim3 {
	parts := strings.Split(s, ",")
	d := exec.Dim3{X: 1, Y: 1, Z: 1}
	if len(parts) > 0 {
		d.X, _ = strconv.Atoi(strings.TrimSpace(parts[0]))
	}
	if len(parts) > 1 {
		d.Y, _ = strconv.Atoi(strings.TrimSpace(parts[1]))
	}
	if len(parts) > 2 {
		d.Z, _ = strconv.Atoi(strings.TrimSpace(parts[2]))
	}
	return d
}
