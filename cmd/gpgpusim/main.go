// Command gpgpusim runs a standalone PTX file on the simulator, in
// functional or performance mode — the equivalent of invoking GPGPU-Sim
// on a CUDA binary's extracted PTX.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cudart"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/timing"
)

func main() {
	kernel := flag.String("kernel", "", "entry name to launch (default: first kernel of the file)")
	grid := flag.String("grid", "1,1,1", "grid dimensions x,y,z")
	block := flag.String("block", "32,1,1", "block dimensions x,y,z")
	perf := flag.Bool("perf", false, "use the Performance simulation mode (GTX 1050)")
	workers := flag.Int("j", 1, "worker goroutines stepping SM cores in -perf mode (0 = all CPUs); results are identical for any value")
	args := flag.String("args", "", "comma-separated kernel arguments: bufN (device buffer of N floats), iV (u32), fV (f32)")
	dump := flag.Int("dump", 8, "floats to dump from each buffer argument after the run")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gpgpusim [flags] file.ptx")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ctx := cudart.NewContext(exec.BugSet{})
	var eng *timing.Engine
	if *perf {
		eng, err = timing.New(timing.GTX1050(), timing.WithWorkers(*workers))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ctx.SetRunner(timing.Runner{E: eng})
	}
	mod, err := ctx.RegisterModule(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "parse:", err)
		os.Exit(1)
	}
	name := *kernel
	if name == "" {
		names := mod.KernelNames()
		if len(names) == 0 {
			fmt.Fprintln(os.Stderr, "no kernels in module")
			os.Exit(1)
		}
		name = names[0]
	}

	p := cudart.NewParams()
	var bufs []uint64
	var bufLens []int
	if *args != "" {
		for _, a := range strings.Split(*args, ",") {
			a = strings.TrimSpace(a)
			switch {
			case strings.HasPrefix(a, "buf"):
				n, err := strconv.Atoi(a[3:])
				if err != nil {
					fmt.Fprintf(os.Stderr, "bad buffer arg %q\n", a)
					os.Exit(2)
				}
				addr, err := ctx.Malloc(uint64(4 * n))
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				init := make([]float32, n)
				for i := range init {
					init[i] = float32(i)
				}
				ctx.MemcpyF32HtoD(addr, init)
				p.Ptr(addr)
				bufs = append(bufs, addr)
				bufLens = append(bufLens, n)
			case strings.HasPrefix(a, "i"):
				v, err := strconv.ParseUint(a[1:], 0, 32)
				if err != nil {
					fmt.Fprintf(os.Stderr, "bad int arg %q\n", a)
					os.Exit(2)
				}
				p.U32(uint32(v))
			case strings.HasPrefix(a, "f"):
				v, err := strconv.ParseFloat(a[1:], 32)
				if err != nil {
					fmt.Fprintf(os.Stderr, "bad float arg %q\n", a)
					os.Exit(2)
				}
				p.F32(float32(v))
			default:
				fmt.Fprintf(os.Stderr, "bad arg %q\n", a)
				os.Exit(2)
			}
		}
	}

	st, err := ctx.Launch(name, parseDim(*grid), parseDim(*block), p, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "launch:", err)
		os.Exit(1)
	}
	mode := "functional"
	if *perf {
		mode = "performance"
	}
	fmt.Printf("kernel %s: %s mode, %d warp instructions", name, mode, st.WarpInstrs)
	if *perf {
		fmt.Printf(", %d cycles, IPC %.2f", st.Cycles,
			float64(st.WarpInstrs)/float64(st.Cycles))
	}
	fmt.Println()
	for i, addr := range bufs {
		n := bufLens[i]
		if n > *dump {
			n = *dump
		}
		vals := ctx.MemcpyF32DtoH(addr, n)
		parts := make([]string, n)
		for j, v := range vals {
			parts[j] = stats.Fmt(float64(v))
		}
		fmt.Printf("buf%d[0:%d] = [%s]\n", i, n, strings.Join(parts, " "))
	}
}

func parseDim(s string) exec.Dim3 {
	parts := strings.Split(s, ",")
	d := exec.Dim3{X: 1, Y: 1, Z: 1}
	if len(parts) > 0 {
		d.X, _ = strconv.Atoi(strings.TrimSpace(parts[0]))
	}
	if len(parts) > 1 {
		d.Y, _ = strconv.Atoi(strings.TrimSpace(parts[1]))
	}
	if len(parts) > 2 {
		d.Z, _ = strconv.Atoi(strings.TrimSpace(parts[2]))
	}
	return d
}
