package main

import (
	"strings"
	"testing"
)

// FuzzValidateFlagCombos drives the flag-combination validator with
// arbitrary workload names and explicitly-set flag sets: it must never
// panic, must be deterministic, and every rejection must carry a usage
// hint naming the offending flag.
func FuzzValidateFlagCombos(f *testing.F) {
	// the supported -workload train invocations and every rejected combo
	// from the CLI smoke test
	f.Add("train", "steps", false)
	f.Add("train", "steps,replay", false)
	f.Add("train", "steps,j,replay-resample", false)
	f.Add("decode", "steps", false)
	f.Add("", "steps", false)
	f.Add("decode", "decode", false)
	f.Add("serve", "decode,prompt,gen", true)
	f.Add("transformer", "prompt", false)
	f.Add("transformer", "gen", false)
	f.Add("serve", "rate,trace", false)
	f.Add("membound", "", false)
	f.Fuzz(func(t *testing.T, workload, flagsCSV string, serveDecode bool) {
		set := map[string]bool{}
		for _, name := range strings.Split(flagsCSV, ",") {
			if name != "" {
				set[name] = true
			}
		}
		err := validateFlagCombos(workload, serveDecode, set)
		again := validateFlagCombos(workload, serveDecode, set)
		if (err == nil) != (again == nil) {
			t.Fatalf("validator not deterministic: %v vs %v", err, again)
		}
		if err != nil {
			if err.Error() == "" {
				t.Fatal("rejection with empty message")
			}
			if !strings.Contains(err.Error(), "usage:") && !strings.Contains(err.Error(), "drop one") {
				t.Fatalf("rejection without usage hint: %v", err)
			}
		}
		// a validator must never reject the empty flag set: bare
		// `-workload X` runs with defaults
		if len(set) == 0 && err != nil {
			t.Fatalf("empty flag set rejected: %v", err)
		}
	})
}
