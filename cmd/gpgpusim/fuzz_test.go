package main

import (
	"strings"
	"testing"
)

// FuzzValidateFlagCombos drives the flag-combination validator with
// arbitrary workload names and explicitly-set flag sets: it must never
// panic, must be deterministic, and every rejection must carry a usage
// hint naming the offending flag.
func FuzzValidateFlagCombos(f *testing.F) {
	// the supported -workload train invocations and every rejected combo
	// from the CLI smoke test
	f.Add("train", "steps", false, 1)
	f.Add("train", "steps,replay", false, 1)
	f.Add("train", "steps,j,replay-resample", false, 1)
	f.Add("decode", "steps", false, 1)
	f.Add("", "steps", false, 1)
	f.Add("decode", "decode", false, 1)
	f.Add("serve", "decode,prompt,gen", true, 1)
	f.Add("transformer", "prompt", false, 1)
	f.Add("transformer", "gen", false, 1)
	f.Add("serve", "rate,trace", false, 1)
	f.Add("membound", "", false, 1)
	// -devices combos: the supported multi-GPU runs and every rejection
	f.Add("train", "devices,steps", false, 2)
	f.Add("train", "devices,j,replay", false, 4)
	f.Add("transformer", "devices,j", false, 2)
	f.Add("serve", "devices", false, 2)
	f.Add("decode", "devices", false, 2)
	f.Add("membound", "devices", false, 2)
	f.Add("train", "devices", false, 0)
	f.Add("train", "devices", false, -3)
	f.Add("transformer", "devices,streams", false, 2)
	f.Add("transformer", "devices,replay", false, 2)
	f.Fuzz(func(t *testing.T, workload, flagsCSV string, serveDecode bool, devices int) {
		set := map[string]bool{}
		for _, name := range strings.Split(flagsCSV, ",") {
			if name != "" {
				set[name] = true
			}
		}
		err := validateFlagCombos(workload, serveDecode, devices, set)
		again := validateFlagCombos(workload, serveDecode, devices, set)
		if (err == nil) != (again == nil) {
			t.Fatalf("validator not deterministic: %v vs %v", err, again)
		}
		if err != nil {
			if err.Error() == "" {
				t.Fatal("rejection with empty message")
			}
			if !strings.Contains(err.Error(), "usage:") && !strings.Contains(err.Error(), "drop one") {
				t.Fatalf("rejection without usage hint: %v", err)
			}
		}
		// a validator must never reject the empty flag set: bare
		// `-workload X` runs with defaults
		if len(set) == 0 && err != nil {
			t.Fatalf("empty flag set rejected: %v", err)
		}
		// -devices left at its default (not explicitly set) must never
		// cause a rejection, whatever value the caller passes through
		if !set["devices"] && err == nil && devices != 1 {
			if e := validateFlagCombos(workload, serveDecode, 1, set); e != nil {
				t.Fatalf("devices value changed the verdict without -devices set: %v", e)
			}
		}
	})
}
