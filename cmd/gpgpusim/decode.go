package main

import (
	"fmt"
	"os"

	"repro/internal/aerial"
	"repro/internal/core"
	"repro/internal/timing"
)

// runDecodeWorkload runs the KV-cached autoregressive decode batch in
// the detailed model: -streams prompts of -prompt tokens greedy-decode
// -gen tokens each (verified token-for-token against the GenerateCPU
// oracle), once stream-overlapped and once serialized; then the same
// batch repeats in hybrid replay mode so the steady-state decode steps
// retire from the replay cache. smoke_test.go pins the tokens/sec and
// replay coverage lines.
func runDecodeWorkload(o workloadOpts) error {
	res, err := core.RunDecodeSample(o.workers, o.streams, o.prompt, o.gen)
	if err != nil {
		return err
	}
	fmt.Printf("decode workload: %d layers, %d heads, d_model %d — %d sequences, prompt %d + %d generated tokens, %d kernel launches\n",
		res.Config.Layers, res.Config.Heads, res.Config.DModel,
		res.Seqs, res.PromptLen, res.NewTokens, res.Launches)
	fmt.Printf("%d streams: %d total cycles concurrent vs %d serialized (overlap speedup %.2fx)\n",
		res.Seqs, res.ConcurrentCycles, res.SerializedCycles, res.Speedup())
	clockMHz := timing.GTX1050().ClockMHz
	tokens := res.Seqs * res.NewTokens
	tokensPerSec := float64(tokens) / (float64(res.ConcurrentCycles) / (clockMHz * 1e6))
	fmt.Printf("throughput %.2f tokens/Mcycle (%.0f tokens/sec at the %.0f MHz modelled clock)\n",
		res.TokensPerMcycle(), tokensPerSec, clockMHz)

	const iters = 4
	rep, err := core.RunDecodeReplay(o.workers, o.streams, o.prompt, o.gen, iters, o.resampleEvery, true)
	if err != nil {
		return err
	}
	fmt.Printf("replay: %d identical generate batches on one engine, %d kernel launches\n",
		rep.Iters, rep.Launches)
	fmt.Printf("replay coverage %.1f%%: %d hits, %d misses, %d resamples, %d memo-applied\n",
		100*rep.Coverage, rep.ReplayHits, rep.ReplayMisses, rep.ReplayResamples, rep.ReplayMemoApplied)
	fmt.Printf("cycles: %d first iteration (detailed), %d total; hybrid throughput %.2f tokens/Mcycle\n",
		rep.FirstIterCycles, rep.TotalCycles, rep.TokensPerMcycle())
	var rows []aerial.KernelReplayRow
	for _, k := range rep.PerKernel {
		rows = append(rows, aerial.KernelReplayRow{
			Name:           k.Name,
			Launches:       uint64(k.Launches),
			Replayed:       uint64(k.Replayed),
			Cycles:         k.Cycles,
			ReplayedCycles: k.ReplayedCycles,
		})
	}
	aerial.KernelReplaySummary(os.Stdout, "per-kernel replay coverage", rows)
	return nil
}
