package main

import (
	"fmt"
	"os"

	"repro/internal/aerial"
	"repro/internal/serve"
	"repro/internal/stats"
)

// runServeWorkload drives the inference-serving scenario: an open-loop
// arrival stream (a replayable -trace file, or a seeded Poisson stream
// at -rate) served by the continuous-batching scheduler on the detailed
// GTX 1050 model, reporting the latency distribution and goodput versus
// offered load.
func runServeWorkload(o workloadOpts) error {
	var tr serve.Trace
	if o.traceFile != "" {
		f, err := os.Open(o.traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if tr, err = serve.ParseTrace(f); err != nil {
			return err
		}
	} else if o.serveDecode {
		tr = serve.Poisson(o.serveSeed, o.rate, o.requests, 0, 0).WithDecode(o.prompt, o.gen)
	} else {
		tr = serve.Poisson(o.serveSeed, o.rate, o.requests, 12, 2)
	}
	if len(tr.Requests) == 0 {
		return fmt.Errorf("serve workload: empty arrival trace")
	}

	cfg := serve.Config{
		Workers:             o.workers,
		Replay:              o.replay,
		ReplayResampleEvery: o.resampleEvery,
	}
	res, err := serve.Run(cfg, tr)
	if err != nil {
		return err
	}

	m := serve.DefaultModel()
	src := fmt.Sprintf("trace %s", o.traceFile)
	if o.traceFile == "" {
		src = fmt.Sprintf("poisson rate %g seed %d", o.rate, o.serveSeed)
	}
	fmt.Printf("serve workload: %d layers, %d heads, d_model %d — %d requests (%s), continuous batching cap %d (peak %d), %d iterations\n",
		m.Layers, m.Heads, m.DModel, len(tr.Requests), src, res.BatchCap, res.PeakBatch, res.Iterations)
	if res.Decode {
		fmt.Printf("decode serving: per-request prefill+decode chains, KV budget %d bytes (peak resident %d)\n",
			res.KVBudgetBytes, res.PeakKVBytes)
	}
	lat := res.Latencies()
	ttft := res.TTFTs()
	fmt.Printf("latency p50 %.0f p99 %.0f p99.9 %.0f cycles\n",
		stats.Percentile(lat, 50), stats.Percentile(lat, 99), stats.Percentile(lat, 99.9))
	fmt.Printf("ttft p50 %.0f p99 %.0f cycles\n",
		stats.Percentile(ttft, 50), stats.Percentile(ttft, 99))
	fmt.Printf("goodput %.1f req/Mcycle vs offered %.1f (utilization %.2f, %d total cycles)\n",
		res.Goodput(), tr.OfferedLoad(), res.Utilization(), res.TotalCycles)
	if o.replay {
		st := res.Stats
		total := st.ReplayHits + st.ReplayMisses
		cov := 0.0
		if total > 0 {
			cov = float64(st.ReplayHits) / float64(total)
		}
		fmt.Printf("replay coverage %.1f%%: %d hits, %d misses, %d resamples, %d memo-applied\n",
			100*cov, st.ReplayHits, st.ReplayMisses, st.ReplayResamples, st.ReplayMemoApplied)
	}
	aerial.ServeLatencySummary(os.Stdout, "latency percentiles over serving time", serveLatencyRows(res))
	return nil
}

// serveLatencyRows converts a run's latency-over-time windows to the
// aerial row type shared with aerialvision's serve_latency.csv.
func serveLatencyRows(res *serve.Result) []aerial.ServeLatencyRow {
	buckets := res.LatencyOverTime(8)
	rows := make([]aerial.ServeLatencyRow, len(buckets))
	for i, b := range buckets {
		rows[i] = aerial.ServeLatencyRow{
			EndCycle: b.EndCycle, Completed: b.Completed,
			P50: b.P50, P99: b.P99, P999: b.P999,
		}
	}
	return rows
}
