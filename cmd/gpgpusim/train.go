package main

import (
	"fmt"
	"os"

	"repro/internal/aerial"
	"repro/internal/core"
)

// runTrainWorkload runs the transformer training-step workload in the
// detailed model: -steps full training steps (forward, tied-embedding
// loss, backward through every block, SGD), each step's device loss
// checked against the CPUTrainState host mirror by the driver. With
// -replay the steady-state steps retire from the replay cache — the
// weight updates fail the memo read-set check, so replay degrades to
// memoized timing with functional re-execution and the loss curve
// tracks the detailed run to float-atomics rounding. smoke_test.go pins
// the loss-curve and coverage lines.
func runTrainWorkload(o workloadOpts) error {
	const seqLen = 8
	res, err := core.RunTrainSample(o.workers, o.steps, seqLen, o.resampleEvery, o.replay)
	if err != nil {
		return err
	}
	fmt.Printf("train workload: %d layers, %d heads, d_model %d, vocab %d — %d steps × %d tokens, lr %g, %d kernel launches\n",
		res.Config.Layers, res.Config.Heads, res.Config.DModel, res.Config.Vocab,
		res.Steps, res.SeqLen, res.LR, res.Launches)
	rows := trainLossRows(res)
	aerial.TrainLossSummary(os.Stdout, "training loss (device vs CPU mirror)", rows)
	fmt.Printf("max |device - cpu| loss diff %.2g (tolerance %g)\n", res.MaxLossDiff, core.TrainLossTolerance)
	fmt.Printf("throughput %.2f tokens/Mcycle: %d total cycles, %d first step\n",
		res.TokensPerMcycle(), res.TotalCycles, res.FirstStepCycles)
	if res.Replay {
		fmt.Printf("replay coverage %.1f%%: %d hits, %d misses, %d resamples, %d memo-applied\n",
			100*res.Coverage, res.ReplayHits, res.ReplayMisses, res.ReplayResamples, res.ReplayMemoApplied)
		var krows []aerial.KernelReplayRow
		for _, k := range res.PerKernel {
			krows = append(krows, aerial.KernelReplayRow{
				Name:           k.Name,
				Launches:       uint64(k.Launches),
				Replayed:       uint64(k.Replayed),
				Cycles:         k.Cycles,
				ReplayedCycles: k.ReplayedCycles,
			})
		}
		aerial.KernelReplaySummary(os.Stdout, "per-kernel replay coverage", krows)
	}
	return nil
}

// trainLossRows converts a TrainResult's loss trajectories into the
// aerial table rows.
func trainLossRows(res *core.TrainResult) []aerial.TrainLossRow {
	rows := make([]aerial.TrainLossRow, len(res.Losses))
	for i := range res.Losses {
		rows[i] = aerial.TrainLossRow{
			Step:     i,
			Loss:     float64(res.Losses[i]),
			CPULoss:  float64(res.CPULosses[i]),
			Replayed: res.StepReplayHits[i] > 0,
		}
	}
	return rows
}
