package main

// Multi-device workload drivers: -devices N routes the train and
// transformer workloads through internal/multigpu, simulating N GTX
// 1050s coupled by a modelled NVLink fabric. -j controls how many host
// workers step the devices concurrently; as everywhere in the repo it
// changes wall-clock only, never results.

import (
	"fmt"
	"os"

	"repro/internal/aerial"
	"repro/internal/multigpu"
)

// deviceRows converts per-device stats into the aerial table rows.
func deviceRows(per []multigpu.DeviceStats) []aerial.DeviceRow {
	rows := make([]aerial.DeviceRow, len(per))
	for i, d := range per {
		rows[i] = aerial.DeviceRow{
			Device:              d.Device,
			Cycles:              d.Cycles,
			Instructions:        d.Instructions,
			L2Accesses:          d.L2Accesses,
			DRAMAccesses:        d.DRAMAccesses,
			FastForwardedCycles: d.FastForwardedCycles,
			Launches:            uint64(d.Launches),
		}
	}
	return rows
}

// runMultiTrainWorkload trains the sample encoder data-parallel across
// -devices simulated GPUs: per-device replicas, per-rank sequences, a
// modelled ring all-reduce feeding SGD with lr/N. The driver verifies
// every rank's loss against its CPU mirror and that the replicas' final
// weights are byte-identical. smoke_test.go pins the summary lines.
func runMultiTrainWorkload(o workloadOpts) error {
	const seqLen = 8
	cfg := multigpu.Config{
		Devices: o.devices, Workers: o.workers,
		Replay: o.replay, ReplayResampleEvery: o.resampleEvery,
	}
	res, err := multigpu.RunDPTrain(cfg, o.steps, seqLen)
	if err != nil {
		return err
	}
	fmt.Printf("multi-GPU train workload: data-parallel across %d devices — %d steps × %d tokens per rank, lr %g (per replica), %d host workers\n",
		res.Devices, res.Steps, res.SeqLen, res.LR, res.Workers)
	for step := range res.Losses {
		fmt.Printf("step %d losses:", step)
		for r, l := range res.Losses[step] {
			fmt.Printf(" rank%d %.4f", r, l)
		}
		fmt.Println()
	}
	fmt.Printf("max |device - cpu mirror| loss diff %.2g; final weights byte-identical across devices (digest %016x)\n",
		res.MaxLossDiff, res.WeightsDigest)
	fmt.Printf("throughput %.2f tokens/Mcycle across the node: %d modelled cycles\n",
		res.TokensPerMcycle(), res.Cycles)
	fmt.Printf("nvlink: %d transfers, %d bytes, %d link-occupancy cycles, %d stall cycles\n",
		res.NVLink.Transfers, res.NVLink.BytesMoved, res.NVLink.OccupancyCycles, res.NVLink.StallCycles)
	if res.Replay {
		fmt.Printf("replay: %d hits, %d misses across devices\n", res.ReplayHits, res.ReplayMisses)
	}
	aerial.DeviceSummary(os.Stdout, "per-device engine counters", deviceRows(res.PerDevice))
	return nil
}

// runMultiTransformerWorkload runs tensor-parallel encoder inference
// across -devices simulated GPUs: column-sharded GEMMs with a modelled
// ring all-gather at every block boundary, each sequence's output
// verified bitwise against the single-device reference by the driver.
func runMultiTransformerWorkload(o workloadOpts) error {
	const seqs, seqLen = 2, 12
	cfg := multigpu.Config{Devices: o.devices, Workers: o.workers}
	res, err := multigpu.RunTPInfer(cfg, seqs, seqLen)
	if err != nil {
		return err
	}
	fmt.Printf("multi-GPU transformer workload: tensor-parallel across %d devices — %d sequences × %d tokens, %d layers, %d host workers\n",
		res.Devices, res.Seqs, res.SeqLen, res.Layers, res.Workers)
	fmt.Printf("outputs bitwise identical to the single-device reference on every rank (digest %016x)\n",
		res.OutputDigest)
	fmt.Printf("throughput %.2f tokens/Mcycle: %d modelled cycles, %d all-gathers\n",
		res.TokensPerMcycle(), res.Cycles, res.Gathers)
	fmt.Printf("nvlink: %d transfers, %d bytes, %d link-occupancy cycles, %d stall cycles\n",
		res.NVLink.Transfers, res.NVLink.BytesMoved, res.NVLink.OccupancyCycles, res.NVLink.StallCycles)
	aerial.DeviceSummary(os.Stdout, "per-device engine counters", deviceRows(res.PerDevice))
	return nil
}
