// Command aerialvision runs a conv_sample case and writes the full
// AerialVision time-series data as CSV files (one per metric), the data
// behind the paper's Figs. 9-25, for external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/aerial"
	"repro/internal/core"
)

func main() {
	dir := flag.String("dir", "fwd", "direction: fwd | bwddata | bwdfilter")
	algo := flag.String("algo", "fft", "convolution algorithm")
	out := flag.String("o", "aerial_out", "output directory for CSV files")
	flag.Parse()

	res, err := core.RunConvSample(core.GTX1080Ti, core.ConvDirection(*dir), *algo, core.DefaultConvShape())
	if err != nil {
		fmt.Fprintln(os.Stderr, "aerialvision:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	write := func(name string, rowNames []string, rows [][]float64) {
		f, err := os.Create(filepath.Join(*out, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := aerial.CSV(f, rowNames, rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", f.Name())
	}

	st := res.Engine.Stats()
	for pi, ch := range res.Engine.Partitions() {
		labels := make([]string, ch.NumBanks())
		for b := range labels {
			labels[b] = fmt.Sprintf("bank%d", b)
		}
		write(fmt.Sprintf("dram_efficiency_p%d.csv", pi), labels, ch.EfficiencySeries())
		write(fmt.Sprintf("dram_utilization_p%d.csv", pi), labels, ch.UtilizationSeries())
	}
	write("global_ipc.csv", []string{"ipc"}, [][]float64{st.GlobalIPCSeries()})
	shader := st.ShaderIPCSeries()
	labels := make([]string, len(shader))
	for i := range labels {
		labels[i] = fmt.Sprintf("shader%d", i)
	}
	write("shader_ipc.csv", labels, shader)
	names, series := st.WarpIssueBreakdown()
	write("warp_breakdown.csv", names, series)
}
