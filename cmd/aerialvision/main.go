// Command aerialvision runs a conv_sample case and writes the full
// AerialVision time-series data as CSV files (one per metric), the data
// behind the paper's Figs. 9-25, for external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/aerial"
	"repro/internal/core"
	"repro/internal/cudart"
	"repro/internal/serve"
)

// writeKernelMem writes the per-kernel memory-counter table.
func writeKernelMem(path string, kernels []cudart.KernelStats) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	fmt.Fprintln(f, "kernel,l2_accesses,l2_hits,l2_misses,dram_accesses,dram_rowhits,mem_stall_cycles")
	for _, k := range kernels {
		fmt.Fprintf(f, "%s#%d,%d,%d,%d,%d,%d,%d\n",
			k.Name, k.LaunchID, k.L2Accesses, k.L2Hits, k.L2Misses,
			k.DRAMAccesses, k.DRAMRowHits, k.MemStallCycles)
	}
	fmt.Println("wrote", f.Name())
}

// writeKernelReplay runs the transformer batch in hybrid replay mode and
// writes the per-kernel replay coverage table.
func writeKernelReplay(path string, resampleEvery int) {
	res, err := core.RunTransformerReplay(1, 1, 12, 4, resampleEvery, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aerialvision:", err)
		os.Exit(1)
	}
	var rows []aerial.KernelReplayRow
	for _, k := range res.PerKernel {
		rows = append(rows, aerial.KernelReplayRow{
			Name:           k.Name,
			Launches:       uint64(k.Launches),
			Replayed:       uint64(k.Replayed),
			Cycles:         k.Cycles,
			ReplayedCycles: k.ReplayedCycles,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := aerial.KernelReplayCSV(f, rows); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (replay coverage %.1f%%)\n", f.Name(), 100*res.Coverage)
}

// writeDecodeThroughput runs the repeated KV-cached greedy-decode batch
// in detailed and hybrid replay mode and writes the throughput
// comparison as decode_throughput.csv.
func writeDecodeThroughput(path string) {
	const (
		seqs, promptLen, newTokens = 2, 4, 6
		iters                      = 4
	)
	var rows []aerial.DecodeThroughputRow
	for _, mode := range []struct {
		name   string
		replay bool
	}{{"detailed", false}, {"hybrid", true}} {
		res, err := core.RunDecodeReplay(1, seqs, promptLen, newTokens, iters, 0, mode.replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aerialvision:", err)
			os.Exit(1)
		}
		rows = append(rows, aerial.DecodeThroughputRow{
			Mode:            mode.name,
			Iters:           res.Iters,
			Tokens:          res.Seqs * res.NewTokens * res.Iters,
			TotalCycles:     res.TotalCycles,
			TokensPerMcycle: res.TokensPerMcycle(),
			Coverage:        res.Coverage,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := aerial.DecodeThroughputCSV(f, rows); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (hybrid coverage %.1f%%)\n", f.Name(), 100*rows[1].Coverage)
}

// writeTrainLoss runs the transformer training-step workload in hybrid
// replay mode and writes the loss curve (device vs CPU mirror, with
// per-step replay attribution) as train_loss.csv.
func writeTrainLoss(path string, steps int) {
	res, err := core.RunTrainSample(1, steps, 8, 0, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aerialvision:", err)
		os.Exit(1)
	}
	rows := make([]aerial.TrainLossRow, len(res.Losses))
	for i := range res.Losses {
		rows[i] = aerial.TrainLossRow{
			Step:     i,
			Loss:     float64(res.Losses[i]),
			CPULoss:  float64(res.CPULosses[i]),
			Replayed: res.StepReplayHits[i] > 0,
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := aerial.TrainLossCSV(f, rows); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d steps, max |device-cpu| loss diff %.2g)\n", f.Name(), res.Steps, res.MaxLossDiff)
}

// writeServeLatency runs a seeded open-loop serving scenario under
// continuous batching and writes the latency-percentiles-over-time
// windows as serve_latency.csv.
func writeServeLatency(path string, rate float64, requests int) {
	tr := serve.Poisson(1, rate, requests, 12, 2)
	res, err := serve.Run(serve.Config{}, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aerialvision:", err)
		os.Exit(1)
	}
	var rows []aerial.ServeLatencyRow
	for _, b := range res.LatencyOverTime(8) {
		rows = append(rows, aerial.ServeLatencyRow{
			EndCycle: b.EndCycle, Completed: b.Completed,
			P50: b.P50, P99: b.P99, P999: b.P999,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := aerial.ServeLatencyCSV(f, rows); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (goodput %.1f req/Mcycle vs offered %.1f)\n",
		f.Name(), res.Goodput(), tr.OfferedLoad())
}

func main() {
	dir := flag.String("dir", "fwd", "direction: fwd | bwddata | bwdfilter")
	algo := flag.String("algo", "fft", "convolution algorithm")
	out := flag.String("o", "aerial_out", "output directory for CSV files")
	replay := flag.Bool("replay", false, "additionally run the transformer batch in hybrid replay mode and write kernel_replay.csv (per-kernel replay coverage)")
	resample := flag.Int("replay-resample", 0, "with -replay: re-simulate every Nth replay-cache hit in detail (0 = never)")
	decodeFlag := flag.Bool("decode", false, "additionally run the repeated KV-cached decode batch in detailed and hybrid replay mode and write decode_throughput.csv")
	serveFlag := flag.Bool("serve", false, "additionally run a seeded open-loop serving scenario and write serve_latency.csv (latency percentiles over serving time)")
	serveRate := flag.Float64("serve-rate", 40, "with -serve: offered Poisson arrival rate in requests per million cycles")
	serveReqs := flag.Int("serve-requests", 16, "with -serve: requests in the generated stream")
	trainFlag := flag.Bool("train", false, "additionally run the transformer training-step workload in hybrid replay mode and write train_loss.csv (device vs CPU-mirror loss curve)")
	trainSteps := flag.Int("train-steps", 4, "with -train: training steps to run")
	flag.Parse()

	res, err := core.RunConvSample(core.GTX1080Ti, core.ConvDirection(*dir), *algo, core.DefaultConvShape())
	if err != nil {
		fmt.Fprintln(os.Stderr, "aerialvision:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	write := func(name string, rowNames []string, rows [][]float64) {
		f, err := os.Create(filepath.Join(*out, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := aerial.CSV(f, rowNames, rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", f.Name())
	}

	st := res.Engine.Stats()
	for pi, ch := range res.Engine.Partitions() {
		labels := make([]string, ch.NumBanks())
		for b := range labels {
			labels[b] = fmt.Sprintf("bank%d", b)
		}
		write(fmt.Sprintf("dram_efficiency_p%d.csv", pi), labels, ch.EfficiencySeries())
		write(fmt.Sprintf("dram_utilization_p%d.csv", pi), labels, ch.UtilizationSeries())
	}
	// per-kernel memory counters (bandwidth-aware hierarchy attribution):
	// a tabular CSV with named columns, one row per launch — unlike the
	// time-series files, where aerial.CSV's bucket-index header applies
	writeKernelMem(filepath.Join(*out, "kernel_mem.csv"), res.Kernels)
	write("global_ipc.csv", []string{"ipc"}, [][]float64{st.GlobalIPCSeries()})
	shader := st.ShaderIPCSeries()
	labels := make([]string, len(shader))
	for i := range labels {
		labels[i] = fmt.Sprintf("shader%d", i)
	}
	write("shader_ipc.csv", labels, shader)
	names, series := st.WarpIssueBreakdown()
	write("warp_breakdown.csv", names, series)
	if *replay {
		writeKernelReplay(filepath.Join(*out, "kernel_replay.csv"), *resample)
	}
	if *decodeFlag {
		writeDecodeThroughput(filepath.Join(*out, "decode_throughput.csv"))
	}
	if *serveFlag {
		writeServeLatency(filepath.Join(*out, "serve_latency.csv"), *serveRate, *serveReqs)
	}
	if *trainFlag {
		writeTrainLoss(filepath.Join(*out, "train_loss.csv"), *trainSteps)
	}
}
