// Command mnistsim reproduces the paper's §IV evaluation: LeNet/MNIST on
// the detailed GPU timing model, correlated against the hardware oracle
// (Figs. 6-7), with the GPUWattch-style power breakdown (Fig. 8), plus
// the checkpoint/resume flow (§III-F).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/timing"
)

func main() {
	images := flag.Int("images", 3, "number of MNIST images to classify (the paper uses 3)")
	fig6 := flag.Bool("fig6", false, "print only the Fig. 6 overall correlation")
	fig7 := flag.Bool("fig7", false, "print only the Fig. 7 per-kernel correlation")
	fig8 := flag.Bool("fig8", false, "print only the Fig. 8 power breakdown")
	doCkpt := flag.Bool("checkpoint", false, "demonstrate checkpoint/resume instead")
	flag.Parse()

	if *doCkpt {
		if err := checkpointDemo(); err != nil {
			fmt.Fprintln(os.Stderr, "checkpoint demo:", err)
			os.Exit(1)
		}
		return
	}

	res, err := core.RunMNISTCorrelation(*images)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnistsim:", err)
		os.Exit(1)
	}
	all := !*fig6 && !*fig7 && !*fig8

	if all {
		fmt.Printf("LeNet/MNIST inference, %d image(s), GTX 1050 model\n", res.Images)
		fmt.Printf("self-check (GPU vs CPU reference classifications): ok=%v gpu=%v cpu=%v\n\n",
			res.SelfCheckOK, res.GPUClasses, res.CPUClasses)
	}
	if all || *fig6 {
		c := res.Correlation
		fmt.Println("-- Fig. 6: overall execution time correlation --")
		fmt.Printf("hardware (oracle): %.0f cycles\n", c.TotalHW)
		fmt.Printf("simulator:         %.0f cycles\n", c.TotalSim)
		fmt.Printf("overall error:     %.1f%% (paper: within 30%%)\n\n", c.OverallError*100)
	}
	if all || *fig7 {
		c := res.Correlation
		fmt.Println("-- Fig. 7: per-kernel relative execution time --")
		var rows [][]string
		for _, k := range c.Kernels {
			rel := k.SimCycles / k.HWCycles * 100
			rows = append(rows, []string{
				k.Name, fmt.Sprint(k.Launches),
				stats.Fmt(k.HWCycles), stats.Fmt(k.SimCycles),
				fmt.Sprintf("%.0f%%", rel),
			})
		}
		fmt.Print(stats.Table(
			[]string{"kernel", "launches", "hw cycles", "sim cycles", "sim/hw"}, rows))
		fmt.Printf("Pearson correlation: %.2f (paper reports 72%%)\n\n", c.Pearson)
	}
	if all || *fig8 {
		fmt.Println("-- Fig. 8: average power breakdown --")
		names, watts := res.Power.Components()
		total := res.Power.Total()
		for i, n := range names {
			fmt.Printf("%-10s %6.1f W  (%4.1f%%)\n", n, watts[i], watts[i]/total*100)
		}
		fmt.Printf("%-10s %6.1f W\n", "Total", total)
	}
}

func checkpointDemo() error {
	fmt.Println("-- §III-F checkpoint/resume demo --")
	build := func(bugs exec.BugSet) (*cudart.Context, *cudnn.Handle, error) {
		ctx := cudart.NewContext(bugs)
		h, err := cudnn.Create(ctx)
		return ctx, h, err
	}
	work := func(ctx *cudart.Context, h *cudnn.Handle) (uint64, error) {
		m, n, k := 64, 48, 32
		px, err := ctx.Malloc(uint64(4 * m * k))
		if err != nil {
			return 0, err
		}
		pw, err := ctx.Malloc(uint64(4 * k * n))
		if err != nil {
			return 0, err
		}
		pc, err := ctx.Malloc(uint64(4 * m * n))
		if err != nil {
			return 0, err
		}
		if err := h.ActivationForward(px, px, m*k); err != nil {
			return 0, err
		}
		if err := h.Gemm(px, pw, pc, m, n, k, 1, 0); err != nil {
			return 0, err
		}
		return pc, h.ActivationForward(pc, pc, m*n)
	}

	ctx, h, err := build(exec.BugSet{})
	if err != nil {
		return err
	}
	p := checkpoint.Point{KernelX: 1, CTAM: 2, CTAT: 1, InstrY: 50}
	cap := &checkpoint.CaptureRunner{Ctx: ctx, P: p}
	ctx.SetRunner(cap)
	if _, err := work(ctx, h); err != nil {
		return err
	}
	blob, err := cap.State.Encode()
	if err != nil {
		return err
	}
	fmt.Printf("captured at kernel x=%d CTA M=%d t=%d y=%d: %d in-flight CTAs, %d bytes\n",
		p.KernelX, p.CTAM, p.CTAT, p.InstrY, len(cap.State.CTAs), len(blob))

	st, err := checkpoint.Decode(blob)
	if err != nil {
		return err
	}
	ctx2, h2, err := build(exec.BugSet{})
	if err != nil {
		return err
	}
	eng, err := timing.New(timing.GTX1050())
	if err != nil {
		return err
	}
	res := &checkpoint.ResumeRunner{Ctx: ctx2, State: st, Engine: eng}
	ctx2.SetRunner(res)
	res.Restore()
	if _, err := work(ctx2, h2); err != nil {
		return err
	}
	fmt.Printf("resumed in performance mode: %d cycles simulated from the checkpoint\n", eng.Cycle())
	return nil
}
