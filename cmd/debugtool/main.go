// Command debugtool demonstrates the paper's §III-D functional-debug
// methodology end to end (Figs. 2-3): inject a faulty instruction
// implementation into the simulator, then localise it by differential
// coverage, API-call/kernel bisection, and instruction-level comparison
// against the golden executor.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/debug"
	"repro/internal/exec"
	"repro/internal/ptx"
)

func main() {
	opName := flag.String("break", "rem", "opcode whose implementation to break (rem, div, brev, shr, fma)")
	entries := flag.Int("entries", 4096, "instruction-log entries per thread")
	flag.Parse()

	var op ptx.Op
	switch *opName {
	case "rem":
		op = ptx.OpRem
	case "div":
		op = ptx.OpDiv
	case "brev":
		op = ptx.OpBrev
	case "shr":
		op = ptx.OpShr
	case "fma":
		op = ptx.OpFma
	default:
		fmt.Fprintf(os.Stderr, "unknown opcode %q\n", *opName)
		os.Exit(2)
	}

	fmt.Printf("injecting a faulty %s implementation into the simulator…\n", op)
	tool := &debug.Tool{
		Workload:         workload,
		Regression:       regression,
		Bugs:             exec.BugSet{BreakOp: op},
		EntriesPerThread: *entries,
	}
	rep, err := tool.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "debugtool:", err)
		os.Exit(1)
	}

	fmt.Println("\nstep 1 — differential coverage (failing app vs regression suite):")
	if len(rep.SuspiciousPaths) == 0 {
		fmt.Println("  (no exclusive paths)")
	}
	for _, p := range rep.SuspiciousPaths {
		fmt.Printf("  suspicious implementation path: %s.%s\n", p.Op, p.T)
	}

	fmt.Println("\nstep 2 — API-call / kernel bisection:")
	if rep.BadLaunch < 0 {
		fmt.Println("  no output divergence found")
		return
	}
	fmt.Printf("  first incorrect API call: %s\n", rep.BadAPI)
	fmt.Printf("  first incorrect kernel:   %s (launch %d)\n", rep.BadKernel, rep.BadLaunch)

	fmt.Println("\nstep 3 — instruction bisection (instrumented PTX replay):")
	fmt.Printf("  first incorrectly executing instruction: pc %d: %s\n", rep.BadPC, rep.BadInstr)
	fmt.Printf("  thread %d: golden value %#x, simulator value %#x\n",
		rep.BadThread, rep.GoldenVal, rep.BuggyVal)
}

func workload(ctx *cudart.Context) error {
	h, err := cudnn.Create(ctx)
	if err != nil {
		return err
	}
	// One cudnnConvolutionForward with the FFT algorithm: a multi-kernel
	// library call, like the paper's failing MNIST conv.
	xd := cudnn.TensorDesc{N: 1, C: 2, H: 12, W: 12}
	fd := cudnn.FilterDesc{K: 3, C: 2, R: 5, S: 5}
	cd := cudnn.ConvDesc{Pad: 0, Stride: 1}
	x := make([]float32, xd.Count())
	for i := range x {
		x[i] = float32(i%17)*0.125 - 1
	}
	w := make([]float32, fd.Count())
	for i := range w {
		w[i] = float32(i%11)*0.25 - 1.25
	}
	px, err := ctx.Malloc(uint64(4 * len(x)))
	if err != nil {
		return err
	}
	ctx.MemcpyF32HtoD(px, x)
	pw, err := ctx.Malloc(uint64(4 * len(w)))
	if err != nil {
		return err
	}
	ctx.MemcpyF32HtoD(pw, w)
	py, err := ctx.Malloc(uint64(4 * 3 * 8 * 8))
	if err != nil {
		return err
	}
	_, err = h.ConvolutionForward(cudnn.FwdAlgoFFT, px, xd, pw, fd, cd, py)
	return err
}

func regression(ctx *cudart.Context) error {
	h, err := cudnn.Create(ctx)
	if err != nil {
		return err
	}
	px, err := ctx.Malloc(4 * 256)
	if err != nil {
		return err
	}
	py, err := ctx.Malloc(4 * 256)
	if err != nil {
		return err
	}
	if err := h.ActivationForward(px, py, 256); err != nil {
		return err
	}
	return h.Gemm(px, py, px, 8, 8, 8, 1, 0)
}
