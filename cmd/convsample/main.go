// Command convsample reproduces the paper's §V case studies: the cuDNN
// conv_sample workload swept over every convolution algorithm, with
// AerialVision-style plots of per-bank DRAM efficiency/utilization,
// global and per-shader IPC, and the warp-issue breakdown (Figs. 9-25).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/aerial"
	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	dir := flag.String("dir", "fwd", "direction: fwd | bwddata | bwdfilter")
	algo := flag.String("algo", "winograd_nonfused", "algorithm (see -sweep for the list)")
	plots := flag.String("plot", "dram,ipc,warp", "comma-separated plots: dram, ipc, warp")
	sweep := flag.Bool("sweep", false, "run every algorithm of every direction and print a cycle table")
	c := flag.Int("c", 8, "input channels")
	k := flag.Int("k", 8, "output channels")
	hw := flag.Int("hw", 28, "input height/width")
	flag.Parse()

	shape := core.DefaultConvShape()
	shape.C, shape.K, shape.H, shape.W = *c, *k, *hw, *hw

	if *sweep {
		runSweep(shape)
		return
	}

	res, err := core.RunConvSample(core.GTX1080Ti, core.ConvDirection(*dir), *algo, shape)
	if err != nil {
		fmt.Fprintln(os.Stderr, "convsample:", err)
		os.Exit(1)
	}
	fmt.Printf("conv_sample %s/%s on GTX 1080 Ti model: %d cycles, %d kernels, IPC %.2f\n\n",
		*dir, *algo, res.Cycles, len(res.Kernels), res.Engine.Stats().TotalIPC(res.Cycles))

	want := map[string]bool{}
	for _, p := range strings.Split(*plots, ",") {
		want[strings.TrimSpace(p)] = true
	}
	st := res.Engine.Stats()
	interval := st.Interval()
	if want["dram"] {
		for pi, ch := range res.Engine.Partitions() {
			aerial.HeatMap(os.Stdout,
				fmt.Sprintf("DRAM efficiency, partition %d (Figs. 9/11/13/17 analog)", pi),
				ch.EfficiencySeries(),
				func(i int) string { return fmt.Sprintf("bank %d", i) }, interval)
			aerial.HeatMap(os.Stdout,
				fmt.Sprintf("DRAM utilization, partition %d (Figs. 10/12/14 analog)", pi),
				ch.UtilizationSeries(),
				func(i int) string { return fmt.Sprintf("bank %d", i) }, interval)
			if pi >= 1 {
				fmt.Printf("(… %d more partitions elided; use CSV output for all)\n",
					len(res.Engine.Partitions())-pi-1)
				break
			}
		}
	}
	if want["ipc"] {
		aerial.Line(os.Stdout, "global IPC (Figs. 15/18/20/24 analog)", st.GlobalIPCSeries(), interval)
		aerial.HeatMap(os.Stdout, "per-shader IPC (Figs. 16/19/21/25 analog)",
			st.ShaderIPCSeries(),
			func(i int) string { return fmt.Sprintf("shader %d", i) }, interval)
	}
	if want["warp"] {
		names, series := st.WarpIssueBreakdown()
		aerial.StackedSummary(os.Stdout, "warp issue breakdown (Figs. 22/23 analog)", names, series)
	}
}

func runSweep(shape core.ConvSampleShape) {
	var rows [][]string
	for _, dir := range []core.ConvDirection{core.Forward, core.BackwardData, core.BackwardFilter} {
		for _, algo := range core.AlgorithmsFor(dir) {
			res, err := core.RunConvSample(core.GTX1080Ti, dir, algo, shape)
			if err != nil {
				rows = append(rows, []string{string(dir), algo, "error: " + err.Error(), "", ""})
				continue
			}
			st := res.Engine.Stats()
			rows = append(rows, []string{
				string(dir), algo,
				fmt.Sprint(res.Cycles),
				fmt.Sprintf("%.2f", st.TotalIPC(res.Cycles)),
				fmt.Sprint(len(res.Kernels)),
			})
		}
	}
	fmt.Print(stats.Table([]string{"direction", "algorithm", "cycles", "ipc", "kernels"}, rows))
}
