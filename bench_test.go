// Benchmark harness: one benchmark per figure of the paper's evaluation.
// Each benchmark regenerates the corresponding figure's data and reports
// the headline quantities as custom metrics (cycles, IPC, correlation,
// watts), so `go test -bench=. -benchmem` reproduces the whole evaluation.
package gpgpusim

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/debug"
	"repro/internal/exec"
	"repro/internal/ptx"
	"repro/internal/timing"
)

// benchConvCase runs one conv_sample case per iteration and reports the
// simulated cycles and whole-run IPC.
func benchConvCase(b *testing.B, dir core.ConvDirection, algo string) {
	b.Helper()
	var res *core.ConvSampleResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.RunConvSample(core.GTX1080Ti, dir, algo, core.DefaultConvShape())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Cycles), "sim_cycles")
	b.ReportMetric(res.Engine.Stats().TotalIPC(res.Cycles), "ipc")
	var reads, busy uint64
	for _, ch := range res.Engine.Partitions() {
		r, w, _, bu := ch.Totals()
		reads += r + w
		busy += bu
	}
	b.ReportMetric(float64(reads), "dram_accesses")
}

// BenchmarkFig06MNISTCorrelation regenerates Fig. 6: overall MNIST
// execution time, simulator vs the hardware oracle.
func BenchmarkFig06MNISTCorrelation(b *testing.B) {
	var res *core.MNISTCorrelationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.RunMNISTCorrelation(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.SimCycles), "sim_cycles")
	b.ReportMetric(res.HWCycles, "hw_cycles")
	b.ReportMetric(res.Correlation.OverallError*100, "overall_err_pct")
}

// BenchmarkFig07PerKernelCorrelation regenerates Fig. 7: per-kernel
// correlation across the MNIST kernel mix.
func BenchmarkFig07PerKernelCorrelation(b *testing.B) {
	var res *core.MNISTCorrelationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.RunMNISTCorrelation(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Correlation.Pearson, "pearson")
	b.ReportMetric(float64(len(res.Correlation.Kernels)), "kernels")
}

// BenchmarkFig08PowerBreakdown regenerates Fig. 8: the six-component
// average power split for MNIST.
func BenchmarkFig08PowerBreakdown(b *testing.B) {
	var res *core.MNISTCorrelationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.RunMNISTCorrelation(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	pb := res.Power
	b.ReportMetric(pb.Total(), "total_w")
	b.ReportMetric(pb.Core/pb.Total()*100, "core_pct")
	b.ReportMetric(pb.Idle/pb.Total()*100, "idle_pct")
}

// Figs. 9-10: forward FFT DRAM efficiency/utilization (bank camping).
func BenchmarkFig09FwdFFTDRAM(b *testing.B) { benchConvCase(b, core.Forward, "fft") }

// Figs. 11-12: forward GEMM DRAM efficiency/utilization.
func BenchmarkFig11FwdGEMMDRAM(b *testing.B) { benchConvCase(b, core.Forward, "gemm") }

// Figs. 13-14: backward-filter Algorithm 0 DRAM efficiency/utilization.
func BenchmarkFig13BwdFilterAlgo0DRAM(b *testing.B) {
	benchConvCase(b, core.BackwardFilter, "algo0")
}

// Figs. 15-17: forward Winograd-Nonfused global/shader IPC + DRAM.
func BenchmarkFig15FwdWinoNonfusedIPC(b *testing.B) {
	benchConvCase(b, core.Forward, "winograd_nonfused")
}

// Figs. 18-19: backward-data Winograd-Nonfused global/shader IPC.
func BenchmarkFig18BwdDataWinoNonfusedIPC(b *testing.B) {
	benchConvCase(b, core.BackwardData, "winograd_nonfused")
}

// Figs. 20-21: backward-filter Winograd-Nonfused IPC (load imbalance).
func BenchmarkFig20BwdFilterWinoNonfusedIPC(b *testing.B) {
	benchConvCase(b, core.BackwardFilter, "winograd_nonfused")
}

// Fig. 22: forward Winograd-Nonfused warp-issue breakdown.
func BenchmarkFig22FwdWinoNonfusedWarp(b *testing.B) {
	benchConvCase(b, core.Forward, "winograd_nonfused")
}

// Figs. 23-25: forward Implicit GEMM warp breakdown and IPC.
func BenchmarkFig23FwdImplicitGEMMWarp(b *testing.B) {
	benchConvCase(b, core.Forward, "implicit_gemm")
}

// BenchmarkParallelWorkers sweeps the timing engine's worker count over a
// conv forward pass. The simulated result is identical for every worker
// count (the engine's determinism contract); only the wall-clock ns/op
// changes, so BENCH_*.json tracks the parallel speedup from the
// scheduler/issue/memory-stage split onward.
func BenchmarkParallelWorkers(b *testing.B) {
	counts := []int{1, 2, 4, runtime.NumCPU()}
	seen := make(map[int]bool)
	var baseline uint64
	for _, w := range counts {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("j%d", w), func(b *testing.B) {
			var res *core.ConvSampleResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.RunConvSampleWorkers(core.GTX1080Ti, core.Forward, "implicit_gemm", core.DefaultConvShape(), w)
				if err != nil {
					b.Fatal(err)
				}
			}
			if baseline == 0 {
				baseline = res.Cycles
			} else if res.Cycles != baseline {
				b.Fatalf("determinism violated: j%d simulated %d cycles, j1 simulated %d", w, res.Cycles, baseline)
			}
			b.ReportMetric(float64(res.Cycles), "sim_cycles")
			b.ReportMetric(float64(w), "workers")
		})
	}
}

// BenchmarkDebugWorkflow times the §III-D three-step debug flow locating
// an injected faulty rem implementation (Figs. 2-3).
func BenchmarkDebugWorkflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tool := &debug.Tool{
			Workload: debugWorkload,
			Bugs:     exec.BugSet{BreakOp: ptx.OpRem},
		}
		rep, err := tool.Run()
		if err != nil {
			b.Fatal(err)
		}
		if rep.BadLaunch < 0 || rep.BadPC < 0 {
			b.Fatal("debug flow failed to localise the bug")
		}
	}
}

// BenchmarkCheckpointResume times the §III-F capture + resume flow.
func BenchmarkCheckpointResume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := runCheckpointRoundTrip(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalVsPerformanceMode measures the paper's §III-F claim
// that performance mode is several times slower than functional mode, on
// the same kernel sequence.
func BenchmarkFunctionalVsPerformanceMode(b *testing.B) {
	b.Run("functional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := runModeProbe(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("performance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := timing.New(timing.GTX1050())
			if err != nil {
				b.Fatal(err)
			}
			if err := runModeProbe(eng); err != nil {
				b.Fatal(err)
			}
		}
	})
}
