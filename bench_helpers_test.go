package gpgpusim

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/exec"
	"repro/internal/timing"
)

// debugWorkload is the multi-kernel FFT convolution the debug benchmarks
// bisect (mirrors the workload in internal/debug tests).
func debugWorkload(ctx *cudart.Context) error {
	h, err := cudnn.Create(ctx)
	if err != nil {
		return err
	}
	xd := cudnn.TensorDesc{N: 1, C: 2, H: 12, W: 12}
	fd := cudnn.FilterDesc{K: 3, C: 2, R: 5, S: 5}
	cd := cudnn.ConvDesc{Pad: 0, Stride: 1}
	px, err := ctx.Malloc(uint64(4 * xd.Count()))
	if err != nil {
		return err
	}
	x := make([]float32, xd.Count())
	for i := range x {
		x[i] = float32(i%13)*0.25 - 1
	}
	ctx.MemcpyF32HtoD(px, x)
	pw, err := ctx.Malloc(uint64(4 * fd.Count()))
	if err != nil {
		return err
	}
	w := make([]float32, fd.Count())
	for i := range w {
		w[i] = float32(i%7)*0.5 - 1.5
	}
	ctx.MemcpyF32HtoD(pw, w)
	py, err := ctx.Malloc(uint64(4 * 3 * 8 * 8))
	if err != nil {
		return err
	}
	_, err = h.ConvolutionForward(cudnn.FwdAlgoFFT, px, xd, pw, fd, cd, py)
	return err
}

// modeProbeWorkload is a small relu+gemm+relu sequence shared by the
// checkpoint and mode-comparison benchmarks.
func modeProbeWorkload(ctx *cudart.Context, h *cudnn.Handle) (uint64, error) {
	m, n, k := 48, 40, 32
	x := make([]float32, m*k)
	w := make([]float32, k*n)
	for i := range x {
		x[i] = float32(i%9) * 0.125
	}
	for i := range w {
		w[i] = float32(i%5)*0.25 - 0.5
	}
	px, err := ctx.Malloc(uint64(4 * len(x)))
	if err != nil {
		return 0, err
	}
	ctx.MemcpyF32HtoD(px, x)
	pw, err := ctx.Malloc(uint64(4 * len(w)))
	if err != nil {
		return 0, err
	}
	ctx.MemcpyF32HtoD(pw, w)
	pa, err := ctx.Malloc(uint64(4 * len(x)))
	if err != nil {
		return 0, err
	}
	pc, err := ctx.Malloc(uint64(4 * m * n))
	if err != nil {
		return 0, err
	}
	if err := h.ActivationForward(px, pa, len(x)); err != nil {
		return 0, err
	}
	if err := h.Gemm(pa, pw, pc, m, n, k, 1, 0); err != nil {
		return 0, err
	}
	if err := h.ActivationForward(pc, pc, m*n); err != nil {
		return 0, err
	}
	return pc, nil
}

// runModeProbe runs the probe functionally (eng == nil) or under timing.
func runModeProbe(eng *timing.Engine) error {
	ctx := cudart.NewContext(exec.BugSet{})
	h, err := cudnn.Create(ctx)
	if err != nil {
		return err
	}
	if eng != nil {
		ctx.SetRunner(timing.Runner{E: eng})
	}
	_, err = modeProbeWorkload(ctx, h)
	return err
}

// runCheckpointRoundTrip captures a checkpoint mid-GEMM and resumes it in
// performance mode, verifying the state survives an encode/decode.
func runCheckpointRoundTrip() error {
	ctx := cudart.NewContext(exec.BugSet{})
	h, err := cudnn.Create(ctx)
	if err != nil {
		return err
	}
	cap := &checkpoint.CaptureRunner{Ctx: ctx, P: checkpoint.Point{KernelX: 1, CTAM: 1, CTAT: 1, InstrY: 30}}
	ctx.SetRunner(cap)
	if _, err := modeProbeWorkload(ctx, h); err != nil {
		return err
	}
	if cap.State == nil {
		return fmt.Errorf("no checkpoint captured")
	}
	blob, err := cap.State.Encode()
	if err != nil {
		return err
	}
	st, err := checkpoint.Decode(blob)
	if err != nil {
		return err
	}
	ctx2 := cudart.NewContext(exec.BugSet{})
	h2, err := cudnn.Create(ctx2)
	if err != nil {
		return err
	}
	eng, err := timing.New(timing.GTX1050())
	if err != nil {
		return err
	}
	res := &checkpoint.ResumeRunner{Ctx: ctx2, State: st, Engine: eng}
	ctx2.SetRunner(res)
	res.Restore()
	if _, err := modeProbeWorkload(ctx2, h2); err != nil {
		return err
	}
	if eng.Cycle() == 0 {
		return fmt.Errorf("resume did not run in performance mode")
	}
	return nil
}
