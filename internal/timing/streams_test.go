package timing_test

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/cudart"
	"repro/internal/exec"
	"repro/internal/timing"
)

// streamPTX is a bandwidth+ALU kernel used to exercise concurrent
// streams: y[i] = x[i]*x[i] + y[i], over disjoint buffers per stream.
const streamPTX = `
.version 6.0
.target sm_61
.address_size 64

.visible .entry sqadd(
	.param .u64 pX,
	.param .u64 pY,
	.param .u32 pN
)
{
	.reg .pred %p<2>;
	.reg .f32 %f<5>;
	.reg .b32 %r<6>;
	.reg .b64 %rd<6>;

	ld.param.u64 %rd1, [pX];
	ld.param.u64 %rd2, [pY];
	ld.param.u32 %r1, [pN];
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mov.u32 %r4, %tid.x;
	mad.lo.s32 %r5, %r2, %r3, %r4;
	setp.ge.u32 %p1, %r5, %r1;
	@%p1 bra DONE;
	cvta.to.global.u64 %rd1, %rd1;
	cvta.to.global.u64 %rd2, %rd2;
	mul.wide.u32 %rd3, %r5, 4;
	add.s64 %rd4, %rd1, %rd3;
	add.s64 %rd5, %rd2, %rd3;
	ld.global.f32 %f2, [%rd4];
	ld.global.f32 %f3, [%rd5];
	fma.rn.f32 %f4, %f2, %f2, %f3;
	st.global.f32 [%rd5], %f4;
DONE:
	ret;
}
`

// spinPTX is a compute-bound kernel (dependent fma chain) that cannot
// fill the GPU on its own — the shape the paper found typical of small
// cuDNN kernels, where inter-kernel concurrency is the only way to keep
// the SMs busy.
const spinPTX = `
.version 6.0
.target sm_61
.address_size 64

.visible .entry spin(
	.param .u64 pY,
	.param .u32 pIters
)
{
	.reg .pred %p<2>;
	.reg .f32 %f<3>;
	.reg .b32 %r<8>;
	.reg .b64 %rd<4>;

	ld.param.u64 %rd1, [pY];
	ld.param.u32 %r1, [pIters];
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mov.u32 %r4, %tid.x;
	mad.lo.s32 %r5, %r2, %r3, %r4;
	cvta.to.global.u64 %rd1, %rd1;
	mul.wide.u32 %rd2, %r5, 4;
	add.s64 %rd3, %rd1, %rd2;
	ld.global.f32 %f1, [%rd3];
	mov.f32 %f2, 0f3F800199;
	mov.u32 %r6, 0;
LOOP:
	fma.rn.f32 %f1, %f1, %f2, %f2;
	add.s32 %r6, %r6, 1;
	setp.lt.u32 %p1, %r6, %r1;
	@%p1 bra LOOP;
	st.global.f32 [%rd3], %f1;
	ret;
}
`

const streamN = 1 << 11

// runSpin launches `lanes` copies of the small compute-bound kernel —
// one per stream when concurrent, back-to-back on the default stream
// otherwise — and returns the engine-cycle total plus the stats log.
func runSpin(t testing.TB, lanes int, concurrent bool) (uint64, []cudart.KernelStats) {
	t.Helper()
	ctx := cudart.NewContext(exec.BugSet{})
	eng, err := timing.New(timing.GTX1050())
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetRunner(timing.Runner{E: eng})
	if _, err := ctx.RegisterModule(spinPTX); err != nil {
		t.Fatal(err)
	}
	const threads = 256
	ys := make([]uint64, lanes)
	for i := range ys {
		ys[i], _ = ctx.Malloc(4 * threads)
		ctx.MemcpyF32HtoD(ys[i], make([]float32, threads))
	}
	start := eng.Cycle()
	for i := range ys {
		s := cudart.DefaultStream
		if concurrent {
			s = ctx.StreamCreate()
		}
		p := cudart.NewParams().Ptr(ys[i]).U32(256)
		if _, err := ctx.LaunchOnStream(s, "spin", exec.Dim3{X: 2}, exec.Dim3{X: threads / 2}, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctx.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	return eng.Cycle() - start, append([]cudart.KernelStats(nil), ctx.KernelStatsLog()...)
}

func putF32(buf []byte, i int, v float32) {
	bits := math.Float32bits(v)
	buf[4*i] = byte(bits)
	buf[4*i+1] = byte(bits >> 8)
	buf[4*i+2] = byte(bits >> 16)
	buf[4*i+3] = byte(bits >> 24)
}

// streamSnapshot captures everything the stream differential compares.
type streamSnapshot struct {
	TotalCycles uint64
	Log         []cudart.KernelStats
	Outputs     [][]float32
	Stats       timing.Stats
}

// runStreams executes `lanes` kernels over disjoint buffer pairs — one
// per stream when concurrent, all on the legacy default stream when
// serialized — and snapshots the results. All uploads that would
// synchronise happen before the first launch so concurrent launches
// really coexist in the engine; with asyncCopy each lane's y upload
// instead rides its stream through the detailed copy-engine model.
func runStreams(t testing.TB, workers, lanes int, concurrent, asyncCopy bool) streamSnapshot {
	t.Helper()
	ctx := cudart.NewContext(exec.BugSet{})
	eng, err := timing.New(timing.GTX1050(), timing.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetRunner(timing.Runner{E: eng})
	if _, err := ctx.RegisterModule(streamPTX); err != nil {
		t.Fatal(err)
	}

	type lane struct {
		px, py uint64
		ybuf   []byte // pending async upload (nil when uploaded sync)
	}
	prep := make([]lane, lanes)
	for i := range prep {
		x := make([]float32, streamN)
		y := make([]float32, streamN)
		for j := range x {
			x[j] = float32((j+i)%17)*0.25 - 1
			y[j] = float32(j%5) * 0.5
		}
		prep[i].px, _ = ctx.Malloc(4 * streamN)
		ctx.MemcpyF32HtoD(prep[i].px, x)
		prep[i].py, _ = ctx.Malloc(4 * streamN)
		if asyncCopy && concurrent {
			buf := make([]byte, 4*streamN)
			for j, v := range y {
				putF32(buf, j, v)
			}
			prep[i].ybuf = buf
		} else {
			ctx.MemcpyF32HtoD(prep[i].py, y)
		}
	}

	start := eng.Cycle()
	grid := exec.Dim3{X: (streamN + 127) / 128}
	block := exec.Dim3{X: 128}
	for i := range prep {
		s := cudart.DefaultStream
		if concurrent {
			s = ctx.StreamCreate()
		}
		if prep[i].ybuf != nil {
			if err := ctx.MemcpyHtoDAsync(prep[i].py, prep[i].ybuf, s); err != nil {
				t.Fatal(err)
			}
		}
		p := cudart.NewParams().Ptr(prep[i].px).Ptr(prep[i].py).U32(streamN)
		if _, err := ctx.LaunchOnStream(s, "sqadd", grid, block, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctx.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	snap := streamSnapshot{
		TotalCycles: eng.Cycle() - start,
		Log:         append([]cudart.KernelStats(nil), ctx.KernelStatsLog()...),
		Stats:       *eng.Stats(),
	}
	for i := range prep {
		snap.Outputs = append(snap.Outputs, ctx.MemcpyF32DtoH(prep[i].py, streamN))
	}
	return snap
}

// TestStreamVsSerialDifferential is the stream determinism contract: a
// multi-stream workload run concurrently must produce exactly the same
// final device memory and per-kernel instruction counts as the same
// workload serialized on the legacy default-stream path. (Cycles differ —
// that is the point of overlap.)
func TestStreamVsSerialDifferential(t *testing.T) {
	const lanes = 3
	conc := runStreams(t, 1, lanes, true, true)
	serial := runStreams(t, 1, lanes, false, false)

	if len(conc.Log) != len(serial.Log) {
		t.Fatalf("launch counts diverged: %d vs %d", len(conc.Log), len(serial.Log))
	}
	for i := range conc.Log {
		if conc.Log[i].WarpInstrs != serial.Log[i].WarpInstrs {
			t.Errorf("kernel %d instruction count diverged: concurrent %d vs serial %d",
				i, conc.Log[i].WarpInstrs, serial.Log[i].WarpInstrs)
		}
		if conc.Log[i].Cycles == 0 {
			t.Errorf("kernel %d has no cycles — did not go through the detailed model", i)
		}
	}
	if !reflect.DeepEqual(conc.Outputs, serial.Outputs) {
		t.Error("final device memory diverged between concurrent and serialized runs")
	}
}

// TestStreamWorkerDeterminism checks the concurrent multi-stream path
// preserves PR 1's contract: byte-identical results for any -j count.
func TestStreamWorkerDeterminism(t *testing.T) {
	const lanes = 3
	base := runStreams(t, 1, lanes, true, true)
	for _, workers := range []int{2, 4, 7} {
		got := runStreams(t, workers, lanes, true, true)
		if base.TotalCycles != got.TotalCycles {
			t.Errorf("-j1 vs -j%d total cycles diverged: %d vs %d",
				workers, base.TotalCycles, got.TotalCycles)
		}
		if !reflect.DeepEqual(base.Log, got.Log) {
			t.Errorf("-j1 vs -j%d per-kernel stats diverged:\n%+v\n%+v",
				workers, base.Log, got.Log)
		}
		if !reflect.DeepEqual(base.Outputs, got.Outputs) {
			t.Errorf("-j1 vs -j%d outputs diverged", workers)
		}
	}
}

// TestStreamOverlapBeatsSerial is the acceptance check: two small
// kernels on different streams must overlap in the detailed model,
// finishing in measurably fewer total cycles than the serialized sum.
func TestStreamOverlapBeatsSerial(t *testing.T) {
	conc, _ := runSpin(t, 2, true)
	_, serialLog := runSpin(t, 2, false)

	var serialSum uint64
	for _, k := range serialLog {
		serialSum += k.Cycles
	}
	if conc == 0 || serialSum == 0 {
		t.Fatal("workload did not exercise the timing engine")
	}
	// "measurably below": at least 10% saved, far outside determinism noise
	if conc >= serialSum*9/10 {
		t.Fatalf("streams did not overlap: concurrent total %d cycles vs serialized sum %d",
			conc, serialSum)
	}
	t.Logf("concurrent %d cycles vs serialized sum %d (%.0f%% saved)",
		conc, serialSum, 100*(1-float64(conc)/float64(serialSum)))
}

// TestSubmitDrainDirect drives Engine.Submit/Drain without the cudart
// layer: two grids on different streams, tickets carry attributable
// per-kernel stats, and a same-stream pair serialises.
func TestSubmitDrainDirect(t *testing.T) {
	ctx := cudart.NewContext(exec.BugSet{})
	eng, err := timing.New(timing.GTX1050())
	if err != nil {
		t.Fatal(err)
	}
	// note: runner not installed — we drive the engine directly
	if _, err := ctx.RegisterModule(streamPTX); err != nil {
		t.Fatal(err)
	}
	mkGrid := func(lane int) *exec.Grid {
		x := make([]float32, streamN)
		px, _ := ctx.Malloc(4 * streamN)
		ctx.MemcpyF32HtoD(px, x)
		py, _ := ctx.Malloc(4 * streamN)
		p := cudart.NewParams().Ptr(px).Ptr(py).U32(streamN)
		_, k, err := ctx.LookupKernel("sqadd")
		if err != nil {
			t.Fatal(err)
		}
		g, err := ctx.M.NewGrid(k, exec.Dim3{X: 32}, exec.Dim3{X: 128}, p.Bytes(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	t1, err := eng.Submit(mkGrid(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := eng.Submit(mkGrid(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Done() || t2.Done() {
		t.Fatal("tickets done before Drain")
	}
	if _, err := t1.Stats(); err == nil {
		t.Fatal("expected Stats to error before Drain")
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	s1, err := t1.Stats()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := t2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range []cudart.KernelStats{s1, s2} {
		if s.Name != "sqadd" || s.Cycles == 0 || s.WarpInstrs == 0 {
			t.Fatalf("ticket %d stats not attributed: %+v", i, s)
		}
	}
	if s1.WarpInstrs != s2.WarpInstrs {
		t.Fatalf("identical grids reported different instruction counts: %d vs %d",
			s1.WarpInstrs, s2.WarpInstrs)
	}
}

// BenchmarkStreamOverlap reports the cycle savings of concurrent stream
// execution over serialized launches for 2 and 4 streams of small
// compute-bound kernels.
func BenchmarkStreamOverlap(b *testing.B) {
	for _, lanes := range []int{2, 4} {
		b.Run(fmt.Sprintf("streams=%d", lanes), func(b *testing.B) {
			var conc, serialSum uint64
			for i := 0; i < b.N; i++ {
				c, _ := runSpin(b, lanes, true)
				_, sLog := runSpin(b, lanes, false)
				conc = c
				serialSum = 0
				for _, k := range sLog {
					serialSum += k.Cycles
				}
			}
			b.ReportMetric(float64(conc), "cycles_concurrent")
			b.ReportMetric(float64(serialSum), "cycles_serial_sum")
			b.ReportMetric(float64(serialSum)/float64(conc), "overlap_speedup")
		})
	}
}
