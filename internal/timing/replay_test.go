package timing

import (
	"reflect"
	"testing"

	"repro/internal/cudart"
	"repro/internal/exec"
)

// This file locks hybrid replay mode (replay.go) to its two contracts:
// signatures must separate launches that could time differently and
// collide for byte-identical re-launches, and the hybrid engine must
// produce byte-identical final memory — exactly equal everything on a
// cold cache, exactly equal memory with tolerance-bounded per-kernel
// cycles on a warm one. The differential workload (eqPTX / eqPlan) is
// race-free by construction — streams write disjoint buffers — so
// replaying a kernel's functional effect atomically at retirement cannot
// reorder visible writes.

// runReplaySchedule executes a multi-round schedule on one engine:
// rounds[r] lists the eqOp indices submitted (in order) before the r-th
// Drain. Stream accumulator buffers and per-op input buffers are
// allocated once, up front, so a later round re-submitting an op builds a
// byte-identical parameter image (same device pointers) — which is
// exactly what makes its replay signature collide with the entry an
// earlier round recorded. Returned snapshots: cumulative cycles, this
// round's per-ticket stats, and the per-stream buffer contents after the
// round. Only the final round's Stats snapshot is safe to deep-compare
// (earlier snapshots share time-series backing arrays that later rounds
// keep growing).
func runReplaySchedule(t *testing.T, ops []eqOp, streams int, cfg Config, workers int, rounds [][]int) []eqResult {
	t.Helper()
	ctx := cudart.NewContext(exec.BugSet{})
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := ctx.RegisterModule(eqPTX); err != nil {
		t.Fatal(err)
	}
	_, kern, err := ctx.LookupKernel("sqadd")
	if err != nil {
		t.Fatal(err)
	}

	bufs := make([]uint64, streams)
	for s := range bufs {
		init := make([]float32, eqBufN)
		for i := range init {
			init[i] = float32((i+s)%9) * 0.5
		}
		bufs[s], _ = ctx.Malloc(4 * eqBufN)
		ctx.MemcpyF32HtoD(bufs[s], init)
	}
	pxs := make([]uint64, len(ops))
	for i, op := range ops {
		if op.kernel {
			pxs[i], _ = ctx.Malloc(uint64(4 * op.n))
			ctx.MemcpyF32HtoD(pxs[i], op.data)
		}
	}

	var out []eqResult
	for _, round := range rounds {
		var tickets []*Ticket
		for _, i := range round {
			op := ops[i]
			if op.kernel {
				p := cudart.NewParams().Ptr(pxs[i]).Ptr(bufs[op.stream]).U32(uint32(op.n))
				g, err := ctx.M.NewGrid(kern, exec.Dim3{X: (op.n + 63) / 64}, exec.Dim3{X: 64}, p.Bytes(), 0)
				if err != nil {
					t.Fatal(err)
				}
				tk, err := eng.Submit(g, op.stream)
				if err != nil {
					t.Fatal(err)
				}
				tickets = append(tickets, tk)
			} else {
				dst, data := bufs[op.stream], op.data
				tickets = append(tickets, eng.SubmitCopy(op.stream, 4*op.n, func() { ctx.MemcpyF32HtoD(dst, data) }))
			}
		}
		if err := eng.drain(workers); err != nil {
			t.Fatalf("drain: %v", err)
		}
		res := eqResult{Cycles: eng.Cycle(), Stats: *eng.Stats()}
		for i, tk := range tickets {
			st, err := tk.Stats()
			if err != nil {
				t.Fatalf("ticket %d failed: %v", i, err)
			}
			res.Tickets = append(res.Tickets, st)
		}
		for s := range bufs {
			res.Outputs = append(res.Outputs, ctx.MemcpyF32DtoH(bufs[s], eqBufN))
		}
		out = append(out, res)
	}
	return out
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// normalizeReplayCounters zeroes the counters that legitimately differ
// between a replay-enabled engine and a detailed one (the hybrid engine
// counts misses even when every launch runs in detail).
func normalizeReplayCounters(s Stats) Stats {
	s.ReplayHits = 0
	s.ReplayMisses = 0
	s.ReplayResamples = 0
	s.ReplayedCycles = 0
	s.ReplayDriftCycles = 0
	return s
}

// TestReplaySignature is the table-driven signature contract: two
// byte-identical launches collide (including the same PTX re-parsed into
// a different module), and every launch ingredient — parameter bytes,
// grid/block dims, dynamic shared size, kernel code, engine config —
// separates signatures. The replay knobs themselves must be masked out
// of the config fingerprint.
func TestReplaySignature(t *testing.T) {
	cfg := GTX1050()
	newGrid := func(src string, gd, bd exec.Dim3, shared int, bumpParam bool) *exec.Grid {
		ctx := cudart.NewContext(exec.BugSet{})
		if _, err := ctx.RegisterModule(src); err != nil {
			t.Fatal(err)
		}
		_, kern, err := ctx.LookupKernel("sqadd")
		if err != nil {
			t.Fatal(err)
		}
		// identical allocation sequence in every context → identical
		// device pointers → param-image equality is decided by the
		// explicit bump alone
		px, _ := ctx.Malloc(4 * 64)
		py, _ := ctx.Malloc(4 * 64)
		n := uint32(64)
		if bumpParam {
			n = 63
		}
		p := cudart.NewParams().Ptr(px).Ptr(py).U32(n)
		g, err := ctx.M.NewGrid(kern, gd, bd, p.Bytes(), shared)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	gd, bd := exec.Dim3{X: 4}, exec.Dim3{X: 64}
	// same entry name and semantics-preserving extra instruction: a
	// code-only difference
	patchedPTX := eqPTX[:len(eqPTX)-len("DONE:\n\tret;\n}\n")] + "DONE:\n\tmov.u32 %r2, %r2;\n\tret;\n}\n"

	rc := newReplayCache(&cfg)
	base := rc.signature(newGrid(eqPTX, gd, bd, 0, false))

	altCfg := cfg
	altCfg.L2Lat++
	maskedCfg := cfg
	maskedCfg.ReplayEnabled = true
	maskedCfg.ReplayResampleEvery = 7

	cases := []struct {
		name      string
		cache     *replayCache
		grid      *exec.Grid
		wantEqual bool
	}{
		{"identical launch", rc, newGrid(eqPTX, gd, bd, 0, false), true},
		{"same source reparsed", newReplayCache(&cfg), newGrid(eqPTX, gd, bd, 0, false), true},
		{"replay knobs masked from config hash", newReplayCache(&maskedCfg), newGrid(eqPTX, gd, bd, 0, false), true},
		{"different param bytes", rc, newGrid(eqPTX, gd, bd, 0, true), false},
		{"different grid dim", rc, newGrid(eqPTX, exec.Dim3{X: 5}, bd, 0, false), false},
		{"different block dim", rc, newGrid(eqPTX, gd, exec.Dim3{X: 32}, 0, false), false},
		{"different dynamic shared size", rc, newGrid(eqPTX, gd, bd, 16, false), false},
		{"different kernel code", rc, newGrid(patchedPTX, gd, bd, 0, false), false},
		{"different engine config", newReplayCache(&altCfg), newGrid(eqPTX, gd, bd, 0, false), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.cache.signature(tc.grid)
			if (got == base) != tc.wantEqual {
				t.Errorf("signature equality = %v, want %v", got == base, tc.wantEqual)
			}
		})
	}
}

// TestReplayColdCacheByteIdentical: a replay-enabled engine with an empty
// cache must be byte-identical to a detailed engine — cycles, per-ticket
// stats, engine counters and final device memory — under both -j1 and
// -jN. Intra-batch duplicates cannot hit (entries commit only at batch
// end), so the first Drain of any workload is always exact.
func TestReplayColdCacheByteIdentical(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		ops, streams := eqPlan(seed)
		rounds := [][]int{allIdx(len(ops))}
		nKernels := uint64(0)
		for _, op := range ops {
			if op.kernel {
				nKernels++
			}
		}
		for _, workers := range []int{1, 4} {
			det := runReplaySchedule(t, ops, streams, GTX1050(), workers, rounds)[0]
			cfg := GTX1050()
			cfg.ReplayEnabled = true
			hyb := runReplaySchedule(t, ops, streams, cfg, workers, rounds)[0]

			if hyb.Cycles != det.Cycles {
				t.Errorf("seed=%d j%d: cold-cache cycles diverged: hybrid %d vs detailed %d",
					seed, workers, hyb.Cycles, det.Cycles)
			}
			if !reflect.DeepEqual(hyb.Tickets, det.Tickets) {
				t.Errorf("seed=%d j%d: cold-cache per-ticket stats diverged", seed, workers)
			}
			if !reflect.DeepEqual(hyb.Outputs, det.Outputs) {
				t.Errorf("seed=%d j%d: cold-cache final device memory diverged", seed, workers)
			}
			if got, want := normalizeReplayCounters(hyb.Stats), normalizeReplayCounters(det.Stats); !reflect.DeepEqual(got, want) {
				t.Errorf("seed=%d j%d: cold-cache engine stats diverged:\nhybrid:   %+v\ndetailed: %+v",
					seed, workers, got, want)
			}
			if hyb.Stats.ReplayHits != 0 || hyb.Stats.ReplayMisses != nKernels {
				t.Errorf("seed=%d j%d: cold cache counted hits=%d misses=%d, want 0/%d",
					seed, workers, hyb.Stats.ReplayHits, hyb.Stats.ReplayMisses, nKernels)
			}
		}
	}
}

// TestReplayWarmCache re-runs the same batch three times. Rounds 2 and 3
// must (a) replay every kernel launch with exactly the cycle count round
// 1 measured, (b) leave final device memory byte-identical to a detailed
// engine running the same three rounds, and (c) keep per-kernel cycles
// within 4x of the detailed engine's same-round measurement — the
// tolerance exists because the detailed engine re-runs against warm
// L1/L2 state while replay reports the memoized cold-round timing
// (measured warmth effect on this workload is ~3x; ReplayResampleEvery
// is the production answer when that drift matters).
func TestReplayWarmCache(t *testing.T) {
	ops, streams := eqPlan(3)
	all := allIdx(len(ops))
	rounds := [][]int{all, all, all}
	det := runReplaySchedule(t, ops, streams, GTX1050(), 1, rounds)
	cfg := GTX1050()
	cfg.ReplayEnabled = true
	hyb := runReplaySchedule(t, ops, streams, cfg, 1, rounds)

	if !reflect.DeepEqual(hyb[2].Outputs, det[2].Outputs) {
		t.Error("warm-cache final device memory diverged from detailed")
	}
	nKernels := uint64(0)
	for _, op := range ops {
		if op.kernel {
			nKernels++
		}
	}
	for r := 1; r <= 2; r++ {
		for i := range all {
			if !ops[i].kernel {
				continue
			}
			h := hyb[r].Tickets[i]
			if !h.Replayed {
				t.Errorf("round %d ticket %d: identical re-launch was not replayed", r+1, i)
				continue
			}
			if want := hyb[0].Tickets[i].Cycles; h.Cycles != want {
				t.Errorf("round %d ticket %d: replayed %d cycles, memoized round-1 measured %d",
					r+1, i, h.Cycles, want)
			}
			d := det[r].Tickets[i].Cycles
			if h.Cycles > 4*d || d > 4*h.Cycles {
				t.Errorf("round %d ticket %d: replayed cycles %d outside 4x of detailed %d",
					r+1, i, h.Cycles, d)
			}
		}
	}
	final := hyb[2].Stats
	if final.ReplayHits != 2*nKernels || final.ReplayMisses != nKernels {
		t.Errorf("warm cache counted hits=%d misses=%d, want %d/%d",
			final.ReplayHits, final.ReplayMisses, 2*nKernels, nKernels)
	}
	if cov := final.ReplayCoverage(); cov <= 0.5 {
		t.Errorf("ReplayCoverage() = %v, want > 0.5 after two warm rounds", cov)
	}
}

// TestReplayMixedEquivalence drains a warm-up batch and then a batch
// mixing replay hits, cold misses and copies, and demands the -j1 and
// -j4 runs agree byte-for-byte on everything including the replay
// counters — replay decisions live on the coordinator, so worker count
// must not be able to influence them.
func TestReplayMixedEquivalence(t *testing.T) {
	ops, streams := eqPlan(5)
	var warm []int
	for i := range ops {
		if i%2 == 0 {
			warm = append(warm, i)
		}
	}
	rounds := [][]int{warm, allIdx(len(ops))}
	cfg := GTX1050()
	cfg.ReplayEnabled = true
	j1 := runReplaySchedule(t, ops, streams, cfg, 1, rounds)
	j4 := runReplaySchedule(t, ops, streams, cfg, 4, rounds)

	for r := range rounds {
		if j1[r].Cycles != j4[r].Cycles {
			t.Errorf("round %d: cycles diverged across worker counts: j1 %d vs j4 %d",
				r+1, j1[r].Cycles, j4[r].Cycles)
		}
		if !reflect.DeepEqual(j1[r].Tickets, j4[r].Tickets) {
			t.Errorf("round %d: per-ticket stats diverged across worker counts", r+1)
		}
		if !reflect.DeepEqual(j1[r].Outputs, j4[r].Outputs) {
			t.Errorf("round %d: final device memory diverged across worker counts", r+1)
		}
	}
	if !reflect.DeepEqual(j1[1].Stats, j4[1].Stats) {
		t.Errorf("engine stats diverged across worker counts:\nj1: %+v\nj4: %+v", j1[1].Stats, j4[1].Stats)
	}
	if j1[1].Stats.ReplayHits == 0 || j1[1].Stats.ReplayMisses == 0 {
		t.Errorf("mixed batch should see both hits and misses, got hits=%d misses=%d",
			j1[1].Stats.ReplayHits, j1[1].Stats.ReplayMisses)
	}
}

// TestReplayResample pins the re-sampling cadence: with
// ReplayResampleEvery=2 a single repeated launch alternates hit /
// detailed re-sample after its cold miss, every re-sample refreshing the
// entry (which restarts the cadence) and feeding the drift counter.
func TestReplayResample(t *testing.T) {
	ops, streams := eqPlan(1)
	k := -1
	for i, op := range ops {
		if op.kernel {
			k = i
			break
		}
	}
	if k < 0 {
		t.Fatal("plan has no kernel op")
	}
	cfg := GTX1050()
	cfg.ReplayEnabled = true
	cfg.ReplayResampleEvery = 2
	rounds := make([][]int, 7)
	for r := range rounds {
		rounds[r] = []int{k}
	}
	res := runReplaySchedule(t, ops, streams, cfg, 1, rounds)
	final := res[6].Stats
	if final.ReplayMisses != 1 || final.ReplayHits != 3 || final.ReplayResamples != 3 {
		t.Errorf("cadence counted misses=%d hits=%d resamples=%d, want 1/3/3",
			final.ReplayMisses, final.ReplayHits, final.ReplayResamples)
	}
	wantReplayed := []bool{false, true, false, true, false, true, false}
	for r, want := range wantReplayed {
		if got := res[r].Tickets[0].Replayed; got != want {
			t.Errorf("round %d: Replayed=%v, want %v", r+1, got, want)
		}
	}
}
