package timing_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cudart"
	"repro/internal/exec"
	"repro/internal/timing"
	"repro/internal/torch"
)

// The transformer training step is the atomics-heavy stress workload:
// per step it chains the forward pass, the tied-embedding LM head, the
// fused softmax+cross-entropy, the full backward sweep (layernorm /
// GELU / attention backward, scatter-add embedding gradients) and the
// SGD update, with dgamma/dbeta and embedding gradients accumulated
// through global atomics that drain deterministically on the
// coordinator.

type trainSnapshot struct {
	Cycles  uint64
	Log     []cudart.KernelStats
	Losses  []float32
	CPU     []float32
	Weights [][]float32
	Stats   timing.Stats
}

// runTrain executes `steps` training steps of a 6-token sequence on the
// small test encoder and snapshots cycles, the kernel log, the replay
// counters, the loss trajectories and the final weights. Per-step
// activations are freed between steps (after priming the allocator with
// a reserve-and-release arena so step 0 sees the steady-state free-list
// shape) — with replay enabled, steps 2..n retire from the cache.
func runTrain(t testing.TB, workers, steps int, replay bool) trainSnapshot {
	t.Helper()
	dev, err := torch.NewDevice(exec.BugSet{})
	if err != nil {
		t.Fatal(err)
	}
	tcfg := timing.GTX1050()
	tcfg.ReplayEnabled = replay
	eng, err := timing.New(tcfg, timing.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	dev.Ctx.SetRunner(timing.Runner{E: eng})

	enc, err := torch.NewTransformerEncoder(dev, rand.New(rand.NewSource(7)), testTransformerConfig)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := torch.NewTransformerTrainer(dev, enc, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cpu := torch.NewCPUTrainState(enc)

	arena, err := dev.Ctx.Malloc(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Ctx.Free(arena); err != nil {
		t.Fatal(err)
	}
	baseline := map[uint64]bool{}
	for _, a := range dev.Ctx.Alloc.LiveAllocations() {
		baseline[a] = true
	}

	snap := trainSnapshot{}
	start := eng.Cycle()
	for step := 0; step < steps; step++ {
		ids := make([]int32, 6)
		for j := range ids {
			ids[j] = int32((step*17 + j*3 + 1) % testTransformerConfig.Vocab)
		}
		loss, err := tr.TrainStep(ids)
		if err != nil {
			t.Fatalf("train step %d: %v", step, err)
		}
		snap.Losses = append(snap.Losses, loss)
		snap.CPU = append(snap.CPU, cpu.TrainStep(ids, 0.05))
		for _, a := range dev.Ctx.Alloc.LiveAllocations() {
			if !baseline[a] {
				if err := dev.Ctx.Free(a); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	snap.Cycles = eng.Cycle() - start
	snap.Log = append([]cudart.KernelStats(nil), dev.Ctx.KernelStatsLog()...)
	snap.Stats = *eng.Stats()
	for _, p := range enc.Params() {
		snap.Weights = append(snap.Weights, p.W.ToHost())
	}
	return snap
}

// TestTrainSimMatchesCPU pushes three full training steps through the
// detailed timing model and checks the loss trajectory against the
// CPUTrainState host mirror — the training analogue of the
// workload-level forward differential contract.
func TestTrainSimMatchesCPU(t *testing.T) {
	snap := runTrain(t, 1, 3, false)
	if snap.Cycles == 0 {
		t.Fatal("training did not go through the timing engine")
	}
	for i := range snap.Losses {
		d := math.Abs(float64(snap.Losses[i] - snap.CPU[i]))
		if d > 2e-2 {
			t.Fatalf("step %d: sim loss %g vs cpu %g (diff %g)", i, snap.Losses[i], snap.CPU[i], d)
		}
	}
}

// TestTrainWorkerDeterminism extends the -j byte-identity contract to
// the training workload with replay enabled: cycles, the per-kernel
// stats log, the replay counters, the loss trajectory and the final
// weights must all be identical for any worker count. The backward
// pass's global atomics make this the sharpest determinism test in the
// suite — any worker-order leak shows up in the weight bytes.
func TestTrainWorkerDeterminism(t *testing.T) {
	base := runTrain(t, 1, 3, true)
	if base.Stats.ReplayHits == 0 {
		t.Fatal("replay never engaged — the steady-state steps did not hit the cache")
	}
	for _, workers := range []int{2, 4} {
		got := runTrain(t, workers, 3, true)
		if base.Cycles != got.Cycles {
			t.Errorf("-j1 vs -j%d total cycles diverged: %d vs %d", workers, base.Cycles, got.Cycles)
		}
		if !reflect.DeepEqual(base.Log, got.Log) {
			t.Errorf("-j1 vs -j%d per-kernel stats diverged", workers)
		}
		if !reflect.DeepEqual(base.Losses, got.Losses) {
			t.Errorf("-j1 vs -j%d losses diverged: %v vs %v", workers, base.Losses, got.Losses)
		}
		if !reflect.DeepEqual(base.Weights, got.Weights) {
			t.Errorf("-j1 vs -j%d final weights diverged", workers)
		}
		for _, c := range []struct {
			name      string
			base, got uint64
		}{
			{"replay hits", base.Stats.ReplayHits, got.Stats.ReplayHits},
			{"replay misses", base.Stats.ReplayMisses, got.Stats.ReplayMisses},
			{"replay resamples", base.Stats.ReplayResamples, got.Stats.ReplayResamples},
			{"replayed cycles", base.Stats.ReplayedCycles, got.Stats.ReplayedCycles},
			{"detailed kernel cycles", base.Stats.DetailedKernelCycles, got.Stats.DetailedKernelCycles},
			{"replay drift cycles", base.Stats.ReplayDriftCycles, got.Stats.ReplayDriftCycles},
			{"replay memo applied", base.Stats.ReplayMemoApplied, got.Stats.ReplayMemoApplied},
		} {
			if c.base != c.got {
				t.Errorf("-j1 vs -j%d %s diverged: %d vs %d", workers, c.name, c.base, c.got)
			}
		}
	}
}

// goldenTrain pins the two-step training workload (6-token sequences,
// -j1, detailed mode), including the per-kernel instruction counts of
// every backward-pass kernel family.
func goldenTrain(t *testing.T) goldenEntry {
	t.Helper()
	snap := runTrain(t, 1, 2, false)
	return makeGoldenEntry(snap.Cycles, snap.Log, &snap.Stats, true)
}
