package timing

import (
	"fmt"
	"testing"

	"repro/internal/cudart"
	"repro/internal/exec"
)

// benchDrainDepth builds the queue-depth workload — a transformer-batch-
// shaped mix of small same-stream kernels with interleaved copies, so
// the active set stays tiny while the queue is deep — and times one
// drain of it per iteration with the given drain function. Both twins
// below share it so their sim_cycles (and therefore ns_per_sim_cycle
// denominators) are directly comparable.
func benchDrainDepth(b *testing.B, depth int, drain func(*Engine) error) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		ctx := cudart.NewContext(exec.BugSet{})
		eng, err := New(GTX1050())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctx.RegisterModule(eqPTX); err != nil {
			b.Fatal(err)
		}
		_, kern, err := ctx.LookupKernel("sqadd")
		if err != nil {
			b.Fatal(err)
		}
		px, _ := ctx.Malloc(4 * 64)
		py, _ := ctx.Malloc(4 * 64)
		ctx.MemcpyF32HtoD(px, make([]float32, 64))
		ctx.MemcpyF32HtoD(py, make([]float32, 64))
		scratch := make([]float32, 64)
		for op := 0; op < depth; op++ {
			if op%8 == 7 {
				eng.SubmitCopy(0, 4*64, func() { ctx.MemcpyF32HtoD(py, scratch) })
				continue
			}
			p := cudart.NewParams().Ptr(px).Ptr(py).U32(64)
			g, err := ctx.M.NewGrid(kern, exec.Dim3{X: 1}, exec.Dim3{X: 64}, p.Bytes(), 0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Submit(g, 0); err != nil {
				b.Fatal(err)
			}
		}
		if err := drain(eng); err != nil {
			b.Fatal(err)
		}
		cycles = eng.Cycle()
		eng.Close()
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
	b.ReportMetric(float64(depth), "queue_depth")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cycles), "ns_per_sim_cycle")
}

var drainDepths = []int{1, 16, 256, 1024}

// BenchmarkDrainQueueDepth sweeps the submission-queue depth and
// reports the host cost per simulated cycle of the active-set drain.
// Before the active-set scheduler the drain loop rescanned every queued
// ticket each cycle, so ns_per_sim_cycle grew with depth; with the
// first-unfinished cursor + active-copy list it stays roughly flat from
// 16 to 1024 queued tickets (compare the Legacy twin below). Simulated
// cycle counts are identical across both loops at every depth — that
// contract is pinned by TestDrainEquivalence and the golden stats.
func BenchmarkDrainQueueDepth(b *testing.B) {
	for _, depth := range drainDepths {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			benchDrainDepth(b, depth, func(e *Engine) error { return e.drain(1) })
		})
	}
}

// BenchmarkDrainQueueDepthLegacy drains the same workload with the
// pre-rewrite full-scan loop kept as the reference implementation in
// equivalence_test.go, demonstrating the asymptotic win: its per-cycle
// cost grows linearly with queue depth.
func BenchmarkDrainQueueDepthLegacy(b *testing.B) {
	for _, depth := range drainDepths {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			benchDrainDepth(b, depth, func(e *Engine) error { return e.drainLegacyForTest(1) })
		})
	}
}
