package timing

import "testing"

// AdvanceTo is the multi-GPU layer's clock bridge: an idle engine jumps
// to a collective's completion cycle with the span charged as idle.
func TestAdvanceTo(t *testing.T) {
	e, err := New(GTX1050())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.AdvanceTo(1000); err != nil {
		t.Fatal(err)
	}
	if e.Cycle() != 1000 {
		t.Fatalf("cycle = %d, want 1000", e.Cycle())
	}
	if ff := e.Stats().FastForwardedCycles; ff != 1000 {
		t.Fatalf("FastForwardedCycles = %d, want 1000", ff)
	}
	wantIdle := uint64(1000) * uint64(e.Config().NumSMs*e.Config().SchedulersPerSM)
	if got := e.Stats().IdleSlotCycles; got != wantIdle {
		t.Fatalf("IdleSlotCycles = %d, want %d (span x issue slots)", got, wantIdle)
	}
	// Earlier or equal targets are a no-op — the clock never rewinds.
	if err := e.AdvanceTo(500); err != nil {
		t.Fatal(err)
	}
	if e.Cycle() != 1000 {
		t.Fatalf("cycle rewound to %d", e.Cycle())
	}
	// An engine with queued work refuses to jump.
	e.queue = append(e.queue, &Ticket{})
	if err := e.AdvanceTo(2000); err == nil {
		t.Fatal("AdvanceTo succeeded with a queued operation")
	}
	e.queue = e.queue[:0]
}

func TestPoolExportedRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		out := make([]int, 16)
		p.Run(len(out), func(i int) { out[i] = i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
		if p.Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", p.Workers(), workers)
		}
		p.Close()
	}
}
