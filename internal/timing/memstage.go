package timing

import (
	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/ptx"
)

// The memory stage models everything below a core's issue logic: the
// coalescer, the per-core L1, and the shared L2/DRAM partitions. It is
// split across the engine's cycle phases:
//
//   1. memIssue (parallel, per core): coalesce the warp access into
//      line-sized segments and look each up in the core-owned L1. Segments
//      that hit complete immediately; the rest become segRequests bound
//      for a partition.
//   2. partition.drain (parallel, per partition): service every queued
//      segment in canonical (core id, issue order) order through the
//      partition-owned L2 slice and DRAM channel.
//   3. applyMem (parallel, per core): fold segment completion times back
//      into the warp scoreboards and the core's L1 fill/MSHR state.
//
// Cross-core state is only ever touched in phase 2, in an order that does
// not depend on the worker count — that is the determinism contract.

// segRequest is one sector-sized segment of a warp memory access that
// needs the shared memory system.
type segRequest struct {
	addr   uint64
	issue  uint64 // cycle the warp issued the access (latency accounting)
	arrive uint64 // cycle the request reaches the partition
	part   int    // owning partition
	runID  int    // dense per-drain id of the owning grid (stat attribution)
	write  bool
	atomic bool
	merged bool // L1 MissMerged: rides the in-flight fill, no partition trip
	fillL1 bool // install the line in L1 on response
	done   uint64
}

// memRequest is one warp memory instruction in flight through the memory
// stage for the current cycle.
type memRequest struct {
	w        *warpCtx
	in       *ptx.Instr
	isStore  bool
	isAtomic bool
	done     uint64 // running max completion over already-resolved segments
	segs     []segRequest
}

// newReq appends a reset request to the core's queue, reusing backing
// storage from previous cycles.
func (c *smCore) newReq() *memRequest {
	if len(c.memQ) < cap(c.memQ) {
		c.memQ = c.memQ[:len(c.memQ)+1]
	} else {
		c.memQ = append(c.memQ, memRequest{})
	}
	r := &c.memQ[len(c.memQ)-1]
	r.segs = r.segs[:0]
	return r
}

// coalesce merges a warp memory operation into sector-sized segments
// (Config.sectorBytes: min of the L1 and L2 line sizes, so a segment
// never straddles an L2 line and always routes to exactly one
// partition), writing them into the core's persistent scratch slice.
func (c *smCore) coalesce(info *exec.StepInfo) []uint64 {
	segSize := c.eng.cfg.sectorBytes()
	segs := c.segScratch[:0]
	for l := 0; l < exec.WarpSize; l++ {
		if info.ActiveMask&(1<<l) == 0 {
			continue
		}
		base := info.Addrs[l] &^ (segSize - 1)
		found := false
		for _, s := range segs {
			if s == base {
				found = true
				break
			}
		}
		if !found {
			segs = append(segs, base)
		}
		// vector accesses may straddle a segment boundary
		endSeg := (info.Addrs[l] + uint64(info.AccSize) - 1) &^ (segSize - 1)
		if endSeg != base {
			found = false
			for _, s := range segs {
				if s == endSeg {
					found = true
					break
				}
			}
			if !found {
				segs = append(segs, endSeg)
			}
		}
	}
	c.segScratch = segs
	return segs
}

// memIssue runs the core-local half of the memory stage for one warp
// memory instruction: coalescing plus the L1 lookup. Segments needing the
// shared L2/DRAM are queued for the partition drain.
func (c *smCore) memIssue(info *exec.StepInfo, w *warpCtx, now uint64) {
	e := c.eng
	segs := c.coalesce(info)
	c.stats.MemInstructions++
	c.stats.MemSegments += uint64(len(segs))

	req := c.newReq()
	req.w = w
	req.in = info.Instr
	req.isStore = info.IsStore
	req.isAtomic = info.IsAtomic
	req.done = now

	for _, seg := range segs {
		c.stats.L1Accesses++
		res, _ := c.l1.Access(seg, info.IsStore)
		if res == cache.Hit && !info.IsAtomic {
			if d := now + uint64(e.cfg.L1HitLat); d > req.done {
				req.done = d
			}
			continue
		}
		if res == cache.MissMerged {
			// ride the in-flight fill; resolved against lastMissDone in
			// applyMem so earlier misses of this cycle are visible
			req.segs = append(req.segs, segRequest{addr: seg, merged: true})
			continue
		}
		retry := uint64(0)
		if res == cache.ReservationFail {
			// model the structural stall as waiting for the oldest miss;
			// lastMissDone here reflects completions up to the previous
			// cycle (this cycle's land in applyMem), a one-cycle lag the
			// staged pipeline accepts in exchange for determinism
			c.stats.MSHRFull++
			if c.lastMissDone > now {
				retry = c.lastMissDone - now
			}
		}
		// traverse NoC to the owning partition
		c.stats.NoCFlits++
		req.segs = append(req.segs, segRequest{
			addr:   seg,
			issue:  now,
			arrive: now + retry + uint64(e.cfg.NoCLat),
			part:   e.partOf(seg),
			runID:  w.runID,
			write:  info.IsStore,
			atomic: info.IsAtomic,
			fillL1: !info.IsStore && (res == cache.Miss || res == cache.ReservationFail),
		})
	}
}

// applyMem is phase 3: resolve every queued request's completion time and
// write it back into the warp scoreboard, L1 and MSHR-retry state. Runs
// per core, after the partition drain, in issue order.
//
// Invariant (idle-cycle fast-forward): every future event that could let
// a warp issue again must land in the scoreboard/minIssueAt state here as
// an absolute cycle number. The drain loop's fast-forward jumps the clock
// to the minimum of these wakeups when no scheduler issued, so a memory
// path that delayed a warp without recording a wakeup time would be
// skipped over — changing modelled cycles — instead of merely costing
// host time.
func (c *smCore) applyMem(now uint64) {
	e := c.eng
	hitLat := uint64(e.cfg.L1HitLat)
	turnaround := uint64(e.cfg.L2Lat)
	for i := range c.memQ {
		req := &c.memQ[i]
		done := req.done
		for j := range req.segs {
			s := &req.segs[j]
			var d uint64
			if s.merged {
				if c.lastMissDone > now {
					d = c.lastMissDone
				} else {
					d = now + hitLat
				}
			} else {
				if s.fillL1 {
					c.l1.Fill(s.addr, false)
				}
				if s.done > c.lastMissDone {
					c.lastMissDone = s.done
				}
				d = s.done
				if s.atomic {
					d += turnaround // read-modify-write turnaround at L2
				}
			}
			if d > done {
				done = d
			}
		}
		w := req.w
		switch {
		case req.isAtomic:
			w.minIssueAt = done
			if len(req.in.Dst) > 0 {
				w.markDst(req.in, done)
			}
		case req.isStore:
			// stores don't block the warp
		default:
			w.markDst(req.in, done)
		}
	}
}
