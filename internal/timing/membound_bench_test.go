package timing_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// BenchmarkMemoryBoundStream drives the streaming strided_saxpy workload
// at several occupancies and reports both the modelled outcome
// (avg_seg_latency_cycles — the load-dependent number the bandwidth-aware
// hierarchy produces) and the host cost per simulated cycle. The
// per-cycle drain cost must stay flat as occupancy grows: the partition's
// absolute-time resource reservations are O(1) per segment, so memory
// contention shows up only in modelled cycles, never in host-side
// per-cycle work (compare BENCH_5.json against the BenchmarkDrainQueueDepth
// baseline).
func BenchmarkMemoryBoundStream(b *testing.B) {
	for _, ctas := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("ctas=%d", ctas), func(b *testing.B) {
			var cycles uint64
			var avgLat float64
			for i := 0; i < b.N; i++ {
				res, err := core.RunStridedSaxpy(core.GTX1050, 1, ctas, 64, 1)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Engine.Cycle()
				avgLat = res.Engine.Stats().AvgSegmentLatency()
				res.Engine.Close()
			}
			b.ReportMetric(float64(cycles), "sim_cycles")
			b.ReportMetric(avgLat, "avg_seg_latency_cycles")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cycles), "ns_per_sim_cycle")
		})
	}
}
