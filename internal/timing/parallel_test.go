package timing_test

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/exec"
	"repro/internal/timing"
)

// runSnapshot captures everything the differential tests compare: the
// engine's cycle clock, the per-kernel stats log, the engine-wide counters
// and the functional outputs.
type runSnapshot struct {
	Cycles  uint64
	Log     []cudart.KernelStats
	Stats   timing.Stats
	Outputs []float32
}

// runWorkload executes one workload under a fresh context + engine with
// the given worker count and snapshots the results.
func runWorkload(t *testing.T, workers int, load func(t *testing.T, ctx *cudart.Context, h *cudnn.Handle) (uint64, int)) runSnapshot {
	t.Helper()
	ctx := cudart.NewContext(exec.BugSet{})
	h, err := cudnn.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := timing.New(timing.GTX1050(), timing.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetRunner(timing.Runner{E: eng})
	out, n := load(t, ctx, h)
	return runSnapshot{
		Cycles:  eng.Cycle(),
		Log:     ctx.KernelStatsLog(),
		Stats:   *eng.Stats(),
		Outputs: ctx.MemcpyF32DtoH(out, n),
	}
}

// assertIdentical compares a -j1 run against a -jN run field by field. The
// engine's determinism contract is byte-identical stats for any worker
// count, so any divergence is a bug, not noise.
func assertIdentical(t *testing.T, serial, parallel runSnapshot, workers int) {
	t.Helper()
	if serial.Cycles != parallel.Cycles {
		t.Errorf("cycle count diverged: -j1 %d vs -j%d %d", serial.Cycles, workers, parallel.Cycles)
	}
	if !reflect.DeepEqual(serial.Log, parallel.Log) {
		t.Errorf("per-kernel stats diverged:\n-j1: %+v\n-j%d: %+v", serial.Log, workers, parallel.Log)
	}
	if !reflect.DeepEqual(serial.Stats, parallel.Stats) {
		t.Errorf("engine stats diverged between -j1 and -j%d:\n-j1: %+v\n-j%d: %+v",
			workers, serial.Stats, workers, parallel.Stats)
	}
	if !reflect.DeepEqual(serial.Outputs, parallel.Outputs) {
		t.Errorf("functional outputs diverged between -j1 and -j%d", workers)
	}
}

func gemmLoad(t *testing.T, ctx *cudart.Context, h *cudnn.Handle) (uint64, int) {
	t.Helper()
	m, n, k := 64, 48, 56
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	for i := range a {
		a[i] = float32(i%11)*0.25 - 1
	}
	for i := range b {
		b[i] = float32(i%7)*0.5 - 1.5
	}
	pa, _ := ctx.Malloc(uint64(4 * len(a)))
	ctx.MemcpyF32HtoD(pa, a)
	pb, _ := ctx.Malloc(uint64(4 * len(b)))
	ctx.MemcpyF32HtoD(pb, b)
	pc, _ := ctx.Malloc(uint64(4 * m * n))
	if err := h.Gemm(pa, pb, pc, m, n, k, 1, 0); err != nil {
		t.Fatal(err)
	}
	return pc, m * n
}

func im2colConvLoad(t *testing.T, ctx *cudart.Context, h *cudnn.Handle) (uint64, int) {
	t.Helper()
	xd := cudnn.TensorDesc{N: 1, C: 3, H: 14, W: 14}
	fd := cudnn.FilterDesc{K: 4, C: 3, R: 3, S: 3}
	cd := cudnn.ConvDesc{Pad: 1, Stride: 1}
	yd := cudnn.TensorDesc{N: 1, C: fd.K, H: cd.OutDim(xd.H, fd.R), W: cd.OutDim(xd.W, fd.S)}
	x := make([]float32, xd.Count())
	for i := range x {
		x[i] = float32(i%13)*0.125 - 0.5
	}
	w := make([]float32, fd.Count())
	for i := range w {
		w[i] = float32(i%9)*0.25 - 1
	}
	px, _ := ctx.Malloc(uint64(4 * xd.Count()))
	ctx.MemcpyF32HtoD(px, x)
	pw, _ := ctx.Malloc(uint64(4 * fd.Count()))
	ctx.MemcpyF32HtoD(pw, w)
	py, _ := ctx.Malloc(uint64(4 * yd.Count()))
	// FwdAlgoGemm is the im2col + GEMM path.
	if _, err := h.ConvolutionForward(cudnn.FwdAlgoGemm, px, xd, pw, fd, cd, py); err != nil {
		t.Fatal(err)
	}
	return py, yd.Count()
}

func softmaxLoad(t *testing.T, ctx *cudart.Context, h *cudnn.Handle) (uint64, int) {
	t.Helper()
	rows, cols := 32, 40
	x := make([]float32, rows*cols)
	for i := range x {
		x[i] = float32(i%17)*0.3 - 2
	}
	px, _ := ctx.Malloc(uint64(4 * len(x)))
	ctx.MemcpyF32HtoD(px, x)
	py, _ := ctx.Malloc(uint64(4 * len(x)))
	if err := h.SoftmaxForward(px, py, rows, cols); err != nil {
		t.Fatal(err)
	}
	return py, rows * cols
}

// atomicLoad exercises cross-CTA global atomics (backward-filter Algorithm
// 1 accumulates dw with atom.global.add.f32). The engine defers atomics to
// a sequential drain, so even this must be deterministic across worker
// counts.
func atomicLoad(t *testing.T, ctx *cudart.Context, h *cudnn.Handle) (uint64, int) {
	t.Helper()
	xd := cudnn.TensorDesc{N: 1, C: 2, H: 12, W: 12}
	fd := cudnn.FilterDesc{K: 3, C: 2, R: 3, S: 3}
	cd := cudnn.ConvDesc{Pad: 1, Stride: 1}
	yd := cudnn.TensorDesc{N: 1, C: fd.K, H: cd.OutDim(xd.H, fd.R), W: cd.OutDim(xd.W, fd.S)}
	x := make([]float32, xd.Count())
	dy := make([]float32, yd.Count())
	for i := range x {
		x[i] = float32(i%5)*0.5 - 1
	}
	for i := range dy {
		dy[i] = float32(i%3)*0.25 - 0.25
	}
	px, _ := ctx.Malloc(uint64(4 * xd.Count()))
	ctx.MemcpyF32HtoD(px, x)
	pdy, _ := ctx.Malloc(uint64(4 * yd.Count()))
	ctx.MemcpyF32HtoD(pdy, dy)
	pdw, _ := ctx.Malloc(uint64(4 * fd.Count()))
	if err := h.ConvolutionBackwardFilter(cudnn.BwdFilterAlgo1, px, xd, pdy, yd, cd, pdw, fd); err != nil {
		t.Fatal(err)
	}
	return pdw, fd.Count()
}

// TestParallelDifferential is the determinism contract test: for each
// bench workload, a -j1 run and a -j4 run must produce byte-identical
// cycle counts, per-kernel stats, engine counters and outputs.
func TestParallelDifferential(t *testing.T) {
	cases := []struct {
		name string
		load func(*testing.T, *cudart.Context, *cudnn.Handle) (uint64, int)
	}{
		{"gemm", gemmLoad},
		{"im2col_gemm_conv", im2colConvLoad},
		{"softmax", softmaxLoad},
		{"atomic_bwd_filter", atomicLoad},
	}
	const workers = 4
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := runWorkload(t, 1, tc.load)
			parallel := runWorkload(t, workers, tc.load)
			assertIdentical(t, serial, parallel, workers)
			if serial.Cycles == 0 || len(serial.Log) == 0 {
				t.Fatal("workload did not exercise the timing engine")
			}
		})
	}
}

// TestParallelWorkerSweep checks a multi-kernel sequence stays identical
// across several worker counts, including oversubscription.
func TestParallelWorkerSweep(t *testing.T) {
	multi := func(t *testing.T, ctx *cudart.Context, h *cudnn.Handle) (uint64, int) {
		gemmLoad(t, ctx, h)
		softmaxLoad(t, ctx, h)
		return im2colConvLoad(t, ctx, h)
	}
	serial := runWorkload(t, 1, multi)
	for _, workers := range []int{2, 3, 8, runtime.NumCPU() + 3} {
		parallel := runWorkload(t, workers, multi)
		assertIdentical(t, serial, parallel, workers)
	}
}

// oobPTX faults during execution (shared store with no shared memory), so
// a perf-mode launch fails mid-kernel.
const oobPTX = `
.version 6.0
.target sm_61
.address_size 64
.visible .entry oob()
{
	.reg .f32 %f<2>;
	.reg .b32 %r<2>;
	mov.f32 %f1, 0f3F800000;
	mov.u32 %r1, 0;
	st.shared.f32 [%r1+4096], %f1;
	ret;
}
`

// TestEngineSurvivesFailedLaunch checks a failed kernel does not poison
// the engine: the error is reported once, the dead kernel's CTAs are
// dropped, and a subsequent launch simulates identically to a fresh run.
func TestEngineSurvivesFailedLaunch(t *testing.T) {
	ctx := cudart.NewContext(exec.BugSet{})
	h, err := cudnn.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := timing.New(timing.GTX1050(), timing.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetRunner(timing.Runner{E: eng})
	if _, err := ctx.RegisterModule(oobPTX); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Launch("oob", exec.Dim3{X: 2}, exec.Dim3{X: 64}, cudart.NewParams(), 0); err == nil {
		t.Fatal("expected the faulting kernel to error")
	}
	afterFail := eng.Cycle()
	out, n := gemmLoad(t, ctx, h)
	_ = ctx.MemcpyF32DtoH(out, n)
	log := ctx.KernelStatsLog()
	got := log[len(log)-1]

	fresh := runWorkload(t, 1, gemmLoad)
	want := fresh.Log[len(fresh.Log)-1]
	if got.Cycles != want.Cycles || got.WarpInstrs != want.WarpInstrs {
		t.Fatalf("post-failure launch diverged: got %d cycles / %d instrs, want %d / %d",
			got.Cycles, got.WarpInstrs, want.Cycles, want.WarpInstrs)
	}
	if eng.Cycle() <= afterFail {
		t.Fatal("engine clock did not advance after the failed launch")
	}
}

// TestRunnerWorkerOverride checks the per-runner worker override takes
// effect without disturbing determinism.
func TestRunnerWorkerOverride(t *testing.T) {
	ctx := cudart.NewContext(exec.BugSet{})
	h, err := cudnn.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := timing.New(timing.GTX1050())
	if err != nil {
		t.Fatal(err)
	}
	if eng.Workers() != 1 {
		t.Fatalf("default workers = %d, want 1", eng.Workers())
	}
	ctx.SetRunner(timing.Runner{E: eng, Workers: 4})
	out, n := gemmLoad(t, ctx, h)
	_ = ctx.MemcpyF32DtoH(out, n)

	serial := runWorkload(t, 1, gemmLoad)
	if eng.Cycle() != serial.Cycles {
		t.Fatalf("runner override diverged: %d vs %d cycles", eng.Cycle(), serial.Cycles)
	}
}
