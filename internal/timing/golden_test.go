package timing_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/serve"
	"repro/internal/timing"
	"repro/internal/torch"
)

var update = flag.Bool("update", false, "regenerate testdata/golden_stats.json")

// goldenEntry pins the headline timing numbers of one workload. The
// engine is deterministic, so any divergence is a real modelling change:
// intentional changes regenerate the file with
// `go test -run Golden ./internal/timing -update`, silent drifts fail CI.
// Flag ordering matters: -update is a flag of the test binary, not of
// `go test`, so it must come AFTER the package path — placed before it,
// `go test` rejects it with "flag provided but not defined: -update".
type goldenEntry struct {
	Cycles       uint64  `json:"cycles"`
	WarpInstrs   uint64  `json:"warp_instrs"`
	IPCMilli     uint64  `json:"ipc_milli"` // warp IPC * 1000, truncated
	L1Accesses   uint64  `json:"l1_accesses"`
	L2Accesses   uint64  `json:"l2_accesses"`
	DRAMAccesses uint64  `json:"dram_accesses"`
	L2MissRate   float64 `json:"l2_miss_rate"` // DRAM/L2, rounded to 1e-4
	// PerKernel pins the instruction counts of every kernel family the
	// workload launched (aggregated by name, sorted), so a silent change
	// in any one kernel's codegen or launch count fails CI even when the
	// headline totals happen to cancel out.
	PerKernel []kernelGolden `json:"per_kernel,omitempty"`
}

// kernelGolden aggregates one kernel name's launches in a workload,
// including its attributed share of the memory-system traffic (the
// bandwidth-aware hierarchy's per-kernel counters), so a silent change
// in attribution fails CI even when engine-wide totals cancel out.
type kernelGolden struct {
	Name         string `json:"name"`
	Launches     uint64 `json:"launches"`
	WarpInstrs   uint64 `json:"warp_instrs"`
	L2Accesses   uint64 `json:"l2_accesses"`
	DRAMAccesses uint64 `json:"dram_accesses"`
}

// lenetConvLoad is LeNet's first convolution layer (1x1x28x28 input,
// 6 5x5 filters, pad 2) on the implicit-GEMM path — the paper's
// canonical small-cuDNN-kernel shape.
func lenetConvLoad(t *testing.T, ctx *cudart.Context, h *cudnn.Handle) (uint64, int) {
	t.Helper()
	xd := cudnn.TensorDesc{N: 1, C: 1, H: 28, W: 28}
	fd := cudnn.FilterDesc{K: 6, C: 1, R: 5, S: 5}
	cd := cudnn.ConvDesc{Pad: 2, Stride: 1}
	yd := cudnn.TensorDesc{N: 1, C: fd.K, H: cd.OutDim(xd.H, fd.R), W: cd.OutDim(xd.W, fd.S)}
	x := make([]float32, xd.Count())
	for i := range x {
		x[i] = float32(i%23)*0.125 - 1.25
	}
	w := make([]float32, fd.Count())
	for i := range w {
		w[i] = float32(i%11)*0.25 - 1
	}
	px, _ := ctx.Malloc(uint64(4 * xd.Count()))
	ctx.MemcpyF32HtoD(px, x)
	pw, _ := ctx.Malloc(uint64(4 * fd.Count()))
	ctx.MemcpyF32HtoD(pw, w)
	py, _ := ctx.Malloc(uint64(4 * yd.Count()))
	if _, err := h.ConvolutionForward(cudnn.FwdAlgoImplicitGemm, px, xd, pw, fd, cd, py); err != nil {
		t.Fatal(err)
	}
	return py, yd.Count()
}

// perKernelGolden aggregates a stats log by kernel name, sorted, for the
// goldenEntry per-kernel pins.
func perKernelGolden(log []cudart.KernelStats) []kernelGolden {
	byName := map[string]*kernelGolden{}
	for _, k := range log {
		g := byName[k.Name]
		if g == nil {
			g = &kernelGolden{Name: k.Name}
			byName[k.Name] = g
		}
		g.Launches++
		g.WarpInstrs += k.WarpInstrs
		g.L2Accesses += k.L2Accesses
		g.DRAMAccesses += k.DRAMAccesses
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]kernelGolden, 0, len(names))
	for _, n := range names {
		out = append(out, *byName[n])
	}
	return out
}

// makeGoldenEntry builds one workload's golden pins from its cycle
// count, stats log and engine counters.
func makeGoldenEntry(cycles uint64, log []cudart.KernelStats, st *timing.Stats, perKernel bool) goldenEntry {
	var instrs uint64
	for _, k := range log {
		instrs += k.WarpInstrs
	}
	e := goldenEntry{
		Cycles:       cycles,
		WarpInstrs:   instrs,
		IPCMilli:     instrs * 1000 / cycles,
		L1Accesses:   st.L1Accesses,
		L2Accesses:   st.L2Accesses,
		DRAMAccesses: st.DRAMAccesses,
	}
	if e.L2Accesses > 0 {
		e.L2MissRate = float64(e.DRAMAccesses*10000/e.L2Accesses) / 10000
	}
	if perKernel {
		e.PerKernel = perKernelGolden(log)
	}
	return e
}

func goldenRun(t *testing.T, load func(*testing.T, *cudart.Context, *cudnn.Handle) (uint64, int)) goldenEntry {
	t.Helper()
	snap := runWorkload(t, 1, load)
	return makeGoldenEntry(snap.Cycles, snap.Log, &snap.Stats, false)
}

// goldenTransformer pins the stream-overlapped transformer-encoder
// forward batch (2 sequences on 2 concurrent streams, -j1), including
// the per-kernel instruction counts of every kernel family it launches.
func goldenTransformer(t *testing.T) goldenEntry {
	t.Helper()
	snap := runTransformer(t, 1, 2, true)
	return makeGoldenEntry(snap.Cycles, snap.Log, &snap.Stats, true)
}

// goldenStreams pins the concurrent_streams-shaped workload: three
// streams each carrying an async host-device copy feeding a kernel, so
// the copy engine, stream-ordered admission and the idle-cycle
// fast-forward path (cores stalled while transfers are mid-flight) are
// all locked by golden numbers beyond the transformer workload.
func goldenStreams(t *testing.T) goldenEntry {
	t.Helper()
	snap := runStreams(t, 1, 3, true, true)
	return makeGoldenEntry(snap.TotalCycles, snap.Log, &snap.Stats, true)
}

// goldenServe pins the inference-serving scenario: a 16-request pinned
// arrival trace (one request every 20k cycles, 6 tokens, 2 chain
// iterations) served by the continuous-batching scheduler on a 1-layer
// encoder at -j1, including per-kernel instruction counts. Cycles here
// are the serving clock (drain deltas plus idle fast-forwards), so the
// whole admission/batching path is locked, not just the engine.
func goldenServe(t *testing.T) goldenEntry {
	t.Helper()
	tr := serve.Trace{}
	for i := 0; i < 16; i++ {
		tr.Requests = append(tr.Requests, serve.Request{
			ID: i, Arrival: uint64(i) * 20_000, SeqLen: 6, Steps: 2,
		})
	}
	cfg := serve.Config{
		Model: torch.TransformerConfig{
			Layers: 1, Heads: 2, DModel: 16, FF: 32, Vocab: 29, MaxSeq: 8,
		},
	}
	res, err := serve.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return makeGoldenEntry(res.TotalCycles, res.Log, &res.Stats, true)
}

// goldenDecode pins the KV-cached autoregressive decode workload: two
// 3-token prompts greedy-decoded for 4 tokens each on concurrent
// streams at -j1, including per-kernel launch and instruction counts of
// the cache-aware attention kernels (append, cached QK/AV, causal
// softmax, logit GEMV, argmax).
func goldenDecode(t *testing.T) goldenEntry {
	t.Helper()
	snap := runDecode(t, 1, 2, true, false, 1)
	return makeGoldenEntry(snap.Cycles, snap.Log, &snap.Stats, true)
}

// TestGoldenStats locks in the cycle/IPC/L2 numbers of one GEMM, one
// LeNet conv layer and the stream-overlapped transformer encoder under
// the GTX 1050 model so silent timing drifts fail CI. Run with -update
// to accept an intentional modelling change.
func TestGoldenStats(t *testing.T) {
	got := map[string]goldenEntry{
		"gemm_64x48x56":                goldenRun(t, gemmLoad),
		"lenet_conv1_igemm":            goldenRun(t, lenetConvLoad),
		"transformer_encoder_streams":  goldenTransformer(t),
		"concurrent_streams_asynccopy": goldenStreams(t),
		"serve_small":                  goldenServe(t),
		"decode_small":                 goldenDecode(t),
		"train_small":                  goldenTrain(t),
	}
	path := filepath.Join("testdata", "golden_stats.json")

	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run Golden ./internal/timing -update` — the -update flag must come after the package path): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("workload %s missing from golden file — rerun with -update", name)
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("timing drift in %s:\n got %+v\nwant %+v\n"+
				"(intentional? regenerate with `go test -run Golden ./internal/timing -update`; "+
				"-update is a test-binary flag, so it must come AFTER the package path — "+
				"before it, `go test` fails with \"flag provided but not defined\")", name, g, w)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("golden file has stale workload %s — rerun with -update", name)
		}
	}
}

// TestGoldenStatsStable double-checks the golden workloads really are
// deterministic run-to-run before we trust them as regression anchors.
func TestGoldenStatsStable(t *testing.T) {
	a := goldenRun(t, gemmLoad)
	b := goldenRun(t, gemmLoad)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("golden workload is not deterministic:\n%+v\n%+v", a, b)
	}
}
