package timing

import (
	"fmt"

	"repro/internal/exec"
)

// dispatcher issues CTAs from a grid (plus any checkpoint-restored CTAs)
// onto SM cores, respecting the per-SM occupancy limits. It runs only on
// the coordinator goroutine, between cycle phases, so dispatch order — and
// with it every downstream timing decision — is independent of the worker
// count.
type dispatcher struct {
	grid    *exec.Grid
	maxCTAs int
	nextCTA int
	total   int
	pending []*exec.CTA // checkpoint-preloaded CTAs to place first
	done    int         // CTAs retired so far
}

// newDispatcher computes the occupancy limit for the launch: the
// configured CTA cap, shrunk by shared-memory and warp-slot pressure
// (GPGPU-Sim's max_cta calculation).
func newDispatcher(cfg *Config, g *exec.Grid, skipCTAs int, preload []*exec.CTA) (*dispatcher, error) {
	smemPerCTA := g.SharedBytes()
	warpsPerCTA := g.NumWarpsPerCTA()
	if warpsPerCTA > cfg.MaxWarpsPerSM {
		return nil, fmt.Errorf("timing: CTA needs %d warps, SM holds %d", warpsPerCTA, cfg.MaxWarpsPerSM)
	}
	maxCTAs := cfg.MaxCTAsPerSM
	if smemPerCTA > 0 {
		bySmem := cfg.SharedMemPerSM / smemPerCTA
		if bySmem == 0 {
			return nil, fmt.Errorf("timing: CTA needs %d B shared memory, SM has %d", smemPerCTA, cfg.SharedMemPerSM)
		}
		if bySmem < maxCTAs {
			maxCTAs = bySmem
		}
	}
	byWarps := cfg.MaxWarpsPerSM / warpsPerCTA
	if byWarps < maxCTAs {
		maxCTAs = byWarps
	}
	d := &dispatcher{
		grid:    g,
		maxCTAs: maxCTAs,
		nextCTA: skipCTAs + len(preload),
		total:   g.NumCTAs(),
		pending: append([]*exec.CTA(nil), preload...),
		done:    skipCTAs,
	}
	return d, nil
}

// fill tops up every core with CTAs until the occupancy limit or the grid
// is exhausted. Cores are visited in id order (deterministic).
func (d *dispatcher) fill(cores []*smCore) {
	g := d.grid
	for _, c := range cores {
		for len(c.slots) < d.maxCTAs && (len(d.pending) > 0 || d.nextCTA < d.total) {
			var cta *exec.CTA
			if len(d.pending) > 0 {
				cta = d.pending[0]
				d.pending = d.pending[1:]
			} else {
				cta = g.InitCTA(d.nextCTA)
				d.nextCTA++
			}
			slot := &ctaSlot{cta: cta}
			for _, w := range cta.Warps {
				slot.warps = append(slot.warps, &warpCtx{
					cta: cta, warp: w,
					regReady: make([]uint64, g.Kernel.NumSlots),
				})
			}
			c.addCTA(slot)
		}
	}
}

// finished reports whether every CTA of the grid has retired.
func (d *dispatcher) finished() bool { return d.done >= d.total }
