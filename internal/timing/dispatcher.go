package timing

import (
	"fmt"

	"repro/internal/exec"
)

// gridRun is one kernel resident in the detailed model: a grid plus its
// dispatch cursor and per-SM occupancy limit. Several gridRuns can be
// resident at once — that is how stream-level concurrency appears inside
// the engine.
type gridRun struct {
	grid *exec.Grid
	op   *Ticket // submission this run belongs to (stats land here)
	id   int     // dense per-drain id, indexes the cores' instr shards

	maxCTAs     int // per-SM CTA limit for this grid's resource footprint
	warpsPerCTA int
	smemPerCTA  int

	nextCTA int
	total   int
	pending []*exec.CTA // checkpoint-preloaded CTAs to place first
	done    int         // CTAs retired so far
}

// newGridRun computes the per-grid occupancy limit for a launch: the
// configured CTA cap, shrunk by shared-memory and warp-slot pressure
// (GPGPU-Sim's max_cta calculation).
func newGridRun(cfg *Config, op *Ticket) (*gridRun, error) {
	g := op.grid
	smemPerCTA := g.SharedBytes()
	warpsPerCTA := g.NumWarpsPerCTA()
	if warpsPerCTA > cfg.MaxWarpsPerSM {
		return nil, fmt.Errorf("timing: CTA needs %d warps, SM holds %d", warpsPerCTA, cfg.MaxWarpsPerSM)
	}
	maxCTAs := cfg.MaxCTAsPerSM
	if smemPerCTA > 0 {
		bySmem := cfg.SharedMemPerSM / smemPerCTA
		if bySmem == 0 {
			return nil, fmt.Errorf("timing: CTA needs %d B shared memory, SM has %d", smemPerCTA, cfg.SharedMemPerSM)
		}
		if bySmem < maxCTAs {
			maxCTAs = bySmem
		}
	}
	byWarps := cfg.MaxWarpsPerSM / warpsPerCTA
	if byWarps < maxCTAs {
		maxCTAs = byWarps
	}
	r := &gridRun{
		grid:        g,
		op:          op,
		maxCTAs:     maxCTAs,
		warpsPerCTA: warpsPerCTA,
		smemPerCTA:  smemPerCTA,
		nextCTA:     op.skipCTAs + len(op.preload),
		total:       g.NumCTAs(),
		pending:     append([]*exec.CTA(nil), op.preload...),
		done:        op.skipCTAs,
	}
	return r, nil
}

// exhausted reports whether the run has no more CTAs to dispatch.
func (r *gridRun) exhausted() bool { return len(r.pending) == 0 && r.nextCTA >= r.total }

// finished reports whether every CTA of the grid has retired.
func (r *gridRun) finished() bool { return r.done >= r.total }

// dispatcher assigns CTAs from the resident grids to free SM slots. It
// runs only on the coordinator goroutine, between cycle phases, so
// dispatch order — and with it every downstream timing decision — is
// independent of the worker count.
//
// The placement policy is the left-over policy for concurrent kernels:
// resident grids are visited in submission (stream-ordered) order, and
// each takes whatever SM capacity the grids ahead of it left over,
// bounded by its own per-grid shader occupancy limit. With one resident
// grid this degenerates to the classic single-kernel fill.
type dispatcher struct {
	runs []*gridRun // resident grids in submission order

	// dirty records that placement capacity may have changed since the
	// last fill: a grid was admitted or a CTA retired (freeing a slot,
	// warp contexts and shared memory). canHold depends on nothing else,
	// so while dirty is false a fill would place nothing and is skipped
	// — the stalled-machine common case costs O(1) instead of
	// O(runs × cores). The flag is driven purely by simulation events,
	// so skipping keeps dispatch deterministic and cycle-identical.
	dirty bool
}

// admit makes a grid resident.
func (d *dispatcher) admit(r *gridRun) {
	d.runs = append(d.runs, r)
	d.dirty = true
}

// fill tops up the cores with CTAs. Grids are visited in submission
// order; within a grid, CTAs go round-robin across cores in id order
// (GPGPU-Sim's issue_block2core rotation, made deterministic), so a
// small grid spreads over the SMs instead of packing the lowest ids. A
// CTA is placed only if the core has a free slot, enough warp contexts
// and shared memory, and the grid is below its own per-SM occupancy
// limit on that core.
func (d *dispatcher) fill(cfg *Config, cores []*smCore) {
	if !d.dirty {
		return
	}
	d.dirty = false
	for _, r := range d.runs {
		placed := true
		for placed && !r.exhausted() {
			placed = false
			for _, c := range cores {
				if r.exhausted() {
					break
				}
				if !c.canHold(cfg, r) {
					continue
				}
				var cta *exec.CTA
				if len(r.pending) > 0 {
					cta = r.pending[0]
					r.pending = r.pending[1:]
				} else {
					cta = r.grid.InitCTA(r.nextCTA)
					r.nextCTA++
				}
				slot := &ctaSlot{cta: cta, run: r}
				for _, w := range cta.Warps {
					slot.warps = append(slot.warps, &warpCtx{
						cta: cta, warp: w, runID: r.id,
						regReady: make([]uint64, r.grid.Kernel.NumSlots),
					})
				}
				c.addCTA(slot)
				placed = true
			}
		}
	}
}

// retire removes finished runs from the resident set, preserving order.
func (d *dispatcher) retire() {
	keep := d.runs[:0]
	for _, r := range d.runs {
		if !r.finished() {
			keep = append(keep, r)
		}
	}
	for i := len(keep); i < len(d.runs); i++ {
		d.runs[i] = nil
	}
	d.runs = keep
}

// canHold reports whether the core has room for one more CTA of run r:
// a free slot overall, warp-context and shared-memory headroom, and
// r below its per-grid occupancy cap on this core.
func (c *smCore) canHold(cfg *Config, r *gridRun) bool {
	if len(c.slots) >= cfg.MaxCTAsPerSM {
		return false
	}
	if c.warpsUsed+r.warpsPerCTA > cfg.MaxWarpsPerSM {
		return false
	}
	if r.smemPerCTA > 0 && c.smemUsed+r.smemPerCTA > cfg.SharedMemPerSM {
		return false
	}
	n := 0
	for _, s := range c.slots {
		if s.run == r {
			n++
		}
	}
	return n < r.maxCTAs
}
