package timing

import (
	"repro/internal/cache"
	"repro/internal/dram"
)

// partition is one memory partition: an L2 slice plus a DRAM channel.
//
// Ownership contract: the L2 cache and DRAM channel of a partition are
// only ever touched by the partition's drain, which the engine runs with
// at most one worker per partition. No locks are needed because the drain
// walks the cores' request queues in a fixed (core id, issue order)
// traversal, so the access sequence seen by the L2 and the channel is the
// same for every worker count — including 1. Anything that would let two
// workers race on a partition, or make the service order depend on
// scheduling, breaks both the race-freedom and the determinism guarantee.
type partition struct {
	id int
	l2 *cache.Cache
	ch *dram.Channel

	// queue holds this cycle's segments, bucketed by the coordinator in
	// canonical order before the drain phase
	queue []*segRequest

	// partition-local stat shard, merged into the engine stats at kernel
	// boundaries
	l2Accesses   uint64
	dramAccesses uint64
	nocFlits     uint64
}

// partOf routes a line address to its owning partition (line interleaving
// across partitions, as in GPGPU-Sim's address mapping).
func (e *Engine) partOf(addr uint64) int {
	return int(addr/uint64(e.cfg.L2.LineBytes)) % len(e.parts)
}

// drain services every segment bucketed to this partition this cycle, in
// canonical order: cores by ascending id, and within a core in issue
// order (the coordinator builds the queue in exactly that traversal). It
// writes each segment's completion cycle into the request; the cores fold
// those into their scoreboards in applyMem.
func (p *partition) drain(cfg *Config) {
	for _, s := range p.queue {
		p.service(s, cfg)
	}
}

// service walks one segment through L2 and, on a miss, the DRAM channel.
// The completion cycle it computes is final — nothing in the partition
// re-times a segment later — which is what lets the drain loop's
// idle-cycle fast-forward treat the warp scoreboard wakeups derived from
// these times as the complete set of future machine events.
func (p *partition) service(s *segRequest, cfg *Config) {
	p.l2Accesses++
	res, _ := p.l2.Access(s.addr, s.write)
	var done uint64
	switch res {
	case cache.Hit:
		done = s.arrive + uint64(cfg.L2Lat)
	case cache.MissMerged:
		done = s.arrive + uint64(cfg.L2Lat) + uint64(cfg.DRAM.TCL)
	default: // Miss or ReservationFail: go to DRAM
		p.dramAccesses++
		done = p.ch.Service(s.arrive+uint64(cfg.L2Lat), s.addr, s.write)
		if res == cache.Miss {
			p.l2.Fill(s.addr, s.write)
		}
	}
	// response path back across the NoC
	done += uint64(cfg.NoCLat)
	p.nocFlits++
	s.done = done
}

// mergeStats folds the partition shard into the engine-wide stats.
func (p *partition) mergeStats(s *Stats) {
	s.L2Accesses += p.l2Accesses
	s.DRAMAccesses += p.dramAccesses
	s.NoCFlits += p.nocFlits
	p.l2Accesses, p.dramAccesses, p.nocFlits = 0, 0, 0
}
