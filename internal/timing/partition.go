package timing

import (
	"repro/internal/cache"
	"repro/internal/dram"
)

// partition is one memory partition: an L2 slice plus a DRAM channel,
// modelled as a pipelined, bandwidth-aware stage. Contention is expressed
// with absolute-time resource reservations — a partition ingress slot, an
// L2 tag/data port, the L2 MSHR pool, the DRAM channel (bank + shared
// data bus, scheduled FR-FCFS per cycle batch) and a NoC response port —
// so one pass over the cycle's segments still produces final completion
// cycles, and the drain loop's fast-forward invariant (every future event
// is an absolute-cycle scoreboard wakeup or copy end) survives intact.
//
// Ownership contract: all of this state is only ever touched by the
// partition's drain, which the engine runs with at most one worker per
// partition. No locks are needed because the drain walks the cores'
// request queues in a fixed (core id, issue order) traversal, so the
// access sequence seen by the L2 and the channel is the same for every
// worker count — including 1. Anything that would let two workers race on
// a partition, or make the service order depend on scheduling, breaks
// both the race-freedom and the determinism guarantee.
type partition struct {
	id int
	l2 *cache.Cache
	ch *dram.Channel

	// queue holds this cycle's segments, bucketed by the coordinator in
	// canonical order before the drain phase
	queue []*segRequest

	// Absolute-time resource horizons. Each records when the resource
	// next frees; a segment reserving it starts at max(arrival, horizon)
	// and pushes the horizon forward by the configured occupancy. The
	// horizons only ever advance, so no segment can complete before it
	// arrives and fast-forwarded stretches need no special handling.
	ingressFree uint64   // partition ingress slot
	portFree    uint64   // L2 tag/data port
	respFree    uint64   // NoC response port
	mshrFree    []uint64 // L2 MSHR slots: cycle each outstanding miss returns

	// lineDone maps an in-flight miss line to its DRAM data-ready time
	// within the current cycle batch, resolving L2 MissMerged segments
	// against the miss they ride (cleared every drain call — the L2 fill
	// lands in the same batch, so merges never span cycles).
	lineDone map[uint64]uint64

	// per-cycle scratch, reused across drains
	dramReqs []dram.Req  // demand misses handed to the channel
	dramRefs []*dram.Req // pointer view for ServiceBatch
	missSegs []*segRequest
	missSlot []int      // MSHR slot index per miss (-1 = bypass)
	missFill []bool     // install in L2 on response?
	wbReqs   []dram.Req // dirty-eviction writeback traffic
	wbRefs   []*dram.Req
	mergedQ  []*segRequest

	// partition-local stat shard, merged into the engine stats at kernel
	// boundaries
	l2Accesses         uint64
	l2Hits             uint64
	l2Misses           uint64
	l2Writebacks       uint64
	dramAccesses       uint64
	dramRowHits        uint64
	nocFlits           uint64
	ingressStallCycles uint64
	segCycles          uint64
	segServed          uint64

	// perKernel shards the memory counters by dense per-drain grid id so
	// per-kernel stats stay attributable while several grids share the
	// machine; sized by the engine at the start of every drain and folded
	// into the tickets at retirement.
	perKernel []MemCounters
}

func newPartition(id int, l2 *cache.Cache, ch *dram.Channel, l2MSHRs int) *partition {
	return &partition{
		id: id, l2: l2, ch: ch,
		mshrFree: make([]uint64, l2MSHRs),
		lineDone: make(map[uint64]uint64),
	}
}

// partOf routes a sector address to its owning partition. Interleaving is
// at L2-line granularity (GPGPU-Sim's address mapping): every sector of
// one L2 line — and the line's fill and writeback — lives in exactly one
// partition. Config.sectorBytes guarantees sectors never straddle an L2
// line, so this routing is total.
func (e *Engine) partOf(addr uint64) int {
	return int(addr/uint64(e.cfg.L2.LineBytes)) % len(e.parts)
}

// shard returns the per-kernel counter shard for a segment (nil when the
// segment carries no grid attribution, e.g. runID -1).
func (p *partition) shard(s *segRequest) *MemCounters {
	if s.runID >= 0 && s.runID < len(p.perKernel) {
		return &p.perKernel[s.runID]
	}
	return nil
}

// reserve advances an absolute-time resource horizon: the segment starts
// at max(at, *horizon) and holds the resource for occ cycles. Returns the
// start time. occ == 0 disables the resource.
func reserve(horizon *uint64, at uint64, occ int) uint64 {
	if occ <= 0 {
		return at
	}
	if *horizon > at {
		at = *horizon
	}
	*horizon = at + uint64(occ)
	return at
}

// drain services every segment bucketed to this partition this cycle, in
// canonical order: cores by ascending id, and within a core in issue
// order (the coordinator builds the queue in exactly that traversal). It
// writes each segment's completion cycle into the request; the cores fold
// those into their scoreboards in applyMem. The completion cycles are
// final — nothing in the partition re-times a segment later — which is
// what lets the drain loop's idle-cycle fast-forward treat the warp
// scoreboard wakeups derived from these times as the complete set of
// future machine events.
//
// Pipeline, one pass per phase, all in canonical order:
//  1. ingress + L2 port reservation, L2 lookup. Hits are ready after
//     L2Lat; misses acquire an MSHR slot (waiting at absolute time for
//     the earliest slot when all are outstanding) and join the DRAM batch.
//  2. the DRAM channel schedules the batch FR-FCFS (dram.ServiceBatch).
//  3. misses fill the L2; dirty evictions become writeback DRAM traffic;
//     L2-merged segments resolve against the miss they rode.
//  4. every segment reserves the NoC response port and picks up its final
//     completion cycle.
func (p *partition) drain(cfg *Config) {
	if len(p.queue) == 0 {
		return
	}
	clear(p.lineDone)
	p.dramReqs = p.dramReqs[:0]
	p.missSegs = p.missSegs[:0]
	p.missSlot = p.missSlot[:0]
	p.missFill = p.missFill[:0]
	p.wbReqs = p.wbReqs[:0]
	p.mergedQ = p.mergedQ[:0]

	l2Lat := uint64(cfg.L2Lat)

	// Phase 1: ingress, L2 port, L2 lookup.
	for _, s := range p.queue {
		p.l2Accesses++
		sh := p.shard(s)
		if sh != nil {
			sh.L2Accesses++
		}
		t := reserve(&p.ingressFree, s.arrive, cfg.L2IngressCycles)
		t = reserve(&p.portFree, t, cfg.L2PortCycles)
		if stall := t - s.arrive; stall > 0 {
			p.ingressStallCycles += stall
			if sh != nil {
				sh.StallCycles += stall
			}
		}
		res, _ := p.l2.Access(s.addr, s.write)
		switch res {
		case cache.Hit:
			p.l2Hits++
			if sh != nil {
				sh.L2Hits++
			}
			s.done = t + l2Lat // ready time; response path added in phase 4
		case cache.MissMerged:
			// rides an in-flight miss of the same batch; resolved in
			// phase 3 once the miss's DRAM data-ready time is known
			s.done = t + l2Lat
			p.mergedQ = append(p.mergedQ, s)
		default: // Miss or ReservationFail: go to DRAM
			p.l2Misses++
			p.dramAccesses++
			if sh != nil {
				sh.L2Misses++
				sh.DRAMAccesses++
			}
			start := t + l2Lat
			slot := -1
			if len(p.mshrFree) > 0 {
				// MSHR pool as an absolute-time reservation: take the
				// earliest-freeing slot, waiting for it when every slot
				// is still outstanding (retry-at-absolute-time instead
				// of the old free same-cycle service)
				slot = 0
				for i := 1; i < len(p.mshrFree); i++ {
					if p.mshrFree[i] < p.mshrFree[slot] {
						slot = i
					}
				}
				if p.mshrFree[slot] > start {
					stall := p.mshrFree[slot] - start
					p.ingressStallCycles += stall
					if sh != nil {
						sh.StallCycles += stall
					}
					start = p.mshrFree[slot]
				}
				// provisional hold so later misses of this same batch see
				// the slot occupied (a row-hit lower bound on the DRAM
				// trip); phase 3 raises it to the scheduled completion. A
				// batch of N misses therefore really consumes N slots.
				p.mshrFree[slot] = start + uint64(cfg.DRAM.TCL+cfg.DRAM.TBurst)
			}
			p.dramReqs = append(p.dramReqs, dram.Req{Arrive: start, Addr: s.addr, Write: s.write})
			p.missSegs = append(p.missSegs, s)
			p.missSlot = append(p.missSlot, slot)
			p.missFill = append(p.missFill, res == cache.Miss)
		}
	}

	// Phase 2: FR-FCFS DRAM scheduling over this cycle's miss batch.
	if len(p.dramReqs) > 0 {
		p.dramRefs = p.dramRefs[:0]
		for i := range p.dramReqs {
			p.dramRefs = append(p.dramRefs, &p.dramReqs[i])
		}
		p.ch.ServiceBatch(p.dramRefs)
	}

	// Phase 3: fills, dirty evictions, merged-segment resolution.
	for i, s := range p.missSegs {
		req := &p.dramReqs[i]
		if req.RowHit {
			p.dramRowHits++
			if sh := p.shard(s); sh != nil {
				sh.DRAMRowHits++
			}
		}
		if slot := p.missSlot[i]; slot >= 0 && req.Done > p.mshrFree[slot] {
			// raise, never lower: FR-FCFS may have completed a slot's
			// later (canonically) occupant before an earlier one
			p.mshrFree[slot] = req.Done
		}
		p.lineDone[p.l2.LineAddr(s.addr)] = req.Done
		if p.missFill[i] {
			if wb, victim := p.l2.Fill(s.addr, s.write); wb {
				// the evicted dirty line becomes real write traffic on
				// the DRAM channel, launched when the fill lands; the
				// writeback occupies bank/bus bandwidth but nothing
				// waits on its completion, so it adds no event source
				p.l2Writebacks++
				p.wbReqs = append(p.wbReqs, dram.Req{Arrive: req.Done, Addr: victim, Write: true})
			}
		}
		s.done = req.Done
	}
	for _, s := range p.mergedQ {
		d, ok := p.lineDone[p.l2.LineAddr(s.addr)]
		if !ok {
			// cannot happen today: an L2 MissMerged implies a pending L2
			// MSHR entry, entries are only created by a Miss earlier in
			// this same batch, and every Miss is filled (clearing the
			// entry) in this phase — so the parent's data-ready time is
			// always in lineDone. Fail loudly rather than quietly
			// mis-time segments if a refactor ever breaks that.
			panic("timing: L2 merged segment without an in-batch parent miss")
		}
		if d > s.done {
			s.done = d
		}
	}
	if len(p.wbReqs) > 0 {
		p.wbRefs = p.wbRefs[:0]
		for i := range p.wbReqs {
			p.wbRefs = append(p.wbRefs, &p.wbReqs[i])
		}
		p.ch.ServiceBatch(p.wbRefs)
	}

	// Phase 4: response path back across the NoC, in canonical order
	// (FIFO response queue: an early segment with a late ready time
	// blocks the port for later ones).
	for _, s := range p.queue {
		r := reserve(&p.respFree, s.done, cfg.L2RespCycles)
		s.done = r + uint64(cfg.NoCLat)
		p.nocFlits++
		p.segCycles += s.done - s.issue
		p.segServed++
		if sh := p.shard(s); sh != nil {
			// per-kernel segment latency attribution: replay entries
			// memoize it so AvgSegmentLatency stays meaningful when a
			// launch's partition traffic never re-executes
			sh.SegCycles += s.done - s.issue
			sh.SegServed++
		}
	}
}

// sizeKernelShard prepares the per-kernel counter shard for a drain with
// nKernels dense grid ids.
func (p *partition) sizeKernelShard(nKernels int) {
	if cap(p.perKernel) < nKernels {
		p.perKernel = make([]MemCounters, nKernels)
		return
	}
	p.perKernel = p.perKernel[:nKernels]
	for i := range p.perKernel {
		p.perKernel[i] = MemCounters{}
	}
}

// mergeStats folds the partition shard into the engine-wide stats.
func (p *partition) mergeStats(s *Stats) {
	s.L2Accesses += p.l2Accesses
	s.L2Hits += p.l2Hits
	s.L2Misses += p.l2Misses
	s.L2Writebacks += p.l2Writebacks
	s.DRAMAccesses += p.dramAccesses
	s.DRAMRowHits += p.dramRowHits
	s.NoCFlits += p.nocFlits
	s.IngressStallCycles += p.ingressStallCycles
	s.SegCycles += p.segCycles
	s.SegServed += p.segServed
	p.l2Accesses, p.l2Hits, p.l2Misses, p.l2Writebacks = 0, 0, 0, 0
	p.dramAccesses, p.dramRowHits, p.nocFlits = 0, 0, 0
	p.ingressStallCycles, p.segCycles, p.segServed = 0, 0, 0
}
