package timing

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/cudart"
	"repro/internal/exec"
)

// This file locks the active-set scheduler (schedule.go) to the drain
// semantics it replaced. drainLegacyForTest is the pre-rewrite drain
// loop, kept verbatim as the reference implementation: it re-scans the
// whole submission queue every simulated cycle (copy completion,
// admission, copy-wake), which is O(|queue|) per cycle but trivially
// correct with respect to the stream-ordered submission contract.
// TestDrainEquivalence runs randomized kernel/copy mixes through both
// loops and demands byte-identical cycles, per-ticket stats, engine
// counters and final device memory.

// drainLegacyForTest is the old Engine.drain. Apart from the three
// deliberate deviations flagged inline (stream linking inlined, the
// fast-forward observability counter, and forcing the dispatcher dirty
// flag so the reference keeps its original every-cycle unconditional
// fill), the body is the pre-active-set code unchanged.
func (e *Engine) drainLegacyForTest(workers int) error {
	if len(e.queue) == 0 {
		return nil
	}
	m := e.machine

	// Dense per-batch kernel ids index the cores' instruction shards.
	nKernels := 0
	for _, t := range e.queue {
		if t.kind == opKernel {
			t.run.id = nKernels
			nKernels++
		}
	}
	// deviation: the old linkStreams helper, inlined (production now
	// links prev/next in newSchedule).
	last := make(map[int]*Ticket)
	for _, t := range e.queue {
		t.prev = last[t.stream]
		last[t.stream] = t
	}
	// deviation (PR 5): the bandwidth-aware memory hierarchy shards
	// per-kernel memory counters per partition; both loops must size the
	// shards or retirement attribution would diverge.
	for _, pt := range e.parts {
		pt.sizeKernelShard(nKernels)
	}
	for _, c := range e.cores {
		for i := range c.scheds {
			c.scheds[i].rr = 0
		}
		c.stats.rebase(e.cycle)
		if cap(c.runInstrs) < nKernels {
			c.runInstrs = make([]uint64, nKernels)
		} else {
			c.runInstrs = c.runInstrs[:nKernels]
			for i := range c.runInstrs {
				c.runInstrs[i] = 0
			}
		}
	}

	if workers == 0 {
		workers = e.workers
	} else if workers < 0 {
		workers = runtime.NumCPU()
	}
	p := e.getPool(workers)

	var disp dispatcher
	nCores := len(e.cores)
	nParts := len(e.parts)
	deadline := e.cycle + 2_000_000_000 // runaway guard

	for {
		// Complete in-flight copies (running their functional memory
		// effect now that the modelled transfer has finished) and check
		// for overall completion.
		allDone := true
		for _, t := range e.queue {
			if t.done {
				continue
			}
			if t.kind == opCopy && t.admitted && e.cycle >= t.endCycle {
				if t.copyApply != nil {
					t.copyApply()
					t.copyApply = nil
				}
				t.stats.Cycles = t.endCycle - t.startCycle
				t.done = true
				continue
			}
			allDone = false
		}
		if allDone {
			break
		}

		// Admit operations whose stream predecessor has retired, in
		// submission order (the deterministic stream-ordered policy).
		for _, t := range e.queue {
			if t.done || t.admitted || (t.prev != nil && !t.prev.done) {
				continue
			}
			if t.kind == opKernel {
				t.startCycle = e.cycle
				disp.admit(t.run)
				t.admitted = true
			} else {
				start := e.cycle
				if e.copyBusyUntil > start {
					start = e.copyBusyUntil
				}
				t.startCycle = start
				t.endCycle = start + e.copyCycles(t.copyBytes)
				e.copyBusyUntil = t.endCycle
				t.admitted = true
			}
		}

		// deviation: production gates fill on dispatcher.dirty; the
		// reference keeps the old every-cycle unconditional fill, so the
		// differential stays sensitive to a missed dirty-flag event.
		disp.dirty = true
		disp.fill(&e.cfg, e.cores)

		if len(disp.runs) == 0 {
			// Only copies in flight: jump to the earliest completion.
			wake := ^uint64(0)
			for _, t := range e.queue {
				if !t.done && t.kind == opCopy && t.admitted && t.endCycle < wake {
					wake = t.endCycle
				}
			}
			if wake == ^uint64(0) {
				return e.abortBatch(m, fmt.Errorf("timing: drain stalled with pending work"), -1)
			}
			if wake > e.cycle {
				e.stats.addIdleBulk(e.cycle, wake-e.cycle, e.cfg)
				// deviation: mirror the new loop's observability counter
				// so whole-Stats comparison stays byte-exact.
				e.stats.FastForwardedCycles += wake - e.cycle
				e.cycle = wake
			}
			continue
		}

		if e.cycle > deadline {
			return e.abortBatch(m, fmt.Errorf("timing: exceeded cycle budget (deadlock?)"), -1)
		}
		now := e.cycle

		// Phase 1: parallel issue stage.
		p.run(nCores, func(i int) { e.cores[i].stageIssue(m, now) })

		anyIssued := false
		anyMem := false
		progressAt := uint64(^uint64(0))
		for _, c := range e.cores {
			if c.err != nil {
				return e.abortBatch(m, c.err, c.errRunID)
			}
			// Phase 2: sequential atomic drain, core id order.
			for _, w := range c.atomQ {
				if err := c.issue(m, w, now); err != nil {
					return e.abortBatch(m, err, w.runID)
				}
			}
			if c.issuedAny {
				anyIssued = true
			} else if c.nextAt < progressAt {
				progressAt = c.nextAt
			}
			if len(c.memQ) > 0 {
				anyMem = true
			}
			// CTA retirement, attributed per grid in canonical core order.
			for _, s := range c.retiredSlots {
				s.run.done++
			}
		}

		if anyMem {
			for _, pt := range e.parts {
				pt.queue = pt.queue[:0]
			}
			for _, c := range e.cores {
				for i := range c.memQ {
					req := &c.memQ[i]
					for j := range req.segs {
						s := &req.segs[j]
						if !s.merged {
							e.parts[s.part].queue = append(e.parts[s.part].queue, s)
						}
					}
				}
			}
			// Phase 3: parallel partition drain (canonical order inside).
			p.run(nParts, func(i int) { e.parts[i].drain(&e.cfg) })
			// Phase 4: parallel scoreboard/L1 apply.
			p.run(nCores, func(i int) { e.cores[i].applyMem(now) })
		}

		// Retire finished grids in submission order. deviation (PR 5):
		// retirement accounting (instruction shards + per-partition
		// memory-counter shards) moved into the shared finishRun helper
		// so the reference cannot quietly diverge from production on the
		// new per-kernel memory attribution.
		for _, r := range disp.runs {
			if r.finished() && !r.op.done {
				e.finishRun(r, now)
			}
		}
		disp.retire()

		e.cycle++
		if !anyIssued {
			// fast-forward over a fully stalled machine.
			wake := progressAt
			for _, t := range e.queue {
				if !t.done && t.kind == opCopy && t.admitted && t.endCycle < wake {
					wake = t.endCycle
				}
			}
			if wake != ^uint64(0) && wake > e.cycle {
				skip := wake - e.cycle
				e.stats.addIdleBulk(e.cycle, skip, e.cfg)
				// deviation: observability counter, as above.
				e.stats.FastForwardedCycles += skip
				e.cycle = wake
			}
		}
	}

	e.mergeShards(m)
	e.releaseQueue()
	return nil
}

// eqPTX is the differential workload kernel: y[i] += x[i]*x[i], with a
// bounds check so partial-tail grids diverge per-lane.
const eqPTX = `
.version 6.0
.target sm_61
.address_size 64

.visible .entry sqadd(
	.param .u64 pX,
	.param .u64 pY,
	.param .u32 pN
)
{
	.reg .pred %p<2>;
	.reg .f32 %f<5>;
	.reg .b32 %r<6>;
	.reg .b64 %rd<6>;

	ld.param.u64 %rd1, [pX];
	ld.param.u64 %rd2, [pY];
	ld.param.u32 %r1, [pN];
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mov.u32 %r4, %tid.x;
	mad.lo.s32 %r5, %r2, %r3, %r4;
	setp.ge.u32 %p1, %r5, %r1;
	@%p1 bra DONE;
	cvta.to.global.u64 %rd1, %rd1;
	cvta.to.global.u64 %rd2, %rd2;
	mul.wide.u32 %rd3, %r5, 4;
	add.s64 %rd4, %rd1, %rd3;
	add.s64 %rd5, %rd2, %rd3;
	ld.global.f32 %f2, [%rd4];
	ld.global.f32 %f3, [%rd5];
	fma.rn.f32 %f4, %f2, %f2, %f3;
	st.global.f32 [%rd5], %f4;
DONE:
	ret;
}
`

const eqBufN = 256 // floats per per-stream accumulator buffer

// eqOp is one planned ticket: a kernel (y_s[i] += x[i]^2 over the first
// n elements, x drawn from the seed) or a host-device copy overwriting
// the first n floats of the stream's buffer (n may be 0).
type eqOp struct {
	stream int
	kernel bool
	n      int
	data   []float32
}

// eqPlan derives a randomized ticket mix from a seed: 1-4 streams,
// 8-40 operations, ~1/3 copies (including zero-size ones).
func eqPlan(seed int64) (ops []eqOp, streams int) {
	rng := rand.New(rand.NewSource(seed))
	streams = 1 + rng.Intn(4)
	nOps := 8 + rng.Intn(33)
	for i := 0; i < nOps; i++ {
		op := eqOp{stream: rng.Intn(streams)}
		if rng.Intn(3) > 0 {
			op.kernel = true
			op.n = []int{64, 160, eqBufN}[rng.Intn(3)]
			op.data = make([]float32, op.n)
			for j := range op.data {
				op.data[j] = float32(rng.Intn(64))*0.125 - 2
			}
		} else {
			op.n = []int{0, 32, eqBufN}[rng.Intn(3)]
			op.data = make([]float32, op.n)
			for j := range op.data {
				op.data[j] = float32(rng.Intn(64))*0.25 - 4
			}
		}
		ops = append(ops, op)
	}
	return ops, streams
}

// eqResult captures everything the differential compares.
type eqResult struct {
	Cycles  uint64
	Tickets []cudart.KernelStats
	Outputs [][]float32
	Stats   Stats
}

// runEqPlan executes a plan against a fresh context + engine. serialize
// folds every operation onto stream 0 (the strict submission-order
// semantics); legacy drains with the reference loop instead of the
// active-set scheduler.
func runEqPlan(t *testing.T, ops []eqOp, streams int, serialize, legacy bool) eqResult {
	t.Helper()
	ctx := cudart.NewContext(exec.BugSet{})
	eng, err := New(GTX1050())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := ctx.RegisterModule(eqPTX); err != nil {
		t.Fatal(err)
	}
	_, kern, err := ctx.LookupKernel("sqadd")
	if err != nil {
		t.Fatal(err)
	}

	bufs := make([]uint64, streams)
	for s := range bufs {
		init := make([]float32, eqBufN)
		for i := range init {
			init[i] = float32((i+s)%9) * 0.5
		}
		bufs[s], _ = ctx.Malloc(4 * eqBufN)
		ctx.MemcpyF32HtoD(bufs[s], init)
	}

	var tickets []*Ticket
	for _, op := range ops {
		stream := op.stream
		if serialize {
			stream = 0
		}
		if op.kernel {
			px, _ := ctx.Malloc(uint64(4 * op.n))
			ctx.MemcpyF32HtoD(px, op.data)
			p := cudart.NewParams().Ptr(px).Ptr(bufs[op.stream]).U32(uint32(op.n))
			g, err := ctx.M.NewGrid(kern, exec.Dim3{X: (op.n + 63) / 64}, exec.Dim3{X: 64}, p.Bytes(), 0)
			if err != nil {
				t.Fatal(err)
			}
			tk, err := eng.Submit(g, stream)
			if err != nil {
				t.Fatal(err)
			}
			tickets = append(tickets, tk)
		} else {
			dst, data := bufs[op.stream], op.data
			tk := eng.SubmitCopy(stream, 4*op.n, func() { ctx.MemcpyF32HtoD(dst, data) })
			tickets = append(tickets, tk)
		}
	}

	if legacy {
		err = eng.drainLegacyForTest(1)
	} else {
		err = eng.drain(1)
	}
	if err != nil {
		t.Fatalf("drain (legacy=%v): %v", legacy, err)
	}

	res := eqResult{Cycles: eng.Cycle(), Stats: *eng.Stats()}
	for i, tk := range tickets {
		st, err := tk.Stats()
		if err != nil {
			t.Fatalf("ticket %d failed: %v", i, err)
		}
		res.Tickets = append(res.Tickets, st)
	}
	for s := range bufs {
		res.Outputs = append(res.Outputs, ctx.MemcpyF32DtoH(bufs[s], eqBufN))
	}
	return res
}

// TestCopyCompletionSubmissionOrder pins the corner where admission
// order deviates from submission order: a large copy A (stream 1,
// submitted last) is admitted at cycle 0 and occupies the copy engine
// until cycle E; a zero-size copy B (stream 2, submitted before A) is
// blocked behind a short kernel and admitted mid-flight, starting and
// ending at the engine-busy horizon E. Both transfers complete on the
// same cycle, so their functional memory effects must apply in
// submission order (B then A) — the reference loop's full queue scan
// did, and an active-copy list kept in admission order would not.
func TestCopyCompletionSubmissionOrder(t *testing.T) {
	run := func(legacy bool) []int {
		ctx := cudart.NewContext(exec.BugSet{})
		eng, err := New(GTX1050())
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		if _, err := ctx.RegisterModule(eqPTX); err != nil {
			t.Fatal(err)
		}
		_, kern, err := ctx.LookupKernel("sqadd")
		if err != nil {
			t.Fatal(err)
		}
		px, _ := ctx.Malloc(4 * 64)
		py, _ := ctx.Malloc(4 * 64)
		ctx.MemcpyF32HtoD(px, make([]float32, 64))
		ctx.MemcpyF32HtoD(py, make([]float32, 64))
		p := cudart.NewParams().Ptr(px).Ptr(py).U32(64)
		g, err := ctx.M.NewGrid(kern, exec.Dim3{X: 1}, exec.Dim3{X: 64}, p.Bytes(), 0)
		if err != nil {
			t.Fatal(err)
		}
		var order []int
		if _, err := eng.Submit(g, 2); err != nil { // short kernel, stream 2
			t.Fatal(err)
		}
		eng.SubmitCopy(2, 0, func() { order = append(order, 1) })     // B: zero-size, behind the kernel
		eng.SubmitCopy(1, 1<<20, func() { order = append(order, 2) }) // A: long transfer, admitted at cycle 0
		if legacy {
			err = eng.drainLegacyForTest(1)
		} else {
			err = eng.drain(1)
		}
		if err != nil {
			t.Fatal(err)
		}
		return order
	}
	want := []int{1, 2} // submission order: B then A
	for _, legacy := range []bool{true, false} {
		if got := run(legacy); !reflect.DeepEqual(got, want) {
			t.Errorf("legacy=%v: copies applied in order %v, want submission order %v", legacy, got, want)
		}
	}
}

// TestResumeFullyRetiredGrid pins the checkpoint-resume corner where a
// grid is admitted with every CTA already retired (skipCTAs == NumCTAs,
// a checkpoint taken exactly at kernel completion): the run finishes in
// a cycle where no scheduler issued and no wakeup exists, which must
// complete cleanly — not trip the time-invariant-state deadlock abort —
// and match the legacy loop's cycle accounting.
func TestResumeFullyRetiredGrid(t *testing.T) {
	run := func(legacy bool) (uint64, cudart.KernelStats) {
		ctx := cudart.NewContext(exec.BugSet{})
		eng, err := New(GTX1050())
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		if _, err := ctx.RegisterModule(eqPTX); err != nil {
			t.Fatal(err)
		}
		_, kern, err := ctx.LookupKernel("sqadd")
		if err != nil {
			t.Fatal(err)
		}
		px, _ := ctx.Malloc(4 * 64)
		py, _ := ctx.Malloc(4 * 64)
		p := cudart.NewParams().Ptr(px).Ptr(py).U32(64)
		g, err := ctx.M.NewGrid(kern, exec.Dim3{X: 2}, exec.Dim3{X: 32}, p.Bytes(), 0)
		if err != nil {
			t.Fatal(err)
		}
		tk, err := eng.submit(g, 0, g.NumCTAs(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if legacy {
			err = eng.drainLegacyForTest(1)
		} else {
			err = eng.drain(1)
		}
		if err != nil {
			t.Fatalf("drain (legacy=%v) rejected a fully retired resume: %v", legacy, err)
		}
		st, err := tk.Stats()
		if err != nil {
			t.Fatal(err)
		}
		return eng.Cycle(), st
	}
	newCycles, newStats := run(false)
	legCycles, legStats := run(true)
	if newCycles != legCycles || !reflect.DeepEqual(newStats, legStats) {
		t.Errorf("fully retired resume diverged: active-set %d cycles %+v, legacy %d cycles %+v",
			newCycles, newStats, legCycles, legStats)
	}
}

// TestDrainEquivalence is the property-style differential locking the
// active-set scheduler to the replaced semantics: for seeded random
// ticket mixes (kernels + copies over 1-4 streams), (a) the new drain
// and the legacy full-scan drain must agree byte-for-byte on cycles,
// per-ticket stats, engine counters and final device memory, and (b) a
// fully serialized run (every ticket on stream 0, the old pre-stream
// submission-order semantics) must agree on final memory and per-kernel
// instruction counts — cross-stream overlap may change cycles only.
func TestDrainEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ops, streams := eqPlan(seed)
			got := runEqPlan(t, ops, streams, false, false)
			ref := runEqPlan(t, ops, streams, false, true)

			if got.Cycles != ref.Cycles {
				t.Errorf("cycle counts diverged: active-set %d vs legacy %d", got.Cycles, ref.Cycles)
			}
			if !reflect.DeepEqual(got.Tickets, ref.Tickets) {
				t.Errorf("per-ticket stats diverged:\nactive-set: %+v\nlegacy:     %+v", got.Tickets, ref.Tickets)
			}
			if !reflect.DeepEqual(got.Outputs, ref.Outputs) {
				t.Error("final device memory diverged between active-set and legacy drains")
			}
			if !reflect.DeepEqual(got.Stats, ref.Stats) {
				t.Errorf("engine stats diverged:\nactive-set: %+v\nlegacy:     %+v", got.Stats, ref.Stats)
			}

			serial := runEqPlan(t, ops, streams, true, false)
			if !reflect.DeepEqual(got.Outputs, serial.Outputs) {
				t.Error("final device memory diverged between streamed and serialized runs")
			}
			for i := range got.Tickets {
				if got.Tickets[i].WarpInstrs != serial.Tickets[i].WarpInstrs {
					t.Errorf("ticket %d instruction count diverged: streamed %d vs serialized %d",
						i, got.Tickets[i].WarpInstrs, serial.Tickets[i].WarpInstrs)
				}
			}
		})
	}
}
