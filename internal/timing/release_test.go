package timing

import (
	"testing"

	"repro/internal/cudart"
	"repro/internal/exec"
)

// oobSharedPTX faults during execution (shared-memory store with no
// shared memory allocated), driving the abortBatch path.
const oobSharedPTX = `
.version 6.0
.target sm_61
.address_size 64
.visible .entry oob()
{
	.reg .f32 %f<2>;
	.reg .b32 %r<2>;
	mov.f32 %f1, 0f3F800000;
	mov.u32 %r1, 0;
	st.shared.f32 [%r1+4096], %f1;
	ret;
}
`

// assertCoresReleased checks no core's reusable per-cycle buffer still
// pins batch state through its backing array: retiredSlots (which held
// the last cycle's retired ctaSlots and through them the grids), the
// slots tail left by the in-place retirement compaction, and the
// memQ/atomQ warp-context pointers.
func assertCoresReleased(t *testing.T, e *Engine) {
	t.Helper()
	for _, c := range e.cores {
		if len(c.slots) != 0 {
			t.Errorf("core %d: %d resident CTAs survive the batch", c.id, len(c.slots))
		}
		for i, s := range c.retiredSlots[:cap(c.retiredSlots)] {
			if s != nil {
				t.Errorf("core %d: retiredSlots backing array still pins ctaSlot at %d", c.id, i)
			}
		}
		for i, s := range c.slots[:cap(c.slots)] {
			if s != nil {
				t.Errorf("core %d: slots backing array still pins ctaSlot at %d", c.id, i)
			}
		}
		for i, r := range c.memQ[:cap(c.memQ)] {
			if r.w != nil || r.in != nil {
				t.Errorf("core %d: memQ backing array still pins warp context at %d", c.id, i)
			}
		}
		for i, w := range c.atomQ[:cap(c.atomQ)] {
			if w != nil {
				t.Errorf("core %d: atomQ backing array still pins warp context at %d", c.id, i)
			}
		}
	}
	if len(e.queue) != 0 {
		t.Errorf("queue not emptied: %d tickets", len(e.queue))
	}
	for _, tk := range e.queue[:cap(e.queue)] {
		if tk != nil {
			t.Error("queue backing array still pins a ticket")
		}
	}
}

// TestDrainReleasesSlots pins the ROADMAP memory item: after a drain
// (and equally after an aborted batch) no core may keep the last
// cycle's retired ctaSlots — or any other batch reference — alive via
// the backing arrays of its reusable buffers, or every drained batch
// would stay resident until the next one happens to overwrite the same
// indices.
func TestDrainReleasesSlots(t *testing.T) {
	ctx := cudart.NewContext(exec.BugSet{})
	eng, err := New(GTX1050())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := ctx.RegisterModule(eqPTX); err != nil {
		t.Fatal(err)
	}
	_, kern, err := ctx.LookupKernel("sqadd")
	if err != nil {
		t.Fatal(err)
	}
	submit := func(stream int) *Ticket {
		px, _ := ctx.Malloc(4 * eqBufN)
		py, _ := ctx.Malloc(4 * eqBufN)
		ctx.MemcpyF32HtoD(px, make([]float32, eqBufN))
		p := cudart.NewParams().Ptr(px).Ptr(py).U32(eqBufN)
		g, err := ctx.M.NewGrid(kern, exec.Dim3{X: 4}, exec.Dim3{X: 64}, p.Bytes(), 0)
		if err != nil {
			t.Fatal(err)
		}
		tk, err := eng.Submit(g, stream)
		if err != nil {
			t.Fatal(err)
		}
		return tk
	}

	tk1, tk2 := submit(1), submit(2)
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	assertCoresReleased(t, eng)
	for i, tk := range []*Ticket{tk1, tk2} {
		if tk.grid != nil || tk.run != nil || tk.prev != nil || tk.next != nil {
			t.Errorf("ticket %d still pins its grid/run/stream links after drain", i)
		}
		if st, err := tk.Stats(); err != nil || st.WarpInstrs == 0 {
			t.Errorf("ticket %d stats lost by the release: %+v, %v", i, st, err)
		}
	}

	// Abort path: a faulting kernel must leave the cores just as clean.
	if _, err := ctx.RegisterModule(oobSharedPTX); err != nil {
		t.Fatal(err)
	}
	_, bad, err := ctx.LookupKernel("oob")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ctx.M.NewGrid(bad, exec.Dim3{X: 2}, exec.Dim3{X: 64}, cudart.NewParams().Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(g, 1); err != nil {
		t.Fatal(err)
	}
	submit(2) // innocent bystander, aborted alongside
	if err := eng.Drain(); err == nil {
		t.Fatal("expected the faulting batch to error")
	}
	assertCoresReleased(t, eng)
}
