package timing

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// pool is a fixed-size worker pool with a cycle-barrier semantic: run()
// partitions n independent tasks across the workers and returns only when
// all of them completed. Tasks within one run() call must touch disjoint
// state (the engine guarantees this by sharding per core / per partition),
// so the pool provides parallelism without locks.
//
// A pool with workers <= 1 degrades to inline sequential execution on the
// calling goroutine; because every phase the engine parallelises is order-
// independent by construction, the inline and pooled paths produce
// identical simulation state.
type pool struct {
	workers int
	jobs    chan poolJob
	once    sync.Once
	closed  atomic.Bool
}

type poolJob struct {
	f    func(int)
	next *atomic.Int64
	n    int
	wg   *sync.WaitGroup
}

// newPool starts workers-1 background goroutines (the calling goroutine
// participates in each run). workers <= 1 starts none.
func newPool(workers int) *pool {
	p := &pool{workers: workers}
	if workers > 1 {
		p.jobs = make(chan poolJob, workers)
		for i := 0; i < workers-1; i++ {
			go func() {
				for j := range p.jobs {
					j.run()
				}
			}()
		}
	}
	return p
}

func (j poolJob) run() {
	for {
		i := int(j.next.Add(1)) - 1
		if i >= j.n {
			break
		}
		j.f(i)
	}
	j.wg.Done()
}

// run executes f(0..n-1) across the pool and waits for completion.
func (p *pool) run(n int, f func(int)) {
	if p == nil || p.workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	k := p.workers
	if k > n {
		k = n
	}
	wg.Add(k)
	j := poolJob{f: f, next: &next, n: n, wg: &wg}
	for i := 0; i < k-1; i++ {
		p.jobs <- j
	}
	j.run() // the coordinator works too
	wg.Wait()
}

// Pool is the exported handle to the engine's fixed-size worker pool,
// for host-side parallelism layered *above* individual engines: the
// multi-GPU node steps per-device phases concurrently on one. Run
// partitions n independent tasks across the workers (the calling
// goroutine participates) and returns when all completed; tasks must
// touch disjoint state. A pool with workers <= 1 runs tasks inline on
// the caller, so results are identical for any worker count as long as
// the tasks are order-independent.
type Pool struct {
	p       *pool
	workers int
}

// NewPool builds a pool with the given worker count; workers <= 0
// selects runtime.NumCPU().
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{p: newPool(workers), workers: workers}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Run executes f(0..n-1) across the pool and waits for completion.
func (p *Pool) Run(n int, f func(int)) { p.p.run(n, f) }

// Close stops the background workers. Idempotent.
func (p *Pool) Close() { p.p.close() }

// close stops the background workers. Idempotent (it is reached both from
// Engine.Close and from the engine's GC cleanup); a closed pool reports
// itself so the engine rebuilds one on the next launch instead of sending
// on a closed channel.
func (p *pool) close() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		p.closed.Store(true)
		if p.jobs != nil {
			close(p.jobs)
		}
	})
}
