package timing_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cudart"
	"repro/internal/exec"
	"repro/internal/timing"
	"repro/internal/torch"
)

// KV-cached autoregressive decode under the detailed timing model: the
// same determinism contracts the encoder tests pin (stream-vs-serial and
// -j1-vs-jN byte-identity), extended with the replay cache — repeated
// generate batches must hit the cache and still reproduce tokens, logs
// and every replay counter regardless of worker count.

type decodeSnapshot struct {
	Cycles uint64
	Log    []cudart.KernelStats
	Tokens [][]int32
	Stats  timing.Stats
}

// runDecode greedy-decodes a `seqs`-prompt batch (3 prompt tokens, 4
// generated) `iters` times on one engine, freeing iteration-transient
// allocations between batches so the first-fit allocator re-issues
// identical addresses and — with replay on — later iterations retire
// from the replay cache.
func runDecode(t testing.TB, workers, seqs int, concurrent, replay bool, iters int) decodeSnapshot {
	t.Helper()
	dev, err := torch.NewDevice(exec.BugSet{})
	if err != nil {
		t.Fatal(err)
	}
	tcfg := timing.GTX1050()
	tcfg.ReplayEnabled = replay
	eng, err := timing.New(tcfg, timing.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	dev.Ctx.SetRunner(timing.Runner{E: eng})
	dec, err := torch.NewTransformerDecoder(dev, rand.New(rand.NewSource(99)), testTransformerConfig)
	if err != nil {
		t.Fatal(err)
	}
	prompts := transformerBatch(seqs, 3, testTransformerConfig.Vocab)
	baseline := map[uint64]bool{}
	for _, a := range dev.Ctx.Alloc.LiveAllocations() {
		baseline[a] = true
	}
	start := eng.Cycle()
	var tokens [][]int32
	for it := 0; it < iters; it++ {
		outs, err := dec.GenerateBatch(prompts, 4, concurrent)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			tokens = outs
		} else if !reflect.DeepEqual(tokens, outs) {
			t.Fatalf("iteration %d tokens diverged: %v vs %v", it+1, outs, tokens)
		}
		for _, a := range dev.Ctx.Alloc.LiveAllocations() {
			if !baseline[a] {
				if err := dev.Ctx.Free(a); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return decodeSnapshot{
		Cycles: eng.Cycle() - start,
		Log:    append([]cudart.KernelStats(nil), dev.Ctx.KernelStatsLog()...),
		Tokens: tokens,
		Stats:  *eng.Stats(),
	}
}

// TestDecodeSimMatchesCPU runs the stream-overlapped decode through the
// detailed timing model and checks every sequence token-for-token
// against the GenerateCPU oracle.
func TestDecodeSimMatchesCPU(t *testing.T) {
	dev, err := torch.NewDevice(exec.BugSet{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := timing.New(timing.GTX1050())
	if err != nil {
		t.Fatal(err)
	}
	dev.Ctx.SetRunner(timing.Runner{E: eng})
	dec, err := torch.NewTransformerDecoder(dev, rand.New(rand.NewSource(99)), testTransformerConfig)
	if err != nil {
		t.Fatal(err)
	}
	prompts := transformerBatch(2, 3, testTransformerConfig.Vocab)
	const n = 4
	outs, err := dec.GenerateBatch(prompts, n, true)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Cycle() == 0 {
		t.Fatal("decode did not go through the timing engine")
	}
	for i, p := range prompts {
		want, err := dec.GenerateCPU(p, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(outs[i]) != len(want) {
			t.Fatalf("seq %d: %d tokens, oracle %d", i, len(outs[i]), len(want))
		}
		for j := range want {
			if outs[i][j] != want[j] {
				t.Fatalf("seq %d token %d: device %d, oracle %d (full: %v vs %v)",
					i, j, outs[i][j], want[j], outs[i], want)
			}
		}
	}
}

// TestDecodeStreamVsSerialDifferential: per-sequence decode chains on
// concurrent streams must preserve the serialized run's tokens and
// per-kernel instruction counts exactly.
func TestDecodeStreamVsSerialDifferential(t *testing.T) {
	conc := runDecode(t, 1, 3, true, false, 1)
	serial := runDecode(t, 1, 3, false, false, 1)

	if len(conc.Log) != len(serial.Log) {
		t.Fatalf("launch counts diverged: %d vs %d", len(conc.Log), len(serial.Log))
	}
	for i := range conc.Log {
		if conc.Log[i].Name != serial.Log[i].Name {
			t.Errorf("launch %d kernel diverged: %s vs %s", i, conc.Log[i].Name, serial.Log[i].Name)
		}
		if conc.Log[i].WarpInstrs != serial.Log[i].WarpInstrs {
			t.Errorf("kernel %d (%s) instruction count diverged: concurrent %d vs serial %d",
				i, conc.Log[i].Name, conc.Log[i].WarpInstrs, serial.Log[i].WarpInstrs)
		}
		if conc.Log[i].Cycles == 0 {
			t.Errorf("kernel %d (%s) has no cycles — did not go through the detailed model",
				i, conc.Log[i].Name)
		}
	}
	if !reflect.DeepEqual(conc.Tokens, serial.Tokens) {
		t.Error("generated tokens diverged between concurrent and serialized runs")
	}
}

// TestDecodeWorkerDeterminism extends the -j1-vs-jN byte-identity
// contract to replay-enabled decode: two identical generate batches on
// one engine (the second riding the replay cache) must produce the same
// cycles, per-kernel log, tokens and full Stats — replay counters
// included — for any worker count.
func TestDecodeWorkerDeterminism(t *testing.T) {
	base := runDecode(t, 1, 2, true, true, 2)
	if base.Stats.ReplayHits == 0 {
		t.Fatal("second decode iteration produced no replay hits")
	}
	for _, workers := range []int{2, 4} {
		got := runDecode(t, workers, 2, true, true, 2)
		if base.Cycles != got.Cycles {
			t.Errorf("-j1 vs -j%d total cycles diverged: %d vs %d", workers, base.Cycles, got.Cycles)
		}
		if !reflect.DeepEqual(base.Log, got.Log) {
			t.Errorf("-j1 vs -j%d per-kernel stats diverged", workers)
		}
		if !reflect.DeepEqual(base.Tokens, got.Tokens) {
			t.Errorf("-j1 vs -j%d tokens diverged", workers)
		}
		if !reflect.DeepEqual(base.Stats, got.Stats) {
			t.Errorf("-j1 vs -j%d engine stats diverged:\n  -j1: %+v\n  -j%d: %+v",
				workers, base.Stats, workers, got.Stats)
		}
	}
}
