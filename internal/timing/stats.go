package timing

import (
	"repro/internal/exec"
	"repro/internal/ptx"
)

type stallKind int

const (
	stallIdle stallKind = iota
	stallData
	stallBarrier
	stallMem
	numStallKinds
)

// StallNames labels the warp-issue breakdown categories (W0 variants in
// the AerialVision warp plots).
var StallNames = [numStallKinds]string{"W0_idle", "W0_data_hazard", "W0_barrier", "W0_memory"}

// MemCounters is one kernel's (or one partition shard's) view of the
// shared memory system: L2 outcomes, DRAM demand traffic and row-buffer
// locality, and the cycles its segments spent stalled on partition
// ingress/MSHR/port reservations. Addition is commutative, so shards can
// be merged in any order.
type MemCounters struct {
	L2Accesses   uint64
	L2Hits       uint64
	L2Misses     uint64 // demand misses sent to DRAM (incl. MSHR-bypass)
	DRAMAccesses uint64
	DRAMRowHits  uint64
	StallCycles  uint64 // ingress/port/MSHR reservation waits, summed over segments
	SegCycles    uint64 // issue-to-response latency, summed over serviced segments
	SegServed    uint64 // partition-serviced segment count
}

func (m *MemCounters) add(o MemCounters) {
	m.L2Accesses += o.L2Accesses
	m.L2Hits += o.L2Hits
	m.L2Misses += o.L2Misses
	m.DRAMAccesses += o.DRAMAccesses
	m.DRAMRowHits += o.DRAMRowHits
	m.StallCycles += o.StallCycles
	m.SegCycles += o.SegCycles
	m.SegServed += o.SegServed
}

// KernelSample records one kernel's timing outcome, including its share
// of the memory-system traffic (attributed per grid by the partition
// shards, merged at retirement).
type KernelSample struct {
	Name   string
	Cycles uint64
	Instrs uint64
	Mem    MemCounters
}

// Stats accumulates engine-wide counters and AerialVision time series.
type Stats struct {
	interval uint64
	numSMs   int
	scheds   int
	// base is the bucket offset of index 0 in the series below. The
	// engine-wide accumulator keeps base 0 (absolute buckets); per-core
	// shards are rebased to the kernel's start bucket each launch so a
	// shard's series — and the cost of merging it — stays proportional
	// to the kernel's own length, not to the engine's total run length.
	base uint64

	Instructions uint64 // warp instructions committed
	ThreadInstrs uint64 // lane-instructions committed

	ALUOps          uint64
	SFUOps          uint64
	L1Accesses      uint64
	L2Accesses      uint64
	L2Hits          uint64
	L2Misses        uint64
	L2Writebacks    uint64 // dirty L2 evictions turned into DRAM write traffic
	DRAMAccesses    uint64
	DRAMRowHits     uint64
	NoCFlits        uint64
	SharedAccesses  uint64
	TextureAccesses uint64
	MemInstructions uint64
	MemSegments     uint64
	MSHRFull        uint64
	IdleSlotCycles  uint64

	// IngressStallCycles sums, over all partition-serviced segments, the
	// cycles each spent waiting on a partition ingress slot, L2 port or
	// L2 MSHR reservation (the bandwidth-aware hierarchy's back-pressure).
	IngressStallCycles uint64
	// SegCycles/SegServed track total and count of partition-serviced
	// segment latencies (issue to response), for AvgSegmentLatency.
	SegCycles uint64
	SegServed uint64

	// FastForwardedCycles counts cycles the drain loop's idle-cycle
	// fast-forward bridged instead of ticking (machine fully stalled on
	// memory and/or the copy engine). They are already charged to the
	// stall series and IdleSlotCycles — this counter only reports how
	// much simulated time the event jump skipped. Purely a wall-clock
	// optimisation: modelled cycle counts are identical either way.
	FastForwardedCycles uint64

	// Hybrid replay counters (Config.ReplayEnabled, see replay.go).
	// ReplayHits counts launches retired from a memoized entry;
	// ReplayMisses counts launches simulated in detail because no entry
	// existed; ReplayResamples counts hits deliberately re-run in detail
	// by the ReplayResampleEvery cadence. ReplayedCycles sums the
	// memoized durations of replayed launches; DetailedKernelCycles sums
	// the durations of kernels simulated in detail (always maintained,
	// so the two split total kernel time when replay is on).
	// ReplayDriftCycles sums |resampled − memoized| over re-samples —
	// the measured error of the replay approximation. ReplayMemoApplied
	// counts the hits whose functional effect came from a validated
	// write-set memo (exec.GridMemo) instead of re-interpretation — the
	// wall-clock fast path; the remaining hits re-executed functionally.
	ReplayHits           uint64
	ReplayMisses         uint64
	ReplayResamples      uint64
	ReplayedCycles       uint64
	DetailedKernelCycles uint64
	ReplayDriftCycles    uint64
	ReplayMemoApplied    uint64

	coreIPC   [][]uint64 // [core][bucket] warp instructions issued
	laneCount [][]uint64 // [active lanes 1..32 -> idx 0..31][bucket]
	stalls    [numStallKinds][]uint64

	// PerKernel holds one sample per retired kernel launch, in retirement
	// order, each carrying its attributed memory counters.
	PerKernel []KernelSample
}

func newStats(cfg Config) *Stats {
	s := &Stats{
		interval: uint64(cfg.SampleInterval),
		numSMs:   cfg.NumSMs,
		scheds:   cfg.SchedulersPerSM,
		coreIPC:  make([][]uint64, cfg.NumSMs),
	}
	s.laneCount = make([][]uint64, 32)
	return s
}

func grow(s []uint64, idx uint64) []uint64 {
	for uint64(len(s)) <= idx {
		s = append(s, 0)
	}
	return s
}

func (s *Stats) noteIssue(core int, cycle uint64, info exec.StepInfo, lanes int) {
	s.Instructions++
	s.ThreadInstrs += uint64(lanes)
	if info.Instr != nil {
		switch info.Instr.Op {
		case ptx.OpSqrt, ptx.OpRsqrt, ptx.OpRcp, ptx.OpLg2, ptx.OpEx2, ptx.OpSin, ptx.OpCos:
			s.SFUOps += uint64(lanes)
		default:
			s.ALUOps += uint64(lanes)
		}
	}
	if s.interval == 0 {
		return
	}
	b := cycle/s.interval - s.base
	s.coreIPC[core] = grow(s.coreIPC[core], b)
	s.coreIPC[core][b]++
	if lanes >= 1 {
		idx := lanes - 1
		s.laneCount[idx] = grow(s.laneCount[idx], b)
		s.laneCount[idx][b]++
	}
}

func (s *Stats) noteStall(core int, cycle uint64, k stallKind) {
	if k == stallIdle {
		s.IdleSlotCycles++
	}
	if s.interval == 0 {
		return
	}
	b := cycle/s.interval - s.base
	s.stalls[k] = grow(s.stalls[k], b)
	s.stalls[k][b]++
}

// addIdleBulk charges fast-forwarded cycles to the memory-stall category
// (the machine was waiting on outstanding memory when it fast-forwards).
func (s *Stats) addIdleBulk(from, span uint64, cfg Config) {
	slots := span * uint64(cfg.NumSMs*cfg.SchedulersPerSM)
	s.IdleSlotCycles += slots
	if s.interval == 0 {
		return
	}
	for c := from; c < from+span; c += s.interval {
		b := c / s.interval
		width := s.interval - c%s.interval
		if c+width > from+span {
			width = from + span - c
		}
		s.stalls[stallMem] = grow(s.stalls[stallMem], b)
		s.stalls[stallMem][b] += width * uint64(cfg.NumSMs*cfg.SchedulersPerSM)
	}
}

// NewStats returns an empty engine-shaped accumulator for cfg, for
// callers that fold several engines' statistics into one node-wide view
// (the multi-GPU driver merges per-device stats in rank order).
func NewStats(cfg Config) *Stats { return newStats(cfg) }

// Merge folds another engine's accumulated statistics into s: counters
// and time series add, and o's per-kernel samples append in retirement
// order. Both sides must be shaped for the same Config (same SM count).
// Merging per-device stats in a fixed rank order keeps the result
// byte-identical for any host worker count.
func (s *Stats) Merge(o *Stats) {
	s.merge(o)
	s.PerKernel = append(s.PerKernel, o.PerKernel...)
}

// merge adds another Stats' counters and time series into s. The engine
// gives each SM core its own shard so the parallel issue stage never
// contends on (or races over) the shared accumulators; shards are merged
// here at kernel boundaries. Addition is commutative, so the merged result
// is independent of worker scheduling.
func (s *Stats) merge(o *Stats) {
	s.Instructions += o.Instructions
	s.ThreadInstrs += o.ThreadInstrs
	s.ALUOps += o.ALUOps
	s.SFUOps += o.SFUOps
	s.L1Accesses += o.L1Accesses
	s.L2Accesses += o.L2Accesses
	s.L2Hits += o.L2Hits
	s.L2Misses += o.L2Misses
	s.L2Writebacks += o.L2Writebacks
	s.DRAMAccesses += o.DRAMAccesses
	s.DRAMRowHits += o.DRAMRowHits
	s.NoCFlits += o.NoCFlits
	s.SharedAccesses += o.SharedAccesses
	s.TextureAccesses += o.TextureAccesses
	s.MemInstructions += o.MemInstructions
	s.MemSegments += o.MemSegments
	s.MSHRFull += o.MSHRFull
	s.IdleSlotCycles += o.IdleSlotCycles
	s.IngressStallCycles += o.IngressStallCycles
	s.SegCycles += o.SegCycles
	s.SegServed += o.SegServed
	s.FastForwardedCycles += o.FastForwardedCycles
	s.ReplayHits += o.ReplayHits
	s.ReplayMisses += o.ReplayMisses
	s.ReplayResamples += o.ReplayResamples
	s.ReplayedCycles += o.ReplayedCycles
	s.DetailedKernelCycles += o.DetailedKernelCycles
	s.ReplayDriftCycles += o.ReplayDriftCycles
	s.ReplayMemoApplied += o.ReplayMemoApplied
	for c := range o.coreIPC {
		s.coreIPC[c] = mergeSeries(s.coreIPC[c], o.coreIPC[c], o.base)
	}
	for i := range o.laneCount {
		s.laneCount[i] = mergeSeries(s.laneCount[i], o.laneCount[i], o.base)
	}
	for k := range o.stalls {
		s.stalls[k] = mergeSeries(s.stalls[k], o.stalls[k], o.base)
	}
}

// mergeSeries adds src (whose index 0 is bucket `base`) into dst (absolute
// buckets).
func mergeSeries(dst, src []uint64, base uint64) []uint64 {
	if len(src) == 0 {
		return dst
	}
	dst = grow(dst, base+uint64(len(src)-1))
	for i, v := range src {
		dst[base+uint64(i)] += v
	}
	return dst
}

// rebase marks the kernel-start bucket of a per-core shard so its series
// indices are kernel-relative.
func (s *Stats) rebase(cycle uint64) {
	if s.interval > 0 {
		s.base = cycle / s.interval
	}
}

// reset clears a shard for reuse, keeping allocated series storage.
func (s *Stats) reset() {
	kernels := s.PerKernel
	interval, numSMs, scheds := s.interval, s.numSMs, s.scheds
	coreIPC, laneCount, stalls := s.coreIPC, s.laneCount, s.stalls
	*s = Stats{interval: interval, numSMs: numSMs, scheds: scheds}
	for i := range coreIPC {
		coreIPC[i] = coreIPC[i][:0]
	}
	for i := range laneCount {
		laneCount[i] = laneCount[i][:0]
	}
	for i := range stalls {
		stalls[i] = stalls[i][:0]
	}
	s.coreIPC, s.laneCount, s.stalls = coreIPC, laneCount, stalls
	s.PerKernel = kernels[:0]
}

func (s *Stats) noteKernel(name string, cycles, instrs uint64, mem MemCounters) {
	s.PerKernel = append(s.PerKernel, KernelSample{Name: name, Cycles: cycles, Instrs: instrs, Mem: mem})
}

// AvgSegmentLatency returns the mean issue-to-response latency of the
// segments the partitions serviced — the load-dependent number the
// bandwidth-aware hierarchy exists to produce (a lightly loaded machine
// sees raw L2/DRAM latency; a saturated one sees queueing on top).
func (s *Stats) AvgSegmentLatency() float64 {
	if s.SegServed == 0 {
		return 0
	}
	return float64(s.SegCycles) / float64(s.SegServed)
}

// ReplayCoverage returns the fraction of kernel launches retired from
// the replay cache: hits / (hits + misses + resamples). 0 when replay
// is disabled or no kernel has been launched.
func (s *Stats) ReplayCoverage() float64 {
	total := s.ReplayHits + s.ReplayMisses + s.ReplayResamples
	if total == 0 {
		return 0
	}
	return float64(s.ReplayHits) / float64(total)
}

// Interval returns the sample bucket width in cycles.
func (s *Stats) Interval() uint64 { return s.interval }

// GlobalIPCSeries returns total warp instructions per bucket across all
// shaders divided by the bucket width (the paper's global IPC plot).
func (s *Stats) GlobalIPCSeries() []float64 {
	n := 0
	for _, c := range s.coreIPC {
		if len(c) > n {
			n = len(c)
		}
	}
	out := make([]float64, n)
	for _, c := range s.coreIPC {
		for i, v := range c {
			out[i] += float64(v)
		}
	}
	for i := range out {
		out[i] /= float64(s.interval)
	}
	return out
}

// ShaderIPCSeries returns per-core instructions per cycle per bucket
// (the paper's shader IPC plot: y-axis is the shader core number).
func (s *Stats) ShaderIPCSeries() [][]float64 {
	out := make([][]float64, len(s.coreIPC))
	for c := range s.coreIPC {
		out[c] = make([]float64, len(s.coreIPC[c]))
		for i, v := range s.coreIPC[c] {
			out[c][i] = float64(v) / float64(s.interval)
		}
	}
	return out
}

// WarpIssueBreakdown returns the warp plot series: first the W0 stall
// categories, then W1..W32 (issued warps by active lane count), per
// bucket, as fractions of issue slots.
func (s *Stats) WarpIssueBreakdown() (names []string, series [][]float64) {
	n := 0
	for _, st := range s.stalls {
		if len(st) > n {
			n = len(st)
		}
	}
	for _, lc := range s.laneCount {
		if len(lc) > n {
			n = len(lc)
		}
	}
	slotsPerBucket := float64(s.interval) * float64(s.numSMs*s.scheds)
	for k := stallKind(0); k < numStallKinds; k++ {
		names = append(names, StallNames[k])
		row := make([]float64, n)
		for i, v := range s.stalls[k] {
			row[i] = float64(v) / slotsPerBucket
		}
		series = append(series, row)
	}
	for lanes := 1; lanes <= 32; lanes++ {
		names = append(names, wName(lanes))
		row := make([]float64, n)
		for i, v := range s.laneCount[lanes-1] {
			row[i] = float64(v) / slotsPerBucket
		}
		series = append(series, row)
	}
	return names, series
}

func wName(lanes int) string {
	const digits = "0123456789"
	if lanes < 10 {
		return "W" + digits[lanes:lanes+1]
	}
	return "W" + digits[lanes/10:lanes/10+1] + digits[lanes%10:lanes%10+1]
}

// TotalIPC returns whole-run warp IPC over the given cycle span.
func (s *Stats) TotalIPC(cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(cycles)
}
