package timing

import (
	"fmt"
	"runtime"

	"repro/internal/cache"
	"repro/internal/cudart"
	"repro/internal/dram"
	"repro/internal/exec"
)

// Engine is the cycle-level performance model. It persists across kernel
// launches so the AerialVision time series span a whole application run,
// exactly like the plots in the paper's §V.
//
// The engine is organised as a parallel event-driven pipeline. Each cycle
// runs in phases separated by barriers:
//
//	issue stage   — every SM core schedules and issues independently
//	                (parallel across cores; only core-owned state)
//	atomic drain  — deferred atomics execute sequentially in core order
//	memory stage  — partitions service queued L2/DRAM traffic in
//	                canonical order (parallel across partitions)
//	apply + CTA   — completion times fold back into the scoreboards
//	                (parallel across cores); the dispatcher refills cores
//
// All cross-core interactions live in the ordered phases, so the reported
// cycle counts and statistics are bit-identical for every worker count.
//
// Kernels are executed through a submission queue: Submit enqueues a
// launch on a stream, Drain runs the machine until every queued operation
// retires. Operations on the same stream serialise; operations on
// different streams become concurrently-resident grids, with CTAs
// assigned to SMs by the multi-grid dispatcher's left-over policy (see
// dispatcher.go). Host-device copies ride a modelled copy engine and
// order against kernels on their stream. All admission, dispatch and
// retirement decisions happen on the coordinator goroutine in submission
// order, so concurrent execution preserves the worker-count determinism
// contract. RunGrid remains as the one-kernel convenience wrapper.
type Engine struct {
	cfg     Config
	cores   []*smCore
	parts   []*partition
	cycle   uint64
	stats   *Stats
	workers int
	pool    *pool // cached across launches; rebuilt when the count changes

	queue         []*Ticket     // submitted, not yet drained operations, in submission order
	machine       *exec.Machine // machine bound to the pending batch
	copyBusyUntil uint64        // cycle the modelled copy engine frees up

	// replay is the hybrid-replay memoization cache (replay.go), nil
	// unless Config.ReplayEnabled. Coordinator-owned: Submit computes
	// signatures, the drain loop looks up and stages entries, so worker
	// count cannot influence replay decisions.
	replay *replayCache
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets how many host worker goroutines step SM cores
// concurrently. 1 (the default) runs fully inline; n <= 0 selects
// runtime.NumCPU(). Any value produces identical simulation results.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n <= 0 {
			n = runtime.NumCPU()
		}
		e.workers = n
	}
}

// New builds an engine for a machine configuration.
func New(cfg Config, opts ...Option) (*Engine, error) {
	e := &Engine{cfg: cfg, stats: newStats(cfg), workers: 1}
	for i := 0; i < cfg.NumSMs; i++ {
		l1, err := cache.New(cfg.L1)
		if err != nil {
			return nil, err
		}
		e.cores = append(e.cores, newCore(i, e, l1))
	}
	for i := 0; i < cfg.NumPartitions; i++ {
		l2, err := cache.New(cfg.L2)
		if err != nil {
			return nil, err
		}
		e.parts = append(e.parts,
			newPartition(i, l2, dram.NewChannel(cfg.DRAM, uint64(cfg.SampleInterval)), cfg.L2.MSHRs))
	}
	if cfg.ReplayEnabled {
		e.replay = newReplayCache(&cfg)
	}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns accumulated statistics.
func (e *Engine) Stats() *Stats { return e.stats }

// Cycle returns the current cycle.
func (e *Engine) Cycle() uint64 { return e.cycle }

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return e.workers }

// SetWorkers changes the worker count for subsequent kernel launches.
func (e *Engine) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	e.workers = n
}

// AdvanceTo fast-forwards an idle engine's clock to the given absolute
// cycle, charging the bridged span to the idle statistics exactly like
// the drain loop's idle fast-forward (so bucket sums keep matching
// elapsed cycles). The multi-GPU node uses it to charge modelled NVLink
// communication time at collective boundaries: every participating
// engine is advanced to the collective's completion cycle. Targets at
// or before the current cycle are a no-op; an engine with queued work
// refuses (the caller must drain first, otherwise the jump would
// overlap the queued operations' timing).
func (e *Engine) AdvanceTo(cycle uint64) error {
	if len(e.queue) != 0 {
		return fmt.Errorf("timing: AdvanceTo(%d) with %d queued operations (drain first)", cycle, len(e.queue))
	}
	if cycle <= e.cycle {
		return nil
	}
	span := cycle - e.cycle
	e.stats.addIdleBulk(e.cycle, span, e.cfg)
	e.stats.FastForwardedCycles += span
	e.cycle = cycle
	return nil
}

// Partitions exposes the DRAM channels (for the aerial plots).
func (e *Engine) Partitions() []*dram.Channel {
	out := make([]*dram.Channel, len(e.parts))
	for i, p := range e.parts {
		out[i] = p.ch
	}
	return out
}

// KernelStats is re-exported for convenience.
type KernelStats = cudart.KernelStats

// Runner adapts the engine to cudart.Runner — installing it on a context
// switches the context into the paper's Performance simulation mode. It
// also implements cudart.StreamRunner, so async launches and copies on
// non-default streams execute concurrently inside the detailed model.
type Runner struct {
	E *Engine
	// Workers overrides the engine's worker count for launches made
	// through this runner: 0 keeps the engine's setting, a negative
	// value selects runtime.NumCPU().
	Workers int
}

// RunKernel implements cudart.Runner.
func (r Runner) RunKernel(g *exec.Grid) (cudart.KernelStats, error) {
	return r.E.runGrid(g, 0, nil, r.Workers)
}

// SubmitKernel implements cudart.StreamRunner: the launch is queued on
// the stream and simulated at the next Drain.
func (r Runner) SubmitKernel(g *exec.Grid, stream int) (cudart.AsyncTicket, error) {
	return r.E.Submit(g, stream)
}

// SubmitCopy implements cudart.StreamRunner: an n-byte host-device copy
// queued on the stream; apply runs when the modelled transfer completes.
func (r Runner) SubmitCopy(stream, bytes int, apply func()) cudart.AsyncTicket {
	return r.E.SubmitCopy(stream, bytes, apply)
}

// DrainAll implements cudart.StreamRunner.
func (r Runner) DrainAll() error { return r.E.drain(r.Workers) }

// ClockMHz implements cudart.StreamRunner (for cycle → µs conversion on
// the context's coarse stream timeline).
func (r Runner) ClockMHz() float64 { return r.E.cfg.ClockMHz }

// opKind distinguishes queued operations.
type opKind uint8

const (
	opKernel opKind = iota
	opCopy
)

// Ticket is a handle to one submitted operation. Kernel tickets carry the
// per-kernel statistics once the operation has been drained.
type Ticket struct {
	kind   opKind
	stream int

	grid     *exec.Grid
	skipCTAs int
	preload  []*exec.CTA
	run      *gridRun // occupancy precomputed at submit

	copyBytes int
	copyApply func()

	// prev/next link the operation to its same-stream neighbours within
	// the batch (nil at the ends). Same-stream ops complete in order, so
	// prev.done means every predecessor is done, and next is the ticket
	// that becomes admission-eligible when this one retires. seq is the
	// submission-queue index, used to restore submission order when
	// several streams unblock in the same cycle (see schedule.go).
	prev *Ticket
	next *Ticket
	seq  int

	admitted   bool
	startCycle uint64 // kernels: admission cycle; copies: transfer start
	endCycle   uint64 // copies and replay hits: modelled completion cycle
	done       bool
	stats      cudart.KernelStats
	err        error

	// Hybrid replay (replay.go). sig/hasSig: the launch's replay
	// signature, computed at submit when replay is on (resume launches
	// never get one — a partially pre-retired grid's timing must not
	// poison the cache). replayEnt: the memoized entry a hit retires
	// from. resample: a hit the cadence sent back to detailed
	// simulation so retirement measures drift and refreshes the entry.
	sig       replaySig
	hasSig    bool
	replayEnt *replayEntry
	resample  bool
}

// Done reports whether the operation has retired.
func (t *Ticket) Done() bool { return t.done }

// Stats returns the kernel statistics. It errors until the engine has
// drained the ticket, and reports the simulation error if the kernel
// failed.
func (t *Ticket) Stats() (cudart.KernelStats, error) {
	if t.err != nil {
		return t.stats, t.err
	}
	if !t.done {
		return t.stats, fmt.Errorf("timing: ticket not drained yet (call Engine.Drain)")
	}
	return t.stats, nil
}

// Submit queues a kernel launch on a stream without running it. Launches
// on the same stream execute in submission order; launches on different
// streams run concurrently during Drain. All queued operations must come
// from the same functional machine (one simulated device).
func (e *Engine) Submit(g *exec.Grid, stream int) (*Ticket, error) {
	return e.submit(g, stream, 0, nil)
}

func (e *Engine) submit(g *exec.Grid, stream, skipCTAs int, preload []*exec.CTA) (*Ticket, error) {
	if e.machine != nil && g.Machine() != e.machine {
		return nil, fmt.Errorf("timing: engine has pending work from a different machine")
	}
	t := &Ticket{
		kind: opKernel, stream: stream,
		grid: g, skipCTAs: skipCTAs, preload: preload,
		stats: cudart.KernelStats{
			Name: g.Kernel.Name, GridDim: g.GridDim, BlockDim: g.BlockDim,
		},
	}
	run, err := newGridRun(&e.cfg, t)
	if err != nil {
		return nil, err
	}
	t.run = run
	if e.replay != nil && skipCTAs == 0 && preload == nil {
		t.sig = e.replay.signature(g)
		t.hasSig = true
	}
	e.machine = g.Machine()
	e.queue = append(e.queue, t)
	return t, nil
}

// SubmitCopy queues an n-byte host-device transfer on a stream. The copy
// orders against kernels and copies on its stream, serialises with other
// transfers on the modelled copy engine, and runs apply (the functional
// memory effect) when the modelled transfer completes. The returned
// ticket reports the transfer's occupancy as Stats().Cycles; the other
// kernel statistics stay zero.
func (e *Engine) SubmitCopy(stream, bytes int, apply func()) *Ticket {
	t := &Ticket{
		kind: opCopy, stream: stream,
		copyBytes: bytes, copyApply: apply,
	}
	e.queue = append(e.queue, t)
	return t
}

// Drain simulates until every submitted operation has retired. Statistics
// land on the tickets; the first failure aborts the whole batch and is
// returned (every unfinished ticket gets an error).
func (e *Engine) Drain() error { return e.drain(0) }

// RunGrid simulates one kernel launch to completion (any previously
// submitted operations drain along with it).
func (e *Engine) RunGrid(g *exec.Grid) (cudart.KernelStats, error) {
	return e.runGrid(g, 0, nil, 0)
}

// RunGridResume simulates a launch whose first skipCTAs blocks already
// completed before a checkpoint, with `preload` holding mid-flight CTAs
// restored from checkpoint Data1 (paper §III-F resume flow, Fig. 5).
func (e *Engine) RunGridResume(g *exec.Grid, skipCTAs int, preload []*exec.CTA) (cudart.KernelStats, error) {
	return e.runGrid(g, skipCTAs, preload, 0)
}

func (e *Engine) runGrid(g *exec.Grid, skipCTAs int, preload []*exec.CTA, workers int) (cudart.KernelStats, error) {
	t, err := e.submit(g, 0, skipCTAs, preload)
	if err != nil {
		return cudart.KernelStats{}, err
	}
	if err := e.drain(workers); err != nil {
		if t.err != nil {
			return cudart.KernelStats{}, t.err
		}
		return cudart.KernelStats{}, err
	}
	return t.stats, t.err
}

// copyCycles converts a transfer size to copy-engine cycles.
func (e *Engine) copyCycles(bytes int) uint64 {
	bpc := e.cfg.CopyBytesPerCycle
	if bpc <= 0 {
		// the analytical timeline's PCIe bandwidth, at the core clock
		mhz := e.cfg.ClockMHz
		if mhz <= 0 {
			mhz = cudart.DefaultClockMHz
		}
		bpc = cudart.DefaultCopyBWBytesPerUs / mhz
	}
	return uint64(float64(bytes)/bpc + 0.5)
}

// drain is the engine's main loop: admit eligible operations, step the
// machine cycle by cycle, retire operations, until the queue is empty.
//
// Per-cycle work is O(active grids + active copies + newly ready
// tickets), not O(total queued tickets): the schedule (schedule.go)
// tracks the first-unfinished cursor, the admission-ready list and the
// in-flight copy list incrementally, so a transformer-scale batch of
// hundreds of queued tickets costs the same per cycle as a single
// kernel. Fully stalled stretches — every core waiting on memory and/or
// the copy engine mid-transfer — fast-forward the clock to the next
// event (earliest scoreboard wakeup, which already reflects partition
// service times, or earliest copy completion) instead of ticking empty
// cycles; the skipped cycles are charged to the stall statistics so the
// modelled cycle counts and bucket sums are identical to a cycle-by-
// cycle walk.
func (e *Engine) drain(workers int) error {
	if len(e.queue) == 0 {
		return nil
	}
	m := e.machine

	// Dense per-batch kernel ids index the cores' instruction shards.
	nKernels := 0
	for _, t := range e.queue {
		if t.kind == opKernel {
			t.run.id = nKernels
			nKernels++
		}
	}
	sch := newSchedule(e.queue)
	for _, pt := range e.parts {
		pt.sizeKernelShard(nKernels)
	}
	for _, c := range e.cores {
		for i := range c.scheds {
			c.scheds[i].rr = 0
		}
		c.stats.rebase(e.cycle)
		if cap(c.runInstrs) < nKernels {
			c.runInstrs = make([]uint64, nKernels)
		} else {
			c.runInstrs = c.runInstrs[:nKernels]
			for i := range c.runInstrs {
				c.runInstrs[i] = 0
			}
		}
	}

	if workers == 0 {
		workers = e.workers
	} else if workers < 0 {
		workers = runtime.NumCPU()
	}
	p := e.getPool(workers)

	var disp dispatcher
	nCores := len(e.cores)
	nParts := len(e.parts)
	deadline := e.cycle + 2_000_000_000 // runaway guard

	for {
		// Complete in-flight timed operations — copies run their
		// functional memory effect now that the modelled transfer has
		// finished; replay-hit kernels retire with their memoized stats
		// (finishReplay) — then check for overall completion. O(active
		// timed ops), and the cursor makes the completion check O(1)
		// amortised.
		failID := -1
		ferr := sch.completeTimed(e.cycle, func(t *Ticket) error {
			if t.kind == opCopy {
				if t.copyApply != nil {
					t.copyApply()
					t.copyApply = nil
				}
				t.stats.Cycles = t.endCycle - t.startCycle
				t.done = true
				return nil
			}
			if err := e.finishReplay(t); err != nil {
				failID = t.run.id
				return err
			}
			return nil
		})
		if ferr != nil {
			return e.abortBatch(m, ferr, failID)
		}
		if sch.drained() {
			break
		}

		// Admit operations whose stream predecessor has retired, in
		// submission order (the deterministic stream-ordered policy).
		// Only tickets that just became stream heads are visited.
		if ready := sch.takeReady(); len(ready) > 0 {
			for _, t := range ready {
				if t.done || t.admitted {
					continue
				}
				if t.kind == opKernel {
					t.startCycle = e.cycle
					if ent := e.replayLookup(t); ent != nil {
						// Replay hit: no CTA dispatch — the launch
						// retires at an absolute cycle on the timed
						// list, like a copy, so the fast-forward
						// invariant holds unchanged.
						t.replayEnt = ent
						t.endCycle = e.cycle + ent.cycles
						t.admitted = true
						sch.addTimed(t)
					} else {
						disp.admit(t.run)
						t.admitted = true
					}
				} else {
					start := e.cycle
					if e.copyBusyUntil > start {
						start = e.copyBusyUntil
					}
					t.startCycle = start
					t.endCycle = start + e.copyCycles(t.copyBytes)
					e.copyBusyUntil = t.endCycle
					t.admitted = true
					sch.addTimed(t)
				}
			}
			sch.clearReady()
		}

		disp.fill(&e.cfg, e.cores)

		if len(disp.runs) == 0 {
			// Only timed operations (copies, replay hits) in flight:
			// jump to the earliest completion, charging the bridged
			// cycles to the stall statistics like the stalled-machine
			// fast-forward below, so bucket sums keep matching elapsed
			// cycles.
			wake := sch.earliestTimedEnd()
			if wake == ^uint64(0) {
				return e.abortBatch(m, fmt.Errorf("timing: drain stalled with pending work"), -1)
			}
			if wake > e.cycle {
				e.stats.addIdleBulk(e.cycle, wake-e.cycle, e.cfg)
				e.stats.FastForwardedCycles += wake - e.cycle
				e.cycle = wake
			}
			continue
		}

		if e.cycle > deadline {
			return e.abortBatch(m, fmt.Errorf("timing: exceeded cycle budget (deadlock?)"), -1)
		}
		now := e.cycle

		// Phase 1: parallel issue stage.
		p.run(nCores, func(i int) { e.cores[i].stageIssue(m, now) })

		anyIssued := false
		anyMem := false
		progressAt := uint64(^uint64(0))
		for _, c := range e.cores {
			if c.err != nil {
				return e.abortBatch(m, c.err, c.errRunID)
			}
			// Phase 2: sequential atomic drain, core id order.
			for _, w := range c.atomQ {
				if err := c.issue(m, w, now); err != nil {
					return e.abortBatch(m, err, w.runID)
				}
			}
			if c.issuedAny {
				anyIssued = true
			} else if c.nextAt < progressAt {
				progressAt = c.nextAt
			}
			if len(c.memQ) > 0 {
				anyMem = true
			}
			// CTA retirement, attributed per grid in canonical core
			// order. A retirement frees placement capacity, so the
			// dispatcher must re-run its fill next cycle.
			if len(c.retiredSlots) > 0 {
				disp.dirty = true
			}
			for _, s := range c.retiredSlots {
				s.run.done++
			}
		}

		if anyMem {
			// Bucket this cycle's segments into per-partition queues in
			// canonical (core id, issue order) order. Runs after the
			// atomic drain so memQ backing arrays are final and the
			// queued pointers stay valid.
			for _, pt := range e.parts {
				pt.queue = pt.queue[:0]
			}
			for _, c := range e.cores {
				for i := range c.memQ {
					req := &c.memQ[i]
					for j := range req.segs {
						s := &req.segs[j]
						if !s.merged {
							e.parts[s.part].queue = append(e.parts[s.part].queue, s)
						}
					}
				}
			}
			// Phase 3: parallel partition drain (canonical order inside).
			p.run(nParts, func(i int) { e.parts[i].drain(&e.cfg) })
			// Phase 4: parallel scoreboard/L1 apply.
			p.run(nCores, func(i int) { e.cores[i].applyMem(now) })
		}

		// Retire finished grids in submission order; each retirement
		// unblocks the next ticket on its stream for admission at the
		// top of the next cycle.
		for _, r := range disp.runs {
			if r.finished() && !r.op.done {
				e.finishRun(r, now)
				sch.complete(r.op)
			}
		}
		disp.retire()

		e.cycle++
		if !anyIssued {
			// Idle-cycle fast-forward over a fully stalled machine: no
			// scheduler issued, so the machine state cannot change until
			// the earliest scoreboard wakeup (progressAt, which reflects
			// partition service completion times folded in by applyMem)
			// or the earliest timed completion — a copy or a replay hit,
			// either of which can admit new kernels. Jump the clock
			// there, charging the skipped cycles to the stall statistics
			// so bucket sums still match elapsed cycles and modelled
			// cycle counts are identical to a cycle-by-cycle walk.
			wake := progressAt
			if cw := sch.earliestTimedEnd(); cw < wake {
				wake = cw
			}
			if wake == ^uint64(0) {
				// No warp has a future ready time and no timed op is in
				// flight. If the batch just drained (a grid with no
				// issuable work retired this cycle — e.g. a checkpoint
				// resume whose CTAs were all pre-retired) or a
				// retirement unblocked admissions, the next iteration
				// makes progress. Otherwise the state is time-invariant
				// and ticking to the cycle budget would just hang —
				// abort now instead.
				if !sch.drained() && len(sch.ready) == 0 {
					return e.abortBatch(m, fmt.Errorf("timing: machine deadlocked with resident work"), -1)
				}
			} else if wake > e.cycle {
				skip := wake - e.cycle
				e.stats.addIdleBulk(e.cycle, skip, e.cfg)
				e.stats.FastForwardedCycles += skip
				e.cycle = wake
			}
		}
	}

	e.mergeShards(m)
	if e.replay != nil {
		// Publish this batch's freshly measured entries only now that the
		// whole batch retired cleanly: later batches may replay them, the
		// batch that recorded them never could.
		e.replay.commit()
	}
	e.releaseQueue()
	return nil
}

// replayLookup consults the replay cache at admission. A nil return means
// the launch runs in detail — replay off, no signature (resume launch), a
// cold miss, or a hit the re-sampling cadence selected for detailed
// execution (flagged on the ticket so retirement measures drift and
// refreshes the entry). Coordinator-only, so hit/miss decisions are
// independent of worker count.
func (e *Engine) replayLookup(t *Ticket) *replayEntry {
	if e.replay == nil || !t.hasSig {
		return nil
	}
	ent := e.replay.entries[t.sig]
	if ent == nil {
		e.stats.ReplayMisses++
		return nil
	}
	ent.hits++
	if n := e.cfg.ReplayResampleEvery; n > 0 && ent.hits%uint64(n) == 0 {
		e.stats.ReplayResamples++
		t.resample = true
		return nil
	}
	e.stats.ReplayHits++
	return ent
}

// finishReplay retires a replay-hit ticket at its memoized end cycle. The
// launch's functional memory effects execute now, on the coordinator
// (replay memoizes timing, not semantics — final device memory stays
// byte-identical to a detailed run), and the memoized per-kernel stats
// fold into the ticket and the engine-wide accumulators exactly as a
// detailed retirement would have. Replay reconstructs the memoized
// aggregates only — the per-interval time series and the uncached
// counters (ThreadInstrs, ALU/SFU ops, L1 traffic, …) stay flat across
// the replayed window.
func (e *Engine) finishReplay(t *Ticket) error {
	ent := t.replayEnt
	// Functional effect, cheapest sound path first: apply the captured
	// write-set when the read-set still matches current memory; capture
	// (= run + record) on the first hit or when memory moved underneath
	// a stale memo; plain re-interpretation when capture found
	// unmemoizable state (textures). All three produce byte-identical
	// memory; only wall-clock (and the functional coverage counters,
	// which the apply path does not bump) differs.
	switch {
	case ent.memo != nil && ent.memo.Matches(e.machine):
		ent.memo.Apply(e.machine)
		e.stats.ReplayMemoApplied++
	case !ent.memoTried || ent.memo != nil:
		ent.memoTried = true
		memo, err := e.machine.CaptureGrid(t.grid)
		if err != nil {
			return err
		}
		ent.memo = memo
	default:
		if err := e.machine.RunGrid(t.grid); err != nil {
			return err
		}
	}
	st := &t.stats
	st.Cycles = t.endCycle - t.startCycle
	st.WarpInstrs = ent.instrs
	st.L2Accesses = ent.mem.L2Accesses
	st.L2Hits = ent.mem.L2Hits
	st.L2Misses = ent.mem.L2Misses
	st.DRAMAccesses = ent.mem.DRAMAccesses
	st.DRAMRowHits = ent.mem.DRAMRowHits
	st.MemStallCycles = ent.mem.StallCycles
	st.Replayed = true
	t.done = true
	s := e.stats
	s.noteKernel(t.grid.Kernel.Name, st.Cycles, ent.instrs, ent.mem)
	s.Instructions += ent.instrs
	s.L2Accesses += ent.mem.L2Accesses
	s.L2Hits += ent.mem.L2Hits
	s.L2Misses += ent.mem.L2Misses
	s.DRAMAccesses += ent.mem.DRAMAccesses
	s.DRAMRowHits += ent.mem.DRAMRowHits
	s.IngressStallCycles += ent.mem.StallCycles
	s.SegCycles += ent.mem.SegCycles
	s.SegServed += ent.mem.SegServed
	s.ReplayedCycles += st.Cycles
	return nil
}

// finishRun retires a finished grid at cycle now: per-core instruction
// shards and per-partition memory-counter shards (both indexed by the
// run's dense id) fold into the ticket stats and the engine's per-kernel
// samples. Runs on the coordinator between cycle phases — partitions and
// cores are idle — so reading the shards is race-free. Shared by the
// production drain and the legacy reference loop so the two cannot
// quietly diverge on retirement accounting.
func (e *Engine) finishRun(r *gridRun, now uint64) {
	end := now + 1
	var instrs uint64
	for _, c := range e.cores {
		instrs += c.runInstrs[r.id]
	}
	var mem MemCounters
	for _, pt := range e.parts {
		if r.id >= 0 && r.id < len(pt.perKernel) {
			mem.add(pt.perKernel[r.id])
			pt.perKernel[r.id] = MemCounters{}
		}
	}
	st := &r.op.stats
	st.Cycles = end - r.op.startCycle
	st.WarpInstrs = instrs
	st.L2Accesses = mem.L2Accesses
	st.L2Hits = mem.L2Hits
	st.L2Misses = mem.L2Misses
	st.DRAMAccesses = mem.DRAMAccesses
	st.DRAMRowHits = mem.DRAMRowHits
	st.MemStallCycles = mem.StallCycles
	r.op.done = true
	e.stats.noteKernel(r.grid.Kernel.Name, st.Cycles, instrs, mem)
	e.stats.DetailedKernelCycles += st.Cycles
	if e.replay != nil && r.op.hasSig {
		if r.op.resample {
			// Re-sampled hit: measure how far the memoized timing has
			// drifted from a fresh detailed run before refreshing it.
			if old := e.replay.entries[r.op.sig]; old != nil {
				d := st.Cycles - old.cycles
				if old.cycles > st.Cycles {
					d = old.cycles - st.Cycles
				}
				e.stats.ReplayDriftCycles += d
			}
		}
		e.replay.stage(r.op.sig, replayEntry{cycles: st.Cycles, instrs: instrs, mem: mem})
	}
}

// releaseQueue empties the batch queue, dropping the references each
// retired ticket holds (grid state, preload CTAs, prev/next chains) so a
// long-lived engine does not pin finished kernels in memory through the
// slice backing array. The cores' reusable per-cycle buffers (notably
// retiredSlots, which still holds the last cycle's retired ctaSlots and
// through them the grids) are cleared for the same reason. Callers keep
// their tickets; only the stats and error survive on them.
func (e *Engine) releaseQueue() {
	for i, t := range e.queue {
		t.prev = nil
		t.next = nil
		t.grid = nil
		t.preload = nil
		t.run = nil
		t.copyApply = nil
		t.replayEnt = nil
		e.queue[i] = nil
	}
	e.queue = e.queue[:0]
	e.machine = nil
	for _, c := range e.cores {
		c.releaseBatchRefs()
	}
}

// getPool returns the engine's worker pool, rebuilding it only when the
// effective worker count changes (cuDNN workloads launch many kernels;
// spinning goroutines up per launch would be wasted churn). A pool for
// workers <= 1 holds no goroutines at all. Pools with goroutines are tied
// to the engine's lifetime by a GC cleanup, so abandoning an Engine
// without calling Close does not leak them permanently.
func (e *Engine) getPool(workers int) *pool {
	if e.pool == nil || e.pool.workers != workers || e.pool.closed.Load() {
		e.pool.close()
		e.pool = newPool(workers)
		if e.pool.jobs != nil {
			runtime.AddCleanup(e, func(p *pool) { p.close() }, e.pool)
		}
	}
	return e.pool
}

// Close releases the engine's worker goroutines. It is safe to call more
// than once and to keep reading Stats/Partitions afterwards; a subsequent
// kernel launch simply rebuilds the pool.
func (e *Engine) Close() { e.pool.close() }

// abortBatch restores the engine to a reusable state after a failure:
// resident CTAs are dropped from every core, stat shards are folded in so
// they cannot be misattributed to the next batch, and every unfinished
// ticket is marked failed. runID attributes the failure to a specific
// kernel (-1 when unknown). Returns the error recorded on the faulting
// ticket.
func (e *Engine) abortBatch(m *exec.Machine, cause error, runID int) error {
	name := "?"
	var faulty *Ticket
	for _, t := range e.queue {
		if t.kind == opKernel && t.run.id == runID {
			faulty = t
			name = t.grid.Kernel.Name
			break
		}
	}
	err := fmt.Errorf("timing: kernel %s: %w", name, cause)
	if faulty == nil {
		err = cause
	}
	for _, t := range e.queue {
		if t.done {
			continue
		}
		if t == faulty {
			t.err = err
		} else {
			t.err = fmt.Errorf("timing: aborted by failure in the same batch: %w", cause)
		}
		t.done = true
	}
	for _, c := range e.cores {
		for i := range c.slots {
			c.slots[i] = nil
		}
		c.slots = c.slots[:0]
		c.warpsUsed = 0
		c.smemUsed = 0
		for i := range c.scheds {
			sc := &c.scheds[i]
			for j := range sc.cands {
				sc.cands[j] = nil
			}
			sc.cands = sc.cands[:0]
			sc.rr = 0
		}
		c.err = nil
		// retiredSlots/memQ/atomQ backing refs are cleared by the
		// releaseQueue call below (releaseBatchRefs per core).
	}
	// drop the killed in-flight copies' engine occupancy so it cannot
	// leak into the next batch's transfer start times
	if e.copyBusyUntil > e.cycle {
		e.copyBusyUntil = e.cycle
	}
	if e.replay != nil {
		// Never memoize timing measured in an aborted batch.
		e.replay.discard()
	}
	e.mergeShards(m)
	e.releaseQueue()
	return err
}

// mergeShards folds the per-core and per-partition statistic shards (and
// the per-core functional coverage shards) into the engine-wide
// accumulators at a batch boundary.
func (e *Engine) mergeShards(m *exec.Machine) {
	for _, c := range e.cores {
		e.stats.merge(c.stats)
		c.stats.reset()
		if m != nil {
			m.Coverage().Merge(c.cov)
			c.cov.Reset()
		}
	}
	for _, p := range e.parts {
		p.mergeStats(e.stats)
	}
}
