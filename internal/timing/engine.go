package timing

import (
	"fmt"
	"runtime"

	"repro/internal/cache"
	"repro/internal/cudart"
	"repro/internal/dram"
	"repro/internal/exec"
)

// Engine is the cycle-level performance model. It persists across kernel
// launches so the AerialVision time series span a whole application run,
// exactly like the plots in the paper's §V.
//
// The engine is organised as a parallel event-driven pipeline. Each cycle
// runs in phases separated by barriers:
//
//	issue stage   — every SM core schedules and issues independently
//	                (parallel across cores; only core-owned state)
//	atomic drain  — deferred atomics execute sequentially in core order
//	memory stage  — partitions service queued L2/DRAM traffic in
//	                canonical order (parallel across partitions)
//	apply + CTA   — completion times fold back into the scoreboards
//	                (parallel across cores); the dispatcher refills cores
//
// All cross-core interactions live in the ordered phases, so the reported
// cycle counts and statistics are bit-identical for every worker count.
type Engine struct {
	cfg     Config
	cores   []*smCore
	parts   []*partition
	cycle   uint64
	stats   *Stats
	workers int
	pool    *pool // cached across launches; rebuilt when the count changes
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets how many host worker goroutines step SM cores
// concurrently. 1 (the default) runs fully inline; n <= 0 selects
// runtime.NumCPU(). Any value produces identical simulation results.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n <= 0 {
			n = runtime.NumCPU()
		}
		e.workers = n
	}
}

// New builds an engine for a machine configuration.
func New(cfg Config, opts ...Option) (*Engine, error) {
	e := &Engine{cfg: cfg, stats: newStats(cfg), workers: 1}
	for i := 0; i < cfg.NumSMs; i++ {
		l1, err := cache.New(cfg.L1)
		if err != nil {
			return nil, err
		}
		e.cores = append(e.cores, newCore(i, e, l1))
	}
	for i := 0; i < cfg.NumPartitions; i++ {
		l2, err := cache.New(cfg.L2)
		if err != nil {
			return nil, err
		}
		e.parts = append(e.parts, &partition{
			id: i, l2: l2,
			ch: dram.NewChannel(cfg.DRAM, uint64(cfg.SampleInterval)),
		})
	}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns accumulated statistics.
func (e *Engine) Stats() *Stats { return e.stats }

// Cycle returns the current cycle.
func (e *Engine) Cycle() uint64 { return e.cycle }

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return e.workers }

// SetWorkers changes the worker count for subsequent kernel launches.
func (e *Engine) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	e.workers = n
}

// Partitions exposes the DRAM channels (for the aerial plots).
func (e *Engine) Partitions() []*dram.Channel {
	out := make([]*dram.Channel, len(e.parts))
	for i, p := range e.parts {
		out[i] = p.ch
	}
	return out
}

// KernelStats is re-exported for convenience.
type KernelStats = cudart.KernelStats

// Runner adapts the engine to cudart.Runner — installing it on a context
// switches the context into the paper's Performance simulation mode.
type Runner struct {
	E *Engine
	// Workers overrides the engine's worker count for launches made
	// through this runner: 0 keeps the engine's setting, a negative
	// value selects runtime.NumCPU().
	Workers int
}

// RunKernel implements cudart.Runner.
func (r Runner) RunKernel(g *exec.Grid) (cudart.KernelStats, error) {
	return r.E.runGrid(g, 0, nil, r.Workers)
}

// RunGrid simulates one kernel launch to completion.
func (e *Engine) RunGrid(g *exec.Grid) (cudart.KernelStats, error) {
	return e.runGrid(g, 0, nil, 0)
}

// RunGridResume simulates a launch whose first skipCTAs blocks already
// completed before a checkpoint, with `preload` holding mid-flight CTAs
// restored from checkpoint Data1 (paper §III-F resume flow, Fig. 5).
func (e *Engine) RunGridResume(g *exec.Grid, skipCTAs int, preload []*exec.CTA) (cudart.KernelStats, error) {
	return e.runGrid(g, skipCTAs, preload, 0)
}

func (e *Engine) runGrid(g *exec.Grid, skipCTAs int, preload []*exec.CTA, workers int) (cudart.KernelStats, error) {
	m := g.Machine()
	start := e.cycle
	startInstr := e.stats.Instructions

	disp, err := newDispatcher(&e.cfg, g, skipCTAs, preload)
	if err != nil {
		return cudart.KernelStats{}, err
	}
	for _, c := range e.cores {
		for i := range c.scheds {
			c.scheds[i].rr = 0
		}
		c.stats.rebase(e.cycle)
	}
	disp.fill(e.cores)

	if workers == 0 {
		workers = e.workers
	} else if workers < 0 {
		workers = runtime.NumCPU()
	}
	p := e.getPool(workers)

	nCores := len(e.cores)
	nParts := len(e.parts)
	deadline := e.cycle + 2_000_000_000 // runaway guard
	for !disp.finished() {
		if e.cycle > deadline {
			e.abortKernel(m)
			return cudart.KernelStats{}, fmt.Errorf("timing: kernel %s exceeded cycle budget (deadlock?)", g.Kernel.Name)
		}
		now := e.cycle

		// Phase 1: parallel issue stage.
		p.run(nCores, func(i int) { e.cores[i].stageIssue(m, now) })

		anyIssued := false
		anyMem := false
		progressAt := uint64(^uint64(0))
		for _, c := range e.cores {
			if c.err != nil {
				e.abortKernel(m)
				return cudart.KernelStats{}, fmt.Errorf("timing: kernel %s: %w", g.Kernel.Name, c.err)
			}
			// Phase 2: sequential atomic drain, core id order.
			for _, w := range c.atomQ {
				if err := c.issue(m, w, now); err != nil {
					e.abortKernel(m)
					return cudart.KernelStats{}, fmt.Errorf("timing: kernel %s: %w", g.Kernel.Name, err)
				}
			}
			if c.issuedAny {
				anyIssued = true
			} else if c.nextAt < progressAt {
				progressAt = c.nextAt
			}
			if len(c.memQ) > 0 {
				anyMem = true
			}
			disp.done += c.retired
		}

		if anyMem {
			// Bucket this cycle's segments into per-partition queues in
			// canonical (core id, issue order) order. Runs after the
			// atomic drain so memQ backing arrays are final and the
			// queued pointers stay valid.
			for _, pt := range e.parts {
				pt.queue = pt.queue[:0]
			}
			for _, c := range e.cores {
				for i := range c.memQ {
					req := &c.memQ[i]
					for j := range req.segs {
						s := &req.segs[j]
						if !s.merged {
							e.parts[s.part].queue = append(e.parts[s.part].queue, s)
						}
					}
				}
			}
			// Phase 3: parallel partition drain (canonical order inside).
			p.run(nParts, func(i int) { e.parts[i].drain(&e.cfg) })
			// Phase 4: parallel scoreboard/L1 apply.
			p.run(nCores, func(i int) { e.cores[i].applyMem(now) })
		}

		disp.fill(e.cores)
		e.cycle++
		if !anyIssued && progressAt != ^uint64(0) && progressAt > e.cycle {
			// fast-forward over a fully stalled machine, charging the
			// skipped cycles to the stall statistics.
			skip := progressAt - e.cycle
			e.stats.addIdleBulk(e.cycle, skip, e.cfg)
			e.cycle = progressAt
		}
	}

	e.mergeShards(m)
	stats := cudart.KernelStats{
		Name:       g.Kernel.Name,
		GridDim:    g.GridDim,
		BlockDim:   g.BlockDim,
		Cycles:     e.cycle - start,
		WarpInstrs: e.stats.Instructions - startInstr,
	}
	e.stats.noteKernel(g.Kernel.Name, stats.Cycles, stats.WarpInstrs)
	return stats, nil
}

// getPool returns the engine's worker pool, rebuilding it only when the
// effective worker count changes (cuDNN workloads launch many kernels;
// spinning goroutines up per launch would be wasted churn). A pool for
// workers <= 1 holds no goroutines at all. Pools with goroutines are tied
// to the engine's lifetime by a GC cleanup, so abandoning an Engine
// without calling Close does not leak them permanently.
func (e *Engine) getPool(workers int) *pool {
	if e.pool == nil || e.pool.workers != workers || e.pool.closed.Load() {
		e.pool.close()
		e.pool = newPool(workers)
		if e.pool.jobs != nil {
			runtime.AddCleanup(e, func(p *pool) { p.close() }, e.pool)
		}
	}
	return e.pool
}

// Close releases the engine's worker goroutines. It is safe to call more
// than once and to keep reading Stats/Partitions afterwards; a subsequent
// kernel launch simply rebuilds the pool.
func (e *Engine) Close() { e.pool.close() }

// abortKernel restores the engine to a reusable state after a failed
// launch: the dead kernel's CTAs are dropped from every core and the stat
// shards are folded in so they cannot be misattributed to the next kernel.
func (e *Engine) abortKernel(m *exec.Machine) {
	for _, c := range e.cores {
		c.slots = c.slots[:0]
		for i := range c.scheds {
			sc := &c.scheds[i]
			for j := range sc.cands {
				sc.cands[j] = nil
			}
			sc.cands = sc.cands[:0]
			sc.rr = 0
		}
		c.memQ = c.memQ[:0]
		c.atomQ = c.atomQ[:0]
		c.err = nil
	}
	e.mergeShards(m)
}

// mergeShards folds the per-core and per-partition statistic shards (and
// the per-core functional coverage shards) into the engine-wide
// accumulators at a kernel boundary.
func (e *Engine) mergeShards(m *exec.Machine) {
	for _, c := range e.cores {
		e.stats.merge(c.stats)
		c.stats.reset()
		m.Coverage().Merge(c.cov)
		c.cov.Reset()
	}
	for _, p := range e.parts {
		p.mergeStats(e.stats)
	}
}
