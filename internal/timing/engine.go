package timing

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cudart"
	"repro/internal/dram"
	"repro/internal/exec"
	"repro/internal/ptx"
)

// Engine is the cycle-level performance model. It persists across kernel
// launches so the AerialVision time series span a whole application run,
// exactly like the plots in the paper's §V.
type Engine struct {
	cfg   Config
	cores []*smCore
	parts []*partition
	cycle uint64
	stats *Stats
}

// New builds an engine for a machine configuration.
func New(cfg Config) (*Engine, error) {
	e := &Engine{cfg: cfg, stats: newStats(cfg)}
	for i := 0; i < cfg.NumSMs; i++ {
		l1, err := cache.New(cfg.L1)
		if err != nil {
			return nil, err
		}
		e.cores = append(e.cores, &smCore{id: i, eng: e, l1: l1})
	}
	for i := 0; i < cfg.NumPartitions; i++ {
		l2, err := cache.New(cfg.L2)
		if err != nil {
			return nil, err
		}
		e.parts = append(e.parts, &partition{
			id: i, l2: l2,
			ch: dram.NewChannel(cfg.DRAM, uint64(cfg.SampleInterval)),
		})
	}
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns accumulated statistics.
func (e *Engine) Stats() *Stats { return e.stats }

// Cycle returns the current cycle.
func (e *Engine) Cycle() uint64 { return e.cycle }

// Partitions exposes the DRAM channels (for the aerial plots).
func (e *Engine) Partitions() []*dram.Channel {
	out := make([]*dram.Channel, len(e.parts))
	for i, p := range e.parts {
		out[i] = p.ch
	}
	return out
}

type partition struct {
	id int
	l2 *cache.Cache
	ch *dram.Channel
}

// warpCtx is the per-warp pipeline state.
type warpCtx struct {
	cta        *exec.CTA
	warp       *exec.Warp
	regReady   []uint64 // per register slot
	minIssueAt uint64   // structural stall (atomics, retry delays)
	lastIssue  uint64
}

type ctaSlot struct {
	cta   *exec.CTA
	warps []*warpCtx
	done  bool
}

type smCore struct {
	id    int
	eng   *Engine
	l1    *cache.Cache
	slots []*ctaSlot
	// round-robin pointer per scheduler
	rr []int
	// lastMissDone approximates MSHR-full retry latency.
	lastMissDone uint64
}

func (c *smCore) liveWarps() int {
	n := 0
	for _, s := range c.slots {
		for _, w := range s.warps {
			if !w.warp.Done {
				n++
			}
		}
	}
	return n
}

// KernelStats is re-exported for convenience.
type KernelStats = cudart.KernelStats

// Runner adapts the engine to cudart.Runner — installing it on a context
// switches the context into the paper's Performance simulation mode.
type Runner struct{ E *Engine }

// RunKernel implements cudart.Runner.
func (r Runner) RunKernel(g *exec.Grid) (cudart.KernelStats, error) {
	return r.E.RunGrid(g)
}

// RunGrid simulates one kernel launch to completion.
func (e *Engine) RunGrid(g *exec.Grid) (cudart.KernelStats, error) {
	return e.runGrid(g, 0, nil)
}

// RunGridResume simulates a launch whose first skipCTAs blocks already
// completed before a checkpoint, with `preload` holding mid-flight CTAs
// restored from checkpoint Data1 (paper §III-F resume flow, Fig. 5).
func (e *Engine) RunGridResume(g *exec.Grid, skipCTAs int, preload []*exec.CTA) (cudart.KernelStats, error) {
	return e.runGrid(g, skipCTAs, preload)
}

func (e *Engine) runGrid(g *exec.Grid, skipCTAs int, preload []*exec.CTA) (cudart.KernelStats, error) {
	m := g.Machine()
	start := e.cycle
	startInstr := e.stats.Instructions

	smemPerCTA := g.SharedBytes()
	warpsPerCTA := g.NumWarpsPerCTA()
	if warpsPerCTA > e.cfg.MaxWarpsPerSM {
		return cudart.KernelStats{}, fmt.Errorf("timing: CTA needs %d warps, SM holds %d", warpsPerCTA, e.cfg.MaxWarpsPerSM)
	}
	maxCTAs := e.cfg.MaxCTAsPerSM
	if smemPerCTA > 0 {
		bySmem := e.cfg.SharedMemPerSM / smemPerCTA
		if bySmem == 0 {
			return cudart.KernelStats{}, fmt.Errorf("timing: CTA needs %d B shared memory, SM has %d", smemPerCTA, e.cfg.SharedMemPerSM)
		}
		if bySmem < maxCTAs {
			maxCTAs = bySmem
		}
	}
	byWarps := e.cfg.MaxWarpsPerSM / warpsPerCTA
	if byWarps < maxCTAs {
		maxCTAs = byWarps
	}

	nextCTA := skipCTAs
	total := g.NumCTAs()
	for _, c := range e.cores {
		c.rr = make([]int, e.cfg.SchedulersPerSM)
	}
	pending := append([]*exec.CTA(nil), preload...)
	nextCTA += len(pending)
	issueCTAs := func() {
		for _, c := range e.cores {
			for len(c.slots) < maxCTAs && (len(pending) > 0 || nextCTA < total) {
				var cta *exec.CTA
				if len(pending) > 0 {
					cta = pending[0]
					pending = pending[1:]
				} else {
					cta = g.InitCTA(nextCTA)
					nextCTA++
				}
				slot := &ctaSlot{cta: cta}
				for _, w := range cta.Warps {
					slot.warps = append(slot.warps, &warpCtx{
						cta: cta, warp: w,
						regReady: make([]uint64, g.Kernel.NumSlots),
					})
				}
				c.slots = append(c.slots, slot)
			}
		}
	}
	issueCTAs()

	ctasDone := skipCTAs
	deadline := e.cycle + 2_000_000_000 // runaway guard
	for ctasDone < total {
		if e.cycle > deadline {
			return cudart.KernelStats{}, fmt.Errorf("timing: kernel %s exceeded cycle budget (deadlock?)", g.Kernel.Name)
		}
		progressAt := uint64(^uint64(0))
		anyIssued := false
		for _, c := range e.cores {
			issued, nextAt := c.step(m)
			if issued {
				anyIssued = true
			} else if nextAt < progressAt {
				progressAt = nextAt
			}
			// retire finished CTAs, release barriers
			for si := 0; si < len(c.slots); si++ {
				s := c.slots[si]
				s.cta.ReleaseBarrier()
				if !s.done && s.cta.Done() {
					s.done = true
					ctasDone++
					c.slots = append(c.slots[:si], c.slots[si+1:]...)
					si--
				}
			}
		}
		issueCTAs()
		e.cycle++
		if !anyIssued && progressAt != ^uint64(0) && progressAt > e.cycle {
			// fast-forward over a fully stalled machine, charging the
			// skipped cycles to the stall statistics.
			skip := progressAt - e.cycle
			e.stats.addIdleBulk(e.cycle, skip, e.cfg)
			e.cycle = progressAt
		}
	}

	stats := cudart.KernelStats{
		Name:       g.Kernel.Name,
		GridDim:    g.GridDim,
		BlockDim:   g.BlockDim,
		Cycles:     e.cycle - start,
		WarpInstrs: e.stats.Instructions - startInstr,
	}
	e.stats.noteKernel(g.Kernel.Name, stats.Cycles, stats.WarpInstrs)
	return stats, nil
}

// step advances one core by one cycle. It reports whether any scheduler
// issued, and otherwise the earliest cycle at which issue may become
// possible (^uint64(0) if the core has no live warps).
func (c *smCore) step(m *exec.Machine) (bool, uint64) {
	e := c.eng
	now := e.cycle
	anyIssued := false
	minNext := ^uint64(0)

	for sched := 0; sched < e.cfg.SchedulersPerSM; sched++ {
		// gather this scheduler's warps
		var cands []*warpCtx
		for _, s := range c.slots {
			for wi, w := range s.warps {
				if wi%e.cfg.SchedulersPerSM == sched && !w.warp.Done {
					cands = append(cands, w)
				}
			}
		}
		if len(cands) == 0 {
			e.stats.noteStall(c.id, now, stallIdle)
			continue
		}
		issued := false
		sawData, sawBarrier, sawMem := false, false, false
		start := c.rr[sched]
		for k := 0; k < len(cands); k++ {
			w := cands[(start+k)%len(cands)]
			if w.warp.AtBarrier {
				sawBarrier = true
				continue
			}
			if w.minIssueAt > now {
				sawMem = true
				if w.minIssueAt < minNext {
					minNext = w.minIssueAt
				}
				continue
			}
			in := m.PeekWarp(w.cta, w.warp)
			if in == nil {
				// will retire on next step; issue it to make progress
				if _, err := m.StepWarp(w.cta, w.warp); err != nil {
					panic(err)
				}
				issued = true
				c.rr[sched] = (start + k + 1) % len(cands)
				break
			}
			if rdy, at := w.srcReady(in, now); !rdy {
				sawData = true
				if at < minNext {
					minNext = at
				}
				continue
			}
			if err := c.issue(m, w, now); err != nil {
				panic(err)
			}
			issued = true
			c.rr[sched] = (start + k + 1) % len(cands)
			break
		}
		if issued {
			anyIssued = true
		} else {
			switch {
			case sawBarrier:
				e.stats.noteStall(c.id, now, stallBarrier)
			case sawData:
				e.stats.noteStall(c.id, now, stallData)
			case sawMem:
				e.stats.noteStall(c.id, now, stallMem)
			default:
				e.stats.noteStall(c.id, now, stallIdle)
			}
		}
	}
	return anyIssued, minNext
}

// srcReady consults the scoreboard for every source register of in.
func (w *warpCtx) srcReady(in *ptx.Instr, now uint64) (bool, uint64) {
	var latest uint64
	check := func(slot int) {
		if r := w.regReady[slot]; r > latest {
			latest = r
		}
	}
	if in.PredReg >= 0 {
		check(in.PredReg)
	}
	for i := range in.Src {
		o := &in.Src[i]
		switch o.Kind {
		case ptx.OperandReg:
			check(o.Reg)
		case ptx.OperandMem:
			if o.Base >= 0 {
				check(o.Base)
			}
		case ptx.OperandVec:
			for j := range o.Elems {
				if o.Elems[j].Kind == ptx.OperandReg {
					check(o.Elems[j].Reg)
				}
			}
		}
	}
	// store address operand lives in Src[0]; dst regs for loads checked
	// for WAR-free pipelines are skipped (in-order issue makes WAW safe
	// because writes complete in latency order per class).
	return latest <= now, latest
}

// markDst sets destination registers busy until `ready`.
func (w *warpCtx) markDst(in *ptx.Instr, ready uint64) {
	for i := range in.Dst {
		o := &in.Dst[i]
		switch o.Kind {
		case ptx.OperandReg:
			w.regReady[o.Reg] = ready
		case ptx.OperandVec:
			for j := range o.Elems {
				if o.Elems[j].Kind == ptx.OperandReg {
					w.regReady[o.Elems[j].Reg] = ready
				}
			}
		}
	}
}

func latencyClass(cfg *Config, in *ptx.Instr) (lat int, sfu bool) {
	switch in.Op {
	case ptx.OpSqrt, ptx.OpRsqrt, ptx.OpRcp, ptx.OpLg2, ptx.OpEx2, ptx.OpSin, ptx.OpCos:
		return cfg.SFULat, true
	case ptx.OpDiv, ptx.OpRem:
		if in.T.Float() {
			return cfg.SFULat, true
		}
		return cfg.IntDivLat, true
	case ptx.OpFma, ptx.OpMad:
		return cfg.ALULat, false
	default:
		return cfg.ALULat, false
	}
}

// issue executes one warp instruction functionally and models its timing.
func (c *smCore) issue(m *exec.Machine, w *warpCtx, now uint64) error {
	e := c.eng
	info, err := m.StepWarp(w.cta, w.warp)
	if err != nil {
		return err
	}
	w.lastIssue = now
	lanes := popcount(info.ActiveMask)
	e.stats.noteIssue(c.id, now, info, lanes)

	if info.Instr == nil || info.Barrier || info.WarpDone {
		return nil
	}
	in := info.Instr

	if !info.IsMem {
		lat, sfu := latencyClass(&e.cfg, in)
		_ = sfu
		w.markDst(in, now+uint64(lat))
		return nil
	}

	switch info.Space {
	case ptx.SpaceShared:
		conflict := sharedConflictDegree(&info)
		lat := uint64(e.cfg.SharedLat + (conflict-1)*2)
		if info.IsStore {
			w.minIssueAt = now + uint64(conflict) // port serialization
		} else {
			w.markDst(in, now+lat)
		}
		e.stats.SharedAccesses++
	case ptx.SpaceLocal, ptx.SpaceGlobal, ptx.SpaceConst, ptx.SpaceNone:
		done := c.memAccess(&info, now)
		if info.IsAtomic {
			w.minIssueAt = done
			if len(in.Dst) > 0 {
				w.markDst(in, done)
			}
		} else if info.IsStore {
			// stores don't block the warp
		} else {
			w.markDst(in, done)
		}
	case ptx.SpaceTex:
		// texture fetch: modelled as an L1/texture-cache hit latency
		w.markDst(in, now+uint64(e.cfg.L1HitLat))
		e.stats.TextureAccesses++
	case ptx.SpaceParam:
		w.markDst(in, now+uint64(e.cfg.ALULat))
	}
	return nil
}

// sharedConflictDegree computes the worst-case bank conflict among active
// lanes (32 banks of 4-byte words).
func sharedConflictDegree(info *exec.StepInfo) int {
	var counts [32]int
	var seen [32]uint64
	max := 1
	for l := 0; l < exec.WarpSize; l++ {
		if info.ActiveMask&(1<<l) == 0 {
			continue
		}
		bank := (info.Addrs[l] / 4) % 32
		word := info.Addrs[l] / 4
		// broadcast: same word does not conflict
		if counts[bank] > 0 && seen[bank] == word {
			continue
		}
		counts[bank]++
		seen[bank] = word
		if counts[bank] > max {
			max = counts[bank]
		}
	}
	return max
}

// memAccess coalesces a warp memory operation into 128-byte segments and
// walks each through L1 -> NoC -> L2 -> DRAM, returning the completion
// cycle of the last segment.
func (c *smCore) memAccess(info *exec.StepInfo, now uint64) uint64 {
	e := c.eng
	segSize := uint64(e.cfg.L1.LineBytes)
	var segs []uint64
	for l := 0; l < exec.WarpSize; l++ {
		if info.ActiveMask&(1<<l) == 0 {
			continue
		}
		base := info.Addrs[l] &^ (segSize - 1)
		found := false
		for _, s := range segs {
			if s == base {
				found = true
				break
			}
		}
		if !found {
			segs = append(segs, base)
		}
		// vector accesses may straddle a segment boundary
		endSeg := (info.Addrs[l] + uint64(info.AccSize) - 1) &^ (segSize - 1)
		if endSeg != base {
			found = false
			for _, s := range segs {
				if s == endSeg {
					found = true
					break
				}
			}
			if !found {
				segs = append(segs, endSeg)
			}
		}
	}
	e.stats.MemInstructions++
	e.stats.MemSegments += uint64(len(segs))

	latest := now
	for _, seg := range segs {
		done := c.segmentAccess(seg, info.IsStore, info.IsAtomic, now)
		if done > latest {
			latest = done
		}
	}
	return latest
}

func (c *smCore) segmentAccess(seg uint64, write, atomic bool, now uint64) uint64 {
	e := c.eng
	e.stats.L1Accesses++
	res, _ := c.l1.Access(seg, write)
	if res == cache.Hit && !atomic {
		return now + uint64(e.cfg.L1HitLat)
	}
	if res == cache.MissMerged {
		// ride the in-flight fill
		if c.lastMissDone > now {
			return c.lastMissDone
		}
		return now + uint64(e.cfg.L1HitLat)
	}
	retry := uint64(0)
	if res == cache.ReservationFail {
		// model the structural stall as waiting for the oldest miss
		e.stats.MSHRFull++
		if c.lastMissDone > now {
			retry = c.lastMissDone - now
		}
	}
	// traverse NoC to the owning partition
	p := e.parts[int(seg/uint64(e.cfg.L2.LineBytes))%len(e.parts)]
	arrive := now + retry + uint64(e.cfg.NoCLat)
	e.stats.NoCFlits += 1
	e.stats.L2Accesses++
	res2, _ := p.l2.Access(seg, write)
	var done uint64
	switch res2 {
	case cache.Hit:
		done = arrive + uint64(e.cfg.L2Lat)
	case cache.MissMerged:
		done = arrive + uint64(e.cfg.L2Lat) + uint64(e.cfg.DRAM.TCL)
	default: // Miss or ReservationFail: go to DRAM
		e.stats.DRAMAccesses++
		done = p.ch.Service(arrive+uint64(e.cfg.L2Lat), seg, write)
		if res2 == cache.Miss {
			p.l2.Fill(seg, write)
		}
	}
	// response path
	done += uint64(e.cfg.NoCLat)
	e.stats.NoCFlits++
	if !write && (res == cache.Miss || res == cache.ReservationFail) {
		c.l1.Fill(seg, false)
	}
	if done > c.lastMissDone {
		c.lastMissDone = done
	}
	if atomic {
		done += uint64(e.cfg.L2Lat) // read-modify-write turnaround at L2
	}
	return done
}

func popcount(m uint32) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}
