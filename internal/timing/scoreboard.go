package timing

import (
	"repro/internal/exec"
	"repro/internal/ptx"
)

// warpCtx is the per-warp pipeline state: the warp's functional state plus
// the scoreboard tracking when each register slot becomes readable and when
// the warp may issue again after a structural stall. A warpCtx is owned by
// exactly one SM core (and within it, one scheduler), so it is never
// touched by two workers concurrently.
type warpCtx struct {
	cta        *exec.CTA
	warp       *exec.Warp
	runID      int      // dense per-drain id of the owning grid (stat attribution)
	regReady   []uint64 // scoreboard: per register slot, cycle it becomes readable
	minIssueAt uint64   // structural stall (atomics, retry delays)
}

// srcReady consults the scoreboard for every source register of in. It
// returns whether all sources are readable at cycle now, and if not the
// cycle at which the latest one becomes ready.
func (w *warpCtx) srcReady(in *ptx.Instr, now uint64) (bool, uint64) {
	var latest uint64
	check := func(slot int) {
		if r := w.regReady[slot]; r > latest {
			latest = r
		}
	}
	if in.PredReg >= 0 {
		check(in.PredReg)
	}
	for i := range in.Src {
		o := &in.Src[i]
		switch o.Kind {
		case ptx.OperandReg:
			check(o.Reg)
		case ptx.OperandMem:
			if o.Base >= 0 {
				check(o.Base)
			}
		case ptx.OperandVec:
			for j := range o.Elems {
				if o.Elems[j].Kind == ptx.OperandReg {
					check(o.Elems[j].Reg)
				}
			}
		}
	}
	// store address operand lives in Src[0]; dst regs for loads checked
	// for WAR-free pipelines are skipped (in-order issue makes WAW safe
	// because writes complete in latency order per class).
	return latest <= now, latest
}

// markDst sets destination registers busy until `ready`.
func (w *warpCtx) markDst(in *ptx.Instr, ready uint64) {
	for i := range in.Dst {
		o := &in.Dst[i]
		switch o.Kind {
		case ptx.OperandReg:
			w.regReady[o.Reg] = ready
		case ptx.OperandVec:
			for j := range o.Elems {
				if o.Elems[j].Kind == ptx.OperandReg {
					w.regReady[o.Elems[j].Reg] = ready
				}
			}
		}
	}
}

func latencyClass(cfg *Config, in *ptx.Instr) (lat int, sfu bool) {
	switch in.Op {
	case ptx.OpSqrt, ptx.OpRsqrt, ptx.OpRcp, ptx.OpLg2, ptx.OpEx2, ptx.OpSin, ptx.OpCos:
		return cfg.SFULat, true
	case ptx.OpDiv, ptx.OpRem:
		if in.T.Float() {
			return cfg.SFULat, true
		}
		return cfg.IntDivLat, true
	case ptx.OpFma, ptx.OpMad:
		return cfg.ALULat, false
	default:
		return cfg.ALULat, false
	}
}

func popcount(m uint32) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}
