// Package timing implements the cycle-level GPU performance model — the
// paper's "Performance simulation mode": SIMT cores with per-scheduler
// warp issue and register scoreboards, a memory coalescer, per-core L1
// caches, a crossbar to memory partitions each holding an L2 slice and a
// DRAM channel, and the per-interval statistics AerialVision plots
// (global/per-shader IPC, warp-issue breakdowns, per-bank DRAM
// efficiency/utilization).
package timing

import (
	"repro/internal/cache"
	"repro/internal/dram"
)

// Config describes the modelled GPU.
type Config struct {
	Name            string
	NumSMs          int
	SchedulersPerSM int
	MaxCTAsPerSM    int
	MaxWarpsPerSM   int
	SharedMemPerSM  int

	// latencies in core cycles
	ALULat    int
	SFULat    int
	IntDivLat int
	SharedLat int
	L1HitLat  int
	L2Lat     int
	NoCLat    int

	L1            cache.Config
	L2            cache.Config // per partition slice
	NumPartitions int
	DRAM          dram.Config

	// Memory-hierarchy contention knobs. Each is an absolute-time
	// resource occupancy in core cycles per segment; 0 disables that
	// resource (infinite bandwidth, the pre-contention model).
	L2IngressCycles int // partition ingress slot held per arriving segment
	L2PortCycles    int // L2 tag/data port held per access
	L2RespCycles    int // NoC response port held per returning segment

	// SampleInterval is the AerialVision bucket width in cycles.
	SampleInterval int
	ClockMHz       float64

	// CopyBytesPerCycle is the modelled copy-engine bandwidth for
	// MemcpyHtoDAsync/DtoHAsync routed through the detailed model.
	// 0 selects ~12 GB/s (PCIe 3.0 x16) at the core clock.
	CopyBytesPerCycle float64

	// ReplayEnabled turns on hybrid replay mode (see replay.go): every
	// launch's detailed timing outcome is memoized under a replay
	// signature, and a launch whose signature was recorded in an earlier
	// Drain batch retires after the memoized cycle count without CTA
	// dispatch. Functional memory effects still execute, so results stay
	// byte-identical; only the timing of repeated launches is sampled.
	ReplayEnabled bool
	// ReplayResampleEvery re-runs every Nth cache hit of an entry in
	// detail, measuring drift against the memoized cycles and refreshing
	// the entry. 0 never re-samples.
	ReplayResampleEvery int
}

// GTX1050 approximates the GeForce GTX 1050 (GP107) used for the paper's
// correlation study (§IV): 5 SMs, 128-bit GDDR5 (4 x 32-bit channels).
func GTX1050() Config {
	return Config{
		Name: "GTX1050", NumSMs: 5, SchedulersPerSM: 4,
		MaxCTAsPerSM: 8, MaxWarpsPerSM: 32, SharedMemPerSM: 64 << 10,
		ALULat: 6, SFULat: 16, IntDivLat: 20, SharedLat: 24,
		L1HitLat: 28, L2Lat: 120, NoCLat: 8,
		L1:              cache.Config{SizeBytes: 48 << 10, LineBytes: 128, Assoc: 6, MSHRs: 32},
		L2:              cache.Config{SizeBytes: 256 << 10, LineBytes: 128, Assoc: 8, MSHRs: 64, WriteBack: true},
		NumPartitions:   4,
		DRAM:            dram.DefaultConfig(),
		L2IngressCycles: 1,
		L2PortCycles:    1,
		L2RespCycles:    2,
		SampleInterval:  500,
		ClockMHz:        1392,
	}
}

// GTX1080Ti approximates the GeForce GTX 1080 Ti (GP102) the paper models
// for the conv_sample case studies (§V-A): 28 SMs, 352-bit bus (11
// partitions).
func GTX1080Ti() Config {
	return Config{
		Name: "GTX1080Ti", NumSMs: 28, SchedulersPerSM: 4,
		MaxCTAsPerSM: 16, MaxWarpsPerSM: 64, SharedMemPerSM: 96 << 10,
		ALULat: 6, SFULat: 16, IntDivLat: 20, SharedLat: 24,
		L1HitLat: 28, L2Lat: 120, NoCLat: 10,
		L1:              cache.Config{SizeBytes: 48 << 10, LineBytes: 128, Assoc: 6, MSHRs: 32},
		L2:              cache.Config{SizeBytes: 256 << 10, LineBytes: 128, Assoc: 8, MSHRs: 64, WriteBack: true},
		NumPartitions:   11,
		DRAM:            dram.DefaultConfig(),
		L2IngressCycles: 1,
		L2PortCycles:    1,
		L2RespCycles:    2,
		SampleInterval:  500,
		ClockMHz:        1481,
	}
}

// sectorBytes is the memory-system sector size: the granularity the
// coalescer splits warp accesses into and the largest unit that is
// guaranteed to live inside one L2 line (and therefore one partition).
// The explicit rule is min(L1 line, L2 line): sectors then never straddle
// an L2 line, so Engine.partOf's L2-line interleaving routes every sector
// to exactly one partition regardless of how the two line sizes relate.
// With the shipped configs (both 128B) this equals the old L1-line split.
func (c *Config) sectorBytes() uint64 {
	s := c.L1.LineBytes
	if c.L2.LineBytes < s {
		s = c.L2.LineBytes
	}
	return uint64(s)
}
