package timing_test

import (
	"math/rand"
	"testing"

	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/exec"
	"repro/internal/ref"
	"repro/internal/timing"
)

func perfContext(t *testing.T, cfg timing.Config) (*cudart.Context, *cudnn.Handle, *timing.Engine) {
	t.Helper()
	ctx := cudart.NewContext(exec.BugSet{})
	h, err := cudnn.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := timing.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetRunner(timing.Runner{E: eng})
	return ctx, h, eng
}

func TestTimingFunctionalEquivalence(t *testing.T) {
	// The performance model must produce bit-identical results to the
	// functional mode (it drives the same functional machine).
	rng := rand.New(rand.NewSource(50))
	xs := ref.TensorShape4{N: 1, C: 2, H: 10, W: 10}
	k, r := 3, 3
	p := ref.ConvParams{Stride: 1, Pad: 1}
	x := make([]float32, xs.Count())
	for i := range x {
		x[i] = rng.Float32()
	}
	w := make([]float32, k*xs.C*r*r)
	for i := range w {
		w[i] = rng.Float32() - 0.5
	}
	want, ys := ref.Conv2DForward(x, xs, w, k, r, p)

	ctx, h, eng := perfContext(t, timing.GTX1050())
	px, _ := ctx.Malloc(uint64(4 * len(x)))
	ctx.MemcpyF32HtoD(px, x)
	pw, _ := ctx.Malloc(uint64(4 * len(w)))
	ctx.MemcpyF32HtoD(pw, w)
	py, _ := ctx.Malloc(uint64(4 * ys.Count()))
	_, err := h.ConvolutionForward(cudnn.FwdAlgoImplicitGemm, px,
		cudnn.TensorDesc{N: xs.N, C: xs.C, H: xs.H, W: xs.W}, pw,
		cudnn.FilterDesc{K: k, C: xs.C, R: r, S: r},
		cudnn.ConvDesc{Pad: p.Pad, Stride: p.Stride}, py)
	if err != nil {
		t.Fatalf("perf-mode conv: %v", err)
	}
	got := ctx.MemcpyF32DtoH(py, ys.Count())
	for i := range got {
		d := got[i] - want[i]
		if d < -1e-4 || d > 1e-4 {
			t.Fatalf("perf-mode result differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if eng.Cycle() == 0 {
		t.Fatal("no cycles elapsed in performance mode")
	}
	log := ctx.KernelStatsLog()
	if len(log) == 0 || log[0].Cycles == 0 {
		t.Fatalf("kernel stats missing cycles: %+v", log)
	}
	if log[0].WarpInstrs == 0 {
		t.Fatal("kernel stats missing instruction count")
	}
}

func TestTimingDeterminism(t *testing.T) {
	run := func() uint64 {
		ctx, h, eng := perfContext(t, timing.GTX1050())
		x := make([]float32, 4*16*16)
		for i := range x {
			x[i] = float32(i%13) * 0.25
		}
		px, _ := ctx.Malloc(uint64(4 * len(x)))
		ctx.MemcpyF32HtoD(px, x)
		py, _ := ctx.Malloc(uint64(4 * len(x)))
		if err := h.ActivationForward(px, py, len(x)); err != nil {
			t.Fatal(err)
		}
		return eng.Cycle()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("timing is not deterministic: %d vs %d cycles", a, b)
	}
}

func TestTimingSaneIPC(t *testing.T) {
	// A large embarrassingly-parallel kernel should reach an IPC well
	// above 1 on a 5-SM GPU and far below the theoretical peak.
	ctx, h, eng := perfContext(t, timing.GTX1050())
	n := 1 << 15
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(i)
	}
	px, _ := ctx.Malloc(uint64(4 * n))
	ctx.MemcpyF32HtoD(px, x)
	py, _ := ctx.Malloc(uint64(4 * n))
	if err := h.ActivationForward(px, py, n); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	ipc := st.TotalIPC(eng.Cycle())
	peak := float64(eng.Config().NumSMs * eng.Config().SchedulersPerSM)
	if ipc <= 0.3 || ipc > peak {
		t.Fatalf("IPC %v implausible (peak %v)", ipc, peak)
	}
	if st.L1Accesses == 0 || st.DRAMAccesses == 0 {
		t.Fatalf("memory system unused: L1=%d DRAM=%d", st.L1Accesses, st.DRAMAccesses)
	}
}

func TestTimingCacheLocality(t *testing.T) {
	// Re-running the same kernel over the same data must hit in cache and
	// finish faster the second time (L2 is persistent across launches).
	ctx, h, _ := perfContext(t, timing.GTX1050())
	n := 1 << 12
	px, _ := ctx.Malloc(uint64(4 * n))
	py, _ := ctx.Malloc(uint64(4 * n))
	if err := h.ActivationForward(px, py, n); err != nil {
		t.Fatal(err)
	}
	if err := h.ActivationForward(px, py, n); err != nil {
		t.Fatal(err)
	}
	log := ctx.KernelStatsLog()
	if len(log) != 2 {
		t.Fatalf("expected 2 launches, got %d", len(log))
	}
	if log[1].Cycles >= log[0].Cycles {
		t.Fatalf("warm run (%d cycles) not faster than cold run (%d cycles)",
			log[1].Cycles, log[0].Cycles)
	}
}

func TestTimingBarrierKernel(t *testing.T) {
	// SGEMM uses bar.sync heavily; it must complete and record barrier
	// stalls in the warp-issue breakdown.
	ctx, h, eng := perfContext(t, timing.GTX1050())
	m, n, k := 64, 64, 64
	a := make([]float32, m*k)
	bm := make([]float32, k*n)
	for i := range a {
		a[i] = float32(i%7) * 0.5
	}
	for i := range bm {
		bm[i] = float32(i%5) * 0.25
	}
	pa, _ := ctx.Malloc(uint64(4 * len(a)))
	ctx.MemcpyF32HtoD(pa, a)
	pb, _ := ctx.Malloc(uint64(4 * len(bm)))
	ctx.MemcpyF32HtoD(pb, bm)
	pc, _ := ctx.Malloc(uint64(4 * m * n))
	if err := h.Gemm(pa, pb, pc, m, n, k, 1, 0); err != nil {
		t.Fatal(err)
	}
	want := make([]float32, m*n)
	ref.Gemm(a, bm, want, m, n, k, 1, 0)
	got := ctx.MemcpyF32DtoH(pc, m*n)
	for i := range got {
		d := got[i] - want[i]
		if d < -1e-2 || d > 1e-2 {
			t.Fatalf("gemm perf-mode mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if eng.Stats().SharedAccesses == 0 {
		t.Fatal("no shared-memory accesses recorded for tiled GEMM")
	}
}

func TestWarpBreakdownSeries(t *testing.T) {
	ctx, h, eng := perfContext(t, timing.GTX1050())
	n := 1 << 13
	px, _ := ctx.Malloc(uint64(4 * n))
	py, _ := ctx.Malloc(uint64(4 * n))
	if err := h.ActivationForward(px, py, n); err != nil {
		t.Fatal(err)
	}
	names, series := eng.Stats().WarpIssueBreakdown()
	if len(names) != 4+32 {
		t.Fatalf("expected 36 warp categories, got %d", len(names))
	}
	var any float64
	for _, row := range series {
		for _, v := range row {
			any += v
			if v < 0 || v > 1.0001 {
				t.Fatalf("breakdown fraction %v out of range", v)
			}
		}
	}
	if any == 0 {
		t.Fatal("empty warp breakdown")
	}
	// full-warp issues (W32) must appear for a 256-thread elementwise kernel
	w32 := series[len(series)-1]
	var sum float64
	for _, v := range w32 {
		sum += v
	}
	if sum == 0 {
		t.Fatal("no full-warp issues recorded")
	}
}

func TestDRAMSeriesPopulated(t *testing.T) {
	ctx, h, eng := perfContext(t, timing.GTX1050())
	n := 1 << 14
	px, _ := ctx.Malloc(uint64(4 * n))
	py, _ := ctx.Malloc(uint64(4 * n))
	if err := h.ActivationForward(px, py, n); err != nil {
		t.Fatal(err)
	}
	chans := eng.Partitions()
	var reads uint64
	for _, ch := range chans {
		r, _, _, _ := ch.Totals()
		reads += r
		eff := ch.EfficiencySeries()
		if len(eff) != ch.NumBanks() {
			t.Fatalf("efficiency series has %d banks, want %d", len(eff), ch.NumBanks())
		}
	}
	if reads == 0 {
		t.Fatal("no DRAM reads recorded")
	}
}
