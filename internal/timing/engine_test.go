package timing_test

import (
	"math/rand"
	"testing"

	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/exec"
	"repro/internal/ref"
	"repro/internal/timing"
)

func perfContext(t *testing.T, cfg timing.Config) (*cudart.Context, *cudnn.Handle, *timing.Engine) {
	t.Helper()
	ctx := cudart.NewContext(exec.BugSet{})
	h, err := cudnn.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := timing.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetRunner(timing.Runner{E: eng})
	return ctx, h, eng
}

func TestTimingFunctionalEquivalence(t *testing.T) {
	// The performance model must produce bit-identical results to the
	// functional mode (it drives the same functional machine).
	rng := rand.New(rand.NewSource(50))
	xs := ref.TensorShape4{N: 1, C: 2, H: 10, W: 10}
	k, r := 3, 3
	p := ref.ConvParams{Stride: 1, Pad: 1}
	x := make([]float32, xs.Count())
	for i := range x {
		x[i] = rng.Float32()
	}
	w := make([]float32, k*xs.C*r*r)
	for i := range w {
		w[i] = rng.Float32() - 0.5
	}
	want, ys := ref.Conv2DForward(x, xs, w, k, r, p)

	ctx, h, eng := perfContext(t, timing.GTX1050())
	px, _ := ctx.Malloc(uint64(4 * len(x)))
	ctx.MemcpyF32HtoD(px, x)
	pw, _ := ctx.Malloc(uint64(4 * len(w)))
	ctx.MemcpyF32HtoD(pw, w)
	py, _ := ctx.Malloc(uint64(4 * ys.Count()))
	_, err := h.ConvolutionForward(cudnn.FwdAlgoImplicitGemm, px,
		cudnn.TensorDesc{N: xs.N, C: xs.C, H: xs.H, W: xs.W}, pw,
		cudnn.FilterDesc{K: k, C: xs.C, R: r, S: r},
		cudnn.ConvDesc{Pad: p.Pad, Stride: p.Stride}, py)
	if err != nil {
		t.Fatalf("perf-mode conv: %v", err)
	}
	got := ctx.MemcpyF32DtoH(py, ys.Count())
	for i := range got {
		d := got[i] - want[i]
		if d < -1e-4 || d > 1e-4 {
			t.Fatalf("perf-mode result differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if eng.Cycle() == 0 {
		t.Fatal("no cycles elapsed in performance mode")
	}
	log := ctx.KernelStatsLog()
	if len(log) == 0 || log[0].Cycles == 0 {
		t.Fatalf("kernel stats missing cycles: %+v", log)
	}
	if log[0].WarpInstrs == 0 {
		t.Fatal("kernel stats missing instruction count")
	}
}

func TestTimingDeterminism(t *testing.T) {
	run := func() uint64 {
		ctx, h, eng := perfContext(t, timing.GTX1050())
		x := make([]float32, 4*16*16)
		for i := range x {
			x[i] = float32(i%13) * 0.25
		}
		px, _ := ctx.Malloc(uint64(4 * len(x)))
		ctx.MemcpyF32HtoD(px, x)
		py, _ := ctx.Malloc(uint64(4 * len(x)))
		if err := h.ActivationForward(px, py, len(x)); err != nil {
			t.Fatal(err)
		}
		return eng.Cycle()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("timing is not deterministic: %d vs %d cycles", a, b)
	}
}

func TestTimingSaneIPC(t *testing.T) {
	// A large embarrassingly-parallel kernel should reach an IPC well
	// above 1 on a 5-SM GPU and far below the theoretical peak.
	ctx, h, eng := perfContext(t, timing.GTX1050())
	n := 1 << 15
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(i)
	}
	px, _ := ctx.Malloc(uint64(4 * n))
	ctx.MemcpyF32HtoD(px, x)
	py, _ := ctx.Malloc(uint64(4 * n))
	if err := h.ActivationForward(px, py, n); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	ipc := st.TotalIPC(eng.Cycle())
	peak := float64(eng.Config().NumSMs * eng.Config().SchedulersPerSM)
	if ipc <= 0.3 || ipc > peak {
		t.Fatalf("IPC %v implausible (peak %v)", ipc, peak)
	}
	if st.L1Accesses == 0 || st.DRAMAccesses == 0 {
		t.Fatalf("memory system unused: L1=%d DRAM=%d", st.L1Accesses, st.DRAMAccesses)
	}
}

func TestTimingCacheLocality(t *testing.T) {
	// Re-running the same kernel over the same data must hit in cache and
	// finish faster the second time (L2 is persistent across launches).
	ctx, h, _ := perfContext(t, timing.GTX1050())
	n := 1 << 12
	px, _ := ctx.Malloc(uint64(4 * n))
	py, _ := ctx.Malloc(uint64(4 * n))
	if err := h.ActivationForward(px, py, n); err != nil {
		t.Fatal(err)
	}
	if err := h.ActivationForward(px, py, n); err != nil {
		t.Fatal(err)
	}
	log := ctx.KernelStatsLog()
	if len(log) != 2 {
		t.Fatalf("expected 2 launches, got %d", len(log))
	}
	if log[1].Cycles >= log[0].Cycles {
		t.Fatalf("warm run (%d cycles) not faster than cold run (%d cycles)",
			log[1].Cycles, log[0].Cycles)
	}
}

func TestTimingBarrierKernel(t *testing.T) {
	// SGEMM uses bar.sync heavily; it must complete and record barrier
	// stalls in the warp-issue breakdown.
	ctx, h, eng := perfContext(t, timing.GTX1050())
	m, n, k := 64, 64, 64
	a := make([]float32, m*k)
	bm := make([]float32, k*n)
	for i := range a {
		a[i] = float32(i%7) * 0.5
	}
	for i := range bm {
		bm[i] = float32(i%5) * 0.25
	}
	pa, _ := ctx.Malloc(uint64(4 * len(a)))
	ctx.MemcpyF32HtoD(pa, a)
	pb, _ := ctx.Malloc(uint64(4 * len(bm)))
	ctx.MemcpyF32HtoD(pb, bm)
	pc, _ := ctx.Malloc(uint64(4 * m * n))
	if err := h.Gemm(pa, pb, pc, m, n, k, 1, 0); err != nil {
		t.Fatal(err)
	}
	want := make([]float32, m*n)
	ref.Gemm(a, bm, want, m, n, k, 1, 0)
	got := ctx.MemcpyF32DtoH(pc, m*n)
	for i := range got {
		d := got[i] - want[i]
		if d < -1e-2 || d > 1e-2 {
			t.Fatalf("gemm perf-mode mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if eng.Stats().SharedAccesses == 0 {
		t.Fatal("no shared-memory accesses recorded for tiled GEMM")
	}
}

func TestWarpBreakdownSeries(t *testing.T) {
	ctx, h, eng := perfContext(t, timing.GTX1050())
	n := 1 << 13
	px, _ := ctx.Malloc(uint64(4 * n))
	py, _ := ctx.Malloc(uint64(4 * n))
	if err := h.ActivationForward(px, py, n); err != nil {
		t.Fatal(err)
	}
	names, series := eng.Stats().WarpIssueBreakdown()
	if len(names) != 4+32 {
		t.Fatalf("expected 36 warp categories, got %d", len(names))
	}
	var any float64
	for _, row := range series {
		for _, v := range row {
			any += v
			if v < 0 || v > 1.0001 {
				t.Fatalf("breakdown fraction %v out of range", v)
			}
		}
	}
	if any == 0 {
		t.Fatal("empty warp breakdown")
	}
	// full-warp issues (W32) must appear for a 256-thread elementwise kernel
	w32 := series[len(series)-1]
	var sum float64
	for _, v := range w32 {
		sum += v
	}
	if sum == 0 {
		t.Fatal("no full-warp issues recorded")
	}
}

// edgeHarness bundles a context + directly-driven engine (no runner)
// with the stream test kernels registered, for queue-order edge cases.
type edgeHarness struct {
	t   *testing.T
	ctx *cudart.Context
	eng *timing.Engine
}

func newEdgeHarness(t *testing.T) *edgeHarness {
	t.Helper()
	ctx := cudart.NewContext(exec.BugSet{})
	eng, err := timing.New(timing.GTX1050())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	for _, src := range []string{streamPTX, oobPTX} {
		if _, err := ctx.RegisterModule(src); err != nil {
			t.Fatal(err)
		}
	}
	return &edgeHarness{t: t, ctx: ctx, eng: eng}
}

// alloc uploads a float32 buffer and returns its device pointer.
func (h *edgeHarness) alloc(data []float32) uint64 {
	h.t.Helper()
	p, _ := h.ctx.Malloc(uint64(4 * len(data)))
	h.ctx.MemcpyF32HtoD(p, data)
	return p
}

// submitSqadd queues y[i] += x[i]*x[i] over n elements on a stream.
func (h *edgeHarness) submitSqadd(stream int, px, py uint64, n int) *timing.Ticket {
	h.t.Helper()
	_, k, err := h.ctx.LookupKernel("sqadd")
	if err != nil {
		h.t.Fatal(err)
	}
	p := cudart.NewParams().Ptr(px).Ptr(py).U32(uint32(n))
	g, err := h.ctx.M.NewGrid(k, exec.Dim3{X: (n + 63) / 64}, exec.Dim3{X: 64}, p.Bytes(), 0)
	if err != nil {
		h.t.Fatal(err)
	}
	tk, err := h.eng.Submit(g, stream)
	if err != nil {
		h.t.Fatal(err)
	}
	return tk
}

// submitOOB queues the mid-execution-faulting kernel on a stream.
func (h *edgeHarness) submitOOB(stream int) *timing.Ticket {
	h.t.Helper()
	_, k, err := h.ctx.LookupKernel("oob")
	if err != nil {
		h.t.Fatal(err)
	}
	g, err := h.ctx.M.NewGrid(k, exec.Dim3{X: 2}, exec.Dim3{X: 64}, cudart.NewParams().Bytes(), 0)
	if err != nil {
		h.t.Fatal(err)
	}
	tk, err := h.eng.Submit(g, stream)
	if err != nil {
		h.t.Fatal(err)
	}
	return tk
}

// TestDrainQueueEdgeCases pins the submission-queue order semantics the
// active-set scheduler must preserve in the corners: a ticket aborted
// mid-drain takes the whole batch with it but leaves the engine
// reusable, a copy submitted after its consumer kernel on the same
// stream applies after it, a zero-size copy retires without wedging the
// drain, and Drain is idempotent.
func TestDrainQueueEdgeCases(t *testing.T) {
	const n = 256
	mkData := func(scale float32) []float32 {
		d := make([]float32, n)
		for i := range d {
			d[i] = float32(i%7) * scale
		}
		return d
	}

	cases := []struct {
		name string
		run  func(t *testing.T, h *edgeHarness)
	}{
		{"ticket_aborted_mid_drain", func(t *testing.T, h *edgeHarness) {
			good := h.submitSqadd(1, h.alloc(mkData(0.5)), h.alloc(mkData(0.25)), n)
			bad := h.submitOOB(2)
			trailing := h.eng.SubmitCopy(2, 64, func() { t.Error("copy behind the faulting kernel must not apply") })
			if err := h.eng.Drain(); err == nil {
				t.Fatal("expected the faulting batch to error")
			}
			for i, tk := range []*timing.Ticket{good, bad, trailing} {
				if !tk.Done() {
					t.Errorf("ticket %d not retired after the aborted drain", i)
				}
			}
			if _, err := bad.Stats(); err == nil {
				t.Error("faulting ticket reported no error")
			}
			if _, err := trailing.Stats(); err == nil {
				t.Error("ticket queued behind the fault reported no error")
			}
			// The engine must stay usable: a fresh batch drains clean.
			after := h.submitSqadd(1, h.alloc(mkData(0.5)), h.alloc(mkData(0.25)), n)
			if err := h.eng.Drain(); err != nil {
				t.Fatalf("engine unusable after aborted batch: %v", err)
			}
			if st, err := after.Stats(); err != nil || st.WarpInstrs == 0 {
				t.Errorf("post-abort launch has no stats: %+v, %v", st, err)
			}
		}},
		{"copy_after_consumer_kernel_same_stream", func(t *testing.T, h *edgeHarness) {
			x, y := mkData(1), make([]float32, n)
			px, py := h.alloc(x), h.alloc(y)
			over := mkData(-2)
			// The kernel consumes x; the overwrite of x is submitted
			// after it on the same stream, so the kernel must read the
			// original data and the final memory must show the copy.
			k := h.submitSqadd(3, px, py, n)
			c := h.eng.SubmitCopy(3, 4*n, func() { h.ctx.MemcpyF32HtoD(px, over) })
			if err := h.eng.Drain(); err != nil {
				t.Fatal(err)
			}
			if !k.Done() || !c.Done() {
				t.Fatal("tickets not retired")
			}
			if kst, _ := k.Stats(); kst.Cycles == 0 {
				t.Error("kernel skipped the detailed model")
			}
			if cst, _ := c.Stats(); cst.Cycles == 0 {
				t.Error("copy occupied the engine for zero cycles")
			}
			gotY := h.ctx.MemcpyF32DtoH(py, n)
			for i := range gotY {
				want := x[i] * x[i] // kernel saw pre-copy x
				if d := gotY[i] - want; d < -1e-5 || d > 1e-5 {
					t.Fatalf("kernel observed the later copy: y[%d]=%v, want %v", i, gotY[i], want)
				}
			}
			gotX := h.ctx.MemcpyF32DtoH(px, n)
			for i := range gotX {
				if gotX[i] != over[i] {
					t.Fatalf("copy did not land after the kernel: x[%d]=%v, want %v", i, gotX[i], over[i])
				}
			}
		}},
		{"zero_size_copy", func(t *testing.T, h *edgeHarness) {
			applied := false
			c := h.eng.SubmitCopy(1, 0, func() { applied = true })
			k := h.submitSqadd(1, h.alloc(mkData(1)), h.alloc(make([]float32, n)), n)
			if err := h.eng.Drain(); err != nil {
				t.Fatal(err)
			}
			if !applied {
				t.Error("zero-size copy's apply never ran")
			}
			st, err := c.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Cycles != 0 {
				t.Errorf("zero-size copy occupied %d cycles, want 0", st.Cycles)
			}
			if kst, _ := k.Stats(); kst.WarpInstrs == 0 {
				t.Error("kernel behind the zero-size copy never ran")
			}
		}},
		{"drain_called_twice", func(t *testing.T, h *edgeHarness) {
			h.submitSqadd(1, h.alloc(mkData(1)), h.alloc(make([]float32, n)), n)
			if err := h.eng.Drain(); err != nil {
				t.Fatal(err)
			}
			before := h.eng.Cycle()
			if err := h.eng.Drain(); err != nil {
				t.Fatalf("second Drain on an empty queue errored: %v", err)
			}
			if h.eng.Cycle() != before {
				t.Errorf("empty Drain advanced the clock: %d -> %d", before, h.eng.Cycle())
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.run(t, newEdgeHarness(t)) })
	}
}

func TestDRAMSeriesPopulated(t *testing.T) {
	ctx, h, eng := perfContext(t, timing.GTX1050())
	n := 1 << 14
	px, _ := ctx.Malloc(uint64(4 * n))
	py, _ := ctx.Malloc(uint64(4 * n))
	if err := h.ActivationForward(px, py, n); err != nil {
		t.Fatal(err)
	}
	chans := eng.Partitions()
	var reads uint64
	for _, ch := range chans {
		r, _, _, _ := ch.Totals()
		reads += r
		eff := ch.EfficiencySeries()
		if len(eff) != ch.NumBanks() {
			t.Fatalf("efficiency series has %d banks, want %d", len(eff), ch.NumBanks())
		}
	}
	if reads == 0 {
		t.Fatal("no DRAM reads recorded")
	}
}
