package timing_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cudart"
	"repro/internal/exec"
	"repro/internal/timing"
	"repro/internal/torch"
)

// The transformer encoder is the stream-concurrency stress workload: per
// layer it issues ~20 small heterogeneous kernels (GEMM NN/NT, softmax,
// layernorm, GELU, permutes, residual adds), and per-sequence forward
// passes ride separate CUDA streams through the multi-grid dispatcher.

// testTransformerConfig is deliberately small so the detailed model runs
// fast, but still multi-layer/multi-head so every kernel family appears.
var testTransformerConfig = torch.TransformerConfig{
	Layers: 2, Heads: 2, DModel: 16, FF: 32, Vocab: 29, MaxSeq: 8,
}

// transformerBatch builds `seqs` deterministic token sequences.
func transformerBatch(seqs, seqLen, vocab int) [][]int32 {
	batch := make([][]int32, seqs)
	for i := range batch {
		ids := make([]int32, seqLen)
		for j := range ids {
			ids[j] = int32((i*7 + j*3) % vocab)
		}
		batch[i] = ids
	}
	return batch
}

type transformerSnapshot struct {
	Cycles  uint64
	Log     []cudart.KernelStats
	Outputs [][]float32
	Stats   timing.Stats
}

// runTransformer executes a `seqs`-sequence encoder forward batch on the
// detailed engine — one stream per sequence when concurrent — and
// snapshots cycles, the per-kernel stats log and the outputs.
func runTransformer(t testing.TB, workers, seqs int, concurrent bool) transformerSnapshot {
	t.Helper()
	dev, err := torch.NewDevice(exec.BugSet{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := timing.New(timing.GTX1050(), timing.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	dev.Ctx.SetRunner(timing.Runner{E: eng})
	rng := rand.New(rand.NewSource(99))
	enc, err := torch.NewTransformerEncoder(dev, rng, testTransformerConfig)
	if err != nil {
		t.Fatal(err)
	}
	batch := transformerBatch(seqs, 6, testTransformerConfig.Vocab)
	start := eng.Cycle()
	outs, err := enc.ForwardBatch(batch, concurrent)
	if err != nil {
		t.Fatal(err)
	}
	return transformerSnapshot{
		Cycles:  eng.Cycle() - start,
		Log:     append([]cudart.KernelStats(nil), dev.Ctx.KernelStatsLog()...),
		Outputs: outs,
		Stats:   *eng.Stats(),
	}
}

// TestTransformerSimMatchesCPU runs the stream-overlapped encoder through
// the detailed timing model and checks every sequence's output against
// the ForwardCPU oracle — the workload-level differential contract.
func TestTransformerSimMatchesCPU(t *testing.T) {
	dev, err := torch.NewDevice(exec.BugSet{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := timing.New(timing.GTX1050())
	if err != nil {
		t.Fatal(err)
	}
	dev.Ctx.SetRunner(timing.Runner{E: eng})
	rng := rand.New(rand.NewSource(99))
	enc, err := torch.NewTransformerEncoder(dev, rng, testTransformerConfig)
	if err != nil {
		t.Fatal(err)
	}
	batch := transformerBatch(3, 6, testTransformerConfig.Vocab)
	outs, err := enc.ForwardBatch(batch, true)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Cycle() == 0 {
		t.Fatal("forward pass did not go through the timing engine")
	}
	for i, ids := range batch {
		want, _ := enc.ForwardCPU(ids)
		if len(outs[i]) != len(want) {
			t.Fatalf("seq %d: output size %d, oracle %d", i, len(outs[i]), len(want))
		}
		for j := range want {
			d := outs[i][j] - want[j]
			if d < -5e-3 || d > 5e-3 {
				t.Fatalf("seq %d: sim/CPU mismatch at %d: %v vs %v", i, j, outs[i][j], want[j])
			}
		}
	}
}

// TestTransformerStreamVsSerialDifferential: running the per-sequence
// forwards concurrently on streams must preserve the serialized run's
// final outputs and per-kernel instruction counts exactly.
func TestTransformerStreamVsSerialDifferential(t *testing.T) {
	conc := runTransformer(t, 1, 3, true)
	serial := runTransformer(t, 1, 3, false)

	if len(conc.Log) != len(serial.Log) {
		t.Fatalf("launch counts diverged: %d vs %d", len(conc.Log), len(serial.Log))
	}
	for i := range conc.Log {
		if conc.Log[i].Name != serial.Log[i].Name {
			t.Errorf("launch %d kernel diverged: %s vs %s", i, conc.Log[i].Name, serial.Log[i].Name)
		}
		if conc.Log[i].WarpInstrs != serial.Log[i].WarpInstrs {
			t.Errorf("kernel %d (%s) instruction count diverged: concurrent %d vs serial %d",
				i, conc.Log[i].Name, conc.Log[i].WarpInstrs, serial.Log[i].WarpInstrs)
		}
		if conc.Log[i].Cycles == 0 {
			t.Errorf("kernel %d (%s) has no cycles — did not go through the detailed model",
				i, conc.Log[i].Name)
		}
	}
	if !reflect.DeepEqual(conc.Outputs, serial.Outputs) {
		t.Error("encoder outputs diverged between concurrent and serialized runs")
	}
}

// TestTransformerStreamWorkerDeterminism extends the PR 1/PR 2 contract
// to the transformer workload: the stream-overlapped forward pass is
// byte-identical for any -j worker count.
func TestTransformerStreamWorkerDeterminism(t *testing.T) {
	base := runTransformer(t, 1, 3, true)
	for _, workers := range []int{2, 4} {
		got := runTransformer(t, workers, 3, true)
		if base.Cycles != got.Cycles {
			t.Errorf("-j1 vs -j%d total cycles diverged: %d vs %d", workers, base.Cycles, got.Cycles)
		}
		if !reflect.DeepEqual(base.Log, got.Log) {
			t.Errorf("-j1 vs -j%d per-kernel stats diverged", workers)
		}
		if !reflect.DeepEqual(base.Outputs, got.Outputs) {
			t.Errorf("-j1 vs -j%d outputs diverged", workers)
		}
	}
}

// TestTransformerStreamOverlap: the encoder's many small kernels cannot
// fill the GPU one at a time; per-sequence streams must finish the batch
// in fewer total cycles than the serialized run.
func TestTransformerStreamOverlap(t *testing.T) {
	conc := runTransformer(t, 1, 4, true)
	serial := runTransformer(t, 1, 4, false)
	if conc.Cycles == 0 || serial.Cycles == 0 {
		t.Fatal("workload did not exercise the timing engine")
	}
	if conc.Cycles >= serial.Cycles*19/20 {
		t.Fatalf("streams did not overlap: concurrent %d cycles vs serialized %d",
			conc.Cycles, serial.Cycles)
	}
	t.Logf("concurrent %d cycles vs serialized %d (%.0f%% saved)",
		conc.Cycles, serial.Cycles, 100*(1-float64(conc.Cycles)/float64(serial.Cycles)))
}

// BenchmarkTransformerForward sweeps the stream count of the encoder
// forward batch and reports cycles plus the overlap speedup.
func BenchmarkTransformerForward(b *testing.B) {
	for _, seqs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("streams=%d", seqs), func(b *testing.B) {
			var conc, serial uint64
			for i := 0; i < b.N; i++ {
				conc = runTransformer(b, 0, seqs, true).Cycles
				serial = runTransformer(b, 0, seqs, false).Cycles
			}
			b.ReportMetric(float64(conc), "cycles_concurrent")
			b.ReportMetric(float64(serial), "cycles_serial")
			b.ReportMetric(float64(serial)/float64(conc), "overlap_speedup")
		})
	}
}
