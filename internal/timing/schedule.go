package timing

import "sort"

// schedule is the drain loop's active-set bookkeeping. The old loop made
// three O(|queue|) passes over every submitted ticket each simulated
// cycle (copy completion, admission, copy-wake computation); with the
// transformer workload queueing hundreds of tickets per batch those scans
// dominated drain time. The schedule replaces them with state whose size
// tracks the *active* work only:
//
//   - cursor: the first-unfinished index into the submission queue. It
//     only ever advances, so the "is everything retired?" check is O(1)
//     amortised instead of a full-queue scan per cycle.
//   - ready: tickets whose same-stream predecessor has retired and that
//     are therefore eligible for admission. A ticket enters this list
//     exactly once — when it becomes a stream head — so per-cycle
//     admission work is O(newly ready), not O(|queue|).
//   - timed: admitted tickets that retire at a precomputed absolute
//     cycle — in-flight copies and replay-hit kernels (hybrid replay
//     mode, replay.go). Completion checks and the fast-forward wake
//     computation walk this list, which is bounded by the in-flight
//     operation count, not the batch size.
//
// Determinism contract: the old loop admitted eligible tickets by
// scanning the queue in submission order, so when several streams become
// unblocked in the same cycle their next operations are admitted in
// submission order. The ready list preserves that by tagging every
// ticket with its submission sequence number and sorting the (tiny)
// ready list by it before admission. Copy completions likewise run in
// admission order, which equals submission order among copies. Any new
// dispatch policy must keep admission, copy completion and retirement on
// the coordinator in submission order — that is what keeps `-j1` vs
// `-jN` byte-identical and the modelled cycle counts independent of this
// rewrite.
type schedule struct {
	queue  []*Ticket
	cursor int       // first submission-queue index not yet retired
	ready  []*Ticket // admission-eligible tickets (sorted by seq at admit time)
	timed  []*Ticket // admitted copies + replay-hit kernels, in submission order
}

// newSchedule links every ticket to its same-stream predecessor and
// successor, assigns submission sequence numbers, and seeds the ready
// list with the stream heads. O(|queue|) once per drain.
func newSchedule(queue []*Ticket) *schedule {
	s := &schedule{queue: queue}
	last := make(map[int]*Ticket)
	for i, t := range queue {
		t.seq = i
		t.next = nil
		t.prev = last[t.stream]
		if t.prev != nil {
			t.prev.next = t
		} else if !t.admitted && !t.done {
			s.ready = append(s.ready, t)
		}
		last[t.stream] = t
	}
	return s
}

// complete records that ticket t retired: its same-stream successor (if
// any) becomes admission-eligible, and the first-unfinished cursor
// advances past every retired prefix ticket. The caller has already set
// t.done. Amortised O(1): the cursor sweeps the queue once per drain.
func (s *schedule) complete(t *Ticket) {
	if t.next != nil {
		s.ready = append(s.ready, t.next)
	}
	for s.cursor < len(s.queue) && s.queue[s.cursor].done {
		s.cursor++
	}
}

// drained reports whether every submitted ticket has retired.
func (s *schedule) drained() bool { return s.cursor == len(s.queue) }

// takeReady returns this cycle's admission-eligible tickets in
// submission order and empties the list. Sorting restores submission
// order when multiple streams unblocked in the same cycle (e.g. a copy
// completion and a kernel retirement); the list length is bounded by the
// number of active streams, so the sort is cheap.
func (s *schedule) takeReady() []*Ticket {
	if len(s.ready) > 1 {
		sort.Slice(s.ready, func(i, j int) bool { return s.ready[i].seq < s.ready[j].seq })
	}
	return s.ready
}

// clearReady resets the ready list after admission, dropping the ticket
// references so retired batches are not pinned by the backing array.
func (s *schedule) clearReady() {
	for i := range s.ready {
		s.ready[i] = nil
	}
	s.ready = s.ready[:0]
}

// addTimed registers an admitted ticket whose retirement cycle is
// already known (a copy, or a replay-hit kernel), inserting it at its
// submission position. Admission order can deviate from submission
// order across cycles (an earlier-submitted operation can be unblocked
// later by its own stream), but completion must apply functional memory
// effects in submission order when several operations end on the same
// cycle — the reference loop scanned the whole queue in submission
// order, and TestCopyCompletionSubmissionOrder pins the difference.
// O(in-flight timed tickets) insertion.
func (s *schedule) addTimed(t *Ticket) {
	i := len(s.timed)
	for i > 0 && s.timed[i-1].seq > t.seq {
		i--
	}
	s.timed = append(s.timed, nil)
	copy(s.timed[i+1:], s.timed[i:])
	s.timed[i] = t
}

// completeTimed finishes every timed ticket whose modelled end has been
// reached by `cycle`: finish applies the ticket's functional effect and
// stats (the engine's copy apply or replay retirement), in submission
// order, and the ticket retires. Remaining tickets stay in submission
// order. A finish error aborts immediately; the caller tears the batch
// down, so the list's partial state is never reused. O(in-flight).
func (s *schedule) completeTimed(cycle uint64, finish func(*Ticket) error) error {
	if len(s.timed) == 0 {
		return nil
	}
	keep := s.timed[:0]
	for _, t := range s.timed {
		if cycle >= t.endCycle {
			if err := finish(t); err != nil {
				return err
			}
			s.complete(t)
		} else {
			keep = append(keep, t)
		}
	}
	for i := len(keep); i < len(s.timed); i++ {
		s.timed[i] = nil
	}
	s.timed = keep
	return nil
}

// earliestTimedEnd returns the next timed-completion cycle (copy or
// replay retirement), or ^uint64(0) when none is in flight. This bounds
// every idle-cycle fast-forward: a completing timed ticket can admit new
// kernels, so the clock may never jump past it. Replay completions being
// absolute-cycle events on this list is what keeps the PR 4/5
// fast-forward invariant intact under hybrid replay.
func (s *schedule) earliestTimedEnd() uint64 {
	wake := ^uint64(0)
	for _, t := range s.timed {
		if t.endCycle < wake {
			wake = t.endCycle
		}
	}
	return wake
}
