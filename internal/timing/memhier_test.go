package timing

import (
	"testing"
	"testing/quick"

	"repro/internal/cudart"
	"repro/internal/exec"
)

// runSqadd launches the eqPTX kernel once on a fresh context + engine
// with the given config and grid, and returns the engine for inspection.
func runSqadd(t *testing.T, cfg Config, ctas, threads int) *Engine {
	t.Helper()
	ctx := cudart.NewContext(exec.BugSet{})
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	if _, err := ctx.RegisterModule(eqPTX); err != nil {
		t.Fatal(err)
	}
	_, kern, err := ctx.LookupKernel("sqadd")
	if err != nil {
		t.Fatal(err)
	}
	n := ctas * threads
	px, _ := ctx.Malloc(uint64(4 * n))
	py, _ := ctx.Malloc(uint64(4 * n))
	ctx.MemcpyF32HtoD(px, make([]float32, n))
	ctx.MemcpyF32HtoD(py, make([]float32, n))
	p := cudart.NewParams().Ptr(px).Ptr(py).U32(uint32(n))
	g, err := ctx.M.NewGrid(kern, exec.Dim3{X: ctas}, exec.Dim3{X: threads}, p.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunGrid(g); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestSectorRule pins the explicit sector-size rule that unifies the old
// split (coalescing by L1 line, partition routing by L2 line): segments
// are min(L1 line, L2 line) bytes, so no segment ever straddles an L2
// line and partOf routes each one to exactly one partition.
func TestSectorRule(t *testing.T) {
	cases := []struct {
		name       string
		l1, l2     int
		wantSector uint64
	}{
		{"equal_128", 128, 128, 128},
		{"l2_smaller", 128, 64, 64},
		{"l1_smaller", 64, 128, 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := GTX1050()
			cfg.L1.LineBytes = tc.l1
			cfg.L2.LineBytes = tc.l2
			if got := cfg.sectorBytes(); got != tc.wantSector {
				t.Fatalf("sectorBytes() = %d, want %d", got, tc.wantSector)
			}
			eng, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			sector := cfg.sectorBytes()
			// property: a sector-aligned block always lives inside one L2
			// line, so its first and last byte route to the same partition
			f := func(raw uint32) bool {
				base := uint64(raw) &^ (sector - 1)
				lineOK := base/uint64(cfg.L2.LineBytes) == (base+sector-1)/uint64(cfg.L2.LineBytes)
				return lineOK && eng.partOf(base) == eng.partOf(base+sector-1)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSectorRuleSegmentCounts pins the end-to-end effect for configs
// where the two line sizes differ. One warp touches 128 contiguous bytes
// per buffer:
//   - equal lines (128/128): one sector per buffer access, the baseline.
//   - L2 line 64B < L1 line 128B: sectors shrink to 64B, so the
//     coalescer emits twice the segments; the second sector of each L1
//     line rides the first's in-flight fill (MSHR merge), so partition
//     traffic stays equal — but every segment now fits one L2 line,
//     where the old code shipped a 128B segment straddling two L2 lines
//     to a partition picked by its base address alone.
//   - L1 line 64B = sector 64B < L2 line 128B: no L1 merging, so the
//     partition sees exactly twice the baseline accesses.
func TestSectorRuleSegmentCounts(t *testing.T) {
	base := runSqadd(t, GTX1050(), 1, 32) // 32 lanes x 4B = 128B per buffer
	baseAcc := base.Stats().L2Accesses
	baseSegs := base.Stats().MemSegments

	smallL2 := GTX1050()
	smallL2.L2.LineBytes = 64
	merged := runSqadd(t, smallL2, 1, 32)
	if got := merged.Stats().MemSegments; got != 2*baseSegs {
		t.Errorf("64B sectors (small L2): coalesced segments = %d, want 2x baseline %d", got, baseSegs)
	}
	if got := merged.Stats().L2Accesses; got != baseAcc {
		t.Errorf("64B sectors (small L2): L2 accesses = %d, want baseline %d (same-L1-line sectors merge)", got, baseAcc)
	}

	smallL1 := GTX1050()
	smallL1.L1.LineBytes = 64
	split := runSqadd(t, smallL1, 1, 32)
	if got := split.Stats().MemSegments; got != 2*baseSegs {
		t.Errorf("64B sectors (small L1): coalesced segments = %d, want 2x baseline %d", got, baseSegs)
	}
	if got := split.Stats().L2Accesses; got != 2*baseAcc {
		t.Errorf("64B sectors (small L1): L2 accesses = %d, want 2x baseline %d", got, 2*baseAcc)
	}
}

// TestLoadDependentLatency is the headline acceptance property of the
// bandwidth-aware hierarchy: the same streaming kernel at higher
// occupancy must see measurably higher average segment latency — the
// partition ingress/port, L2 MSHRs, DRAM banks and response path are
// finite, so latency responds to load instead of being a constant adder.
func TestLoadDependentLatency(t *testing.T) {
	low := runSqadd(t, GTX1050(), 1, 64)
	high := runSqadd(t, GTX1050(), 40, 64)
	lowLat := low.Stats().AvgSegmentLatency()
	highLat := high.Stats().AvgSegmentLatency()
	if lowLat <= 0 || highLat <= 0 {
		t.Fatalf("segment latency not recorded: low %.1f high %.1f", lowLat, highLat)
	}
	if highLat <= lowLat*1.1 {
		t.Fatalf("latency not load-dependent: %.1f cycles at 1 CTA vs %.1f at 40 CTAs", lowLat, highLat)
	}
	if high.Stats().IngressStallCycles == 0 {
		t.Error("high occupancy produced no ingress stalls despite finite partition bandwidth")
	}
	t.Logf("avg segment latency: %.1f (1 CTA) -> %.1f (40 CTAs)", lowLat, highLat)
}

// fillPTX is a store-only kernel: y[i] = 7, no prior load, so every
// store misses the L1 (write-through no-allocate) and reaches the L2 as
// a write — the write-allocate path that dirties L2 lines.
const fillPTX = `
.version 6.0
.target sm_61
.address_size 64

.visible .entry fillk(
	.param .u64 pY,
	.param .u32 pN
)
{
	.reg .pred %p<2>;
	.reg .b32 %r<7>;
	.reg .b64 %rd<4>;

	ld.param.u64 %rd1, [pY];
	ld.param.u32 %r1, [pN];
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mov.u32 %r4, %tid.x;
	mad.lo.s32 %r5, %r2, %r3, %r4;
	setp.ge.u32 %p1, %r5, %r1;
	@%p1 bra DONE;
	cvta.to.global.u64 %rd1, %rd1;
	mul.wide.u32 %rd2, %r5, 4;
	add.s64 %rd3, %rd1, %rd2;
	mov.u32 %r6, 7;
	st.global.u32 [%rd3], %r6;
DONE:
	ret;
}
`

// TestDirtyEvictionWriteback pins the write-back L2: a store-only
// working set larger than the L2 dirties more lines than the cache
// holds, so evictions must turn into real DRAM write traffic (before
// this model dirty evictions silently vanished).
func TestDirtyEvictionWriteback(t *testing.T) {
	ctx := cudart.NewContext(exec.BugSet{})
	eng, err := New(GTX1050())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := ctx.RegisterModule(fillPTX); err != nil {
		t.Fatal(err)
	}
	_, kern, err := ctx.LookupKernel("fillk")
	if err != nil {
		t.Fatal(err)
	}
	// 128K stores x 4B = 512KB of dirty lines, 2x the 256KB L2
	n := 128 << 10
	py, _ := ctx.Malloc(uint64(4 * n))
	p := cudart.NewParams().Ptr(py).U32(uint32(n))
	g, err := ctx.M.NewGrid(kern, exec.Dim3{X: n / 64}, exec.Dim3{X: 64}, p.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunGrid(g); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.L2Writebacks == 0 {
		t.Fatal("L2-overflowing dirty working set produced no writebacks")
	}
	var dramWrites uint64
	for _, ch := range eng.Partitions() {
		_, w, _, _ := ch.Totals()
		dramWrites += w
	}
	if dramWrites == 0 {
		t.Fatal("no DRAM write traffic despite dirty evictions")
	}
	t.Logf("writebacks=%d dram_writes=%d", st.L2Writebacks, dramWrites)
}

// TestPerKernelMemCounters locks the per-grid attribution: the sum of
// the per-kernel memory counters over all retired kernels must equal the
// engine-wide totals, and the same numbers must land on the launch's
// KernelStats ticket.
func TestPerKernelMemCounters(t *testing.T) {
	ctx := cudart.NewContext(exec.BugSet{})
	eng, err := New(GTX1050())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := ctx.RegisterModule(eqPTX); err != nil {
		t.Fatal(err)
	}
	_, kern, err := ctx.LookupKernel("sqadd")
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for i := 0; i < 3; i++ {
		n := 64 * (i + 1)
		px, _ := ctx.Malloc(uint64(4 * n))
		py, _ := ctx.Malloc(uint64(4 * n))
		p := cudart.NewParams().Ptr(px).Ptr(py).U32(uint32(n))
		g, err := ctx.M.NewGrid(kern, exec.Dim3{X: (n + 63) / 64}, exec.Dim3{X: 64}, p.Bytes(), 0)
		if err != nil {
			t.Fatal(err)
		}
		tk, err := eng.Submit(g, i) // separate streams: concurrent grids
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if len(st.PerKernel) != 3 {
		t.Fatalf("PerKernel has %d samples, want 3", len(st.PerKernel))
	}
	var sum MemCounters
	for _, k := range st.PerKernel {
		sum.add(k.Mem)
	}
	if sum.L2Accesses != st.L2Accesses || sum.L2Hits != st.L2Hits ||
		sum.L2Misses != st.L2Misses || sum.DRAMAccesses != st.DRAMAccesses ||
		sum.DRAMRowHits != st.DRAMRowHits || sum.StallCycles != st.IngressStallCycles {
		t.Fatalf("per-kernel sums %+v do not match engine totals (L2 %d/%d/%d DRAM %d/%d stall %d)",
			sum, st.L2Accesses, st.L2Hits, st.L2Misses, st.DRAMAccesses, st.DRAMRowHits, st.IngressStallCycles)
	}
	if st.L2Accesses == 0 {
		t.Fatal("workload produced no L2 traffic — attribution untested")
	}
	for i, tk := range tickets {
		ks, err := tk.Stats()
		if err != nil {
			t.Fatal(err)
		}
		want := st.PerKernel[i].Mem
		if ks.L2Accesses != want.L2Accesses || ks.L2Hits != want.L2Hits ||
			ks.L2Misses != want.L2Misses || ks.DRAMAccesses != want.DRAMAccesses ||
			ks.DRAMRowHits != want.DRAMRowHits || ks.MemStallCycles != want.StallCycles {
			t.Errorf("ticket %d mem counters %+v diverge from PerKernel sample %+v", i, ks, want)
		}
	}
}

// TestMSHRPoolThrottles pins the L2 MSHR pool as a real within-batch
// resource: shrinking the pool to 2 slots per partition must slow a
// miss-heavy workload down versus the default 64 slots, because the
// batch's misses hold slots (provisionally from phase 1) and later
// misses wait at absolute time for the earliest to free.
func TestMSHRPoolThrottles(t *testing.T) {
	wide := runSqadd(t, GTX1050(), 40, 64)
	narrowCfg := GTX1050()
	narrowCfg.L2.MSHRs = 2
	narrow := runSqadd(t, narrowCfg, 40, 64)
	if narrow.Cycle() <= wide.Cycle() {
		t.Fatalf("2 L2 MSHRs (%d cycles) not slower than 64 (%d cycles) — the pool is not throttling",
			narrow.Cycle(), wide.Cycle())
	}
	if narrow.Stats().AvgSegmentLatency() <= wide.Stats().AvgSegmentLatency() {
		t.Fatalf("2 L2 MSHRs avg latency %.1f not above 64-slot %.1f",
			narrow.Stats().AvgSegmentLatency(), wide.Stats().AvgSegmentLatency())
	}
}

// TestSegmentMonotonicity is the timing-level twin of the dram package's
// property: under heavy load no partition-serviced segment may complete
// before the cycle its warp issued it — all resource horizons only push
// completion later, never earlier.
func TestSegmentMonotonicity(t *testing.T) {
	eng := runSqadd(t, GTX1050(), 40, 64)
	st := eng.Stats()
	if st.SegServed == 0 {
		t.Fatal("no partition-serviced segments")
	}
	minPossible := uint64(st.SegServed) * uint64(GTX1050().L2Lat)
	if st.SegCycles < minPossible {
		t.Fatalf("total segment latency %d below the %d floor implied by L2 latency alone — some segment completed before it could",
			st.SegCycles, minPossible)
	}
}
