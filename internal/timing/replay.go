package timing

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/exec"
	"repro/internal/ptx"
)

// Hybrid replay mode (Config.ReplayEnabled): the engine memoizes each
// kernel launch's detailed timing outcome under a replay signature and
// retires repeated launches after the memoized cycle count without
// dispatching a single CTA — the Accel-Sim-style answer to workloads
// that re-launch the same kernel configuration hundreds of times
// (transformer inference being the degenerate case).
//
// Replay memoizes *timing*, not semantics: a replayed launch still
// executes functionally (on the coordinator, at its modelled completion
// cycle), so final device memory is byte-identical to a detailed run —
// up to float-atomics rounding: a replayed launch interprets
// atom.global.add.f32 in functional order while the detailed model
// drains atomics in modelled order, so kernels that accumulate floats
// through atomics (the training backward pass) can differ by sub-ulp
// rounding per accumulation.
// The approximation is that a launch's duration is taken to be
// data-independent and load-independent; ReplayResampleEvery re-runs
// every Nth hit in detail to measure that drift (Stats.ReplayDriftCycles)
// and refresh the cached entry.

// replaySig identifies one kernel launch for replay purposes: the
// engine configuration fingerprint, the kernel's code hash, the
// grid/block dimensions, the dynamic shared-memory size and the raw
// parameter byte image (device pointers included — two launches reading
// different buffers never share an entry).
type replaySig [sha256.Size]byte

// replayEntry is one memoized detailed outcome.
type replayEntry struct {
	cycles uint64      // admission-to-retirement duration
	instrs uint64      // warp instructions committed
	mem    MemCounters // per-kernel memory counters, incl. segment latency stats
	hits   uint64      // lookups served since recorded; drives the re-sampling cadence

	// memo is the launch's captured functional effect (exec/memo.go),
	// recorded lazily at the first hit's execution: later hits whose
	// read-set still matches current memory apply the recorded writes
	// instead of re-interpreting the kernel. memoTried distinguishes
	// "never captured" from "capture found unmemoizable state" (nil memo
	// either way). Both are coordinator-written at hit time, so worker
	// count cannot influence them.
	memo      *exec.GridMemo
	memoTried bool
}

// replayCache is the coordinator-owned signature → entry map. It is only
// ever touched from Submit and the drain loop (both coordinator-side),
// so it needs no locking, and worker count cannot affect lookup order —
// the determinism contract survives replay.
//
// Entries recorded during a drain are staged and only committed when the
// batch retires successfully: a launch can replay only an entry recorded
// in an *earlier* Drain batch. That keeps the cold-cache invariant exact
// (the first drain of any workload is byte-identical to detailed mode,
// duplicates included) and never memoizes results from aborted batches.
type replayCache struct {
	cfgHash  replaySig
	codeHash map[*ptx.Kernel]replaySig
	entries  map[replaySig]*replayEntry
	staged   map[replaySig]replayEntry
}

func newReplayCache(cfg *Config) *replayCache {
	rc := &replayCache{
		codeHash: make(map[*ptx.Kernel]replaySig),
		entries:  make(map[replaySig]*replayEntry),
		staged:   make(map[replaySig]replayEntry),
	}
	// The fingerprint covers every timing-relevant knob (all of Config is
	// worker-invariant; worker count is deliberately absent). The replay
	// knobs themselves are masked out so toggling the re-sampling cadence
	// does not invalidate signatures.
	c := *cfg
	c.ReplayEnabled = false
	c.ReplayResampleEvery = 0
	h := sha256.New()
	fmt.Fprintf(h, "%+v", c)
	h.Sum(rc.cfgHash[:0])
	return rc
}

// kernelHash hashes a kernel's identity and code: entry name, parameter
// layout, register/shared/local footprint and every instruction's source
// text. Hashing content (not pointer identity) means the same PTX parsed
// into two modules still collides, as it must.
func (rc *replayCache) kernelHash(k *ptx.Kernel) replaySig {
	if h, ok := rc.codeHash[k]; ok {
		return h
	}
	hw := sha256.New()
	fmt.Fprintf(hw, "%s|%d|%d|%d\n", k.Name, k.NumSlots, k.SharedBytes, k.LocalBytes)
	for i := range k.Params {
		p := &k.Params[i]
		fmt.Fprintf(hw, "p %s %d %d %d %d\n", p.Name, p.Type, p.Align, p.Size, p.Offset)
	}
	for i := range k.Instrs {
		hw.Write([]byte(k.Instrs[i].String()))
		hw.Write([]byte{'\n'})
	}
	var h replaySig
	hw.Sum(h[:0])
	rc.codeHash[k] = h
	return h
}

// signature computes a launch's replay signature.
func (rc *replayCache) signature(g *exec.Grid) replaySig {
	h := sha256.New()
	h.Write(rc.cfgHash[:])
	kh := rc.kernelHash(g.Kernel)
	h.Write(kh[:])
	var dims [32]byte
	binary.LittleEndian.PutUint32(dims[0:], uint32(g.GridDim.X))
	binary.LittleEndian.PutUint32(dims[4:], uint32(g.GridDim.Y))
	binary.LittleEndian.PutUint32(dims[8:], uint32(g.GridDim.Z))
	binary.LittleEndian.PutUint32(dims[12:], uint32(g.BlockDim.X))
	binary.LittleEndian.PutUint32(dims[16:], uint32(g.BlockDim.Y))
	binary.LittleEndian.PutUint32(dims[20:], uint32(g.BlockDim.Z))
	binary.LittleEndian.PutUint64(dims[24:], uint64(g.SharedDyn))
	h.Write(dims[:])
	h.Write(g.Params)
	var sig replaySig
	h.Sum(sig[:0])
	return sig
}

// stage records a freshly measured detailed outcome; commit publishes it
// at a successful batch boundary (replacing any older entry and
// restarting its re-sampling cadence).
func (rc *replayCache) stage(sig replaySig, e replayEntry) { rc.staged[sig] = e }

func (rc *replayCache) commit() {
	for sig, e := range rc.staged {
		ent := e
		if old := rc.entries[sig]; old != nil && ent.memo == nil && !ent.memoTried {
			// a re-sample refresh re-measures timing only; the functional
			// memo (re-validated against memory at every hit anyway)
			// carries over, as does the don't-retry verdict for kernels
			// capture found unmemoizable
			ent.memo, ent.memoTried = old.memo, old.memoTried
		}
		rc.entries[sig] = &ent
	}
	clear(rc.staged)
}

// discard drops the staged entries of an aborted batch.
func (rc *replayCache) discard() { clear(rc.staged) }
