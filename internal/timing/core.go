package timing

import (
	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/ptx"
)

// schedState is one warp scheduler's persistent state: its candidate list
// and round-robin pointer. The candidate list is maintained incrementally
// as CTAs arrive and retire instead of being re-gathered (and reallocated)
// every cycle.
type schedState struct {
	cands []*warpCtx
	rr    int
}

type ctaSlot struct {
	cta   *exec.CTA
	run   *gridRun // resident grid this CTA belongs to
	warps []*warpCtx
	done  bool
}

// smCore is one streaming multiprocessor. All of its fields are owned by
// the core: during the parallel issue stage exactly one worker touches a
// given core, and the coordinator only reads the per-cycle outputs between
// phase barriers. Shared-system traffic (L2/DRAM partitions) is never
// touched here; it is queued in memQ and serviced by the memory stage in a
// canonical order, which is what makes the simulation deterministic for
// any worker count.
type smCore struct {
	id  int
	eng *Engine
	l1  *cache.Cache

	slots  []*ctaSlot
	scheds []schedState

	// occupancy bookkeeping for the multi-grid dispatcher: warp contexts
	// and shared-memory bytes held by resident CTAs of every grid.
	warpsUsed int
	smemUsed  int

	// lastMissDone approximates MSHR-full retry latency.
	lastMissDone uint64

	stats *Stats         // per-core shard, merged at drain boundaries
	cov   *exec.Coverage // per-core functional coverage shard

	// runInstrs shards warp-instruction counts by resident-grid id so
	// per-kernel stats stay attributable while several grids share the
	// core; sized by the engine at the start of every drain.
	runInstrs []uint64

	// per-cycle outputs, read by the coordinator between phase barriers
	issuedAny    bool
	nextAt       uint64
	retiredSlots []*ctaSlot
	err          error
	errRunID     int

	memQ  []memRequest // memory-stage requests issued this cycle, in issue order
	atomQ []*warpCtx   // atomics deferred to the coordinator's sequential drain

	segScratch []uint64 // coalescer scratch, reused across instructions
}

func newCore(id int, e *Engine, l1 *cache.Cache) *smCore {
	c := &smCore{
		id: id, eng: e, l1: l1,
		scheds: make([]schedState, e.cfg.SchedulersPerSM),
		stats:  newStats(e.cfg),
		cov:    exec.NewCoverage(),
	}
	return c
}

// addCTA installs a dispatched CTA, distributing its warps across the
// schedulers (warp i goes to scheduler i mod S, like GPGPU-Sim's "lrr"
// distribution).
func (c *smCore) addCTA(slot *ctaSlot) {
	c.slots = append(c.slots, slot)
	c.warpsUsed += len(slot.warps)
	if slot.run != nil {
		c.smemUsed += slot.run.smemPerCTA
	}
	for wi, w := range slot.warps {
		sc := &c.scheds[wi%len(c.scheds)]
		sc.cands = append(sc.cands, w)
	}
}

// removeCTA compacts the retired CTA's warps out of every scheduler's
// candidate list in place, preserving relative order (no reallocation).
func (c *smCore) removeCTA(slot *ctaSlot) {
	for si := range c.scheds {
		sc := &c.scheds[si]
		keep := sc.cands[:0]
		for _, w := range sc.cands {
			if w.cta != slot.cta {
				keep = append(keep, w)
			}
		}
		// clear the tail so retired warp contexts can be collected
		for i := len(keep); i < len(sc.cands); i++ {
			sc.cands[i] = nil
		}
		sc.cands = keep
		if len(keep) > 0 {
			sc.rr %= len(keep)
		} else {
			sc.rr = 0
		}
	}
}

// releaseBatchRefs drops the batch-lifetime references a core's reusable
// per-cycle buffers keep beyond their logical length: retiredSlots holds
// the last cycle's retired ctaSlots (whose warps pin their CTAs and
// grid), slots' backing array can keep a stale tail after the in-place
// retirement compaction, and memQ/atomQ entries point at warp contexts.
// Without this, a drained batch stays pinned in memory until the next
// drain happens to overwrite the same indices. Called at every batch
// boundary (releaseQueue and abortBatch).
func (c *smCore) releaseBatchRefs() {
	rs := c.retiredSlots[:cap(c.retiredSlots)]
	for i := range rs {
		rs[i] = nil
	}
	c.retiredSlots = c.retiredSlots[:0]
	sl := c.slots[len(c.slots):cap(c.slots)]
	for i := range sl {
		sl[i] = nil
	}
	mq := c.memQ[:cap(c.memQ)]
	for i := range mq {
		mq[i].w = nil
		mq[i].in = nil
	}
	c.memQ = c.memQ[:0]
	aq := c.atomQ[:cap(c.atomQ)]
	for i := range aq {
		aq[i] = nil
	}
	c.atomQ = c.atomQ[:0]
}

// stageIssue advances the core by one cycle: every scheduler picks at most
// one ready warp and issues it. This is the parallel stage; it touches only
// core-owned state (plus the functional machine, which is safe for
// concurrent per-core stepping). Memory-system traffic and atomics are
// queued for the ordered phases that follow.
func (c *smCore) stageIssue(m *exec.Machine, now uint64) {
	c.issuedAny = false
	c.nextAt = ^uint64(0)
	c.retiredSlots = c.retiredSlots[:0]
	c.err = nil
	c.errRunID = -1
	c.memQ = c.memQ[:0]
	c.atomQ = c.atomQ[:0]

	for sched := range c.scheds {
		c.stepScheduler(m, sched, now)
		if c.err != nil {
			return
		}
	}

	// retire finished CTAs, release barriers
	for si := 0; si < len(c.slots); si++ {
		s := c.slots[si]
		s.cta.ReleaseBarrier()
		if !s.done && s.cta.Done() {
			s.done = true
			c.retiredSlots = append(c.retiredSlots, s)
			c.warpsUsed -= len(s.warps)
			if s.run != nil {
				c.smemUsed -= s.run.smemPerCTA
			}
			c.slots = append(c.slots[:si], c.slots[si+1:]...)
			si--
			c.removeCTA(s)
		}
	}
}

func (c *smCore) stepScheduler(m *exec.Machine, sched int, now uint64) {
	st := &c.scheds[sched]
	cands := st.cands
	if len(cands) == 0 {
		c.stats.noteStall(c.id, now, stallIdle)
		return
	}
	issued := false
	live := 0
	sawData, sawBarrier, sawMem := false, false, false
	start := st.rr
	for k := 0; k < len(cands); k++ {
		w := cands[(start+k)%len(cands)]
		if w.warp.Done {
			continue
		}
		live++
		if w.warp.AtBarrier {
			sawBarrier = true
			continue
		}
		if w.minIssueAt > now {
			sawMem = true
			if w.minIssueAt < c.nextAt {
				c.nextAt = w.minIssueAt
			}
			continue
		}
		in := m.PeekWarp(w.cta, w.warp)
		if in == nil {
			// will retire on next step; issue it to make progress
			if _, err := m.StepWarpCov(w.cta, w.warp, c.cov); err != nil {
				c.err = err
				c.errRunID = w.runID
				return
			}
			issued = true
			st.rr = (start + k + 1) % len(cands)
			break
		}
		if rdy, at := w.srcReady(in, now); !rdy {
			sawData = true
			if at < c.nextAt {
				c.nextAt = at
			}
			continue
		}
		if in.Op == ptx.OpAtom {
			// Atomics read-modify-write memory that other cores may touch
			// in the same cycle. Defer both the functional execution and
			// the timing to the coordinator's sequential drain so the
			// interleaving is identical for every worker count.
			c.atomQ = append(c.atomQ, w)
			issued = true
			st.rr = (start + k + 1) % len(cands)
			break
		}
		if err := c.issue(m, w, now); err != nil {
			c.err = err
			c.errRunID = w.runID
			return
		}
		issued = true
		st.rr = (start + k + 1) % len(cands)
		break
	}
	if issued {
		c.issuedAny = true
		return
	}
	switch {
	case live == 0:
		c.stats.noteStall(c.id, now, stallIdle)
	case sawBarrier:
		c.stats.noteStall(c.id, now, stallBarrier)
	case sawData:
		c.stats.noteStall(c.id, now, stallData)
	case sawMem:
		c.stats.noteStall(c.id, now, stallMem)
	default:
		c.stats.noteStall(c.id, now, stallIdle)
	}
}

// issue executes one warp instruction functionally and models its timing.
// It runs inside the parallel issue stage for ordinary instructions and
// inside the coordinator's sequential drain for atomics.
func (c *smCore) issue(m *exec.Machine, w *warpCtx, now uint64) error {
	e := c.eng
	info, err := m.StepWarpCov(w.cta, w.warp, c.cov)
	if err != nil {
		return err
	}
	lanes := popcount(info.ActiveMask)
	c.stats.noteIssue(c.id, now, info, lanes)
	if w.runID >= 0 && w.runID < len(c.runInstrs) {
		c.runInstrs[w.runID]++
	}

	if info.Instr == nil || info.Barrier || info.WarpDone {
		return nil
	}
	in := info.Instr

	if !info.IsMem {
		lat, sfu := latencyClass(&e.cfg, in)
		_ = sfu
		w.markDst(in, now+uint64(lat))
		return nil
	}

	switch info.Space {
	case ptx.SpaceShared:
		conflict := sharedConflictDegree(&info)
		lat := uint64(e.cfg.SharedLat + (conflict-1)*2)
		if info.IsStore {
			w.minIssueAt = now + uint64(conflict) // port serialization
		} else {
			w.markDst(in, now+lat)
		}
		c.stats.SharedAccesses++
	case ptx.SpaceLocal, ptx.SpaceGlobal, ptx.SpaceConst, ptx.SpaceNone:
		c.memIssue(&info, w, now)
	case ptx.SpaceTex:
		// texture fetch: modelled as an L1/texture-cache hit latency
		w.markDst(in, now+uint64(e.cfg.L1HitLat))
		c.stats.TextureAccesses++
	case ptx.SpaceParam:
		w.markDst(in, now+uint64(e.cfg.ALULat))
	}
	return nil
}

// sharedConflictDegree computes the worst-case bank conflict among active
// lanes (32 banks of 4-byte words).
func sharedConflictDegree(info *exec.StepInfo) int {
	var counts [32]int
	var seen [32]uint64
	max := 1
	for l := 0; l < exec.WarpSize; l++ {
		if info.ActiveMask&(1<<l) == 0 {
			continue
		}
		bank := (info.Addrs[l] / 4) % 32
		word := info.Addrs[l] / 4
		// broadcast: same word does not conflict
		if counts[bank] > 0 && seen[bank] == word {
			continue
		}
		counts[bank]++
		seen[bank] = word
		if counts[bank] > max {
			max = counts[bank]
		}
	}
	return max
}
