package mnist_test

import (
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/mnist"
	"repro/internal/ptx"
)

// TestSelfCheckInference is the paper's functional validation: the LeNet
// forward pass on the simulated GPU (FFT + Winograd + GEMV2T + LRN
// kernels) must classify exactly like the CPU reference.
func TestSelfCheckInference(t *testing.T) {
	model, _, err := mnist.NewDefaultLeNet(exec.BugSet{})
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	ds := mnist.NewDataset(1)
	images, _ := ds.Batch(3) // the paper simulates 3 images
	ok, gpu, cpu, err := model.SelfCheck(images, 3)
	if err != nil {
		t.Fatalf("self check: %v", err)
	}
	if !ok {
		t.Fatalf("GPU and CPU classifications disagree: %v vs %v", gpu, cpu)
	}
}

// TestGPUProbsMatchCPU tightens the self-check to the probability level.
func TestGPUProbsMatchCPU(t *testing.T) {
	model, _, err := mnist.NewDefaultLeNet(exec.BugSet{})
	if err != nil {
		t.Fatal(err)
	}
	ds := mnist.NewDataset(2)
	images, _ := ds.Batch(2)
	gpuProbs, err := model.Forward(images, 2)
	if err != nil {
		t.Fatal(err)
	}
	cpuProbs := model.ForwardCPU(images, 2)
	var maxd float64
	for i := range gpuProbs {
		d := math.Abs(float64(gpuProbs[i] - cpuProbs[i]))
		if d > maxd {
			maxd = d
		}
	}
	if maxd > 2e-2 {
		t.Fatalf("GPU vs CPU probability diff %g", maxd)
	}
}

// TestTrainingReducesLoss runs a few SGD steps end to end on the
// simulator (forward FFT/Winograd convs, backward data/filter kernels,
// pooling/LRN/softmax gradients, sgd_update) and checks learning.
func TestTrainingReducesLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("training loop is slow under -short")
	}
	model, _, err := mnist.NewDefaultLeNet(exec.BugSet{})
	if err != nil {
		t.Fatal(err)
	}
	ds := mnist.NewDataset(3)
	images, labels := ds.Batch(2)
	first, err := model.TrainStep(images, labels, 0.05)
	if err != nil {
		t.Fatalf("train step: %v", err)
	}
	var last float32
	for i := 0; i < 6; i++ {
		last, err = model.TrainStep(images, labels, 0.05)
		if err != nil {
			t.Fatalf("train step %d: %v", i, err)
		}
	}
	if !(last < first) {
		t.Fatalf("loss did not decrease: first %v, last %v", first, last)
	}
}

// TestRemBugBreaksMNIST reproduces the paper's central debugging episode:
// with a faulty remainder implementation injected, the convolution
// pipeline (rem.u32-heavy index math in cgemm, im2col, crop and bias
// kernels) silently corrupts the forward pass and the self-check catches
// a probability mismatch.
//
// Note on fidelity: the exact original GPGPU-Sim bug (rem always computed
// as u64 % u64) is reproduced bit-for-bit by BugSet.RemU64 and validated
// at instruction level in internal/exec; it only changes results when a
// rem operand carries sign-extended (negative) upper bits, which our
// kernel corpus's index arithmetic never produces. The end-to-end
// demonstration therefore injects the generic faulty-rem mode (BreakOp),
// which perturbs every rem result the way any incorrect implementation
// would have.
func TestRemBugBreaksMNIST(t *testing.T) {
	good, _, err := mnist.NewDefaultLeNet(exec.BugSet{})
	if err != nil {
		t.Fatal(err)
	}
	bad, _, err := mnist.NewDefaultLeNet(exec.BugSet{BreakOp: ptx.OpRem})
	if err != nil {
		t.Fatal(err)
	}
	ds := mnist.NewDataset(4)
	images, _ := ds.Batch(1)
	goodProbs, err := good.Forward(images, 1)
	if err != nil {
		t.Fatal(err)
	}
	badProbs, err := bad.Forward(images, 1)
	if err != nil {
		// A hard failure is also an acceptable manifestation of the bug.
		t.Logf("buggy run failed outright: %v", err)
		return
	}
	same := true
	for i := range goodProbs {
		if math.Abs(float64(goodProbs[i]-badProbs[i])) > 1e-6 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("rem bug injection did not perturb MNIST outputs")
	}
}

func TestDatasetDeterminism(t *testing.T) {
	a := mnist.NewDataset(9)
	b := mnist.NewDataset(9)
	ia, la := a.Batch(4)
	ib, lb := b.Batch(4)
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatal("dataset images are not deterministic")
		}
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("dataset labels are not deterministic")
		}
	}
}
