// Package mnist provides the paper's evaluation workload: a LeNet-style
// CNN classifying MNIST-like digits. Because the environment is offline,
// the dataset is synthetic — deterministic class-conditioned digit
// patterns — which preserves what the paper measures (the cuDNN kernel
// mix: fft2d_r2c_32x32/16x16, CGEMM, Winograd, GEMV2T, LRN, pooling,
// softmax) while remaining self-contained. The network's convolution
// geometry is chosen so the FFT frames are exactly 32x32 for conv1
// (28 + 5 - 1) and 16x16 for conv2 (12 + 5 - 1), matching the kernel set
// the paper reports for MNIST in Fig. 7.
package mnist

import (
	"fmt"
	"math/rand"

	"repro/internal/cudnn"
	"repro/internal/exec"
	"repro/internal/ref"
	"repro/internal/torch"
)

// ImageSize is the MNIST edge length.
const ImageSize = 28

// NumClasses is the digit count.
const NumClasses = 10

// Dataset is a deterministic synthetic MNIST-like dataset.
type Dataset struct {
	protos [NumClasses][]float32
	rng    *rand.Rand
}

// NewDataset builds the synthetic dataset with a fixed seed.
func NewDataset(seed int64) *Dataset {
	d := &Dataset{rng: rand.New(rand.NewSource(seed))}
	protoRng := rand.New(rand.NewSource(977))
	for c := 0; c < NumClasses; c++ {
		img := make([]float32, ImageSize*ImageSize)
		// class-conditioned strokes: a few blobs at class-dependent spots
		for b := 0; b < 4; b++ {
			cy := 4 + (c*5+b*7)%20
			cx := 4 + (c*3+b*11)%20
			for dy := -3; dy <= 3; dy++ {
				for dx := -3; dx <= 3; dx++ {
					y, x := cy+dy, cx+dx
					if y < 0 || y >= ImageSize || x < 0 || x >= ImageSize {
						continue
					}
					dist := float32(dy*dy + dx*dx)
					img[y*ImageSize+x] += float32(0.9) / (1 + dist/2)
				}
			}
		}
		// light deterministic texture
		for i := range img {
			img[i] += protoRng.Float32() * 0.05
			if img[i] > 1 {
				img[i] = 1
			}
		}
		d.protos[c] = img
	}
	return d
}

// Sample returns one image and its label, with per-sample noise.
func (d *Dataset) Sample() ([]float32, int32) {
	c := int32(d.rng.Intn(NumClasses))
	img := make([]float32, ImageSize*ImageSize)
	copy(img, d.protos[c])
	for i := range img {
		img[i] += (d.rng.Float32() - 0.5) * 0.1
	}
	return img, c
}

// Batch returns n images and labels concatenated NCHW.
func (d *Dataset) Batch(n int) ([]float32, []int32) {
	imgs := make([]float32, 0, n*ImageSize*ImageSize)
	labels := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		img, l := d.Sample()
		imgs = append(imgs, img...)
		labels = append(labels, l)
	}
	return imgs, labels
}

// AlgoChoice selects the convolution algorithms per layer.
type AlgoChoice struct {
	Conv1Fwd cudnn.ConvFwdAlgo // 5x5 on 28x28 -> FFT 32x32 by default
	Conv2Fwd cudnn.ConvFwdAlgo // 5x5 on 12x12 -> FFT 16x16 by default
	Conv3Fwd cudnn.ConvFwdAlgo // 3x3 -> Winograd by default
}

// DefaultAlgos reproduces the paper's MNIST kernel mix.
func DefaultAlgos() AlgoChoice {
	return AlgoChoice{
		Conv1Fwd: cudnn.FwdAlgoFFT,
		Conv2Fwd: cudnn.FwdAlgoFFT,
		Conv3Fwd: cudnn.FwdAlgoWinograd,
	}
}

// LeNet is the model: conv(1→8,5x5) relu LRN pool, conv(8→16,5x5) relu
// pool, conv(16→32,3x3,pad1) relu, FC 512→84 relu, FC 84→10, softmax.
type LeNet struct {
	Dev  *torch.Device
	Net  *torch.Sequential
	Head *torch.SoftmaxNLL
}

// NewLeNet builds the model with deterministic initial weights.
func NewLeNet(dev *torch.Device, seed int64, algos AlgoChoice) (*LeNet, error) {
	rng := rand.New(rand.NewSource(seed))
	conv1, err := torch.NewConv2d(dev, rng, 1, 8, 5, 0, 1,
		algos.Conv1Fwd, cudnn.BwdDataAlgo0, cudnn.BwdFilterAlgo0)
	if err != nil {
		return nil, err
	}
	conv2, err := torch.NewConv2d(dev, rng, 8, 16, 5, 0, 1,
		algos.Conv2Fwd, cudnn.BwdDataAlgo0, cudnn.BwdFilterAlgo0)
	if err != nil {
		return nil, err
	}
	conv3, err := torch.NewConv2d(dev, rng, 16, 32, 3, 1, 1,
		algos.Conv3Fwd, cudnn.BwdDataWinograd, cudnn.BwdFilterWinogradNonfused)
	if err != nil {
		return nil, err
	}
	fc1, err := torch.NewLinear(dev, rng, 32*4*4, 84)
	if err != nil {
		return nil, err
	}
	fc2, err := torch.NewLinear(dev, rng, 84, NumClasses)
	if err != nil {
		return nil, err
	}
	net := &torch.Sequential{Mods: []torch.Module{
		conv1,
		&torch.ReLU{Dev: dev},
		&torch.LRN{Dev: dev, Desc: cudnn.LRNDesc{N: 5, K: 2, Alpha: 1e-2, Beta: 0.75}},
		&torch.MaxPool2d{Dev: dev, Window: 2, Stride: 2},
		conv2,
		&torch.ReLU{Dev: dev},
		&torch.MaxPool2d{Dev: dev, Window: 2, Stride: 2},
		conv3,
		&torch.ReLU{Dev: dev},
		&torch.Flatten{},
		fc1,
		&torch.ReLU{Dev: dev},
		fc2,
	}}
	return &LeNet{Dev: dev, Net: net, Head: &torch.SoftmaxNLL{Dev: dev}}, nil
}

// Forward runs inference on a batch, returning class probabilities.
func (m *LeNet) Forward(images []float32, n int) ([]float32, error) {
	x, err := m.Dev.FromHost(images, n, 1, ImageSize, ImageSize)
	if err != nil {
		return nil, err
	}
	logits, err := m.Net.Forward(x)
	if err != nil {
		return nil, err
	}
	probs, err := m.Dev.NewTensor(n, NumClasses)
	if err != nil {
		return nil, err
	}
	if err := m.Dev.H.SoftmaxForward(logits.Ptr, probs.Ptr, n, NumClasses); err != nil {
		return nil, err
	}
	return probs.ToHost(), nil
}

// ForwardCPU runs the identical network on the host (internal/ref) with
// the current device weights — the self-checking oracle of §IV.
func (m *LeNet) ForwardCPU(images []float32, n int) []float32 {
	x, shape := images, []int{n, 1, ImageSize, ImageSize}
	x, shape = m.Net.ForwardCPU(x, shape)
	return ref.Softmax(x, shape[0], shape[1])
}

// TrainStep runs one forward+backward+update step; returns the loss.
func (m *LeNet) TrainStep(images []float32, labels []int32, lr float32) (float32, error) {
	n := len(labels)
	x, err := m.Dev.FromHost(images, n, 1, ImageSize, ImageSize)
	if err != nil {
		return 0, err
	}
	logits, err := m.Net.Forward(x)
	if err != nil {
		return 0, err
	}
	_, loss, err := m.Head.Forward(logits, labels)
	if err != nil {
		return 0, err
	}
	dLogits, err := m.Head.Backward()
	if err != nil {
		return 0, err
	}
	if _, err := m.Net.Backward(dLogits); err != nil {
		return 0, err
	}
	opt := &torch.SGD{Dev: m.Dev, LR: lr, Params: m.Net.Params()}
	if err := opt.Step(); err != nil {
		return 0, err
	}
	return loss, nil
}

// SelfCheck classifies n images on the simulated GPU and on the CPU
// reference and reports whether every classification agrees — the analog
// of the MNIST sample's self-checking code that the paper relied on for
// functional validation.
func (m *LeNet) SelfCheck(images []float32, n int) (bool, []int, []int, error) {
	gpuProbs, err := m.Forward(images, n)
	if err != nil {
		return false, nil, nil, err
	}
	cpuProbs := m.ForwardCPU(images, n)
	gpuCls := ref.Argmax(gpuProbs, n, NumClasses)
	cpuCls := ref.Argmax(cpuProbs, n, NumClasses)
	ok := true
	for i := range gpuCls {
		if gpuCls[i] != cpuCls[i] {
			ok = false
		}
	}
	return ok, gpuCls, cpuCls, nil
}

// NewDefaultLeNet builds a LeNet on a fresh device with default algorithms.
func NewDefaultLeNet(bugs exec.BugSet) (*LeNet, *torch.Device, error) {
	dev, err := torch.NewDevice(bugs)
	if err != nil {
		return nil, nil, err
	}
	model, err := NewLeNet(dev, 7, DefaultAlgos())
	if err != nil {
		return nil, nil, err
	}
	return model, dev, nil
}

// Describe returns a human-readable summary of the network.
func Describe() string {
	return fmt.Sprint(
		"LeNet/MNIST: conv1 1->8 5x5 (FFT 32x32), ReLU, LRN(5), pool2 | ",
		"conv2 8->16 5x5 (FFT 16x16), ReLU, pool2 | ",
		"conv3 16->32 3x3 pad1 (Winograd), ReLU | ",
		"fc 512->84 (GEMV2T), ReLU | fc 84->10 (GEMV2T) | softmax",
	)
}
