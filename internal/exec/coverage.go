package exec

import (
	"sort"

	"repro/internal/ptx"
)

// CovKey identifies one instruction-implementation path: opcode plus type
// specifier. The paper's "differential coverage analysis" (§III-D) compares
// which implementation paths a failing workload exercises that the passing
// regression suite does not; opcode+type granularity is exactly the level
// at which GPGPU-Sim's rem and bfe bugs hid (wrong only for some types).
type CovKey struct {
	Op ptx.Op
	T  ptx.Type
}

// Coverage counts executed instructions per implementation path.
type Coverage struct {
	counts map[CovKey]uint64
}

// NewCoverage returns empty coverage.
func NewCoverage() *Coverage {
	return &Coverage{counts: make(map[CovKey]uint64)}
}

// Note records one executed warp instruction.
func (c *Coverage) Note(in *ptx.Instr, mask uint32) {
	c.counts[CovKey{Op: in.Op, T: in.T}]++
}

// Count returns the execution count of one path.
func (c *Coverage) Count(k CovKey) uint64 { return c.counts[k] }

// Total returns the total executed warp-instruction count.
func (c *Coverage) Total() uint64 {
	var t uint64
	for _, v := range c.counts {
		t += v
	}
	return t
}

// Keys returns all exercised paths, deterministically ordered.
func (c *Coverage) Keys() []CovKey {
	out := make([]CovKey, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].T < out[j].T
	})
	return out
}

// Diff returns the paths exercised by c but not by base: the differential
// coverage the paper used to localise suspicious instruction
// implementations before falling back to instruction-level comparison.
func (c *Coverage) Diff(base *Coverage) []CovKey {
	var out []CovKey
	for _, k := range c.Keys() {
		if base.counts[k] == 0 {
			out = append(out, k)
		}
	}
	return out
}

// Merge adds other's counts into c.
func (c *Coverage) Merge(other *Coverage) {
	for k, v := range other.counts {
		c.counts[k] += v
	}
}

// Reset clears all counters.
func (c *Coverage) Reset() {
	c.counts = make(map[CovKey]uint64)
}
