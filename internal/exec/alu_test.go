package exec

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"

	"repro/internal/ptx"
)

func evalBin(t *testing.T, m *Machine, op ptx.Op, typ ptx.Type, a, b uint64) uint64 {
	t.Helper()
	in := &ptx.Instr{Op: op, T: typ, Raw: "test"}
	r, err := m.evalALU(in, [4]uint64{a, b})
	if err != nil {
		t.Fatalf("evalALU(%v.%v): %v", op, typ, err)
	}
	return r
}

func sneg(v int64) uint64 { return uint64(v) }

func cleanMachine() *Machine {
	return NewMachine(Config{}, nil, nil)
}

// Property: integer arithmetic matches Go's native semantics for every
// width and signedness. This is the per-instruction validation step the
// GPGPU-Sim authors describe (comparing each instruction against a
// reference implementation).
func TestIntegerALUProperties(t *testing.T) {
	m := cleanMachine()
	cfg := &quick.Config{MaxCount: 2000}

	t.Run("add.s32", func(t *testing.T) {
		f := func(a, b int32) bool {
			return evalBin(t, m, ptx.OpAdd, ptx.S32, uint64(int64(a)), uint64(int64(b))) == uint64(int64(a+b))
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("sub.u64", func(t *testing.T) {
		f := func(a, b uint64) bool {
			return evalBin(t, m, ptx.OpSub, ptx.U64, a, b) == a-b
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("mul.lo.s32", func(t *testing.T) {
		f := func(a, b int32) bool {
			in := &ptx.Instr{Op: ptx.OpMul, T: ptx.S32, Lo: true, Raw: "test"}
			r, err := m.evalALU(in, [4]uint64{uint64(int64(a)), uint64(int64(b))})
			return err == nil && r == uint64(int64(a*b))
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("mul.wide.s32", func(t *testing.T) {
		f := func(a, b int32) bool {
			in := &ptx.Instr{Op: ptx.OpMul, T: ptx.S32, Wide: true, Raw: "test"}
			r, err := m.evalALU(in, [4]uint64{uint64(int64(a)), uint64(int64(b))})
			return err == nil && int64(r) == int64(a)*int64(b)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("mul.hi.u32", func(t *testing.T) {
		f := func(a, b uint32) bool {
			in := &ptx.Instr{Op: ptx.OpMul, T: ptx.U32, Hi: true, Raw: "test"}
			r, err := m.evalALU(in, [4]uint64{uint64(a), uint64(b)})
			return err == nil && uint32(r) == uint32(uint64(a)*uint64(b)>>32)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("div.s32", func(t *testing.T) {
		f := func(a, b int32) bool {
			if b == 0 || (a == math.MinInt32 && b == -1) {
				return true
			}
			return int32(evalBin(t, m, ptx.OpDiv, ptx.S32, uint64(int64(a)), uint64(int64(b)))) == a/b
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("rem.s32", func(t *testing.T) {
		f := func(a, b int32) bool {
			if b == 0 || (a == math.MinInt32 && b == -1) {
				return true
			}
			return int32(evalBin(t, m, ptx.OpRem, ptx.S32, uint64(int64(a)), uint64(int64(b)))) == a%b
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("rem.u32", func(t *testing.T) {
		f := func(a, b uint32) bool {
			if b == 0 {
				return true
			}
			return uint32(evalBin(t, m, ptx.OpRem, ptx.U32, uint64(a), uint64(b))) == a%b
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("rem.u64", func(t *testing.T) {
		f := func(a, b uint64) bool {
			if b == 0 {
				return true
			}
			return evalBin(t, m, ptx.OpRem, ptx.U64, a, b) == a%b
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("min.s32/max.s32", func(t *testing.T) {
		f := func(a, b int32) bool {
			lo := int32(evalBin(t, m, ptx.OpMin, ptx.S32, uint64(int64(a)), uint64(int64(b))))
			hi := int32(evalBin(t, m, ptx.OpMax, ptx.S32, uint64(int64(a)), uint64(int64(b))))
			wantLo, wantHi := a, b
			if b < a {
				wantLo, wantHi = b, a
			}
			return lo == wantLo && hi == wantHi
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("shl/shr", func(t *testing.T) {
		f := func(a int32, sh uint8) bool {
			s := uint64(sh % 40)
			l := evalBin(t, m, ptx.OpShl, ptx.B32, uint64(uint32(a)), s)
			ru := evalBin(t, m, ptx.OpShr, ptx.U32, uint64(uint32(a)), s)
			rs := int32(evalBin(t, m, ptx.OpShr, ptx.S32, uint64(int64(a)), s))
			var wantL, wantRU uint32
			var wantRS int32
			if s < 32 {
				wantL = uint32(a) << s
				wantRU = uint32(a) >> s
				wantRS = a >> s
			} else {
				wantL, wantRU = 0, 0
				wantRS = a >> 31
			}
			return uint32(l) == wantL && uint32(ru) == wantRU && rs == wantRS
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
}

// Property: the remainder bug injection reproduces exactly the original
// GPGPU-Sim behaviour (u64 % u64) for every type specifier.
func TestRemBugProperty(t *testing.T) {
	buggy := NewMachine(Config{Bugs: BugSet{RemU64: true}}, nil, nil)
	f := func(a, b int32) bool {
		if b == 0 {
			return true
		}
		got := evalBin(t, buggy, ptx.OpRem, ptx.S32, uint64(int64(a)), uint64(int64(b)))
		want := uint64(int64(a)) % uint64(int64(b))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBFE(t *testing.T) {
	m := cleanMachine()
	cases := []struct {
		t       ptx.Type
		a, b, c uint64
		want    uint64
	}{
		{ptx.U32, 0xFF00, 8, 8, 0xFF},
		{ptx.U32, 0xABCD1234, 0, 4, 0x4},
		{ptx.U32, 0xABCD1234, 28, 4, 0xA},
		{ptx.S32, 0x80, 4, 4, sneg(-8)},        // field 1000 -> sign extended
		{ptx.S32, 0x70, 4, 4, 7},               // field 0111 -> positive
		{ptx.S32, 0xFFFFFFFF, 0, 32, sneg(-1)}, // full width
		{ptx.U32, 0xFFFFFFFF, 0, 32, 0xFFFFFFFF},
		{ptx.U64, 0xFF00000000, 32, 8, 0xFF},
		{ptx.S64, 0x8000000000000000, 56, 8, sneg(-128)},
	}
	for _, c := range cases {
		in := &ptx.Instr{Op: ptx.OpBfe, T: c.t, Raw: "bfe test"}
		got, err := m.evalALU(in, [4]uint64{c.a, c.b, c.c})
		if err != nil {
			t.Fatalf("bfe: %v", err)
		}
		if got != c.want {
			t.Errorf("bfe.%v(%#x, %d, %d) = %#x, want %#x", c.t, c.a, c.b, c.c, got, c.want)
		}
	}
}

func TestBFEBugDiffersOnlyForSigned(t *testing.T) {
	good := cleanMachine()
	bad := NewMachine(Config{Bugs: BugSet{BFESigned: true}}, nil, nil)
	f := func(a uint32, pos, length uint8) bool {
		p, l := uint64(pos%32), uint64(length%16+1)
		inU := &ptx.Instr{Op: ptx.OpBfe, T: ptx.U32, Raw: "t"}
		inS := &ptx.Instr{Op: ptx.OpBfe, T: ptx.S32, Raw: "t"}
		gu, _ := good.evalALU(inU, [4]uint64{uint64(a), p, l})
		bu, _ := bad.evalALU(inU, [4]uint64{uint64(a), p, l})
		if gu != bu {
			return false // unsigned extraction must be unaffected
		}
		gs, _ := good.evalALU(inS, [4]uint64{uint64(a), p, l})
		bs, _ := bad.evalALU(inS, [4]uint64{uint64(a), p, l})
		signBit := p + l - 1
		if signBit > 31 {
			signBit = 31
		}
		fieldNegative := a>>signBit&1 == 1 && l < 32
		if fieldNegative {
			return gs != bs // bug must bite on negative fields
		}
		return gs == bs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBrevProperty(t *testing.T) {
	m := cleanMachine()
	f := func(a uint32) bool {
		in := &ptx.Instr{Op: ptx.OpBrev, T: ptx.B32, Raw: "t"}
		r, err := m.evalALU(in, [4]uint64{uint64(a)})
		if err != nil {
			return false
		}
		// brev twice is the identity
		r2, err := m.evalALU(in, [4]uint64{r})
		return err == nil && uint32(r2) == a && uint32(r) == bits.Reverse32(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFloatOps(t *testing.T) {
	m := cleanMachine()
	cfg := &quick.Config{MaxCount: 2000}
	t.Run("add.f32", func(t *testing.T) {
		f := func(a, b float32) bool {
			r := evalBin(t, m, ptx.OpAdd, ptx.F32, uint64(math.Float32bits(a)), uint64(math.Float32bits(b)))
			want := a + b
			if want != want { // NaN
				g := math.Float32frombits(uint32(r))
				return g != g
			}
			return math.Float32frombits(uint32(r)) == want
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("fma.rn.f32 single rounding", func(t *testing.T) {
		in := &ptx.Instr{Op: ptx.OpFma, T: ptx.F32, Raw: "t"}
		f := func(a, b, c float32) bool {
			r, err := m.evalALU(in, [4]uint64{
				uint64(math.Float32bits(a)), uint64(math.Float32bits(b)), uint64(math.Float32bits(c))})
			if err != nil {
				return false
			}
			want := float32(math.FMA(float64(a), float64(b), float64(c)))
			got := math.Float32frombits(uint32(r))
			if want != want {
				return got != got
			}
			return got == want
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("setp float ordering", func(t *testing.T) {
		f := func(a, b float32) bool {
			in := &ptx.Instr{Op: ptx.OpSetp, T: ptx.F32, Cmp: ptx.CmpLt, Raw: "t"}
			r, err := m.evalALU(in, [4]uint64{uint64(math.Float32bits(a)), uint64(math.Float32bits(b))})
			if err != nil {
				return false
			}
			return (r == 1) == (a < b)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestCvt(t *testing.T) {
	m := cleanMachine()
	cases := []struct {
		name string
		in   ptx.Instr
		src  uint64
		want uint64
	}{
		{"s32->f32", ptx.Instr{Op: ptx.OpCvt, T: ptx.F32, T2: ptx.S32}, sneg(-7), uint64(math.Float32bits(-7))},
		{"u32->f32", ptx.Instr{Op: ptx.OpCvt, T: ptx.F32, T2: ptx.U32}, 3000000000, uint64(math.Float32bits(3e9))},
		{"f32->s32 rni", ptx.Instr{Op: ptx.OpCvt, T: ptx.S32, T2: ptx.F32, Rnd: ptx.RndNearestInt}, uint64(math.Float32bits(2.5)), 2},
		{"f32->s32 rzi", ptx.Instr{Op: ptx.OpCvt, T: ptx.S32, T2: ptx.F32, Rnd: ptx.RndZeroInt}, uint64(math.Float32bits(-2.7)), sneg(-2)},
		{"f32->f64", ptx.Instr{Op: ptx.OpCvt, T: ptx.F64, T2: ptx.F32}, uint64(math.Float32bits(1.5)), math.Float64bits(1.5)},
		{"f64->f32", ptx.Instr{Op: ptx.OpCvt, T: ptx.F32, T2: ptx.F64}, math.Float64bits(0.1), uint64(math.Float32bits(float32(0.1)))},
		{"s16->s32 sext", ptx.Instr{Op: ptx.OpCvt, T: ptx.S32, T2: ptx.S16}, 0xFFFF, sneg(-1)},
		{"u16->u32 zext", ptx.Instr{Op: ptx.OpCvt, T: ptx.U32, T2: ptx.U16}, 0xFFFF, 0xFFFF},
		{"f32->f16", ptx.Instr{Op: ptx.OpCvt, T: ptx.F16, T2: ptx.F32}, uint64(math.Float32bits(1.0)), 0x3C00},
		{"f16->f32", ptx.Instr{Op: ptx.OpCvt, T: ptx.F32, T2: ptx.F16}, 0x3C00, uint64(math.Float32bits(1.0))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			c.in.Raw = c.name
			got, err := m.evalALU(&c.in, [4]uint64{c.src})
			if err != nil {
				t.Fatalf("cvt: %v", err)
			}
			if got != c.want {
				t.Errorf("got %#x, want %#x", got, c.want)
			}
		})
	}
}

// Property: half round trip is exact for every representable half.
func TestHalfRoundTripAllValues(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		f := HalfToF32(uint16(h))
		if f != f { // NaN: payload need not round trip, but NaN must
			back := F32ToHalf(f)
			if HalfToF32(back) == HalfToF32(back) {
				t.Fatalf("NaN %#x did not stay NaN", h)
			}
			continue
		}
		back := F32ToHalf(f)
		if back != uint16(h) {
			// -0 and +0 must round trip separately too
			t.Fatalf("half %#x -> %v -> %#x", h, f, back)
		}
	}
}

// Property: conversion from f32 rounds to nearest even.
func TestHalfRounding(t *testing.T) {
	cases := []struct {
		f    float32
		want uint16
	}{
		{1.0, 0x3C00},
		{-2.0, 0xC000},
		{65504, 0x7BFF},           // max half
		{65520, 0x7C00},           // rounds to +Inf
		{5.960464e-8, 0x0001},     // min subnormal
		{6.103515625e-05, 0x0400}, // min normal
		{0, 0x0000},
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
	}
	for _, c := range cases {
		if got := F32ToHalf(c.f); got != c.want {
			t.Errorf("F32ToHalf(%v) = %#x, want %#x", c.f, got, c.want)
		}
	}
	if got := F32ToHalf(float32(math.NaN())); got&0x7C00 != 0x7C00 || got&0x3FF == 0 {
		t.Errorf("F32ToHalf(NaN) = %#x is not a NaN", got)
	}
}

// The paper's §III-D1 finding: a multiply followed by an add in FP16
// differs from a fused FMA because FMA keeps extra precision between the
// two operations. Both behaviours are intentional in our machine (mul+add
// vs fma); this test pins down that they really diverge.
func TestFP16FMAContractionMismatch(t *testing.T) {
	m := cleanMachine()
	mulIn := &ptx.Instr{Op: ptx.OpMul, T: ptx.F16, Raw: "mul.f16"}
	addIn := &ptx.Instr{Op: ptx.OpAdd, T: ptx.F16, Raw: "add.f16"}
	fmaIn := &ptx.Instr{Op: ptx.OpFma, T: ptx.F16, Raw: "fma.rn.f16"}

	mismatches := 0
	total := 0
	// Scan a grid of half values; contraction differences appear when the
	// product needs bits the f16 intermediate cannot hold.
	for i := 0; i < 200; i++ {
		for j := 0; j < 20; j++ {
			a := uint64(F32ToHalf(float32(i)*0.37 + 0.11))
			b := uint64(F32ToHalf(float32(j)*1.13 - 3.7))
			c := uint64(F32ToHalf(0.625))
			p, err := m.evalALU(mulIn, [4]uint64{a, b})
			if err != nil {
				t.Fatal(err)
			}
			s, err := m.evalALU(addIn, [4]uint64{p, c})
			if err != nil {
				t.Fatal(err)
			}
			f, err := m.evalALU(fmaIn, [4]uint64{a, b, c})
			if err != nil {
				t.Fatal(err)
			}
			total++
			if s != f {
				mismatches++
			}
		}
	}
	if mismatches == 0 {
		t.Fatal("expected FMA contraction to differ from mul+add for some FP16 inputs")
	}
	t.Logf("FP16 mul+add vs fma mismatches: %d/%d", mismatches, total)
}
