package exec

// Functional-effect memoization for repeated kernel launches (the
// timing engine's hybrid replay mode, internal/timing/replay.go).
//
// A PTX kernel under this interpreter is a deterministic function of its
// launch description (kernel, dims, params — all covered by the replay
// signature) and the global-memory bytes it reads: shared and local
// memory start zeroed every execution, special registers depend only on
// geometry, and %clock is the warp's own instruction count. So if every
// byte a captured execution read (before writing it) still holds the
// value it held at capture time, re-running the kernel would retrace the
// exact same path and produce the exact same writes — and the re-run can
// be replaced by re-applying the recorded write-set. CaptureGrid records
// that read-before-write set and the final written bytes while running a
// grid; GridMemo.Matches checks the read-set against current memory and
// GridMemo.Apply commits the writes.
//
// Texture fetches read CUDA arrays, which live outside the recorded
// device.Memory — a capture that touches a texture returns no memo
// (callers fall back to plain re-execution) rather than risk validating
// against stale array contents.

import "bytes"

// memoPageSize is the shadow-page granularity of the capture recorder.
const memoPageSize = 4096

// memoPage shadows one page of global memory during capture: which bytes
// the execution has written, which it has recorded as read-before-write,
// and the observed/final values of each.
type memoPage struct {
	written  [memoPageSize / 8]byte
	readRec  [memoPageSize / 8]byte
	readVal  [memoPageSize]byte
	writeVal [memoPageSize]byte
}

// memRecorder is attached to a Machine for the duration of one
// CaptureGrid call. The interpreter is single-goroutine, so no locking.
type memRecorder struct {
	pages   map[uint64]*memoPage
	unsound bool // touched state the memo cannot validate (textures)
}

func (r *memRecorder) page(pn uint64) *memoPage {
	p := r.pages[pn]
	if p == nil {
		p = &memoPage{}
		r.pages[pn] = p
	}
	return p
}

// recordRead marks buf's bytes as read-before-write unless the execution
// already wrote (or already recorded) them.
func (r *memRecorder) recordRead(addr uint64, buf []byte) {
	for i := 0; i < len(buf); {
		pn := (addr + uint64(i)) / memoPageSize
		off := int((addr + uint64(i)) % memoPageSize)
		p := r.page(pn)
		for ; off < memoPageSize && i < len(buf); off, i = off+1, i+1 {
			bit := byte(1 << (off % 8))
			if p.written[off/8]&bit == 0 && p.readRec[off/8]&bit == 0 {
				p.readRec[off/8] |= bit
				p.readVal[off] = buf[i]
			}
		}
	}
}

// recordWrite marks buf's bytes written and remembers their final value.
func (r *memRecorder) recordWrite(addr uint64, buf []byte) {
	for i := 0; i < len(buf); {
		pn := (addr + uint64(i)) / memoPageSize
		off := int((addr + uint64(i)) % memoPageSize)
		p := r.page(pn)
		for ; off < memoPageSize && i < len(buf); off, i = off+1, i+1 {
			p.written[off/8] |= byte(1 << (off % 8))
			p.writeVal[off] = buf[i]
		}
	}
}

// memSpan is a contiguous run of recorded bytes.
type memSpan struct {
	addr uint64
	data []byte
}

// GridMemo is one launch's captured global-memory effect: the bytes it
// read before writing (with their observed values) and the bytes it
// wrote (with their final values), both as sorted coalesced spans.
type GridMemo struct {
	reads   []memSpan
	writes  []memSpan
	scratch []byte // reusable Matches read buffer, sized to the largest read span
}

// spans converts one shadow bitmap into coalesced spans.
func spans(pn uint64, mask *[memoPageSize / 8]byte, vals *[memoPageSize]byte, out []memSpan) []memSpan {
	base := pn * memoPageSize
	for off := 0; off < memoPageSize; {
		if mask[off/8]&(1<<(off%8)) == 0 {
			off++
			continue
		}
		start := off
		for off < memoPageSize && mask[off/8]&(1<<(off%8)) != 0 {
			off++
		}
		// merge with the previous span when pages abut
		if n := len(out); n > 0 && out[n-1].addr+uint64(len(out[n-1].data)) == base+uint64(start) {
			out[n-1].data = append(out[n-1].data, vals[start:off]...)
		} else {
			out = append(out, memSpan{addr: base + uint64(start), data: append([]byte(nil), vals[start:off]...)})
		}
	}
	return out
}

// memo freezes the recorder into a GridMemo (nil when unsound).
func (r *memRecorder) memo() *GridMemo {
	if r.unsound {
		return nil
	}
	pns := make([]uint64, 0, len(r.pages))
	for pn := range r.pages {
		pns = append(pns, pn)
	}
	// sorted page order keeps spans sorted and mergeable across pages
	for i := 1; i < len(pns); i++ {
		for j := i; j > 0 && pns[j-1] > pns[j]; j-- {
			pns[j-1], pns[j] = pns[j], pns[j-1]
		}
	}
	mo := &GridMemo{}
	for _, pn := range pns {
		p := r.pages[pn]
		mo.reads = spans(pn, &p.readRec, &p.readVal, mo.reads)
		mo.writes = spans(pn, &p.written, &p.writeVal, mo.writes)
	}
	max := 0
	for _, s := range mo.reads {
		if len(s.data) > max {
			max = len(s.data)
		}
	}
	mo.scratch = make([]byte, max)
	return mo
}

// Matches reports whether every byte the captured execution read still
// holds its captured value — the soundness condition for Apply.
func (mo *GridMemo) Matches(m *Machine) bool {
	for _, s := range mo.reads {
		buf := mo.scratch[:len(s.data)]
		m.Mem.Read(s.addr, buf)
		if !bytes.Equal(buf, s.data) {
			return false
		}
	}
	return true
}

// Apply commits the captured write-set, reproducing the execution's
// global-memory effect without re-interpreting the kernel. Only sound
// when Matches just returned true on the same memory image.
func (mo *GridMemo) Apply(m *Machine) {
	for _, s := range mo.writes {
		m.Mem.Write(s.addr, s.data)
	}
}

// CaptureGrid runs the grid functionally (semantics identical to
// RunGrid) while recording its global-memory effect. The returned memo
// is nil — with no error — when the execution touched state the memo
// cannot validate (texture fetches); the grid still executed fully.
func (m *Machine) CaptureGrid(g *Grid) (*GridMemo, error) {
	r := &memRecorder{pages: make(map[uint64]*memoPage)}
	m.rec = r
	err := m.RunGrid(g)
	m.rec = nil
	if err != nil {
		return nil, err
	}
	return r.memo(), nil
}
