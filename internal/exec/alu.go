package exec

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/ptx"
)

// BugSet selects deliberately incorrect instruction implementations. The
// zero value is a correct simulator. The paper (§III-D) found and fixed the
// rem and bfe bugs in GPGPU-Sim; re-injecting them lets the debug tooling
// be validated against known-faulty behaviour.
type BugSet struct {
	// RemU64 reproduces the original GPGPU-Sim remainder bug: rem is
	// always evaluated as "src1.u64 % src2.u64" regardless of the type
	// specifier, so signed and 32-bit operands produce wrong results.
	RemU64 bool
	// BFESigned reproduces the bit-field-extract bug: signed extraction
	// omits sign extension (subtly wrong for signed inputs only).
	BFESigned bool
	// BreakOp perturbs the result of one arbitrary opcode (bitwise
	// complement of the result); used to validate that the debug tool
	// localises an arbitrary faulty instruction implementation.
	BreakOp ptx.Op
}

func (b BugSet) broken(op ptx.Op) bool { return b.BreakOp != ptx.OpInvalid && b.BreakOp == op }

// Raw bit conversion helpers. Register values are stored as raw uint64
// bits, exactly like GPGPU-Sim's ptx_reg_t union.

func f32bits(f float32) uint64 { return uint64(math.Float32bits(f)) }
func bitsF32(b uint64) float32 { return math.Float32frombits(uint32(b)) }
func f64bits(f float64) uint64 { return math.Float64bits(f) }
func bitsF64(b uint64) float64 { return math.Float64frombits(b) }

// truncToType masks a raw value down to the storage width of t,
// sign-extending for signed integer types so that comparisons work on the
// full 64-bit pattern.
func truncToType(v uint64, t ptx.Type) uint64 {
	switch t.Size() {
	case 1:
		if t.Signed() {
			return uint64(int64(int8(v)))
		}
		return uint64(uint8(v))
	case 2:
		if t.Signed() {
			return uint64(int64(int16(v)))
		}
		return uint64(uint16(v))
	case 4:
		if t.Signed() {
			return uint64(int64(int32(v)))
		}
		return uint64(uint32(v))
	}
	return v
}

// aluError annotates semantic errors with the instruction text.
func aluError(in *ptx.Instr, format string, args ...interface{}) error {
	return fmt.Errorf("exec: %q: %s", in.Raw, fmt.Sprintf(format, args...))
}

// evalALU computes the result bits for a register-producing instruction
// given up to four source values (raw bits). Memory and control
// instructions are handled by the machine, not here.
func (m *Machine) evalALU(in *ptx.Instr, s [4]uint64) (uint64, error) {
	t := in.T
	var r uint64
	var err error
	switch in.Op {
	case ptx.OpMov:
		r = s[0]
	case ptx.OpAdd:
		r, err = addSubOp(in, t, s[0], s[1], false)
	case ptx.OpSub:
		r, err = addSubOp(in, t, s[0], s[1], true)
	case ptx.OpMul:
		r, err = mulOp(in, t, s[0], s[1])
	case ptx.OpMad:
		r, err = madOp(in, t, s[0], s[1], s[2])
	case ptx.OpFma:
		r, err = fmaOp(in, t, s[0], s[1], s[2])
	case ptx.OpDiv:
		r, err = divOp(in, t, s[0], s[1])
	case ptx.OpRem:
		r, err = m.remOp(in, t, s[0], s[1])
	case ptx.OpAbs:
		r, err = absOp(in, t, s[0])
	case ptx.OpNeg:
		r, err = negOp(in, t, s[0])
	case ptx.OpMin:
		r, err = minMaxOp(in, t, s[0], s[1], true)
	case ptx.OpMax:
		r, err = minMaxOp(in, t, s[0], s[1], false)
	case ptx.OpSqrt:
		r, err = unaryF(in, t, s[0], func(x float64) float64 { return math.Sqrt(x) })
	case ptx.OpRsqrt:
		r, err = unaryF(in, t, s[0], func(x float64) float64 { return 1 / math.Sqrt(x) })
	case ptx.OpRcp:
		r, err = unaryF(in, t, s[0], func(x float64) float64 { return 1 / x })
	case ptx.OpLg2:
		r, err = unaryF(in, t, s[0], math.Log2)
	case ptx.OpEx2:
		r, err = unaryF(in, t, s[0], math.Exp2)
	case ptx.OpSin:
		r, err = unaryF(in, t, s[0], math.Sin)
	case ptx.OpCos:
		r, err = unaryF(in, t, s[0], math.Cos)
	case ptx.OpSetp:
		ok, cerr := compare(in.Cmp, t, s[0], s[1])
		if cerr != nil {
			return 0, aluError(in, "%v", cerr)
		}
		if ok {
			r = 1
		}
	case ptx.OpSelp:
		if s[2] != 0 {
			r = s[0]
		} else {
			r = s[1]
		}
	case ptx.OpSlct:
		// slct.T.T2 d, a, b, c: d = (c >= 0) ? a : b, selector type T2.
		sel := in.T2
		nonNeg := false
		if sel.Float() {
			nonNeg = bitsF32(truncToType(s[2], ptx.F32)) >= 0
		} else {
			nonNeg = int64(truncToType(s[2], ptx.S32)) >= 0
		}
		if nonNeg {
			r = s[0]
		} else {
			r = s[1]
		}
	case ptx.OpAnd:
		r = s[0] & s[1]
	case ptx.OpOr:
		r = s[0] | s[1]
	case ptx.OpXor:
		r = s[0] ^ s[1]
	case ptx.OpNot:
		r = ^s[0]
	case ptx.OpShl:
		r = shiftOp(t, s[0], s[1], true)
	case ptx.OpShr:
		r = shiftOp(t, s[0], s[1], false)
	case ptx.OpBrev:
		// brev.b32/b64: output the bits of the input in reverse order.
		// Introduced in PTX 2.0; used by cuDNN's FFT-based convolutions
		// (§III-B); GPGPU-Sim lacked it before the paper's changes.
		if t.Size() == 8 {
			r = bits.Reverse64(s[0])
		} else {
			r = uint64(bits.Reverse32(uint32(s[0])))
		}
	case ptx.OpBfe:
		r = m.bfeOp(t, s[0], s[1], s[2])
	case ptx.OpBfi:
		r = bfiOp(t, s[0], s[1], s[2], s[3])
	case ptx.OpPopc:
		if t.Size() == 8 {
			r = uint64(bits.OnesCount64(s[0]))
		} else {
			r = uint64(bits.OnesCount32(uint32(s[0])))
		}
	case ptx.OpClz:
		if t.Size() == 8 {
			r = uint64(bits.LeadingZeros64(s[0]))
		} else {
			r = uint64(bits.LeadingZeros32(uint32(s[0])))
		}
	case ptx.OpCvt:
		r, err = cvtOp(in, s[0])
	case ptx.OpCvta:
		// Address-space conversion is a pure arithmetic rebase handled by
		// the machine's address translation; cvta itself is the identity
		// on the raw address bits in our window scheme.
		r = s[0]
	default:
		return 0, aluError(in, "opcode has no ALU semantics")
	}
	if err != nil {
		return 0, err
	}
	if m.cfg.Bugs.broken(in.Op) {
		r = ^r
	}
	return r, nil
}

func addSubOp(in *ptx.Instr, t ptx.Type, a, b uint64, sub bool) (uint64, error) {
	switch {
	case t == ptx.F32:
		x, y := bitsF32(a), bitsF32(b)
		if sub {
			return f32bits(x - y), nil
		}
		return f32bits(x + y), nil
	case t == ptx.F64:
		x, y := bitsF64(a), bitsF64(b)
		if sub {
			return f64bits(x - y), nil
		}
		return f64bits(x + y), nil
	case t == ptx.F16:
		x, y := HalfToF32(uint16(a)), HalfToF32(uint16(b))
		if sub {
			return uint64(F32ToHalf(x - y)), nil
		}
		return uint64(F32ToHalf(x + y)), nil
	case t.Integer():
		if sub {
			return truncToType(uint64(int64(a)-int64(b)), t), nil
		}
		return truncToType(uint64(int64(a)+int64(b)), t), nil
	}
	return 0, aluError(in, "bad type %v for arithmetic", t)
}

func mulOp(in *ptx.Instr, t ptx.Type, a, b uint64) (uint64, error) {
	switch {
	case t == ptx.F32:
		return f32bits(bitsF32(a) * bitsF32(b)), nil
	case t == ptx.F64:
		return f64bits(bitsF64(a) * bitsF64(b)), nil
	case t == ptx.F16:
		return uint64(F32ToHalf(HalfToF32(uint16(a)) * HalfToF32(uint16(b)))), nil
	case t.Integer():
		switch {
		case in.Wide:
			if t.Signed() {
				return uint64(int64(int32(a)) * int64(int32(b))), nil
			}
			return uint64(uint32(a)) * uint64(uint32(b)), nil
		case in.Hi:
			if t.Size() == 8 {
				if t.Signed() {
					hi, _ := bits.Mul64(a, b)
					// adjust for signedness
					if int64(a) < 0 {
						hi -= b
					}
					if int64(b) < 0 {
						hi -= a
					}
					return hi, nil
				}
				hi, _ := bits.Mul64(a, b)
				return hi, nil
			}
			if t.Signed() {
				p := int64(int32(a)) * int64(int32(b))
				return truncToType(uint64(p>>32), t), nil
			}
			p := uint64(uint32(a)) * uint64(uint32(b))
			return uint64(uint32(p >> 32)), nil
		default: // .lo or 64-bit
			return truncToType(uint64(int64(a)*int64(b)), t), nil
		}
	}
	return 0, aluError(in, "bad type %v for mul", t)
}

func madOp(in *ptx.Instr, t ptx.Type, a, b, c uint64) (uint64, error) {
	if t.Float() {
		return fmaOp(in, t, a, b, c)
	}
	if in.Wide {
		if t.Signed() {
			return uint64(int64(int32(a))*int64(int32(b)) + int64(c)), nil
		}
		return uint64(uint32(a))*uint64(uint32(b)) + c, nil
	}
	p, err := mulOp(in, t, a, b)
	if err != nil {
		return 0, err
	}
	return truncToType(uint64(int64(p)+int64(c)), t), nil
}

func fmaOp(in *ptx.Instr, t ptx.Type, a, b, c uint64) (uint64, error) {
	switch t {
	case ptx.F32:
		return f32bits(float32(math.FMA(float64(bitsF32(a)), float64(bitsF32(b)), float64(bitsF32(c))))), nil
	case ptx.F64:
		return f64bits(math.FMA(bitsF64(a), bitsF64(b), bitsF64(c))), nil
	case ptx.F16:
		// FMA keeps full precision between the multiply and the add; only
		// the final result is rounded to f16. This is precisely the extra
		// precision that caused the paper's FP16 mismatch (§III-D1).
		x := float64(HalfToF32(uint16(a)))
		y := float64(HalfToF32(uint16(b)))
		z := float64(HalfToF32(uint16(c)))
		return uint64(F32ToHalf(float32(math.FMA(x, y, z)))), nil
	}
	return 0, aluError(in, "bad type %v for fma", t)
}

func divOp(in *ptx.Instr, t ptx.Type, a, b uint64) (uint64, error) {
	switch {
	case t == ptx.F32:
		return f32bits(bitsF32(a) / bitsF32(b)), nil
	case t == ptx.F64:
		return f64bits(bitsF64(a) / bitsF64(b)), nil
	case t == ptx.F16:
		return uint64(F32ToHalf(HalfToF32(uint16(a)) / HalfToF32(uint16(b)))), nil
	case t.Integer():
		if b == 0 {
			// PTX integer division by zero yields an unspecified value on
			// hardware; GPGPU-Sim returns all-ones. We match GPGPU-Sim.
			return truncToType(^uint64(0), t), nil
		}
		if t.Signed() {
			return truncToType(uint64(int64(a)/int64(b)), t), nil
		}
		switch t.Size() {
		case 8:
			return a / b, nil
		default:
			return truncToType(uint64(uint32(a)/uint32(b)), t), nil
		}
	}
	return 0, aluError(in, "bad type %v for div", t)
}

// remOp implements the remainder instruction. With Bugs.RemU64 set it
// reproduces GPGPU-Sim's original "data.u64 = src1.u64 % src2.u64"
// implementation that the paper's debug flow tracked down inside
// fft2d_r2c_32x32 (§III-D); otherwise it switches on the type specifier.
func (m *Machine) remOp(in *ptx.Instr, t ptx.Type, a, b uint64) (uint64, error) {
	if m.cfg.Bugs.RemU64 {
		if b == 0 {
			return ^uint64(0), nil
		}
		return a % b, nil // type-oblivious: the injected bug
	}
	switch {
	case t == ptx.F32:
		return f32bits(float32(math.Mod(float64(bitsF32(a)), float64(bitsF32(b))))), nil
	case t.Integer():
		if b == 0 {
			return truncToType(^uint64(0), t), nil
		}
		if t.Signed() {
			switch t.Size() {
			case 8:
				return uint64(int64(a) % int64(b)), nil
			default:
				return truncToType(uint64(int64(int32(a))%int64(int32(b))), t), nil
			}
		}
		switch t.Size() {
		case 8:
			return a % b, nil
		default:
			return truncToType(uint64(uint32(a)%uint32(b)), t), nil
		}
	}
	return 0, aluError(in, "bad type %v for rem", t)
}

func absOp(in *ptx.Instr, t ptx.Type, a uint64) (uint64, error) {
	switch {
	case t == ptx.F32:
		return f32bits(float32(math.Abs(float64(bitsF32(a))))), nil
	case t == ptx.F64:
		return f64bits(math.Abs(bitsF64(a))), nil
	case t.Integer():
		v := int64(truncToType(a, t))
		if v < 0 {
			v = -v
		}
		return truncToType(uint64(v), t), nil
	}
	return 0, aluError(in, "bad type %v for abs", t)
}

func negOp(in *ptx.Instr, t ptx.Type, a uint64) (uint64, error) {
	switch {
	case t == ptx.F32:
		return f32bits(-bitsF32(a)), nil
	case t == ptx.F64:
		return f64bits(-bitsF64(a)), nil
	case t == ptx.F16:
		return uint64(uint16(a) ^ 0x8000), nil
	case t.Integer():
		return truncToType(uint64(-int64(a)), t), nil
	}
	return 0, aluError(in, "bad type %v for neg", t)
}

func minMaxOp(in *ptx.Instr, t ptx.Type, a, b uint64, isMin bool) (uint64, error) {
	switch {
	case t == ptx.F32:
		x, y := bitsF32(a), bitsF32(b)
		// PTX min/max: if one input is NaN the other is returned.
		if x != x {
			return f32bits(y), nil
		}
		if y != y {
			return f32bits(x), nil
		}
		if (x < y) == isMin {
			return f32bits(x), nil
		}
		return f32bits(y), nil
	case t == ptx.F64:
		x, y := bitsF64(a), bitsF64(b)
		if x != x {
			return f64bits(y), nil
		}
		if y != y {
			return f64bits(x), nil
		}
		if (x < y) == isMin {
			return f64bits(x), nil
		}
		return f64bits(y), nil
	case t.Integer():
		if t.Signed() {
			x, y := int64(truncToType(a, t)), int64(truncToType(b, t))
			if (x < y) == isMin {
				return truncToType(uint64(x), t), nil
			}
			return truncToType(uint64(y), t), nil
		}
		x, y := truncToType(a, t), truncToType(b, t)
		if (x < y) == isMin {
			return x, nil
		}
		return y, nil
	}
	return 0, aluError(in, "bad type %v for min/max", t)
}

func unaryF(in *ptx.Instr, t ptx.Type, a uint64, f func(float64) float64) (uint64, error) {
	switch t {
	case ptx.F32:
		return f32bits(float32(f(float64(bitsF32(a))))), nil
	case ptx.F64:
		return f64bits(f(bitsF64(a))), nil
	case ptx.F16:
		return uint64(F32ToHalf(float32(f(float64(HalfToF32(uint16(a))))))), nil
	}
	return 0, aluError(in, "bad type %v for unary float op", t)
}

func shiftOp(t ptx.Type, a, b uint64, left bool) uint64 {
	width := uint64(t.Size()) * 8
	sh := b
	if sh > width {
		sh = width
	}
	if left {
		if sh >= width {
			return 0
		}
		return truncToType(a<<sh, t)
	}
	if t.Signed() {
		if sh >= width {
			sh = width - 1
		}
		return truncToType(uint64(int64(truncToType(a, t))>>sh), t)
	}
	if sh >= width {
		return 0
	}
	return truncToType(a, t) >> sh
}

// bfeOp implements bit-field extract per the PTX spec. With Bugs.BFESigned
// set, signed extraction skips sign extension, reproducing the subtle
// signed-input errors the paper found via differential coverage analysis.
func (m *Machine) bfeOp(t ptx.Type, a, b, c uint64) uint64 {
	pos := b & 0xFF
	length := c & 0xFF
	width := uint64(t.Size()) * 8
	if pos > width {
		pos = width
	}
	if length > width {
		length = width
	}
	var field uint64
	if length > 0 && pos < width {
		field = (a >> pos) & (^uint64(0) >> (64 - length))
	}
	if t.Signed() && !m.cfg.Bugs.BFESigned && length > 0 && length < 64 {
		// Sign bit of the extracted field: bit min(pos+len-1, width-1) of a.
		sb := pos + length - 1
		if sb > width-1 {
			sb = width - 1
		}
		if a>>sb&1 == 1 {
			field |= ^uint64(0) << length
		}
	}
	return truncToType(field, t)
}

func bfiOp(t ptx.Type, a, b, c, d uint64) uint64 {
	pos := c & 0xFF
	length := d & 0xFF
	width := uint64(t.Size()) * 8
	if length == 0 || pos >= width {
		return truncToType(b, t)
	}
	if length > width-pos {
		length = width - pos
	}
	mask := (^uint64(0) >> (64 - length)) << pos
	return truncToType((b&^mask)|((a<<pos)&mask), t)
}

func cvtOp(in *ptx.Instr, a uint64) (uint64, error) {
	dst, src := in.T, in.T2
	if src == ptx.TypeNone {
		src = dst
	}
	// Load source as float64 or int64 view.
	switch {
	case src.Float() && dst.Float():
		var v float64
		switch src {
		case ptx.F16:
			v = float64(HalfToF32(uint16(a)))
		case ptx.F32:
			v = float64(bitsF32(a))
		default:
			v = bitsF64(a)
		}
		v = roundIfInt(in.Rnd, v)
		switch dst {
		case ptx.F16:
			return uint64(F32ToHalf(float32(v))), nil
		case ptx.F32:
			return f32bits(float32(v)), nil
		default:
			return f64bits(v), nil
		}
	case src.Float() && dst.Integer():
		var v float64
		switch src {
		case ptx.F16:
			v = float64(HalfToF32(uint16(a)))
		case ptx.F32:
			v = float64(bitsF32(a))
		default:
			v = bitsF64(a)
		}
		switch in.Rnd {
		case ptx.RndNearestInt:
			v = math.RoundToEven(v)
		case ptx.RndDownInt:
			v = math.Floor(v)
		case ptx.RndUpInt:
			v = math.Ceil(v)
		default: // rzi and unspecified: truncate
			v = math.Trunc(v)
		}
		if dst.Signed() {
			return truncToType(uint64(int64(v)), dst), nil
		}
		if v < 0 {
			v = 0
		}
		return truncToType(uint64(v), dst), nil
	case src.Integer() && dst.Float():
		var v float64
		if src.Signed() {
			v = float64(int64(truncToType(a, src)))
		} else {
			v = float64(truncToType(a, src))
		}
		switch dst {
		case ptx.F16:
			return uint64(F32ToHalf(float32(v))), nil
		case ptx.F32:
			return f32bits(float32(v)), nil
		default:
			return f64bits(v), nil
		}
	default: // int <-> int
		// Sign/zero extend from the source width, then truncate to dst.
		return truncToType(truncToType(a, src), dst), nil
	}
}

func roundIfInt(r ptx.RndMode, v float64) float64 {
	switch r {
	case ptx.RndNearestInt:
		return math.RoundToEven(v)
	case ptx.RndZeroInt:
		return math.Trunc(v)
	case ptx.RndDownInt:
		return math.Floor(v)
	case ptx.RndUpInt:
		return math.Ceil(v)
	}
	return v
}

// compare evaluates a setp comparison on raw bits of type t.
func compare(c ptx.CmpOp, t ptx.Type, a, b uint64) (bool, error) {
	if t.Float() {
		var x, y float64
		switch t {
		case ptx.F16:
			x, y = float64(HalfToF32(uint16(a))), float64(HalfToF32(uint16(b)))
		case ptx.F32:
			x, y = float64(bitsF32(a)), float64(bitsF32(b))
		default:
			x, y = bitsF64(a), bitsF64(b)
		}
		nan := x != x || y != y
		switch c {
		case ptx.CmpEq:
			return !nan && x == y, nil
		case ptx.CmpNe:
			return !nan && x != y, nil
		case ptx.CmpLt:
			return !nan && x < y, nil
		case ptx.CmpLe:
			return !nan && x <= y, nil
		case ptx.CmpGt:
			return !nan && x > y, nil
		case ptx.CmpGe:
			return !nan && x >= y, nil
		case ptx.CmpEqu:
			return nan || x == y, nil
		case ptx.CmpNeu:
			return nan || x != y, nil
		case ptx.CmpLtu:
			return nan || x < y, nil
		case ptx.CmpLeu:
			return nan || x <= y, nil
		case ptx.CmpGtu:
			return nan || x > y, nil
		case ptx.CmpGeu:
			return nan || x >= y, nil
		case ptx.CmpNum:
			return !nan, nil
		case ptx.CmpNan:
			return nan, nil
		}
		return false, fmt.Errorf("bad float comparison %v", c)
	}
	// Integer comparisons. lo/ls/hi/hs force unsigned regardless of type.
	switch c {
	case ptx.CmpLo:
		return truncUnsigned(a, t) < truncUnsigned(b, t), nil
	case ptx.CmpLs:
		return truncUnsigned(a, t) <= truncUnsigned(b, t), nil
	case ptx.CmpHi:
		return truncUnsigned(a, t) > truncUnsigned(b, t), nil
	case ptx.CmpHs:
		return truncUnsigned(a, t) >= truncUnsigned(b, t), nil
	}
	if t.Signed() {
		x, y := int64(truncToType(a, t)), int64(truncToType(b, t))
		switch c {
		case ptx.CmpEq:
			return x == y, nil
		case ptx.CmpNe:
			return x != y, nil
		case ptx.CmpLt:
			return x < y, nil
		case ptx.CmpLe:
			return x <= y, nil
		case ptx.CmpGt:
			return x > y, nil
		case ptx.CmpGe:
			return x >= y, nil
		}
		return false, fmt.Errorf("bad signed comparison %v", c)
	}
	x, y := truncUnsigned(a, t), truncUnsigned(b, t)
	switch c {
	case ptx.CmpEq:
		return x == y, nil
	case ptx.CmpNe:
		return x != y, nil
	case ptx.CmpLt:
		return x < y, nil
	case ptx.CmpLe:
		return x <= y, nil
	case ptx.CmpGt:
		return x > y, nil
	case ptx.CmpGe:
		return x >= y, nil
	}
	return false, fmt.Errorf("bad unsigned comparison %v", c)
}

func truncUnsigned(v uint64, t ptx.Type) uint64 {
	switch t.Size() {
	case 1:
		return uint64(uint8(v))
	case 2:
		return uint64(uint16(v))
	case 4:
		return uint64(uint32(v))
	}
	return v
}
