// Package exec implements GPGPU-Sim-style functional simulation of PTX
// kernels: warps of 32 threads executing in lockstep under SIMT
// reconvergence stacks, with barriers, predication, all memory spaces,
// textures and atomics. The timing model (internal/timing) drives the same
// machine one warp-instruction at a time; the functional mode used for
// fast-forwarding (paper §III-F) runs warps to completion directly.
package exec

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/ptx"
)

// WarpSize is the number of threads per warp.
const WarpSize = 32

// Dim3 is a CUDA dim3.
type Dim3 struct{ X, Y, Z int }

// Count returns X*Y*Z (with zero components treated as 1).
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x == 0 {
		x = 1
	}
	if y == 0 {
		y = 1
	}
	if z == 0 {
		z = 1
	}
	return x * y * z
}

// Config configures a functional machine.
type Config struct {
	Bugs BugSet
}

// Machine executes PTX kernels against a device memory image.
type Machine struct {
	cfg Config
	Mem *device.Memory
	Tex *device.TextureRegistry

	cov *Coverage
	rec *memRecorder // non-nil only inside CaptureGrid (memo.go)
}

// NewMachine creates a functional machine over the given memory image and
// texture registry (either may be shared with a runtime context).
func NewMachine(cfg Config, mem *device.Memory, tex *device.TextureRegistry) *Machine {
	return &Machine{cfg: cfg, Mem: mem, Tex: tex, cov: NewCoverage()}
}

// Coverage returns the machine's instruction-implementation coverage
// counters (see coverage.go; used for differential coverage analysis).
func (m *Machine) Coverage() *Coverage { return m.cov }

// Bugs returns the configured bug injections.
func (m *Machine) Bugs() BugSet { return m.cfg.Bugs }

// Grid is one kernel launch: grid/block geometry plus launch state.
type Grid struct {
	Kernel    *ptx.Kernel
	GridDim   Dim3
	BlockDim  Dim3
	Params    []byte
	SharedDyn int // dynamic shared memory bytes (third launch parameter)

	machine *Machine
}

// NewGrid prepares a launch. The parameter buffer must match the kernel's
// parameter layout (see cudart for the marshalling helpers).
func (m *Machine) NewGrid(k *ptx.Kernel, gridDim, blockDim Dim3, params []byte, sharedDyn int) (*Grid, error) {
	if k == nil {
		return nil, fmt.Errorf("exec: nil kernel")
	}
	if blockDim.Count() == 0 || blockDim.Count() > 1024 {
		return nil, fmt.Errorf("exec: bad block size %d", blockDim.Count())
	}
	if len(params) < k.ParamBytes() {
		return nil, fmt.Errorf("exec: kernel %s needs %d parameter bytes, got %d",
			k.Name, k.ParamBytes(), len(params))
	}
	return &Grid{
		Kernel: k, GridDim: gridDim, BlockDim: blockDim,
		Params: params, SharedDyn: sharedDyn, machine: m,
	}, nil
}

// NumCTAs returns the number of thread blocks in the grid.
func (g *Grid) NumCTAs() int { return g.GridDim.Count() }

// NumWarpsPerCTA returns warps per block.
func (g *Grid) NumWarpsPerCTA() int {
	return (g.BlockDim.Count() + WarpSize - 1) / WarpSize
}

// SharedBytes returns the total shared memory per CTA (static + dynamic).
func (g *Grid) SharedBytes() int { return g.Kernel.SharedBytes + g.SharedDyn }

// Machine returns the machine this grid executes on.
func (g *Grid) Machine() *Machine { return g.machine }

// StackEntry is one SIMT reconvergence stack entry.
type StackEntry struct {
	PC   int
	RPC  int // reconvergence PC; -1 for the bottom entry
	Mask uint32
}

// Warp is 32 threads executing in lockstep.
type Warp struct {
	ID    int
	Stack []StackEntry
	// Regs holds raw register bits, laid out slot-major:
	// Regs[slot*WarpSize+lane].
	Regs   []uint64
	Locals [][]byte // per-lane local memory; nil when kernel uses none
	// InitMask has a bit per lane that exists in the thread block.
	InitMask   uint32
	AtBarrier  bool
	Done       bool
	InstrCount uint64
}

// CTA is one thread block in flight.
type CTA struct {
	Grid   *Grid
	Index  int // linear block index
	Shared []byte
	Warps  []*Warp
}

// InitCTA builds the architectural state for block index i (registers
// zeroed, SIMT stacks at PC 0). This corresponds to GPGPU-Sim's CTA issue.
func (g *Grid) InitCTA(i int) *CTA {
	k := g.Kernel
	nThreads := g.BlockDim.Count()
	nWarps := g.NumWarpsPerCTA()
	cta := &CTA{Grid: g, Index: i, Shared: make([]byte, g.SharedBytes())}
	for w := 0; w < nWarps; w++ {
		warp := &Warp{
			ID:    w,
			Stack: make([]StackEntry, 1, 4),
			Regs:  make([]uint64, k.NumSlots*WarpSize),
		}
		var mask uint32
		for l := 0; l < WarpSize; l++ {
			if w*WarpSize+l < nThreads {
				mask |= 1 << l
			}
		}
		warp.InitMask = mask
		warp.Stack[0] = StackEntry{PC: 0, RPC: -1, Mask: mask}
		if k.LocalBytes > 0 {
			warp.Locals = make([][]byte, WarpSize)
			for l := 0; l < WarpSize; l++ {
				if mask&(1<<l) != 0 {
					warp.Locals[l] = make([]byte, k.LocalBytes)
				}
			}
		}
		cta.Warps = append(cta.Warps, warp)
	}
	return cta
}

// Done reports whether every warp of the CTA has retired.
func (c *CTA) Done() bool {
	for _, w := range c.Warps {
		if !w.Done {
			return false
		}
	}
	return true
}

// Reg reads a register slot for one lane.
func (w *Warp) Reg(slot, lane int) uint64 { return w.Regs[slot*WarpSize+lane] }

// SetReg writes a register slot for one lane.
func (w *Warp) SetReg(slot, lane int, v uint64) { w.Regs[slot*WarpSize+lane] = v }

// StepInfo describes one executed warp instruction; the timing model turns
// this into pipeline and memory-system events.
type StepInfo struct {
	PC         int
	Instr      *ptx.Instr
	ActiveMask uint32
	IsMem      bool
	IsStore    bool
	IsAtomic   bool
	Space      ptx.Space
	AccSize    int // bytes accessed per lane (vector width included)
	Addrs      [WarpSize]uint64
	Barrier    bool
	WarpDone   bool
}

// linearThread returns the linear thread id of (warp, lane).
func linearThread(w *Warp, lane int) int { return w.ID*WarpSize + lane }

func (m *Machine) sregValue(c *CTA, w *Warp, lane int, s ptx.SReg) uint64 {
	g := c.Grid
	bx, by := g.BlockDim.X, g.BlockDim.Y
	if bx == 0 {
		bx = 1
	}
	if by == 0 {
		by = 1
	}
	lin := linearThread(w, lane)
	gx, gy := g.GridDim.X, g.GridDim.Y
	if gx == 0 {
		gx = 1
	}
	if gy == 0 {
		gy = 1
	}
	switch s {
	case ptx.SRegTidX:
		return uint64(lin % bx)
	case ptx.SRegTidY:
		return uint64((lin / bx) % by)
	case ptx.SRegTidZ:
		return uint64(lin / (bx * by))
	case ptx.SRegNtidX:
		return uint64(bx)
	case ptx.SRegNtidY:
		return uint64(by)
	case ptx.SRegNtidZ:
		z := g.BlockDim.Z
		if z == 0 {
			z = 1
		}
		return uint64(z)
	case ptx.SRegCtaidX:
		return uint64(c.Index % gx)
	case ptx.SRegCtaidY:
		return uint64((c.Index / gx) % gy)
	case ptx.SRegCtaidZ:
		return uint64(c.Index / (gx * gy))
	case ptx.SRegNctaidX:
		return uint64(gx)
	case ptx.SRegNctaidY:
		return uint64(gy)
	case ptx.SRegNctaidZ:
		z := g.GridDim.Z
		if z == 0 {
			z = 1
		}
		return uint64(z)
	case ptx.SRegLaneID:
		return uint64(lane)
	case ptx.SRegWarpID:
		return uint64(w.ID)
	case ptx.SRegClock:
		return w.InstrCount
	}
	return 0
}

// immValue converts an immediate operand to raw bits of type t. Float
// immediates are canonically stored as f64 bits by the parser.
func immValue(o *ptx.Operand, t ptx.Type) uint64 {
	if !o.FloatImm {
		return o.Imm
	}
	f := bitsF64(o.Imm)
	switch t {
	case ptx.F16:
		return uint64(F32ToHalf(float32(f)))
	case ptx.F32:
		return f32bits(float32(f))
	case ptx.F64:
		return o.Imm
	default:
		return uint64(int64(f))
	}
}

// symAddress resolves a bare symbol operand (shared/local variable name)
// to its windowed generic address.
func (m *Machine) symAddress(k *ptx.Kernel, sym string) (uint64, error) {
	for _, v := range k.SharedVars {
		if v.Name == sym {
			return device.SharedWindowBase + uint64(v.Offset), nil
		}
	}
	for _, v := range k.LocalVars {
		if v.Name == sym {
			return device.LocalWindowBase + uint64(v.Offset), nil
		}
	}
	return 0, fmt.Errorf("exec: unknown symbol %q in kernel %s", sym, k.Name)
}

// readOperand fetches one scalar source operand for a lane.
func (m *Machine) readOperand(c *CTA, w *Warp, lane int, o *ptx.Operand, t ptx.Type) (uint64, error) {
	switch o.Kind {
	case ptx.OperandReg:
		return w.Reg(o.Reg, lane), nil
	case ptx.OperandSReg:
		return m.sregValue(c, w, lane, o.SReg), nil
	case ptx.OperandImm:
		return immValue(o, t), nil
	case ptx.OperandSym:
		return m.symAddress(c.Grid.Kernel, o.Sym)
	}
	return 0, fmt.Errorf("exec: unsupported source operand kind %d", o.Kind)
}

// classifySpace resolves the effective space of a generic address.
func classifySpace(space ptx.Space, addr uint64) ptx.Space {
	if space != ptx.SpaceGeneric && space != ptx.SpaceNone {
		return space
	}
	switch {
	case device.InSharedWindow(addr):
		return ptx.SpaceShared
	case device.InLocalWindow(addr):
		return ptx.SpaceLocal
	default:
		return ptx.SpaceGlobal
	}
}

func (m *Machine) loadBytes(c *CTA, w *Warp, lane int, space ptx.Space, addr uint64, buf []byte) error {
	switch classifySpace(space, addr) {
	case ptx.SpaceShared:
		off := addr
		if device.InSharedWindow(addr) {
			off = addr - device.SharedWindowBase
		}
		if int(off)+len(buf) > len(c.Shared) {
			return fmt.Errorf("exec: shared load out of bounds: off %d size %d (smem %d)", off, len(buf), len(c.Shared))
		}
		copy(buf, c.Shared[off:])
	case ptx.SpaceLocal:
		off := addr
		if device.InLocalWindow(addr) {
			off = addr - device.LocalWindowBase
		}
		lm := w.Locals[lane]
		if int(off)+len(buf) > len(lm) {
			return fmt.Errorf("exec: local load out of bounds: off %d size %d (lmem %d)", off, len(buf), len(lm))
		}
		copy(buf, lm[off:])
	case ptx.SpaceParam:
		p := c.Grid.Params
		if int(addr)+len(buf) > len(p) {
			return fmt.Errorf("exec: param load out of bounds: off %d size %d (params %d)", addr, len(buf), len(p))
		}
		copy(buf, p[addr:])
	default: // global, const
		m.Mem.Read(addr, buf)
		if m.rec != nil {
			m.rec.recordRead(addr, buf)
		}
	}
	return nil
}

func (m *Machine) storeBytes(c *CTA, w *Warp, lane int, space ptx.Space, addr uint64, buf []byte) error {
	switch classifySpace(space, addr) {
	case ptx.SpaceShared:
		off := addr
		if device.InSharedWindow(addr) {
			off = addr - device.SharedWindowBase
		}
		if int(off)+len(buf) > len(c.Shared) {
			return fmt.Errorf("exec: shared store out of bounds: off %d size %d (smem %d)", off, len(buf), len(c.Shared))
		}
		copy(c.Shared[off:], buf)
	case ptx.SpaceLocal:
		off := addr
		if device.InLocalWindow(addr) {
			off = addr - device.LocalWindowBase
		}
		lm := w.Locals[lane]
		if int(off)+len(buf) > len(lm) {
			return fmt.Errorf("exec: local store out of bounds: off %d size %d (lmem %d)", off, len(buf), len(lm))
		}
		copy(lm[off:], buf)
	case ptx.SpaceParam:
		return fmt.Errorf("exec: store to parameter space")
	default:
		if m.rec != nil {
			m.rec.recordWrite(addr, buf)
		}
		m.Mem.Write(addr, buf)
	}
	return nil
}

// memAddress computes the effective address of a memory operand for a lane.
// For ld.param with a symbol base, the address is the parameter offset.
func (m *Machine) memAddress(c *CTA, w *Warp, lane int, in *ptx.Instr, o *ptx.Operand) (uint64, ptx.Space, error) {
	space := in.Space
	if o.Base >= 0 {
		return uint64(int64(w.Reg(o.Base, lane)) + o.Offset), space, nil
	}
	// Symbol base: parameter name or shared/local variable.
	k := c.Grid.Kernel
	if p := k.ParamByName(o.BaseSym); p != nil {
		return uint64(int64(p.Offset) + o.Offset), ptx.SpaceParam, nil
	}
	base, err := m.symAddress(k, o.BaseSym)
	if err != nil {
		return 0, space, err
	}
	return uint64(int64(base) + o.Offset), space, nil
}
