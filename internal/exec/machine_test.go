package exec

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/ptx"
)

// testEnv bundles a machine with a memory image for kernel tests.
type testEnv struct {
	mem   *device.Memory
	alloc *device.Allocator
	m     *Machine
}

func newEnv(t *testing.T, bugs BugSet) *testEnv {
	t.Helper()
	mem := device.NewMemory()
	return &testEnv{
		mem:   mem,
		alloc: device.NewAllocator(),
		m:     NewMachine(Config{Bugs: bugs}, mem, device.NewTextureRegistry()),
	}
}

func (e *testEnv) allocF32(t *testing.T, vals []float32) uint64 {
	t.Helper()
	addr, err := e.alloc.Alloc(uint64(4 * len(vals)))
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	e.mem.Write(addr, buf)
	return addr
}

func (e *testEnv) allocU32(t *testing.T, vals []uint32) uint64 {
	t.Helper()
	addr, err := e.alloc.Alloc(uint64(4 * len(vals)))
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	e.mem.Write(addr, buf)
	return addr
}

func (e *testEnv) readF32(n int, addr uint64) []float32 {
	buf := make([]byte, 4*n)
	e.mem.Read(addr, buf)
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out
}

func (e *testEnv) readU32(n int, addr uint64) []uint32 {
	buf := make([]byte, 4*n)
	e.mem.Read(addr, buf)
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return out
}

// params marshals kernel arguments: u64 pointers and u32 scalars.
func params(args ...interface{}) []byte {
	var buf []byte
	for _, a := range args {
		switch v := a.(type) {
		case uint64:
			off := (len(buf) + 7) &^ 7
			for len(buf) < off {
				buf = append(buf, 0)
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], v)
			buf = append(buf, b[:]...)
		case uint32:
			off := (len(buf) + 3) &^ 3
			for len(buf) < off {
				buf = append(buf, 0)
			}
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], v)
			buf = append(buf, b[:]...)
		case int:
			off := (len(buf) + 3) &^ 3
			for len(buf) < off {
				buf = append(buf, 0)
			}
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(v))
			buf = append(buf, b[:]...)
		case float32:
			off := (len(buf) + 3) &^ 3
			for len(buf) < off {
				buf = append(buf, 0)
			}
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			buf = append(buf, b[:]...)
		default:
			panic("params: unsupported arg type")
		}
	}
	return buf
}

func mustKernel(t *testing.T, src, name string) *ptx.Kernel {
	t.Helper()
	m, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k := m.Kernels[name]
	if k == nil {
		t.Fatalf("kernel %s not found", name)
	}
	return k
}

const vecAddSrc = `
.version 6.0
.target sm_61
.address_size 64
.visible .entry vecadd(
	.param .u64 pA, .param .u64 pB, .param .u64 pC, .param .u32 pN
)
{
	.reg .pred %p<2>;
	.reg .f32 %f<4>;
	.reg .b32 %r<6>;
	.reg .b64 %rd<8>;

	ld.param.u64 %rd1, [pA];
	ld.param.u64 %rd2, [pB];
	ld.param.u64 %rd3, [pC];
	ld.param.u32 %r1, [pN];
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mov.u32 %r4, %tid.x;
	mad.lo.s32 %r5, %r2, %r3, %r4;
	setp.ge.s32 %p1, %r5, %r1;
	@%p1 bra DONE;
	cvta.to.global.u64 %rd4, %rd1;
	mul.wide.s32 %rd5, %r5, 4;
	add.s64 %rd6, %rd4, %rd5;
	ld.global.f32 %f1, [%rd6];
	cvta.to.global.u64 %rd4, %rd2;
	add.s64 %rd7, %rd4, %rd5;
	ld.global.f32 %f2, [%rd7];
	add.f32 %f3, %f1, %f2;
	cvta.to.global.u64 %rd4, %rd3;
	add.s64 %rd6, %rd4, %rd5;
	st.global.f32 [%rd6], %f3;
DONE:
	ret;
}
`

func TestVecAdd(t *testing.T) {
	e := newEnv(t, BugSet{})
	n := 100 // not a multiple of 32: exercises the guard branch
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = float32(i)
		b[i] = float32(2 * i)
	}
	pa, pb := e.allocF32(t, a), e.allocF32(t, b)
	pc := e.allocF32(t, make([]float32, n))

	k := mustKernel(t, vecAddSrc, "vecadd")
	g, err := e.m.NewGrid(k, Dim3{X: (n + 63) / 64}, Dim3{X: 64}, params(pa, pb, pc, n), 0)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	if err := e.m.RunGrid(g); err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	got := e.readF32(n, pc)
	for i := 0; i < n; i++ {
		if got[i] != float32(3*i) {
			t.Fatalf("c[%d] = %v, want %v", i, got[i], float32(3*i))
		}
	}
	// Coverage must include the exercised paths.
	if e.m.Coverage().Count(CovKey{Op: ptx.OpAdd, T: ptx.F32}) == 0 {
		t.Error("coverage missing add.f32")
	}
}

func TestDivergenceDiamond(t *testing.T) {
	src := `
.version 6.0
.target sm_61
.visible .entry diamond(.param .u64 pOut)
{
	.reg .pred %p<2>;
	.reg .b32 %r<6>;
	.reg .b64 %rd<4>;

	mov.u32 %r1, %tid.x;
	and.b32 %r2, %r1, 1;
	setp.eq.s32 %p1, %r2, 0;
	@%p1 bra EVEN;
	mul.lo.s32 %r3, %r1, 3;
	bra JOIN;
EVEN:
	mul.lo.s32 %r3, %r1, 2;
JOIN:
	ld.param.u64 %rd1, [pOut];
	cvta.to.global.u64 %rd1, %rd1;
	mul.wide.s32 %rd2, %r1, 4;
	add.s64 %rd1, %rd1, %rd2;
	st.global.s32 [%rd1], %r3;
	ret;
}
`
	e := newEnv(t, BugSet{})
	n := 64
	out := e.allocU32(t, make([]uint32, n))
	k := mustKernel(t, src, "diamond")
	g, _ := e.m.NewGrid(k, Dim3{X: 1}, Dim3{X: n}, params(out), 0)
	if err := e.m.RunGrid(g); err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	got := e.readU32(n, out)
	for i := 0; i < n; i++ {
		want := uint32(i * 3)
		if i%2 == 0 {
			want = uint32(i * 2)
		}
		if got[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestLoopAndNestedDivergence(t *testing.T) {
	// Each thread sums k for k in [0, tid): triangular numbers, with an
	// inner conditional to stress nested divergence (odd k doubled).
	src := `
.version 6.0
.target sm_61
.visible .entry tri(.param .u64 pOut)
{
	.reg .pred %p<4>;
	.reg .b32 %r<10>;
	.reg .b64 %rd<4>;

	mov.u32 %r1, %tid.x;
	mov.u32 %r2, 0;
	mov.u32 %r3, 0;
LOOP:
	setp.ge.u32 %p1, %r2, %r1;
	@%p1 bra DONE;
	and.b32 %r4, %r2, 1;
	setp.eq.u32 %p2, %r4, 1;
	@!%p2 bra SKIP;
	add.u32 %r3, %r3, %r2;
SKIP:
	add.u32 %r3, %r3, %r2;
	add.u32 %r2, %r2, 1;
	bra LOOP;
DONE:
	ld.param.u64 %rd1, [pOut];
	cvta.to.global.u64 %rd1, %rd1;
	mul.wide.u32 %rd2, %r1, 4;
	add.s64 %rd1, %rd1, %rd2;
	st.global.u32 [%rd1], %r3;
	ret;
}
`
	e := newEnv(t, BugSet{})
	n := 32
	out := e.allocU32(t, make([]uint32, n))
	k := mustKernel(t, src, "tri")
	g, _ := e.m.NewGrid(k, Dim3{X: 1}, Dim3{X: n}, params(out), 0)
	if err := e.m.RunGrid(g); err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	got := e.readU32(n, out)
	for i := 0; i < n; i++ {
		var want uint32
		for kk := 0; kk < i; kk++ {
			want += uint32(kk)
			if kk%2 == 1 {
				want += uint32(kk)
			}
		}
		if got[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestSharedMemoryReduction(t *testing.T) {
	// Classic tree reduction over 256 elements with bar.sync.
	src := `
.version 6.0
.target sm_61
.visible .entry reduce(.param .u64 pIn, .param .u64 pOut)
{
	.reg .pred %p<3>;
	.reg .f32 %f<4>;
	.reg .b32 %r<10>;
	.reg .b64 %rd<6>;
	.shared .align 4 .b8 sdata[1024];

	mov.u32 %r1, %tid.x;
	ld.param.u64 %rd1, [pIn];
	cvta.to.global.u64 %rd1, %rd1;
	mul.wide.u32 %rd2, %r1, 4;
	add.s64 %rd3, %rd1, %rd2;
	ld.global.f32 %f1, [%rd3];
	mov.u32 %r2, sdata;
	shl.b32 %r3, %r1, 2;
	add.u32 %r4, %r2, %r3;
	st.shared.f32 [%r4], %f1;
	bar.sync 0;
	mov.u32 %r5, 128;
RLOOP:
	setp.eq.u32 %p1, %r5, 0;
	@%p1 bra REND;
	setp.ge.u32 %p2, %r1, %r5;
	@%p2 bra RSKIP;
	shl.b32 %r6, %r5, 2;
	add.u32 %r7, %r4, %r6;
	ld.shared.f32 %f2, [%r7];
	ld.shared.f32 %f1, [%r4];
	add.f32 %f1, %f1, %f2;
	st.shared.f32 [%r4], %f1;
RSKIP:
	bar.sync 0;
	shr.u32 %r5, %r5, 1;
	bra RLOOP;
REND:
	setp.ne.u32 %p1, %r1, 0;
	@%p1 bra DONE;
	ld.shared.f32 %f3, [%r4];
	ld.param.u64 %rd4, [pOut];
	cvta.to.global.u64 %rd4, %rd4;
	st.global.f32 [%rd4], %f3;
DONE:
	ret;
}
`
	e := newEnv(t, BugSet{})
	n := 256
	in := make([]float32, n)
	var want float32
	for i := range in {
		in[i] = float32(i%7) * 0.5
		want += in[i]
	}
	pin := e.allocF32(t, in)
	pout := e.allocF32(t, []float32{0})
	k := mustKernel(t, src, "reduce")
	g, _ := e.m.NewGrid(k, Dim3{X: 1}, Dim3{X: n}, params(pin, pout), 0)
	if err := e.m.RunGrid(g); err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	got := e.readF32(1, pout)[0]
	if math.Abs(float64(got-want)) > 1e-3 {
		t.Fatalf("reduction = %v, want %v", got, want)
	}
}

func TestBarrierInDivergentFlowRejected(t *testing.T) {
	src := `
.version 6.0
.target sm_61
.visible .entry badbar()
{
	.reg .pred %p<2>;
	.reg .b32 %r<4>;
	mov.u32 %r1, %tid.x;
	setp.lt.u32 %p1, %r1, 16;
	@%p1 bra THEN;
	bra DONE;
THEN:
	bar.sync 0;
DONE:
	ret;
}
`
	e := newEnv(t, BugSet{})
	k := mustKernel(t, src, "badbar")
	g, _ := e.m.NewGrid(k, Dim3{X: 1}, Dim3{X: 32}, nil, 0)
	if err := e.m.RunGrid(g); err == nil {
		t.Fatal("expected divergent-barrier error, got nil")
	}
}

func TestAtomicsGlobal(t *testing.T) {
	src := `
.version 6.0
.target sm_61
.visible .entry hist(.param .u64 pOut)
{
	.reg .b32 %r<6>;
	.reg .b64 %rd<4>;
	mov.u32 %r1, %tid.x;
	and.b32 %r2, %r1, 3;
	ld.param.u64 %rd1, [pOut];
	cvta.to.global.u64 %rd1, %rd1;
	mul.wide.u32 %rd2, %r2, 4;
	add.s64 %rd3, %rd1, %rd2;
	atom.global.add.u32 %r3, [%rd3], 1;
	ret;
}
`
	e := newEnv(t, BugSet{})
	out := e.allocU32(t, make([]uint32, 4))
	k := mustKernel(t, src, "hist")
	g, _ := e.m.NewGrid(k, Dim3{X: 2}, Dim3{X: 64}, params(out), 0)
	if err := e.m.RunGrid(g); err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	got := e.readU32(4, out)
	for i, v := range got {
		if v != 32 {
			t.Errorf("bin %d = %d, want 32", i, v)
		}
	}
}

func TestTextureFetch(t *testing.T) {
	src := `
.version 6.0
.target sm_61
.global .texref mytex;
.visible .entry texk(.param .u64 pOut)
{
	.reg .f32 %f<6>;
	.reg .b32 %r<4>;
	.reg .b64 %rd<4>;
	mov.u32 %r1, %tid.x;
	tex.1d.v4.f32.s32 {%f1, %f2, %f3, %f4}, [mytex, {%r1}];
	ld.param.u64 %rd1, [pOut];
	cvta.to.global.u64 %rd1, %rd1;
	mul.wide.u32 %rd2, %r1, 4;
	add.s64 %rd3, %rd1, %rd2;
	st.global.f32 [%rd3], %f1;
	ret;
}
`
	e := newEnv(t, BugSet{})
	arr := device.NewCudaArray(32, 1, 1)
	for i := range arr.Data {
		arr.Data[i] = float32(i) * 1.5
	}
	ref := &device.TexRef{}
	e.m.Tex.RegisterTexture("mytex", ref)
	if err := e.m.Tex.BindTextureToArray(ref, arr, device.TextureInfo{Format: "f32"}, device.TextureReferenceAttr{}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	out := e.allocF32(t, make([]float32, 32))
	k := mustKernel(t, src, "texk")
	g, _ := e.m.NewGrid(k, Dim3{X: 1}, Dim3{X: 32}, params(out), 0)
	if err := e.m.RunGrid(g); err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	got := e.readF32(32, out)
	for i := range got {
		if got[i] != float32(i)*1.5 {
			t.Fatalf("tex[%d] = %v, want %v", i, got[i], float32(i)*1.5)
		}
	}
}

// remTestSrc computes out[i] = a[i] % b[i] with the given type specifier.
const remTestSrc = `
.version 6.0
.target sm_61
.visible .entry remk(.param .u64 pA, .param .u64 pB, .param .u64 pOut)
{
	.reg .b32 %r<8>;
	.reg .b64 %rd<8>;
	mov.u32 %r1, %tid.x;
	ld.param.u64 %rd1, [pA];
	ld.param.u64 %rd2, [pB];
	ld.param.u64 %rd3, [pOut];
	cvta.to.global.u64 %rd1, %rd1;
	cvta.to.global.u64 %rd2, %rd2;
	cvta.to.global.u64 %rd3, %rd3;
	mul.wide.u32 %rd4, %r1, 4;
	add.s64 %rd5, %rd1, %rd4;
	add.s64 %rd6, %rd2, %rd4;
	add.s64 %rd7, %rd3, %rd4;
	ld.global.u32 %r2, [%rd5];
	ld.global.u32 %r3, [%rd6];
	rem.s32 %r4, %r2, %r3;
	st.global.u32 [%rd7], %r4;
	ret;
}
`

func TestRemSignedCorrect(t *testing.T) {
	e := newEnv(t, BugSet{})
	a := []uint32{uint32(0x80000000), 100, uint32(^uint32(6) + 1), 7} // -2^31, 100, -7, 7
	b := []uint32{7, 30, 3, uint32(^uint32(2) + 1)}                   // 7, 30, 3, -3
	pa, pb := e.allocU32(t, a), e.allocU32(t, b)
	po := e.allocU32(t, make([]uint32, 4))
	k := mustKernel(t, remTestSrc, "remk")
	g, _ := e.m.NewGrid(k, Dim3{X: 1}, Dim3{X: 4}, params(pa, pb, po), 0)
	if err := e.m.RunGrid(g); err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	got := e.readU32(4, po)
	for i := range a {
		want := uint32(int32(a[i]) % int32(b[i]))
		if got[i] != want {
			t.Errorf("rem.s32(%d, %d) = %d, want %d", int32(a[i]), int32(b[i]), int32(got[i]), int32(want))
		}
	}
}

func TestRemBugInjection(t *testing.T) {
	// With the paper's original bug injected, signed remainders of negative
	// inputs are computed as u64 remainders and come out wrong.
	e := newEnv(t, BugSet{RemU64: true})
	a := []uint32{uint32(^uint32(6) + 1)} // -7
	b := []uint32{3}
	pa, pb := e.allocU32(t, a), e.allocU32(t, b)
	po := e.allocU32(t, make([]uint32, 1))
	k := mustKernel(t, remTestSrc, "remk")
	g, _ := e.m.NewGrid(k, Dim3{X: 1}, Dim3{X: 1}, params(pa, pb, po), 0)
	if err := e.m.RunGrid(g); err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	got := int32(e.readU32(1, po)[0])
	correct := int32(-7) % 3
	if got == correct {
		t.Fatalf("bug injection had no effect: got the correct %d", got)
	}
}

func TestPartialWarpAndMultiDim(t *testing.T) {
	// 2D block 5x3 (15 threads, partial warp), 2x2 grid: writes
	// out[gy*W+gx] = gy*W+gx computed from tid/ctaid special registers.
	src := `
.version 6.0
.target sm_61
.visible .entry idx2d(.param .u64 pOut, .param .u32 pW)
{
	.reg .b32 %r<12>;
	.reg .b64 %rd<4>;
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %tid.y;
	mov.u32 %r3, %ctaid.x;
	mov.u32 %r4, %ctaid.y;
	mov.u32 %r5, %ntid.x;
	mov.u32 %r6, %ntid.y;
	mad.lo.s32 %r7, %r3, %r5, %r1;
	mad.lo.s32 %r8, %r4, %r6, %r2;
	ld.param.u32 %r9, [pW];
	mad.lo.s32 %r10, %r8, %r9, %r7;
	ld.param.u64 %rd1, [pOut];
	cvta.to.global.u64 %rd1, %rd1;
	mul.wide.s32 %rd2, %r10, 4;
	add.s64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3], %r10;
	ret;
}
`
	e := newEnv(t, BugSet{})
	W, H := 10, 6
	out := e.allocU32(t, make([]uint32, W*H))
	k := mustKernel(t, src, "idx2d")
	g, _ := e.m.NewGrid(k, Dim3{X: 2, Y: 2}, Dim3{X: 5, Y: 3}, params(out, W), 0)
	if err := e.m.RunGrid(g); err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	got := e.readU32(W*H, out)
	for i := range got {
		if got[i] != uint32(i) {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], i)
		}
	}
}

func TestPredicatedExecution(t *testing.T) {
	// selp and guarded instructions (no branch): out = tid odd ? -tid : tid
	src := `
.version 6.0
.target sm_61
.visible .entry predk(.param .u64 pOut)
{
	.reg .pred %p<2>;
	.reg .b32 %r<8>;
	.reg .b64 %rd<4>;
	mov.u32 %r1, %tid.x;
	and.b32 %r2, %r1, 1;
	setp.eq.u32 %p1, %r2, 1;
	neg.s32 %r3, %r1;
	selp.b32 %r4, %r3, %r1, %p1;
	ld.param.u64 %rd1, [pOut];
	cvta.to.global.u64 %rd1, %rd1;
	mul.wide.u32 %rd2, %r1, 4;
	add.s64 %rd3, %rd1, %rd2;
	st.global.s32 [%rd3], %r4;
	@%p1 st.global.s32 [%rd3], %r4;
	ret;
}
`
	e := newEnv(t, BugSet{})
	out := e.allocU32(t, make([]uint32, 32))
	k := mustKernel(t, src, "predk")
	g, _ := e.m.NewGrid(k, Dim3{X: 1}, Dim3{X: 32}, params(out), 0)
	if err := e.m.RunGrid(g); err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	got := e.readU32(32, out)
	for i := range got {
		want := int32(i)
		if i%2 == 1 {
			want = -want
		}
		if int32(got[i]) != want {
			t.Fatalf("out[%d] = %d, want %d", i, int32(got[i]), want)
		}
	}
}

func TestVectorLoadStoreFloat2(t *testing.T) {
	// The FFT kernels use float2 (ld.global.v2.f32); swap re/im parts.
	src := `
.version 6.0
.target sm_61
.visible .entry swap2(.param .u64 pIn, .param .u64 pOut)
{
	.reg .f32 %f<4>;
	.reg .b32 %r<4>;
	.reg .b64 %rd<6>;
	mov.u32 %r1, %tid.x;
	ld.param.u64 %rd1, [pIn];
	ld.param.u64 %rd2, [pOut];
	cvta.to.global.u64 %rd1, %rd1;
	cvta.to.global.u64 %rd2, %rd2;
	mul.wide.u32 %rd3, %r1, 8;
	add.s64 %rd4, %rd1, %rd3;
	add.s64 %rd5, %rd2, %rd3;
	ld.global.v2.f32 {%f1, %f2}, [%rd4];
	st.global.v2.f32 [%rd5], {%f2, %f1};
	ret;
}
`
	e := newEnv(t, BugSet{})
	n := 16
	in := make([]float32, 2*n)
	for i := range in {
		in[i] = float32(i) + 0.25
	}
	pin := e.allocF32(t, in)
	pout := e.allocF32(t, make([]float32, 2*n))
	k := mustKernel(t, src, "swap2")
	g, _ := e.m.NewGrid(k, Dim3{X: 1}, Dim3{X: n}, params(pin, pout), 0)
	if err := e.m.RunGrid(g); err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	got := e.readF32(2*n, pout)
	for i := 0; i < n; i++ {
		if got[2*i] != in[2*i+1] || got[2*i+1] != in[2*i] {
			t.Fatalf("pair %d = (%v,%v), want (%v,%v)", i, got[2*i], got[2*i+1], in[2*i+1], in[2*i])
		}
	}
}

func TestBrevKernel(t *testing.T) {
	src := `
.version 6.0
.target sm_61
.visible .entry brevk(.param .u64 pOut)
{
	.reg .b32 %r<4>;
	.reg .b64 %rd<4>;
	mov.u32 %r1, %tid.x;
	brev.b32 %r2, %r1;
	ld.param.u64 %rd1, [pOut];
	cvta.to.global.u64 %rd1, %rd1;
	mul.wide.u32 %rd2, %r1, 4;
	add.s64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3], %r2;
	ret;
}
`
	e := newEnv(t, BugSet{})
	out := e.allocU32(t, make([]uint32, 32))
	k := mustKernel(t, src, "brevk")
	g, _ := e.m.NewGrid(k, Dim3{X: 1}, Dim3{X: 32}, params(out), 0)
	if err := e.m.RunGrid(g); err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	got := e.readU32(32, out)
	for i := range got {
		var want uint32
		x := uint32(i)
		for b := 0; b < 32; b++ {
			want = want<<1 | (x & 1)
			x >>= 1
		}
		if got[i] != want {
			t.Fatalf("brev(%d) = %#x, want %#x", i, got[i], want)
		}
	}
}
