package exec

import (
	"fmt"

	"repro/internal/ptx"
)

// StepWarp executes exactly one warp instruction (the instruction at the
// top of the warp's SIMT stack) and returns what happened. It is the
// single execution entry point for both the fast functional mode and the
// cycle-level timing model.
func (m *Machine) StepWarp(c *CTA, w *Warp) (StepInfo, error) {
	return m.StepWarpCov(c, w, m.cov)
}

// StepWarpCov is StepWarp with an explicit coverage sink. Concurrent
// callers stepping disjoint CTAs (the parallel timing engine) pass
// per-worker Coverage shards so the shared machine-level counters are
// never written from two goroutines; shards are merged back with
// Coverage.Merge at kernel boundaries. A nil cov disables coverage
// recording.
func (m *Machine) StepWarpCov(c *CTA, w *Warp, cov *Coverage) (StepInfo, error) {
	var info StepInfo
	if w.Done {
		return info, fmt.Errorf("exec: step of retired warp %d", w.ID)
	}
	if w.AtBarrier {
		return info, fmt.Errorf("exec: step of warp %d blocked at barrier", w.ID)
	}

	// Pop reconverged entries.
	for len(w.Stack) > 1 {
		top := &w.Stack[len(w.Stack)-1]
		if top.PC == top.RPC || top.Mask == 0 {
			w.Stack = w.Stack[:len(w.Stack)-1]
			continue
		}
		break
	}
	top := &w.Stack[len(w.Stack)-1]
	if top.Mask == 0 {
		w.Done = true
		info.WarpDone = true
		return info, nil
	}

	k := c.Grid.Kernel
	if top.PC >= len(k.Instrs) {
		// Fell off the end of the kernel: implicit ret for all lanes.
		m.retireLanes(w, top.Mask)
		info.WarpDone = w.Done
		return info, nil
	}

	in := &k.Instrs[top.PC]
	info.PC = top.PC
	info.Instr = in

	// Guard predicate: per-lane execution mask.
	execMask := top.Mask
	if in.PredReg >= 0 {
		var pm uint32
		for l := 0; l < WarpSize; l++ {
			if top.Mask&(1<<l) == 0 {
				continue
			}
			p := w.Reg(in.PredReg, l) != 0
			if p != in.PredNeg {
				pm |= 1 << l
			}
		}
		execMask = pm
	}
	info.ActiveMask = execMask
	w.InstrCount++
	if cov != nil {
		cov.Note(in, execMask)
	}

	switch in.Op {
	case ptx.OpBra:
		m.stepBranch(w, top, in, execMask)
		return info, nil

	case ptx.OpRet, ptx.OpExit:
		if execMask == top.Mask {
			m.retireLanes(w, execMask)
		} else {
			m.retireLanes(w, execMask)
			if !w.Done {
				nt := &w.Stack[len(w.Stack)-1]
				if nt.PC == in.PC { // surviving lanes continue past the guard
					nt.PC++
				}
			}
		}
		info.WarpDone = w.Done
		return info, nil

	case ptx.OpBar:
		if len(w.Stack) != 1 {
			return info, fmt.Errorf("exec: kernel %s pc %d: bar.sync in divergent control flow", k.Name, in.PC)
		}
		w.AtBarrier = true
		top.PC++
		info.Barrier = true
		return info, nil

	case ptx.OpMembar:
		top.PC++
		return info, nil

	case ptx.OpLd:
		if err := m.stepLoad(c, w, in, execMask, &info); err != nil {
			return info, err
		}
	case ptx.OpSt:
		if err := m.stepStore(c, w, in, execMask, &info); err != nil {
			return info, err
		}
	case ptx.OpAtom:
		if err := m.stepAtom(c, w, in, execMask, &info); err != nil {
			return info, err
		}
	case ptx.OpTex:
		if err := m.stepTex(c, w, in, execMask, &info); err != nil {
			return info, err
		}
	default:
		if err := m.stepALU(c, w, in, execMask); err != nil {
			return info, err
		}
	}
	top.PC++
	return info, nil
}

// PeekWarp returns the instruction the warp will execute next, after
// popping any reconverged stack entries (idempotent bookkeeping). It
// returns nil when the warp has retired or will retire on its next step.
// The timing model uses this to consult the scoreboard before issue.
func (m *Machine) PeekWarp(c *CTA, w *Warp) *ptx.Instr {
	if w.Done {
		return nil
	}
	for len(w.Stack) > 1 {
		top := &w.Stack[len(w.Stack)-1]
		if top.PC == top.RPC || top.Mask == 0 {
			w.Stack = w.Stack[:len(w.Stack)-1]
			continue
		}
		break
	}
	top := &w.Stack[len(w.Stack)-1]
	if top.Mask == 0 {
		return nil
	}
	k := c.Grid.Kernel
	if top.PC >= len(k.Instrs) {
		return nil
	}
	return &k.Instrs[top.PC]
}

// retireLanes removes lanes from every stack entry and pops empty entries.
func (m *Machine) retireLanes(w *Warp, mask uint32) {
	for i := range w.Stack {
		w.Stack[i].Mask &^= mask
	}
	for len(w.Stack) > 0 && w.Stack[len(w.Stack)-1].Mask == 0 {
		w.Stack = w.Stack[:len(w.Stack)-1]
	}
	if len(w.Stack) == 0 {
		w.Done = true
	}
}

// stepBranch implements SIMT-stack branch handling with reconvergence at
// the branch's immediate post-dominator (in.RPC).
func (m *Machine) stepBranch(w *Warp, top *StackEntry, in *ptx.Instr, takenMask uint32) {
	active := top.Mask
	notTaken := active &^ takenMask
	switch {
	case notTaken == 0: // uniform taken
		top.PC = in.Target
	case takenMask == 0: // uniform not taken
		top.PC++
	default: // divergence: current entry becomes the reconvergence entry
		rpc := in.RPC
		fall := in.PC + 1
		top.PC = rpc
		w.Stack = append(w.Stack,
			StackEntry{PC: fall, RPC: rpc, Mask: notTaken},
			StackEntry{PC: in.Target, RPC: rpc, Mask: takenMask},
		)
	}
}

func (m *Machine) stepALU(c *CTA, w *Warp, in *ptx.Instr, execMask uint32) error {
	if len(in.Dst) == 0 {
		return fmt.Errorf("exec: %q: missing destination", in.Raw)
	}
	d := &in.Dst[0]
	// mov of a vector (pack/unpack) is unsupported; scalar only.
	if d.Kind != ptx.OperandReg {
		return fmt.Errorf("exec: %q: non-register destination", in.Raw)
	}
	srcT := in.T
	if in.Op == ptx.OpCvt && in.T2 != ptx.TypeNone {
		srcT = in.T2
	}
	var s [4]uint64
	for l := 0; l < WarpSize; l++ {
		if execMask&(1<<l) == 0 {
			continue
		}
		for i := range in.Src {
			st := srcT
			if in.Op == ptx.OpSelp && i == 2 {
				st = ptx.Pred
			}
			if in.Op == ptx.OpSlct && i == 2 {
				st = in.T2
			}
			v, err := m.readOperand(c, w, l, &in.Src[i], st)
			if err != nil {
				return fmt.Errorf("exec: %q: %w", in.Raw, err)
			}
			s[i] = v
		}
		r, err := m.evalALU(in, s)
		if err != nil {
			return err
		}
		w.SetReg(d.Reg, l, r)
	}
	return nil
}

func (m *Machine) stepLoad(c *CTA, w *Warp, in *ptx.Instr, execMask uint32, info *StepInfo) error {
	src := &in.Src[0]
	if src.Kind != ptx.OperandMem {
		return fmt.Errorf("exec: %q: load source is not a memory operand", in.Raw)
	}
	elemSize := in.T.Size()
	total := elemSize * in.Vec
	info.IsMem = true
	info.AccSize = total
	var buf [32]byte
	for l := 0; l < WarpSize; l++ {
		if execMask&(1<<l) == 0 {
			continue
		}
		addr, space, err := m.memAddress(c, w, l, in, src)
		if err != nil {
			return fmt.Errorf("exec: %q: %w", in.Raw, err)
		}
		if info.Space == ptx.SpaceNone {
			info.Space = classifySpace(space, addr)
		}
		info.Addrs[l] = addr
		if err := m.loadBytes(c, w, l, space, addr, buf[:total]); err != nil {
			return fmt.Errorf("exec: %q: %w", in.Raw, err)
		}
		if in.Vec == 1 {
			v := leLoad(buf[:elemSize])
			// Loads do not sign-extend beyond the register width; widening
			// is handled by the type: ld.s16 into a 32-bit register
			// sign-extends per PTX semantics.
			w.SetReg(in.Dst[0].Reg, l, truncToType(v, in.T))
		} else {
			for e := 0; e < in.Vec; e++ {
				v := leLoad(buf[e*elemSize : (e+1)*elemSize])
				w.SetReg(in.Dst[0].Elems[e].Reg, l, truncToType(v, in.T))
			}
		}
	}
	return nil
}

func (m *Machine) stepStore(c *CTA, w *Warp, in *ptx.Instr, execMask uint32, info *StepInfo) error {
	addrOp := &in.Src[0]
	valOp := &in.Src[1]
	if addrOp.Kind != ptx.OperandMem {
		return fmt.Errorf("exec: %q: store target is not a memory operand", in.Raw)
	}
	elemSize := in.T.Size()
	total := elemSize * in.Vec
	info.IsMem = true
	info.IsStore = true
	info.AccSize = total
	var buf [32]byte
	for l := 0; l < WarpSize; l++ {
		if execMask&(1<<l) == 0 {
			continue
		}
		addr, space, err := m.memAddress(c, w, l, in, addrOp)
		if err != nil {
			return fmt.Errorf("exec: %q: %w", in.Raw, err)
		}
		if info.Space == ptx.SpaceNone {
			info.Space = classifySpace(space, addr)
		}
		info.Addrs[l] = addr
		if in.Vec == 1 {
			v, err := m.readOperand(c, w, l, valOp, in.T)
			if err != nil {
				return fmt.Errorf("exec: %q: %w", in.Raw, err)
			}
			leStore(buf[:elemSize], v)
		} else {
			for e := 0; e < in.Vec; e++ {
				v, err := m.readOperand(c, w, l, &valOp.Elems[e], in.T)
				if err != nil {
					return fmt.Errorf("exec: %q: %w", in.Raw, err)
				}
				leStore(buf[e*elemSize:(e+1)*elemSize], v)
			}
		}
		if err := m.storeBytes(c, w, l, space, addr, buf[:total]); err != nil {
			return fmt.Errorf("exec: %q: %w", in.Raw, err)
		}
	}
	return nil
}

func (m *Machine) stepAtom(c *CTA, w *Warp, in *ptx.Instr, execMask uint32, info *StepInfo) error {
	addrOp := &in.Src[0]
	size := in.T.Size()
	info.IsMem = true
	info.IsAtomic = true
	info.AccSize = size
	var buf [8]byte
	for l := 0; l < WarpSize; l++ {
		if execMask&(1<<l) == 0 {
			continue
		}
		addr, space, err := m.memAddress(c, w, l, in, addrOp)
		if err != nil {
			return fmt.Errorf("exec: %q: %w", in.Raw, err)
		}
		info.Addrs[l] = addr
		if info.Space == ptx.SpaceNone {
			info.Space = classifySpace(space, addr)
		}
		if err := m.loadBytes(c, w, l, space, addr, buf[:size]); err != nil {
			return err
		}
		old := truncToType(leLoad(buf[:size]), in.T)
		b, err := m.readOperand(c, w, l, &in.Src[1], in.T)
		if err != nil {
			return err
		}
		var newV uint64
		switch in.Atom {
		case ptx.AtomAdd:
			if in.T.Float() {
				if in.T == ptx.F64 {
					newV = f64bits(bitsF64(old) + bitsF64(b))
				} else {
					newV = f32bits(bitsF32(old) + bitsF32(b))
				}
			} else {
				newV = truncToType(uint64(int64(old)+int64(b)), in.T)
			}
		case ptx.AtomMin, ptx.AtomMax:
			v, err := minMaxOp(in, in.T, old, b, in.Atom == ptx.AtomMin)
			if err != nil {
				return err
			}
			newV = v
		case ptx.AtomExch:
			newV = b
		case ptx.AtomAnd:
			newV = old & b
		case ptx.AtomOr:
			newV = old | b
		case ptx.AtomXor:
			newV = old ^ b
		case ptx.AtomCas:
			cVal, err := m.readOperand(c, w, l, &in.Src[2], in.T)
			if err != nil {
				return err
			}
			if old == truncToType(b, in.T) {
				newV = cVal
			} else {
				newV = old
			}
		default:
			return fmt.Errorf("exec: %q: unsupported atomic op", in.Raw)
		}
		leStore(buf[:size], newV)
		if err := m.storeBytes(c, w, l, space, addr, buf[:size]); err != nil {
			return err
		}
		if len(in.Dst) > 0 && in.Dst[0].Kind == ptx.OperandReg {
			w.SetReg(in.Dst[0].Reg, l, old)
		}
	}
	return nil
}

func (m *Machine) stepTex(c *CTA, w *Warp, in *ptx.Instr, execMask uint32, info *StepInfo) error {
	if m.Tex == nil {
		return fmt.Errorf("exec: %q: no texture registry attached", in.Raw)
	}
	name := in.Src[0].Sym
	arr, err := m.Tex.LookupByName(name)
	if err != nil {
		return fmt.Errorf("exec: %q: %w", in.Raw, err)
	}
	if m.rec != nil {
		// texture arrays live outside the recorded device memory, so a
		// capture that reads one cannot be validated later
		m.rec.unsound = true
	}
	coord := &in.Src[1]
	dst := &in.Dst[0]
	info.IsMem = true
	info.Space = ptx.SpaceTex
	info.AccSize = 16
	for l := 0; l < WarpSize; l++ {
		if execMask&(1<<l) == 0 {
			continue
		}
		var x, y int
		switch coord.Kind {
		case ptx.OperandVec:
			v0, err := m.readOperand(c, w, l, &coord.Elems[0], ptx.S32)
			if err != nil {
				return err
			}
			x = int(int32(v0))
			if in.Geom == 2 && len(coord.Elems) > 1 {
				v1, err := m.readOperand(c, w, l, &coord.Elems[1], ptx.S32)
				if err != nil {
					return err
				}
				y = int(int32(v1))
			}
		default:
			v0, err := m.readOperand(c, w, l, coord, ptx.S32)
			if err != nil {
				return err
			}
			x = int(int32(v0))
		}
		texel := arr.Fetch(x, y)
		if dst.Kind == ptx.OperandVec {
			for e := 0; e < len(dst.Elems) && e < 4; e++ {
				w.SetReg(dst.Elems[e].Reg, l, f32bits(texel[e]))
			}
		} else {
			w.SetReg(dst.Reg, l, f32bits(texel[0]))
		}
		info.Addrs[l] = uint64(y*arr.Width+x) * 4
	}
	return nil
}

func leLoad(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func leStore(b []byte, v uint64) {
	for i := range b {
		b[i] = byte(v)
		v >>= 8
	}
}

// RunWarp executes a warp until it retires, blocks at a barrier, or the
// instruction budget is exhausted (budget < 0 means unlimited). It returns
// the number of instructions executed.
func (m *Machine) RunWarp(c *CTA, w *Warp, budget int64) (int64, error) {
	var n int64
	for !w.Done && !w.AtBarrier {
		if budget >= 0 && n >= budget {
			break
		}
		if _, err := m.StepWarp(c, w); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// RunCTA functionally executes one CTA to completion, interleaving warps
// at barrier granularity.
func (m *Machine) RunCTA(c *CTA) error {
	for {
		progressed := false
		for _, w := range c.Warps {
			if w.Done || w.AtBarrier {
				continue
			}
			n, err := m.RunWarp(c, w, -1)
			if err != nil {
				return fmt.Errorf("exec: kernel %s cta %d warp %d: %w",
					c.Grid.Kernel.Name, c.Index, w.ID, err)
			}
			if n > 0 {
				progressed = true
			}
		}
		live, waiting := 0, 0
		for _, w := range c.Warps {
			if !w.Done {
				live++
				if w.AtBarrier {
					waiting++
				}
			}
		}
		if live == 0 {
			return nil
		}
		if waiting == live {
			for _, w := range c.Warps {
				w.AtBarrier = false
			}
			progressed = true
			continue
		}
		if !progressed {
			return fmt.Errorf("exec: kernel %s cta %d deadlocked (%d live, %d at barrier)",
				c.Grid.Kernel.Name, c.Index, live, waiting)
		}
	}
}

// ReleaseBarrier clears the barrier flag on all warps if every live warp
// has arrived; it reports whether a release happened. The timing model
// uses this instead of RunCTA's inline logic.
func (c *CTA) ReleaseBarrier() bool {
	live, waiting := 0, 0
	for _, w := range c.Warps {
		if !w.Done {
			live++
			if w.AtBarrier {
				waiting++
			}
		}
	}
	if live > 0 && waiting == live {
		for _, w := range c.Warps {
			w.AtBarrier = false
		}
		return true
	}
	return false
}

// RunGrid functionally executes an entire launch, CTA by CTA. This is the
// paper's fast Functional simulation mode.
func (m *Machine) RunGrid(g *Grid) error {
	for i := 0; i < g.NumCTAs(); i++ {
		cta := g.InitCTA(i)
		if err := m.RunCTA(cta); err != nil {
			return err
		}
	}
	return nil
}
