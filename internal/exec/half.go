package exec

import "math"

// Half-precision (IEEE 754 binary16) conversion helpers. The paper added
// FP16 support to GPGPU-Sim "using an open source library"; we implement
// the conversions directly: round-to-nearest-even on narrowing, exact on
// widening, with proper subnormal, infinity and NaN handling.

// F32ToHalf converts a float32 to binary16 bits (round-to-nearest-even).
func F32ToHalf(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23)&0xFF - 127
	man := bits & 0x7FFFFF

	switch {
	case exp == 128: // Inf / NaN
		if man != 0 {
			return sign | 0x7E00 // quiet NaN
		}
		return sign | 0x7C00
	case exp > 15: // overflow -> Inf
		return sign | 0x7C00
	case exp >= -14: // normal range
		// 10-bit mantissa; round to nearest even on the dropped 13 bits.
		m := man >> 13
		rem := man & 0x1FFF
		h := sign | uint16(exp+15)<<10 | uint16(m)
		if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
			h++ // may carry into exponent; that is correct behaviour
		}
		return h
	case exp >= -25: // subnormal half (or rounds up into one)
		// value = (1.man) * 2^exp = full * 2^(exp-23); in units of the half
		// subnormal ULP (2^-24) that is full >> shift with shift = -(exp+1).
		full := man | 0x800000
		shift := uint32(-(exp + 1))
		mm := full >> shift
		rem := full & (1<<shift - 1)
		mid := uint32(1) << (shift - 1)
		half := uint16(mm)
		if rem > mid || (rem == mid && mm&1 == 1) {
			half++ // may carry into the exponent; that is correct behaviour
		}
		return sign | half
	default: // underflow -> signed zero
		return sign
	}
}

// HalfToF32 converts binary16 bits to float32 (exact).
func HalfToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1F
	man := uint32(h & 0x3FF)

	switch {
	case exp == 0x1F: // Inf / NaN
		return math.Float32frombits(sign | 0x7F800000 | man<<13)
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalise
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3FF
		return math.Float32frombits(sign | e<<23 | man<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | man<<13)
	}
}
