// Package cudnn is the cuDNN-analog deep-learning primitive library of
// this reproduction. Like the real library, it is a host-side layer that
// launches precompiled PTX kernels (internal/kernels) through the CUDA
// runtime (internal/cudart): every high-level API call typically launches
// several kernels, which is exactly the structure the paper's debugging
// methodology (§III-D) has to cope with.
package cudnn

import (
	"fmt"

	"repro/internal/cudart"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/kernels"
)

// TensorDesc describes an NCHW float32 tensor.
type TensorDesc struct{ N, C, H, W int }

// Count returns the element count.
func (d TensorDesc) Count() int { return d.N * d.C * d.H * d.W }

// FilterDesc describes a KCRS filter bank (square windows, R == S).
type FilterDesc struct{ K, C, R, S int }

// Count returns the element count.
func (d FilterDesc) Count() int { return d.K * d.C * d.R * d.S }

// ConvDesc describes a square convolution.
type ConvDesc struct {
	Pad    int
	Stride int
}

// OutDim returns the output spatial edge for input edge h, filter edge r.
func (cd ConvDesc) OutDim(h, r int) int { return (h+2*cd.Pad-r)/cd.Stride + 1 }

// PoolDesc describes square max pooling.
type PoolDesc struct {
	Window int
	Stride int
}

// LRNDesc describes cross-channel local response normalisation.
type LRNDesc struct {
	N     int // window
	K     float32
	Alpha float32
	Beta  float32
}

// Conv algorithm enums mirror the cuDNN names the paper sweeps in §V-A.
type (
	// ConvFwdAlgo selects the forward convolution algorithm.
	ConvFwdAlgo int
	// ConvBwdDataAlgo selects the backward-data algorithm.
	ConvBwdDataAlgo int
	// ConvBwdFilterAlgo selects the backward-filter algorithm.
	ConvBwdFilterAlgo int
)

// Forward algorithms (paper §V-A list).
const (
	FwdAlgoImplicitGemm ConvFwdAlgo = iota
	FwdAlgoGemm
	FwdAlgoFFT
	FwdAlgoFFTTiling
	FwdAlgoWinograd
	FwdAlgoWinogradNonfused
)

// Backward-data algorithms.
const (
	BwdDataAlgo0 ConvBwdDataAlgo = iota
	BwdDataAlgo1
	BwdDataFFTTiling
	BwdDataWinograd
	BwdDataWinogradNonfused
)

// Backward-filter algorithms.
const (
	BwdFilterAlgo0 ConvBwdFilterAlgo = iota
	BwdFilterAlgo1
	BwdFilterAlgo3
	BwdFilterFFT
	BwdFilterFFTTiling
	BwdFilterWinogradNonfused
)

func (a ConvFwdAlgo) String() string {
	return [...]string{"implicit_gemm", "gemm", "fft", "fft_tiling", "winograd", "winograd_nonfused"}[a]
}

func (a ConvBwdDataAlgo) String() string {
	return [...]string{"algo0", "algo1", "fft_tiling", "winograd", "winograd_nonfused"}[a]
}

func (a ConvBwdFilterAlgo) String() string {
	return [...]string{"algo0", "algo1", "algo3", "fft", "fft_tiling", "winograd_nonfused"}[a]
}

// ErrNotSupported mirrors CUDNN_STATUS_NOT_SUPPORTED.
type ErrNotSupported struct{ Reason string }

func (e ErrNotSupported) Error() string { return "cudnn: not supported: " + e.Reason }

// Handle is a cuDNN handle bound to a runtime context. Creating a handle
// registers the library's PTX modules — the analog of statically linking
// libcudnn into the application (§III-A fix 1), with each embedded PTX
// translation unit parsed separately (fix 2).
type Handle struct {
	ctx    *cudart.Context
	stream cudart.Stream
}

// Create registers the kernel library with the context and returns a
// handle.
func Create(ctx *cudart.Context) (*Handle, error) {
	for i, src := range kernels.AllModules() {
		if _, err := ctx.RegisterModule(src); err != nil {
			return nil, fmt.Errorf("cudnn: registering library module %d: %w", i, err)
		}
	}
	return &Handle{ctx: ctx}, nil
}

// Context returns the underlying runtime context.
func (h *Handle) Context() *cudart.Context { return h.ctx }

// SetStream routes every subsequent library launch onto the given CUDA
// stream — the cudnnSetStream analog. With a timing runner installed,
// launches on a non-default stream queue in the detailed model and
// overlap with work on other streams; the zero value keeps the legacy
// device-synchronizing default stream.
func (h *Handle) SetStream(s cudart.Stream) { h.stream = s }

// Stream returns the stream the handle currently launches on.
func (h *Handle) Stream() cudart.Stream { return h.stream }

// launch launches a kernel on the handle's stream with an explicit grid.
func (h *Handle) launch(name string, grid, block exec.Dim3, p *cudart.Params) error {
	_, err := h.ctx.LaunchOnStream(h.stream, name, grid, block, p, 0)
	return err
}

// launch1D launches a kernel over n elements with the given block size.
func (h *Handle) launch1D(name string, n, block int, p *cudart.Params) error {
	if n == 0 {
		return nil
	}
	return h.launch(name, exec.Dim3{X: (n + block - 1) / block}, exec.Dim3{X: block}, p)
}

// launch2D launches with an explicit grid.y (plane/image dimension).
func (h *Handle) launch2D(name string, n, block, gy int, p *cudart.Params) error {
	if n == 0 || gy == 0 {
		return nil
	}
	return h.launch(name, exec.Dim3{X: (n + block - 1) / block, Y: gy}, exec.Dim3{X: block}, p)
}

// zero fills a float32 device range using the fill_zero kernel.
func (h *Handle) zero(addr uint64, n int) error {
	return h.launch1D("fill_zero", n, 256, cudart.NewParams().Ptr(addr).U32(uint32(n)))
}

// workspace allocates scratch device memory released by the returned func.
func (h *Handle) workspace(bytes uint64) (uint64, func(), error) {
	addr, err := h.ctx.Malloc(bytes)
	if err != nil {
		return 0, nil, err
	}
	return addr, func() { _ = h.ctx.Free(addr) }, nil
}

// AddTensor adds a per-channel bias to an NCHW tensor (cudnnAddTensor).
func (h *Handle) AddTensor(bias uint64, y uint64, yd TensorDesc) error {
	h.ctx.SetAPITag("cudnnAddTensor")
	n := yd.Count()
	p := cudart.NewParams().Ptr(y).Ptr(bias).U32(uint32(n)).U32(uint32(yd.C)).U32(uint32(yd.H * yd.W))
	return h.launch1D("add_bias", n, 256, p)
}

// ActivationForward applies ReLU (cudnnActivationForward).
func (h *Handle) ActivationForward(x, y uint64, n int) error {
	h.ctx.SetAPITag("cudnnActivationForward")
	return h.launch1D("relu_forward", n, 256, cudart.NewParams().Ptr(x).Ptr(y).U32(uint32(n)))
}

// ActivationBackward computes the ReLU input gradient.
func (h *Handle) ActivationBackward(dy, x, dx uint64, n int) error {
	h.ctx.SetAPITag("cudnnActivationBackward")
	return h.launch1D("relu_backward", n, 256,
		cudart.NewParams().Ptr(dy).Ptr(x).Ptr(dx).U32(uint32(n)))
}

// PoolingForward runs max pooling; idx receives argmax indices (u32),
// sized like the output.
func (h *Handle) PoolingForward(pd PoolDesc, x uint64, xd TensorDesc, y, idx uint64) (TensorDesc, error) {
	h.ctx.SetAPITag("cudnnPoolingForward")
	oh := (xd.H-pd.Window)/pd.Stride + 1
	ow := (xd.W-pd.Window)/pd.Stride + 1
	yd := TensorDesc{N: xd.N, C: xd.C, H: oh, W: ow}
	per := yd.C * yd.H * yd.W
	p := cudart.NewParams().Ptr(x).Ptr(y).Ptr(idx).
		U32(uint32(xd.C)).U32(uint32(xd.H)).U32(uint32(xd.W)).
		U32(uint32(pd.Window)).U32(uint32(pd.Stride)).
		U32(uint32(oh)).U32(uint32(ow))
	return yd, h.launch2D("maxpool_forward", per, 256, xd.N, p)
}

// PoolingBackward scatters dy through the recorded argmax indices.
func (h *Handle) PoolingBackward(dy, idx, dx uint64, yd TensorDesc, xCount int) error {
	h.ctx.SetAPITag("cudnnPoolingBackward")
	if err := h.zero(dx, xCount); err != nil {
		return err
	}
	n := yd.Count()
	return h.launch1D("maxpool_backward", n, 256,
		cudart.NewParams().Ptr(dy).Ptr(idx).Ptr(dx).U32(uint32(n)))
}

// LRNCrossChannelForward runs the texture-based LRN kernel per image. The
// input is rebound to the lrn_tex texture reference for every image —
// this is the rebinding pattern whose handling the paper fixed (§III-C).
func (h *Handle) LRNCrossChannelForward(ld LRNDesc, x uint64, xd TensorDesc, y uint64) error {
	h.ctx.SetAPITag("cudnnLRNCrossChannelForward")
	hw := xd.H * xd.W
	per := xd.C * hw
	ref, err := h.ctx.TexRefByName(kernels.LRNTexName)
	if err != nil {
		return err
	}
	for n := 0; n < xd.N; n++ {
		arr := device.NewCudaArray(per, 1, 1)
		h.ctx.MemcpyToArrayFromDevice(arr, x+uint64(4*n*per), per)
		if err := h.ctx.BindTextureToArray(ref, arr); err != nil {
			return err
		}
		p := cudart.NewParams().Ptr(y + uint64(4*n*per)).
			U32(uint32(xd.C)).U32(uint32(hw)).U32(uint32(ld.N)).
			F32(ld.K).F32(ld.Alpha).F32(ld.Beta)
		if err := h.launch1D("lrn_forward", per, 256, p); err != nil {
			return err
		}
	}
	return nil
}

// LRNCrossChannelBackward computes the LRN input gradient.
func (h *Handle) LRNCrossChannelBackward(ld LRNDesc, x, y, dy, dx uint64, xd TensorDesc) error {
	h.ctx.SetAPITag("cudnnLRNCrossChannelBackward")
	hw := xd.H * xd.W
	per := xd.C * hw
	for n := 0; n < xd.N; n++ {
		off := uint64(4 * n * per)
		p := cudart.NewParams().Ptr(x + off).Ptr(y + off).Ptr(dy + off).Ptr(dx + off).
			U32(uint32(xd.C)).U32(uint32(hw)).U32(uint32(ld.N)).
			F32(ld.K).F32(ld.Alpha).F32(ld.Beta)
		if err := h.launch1D("lrn_backward", per, 256, p); err != nil {
			return err
		}
	}
	return nil
}

// SoftmaxForward computes row-wise softmax (rows = n, cols = c).
func (h *Handle) SoftmaxForward(x, y uint64, rows, cols int) error {
	h.ctx.SetAPITag("cudnnSoftmaxForward")
	return h.launch("softmax_forward", exec.Dim3{X: rows}, exec.Dim3{X: 32},
		cudart.NewParams().Ptr(x).Ptr(y).U32(uint32(cols)))
}

// SoftmaxNLLBackward computes (softmax - onehot)/batch.
func (h *Handle) SoftmaxNLLBackward(y, labels, dx uint64, rows, cols int) error {
	h.ctx.SetAPITag("cudnnSoftmaxBackward")
	n := rows * cols
	return h.launch1D("softmax_nll_backward", n, 256,
		cudart.NewParams().Ptr(y).Ptr(labels).Ptr(dx).U32(uint32(cols)).U32(uint32(rows)))
}

// GemvT computes y = alpha Aᵀx + beta y (the GEMV2T FC-layer kernel).
func (h *Handle) GemvT(a, x, y uint64, rows, cols int, alpha, beta float32) error {
	h.ctx.SetAPITag("cublasSgemv")
	return h.launch1D("gemv2t", cols, 128,
		cudart.NewParams().Ptr(a).Ptr(x).Ptr(y).
			U32(uint32(rows)).U32(uint32(cols)).F32(alpha).F32(beta))
}

// Gemm computes C = alpha A B + beta C via the tiled SGEMM kernel.
func (h *Handle) Gemm(a, bm, cm uint64, m, n, k int, alpha, beta float32) error {
	h.ctx.SetAPITag("cublasSgemm")
	p := cudart.NewParams().Ptr(a).Ptr(bm).Ptr(cm).
		U32(uint32(m)).U32(uint32(n)).U32(uint32(k)).
		U32(0).U32(0).U32(0).F32(alpha).F32(beta)
	g := exec.Dim3{X: (n + 15) / 16, Y: (m + 15) / 16, Z: 1}
	return h.launch("sgemm_tiled", g, exec.Dim3{X: 16, Y: 16}, p)
}

// SGDUpdate applies w -= lr*g.
func (h *Handle) SGDUpdate(w, g uint64, n int, lr float32) error {
	h.ctx.SetAPITag("sgdUpdate")
	return h.launch1D("sgd_update", n, 256,
		cudart.NewParams().Ptr(w).Ptr(g).U32(uint32(n)).F32(lr))
}
