package cudnn_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/exec"
	"repro/internal/ref"
)

func newHandle(t *testing.T) (*cudart.Context, *cudnn.Handle) {
	t.Helper()
	ctx := cudart.NewContext(exec.BugSet{})
	h, err := cudnn.Create(ctx)
	if err != nil {
		t.Fatalf("cudnn.Create: %v", err)
	}
	return ctx, h
}

func upload(t *testing.T, ctx *cudart.Context, data []float32) uint64 {
	t.Helper()
	addr, err := ctx.Malloc(uint64(4 * len(data)))
	if err != nil {
		t.Fatal(err)
	}
	ctx.MemcpyF32HtoD(addr, data)
	return addr
}

func alloc(t *testing.T, ctx *cudart.Context, n int) uint64 {
	t.Helper()
	addr, err := ctx.Malloc(uint64(4 * n))
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

func randSlice(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32()*2 - 1
	}
	return out
}

func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// TestConvForwardAllAlgorithms checks that every forward algorithm the
// paper sweeps (§V-A) produces the reference result on a shape it
// supports.
func TestConvForwardAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type shape struct {
		xs ref.TensorShape4
		k  int
		r  int
		p  ref.ConvParams
	}
	small3x3 := shape{ref.TensorShape4{N: 2, C: 3, H: 12, W: 10}, 4, 3, ref.ConvParams{Stride: 1, Pad: 1}}
	fiveByFive := shape{ref.TensorShape4{N: 1, C: 2, H: 12, W: 12}, 3, 5, ref.ConvParams{Stride: 1, Pad: 0}}
	big := shape{ref.TensorShape4{N: 1, C: 2, H: 40, W: 36}, 3, 5, ref.ConvParams{Stride: 1, Pad: 2}}
	cases := []struct {
		algo cudnn.ConvFwdAlgo
		s    shape
		tol  float64
	}{
		{cudnn.FwdAlgoImplicitGemm, small3x3, 1e-4},
		{cudnn.FwdAlgoGemm, small3x3, 1e-4},
		{cudnn.FwdAlgoGemm, fiveByFive, 1e-4},
		{cudnn.FwdAlgoFFT, fiveByFive, 5e-3},
		{cudnn.FwdAlgoFFTTiling, big, 5e-3},
		{cudnn.FwdAlgoWinograd, small3x3, 1e-3},
		{cudnn.FwdAlgoWinogradNonfused, small3x3, 1e-3},
	}
	for _, c := range cases {
		t.Run(c.algo.String(), func(t *testing.T) {
			ctx, h := newHandle(t)
			x := randSlice(rng, c.s.xs.Count())
			w := randSlice(rng, c.s.k*c.s.xs.C*c.s.r*c.s.r)
			want, ys := ref.Conv2DForward(x, c.s.xs, w, c.s.k, c.s.r, c.s.p)
			px, pw := upload(t, ctx, x), upload(t, ctx, w)
			py := alloc(t, ctx, ys.Count())
			xd := cudnn.TensorDesc{N: c.s.xs.N, C: c.s.xs.C, H: c.s.xs.H, W: c.s.xs.W}
			fd := cudnn.FilterDesc{K: c.s.k, C: c.s.xs.C, R: c.s.r, S: c.s.r}
			cd := cudnn.ConvDesc{Pad: c.s.p.Pad, Stride: c.s.p.Stride}
			yd, err := h.ConvolutionForward(c.algo, px, xd, pw, fd, cd, py)
			if err != nil {
				t.Fatalf("forward: %v", err)
			}
			if yd.H != ys.H || yd.W != ys.W || yd.C != ys.C {
				t.Fatalf("shape mismatch: %+v vs %+v", yd, ys)
			}
			got := ctx.MemcpyF32DtoH(py, ys.Count())
			if d := maxAbsDiff(got, want); d > c.tol {
				t.Fatalf("%s: max diff %g (tol %g)", c.algo, d, c.tol)
			}
		})
	}
}

func TestConvBackwardDataAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	xs := ref.TensorShape4{N: 2, C: 3, H: 12, W: 10}
	k, r := 4, 3
	p := ref.ConvParams{Stride: 1, Pad: 1}
	oh, ow := p.ConvOut(xs.H, r), p.ConvOut(xs.W, r)
	ys := ref.TensorShape4{N: xs.N, C: k, H: oh, W: ow}
	dy := randSlice(rng, ys.Count())
	w := randSlice(rng, k*xs.C*r*r)
	want := ref.Conv2DBackwardData(dy, ys, w, xs.C, r, xs, p)

	algos := []struct {
		algo cudnn.ConvBwdDataAlgo
		tol  float64
	}{
		{cudnn.BwdDataAlgo0, 1e-4},
		{cudnn.BwdDataAlgo1, 1e-3},
		{cudnn.BwdDataFFTTiling, 5e-3},
		{cudnn.BwdDataWinograd, 1e-3},
		{cudnn.BwdDataWinogradNonfused, 1e-3},
	}
	for _, a := range algos {
		t.Run(a.algo.String(), func(t *testing.T) {
			ctx, h := newHandle(t)
			pdy, pw := upload(t, ctx, dy), upload(t, ctx, w)
			pdx := alloc(t, ctx, xs.Count())
			xd := cudnn.TensorDesc{N: xs.N, C: xs.C, H: xs.H, W: xs.W}
			fd := cudnn.FilterDesc{K: k, C: xs.C, R: r, S: r}
			yd := cudnn.TensorDesc{N: ys.N, C: ys.C, H: ys.H, W: ys.W}
			cd := cudnn.ConvDesc{Pad: p.Pad, Stride: p.Stride}
			if err := h.ConvolutionBackwardData(a.algo, pw, fd, pdy, yd, cd, pdx, xd); err != nil {
				t.Fatalf("backward data: %v", err)
			}
			got := ctx.MemcpyF32DtoH(pdx, xs.Count())
			if d := maxAbsDiff(got, want); d > a.tol {
				t.Fatalf("%s: max diff %g", a.algo, d)
			}
		})
	}
}

func TestConvBackwardFilterAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	xs := ref.TensorShape4{N: 2, C: 3, H: 12, W: 10}
	k, r := 4, 3
	p := ref.ConvParams{Stride: 1, Pad: 1}
	oh, ow := p.ConvOut(xs.H, r), p.ConvOut(xs.W, r)
	ys := ref.TensorShape4{N: xs.N, C: k, H: oh, W: ow}
	x := randSlice(rng, xs.Count())
	dy := randSlice(rng, ys.Count())
	want := ref.Conv2DBackwardFilter(x, xs, dy, ys, r, p)

	algos := []struct {
		algo cudnn.ConvBwdFilterAlgo
		tol  float64
	}{
		{cudnn.BwdFilterAlgo0, 1e-3},
		{cudnn.BwdFilterAlgo1, 1e-3},
		{cudnn.BwdFilterAlgo3, 1e-3},
		{cudnn.BwdFilterFFT, 2e-2},
		{cudnn.BwdFilterFFTTiling, 2e-2},
		{cudnn.BwdFilterWinogradNonfused, 1e-2},
	}
	for _, a := range algos {
		t.Run(a.algo.String(), func(t *testing.T) {
			ctx, h := newHandle(t)
			px, pdy := upload(t, ctx, x), upload(t, ctx, dy)
			pdw := alloc(t, ctx, k*xs.C*r*r)
			xd := cudnn.TensorDesc{N: xs.N, C: xs.C, H: xs.H, W: xs.W}
			fd := cudnn.FilterDesc{K: k, C: xs.C, R: r, S: r}
			yd := cudnn.TensorDesc{N: ys.N, C: ys.C, H: ys.H, W: ys.W}
			cd := cudnn.ConvDesc{Pad: p.Pad, Stride: p.Stride}
			if err := h.ConvolutionBackwardFilter(a.algo, px, xd, pdy, yd, cd, pdw, fd); err != nil {
				t.Fatalf("backward filter: %v", err)
			}
			got := ctx.MemcpyF32DtoH(pdw, k*xs.C*r*r)
			if d := maxAbsDiff(got, want); d > a.tol {
				t.Fatalf("%s: max diff %g", a.algo, d)
			}
		})
	}
}

func TestLayerOps(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	ctx, h := newHandle(t)

	t.Run("pooling", func(t *testing.T) {
		xs := ref.TensorShape4{N: 2, C: 2, H: 8, W: 8}
		x := randSlice(rng, xs.Count())
		wantY, wantIdx, ys := ref.MaxPoolForward(x, xs, 2, 2)
		px := upload(t, ctx, x)
		py := alloc(t, ctx, ys.Count())
		pidx := alloc(t, ctx, ys.Count())
		xd := cudnn.TensorDesc{N: xs.N, C: xs.C, H: xs.H, W: xs.W}
		yd, err := h.PoolingForward(cudnn.PoolDesc{Window: 2, Stride: 2}, px, xd, py, pidx)
		if err != nil {
			t.Fatal(err)
		}
		if yd.Count() != ys.Count() {
			t.Fatalf("shape mismatch")
		}
		if d := maxAbsDiff(ctx.MemcpyF32DtoH(py, ys.Count()), wantY); d != 0 {
			t.Fatalf("pool fwd diff %g", d)
		}
		dy := randSlice(rng, ys.Count())
		wantDX := ref.MaxPoolBackward(dy, wantIdx, xs.Count())
		pdy := upload(t, ctx, dy)
		pdx := alloc(t, ctx, xs.Count())
		if err := h.PoolingBackward(pdy, pidx, pdx, yd, xs.Count()); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(ctx.MemcpyF32DtoH(pdx, xs.Count()), wantDX); d > 1e-5 {
			t.Fatalf("pool bwd diff %g", d)
		}
	})

	t.Run("lrn", func(t *testing.T) {
		xd := cudnn.TensorDesc{N: 2, C: 5, H: 4, W: 4}
		ld := cudnn.LRNDesc{N: 5, K: 2, Alpha: 1e-2, Beta: 0.75}
		x := make([]float32, xd.Count())
		for i := range x {
			x[i] = rng.Float32() * 2
		}
		hw := xd.H * xd.W
		want := make([]float32, 0, xd.Count())
		for n := 0; n < xd.N; n++ {
			want = append(want, ref.LRNForward(x[n*xd.C*hw:(n+1)*xd.C*hw], xd.C, hw, ld.N, ld.K, ld.Alpha, ld.Beta)...)
		}
		px := upload(t, ctx, x)
		py := alloc(t, ctx, xd.Count())
		if err := h.LRNCrossChannelForward(ld, px, xd, py); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(ctx.MemcpyF32DtoH(py, xd.Count()), want); d > 1e-3 {
			t.Fatalf("lrn diff %g", d)
		}
	})

	t.Run("softmax+bias+act", func(t *testing.T) {
		rows, cols := 3, 10
		x := randSlice(rng, rows*cols)
		px := upload(t, ctx, x)
		py := alloc(t, ctx, rows*cols)
		if err := h.SoftmaxForward(px, py, rows, cols); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(ctx.MemcpyF32DtoH(py, rows*cols), ref.Softmax(x, rows, cols)); d > 1e-4 {
			t.Fatalf("softmax diff %g", d)
		}

		yd := cudnn.TensorDesc{N: 2, C: 3, H: 4, W: 4}
		y := randSlice(rng, yd.Count())
		bias := randSlice(rng, yd.C)
		want := append([]float32(nil), y...)
		ref.AddBias(want, bias, yd.N, yd.C, yd.H*yd.W)
		pyb, pb := upload(t, ctx, y), upload(t, ctx, bias)
		if err := h.AddTensor(pb, pyb, yd); err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(ctx.MemcpyF32DtoH(pyb, yd.Count()), want); d != 0 {
			t.Fatalf("bias diff %g", d)
		}
	})
}

// TestMultiKernelAPICalls confirms the paper's observation that one
// library call launches several kernels (the basis of the Fig. 2 debug
// bisection): the FFT forward path must launch at least 5 kernels.
func TestMultiKernelAPICalls(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	ctx, h := newHandle(t)
	xs := ref.TensorShape4{N: 1, C: 2, H: 12, W: 12}
	x := randSlice(rng, xs.Count())
	w := randSlice(rng, 3*2*5*5)
	px, pw := upload(t, ctx, x), upload(t, ctx, w)
	py := alloc(t, ctx, 3*8*8)
	ctx.ResetStats()
	_, err := h.ConvolutionForward(cudnn.FwdAlgoFFT, px,
		cudnn.TensorDesc{N: 1, C: 2, H: 12, W: 12}, pw,
		cudnn.FilterDesc{K: 3, C: 2, R: 5, S: 5},
		cudnn.ConvDesc{Pad: 0, Stride: 1}, py)
	if err != nil {
		t.Fatal(err)
	}
	log := ctx.KernelStatsLog()
	if len(log) < 5 {
		t.Fatalf("FFT conv launched only %d kernels; expected a multi-kernel pipeline", len(log))
	}
	names := map[string]bool{}
	for _, s := range log {
		names[s.Name] = true
	}
	for _, want := range []string{"pad2d", "fft2d_r2c_16x16", "cgemm", "fft2d_c2r_16x16", "fft_crop"} {
		if !names[want] {
			t.Errorf("expected kernel %s in launch log, got %v", want, names)
		}
	}
}

// TestUnsupportedCombos pins down cuDNN-style NOT_SUPPORTED errors.
func TestUnsupportedCombos(t *testing.T) {
	ctx, h := newHandle(t)
	px := alloc(t, ctx, 64*64)
	pw := alloc(t, ctx, 9)
	py := alloc(t, ctx, 64*64)
	// Winograd with 5x5 filters
	_, err := h.ConvolutionForward(cudnn.FwdAlgoWinograd, px,
		cudnn.TensorDesc{N: 1, C: 1, H: 8, W: 8}, pw,
		cudnn.FilterDesc{K: 1, C: 1, R: 5, S: 5},
		cudnn.ConvDesc{Stride: 1}, py)
	if _, ok := err.(cudnn.ErrNotSupported); !ok {
		t.Errorf("winograd 5x5 = %v, want ErrNotSupported", err)
	}
	// FFT with frames beyond 32
	_, err = h.ConvolutionForward(cudnn.FwdAlgoFFT, px,
		cudnn.TensorDesc{N: 1, C: 1, H: 64, W: 64}, pw,
		cudnn.FilterDesc{K: 1, C: 1, R: 3, S: 3},
		cudnn.ConvDesc{Stride: 1}, py)
	if _, ok := err.(cudnn.ErrNotSupported); !ok {
		t.Errorf("fft 64x64 = %v, want ErrNotSupported", err)
	}
	// FFT with stride 2
	_, err = h.ConvolutionForward(cudnn.FwdAlgoFFT, px,
		cudnn.TensorDesc{N: 1, C: 1, H: 8, W: 8}, pw,
		cudnn.FilterDesc{K: 1, C: 1, R: 3, S: 3},
		cudnn.ConvDesc{Stride: 2}, py)
	if _, ok := err.(cudnn.ErrNotSupported); !ok {
		t.Errorf("fft stride 2 = %v, want ErrNotSupported", err)
	}
}
