package cudnn

// KV-cached autoregressive-decode primitives. Each decode step issues a
// short chain of these tiny launches per layer — the many-small-kernel
// population the paper flags as the simulator's worst case — so like the
// transformer entry points they all route through the handle's current
// stream and queue asynchronously in performance mode.

import (
	"repro/internal/cudart"
	"repro/internal/exec"
)

// KVCacheAppend scatters the [seq, heads*dh] key or value projection
// into the head-major cache [heads, maxSeq, dh] at row offset pos
// (seq=1 for a decode step, seq=P for the prefill bulk append).
func (h *Handle) KVCacheAppend(src, cache uint64, seq, heads, dh, maxSeq, pos int) error {
	h.ctx.SetAPITag("kvCacheAppend")
	n := seq * heads * dh
	p := cudart.NewParams().Ptr(src).Ptr(cache).
		U32(uint32(seq)).U32(uint32(heads)).U32(uint32(dh)).
		U32(uint32(maxSeq)).U32(uint32(pos))
	return h.launch1D("kv_cache_append", n, 256, p)
}

// AttnScoresCached computes the decode-step attention scores
// scores[h*cacheLen+t] = scale·(q[h]·cacheK[h,t]) for one query token
// against the first cacheLen cache rows.
func (h *Handle) AttnScoresCached(q, cacheK, scores uint64, heads, dh, maxSeq, cacheLen int, scale float32) error {
	h.ctx.SetAPITag("attnScoresCached")
	n := heads * cacheLen
	p := cudart.NewParams().Ptr(q).Ptr(cacheK).Ptr(scores).
		U32(uint32(heads)).U32(uint32(dh)).
		U32(uint32(maxSeq)).U32(uint32(cacheLen)).F32(scale)
	return h.launch1D("attn_qk_cached", n, 128, p)
}

// SoftmaxCausalForward computes the causal-masked row softmax of
// x[rows, cols]: row r attends to the first pos + (r%seq) + 1 columns
// and masked columns are written as exact zeros. One 32-thread CTA per
// row, like SoftmaxForward.
func (h *Handle) SoftmaxCausalForward(x, y uint64, rows, cols, seq, pos int) error {
	h.ctx.SetAPITag("softmaxCausalForward")
	if rows == 0 || cols == 0 {
		return nil
	}
	p := cudart.NewParams().Ptr(x).Ptr(y).
		U32(uint32(cols)).U32(uint32(seq)).U32(uint32(pos))
	return h.launch("softmax_causal", exec.Dim3{X: rows}, exec.Dim3{X: 32}, p)
}

// AttnContextCached computes the decode-step context row
// out[h*dh+d] = Σ_t probs[h*cacheLen+t]·cacheV[h,t,d], written directly
// in merged [1, heads*dh] layout.
func (h *Handle) AttnContextCached(probs, cacheV, out uint64, heads, dh, maxSeq, cacheLen int) error {
	h.ctx.SetAPITag("attnContextCached")
	n := heads * dh
	p := cudart.NewParams().Ptr(probs).Ptr(cacheV).Ptr(out).
		U32(uint32(heads)).U32(uint32(dh)).
		U32(uint32(maxSeq)).U32(uint32(cacheLen))
	return h.launch1D("attn_av_cached", n, 128, p)
}

// LogitGemv computes logits[v] = x·table[v,:] for the single activation
// row x[dim] against the tied embedding table [vocab, dim].
func (h *Handle) LogitGemv(x, table, logits uint64, vocab, dim int) error {
	h.ctx.SetAPITag("logitGemv")
	p := cudart.NewParams().Ptr(x).Ptr(table).Ptr(logits).
		U32(uint32(vocab)).U32(uint32(dim))
	return h.launch1D("logit_gemv", vocab, 128, p)
}

// ArgmaxU32 writes the index of the largest of the n floats at x as a
// u32 into out[outIdx] — greedy token selection kept on the device so a
// generate chain needs no host round-trip between steps.
func (h *Handle) ArgmaxU32(x uint64, n int, out uint64, outIdx int) error {
	h.ctx.SetAPITag("argmaxU32")
	if n == 0 {
		return nil
	}
	p := cudart.NewParams().Ptr(x).U32(uint32(n)).Ptr(out).U32(uint32(outIdx))
	return h.launch("argmax_u32", exec.Dim3{X: 1}, exec.Dim3{X: 32}, p)
}
