package cudnn

import (
	"fmt"

	"repro/internal/cudart"
	"repro/internal/exec"
)

// pickFFTSize returns the smallest supported FFT tile edge >= need.
func pickFFTSize(need int) (int, error) {
	switch {
	case need <= 16:
		return 16, nil
	case need <= 32:
		return 32, nil
	}
	return 0, ErrNotSupported{Reason: fmt.Sprintf("FFT frame %d exceeds 32x32 (use FFT tiling)", need)}
}

func fftKernelNames(n int) (r2c, c2r string) {
	if n == 16 {
		return "fft2d_r2c_16x16", "fft2d_c2r_16x16"
	}
	return "fft2d_r2c_32x32", "fft2d_c2r_32x32"
}

// ConvolutionForward computes y = conv(x, w) with the selected algorithm.
// Shapes: x is xd (NCHW), w is fd (KCRS), y is the returned descriptor.
func (h *Handle) ConvolutionForward(algo ConvFwdAlgo, x uint64, xd TensorDesc, w uint64, fd FilterDesc, cd ConvDesc, y uint64) (TensorDesc, error) {
	h.ctx.SetAPITag("cudnnConvolutionForward")
	if xd.C != fd.C {
		return TensorDesc{}, fmt.Errorf("cudnn: channel mismatch: x has %d, filter has %d", xd.C, fd.C)
	}
	oh := cd.OutDim(xd.H, fd.R)
	ow := cd.OutDim(xd.W, fd.S)
	yd := TensorDesc{N: xd.N, C: fd.K, H: oh, W: ow}
	var err error
	switch algo {
	case FwdAlgoImplicitGemm:
		err = h.convFwdImplicitGemm(x, xd, w, fd, cd, y, yd)
	case FwdAlgoGemm:
		err = h.convFwdGemm(x, xd, w, fd, cd, y, yd)
	case FwdAlgoFFT:
		err = h.convFwdFFT(x, xd, w, fd, cd, y, yd)
	case FwdAlgoFFTTiling:
		err = h.convFwdFFTTiling(x, xd, w, fd, cd, y, yd)
	case FwdAlgoWinograd:
		err = h.convFwdWinogradFused(x, xd, w, fd, cd, y, yd)
	case FwdAlgoWinogradNonfused:
		err = h.convFwdWinogradNonfused(x, xd, w, fd, cd, y, yd)
	default:
		err = ErrNotSupported{Reason: "unknown forward algorithm"}
	}
	return yd, err
}

func (h *Handle) convFwdImplicitGemm(x uint64, xd TensorDesc, w uint64, fd FilterDesc, cd ConvDesc, y uint64, yd TensorDesc) error {
	per := fd.K * yd.H * yd.W
	p := cudart.NewParams().Ptr(x).Ptr(w).Ptr(y).
		U32(uint32(xd.C)).U32(uint32(xd.H)).U32(uint32(xd.W)).
		U32(uint32(fd.K)).U32(uint32(fd.R)).U32(uint32(fd.S)).
		U32(uint32(yd.H)).U32(uint32(yd.W)).
		U32(uint32(cd.Stride)).U32(uint32(cd.Pad))
	return h.launch2D("implicit_gemm_conv_fwd", per, 128, xd.N, p)
}

// convFwdGemm stages through im2col then a single SGEMM per image:
// y[n] (K x OHOW) = W (K x CRS) * col (CRS x OHOW).
func (h *Handle) convFwdGemm(x uint64, xd TensorDesc, w uint64, fd FilterDesc, cd ConvDesc, y uint64, yd TensorDesc) error {
	crs := fd.C * fd.R * fd.S
	ohw := yd.H * yd.W
	colBytes := uint64(4 * crs * ohw)
	col, release, err := h.workspace(colBytes)
	if err != nil {
		return err
	}
	defer release()
	for n := 0; n < xd.N; n++ {
		xOff := x + uint64(4*n*xd.C*xd.H*xd.W)
		p := cudart.NewParams().Ptr(xOff).Ptr(col).
			U32(uint32(xd.C)).U32(uint32(xd.H)).U32(uint32(xd.W)).
			U32(uint32(fd.R)).U32(uint32(fd.S)).
			U32(uint32(yd.H)).U32(uint32(yd.W)).
			U32(uint32(cd.Stride)).U32(uint32(cd.Pad))
		if err := h.launch1D("im2col", crs*ohw, 256, p); err != nil {
			return err
		}
		yOff := y + uint64(4*n*fd.K*ohw)
		gp := cudart.NewParams().Ptr(w).Ptr(col).Ptr(yOff).
			U32(uint32(fd.K)).U32(uint32(ohw)).U32(uint32(crs)).
			U32(0).U32(0).U32(0).F32(1).F32(0)
		g := exec.Dim3{X: (ohw + 15) / 16, Y: (fd.K + 15) / 16, Z: 1}
		if err := h.launch("sgemm_tiled", g, exec.Dim3{X: 16, Y: 16}, gp); err != nil {
			return err
		}
	}
	return nil
}

// filterSpectra pads the KCRS filter bank into n x n frames and runs the
// forward FFT, returning the spectra buffer [(K*C) planes][n*n] complex.
func (h *Handle) filterSpectra(w uint64, fd FilterDesc, n int) (uint64, func(), error) {
	planes := fd.K * fd.C
	pad, relPad, err := h.workspace(uint64(4 * planes * n * n))
	if err != nil {
		return 0, nil, err
	}
	spec, relSpec, err := h.workspace(uint64(8 * planes * n * n))
	if err != nil {
		relPad()
		return 0, nil, err
	}
	release := func() { relSpec(); relPad() }
	p := cudart.NewParams().Ptr(w).Ptr(pad).
		U32(uint32(fd.R)).U32(uint32(fd.S)).U32(uint32(n)).U32(uint32(n)).
		U32(0).U32(0)
	if err := h.launch2D("pad2d", n*n, 256, planes, p); err != nil {
		release()
		return 0, nil, err
	}
	r2c, _ := fftKernelNames(n)
	if err := h.launch(r2c, exec.Dim3{X: planes}, exec.Dim3{X: n}, cudart.NewParams().Ptr(pad).Ptr(spec)); err != nil {
		release()
		return 0, nil, err
	}
	relPad()
	return spec, relSpec, nil
}

// convFwdFFT is the plain FFT algorithm: whole-image frames. This is the
// path MNIST's first convolutions take (28x28 + 5x5 -> 32x32 frames,
// 12x12 + 5x5 -> 16x16 frames), producing the fft2d_r2c_32x32 /
// fft2d_r2c_16x16 / CGEMM / fft2d_c2r kernels of Fig. 7.
func (h *Handle) convFwdFFT(x uint64, xd TensorDesc, w uint64, fd FilterDesc, cd ConvDesc, y uint64, yd TensorDesc) error {
	if cd.Stride != 1 {
		return ErrNotSupported{Reason: "FFT convolution requires stride 1"}
	}
	need := maxInt(xd.H, xd.W) + fd.R - 1
	n, err := pickFFTSize(need)
	if err != nil {
		return err
	}
	r2c, c2r := fftKernelNames(n)
	nn := n * n

	wSpec, relW, err := h.filterSpectra(w, fd, n)
	if err != nil {
		return err
	}
	defer relW()

	xPad, relXP, err := h.workspace(uint64(4 * xd.C * nn))
	if err != nil {
		return err
	}
	defer relXP()
	xSpec, relXS, err := h.workspace(uint64(8 * xd.C * nn))
	if err != nil {
		return err
	}
	defer relXS()
	ySpec, relYS, err := h.workspace(uint64(8 * fd.K * nn))
	if err != nil {
		return err
	}
	defer relYS()
	yFull, relYF, err := h.workspace(uint64(4 * fd.K * nn))
	if err != nil {
		return err
	}
	defer relYF()

	for img := 0; img < xd.N; img++ {
		xOff := x + uint64(4*img*xd.C*xd.H*xd.W)
		p := cudart.NewParams().Ptr(xOff).Ptr(xPad).
			U32(uint32(xd.H)).U32(uint32(xd.W)).U32(uint32(n)).U32(uint32(n)).
			U32(0).U32(0)
		if err := h.launch2D("pad2d", nn, 256, xd.C, p); err != nil {
			return err
		}
		if err := h.launch(r2c, exec.Dim3{X: xd.C}, exec.Dim3{X: n}, cudart.NewParams().Ptr(xPad).Ptr(xSpec)); err != nil {
			return err
		}
		cg := cudart.NewParams().Ptr(xSpec).Ptr(wSpec).Ptr(ySpec).
			U32(uint32(xd.C)).U32(uint32(fd.K)).U32(uint32(nn)).U32(1)
		if err := h.launch1D("cgemm", fd.K*nn, 256, cg); err != nil {
			return err
		}
		if err := h.launch(c2r, exec.Dim3{X: fd.K}, exec.Dim3{X: n},
			cudart.NewParams().Ptr(ySpec).Ptr(yFull).F32(1/float32(nn))); err != nil {
			return err
		}
		yOff := y + uint64(4*img*fd.K*yd.H*yd.W)
		cp := cudart.NewParams().Ptr(yFull).Ptr(yOff).
			U32(uint32(n)).U32(uint32(yd.H)).U32(uint32(yd.W)).U32(uint32(cd.Pad))
		if err := h.launch2D("fft_crop", yd.H*yd.W, 256, fd.K, cp); err != nil {
			return err
		}
	}
	return nil
}

// convFwdFFTTiling decomposes the image into overlapping 32x32 (or 16x16)
// tiles with valid-region stitching (the cuDNN FFT_TILING algorithm).
func (h *Handle) convFwdFFTTiling(x uint64, xd TensorDesc, w uint64, fd FilterDesc, cd ConvDesc, y uint64, yd TensorDesc) error {
	if cd.Stride != 1 {
		return ErrNotSupported{Reason: "FFT tiling requires stride 1"}
	}
	n := 32
	if fd.R >= n {
		return ErrNotSupported{Reason: "filter too large for 32x32 tiles"}
	}
	step := n - fd.R + 1
	ntx := (yd.W + step - 1) / step
	nty := (yd.H + step - 1) / step
	nt := ntx * nty
	nn := n * n
	r2c, c2r := fftKernelNames(n)

	wSpec, relW, err := h.filterSpectra(w, fd, n)
	if err != nil {
		return err
	}
	defer relW()

	tiles, relT, err := h.workspace(uint64(4 * xd.C * nt * nn))
	if err != nil {
		return err
	}
	defer relT()
	xSpec, relXS, err := h.workspace(uint64(8 * xd.C * nt * nn))
	if err != nil {
		return err
	}
	defer relXS()
	ySpec, relYS, err := h.workspace(uint64(8 * fd.K * nt * nn))
	if err != nil {
		return err
	}
	defer relYS()
	yFull, relYF, err := h.workspace(uint64(4 * fd.K * nt * nn))
	if err != nil {
		return err
	}
	defer relYF()

	for img := 0; img < xd.N; img++ {
		xOff := x + uint64(4*img*xd.C*xd.H*xd.W)
		p := cudart.NewParams().Ptr(xOff).Ptr(tiles).
			U32(uint32(xd.C)).U32(uint32(xd.H)).U32(uint32(xd.W)).
			U32(uint32(n)).U32(uint32(ntx)).U32(uint32(nty)).
			U32(uint32(step)).U32(uint32(cd.Pad)).U32(uint32(n))
		if err := h.launch2D("fft_tile_extract", nn, 256, xd.C*nt, p); err != nil {
			return err
		}
		if err := h.launch(r2c, exec.Dim3{X: xd.C * nt}, exec.Dim3{X: n}, cudart.NewParams().Ptr(tiles).Ptr(xSpec)); err != nil {
			return err
		}
		cg := cudart.NewParams().Ptr(xSpec).Ptr(wSpec).Ptr(ySpec).
			U32(uint32(xd.C)).U32(uint32(fd.K)).U32(uint32(nn)).U32(uint32(nt))
		if err := h.launch2D("cgemm", fd.K*nn, 256, nt, cg); err != nil {
			return err
		}
		if err := h.launch(c2r, exec.Dim3{X: fd.K * nt}, exec.Dim3{X: n},
			cudart.NewParams().Ptr(ySpec).Ptr(yFull).F32(1/float32(nn))); err != nil {
			return err
		}
		yOff := y + uint64(4*img*fd.K*yd.H*yd.W)
		sp := cudart.NewParams().Ptr(yFull).Ptr(yOff).
			U32(uint32(yd.H)).U32(uint32(yd.W)).
			U32(uint32(n)).U32(uint32(ntx)).U32(uint32(nty)).U32(uint32(step))
		if err := h.launch2D("fft_tile_stitch", yd.H*yd.W, 256, fd.K, sp); err != nil {
			return err
		}
	}
	return nil
}

func (h *Handle) convFwdWinogradFused(x uint64, xd TensorDesc, w uint64, fd FilterDesc, cd ConvDesc, y uint64, yd TensorDesc) error {
	if fd.R != 3 || fd.S != 3 || cd.Stride != 1 {
		return ErrNotSupported{Reason: "Winograd requires 3x3 filters and stride 1"}
	}
	tiles := ((yd.H + 1) / 2) * ((yd.W + 1) / 2)
	per := fd.K * tiles
	p := cudart.NewParams().Ptr(x).Ptr(w).Ptr(y).
		U32(uint32(xd.C)).U32(uint32(xd.H)).U32(uint32(xd.W)).
		U32(uint32(fd.K)).U32(uint32(yd.H)).U32(uint32(yd.W)).
		U32(uint32(cd.Pad))
	return h.launch2D("winograd_fused_2x2_3x3", per, 64, xd.N, p)
}

func (h *Handle) convFwdWinogradNonfused(x uint64, xd TensorDesc, w uint64, fd FilterDesc, cd ConvDesc, y uint64, yd TensorDesc) error {
	if fd.R != 3 || fd.S != 3 || cd.Stride != 1 {
		return ErrNotSupported{Reason: "Winograd requires 3x3 filters and stride 1"}
	}
	tilesY := (yd.H + 1) / 2
	tilesX := (yd.W + 1) / 2
	P := xd.N * tilesY * tilesX
	kc := fd.K * fd.C
	cp := fd.C * P
	kp := fd.K * P

	u, relU, err := h.workspace(uint64(4 * 16 * kc))
	if err != nil {
		return err
	}
	defer relU()
	v, relV, err := h.workspace(uint64(4 * 16 * cp))
	if err != nil {
		return err
	}
	defer relV()
	m, relM, err := h.workspace(uint64(4 * 16 * kp))
	if err != nil {
		return err
	}
	defer relM()

	if err := h.launch1D("winograd_filter_transform", kc, 64,
		cudart.NewParams().Ptr(w).Ptr(u).U32(uint32(kc))); err != nil {
		return err
	}
	p := cudart.NewParams().Ptr(x).Ptr(v).
		U32(uint32(xd.C)).U32(uint32(xd.H)).U32(uint32(xd.W)).
		U32(uint32(tilesX)).U32(uint32(tilesY)).
		U32(uint32(cd.Pad)).U32(uint32(xd.N))
	if err := h.launch1D("winograd_input_transform", cp, 64, p); err != nil {
		return err
	}
	gp := cudart.NewParams().Ptr(u).Ptr(v).Ptr(m).
		U32(uint32(fd.K)).U32(uint32(P)).U32(uint32(fd.C)).
		U32(uint32(kc)).U32(uint32(cp)).U32(uint32(kp)).F32(1).F32(0)
	g := exec.Dim3{X: (P + 15) / 16, Y: (fd.K + 15) / 16, Z: 16}
	if err := h.launch("sgemm_tiled", g, exec.Dim3{X: 16, Y: 16}, gp); err != nil {
		return err
	}
	op := cudart.NewParams().Ptr(m).Ptr(y).
		U32(uint32(fd.K)).U32(uint32(yd.H)).U32(uint32(yd.W)).
		U32(uint32(tilesX)).U32(uint32(tilesY)).U32(uint32(xd.N))
	return h.launch1D("winograd_output_transform", kp, 64, op)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
