package cudnn

// Transformer training primitives. Each entry point launches one train-
// module kernel; the gradient entry points follow cuDNN's backward
// naming. The layernorm and embedding backward kernels accumulate
// parameter gradients with global atomics, so their gradient buffers
// must be zeroed (or hold the running accumulation) before the call.

import (
	"repro/internal/cudart"
	"repro/internal/exec"
)

// GemmTNStridedBatched computes C[b] = alpha*A[b]ᵀ*B[b] + beta*C[b] for
// row-major A[k,m], B[k,n], C[m,n] slices — the weight-gradient GEMM
// (dW = xᵀ·dy with batch 1, per-head dK/dV with batch = heads).
func (h *Handle) GemmTNStridedBatched(a, bm, cm uint64, m, n, k, strideA, strideB, strideC, batch int, alpha, beta float32) error {
	h.ctx.SetAPITag("cublasSgemmStridedBatched")
	p := cudart.NewParams().Ptr(a).Ptr(bm).Ptr(cm).
		U32(uint32(m)).U32(uint32(n)).U32(uint32(k)).
		U32(uint32(strideA)).U32(uint32(strideB)).U32(uint32(strideC)).
		F32(alpha).F32(beta)
	g := exec.Dim3{X: (n + 15) / 16, Y: (m + 15) / 16, Z: batch}
	return h.launch("sgemm_tn_batched", g, exec.Dim3{X: 16, Y: 16}, p)
}

// LayerNormBackward computes dx for x[rows, cols] and accumulates the
// affine-parameter gradients: dgamma[j] += Σ_r dy·x̂, dbeta[j] += Σ_r dy
// (global atomics — zero the buffers first unless accumulating).
func (h *Handle) LayerNormBackward(x, gamma, dy, dx, dgamma, dbeta uint64, rows, cols int, eps float32) error {
	h.ctx.SetAPITag("cudnnLayerNormBackward")
	if rows == 0 || cols == 0 {
		return nil
	}
	p := cudart.NewParams().Ptr(x).Ptr(gamma).Ptr(dy).Ptr(dx).Ptr(dgamma).Ptr(dbeta).
		U32(uint32(cols)).F32(eps)
	return h.launch("layernorm_backward", exec.Dim3{X: rows}, exec.Dim3{X: 32}, p)
}

// GeluBackward computes dx = dy·GELU'(x) over n elements.
func (h *Handle) GeluBackward(x, dy, dx uint64, n int) error {
	h.ctx.SetAPITag("cudnnActivationBackward")
	return h.launch1D("gelu_backward", n, 256,
		cudart.NewParams().Ptr(x).Ptr(dy).Ptr(dx).U32(uint32(n)))
}

// SoftmaxBackward computes dx[r,j] = p[r,j]·(dp[r,j] - Σ_k dp[r,k]·p[r,k])
// from the forward softmax output p[rows, cols].
func (h *Handle) SoftmaxBackward(probs, dprobs, dx uint64, rows, cols int) error {
	h.ctx.SetAPITag("cudnnSoftmaxBackward")
	if rows == 0 || cols == 0 {
		return nil
	}
	p := cudart.NewParams().Ptr(probs).Ptr(dprobs).Ptr(dx).U32(uint32(cols))
	return h.launch("softmax_backward", exec.Dim3{X: rows}, exec.Dim3{X: 32}, p)
}

// SoftmaxXentBackward fuses the loss head on raw logits[rows, cols]:
// dx = (softmax(logits) - onehot(labels))/rows and per-row loss
// -log softmax[label] into loss[rows].
func (h *Handle) SoftmaxXentBackward(logits, labels, dx, loss uint64, rows, cols int) error {
	h.ctx.SetAPITag("cudnnSoftmaxXentBackward")
	if rows == 0 || cols == 0 {
		return nil
	}
	p := cudart.NewParams().Ptr(logits).Ptr(labels).Ptr(dx).Ptr(loss).
		U32(uint32(cols)).U32(uint32(rows))
	return h.launch("softmax_xent_backward", exec.Dim3{X: rows}, exec.Dim3{X: 32}, p)
}

// AccumulateAdd computes y[i] += x[i] over n elements — gradient
// accumulation across residual branches and the positional table.
func (h *Handle) AccumulateAdd(x, y uint64, n int) error {
	h.ctx.SetAPITag("cublasSaxpy")
	return h.launch1D("accumulate_add", n, 256,
		cudart.NewParams().Ptr(x).Ptr(y).U32(uint32(n)))
}

// EmbeddingBackward scatter-adds dy[rows, cols] into dtable by token id
// with global atomics: dtable[ids[i], j] += dy[i, j].
func (h *Handle) EmbeddingBackward(dy, ids, dtable uint64, rows, cols int) error {
	h.ctx.SetAPITag("embeddingBackward")
	n := rows * cols
	return h.launch1D("embedding_backward", n, 256,
		cudart.NewParams().Ptr(dy).Ptr(ids).Ptr(dtable).U32(uint32(rows)).U32(uint32(cols)))
}
