package cudnn

// Transformer-inference primitives. Like the convolution entry points,
// each call launches one or more library kernels through the runtime; in
// performance mode with Handle.SetStream routing onto a non-default
// stream, whole forward passes queue asynchronously and overlap in the
// detailed timing model.

import (
	"repro/internal/cudart"
	"repro/internal/exec"
)

// GemmStridedBatched computes C[b] = alpha*A[b]*B[b] + beta*C[b] for
// `batch` row-major slices at the given element strides (the
// cublasSgemmStridedBatched analog; grid.z selects the slice).
func (h *Handle) GemmStridedBatched(a, bm, cm uint64, m, n, k, strideA, strideB, strideC, batch int, alpha, beta float32) error {
	h.ctx.SetAPITag("cublasSgemmStridedBatched")
	p := cudart.NewParams().Ptr(a).Ptr(bm).Ptr(cm).
		U32(uint32(m)).U32(uint32(n)).U32(uint32(k)).
		U32(uint32(strideA)).U32(uint32(strideB)).U32(uint32(strideC)).
		F32(alpha).F32(beta)
	g := exec.Dim3{X: (n + 15) / 16, Y: (m + 15) / 16, Z: batch}
	return h.launch("sgemm_tiled", g, exec.Dim3{X: 16, Y: 16}, p)
}

// GemmNTStridedBatched computes C[b] = alpha*A[b]*B[b]ᵀ + beta*C[b] for
// row-major A[m,k], B[n,k], C[m,n] slices — the attention-score GEMM
// (Q·Kᵀ), batched over heads via grid.z.
func (h *Handle) GemmNTStridedBatched(a, bm, cm uint64, m, n, k, strideA, strideB, strideC, batch int, alpha, beta float32) error {
	h.ctx.SetAPITag("cublasSgemmStridedBatched")
	p := cudart.NewParams().Ptr(a).Ptr(bm).Ptr(cm).
		U32(uint32(m)).U32(uint32(n)).U32(uint32(k)).
		U32(uint32(strideA)).U32(uint32(strideB)).U32(uint32(strideC)).
		F32(alpha).F32(beta)
	g := exec.Dim3{X: (n + 15) / 16, Y: (m + 15) / 16, Z: batch}
	return h.launch("sgemm_nt_batched", g, exec.Dim3{X: 16, Y: 16}, p)
}

// LayerNormForward normalises each of the `rows` rows of x to zero mean
// and unit variance and applies the affine parameters gamma and beta
// (each `cols` long): y = (x-μ)/√(σ²+eps)·γ + β.
func (h *Handle) LayerNormForward(x, gamma, beta, y uint64, rows, cols int, eps float32) error {
	h.ctx.SetAPITag("cudnnLayerNormForward")
	if rows == 0 || cols == 0 {
		return nil
	}
	p := cudart.NewParams().Ptr(x).Ptr(gamma).Ptr(beta).Ptr(y).
		U32(uint32(cols)).F32(eps)
	return h.launch("layernorm_forward", exec.Dim3{X: rows}, exec.Dim3{X: 32}, p)
}

// GeluForward applies the tanh-form GELU activation over n elements.
func (h *Handle) GeluForward(x, y uint64, n int) error {
	h.ctx.SetAPITag("cudnnActivationForward")
	return h.launch1D("gelu_forward", n, 256, cudart.NewParams().Ptr(x).Ptr(y).U32(uint32(n)))
}

// ResidualAdd computes y[i] = x[i] + r[i] over n elements (the fused
// skip-connection add).
func (h *Handle) ResidualAdd(x, r, y uint64, n int) error {
	h.ctx.SetAPITag("cudnnOpTensor")
	return h.launch1D("residual_add", n, 256,
		cudart.NewParams().Ptr(x).Ptr(r).Ptr(y).U32(uint32(n)))
}

// SplitHeads permutes a [seq, heads*dh] activation into [heads, seq, dh].
func (h *Handle) SplitHeads(x, y uint64, seq, heads, dh int) error {
	h.ctx.SetAPITag("cudnnTransformTensor")
	n := seq * heads * dh
	return h.launch1D("split_heads", n, 256,
		cudart.NewParams().Ptr(x).Ptr(y).U32(uint32(seq)).U32(uint32(heads)).U32(uint32(dh)))
}

// MergeHeads permutes [heads, seq, dh] back into [seq, heads*dh].
func (h *Handle) MergeHeads(x, y uint64, seq, heads, dh int) error {
	h.ctx.SetAPITag("cudnnTransformTensor")
	n := seq * heads * dh
	return h.launch1D("merge_heads", n, 256,
		cudart.NewParams().Ptr(x).Ptr(y).U32(uint32(seq)).U32(uint32(heads)).U32(uint32(dh)))
}

// EmbeddingLookup gathers out[i,:] = table[ids[i],:] for `rows` u32 ids
// into a [rows, cols] output.
func (h *Handle) EmbeddingLookup(table, ids, out uint64, rows, cols int) error {
	h.ctx.SetAPITag("embeddingLookup")
	n := rows * cols
	return h.launch1D("embedding_lookup", n, 256,
		cudart.NewParams().Ptr(table).Ptr(ids).Ptr(out).U32(uint32(rows)).U32(uint32(cols)))
}
