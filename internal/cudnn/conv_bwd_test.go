package cudnn_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cudnn"
	"repro/internal/ref"
)

// TestBwdDataShapeMismatchN is the regression test for the as-forward
// backward-data validator: recovering dx from a dy whose batch dimension
// disagrees with the requested dx descriptor must fail, not silently
// scribble a differently-sized tensor. H/W/C all still line up here
// (stride 1, pad 1, 3x3 keeps spatial dims), so only the N check can
// catch it.
func TestBwdDataShapeMismatchN(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	xs := ref.TensorShape4{N: 1, C: 2, H: 8, W: 8}
	k, r := 3, 3
	p := ref.ConvParams{Stride: 1, Pad: 1}
	// dy deliberately carries one extra image
	ys := ref.TensorShape4{N: xs.N + 1, C: k, H: xs.H, W: xs.W}
	for _, algo := range []cudnn.ConvBwdDataAlgo{cudnn.BwdDataFFTTiling, cudnn.BwdDataWinograd, cudnn.BwdDataWinogradNonfused} {
		t.Run(algo.String(), func(t *testing.T) {
			ctx, h := newHandle(t)
			pdy := upload(t, ctx, randSlice(rng, ys.Count()))
			pw := upload(t, ctx, randSlice(rng, k*xs.C*r*r))
			// size dx for the oversized recovery so the failure is the
			// validator, not an OOB store
			pdx := alloc(t, ctx, ys.N*xs.C*xs.H*xs.W)
			err := h.ConvolutionBackwardData(algo, pw,
				cudnn.FilterDesc{K: k, C: xs.C, R: r, S: r},
				pdy, cudnn.TensorDesc{N: ys.N, C: ys.C, H: ys.H, W: ys.W},
				cudnn.ConvDesc{Pad: p.Pad, Stride: p.Stride},
				pdx, cudnn.TensorDesc{N: xs.N, C: xs.C, H: xs.H, W: xs.W})
			if err == nil {
				t.Fatalf("%s: batch mismatch accepted (dy N=%d, dx N=%d)", algo, ys.N, xs.N)
			}
			if !strings.Contains(err.Error(), "shape mismatch") {
				t.Fatalf("%s: error %q, want a shape-mismatch report", algo, err)
			}
		})
	}
}

// TestConvBackwardDataStridePadSweep drives every backward-data
// algorithm across stride/pad edge cases: the direct kernels must match
// the reference at stride 2 and asymmetric pads, and the as-forward
// paths must reject strided configs with ErrNotSupported instead of
// computing garbage.
func TestConvBackwardDataStridePadSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	cases := []struct {
		name    string
		algo    cudnn.ConvBwdDataAlgo
		xs      ref.TensorShape4
		k, r    int
		p       ref.ConvParams
		tol     float64
		wantErr bool
	}{
		{"algo0_stride2_pad0", cudnn.BwdDataAlgo0, ref.TensorShape4{N: 2, C: 2, H: 9, W: 9}, 3, 3, ref.ConvParams{Stride: 2, Pad: 0}, 1e-4, false},
		{"algo0_stride2_pad1", cudnn.BwdDataAlgo0, ref.TensorShape4{N: 1, C: 3, H: 10, W: 8}, 2, 3, ref.ConvParams{Stride: 2, Pad: 1}, 1e-4, false},
		{"algo0_stride1_pad2_5x5", cudnn.BwdDataAlgo0, ref.TensorShape4{N: 1, C: 2, H: 11, W: 11}, 3, 5, ref.ConvParams{Stride: 1, Pad: 2}, 1e-4, false},
		{"algo1_stride2_pad1", cudnn.BwdDataAlgo1, ref.TensorShape4{N: 2, C: 2, H: 9, W: 11}, 3, 3, ref.ConvParams{Stride: 2, Pad: 1}, 1e-3, false},
		{"algo1_stride1_pad0", cudnn.BwdDataAlgo1, ref.TensorShape4{N: 1, C: 2, H: 8, W: 8}, 2, 3, ref.ConvParams{Stride: 1, Pad: 0}, 1e-3, false},
		{"ffttiling_stride1_pad0", cudnn.BwdDataFFTTiling, ref.TensorShape4{N: 1, C: 2, H: 10, W: 10}, 3, 3, ref.ConvParams{Stride: 1, Pad: 0}, 5e-3, false},
		{"ffttiling_stride2_rejected", cudnn.BwdDataFFTTiling, ref.TensorShape4{N: 1, C: 2, H: 9, W: 9}, 3, 3, ref.ConvParams{Stride: 2, Pad: 1}, 0, true},
		{"winograd_stride2_rejected", cudnn.BwdDataWinograd, ref.TensorShape4{N: 1, C: 2, H: 9, W: 9}, 3, 3, ref.ConvParams{Stride: 2, Pad: 1}, 0, true},
		{"winograd_nonfused_stride2_rejected", cudnn.BwdDataWinogradNonfused, ref.TensorShape4{N: 1, C: 2, H: 9, W: 9}, 3, 3, ref.ConvParams{Stride: 2, Pad: 1}, 0, true},
		{"winograd_5x5_rejected", cudnn.BwdDataWinograd, ref.TensorShape4{N: 1, C: 2, H: 12, W: 12}, 3, 5, ref.ConvParams{Stride: 1, Pad: 2}, 0, true},
		{"unknown_algo_rejected", cudnn.ConvBwdDataAlgo(99), ref.TensorShape4{N: 1, C: 1, H: 8, W: 8}, 1, 3, ref.ConvParams{Stride: 1, Pad: 1}, 0, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ctx, h := newHandle(t)
			oh, ow := c.p.ConvOut(c.xs.H, c.r), c.p.ConvOut(c.xs.W, c.r)
			ys := ref.TensorShape4{N: c.xs.N, C: c.k, H: oh, W: ow}
			dy := randSlice(rng, ys.Count())
			w := randSlice(rng, c.k*c.xs.C*c.r*c.r)
			pdy, pw := upload(t, ctx, dy), upload(t, ctx, w)
			pdx := alloc(t, ctx, c.xs.Count())
			err := h.ConvolutionBackwardData(c.algo, pw,
				cudnn.FilterDesc{K: c.k, C: c.xs.C, R: c.r, S: c.r},
				pdy, cudnn.TensorDesc{N: ys.N, C: ys.C, H: ys.H, W: ys.W},
				cudnn.ConvDesc{Pad: c.p.Pad, Stride: c.p.Stride},
				pdx, cudnn.TensorDesc{N: c.xs.N, C: c.xs.C, H: c.xs.H, W: c.xs.W})
			if c.wantErr {
				if _, ok := err.(cudnn.ErrNotSupported); !ok {
					t.Fatalf("err = %v, want ErrNotSupported", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("backward data: %v", err)
			}
			want := ref.Conv2DBackwardData(dy, ys, w, c.xs.C, c.r, c.xs, c.p)
			got := ctx.MemcpyF32DtoH(pdx, c.xs.Count())
			if d := maxAbsDiff(got, want); d > c.tol {
				t.Fatalf("max diff %g (tol %g)", d, c.tol)
			}
		})
	}
}

// TestConvBackwardFilterStridePadSweep is the filter-gradient twin:
// direct algorithms at stride 2 and wide pads vs the reference, plus
// every documented ErrNotSupported rejection (FFT at stride 2, tiles
// smaller than the filter, Winograd away from 3x3/stride-1).
func TestConvBackwardFilterStridePadSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	cases := []struct {
		name    string
		algo    cudnn.ConvBwdFilterAlgo
		xs      ref.TensorShape4
		k, r    int
		p       ref.ConvParams
		tol     float64
		wantErr bool
	}{
		{"algo0_stride2_pad1", cudnn.BwdFilterAlgo0, ref.TensorShape4{N: 2, C: 2, H: 9, W: 9}, 3, 3, ref.ConvParams{Stride: 2, Pad: 1}, 1e-3, false},
		{"algo0_stride1_pad2_5x5", cudnn.BwdFilterAlgo0, ref.TensorShape4{N: 1, C: 2, H: 11, W: 11}, 2, 5, ref.ConvParams{Stride: 1, Pad: 2}, 1e-3, false},
		{"algo1_stride2_pad0", cudnn.BwdFilterAlgo1, ref.TensorShape4{N: 2, C: 2, H: 9, W: 9}, 3, 3, ref.ConvParams{Stride: 2, Pad: 0}, 1e-3, false},
		{"algo3_stride2_pad1", cudnn.BwdFilterAlgo3, ref.TensorShape4{N: 1, C: 3, H: 10, W: 8}, 2, 3, ref.ConvParams{Stride: 2, Pad: 1}, 1e-3, false},
		{"fft_stride2_rejected", cudnn.BwdFilterFFT, ref.TensorShape4{N: 1, C: 2, H: 9, W: 9}, 3, 3, ref.ConvParams{Stride: 2, Pad: 1}, 0, true},
		{"ffttiling_stride2_rejected", cudnn.BwdFilterFFTTiling, ref.TensorShape4{N: 1, C: 2, H: 9, W: 9}, 3, 3, ref.ConvParams{Stride: 2, Pad: 1}, 0, true},
		{"ffttiling_filter_too_large", cudnn.BwdFilterFFTTiling, ref.TensorShape4{N: 1, C: 1, H: 40, W: 40}, 1, 33, ref.ConvParams{Stride: 1, Pad: 0}, 0, true},
		{"winograd_nonfused_5x5_rejected", cudnn.BwdFilterWinogradNonfused, ref.TensorShape4{N: 1, C: 2, H: 12, W: 12}, 3, 5, ref.ConvParams{Stride: 1, Pad: 2}, 0, true},
		{"winograd_nonfused_stride2_rejected", cudnn.BwdFilterWinogradNonfused, ref.TensorShape4{N: 1, C: 2, H: 9, W: 9}, 3, 3, ref.ConvParams{Stride: 2, Pad: 1}, 0, true},
		{"unknown_algo_rejected", cudnn.ConvBwdFilterAlgo(99), ref.TensorShape4{N: 1, C: 1, H: 8, W: 8}, 1, 3, ref.ConvParams{Stride: 1, Pad: 1}, 0, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ctx, h := newHandle(t)
			oh, ow := c.p.ConvOut(c.xs.H, c.r), c.p.ConvOut(c.xs.W, c.r)
			ys := ref.TensorShape4{N: c.xs.N, C: c.k, H: oh, W: ow}
			x := randSlice(rng, c.xs.Count())
			dy := randSlice(rng, ys.Count())
			px, pdy := upload(t, ctx, x), upload(t, ctx, dy)
			pdw := alloc(t, ctx, c.k*c.xs.C*c.r*c.r)
			err := h.ConvolutionBackwardFilter(c.algo, px,
				cudnn.TensorDesc{N: c.xs.N, C: c.xs.C, H: c.xs.H, W: c.xs.W},
				pdy, cudnn.TensorDesc{N: ys.N, C: ys.C, H: ys.H, W: ys.W},
				cudnn.ConvDesc{Pad: c.p.Pad, Stride: c.p.Stride},
				pdw, cudnn.FilterDesc{K: c.k, C: c.xs.C, R: c.r, S: c.r})
			if c.wantErr {
				if _, ok := err.(cudnn.ErrNotSupported); !ok {
					t.Fatalf("err = %v, want ErrNotSupported", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("backward filter: %v", err)
			}
			want := ref.Conv2DBackwardFilter(x, c.xs, dy, ys, c.r, c.p)
			got := ctx.MemcpyF32DtoH(pdw, c.k*c.xs.C*c.r*c.r)
			if d := maxAbsDiff(got, want); d > c.tol {
				t.Fatalf("max diff %g (tol %g)", d, c.tol)
			}
		})
	}
}
