package cudnn

import (
	"fmt"

	"repro/internal/cudart"
	"repro/internal/exec"
)

// ConvolutionBackwardData computes dx from dy and w.
func (h *Handle) ConvolutionBackwardData(algo ConvBwdDataAlgo, w uint64, fd FilterDesc, dy uint64, yd TensorDesc, cd ConvDesc, dx uint64, xd TensorDesc) error {
	h.ctx.SetAPITag("cudnnConvolutionBackwardData")
	if yd.C != fd.K {
		return fmt.Errorf("cudnn: dy has %d channels, filter has %d outputs", yd.C, fd.K)
	}
	switch algo {
	case BwdDataAlgo0:
		per := xd.C * xd.H * xd.W
		p := h.bwdDataParams(dy, w, dx, xd, fd, yd, cd)
		return h.launch2D("conv_bwd_data_algo0", per, 128, xd.N, p)
	case BwdDataAlgo1:
		if err := h.zero(dx, xd.Count()); err != nil {
			return err
		}
		per := fd.K * yd.H * yd.W
		p := h.bwdDataParams(dy, w, dx, xd, fd, yd, cd)
		return h.launch2D("conv_bwd_data_algo1", per, 128, xd.N, p)
	case BwdDataFFTTiling, BwdDataWinograd, BwdDataWinogradNonfused:
		return h.bwdDataAsForward(algo, w, fd, dy, yd, cd, dx, xd)
	}
	return ErrNotSupported{Reason: "unknown backward-data algorithm"}
}

func (h *Handle) bwdDataParams(dy, w, dx uint64, xd TensorDesc, fd FilterDesc, yd TensorDesc, cd ConvDesc) *cudart.Params {
	return cudart.NewParams().Ptr(dy).Ptr(w).Ptr(dx).
		U32(uint32(xd.C)).U32(uint32(xd.H)).U32(uint32(xd.W)).
		U32(uint32(fd.K)).U32(uint32(fd.R)).U32(uint32(fd.S)).
		U32(uint32(yd.H)).U32(uint32(yd.W)).
		U32(uint32(cd.Stride)).U32(uint32(cd.Pad))
}

// bwdDataAsForward expresses backward-data (stride 1) as a forward
// convolution of dy with the 180-degree-rotated, KC-transposed filter
// bank at pad' = R-1-pad, dispatched to the FFT-tiling or Winograd
// forward path.
func (h *Handle) bwdDataAsForward(algo ConvBwdDataAlgo, w uint64, fd FilterDesc, dy uint64, yd TensorDesc, cd ConvDesc, dx uint64, xd TensorDesc) error {
	if cd.Stride != 1 {
		return ErrNotSupported{Reason: algo.String() + " backward data requires stride 1"}
	}
	rot, release, err := h.workspace(uint64(4 * fd.Count()))
	if err != nil {
		return err
	}
	defer release()
	p := cudart.NewParams().Ptr(w).Ptr(rot).
		U32(uint32(fd.K)).U32(uint32(fd.C)).U32(uint32(fd.R)).U32(uint32(fd.S))
	if err := h.launch1D("rotate_filter_180", fd.Count(), 128, p); err != nil {
		return err
	}
	rfd := FilterDesc{K: fd.C, C: fd.K, R: fd.R, S: fd.S}
	rcd := ConvDesc{Pad: fd.R - 1 - cd.Pad, Stride: 1}
	var fwd ConvFwdAlgo
	switch algo {
	case BwdDataFFTTiling:
		fwd = FwdAlgoFFTTiling
	case BwdDataWinograd:
		fwd = FwdAlgoWinograd
	case BwdDataWinogradNonfused:
		fwd = FwdAlgoWinogradNonfused
	}
	got, err := h.ConvolutionForward(fwd, dy, yd, rot, rfd, rcd, dx)
	if err != nil {
		return err
	}
	if got.N != xd.N || got.H != xd.H || got.W != xd.W || got.C != xd.C {
		return fmt.Errorf("cudnn: backward-data shape mismatch: got %+v want %+v", got, xd)
	}
	return nil
}

// ConvolutionBackwardFilter computes dw from x and dy.
func (h *Handle) ConvolutionBackwardFilter(algo ConvBwdFilterAlgo, x uint64, xd TensorDesc, dy uint64, yd TensorDesc, cd ConvDesc, dw uint64, fd FilterDesc) error {
	h.ctx.SetAPITag("cudnnConvolutionBackwardFilter")
	switch algo {
	case BwdFilterAlgo0:
		n := fd.Count()
		p := cudart.NewParams().Ptr(x).Ptr(dy).Ptr(dw).
			U32(uint32(xd.N)).U32(uint32(xd.C)).U32(uint32(xd.H)).U32(uint32(xd.W)).
			U32(uint32(fd.K)).U32(uint32(fd.R)).U32(uint32(fd.S)).
			U32(uint32(yd.H)).U32(uint32(yd.W)).
			U32(uint32(cd.Stride)).U32(uint32(cd.Pad))
		return h.launch1D("conv_bwd_filter_algo0", n, 64, p)
	case BwdFilterAlgo1:
		if err := h.zero(dw, fd.Count()); err != nil {
			return err
		}
		per := fd.K * yd.H * yd.W
		p := cudart.NewParams().Ptr(x).Ptr(dy).Ptr(dw).
			U32(uint32(xd.C)).U32(uint32(xd.H)).U32(uint32(xd.W)).
			U32(uint32(fd.K)).U32(uint32(fd.R)).U32(uint32(fd.S)).
			U32(uint32(yd.H)).U32(uint32(yd.W)).
			U32(uint32(cd.Stride)).U32(uint32(cd.Pad))
		return h.launch2D("conv_bwd_filter_algo1", per, 128, xd.N, p)
	case BwdFilterAlgo3:
		p := cudart.NewParams().Ptr(x).Ptr(dy).Ptr(dw).
			U32(uint32(xd.N)).U32(uint32(xd.C)).U32(uint32(xd.H)).U32(uint32(xd.W)).
			U32(uint32(fd.K)).U32(uint32(fd.R)).U32(uint32(fd.S)).
			U32(uint32(yd.H)).U32(uint32(yd.W)).
			U32(uint32(cd.Stride)).U32(uint32(cd.Pad))
		return h.launch("conv_bwd_filter_algo3",
			exec.Dim3{X: fd.Count()}, exec.Dim3{X: 256}, p)
	case BwdFilterFFT:
		return h.bwdFilterFFT(x, xd, dy, yd, cd, dw, fd, false)
	case BwdFilterFFTTiling:
		return h.bwdFilterFFT(x, xd, dy, yd, cd, dw, fd, true)
	case BwdFilterWinogradNonfused:
		if fd.R != 3 || fd.S != 3 || cd.Stride != 1 {
			return ErrNotSupported{Reason: "Winograd backward filter requires 3x3 stride 1"}
		}
		p := cudart.NewParams().Ptr(x).Ptr(dy).Ptr(dw).
			U32(uint32(xd.C)).U32(uint32(xd.H)).U32(uint32(xd.W)).
			U32(uint32(fd.K)).U32(uint32(yd.H)).U32(uint32(yd.W)).
			U32(uint32(cd.Pad)).U32(uint32(xd.N))
		return h.launch("winograd_bwd_filter",
			exec.Dim3{X: fd.K * fd.C}, exec.Dim3{X: 64}, p)
	}
	return ErrNotSupported{Reason: "unknown backward-filter algorithm"}
}

// bwdFilterFFT computes dW = Σ_n corr(x[n,c], dy[n,k]) in the frequency
// domain: per image, extract frames/tiles of x (origin -pad) and dy
// (origin 0, zeroed beyond the valid window), FFT both, accumulate
// conj(DY)·X into dW spectra, and at the end inverse-transform and crop
// the R x R gradient.
func (h *Handle) bwdFilterFFT(x uint64, xd TensorDesc, dy uint64, yd TensorDesc, cd ConvDesc, dw uint64, fd FilterDesc, tiling bool) error {
	if cd.Stride != 1 {
		return ErrNotSupported{Reason: "FFT backward filter requires stride 1"}
	}
	var n, step, ntx, nty int
	if tiling {
		n = 32
		if fd.R >= n {
			return ErrNotSupported{Reason: "filter too large for 32x32 tiles"}
		}
		step = n - fd.R + 1
		ntx = (yd.W + step - 1) / step
		nty = (yd.H + step - 1) / step
	} else {
		need := maxInt(xd.H, xd.W) + 2*cd.Pad
		var err error
		n, err = pickFFTSize(need)
		if err != nil {
			return err
		}
		step = n
		ntx, nty = 1, 1
	}
	nt := ntx * nty
	nn := n * n
	r2c, c2r := fftKernelNames(n)

	xTiles, relXT, err := h.workspace(uint64(4 * xd.C * nt * nn))
	if err != nil {
		return err
	}
	defer relXT()
	dyTiles, relDT, err := h.workspace(uint64(4 * fd.K * nt * nn))
	if err != nil {
		return err
	}
	defer relDT()
	xSpec, relXS, err := h.workspace(uint64(8 * xd.C * nt * nn))
	if err != nil {
		return err
	}
	defer relXS()
	dySpec, relDS, err := h.workspace(uint64(8 * fd.K * nt * nn))
	if err != nil {
		return err
	}
	defer relDS()
	dwSpec, relWS, err := h.workspace(uint64(8 * fd.K * fd.C * nn))
	if err != nil {
		return err
	}
	defer relWS()
	dwFull, relWF, err := h.workspace(uint64(4 * fd.K * fd.C * nn))
	if err != nil {
		return err
	}
	defer relWF()

	if err := h.zero(dwSpec, 2*fd.K*fd.C*nn); err != nil {
		return err
	}
	dyWin := step
	if !tiling {
		dyWin = n
	}
	for img := 0; img < xd.N; img++ {
		xOff := x + uint64(4*img*xd.C*xd.H*xd.W)
		p := cudart.NewParams().Ptr(xOff).Ptr(xTiles).
			U32(uint32(xd.C)).U32(uint32(xd.H)).U32(uint32(xd.W)).
			U32(uint32(n)).U32(uint32(ntx)).U32(uint32(nty)).
			U32(uint32(step)).U32(uint32(cd.Pad)).U32(uint32(n))
		if err := h.launch2D("fft_tile_extract", nn, 256, xd.C*nt, p); err != nil {
			return err
		}
		dyOff := dy + uint64(4*img*fd.K*yd.H*yd.W)
		p = cudart.NewParams().Ptr(dyOff).Ptr(dyTiles).
			U32(uint32(fd.K)).U32(uint32(yd.H)).U32(uint32(yd.W)).
			U32(uint32(n)).U32(uint32(ntx)).U32(uint32(nty)).
			U32(uint32(step)).U32(0).U32(uint32(dyWin))
		if err := h.launch2D("fft_tile_extract", nn, 256, fd.K*nt, p); err != nil {
			return err
		}
		if err := h.launch(r2c, exec.Dim3{X: xd.C * nt}, exec.Dim3{X: n}, cudart.NewParams().Ptr(xTiles).Ptr(xSpec)); err != nil {
			return err
		}
		if err := h.launch(r2c, exec.Dim3{X: fd.K * nt}, exec.Dim3{X: n}, cudart.NewParams().Ptr(dyTiles).Ptr(dySpec)); err != nil {
			return err
		}
		cg := cudart.NewParams().Ptr(xSpec).Ptr(dySpec).Ptr(dwSpec).
			U32(uint32(fd.C)).U32(uint32(fd.K)).U32(uint32(nn)).U32(uint32(nt))
		if err := h.launch1D("cgemm_bwd_filter", fd.K*fd.C*nn, 256, cg); err != nil {
			return err
		}
	}
	if err := h.launch(c2r, exec.Dim3{X: fd.K * fd.C}, exec.Dim3{X: n},
		cudart.NewParams().Ptr(dwSpec).Ptr(dwFull).F32(1/float32(nn))); err != nil {
		return err
	}
	cropPad := 0
	if !tiling {
		cropPad = 0
	}
	cp := cudart.NewParams().Ptr(dwFull).Ptr(dw).
		U32(uint32(n)).U32(uint32(fd.R)).U32(uint32(fd.S)).U32(uint32(cropPad))
	return h.launch2D("fft_crop", fd.R*fd.S, 64, fd.K*fd.C, cp)
}
