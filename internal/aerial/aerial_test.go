package aerial

import (
	"strings"
	"testing"
)

func TestHeatMapRendering(t *testing.T) {
	var b strings.Builder
	rows := [][]float64{
		{0, 0.5, 1.0},
		{1.0, 0, 0.5},
	}
	HeatMap(&b, "test", rows, func(i int) string { return "row" }, 100)
	out := b.String()
	if !strings.Contains(out, "== test ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "@") {
		t.Error("max value should render as the brightest shade")
	}
	if strings.Count(out, "|") != 4 {
		t.Errorf("expected 2 framed rows:\n%s", out)
	}
}

func TestHeatMapDownsamples(t *testing.T) {
	var b strings.Builder
	wide := make([]float64, 1000)
	for i := range wide {
		wide[i] = float64(i % 7)
	}
	HeatMap(&b, "wide", [][]float64{wide}, func(int) string { return "r" }, 10)
	for _, line := range strings.Split(b.String(), "\n") {
		if len(line) > 140 {
			t.Fatalf("row not downsampled to terminal width: %d chars", len(line))
		}
	}
}

func TestHeatMapEmpty(t *testing.T) {
	var b strings.Builder
	HeatMap(&b, "empty", nil, func(int) string { return "" }, 1)
	if !strings.Contains(b.String(), "no data") {
		t.Error("empty input should say so")
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, []string{"a", "b"}, [][]float64{{1, 2, 3}, {4}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "series,0,1,2" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "a,1,2,3" {
		t.Errorf("row a = %q", lines[1])
	}
	if lines[2] != "b,4,0,0" { // short rows padded with zeros
		t.Errorf("row b = %q", lines[2])
	}
}

func TestKernelMemSummary(t *testing.T) {
	var b strings.Builder
	KernelMemSummary(&b, "mem", []KernelMemRow{
		{Name: "saxpy", Launches: 2, L2Accesses: 100, L2Hits: 25, DRAMAccesses: 75, DRAMRowHits: 30, MemStallCycles: 12},
		{Name: "cold", Launches: 1}, // zero traffic: rates must render n/a, not NaN
	})
	out := b.String()
	for _, want := range []string{"saxpy", "25.0", "40.0", "12", "n/a"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in summary:\n%s", want, out)
		}
	}
}

func TestKernelReplaySummary(t *testing.T) {
	var b strings.Builder
	rows := []KernelReplayRow{
		{Name: "matmul", Launches: 10, Replayed: 9, Cycles: 1000, ReplayedCycles: 880},
		{Name: "once", Launches: 1}, // never replayed: rate must render, no NaN
	}
	KernelReplaySummary(&b, "replay", rows)
	out := b.String()
	for _, want := range []string{"matmul", "90.0", "880", "once", "0.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in summary:\n%s", want, out)
		}
	}

	b.Reset()
	if err := KernelReplayCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "kernel,launches,replayed,cycles,replayed_cycles" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "matmul,10,9,1000,880" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestDecodeThroughputSummary(t *testing.T) {
	var b strings.Builder
	rows := []DecodeThroughputRow{
		{Mode: "detailed", Iters: 5, Tokens: 60, TotalCycles: 1_500_000, TokensPerMcycle: 40},
		{Mode: "hybrid", Iters: 5, Tokens: 60, TotalCycles: 1_480_000, TokensPerMcycle: 40.54, Coverage: 0.8},
	}
	DecodeThroughputSummary(&b, "decode throughput", rows)
	out := b.String()
	for _, want := range []string{"decode throughput", "tok/Mcycle", "detailed", "hybrid", "40.54", "80.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in summary:\n%s", want, out)
		}
	}

	b.Reset()
	if err := DecodeThroughputCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "mode,iters,tokens,total_cycles,tokens_per_mcycle,coverage" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != "hybrid,5,60,1480000,40.54,0.8" {
		t.Errorf("row = %q", lines[2])
	}
}

func TestServeLatencySummary(t *testing.T) {
	var b strings.Builder
	rows := []ServeLatencyRow{
		{EndCycle: 1000, Completed: 3, P50: 400, P99: 900, P999: 950},
		{EndCycle: 2000, Completed: 0}, // empty window: dashes, not zeros
	}
	ServeLatencySummary(&b, "serving latency", rows)
	out := b.String()
	for _, want := range []string{"serving latency", "window_end", "p99.9_cy", "400", "900", "950", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in summary:\n%s", want, out)
		}
	}

	b.Reset()
	if err := ServeLatencyCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "window_end_cycle,completed,p50_cycles,p99_cycles,p999_cycles" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1000,3,400,900,950" {
		t.Errorf("row = %q", lines[1])
	}
	if lines[2] != "2000,0,0,0,0" {
		t.Errorf("empty-window row = %q", lines[2])
	}
}

func TestStackedSummarySkipsZeroRows(t *testing.T) {
	var b strings.Builder
	StackedSummary(&b, "warp", []string{"used", "empty"},
		[][]float64{{0.5, 0.5}, {0, 0}})
	out := b.String()
	if !strings.Contains(out, "used") {
		t.Error("non-zero row missing")
	}
	if strings.Contains(out, "empty") {
		t.Error("all-zero row should be skipped")
	}
}
