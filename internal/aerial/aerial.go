// Package aerial is the AerialVision analog (Ariel et al., ISPASS 2010):
// it renders the timing model's per-interval metrics — per-bank DRAM
// efficiency/utilization, global and per-shader IPC, and the warp-issue
// breakdown — as ASCII heat maps and CSV, the same views the paper's
// Figs. 9-25 show.
package aerial

import (
	"fmt"
	"io"
	"strings"
)

// shades maps intensity [0,1] to characters, dark to bright.
var shades = []byte(" .:-=+*#%@")

func shade(v, max float64) byte {
	if max <= 0 || v <= 0 {
		return shades[0]
	}
	f := v / max
	if f > 1 {
		f = 1
	}
	idx := int(f * float64(len(shades)-1))
	return shades[idx]
}

// HeatMap renders rows (e.g. banks or shader cores) over time buckets.
// Values are normalised to the global maximum. rowLabel generates the
// left-hand label for row i.
func HeatMap(w io.Writer, title string, rows [][]float64, rowLabel func(int) string, bucketCycles uint64) {
	fmt.Fprintf(w, "== %s ==\n", title)
	if len(rows) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	maxv := 0.0
	width := 0
	for _, r := range rows {
		if len(r) > width {
			width = len(r)
		}
		for _, v := range r {
			if v > maxv {
				maxv = v
			}
		}
	}
	const maxCols = 100
	stride := 1
	if width > maxCols {
		stride = (width + maxCols - 1) / maxCols
	}
	for i := len(rows) - 1; i >= 0; i-- {
		var b strings.Builder
		for c := 0; c < width; c += stride {
			// average over the stride window
			var sum float64
			n := 0
			for j := c; j < c+stride && j < len(rows[i]); j++ {
				sum += rows[i][j]
				n++
			}
			v := 0.0
			if n > 0 {
				v = sum / float64(n)
			}
			b.WriteByte(shade(v, maxv))
		}
		fmt.Fprintf(w, "%-12s |%s|\n", rowLabel(i), b.String())
	}
	fmt.Fprintf(w, "%-12s  x: %d buckets x %d cycles (col = %d buckets), max=%.3f\n",
		"", width, bucketCycles, stride, maxv)
}

// Line renders a single series as a bar-height strip.
func Line(w io.Writer, title string, series []float64, bucketCycles uint64) {
	HeatMap(w, title, [][]float64{series}, func(int) string { return title }, bucketCycles)
}

// StackedSummary prints, for a set of named series (e.g. the warp-issue
// breakdown), the time-averaged fraction of each category, skipping
// all-zero rows — a textual stand-in for AerialVision's stacked plots.
func StackedSummary(w io.Writer, title string, names []string, series [][]float64) {
	fmt.Fprintf(w, "== %s (time-averaged fractions) ==\n", title)
	for i, name := range names {
		var sum float64
		for _, v := range series[i] {
			sum += v
		}
		if len(series[i]) > 0 {
			sum /= float64(len(series[i]))
		}
		if sum > 0.0005 {
			bar := strings.Repeat("#", int(sum*60))
			fmt.Fprintf(w, "%-16s %6.2f%% %s\n", name, sum*100, bar)
		}
	}
}

// KernelMemRow is one kernel's memory-system summary for KernelMemSummary
// (mirrors the timing engine's per-kernel MemCounters without importing
// the timing package).
type KernelMemRow struct {
	Name           string
	Launches       uint64
	L2Accesses     uint64
	L2Hits         uint64
	DRAMAccesses   uint64
	DRAMRowHits    uint64
	MemStallCycles uint64
}

// KernelMemSummary renders the per-kernel memory counters the paper's
// memory-behavior study revolves around: L2 hit rate, DRAM row-buffer
// locality, and the cycles each kernel's segments spent stalled on
// partition ingress/port/MSHR reservations.
func KernelMemSummary(w io.Writer, title string, rows []KernelMemRow) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-24s %8s %10s %8s %10s %8s %12s\n",
		"kernel", "launches", "l2_acc", "l2_hit%", "dram", "rowhit%", "mem_stall_cy")
	pct := func(n, d uint64) string {
		if d == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.1f", 100*float64(n)/float64(d))
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %8d %10d %8s %10d %8s %12d\n",
			r.Name, r.Launches, r.L2Accesses, pct(r.L2Hits, r.L2Accesses),
			r.DRAMAccesses, pct(r.DRAMRowHits, r.DRAMAccesses), r.MemStallCycles)
	}
}

// KernelReplayRow is one kernel's hybrid-replay summary for
// KernelReplaySummary and KernelReplayCSV: how many of its launches were
// retired from the replay cache and what fraction of its modelled cycles
// that covered.
type KernelReplayRow struct {
	Name           string
	Launches       uint64
	Replayed       uint64 // launches retired from the replay cache
	Cycles         uint64 // all launches
	ReplayedCycles uint64 // replayed launches only
}

// KernelReplaySummary renders the per-kernel replay coverage of a hybrid
// run: which kernels the cache absorbed and which still pay detailed
// simulation (the re-sampling budget should go where replayed% is low).
func KernelReplaySummary(w io.Writer, title string, rows []KernelReplayRow) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-24s %8s %9s %10s %12s %12s\n",
		"kernel", "launches", "replayed", "replayed%", "cycles", "replayed_cy")
	pct := func(n, d uint64) string {
		if d == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.1f", 100*float64(n)/float64(d))
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %8d %9d %10s %12d %12d\n",
			r.Name, r.Launches, r.Replayed, pct(r.Replayed, r.Launches),
			r.Cycles, r.ReplayedCycles)
	}
}

// KernelReplayCSV writes the replay coverage rows as kernel_replay.csv.
func KernelReplayCSV(w io.Writer, rows []KernelReplayRow) error {
	var b strings.Builder
	b.WriteString("kernel,launches,replayed,cycles,replayed_cycles\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d\n", r.Name, r.Launches, r.Replayed, r.Cycles, r.ReplayedCycles)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// DeviceRow is one simulated GPU's share of a multi-device node run for
// DeviceSummary (mirrors the multigpu package's per-device counters
// without importing it).
type DeviceRow struct {
	Device              int
	Cycles              uint64
	Instructions        uint64
	L2Accesses          uint64
	DRAMAccesses        uint64
	FastForwardedCycles uint64 // idle cycles bridged at collective barriers
	Launches            uint64
}

// DeviceSummary renders the per-device engine counters of a multi-GPU
// node run: every device ends at the same barrier cycle, so the
// interesting columns are the per-rank work split and how many of each
// rank's cycles were bridged waiting at collectives.
func DeviceSummary(w io.Writer, title string, rows []DeviceRow) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-8s %12s %14s %10s %10s %12s %9s\n",
		"device", "cycles", "instrs", "l2_acc", "dram", "barrier_cy", "launches")
	for _, r := range rows {
		fmt.Fprintf(w, "gpu%-5d %12d %14d %10d %10d %12d %9d\n",
			r.Device, r.Cycles, r.Instructions, r.L2Accesses, r.DRAMAccesses,
			r.FastForwardedCycles, r.Launches)
	}
}

// DecodeThroughputRow is one simulation mode's summary of a repeated
// KV-cached greedy-decode batch for DecodeThroughputSummary and
// DecodeThroughputCSV: generated tokens against modelled cycles, plus
// the replay-cache coverage the mode achieved (0 in detailed mode).
type DecodeThroughputRow struct {
	Mode            string // "detailed" or "hybrid"
	Iters           int
	Tokens          int // generated tokens across all iterations
	TotalCycles     uint64
	TokensPerMcycle float64
	Coverage        float64 // replayed fraction of launches, 0..1
}

// DecodeThroughputSummary renders the decode throughput comparison: what
// the steady-state decode loop costs in modelled cycles and how much of
// it the replay cache absorbs.
func DecodeThroughputSummary(w io.Writer, title string, rows []DecodeThroughputRow) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-10s %6s %8s %14s %12s %10s\n",
		"mode", "iters", "tokens", "total_cycles", "tok/Mcycle", "coverage%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %8d %14d %12.2f %10.1f\n",
			r.Mode, r.Iters, r.Tokens, r.TotalCycles, r.TokensPerMcycle, 100*r.Coverage)
	}
}

// DecodeThroughputCSV writes the decode throughput rows as
// decode_throughput.csv.
func DecodeThroughputCSV(w io.Writer, rows []DecodeThroughputRow) error {
	var b strings.Builder
	b.WriteString("mode,iters,tokens,total_cycles,tokens_per_mcycle,coverage\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%.6g,%.6g\n",
			r.Mode, r.Iters, r.Tokens, r.TotalCycles, r.TokensPerMcycle, r.Coverage)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ServeLatencyRow is one serving-clock window of an inference-serving
// run for ServeLatencySummary and ServeLatencyCSV: completions in the
// window with their nearest-rank latency percentiles (mirrors the serve
// package's LatencyBucket without importing it).
type ServeLatencyRow struct {
	EndCycle  uint64
	Completed int
	P50       float64
	P99       float64
	P999      float64
}

// ServeLatencySummary renders latency percentiles over serving time —
// the aerial view of a saturation transient: watch p99 climb window by
// window once the open-loop queue outruns the batch.
func ServeLatencySummary(w io.Writer, title string, rows []ServeLatencyRow) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%12s %10s %12s %12s %12s\n",
		"window_end", "completed", "p50_cy", "p99_cy", "p99.9_cy")
	for _, r := range rows {
		if r.Completed == 0 {
			fmt.Fprintf(w, "%12d %10d %12s %12s %12s\n", r.EndCycle, 0, "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "%12d %10d %12.0f %12.0f %12.0f\n",
			r.EndCycle, r.Completed, r.P50, r.P99, r.P999)
	}
}

// ServeLatencyCSV writes the serving latency windows as serve_latency.csv.
func ServeLatencyCSV(w io.Writer, rows []ServeLatencyRow) error {
	var b strings.Builder
	b.WriteString("window_end_cycle,completed,p50_cycles,p99_cycles,p999_cycles\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%d,%.6g,%.6g,%.6g\n", r.EndCycle, r.Completed, r.P50, r.P99, r.P999)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// TrainLossRow is one training step of a transformer training run for
// TrainLossSummary and TrainLossCSV: the device loss next to the CPU
// mirror's, so a plotted curve shows both trajectories and their gap.
type TrainLossRow struct {
	Step     int
	Loss     float64
	CPULoss  float64
	Replayed bool // step retired (at least partly) from the replay cache
}

// TrainLossSummary renders the loss curve of a training run — the
// aerial view of the training-step workload: device loss, host-mirror
// loss and whether the step replayed from the cache.
func TrainLossSummary(w io.Writer, title string, rows []TrainLossRow) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%6s %12s %12s %10s %8s\n", "step", "loss", "cpu_loss", "|diff|", "replayed")
	for _, r := range rows {
		d := r.Loss - r.CPULoss
		if d < 0 {
			d = -d
		}
		rep := ""
		if r.Replayed {
			rep = "yes"
		}
		fmt.Fprintf(w, "%6d %12.5f %12.5f %10.2g %8s\n", r.Step, r.Loss, r.CPULoss, d, rep)
	}
}

// TrainLossCSV writes the training loss curve as train_loss.csv.
func TrainLossCSV(w io.Writer, rows []TrainLossRow) error {
	var b strings.Builder
	b.WriteString("step,loss,cpu_loss,replayed\n")
	for _, r := range rows {
		rep := 0
		if r.Replayed {
			rep = 1
		}
		fmt.Fprintf(&b, "%d,%.6g,%.6g,%d\n", r.Step, r.Loss, r.CPULoss, rep)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes rows as CSV with a header of bucket indices.
func CSV(w io.Writer, rowNames []string, rows [][]float64) error {
	width := 0
	for _, r := range rows {
		if len(r) > width {
			width = len(r)
		}
	}
	var b strings.Builder
	b.WriteString("series")
	for i := 0; i < width; i++ {
		fmt.Fprintf(&b, ",%d", i)
	}
	b.WriteByte('\n')
	for i, r := range rows {
		b.WriteString(rowNames[i])
		for c := 0; c < width; c++ {
			if c < len(r) {
				fmt.Fprintf(&b, ",%.6g", r[c])
			} else {
				b.WriteString(",0")
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
