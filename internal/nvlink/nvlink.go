// Package nvlink models an NVLink-style inter-device fabric for the
// multi-GPU node: directed point-to-point links with finite bandwidth
// and fixed hop latency, reserved in the same absolute-time idiom as the
// PR 5 memory hierarchy — every link is a monotonically advancing busy
// horizon, a transfer starts at max(ready, horizon), and the horizon
// never rewinds. On top of raw transfers it provides the two collective
// schedules the multi-GPU workloads use: a ring all-reduce
// (reduce-scatter + all-gather, 2(N-1) phases) and a ring all-gather
// (N-1 phases).
//
// The fabric models *timing only*. The functional side of a collective
// (summing gradients, concatenating activation shards) is performed by
// the coordinator in internal/multigpu; the fabric answers "at which
// modelled cycle does every device hold the result", and the caller
// fast-forwards each engine to that cycle. All methods are
// coordinator-only and deterministic: completion cycles depend only on
// the byte counts and the ready cycles passed in, never on host
// scheduling.
package nvlink

import "fmt"

// Config sizes the fabric's links. All devices are fully connected by
// directed links of identical bandwidth and latency (the single-hop
// NVLink topology of a DGX-style node, simplified).
type Config struct {
	// LinkBytesPerCycle is the payload bandwidth of one directed link in
	// bytes per modelled core cycle.
	LinkBytesPerCycle float64
	// LatencyCycles is the fixed per-transfer latency (serialisation +
	// hop) in modelled core cycles, charged once per transfer.
	LatencyCycles uint64
}

// DefaultConfig models a single NVLink-class link per device pair at
// the GTX 1050 core clock: ~25 GB/s per direction at 1.392 GHz is ~18
// bytes/cycle, with a ~600-cycle transfer setup latency.
func DefaultConfig() Config {
	return Config{LinkBytesPerCycle: 18, LatencyCycles: 600}
}

// Stats accumulates fabric-wide counters.
type Stats struct {
	Transfers       uint64 // point-to-point transfers reserved
	BytesMoved      uint64 // payload bytes moved over links
	OccupancyCycles uint64 // cycles links spent serialising payload
	StallCycles     uint64 // cycles transfers waited on a busy link
}

// Fabric is the modelled inter-device network of one simulated node.
type Fabric struct {
	cfg   Config
	n     int
	busy  [][]uint64 // [src][dst] directed link horizon (absolute cycle)
	stats Stats
}

// New builds a fabric connecting n devices. Config zero values fall
// back to DefaultConfig.
func New(n int, cfg Config) (*Fabric, error) {
	if n < 1 {
		return nil, fmt.Errorf("nvlink: fabric needs at least 1 device, got %d", n)
	}
	def := DefaultConfig()
	if cfg.LinkBytesPerCycle <= 0 {
		cfg.LinkBytesPerCycle = def.LinkBytesPerCycle
	}
	if cfg.LatencyCycles == 0 {
		cfg.LatencyCycles = def.LatencyCycles
	}
	f := &Fabric{cfg: cfg, n: n, busy: make([][]uint64, n)}
	for i := range f.busy {
		f.busy[i] = make([]uint64, n)
	}
	return f, nil
}

// Devices returns the number of devices the fabric connects.
func (f *Fabric) Devices() int { return f.n }

// Config returns the fabric's link configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Stats returns the accumulated fabric counters.
func (f *Fabric) Stats() Stats { return f.stats }

// payloadCycles converts a transfer size to link occupancy cycles
// (rounded up; a zero-byte transfer still costs one cycle so horizons
// always advance).
func (f *Fabric) payloadCycles(bytes int) uint64 {
	c := uint64(float64(bytes)/f.cfg.LinkBytesPerCycle + 0.999999)
	if c == 0 {
		c = 1
	}
	return c
}

// Transfer reserves the directed src→dst link for a bytes-sized
// transfer that is ready to start at `ready`, and returns the modelled
// start and completion cycles. The link horizon only advances: the
// transfer starts at max(ready, horizon) and the wait is charged to the
// stall counter.
func (f *Fabric) Transfer(src, dst, bytes int, ready uint64) (start, end uint64) {
	if src < 0 || src >= f.n || dst < 0 || dst >= f.n || src == dst {
		// A malformed route is a programming error in the collective
		// schedule; model it as a zero-cost no-op rather than panicking.
		return ready, ready
	}
	start = ready
	if h := f.busy[src][dst]; h > start {
		f.stats.StallCycles += h - start
		start = h
	}
	occ := f.payloadCycles(bytes)
	end = start + f.cfg.LatencyCycles + occ
	f.busy[src][dst] = end
	f.stats.Transfers++
	f.stats.BytesMoved += uint64(bytes)
	f.stats.OccupancyCycles += occ
	return start, end
}

// maxReady returns the latest ready cycle (collectives rendezvous: no
// phase starts before every participant arrived).
func maxReady(ready []uint64) uint64 {
	var m uint64
	for _, r := range ready {
		if r > m {
			m = r
		}
	}
	return m
}

// RingAllReduce reserves a ring all-reduce of a bytes-sized buffer
// resident on every device (device i ready at ready[i]) and returns the
// cycle at which every device holds the reduced result. The schedule is
// the classic reduce-scatter + all-gather ring: 2(N-1) phases, each
// moving one ⌈bytes/N⌉ chunk per directed neighbour link, phases
// separated by a rendezvous (the chunk a device forwards in phase p+1
// is the one it received in phase p).
func (f *Fabric) RingAllReduce(bytes int, ready []uint64) uint64 {
	n := f.n
	at := maxReady(ready)
	if n <= 1 || bytes <= 0 {
		return at
	}
	chunk := (bytes + n - 1) / n
	for phase := 0; phase < 2*(n-1); phase++ {
		var phaseEnd uint64
		for src := 0; src < n; src++ {
			_, end := f.Transfer(src, (src+1)%n, chunk, at)
			if end > phaseEnd {
				phaseEnd = end
			}
		}
		at = phaseEnd
	}
	return at
}

// RingAllGather reserves a ring all-gather where every device
// contributes a shardBytes-sized shard (device i ready at ready[i]) and
// returns the cycle at which every device holds all N shards: N-1
// phases, each forwarding one full shard per directed neighbour link.
func (f *Fabric) RingAllGather(shardBytes int, ready []uint64) uint64 {
	n := f.n
	at := maxReady(ready)
	if n <= 1 || shardBytes <= 0 {
		return at
	}
	for phase := 0; phase < n-1; phase++ {
		var phaseEnd uint64
		for src := 0; src < n; src++ {
			_, end := f.Transfer(src, (src+1)%n, shardBytes, at)
			if end > phaseEnd {
				phaseEnd = end
			}
		}
		at = phaseEnd
	}
	return at
}
