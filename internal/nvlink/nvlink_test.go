package nvlink

import "testing"

func TestTransferReservations(t *testing.T) {
	f, err := New(2, Config{LinkBytesPerCycle: 16, LatencyCycles: 100})
	if err != nil {
		t.Fatal(err)
	}
	// First transfer: starts at ready, occupies ceil(1600/16)=100 cycles
	// plus latency.
	start, end := f.Transfer(0, 1, 1600, 50)
	if start != 50 {
		t.Fatalf("start = %d, want 50", start)
	}
	if end != 50+100+100 {
		t.Fatalf("end = %d, want 250", end)
	}
	// Second transfer on the same link arrives earlier than the horizon:
	// it must queue behind the first (start at the horizon, stall charged).
	start2, end2 := f.Transfer(0, 1, 160, 100)
	if start2 != end {
		t.Fatalf("queued start = %d, want %d", start2, end)
	}
	if end2 != end+100+10 {
		t.Fatalf("queued end = %d, want %d", end2, end+110)
	}
	// The reverse link is independent.
	start3, _ := f.Transfer(1, 0, 160, 100)
	if start3 != 100 {
		t.Fatalf("reverse-link start = %d, want 100 (links are directed)", start3)
	}
	st := f.Stats()
	if st.Transfers != 3 {
		t.Fatalf("Transfers = %d, want 3", st.Transfers)
	}
	if st.BytesMoved != 1600+160+160 {
		t.Fatalf("BytesMoved = %d, want 1920", st.BytesMoved)
	}
	if st.StallCycles != end-100 {
		t.Fatalf("StallCycles = %d, want %d", st.StallCycles, end-100)
	}
}

func TestHorizonsOnlyAdvance(t *testing.T) {
	f, _ := New(2, Config{})
	_, end1 := f.Transfer(0, 1, 1<<20, 0)
	// A later transfer with an earlier ready cycle must not start before
	// the horizon.
	start2, end2 := f.Transfer(0, 1, 4, 0)
	if start2 < end1 {
		t.Fatalf("horizon rewound: start %d < previous end %d", start2, end1)
	}
	if end2 <= end1 {
		t.Fatalf("end %d did not advance past %d", end2, end1)
	}
}

func TestRingAllReduceShape(t *testing.T) {
	cfg := Config{LinkBytesPerCycle: 16, LatencyCycles: 100}
	for _, n := range []int{2, 4} {
		f, _ := New(n, cfg)
		ready := make([]uint64, n)
		ready[n-1] = 1000 // stragglers gate the rendezvous
		bytes := 1 << 16
		end := f.RingAllReduce(bytes, ready)
		chunk := (bytes + n - 1) / n
		perPhase := uint64(100) + uint64((chunk+15)/16)
		want := uint64(1000) + uint64(2*(n-1))*perPhase
		if end != want {
			t.Fatalf("n=%d: all-reduce end = %d, want %d", n, end, want)
		}
		st := f.Stats()
		if st.Transfers != uint64(2*(n-1)*n) {
			t.Fatalf("n=%d: transfers = %d, want %d", n, st.Transfers, 2*(n-1)*n)
		}
	}
}

func TestRingAllGatherShape(t *testing.T) {
	f, _ := New(4, Config{LinkBytesPerCycle: 16, LatencyCycles: 100})
	shard := 1 << 12
	end := f.RingAllGather(shard, []uint64{0, 0, 0, 0})
	perPhase := uint64(100) + uint64(shard/16)
	if want := 3 * perPhase; end != want {
		t.Fatalf("all-gather end = %d, want %d", end, want)
	}
}

func TestSingleDeviceCollectivesAreFree(t *testing.T) {
	f, _ := New(1, Config{})
	if end := f.RingAllReduce(1<<20, []uint64{42}); end != 42 {
		t.Fatalf("1-device all-reduce end = %d, want 42", end)
	}
	if end := f.RingAllGather(1<<20, []uint64{7}); end != 7 {
		t.Fatalf("1-device all-gather end = %d, want 7", end)
	}
	if st := f.Stats(); st.Transfers != 0 {
		t.Fatalf("1-device collectives reserved %d transfers, want 0", st.Transfers)
	}
}

func TestCollectivesDeterministic(t *testing.T) {
	run := func() (uint64, Stats) {
		f, _ := New(4, Config{})
		end := f.RingAllReduce(123457, []uint64{3, 1, 4, 1})
		end = f.RingAllGather(999, []uint64{end, end, end, end})
		return end, f.Stats()
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("collective schedule not deterministic: %d/%+v vs %d/%+v", e1, s1, e2, s2)
	}
}
