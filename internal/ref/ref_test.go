package ref_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ref"
)

func almost(a, b, tol float32) bool {
	d := a - b
	return d >= -tol && d <= tol
}

// TestConvForwardMatchesIm2ColGemm cross-checks the two independent conv
// formulations the package provides: direct convolution vs im2col
// expansion followed by a GEMM with the flattened filters.
func TestConvForwardMatchesIm2ColGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := ref.TensorShape4{N: 1, C: 3, H: 9, W: 7}
	k, r := 4, 3
	p := ref.ConvParams{Stride: 2, Pad: 1}
	x := make([]float32, xs.Count())
	for i := range x {
		x[i] = rng.Float32() - 0.5
	}
	w := make([]float32, k*xs.C*r*r)
	for i := range w {
		w[i] = rng.Float32() - 0.5
	}
	direct, ys := ref.Conv2DForward(x, xs, w, k, r, p)

	cols := ref.Im2Col(x, xs.C, xs.H, xs.W, r, r, ys.H, ys.W, p.Stride, p.Pad)
	gemmOut := make([]float32, k*ys.H*ys.W)
	ref.Gemm(w, cols, gemmOut, k, ys.H*ys.W, xs.C*r*r, 1, 0)

	for i := range direct {
		if !almost(direct[i], gemmOut[i], 1e-4) {
			t.Fatalf("direct vs im2col+gemm mismatch at %d: %v vs %v", i, direct[i], gemmOut[i])
		}
	}
}

// TestConvBackwardFilterMatchesForwardIdentity checks dw via the
// definition: dw = d/dw <y, dy> computed by forward perturbation on a
// tiny problem.
func TestConvBackwardFilterMatchesForwardIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := ref.TensorShape4{N: 1, C: 1, H: 5, W: 5}
	k, r := 1, 3
	p := ref.ConvParams{Stride: 1, Pad: 0}
	x := make([]float32, xs.Count())
	for i := range x {
		x[i] = rng.Float32() - 0.5
	}
	w := make([]float32, k*xs.C*r*r)
	for i := range w {
		w[i] = rng.Float32() - 0.5
	}
	_, ys := ref.Conv2DForward(x, xs, w, k, r, p)
	dy := make([]float32, ys.Count())
	for i := range dy {
		dy[i] = rng.Float32() - 0.5
	}
	dw := ref.Conv2DBackwardFilter(x, xs, dy, ys, r, p)

	// numeric gradient for every filter tap
	const eps = 1e-2
	for i := range w {
		wp := append([]float32(nil), w...)
		wp[i] += eps
		yp, _ := ref.Conv2DForward(x, xs, wp, k, r, p)
		wm := append([]float32(nil), w...)
		wm[i] -= eps
		ym, _ := ref.Conv2DForward(x, xs, wm, k, r, p)
		var num float32
		for j := range dy {
			num += dy[j] * (yp[j] - ym[j]) / (2 * eps)
		}
		if !almost(dw[i], num, 1e-2) {
			t.Fatalf("dw[%d] = %v, numeric %v", i, dw[i], num)
		}
	}
}

// TestConvBackwardDataAdjoint checks <dy, conv(x)> == <dx, x> for the
// zero-initialised adjoint pair — backward-data must be the transpose of
// forward.
func TestConvBackwardDataAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := ref.TensorShape4{N: 1, C: 2, H: 6, W: 6}
	k, r := 3, 3
	p := ref.ConvParams{Stride: 1, Pad: 1}
	x := make([]float32, xs.Count())
	for i := range x {
		x[i] = rng.Float32() - 0.5
	}
	w := make([]float32, k*xs.C*r*r)
	for i := range w {
		w[i] = rng.Float32() - 0.5
	}
	y, ys := ref.Conv2DForward(x, xs, w, k, r, p)
	dy := make([]float32, ys.Count())
	for i := range dy {
		dy[i] = rng.Float32() - 0.5
	}
	dx := ref.Conv2DBackwardData(dy, ys, w, xs.C, r, xs, p)

	var lhs, rhs float64
	for i := range dy {
		lhs += float64(dy[i]) * float64(y[i])
	}
	for i := range x {
		rhs += float64(dx[i]) * float64(x[i])
	}
	if math.Abs(lhs-rhs) > 1e-3 {
		t.Fatalf("adjoint identity violated: <dy,Ax>=%v but <A'dy,x>=%v", lhs, rhs)
	}
}

func TestGemmIdentityAndBeta(t *testing.T) {
	// multiplying by the identity returns the input; beta accumulates.
	const n = 4
	id := make([]float32, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	b := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	c := make([]float32, n*n)
	ref.Gemm(id, b, c, n, n, n, 1, 0)
	for i := range b {
		if c[i] != b[i] {
			t.Fatalf("I*B mismatch at %d: %v vs %v", i, c[i], b[i])
		}
	}
	ref.Gemm(id, b, c, n, n, n, 1, 1) // c = B + c = 2B
	for i := range b {
		if c[i] != 2*b[i] {
			t.Fatalf("beta accumulate mismatch at %d: %v vs %v", i, c[i], 2*b[i])
		}
	}
}

func TestGemvTMatchesGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows, cols := 6, 5
	a := make([]float32, rows*cols)
	x := make([]float32, rows)
	for i := range a {
		a[i] = rng.Float32() - 0.5
	}
	for i := range x {
		x[i] = rng.Float32() - 0.5
	}
	y := make([]float32, cols)
	ref.GemvT(a, x, y, rows, cols, 1, 0)
	// Aᵀx as a 1-row GEMM: (xᵀ A)
	want := make([]float32, cols)
	ref.Gemm(x, a, want, 1, cols, rows, 1, 0)
	for i := range want {
		if !almost(y[i], want[i], 1e-5) {
			t.Fatalf("GemvT vs Gemm mismatch at %d: %v vs %v", i, y[i], want[i])
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	xs := ref.TensorShape4{N: 1, C: 1, H: 4, W: 4}
	x := []float32{
		1, 2, 0, 0,
		3, 4, 0, 5,
		0, 0, 9, 8,
		0, 6, 7, 0,
	}
	y, idx, ys := ref.MaxPoolForward(x, xs, 2, 2)
	if ys.H != 2 || ys.W != 2 {
		t.Fatalf("bad output shape %+v", ys)
	}
	want := []float32{4, 5, 6, 9}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("pool[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	dy := []float32{1, 2, 3, 4}
	dx := ref.MaxPoolBackward(dy, idx, xs.Count())
	var sum float32
	for i, g := range dx {
		sum += g
		if g != 0 && x[i] != y[0] && x[i] != y[1] && x[i] != y[2] && x[i] != y[3] {
			t.Fatalf("gradient scattered to a non-argmax position %d", i)
		}
	}
	if sum != 10 {
		t.Fatalf("gradient mass %v, want 10", sum)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows, cols := 5, 7
	x := make([]float32, rows*cols)
	for i := range x {
		x[i] = rng.Float32()*20 - 10 // large logits: exercises max-shift stability
	}
	y := ref.Softmax(x, rows, cols)
	for r := 0; r < rows; r++ {
		var sum float32
		for j := 0; j < cols; j++ {
			v := y[r*cols+j]
			if v < 0 || v > 1 || v != v {
				t.Fatalf("prob[%d,%d] = %v out of range", r, j, v)
			}
			sum += v
		}
		if !almost(sum, 1, 1e-5) {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
}

func TestSoftmaxNLLBackwardAndLoss(t *testing.T) {
	y := ref.Softmax([]float32{1, 2, 3, 0, 0, 0}, 2, 3)
	labels := []int32{2, 0}
	dx := ref.SoftmaxNLLBackward(y, labels, 2, 3)
	// rows of dx must sum to 0 (softmax gradient) and point away from the label
	for r := 0; r < 2; r++ {
		var sum float32
		for j := 0; j < 3; j++ {
			sum += dx[r*3+j]
		}
		if !almost(sum, 0, 1e-6) {
			t.Fatalf("dx row %d sums to %v", r, sum)
		}
		if dx[r*3+int(labels[r])] >= 0 {
			t.Fatalf("gradient at the true label must be negative, got %v", dx[r*3+int(labels[r])])
		}
	}
	// uniform predictions give loss log(cols)
	uni := []float32{1. / 3, 1. / 3, 1. / 3}
	loss := ref.NLLLoss(uni, []int32{1}, 1, 3)
	if !almost(loss, float32(math.Log(3)), 1e-5) {
		t.Fatalf("uniform NLL = %v, want ln 3 = %v", loss, math.Log(3))
	}
}

func TestReluAndBackward(t *testing.T) {
	x := []float32{-1, 0, 2, -0.5, 3}
	y := ref.Relu(x)
	want := []float32{0, 0, 2, 0, 3}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("relu[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	dy := []float32{10, 20, 30, 40, 50}
	dx := ref.ReluBackward(dy, x)
	wantDx := []float32{0, 0, 30, 0, 50}
	for i := range wantDx {
		if dx[i] != wantDx[i] {
			t.Fatalf("relu'[%d] = %v, want %v", i, dx[i], wantDx[i])
		}
	}
}

func TestLRNForwardBackwardConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c, hw, win := 5, 6, 5
	k, alpha, beta := float32(2), float32(1e-3), float32(0.75)
	x := make([]float32, c*hw)
	for i := range x {
		x[i] = rng.Float32() - 0.5
	}
	y := ref.LRNForward(x, c, hw, win, k, alpha, beta)
	// with tiny alpha the denominator is ~k^beta: y ≈ x / k^0.75
	scale := float32(math.Pow(float64(k), float64(beta)))
	for i := range y {
		if !almost(y[i]*scale, x[i], 1e-2) {
			t.Fatalf("LRN[%d] = %v, expected ≈ %v", i, y[i], x[i]/scale)
		}
	}
	dy := make([]float32, len(x))
	for i := range dy {
		dy[i] = rng.Float32() - 0.5
	}
	dx := ref.LRNBackward(x, y, dy, c, hw, win, k, alpha, beta)
	if len(dx) != len(x) {
		t.Fatal("LRNBackward size mismatch")
	}
	// tiny alpha: dx ≈ dy / k^beta
	for i := range dx {
		if !almost(dx[i]*scale, dy[i], 2e-2) {
			t.Fatalf("LRN'[%d] = %v, expected ≈ %v", i, dx[i], dy[i]/scale)
		}
	}
}

func TestAddBiasAndArgmax(t *testing.T) {
	y := make([]float32, 2*3*2) // n=2, c=3, spatial=2
	ref.AddBias(y, []float32{1, 2, 3}, 2, 3, 2)
	want := []float32{1, 1, 2, 2, 3, 3, 1, 1, 2, 2, 3, 3}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("AddBias[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	am := ref.Argmax([]float32{0, 5, 2, 9, 1, 0}, 2, 3)
	if am[0] != 1 || am[1] != 0 {
		t.Fatalf("Argmax = %v, want [1 0]", am)
	}
}

func TestConvOutGeometry(t *testing.T) {
	p := ref.ConvParams{Stride: 2, Pad: 1}
	if got := p.ConvOut(28, 5); got != 13 {
		t.Fatalf("ConvOut(28,5) stride2 pad1 = %d, want 13", got)
	}
	if got := (ref.ConvParams{Stride: 1, Pad: 2}).ConvOut(28, 5); got != 28 {
		t.Fatalf("same-padding ConvOut = %d, want 28", got)
	}
}
