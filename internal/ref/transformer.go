package ref

// CPU reference implementations of the transformer-inference operators,
// the oracles for the internal/kernels transformer module and the
// ForwardCPU paths of the internal/torch transformer layers.

import "math"

// LayerNorm normalises each row of x[rows, cols] to zero mean and unit
// variance and applies the affine parameters: y = (x-μ)/√(σ²+eps)·γ+β.
func LayerNorm(x, gamma, beta []float32, rows, cols int, eps float32) []float32 {
	y := make([]float32, len(x))
	for r := 0; r < rows; r++ {
		row := x[r*cols : (r+1)*cols]
		var sum float64
		for _, v := range row {
			sum += float64(v)
		}
		mean := sum / float64(cols)
		var sq float64
		for _, v := range row {
			d := float64(v) - mean
			sq += d * d
		}
		inv := 1 / math.Sqrt(sq/float64(cols)+float64(eps))
		for j, v := range row {
			y[r*cols+j] = float32((float64(v)-mean)*inv)*gamma[j] + beta[j]
		}
	}
	return y
}

// Gelu computes the tanh-form GELU:
// y = 0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³))).
func Gelu(x []float32) []float32 {
	y := make([]float32, len(x))
	const c0 = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range x {
		z := float64(v)
		y[i] = float32(0.5 * z * (1 + math.Tanh(c0*(z+0.044715*z*z*z))))
	}
	return y
}

// AddResidual computes y[i] = x[i] + r[i].
func AddResidual(x, r []float32) []float32 {
	y := make([]float32, len(x))
	for i := range x {
		y[i] = x[i] + r[i]
	}
	return y
}

// GemmNT computes C = alpha*A*Bᵀ + beta*C for row-major A[m,k], B[n,k].
func GemmNT(a, bm, cm []float32, m, n, k int, alpha, beta float32) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += a[i*k+p] * bm[j*k+p]
			}
			cm[i*n+j] = alpha*acc + beta*cm[i*n+j]
		}
	}
}

// SplitHeads permutes x[seq, heads*dh] into [heads, seq, dh].
func SplitHeads(x []float32, seq, heads, dh int) []float32 {
	y := make([]float32, len(x))
	for h := 0; h < heads; h++ {
		for s := 0; s < seq; s++ {
			for d := 0; d < dh; d++ {
				y[(h*seq+s)*dh+d] = x[(s*heads+h)*dh+d]
			}
		}
	}
	return y
}

// MergeHeads permutes x[heads, seq, dh] back into [seq, heads*dh].
func MergeHeads(x []float32, seq, heads, dh int) []float32 {
	y := make([]float32, len(x))
	for s := 0; s < seq; s++ {
		for h := 0; h < heads; h++ {
			for d := 0; d < dh; d++ {
				y[(s*heads+h)*dh+d] = x[(h*seq+s)*dh+d]
			}
		}
	}
	return y
}

// EmbeddingLookup gathers rows of table[vocab, cols] by id.
func EmbeddingLookup(table []float32, ids []int32, cols int) []float32 {
	y := make([]float32, len(ids)*cols)
	for i, id := range ids {
		copy(y[i*cols:(i+1)*cols], table[int(id)*cols:(int(id)+1)*cols])
	}
	return y
}
