// Package ref contains straightforward CPU reference implementations of
// every operator the GPU library provides. They serve three roles: the
// golden oracle for kernel unit tests, the "self-checking code" analog of
// the paper's MNIST sample (§IV), and the CPU execution path of the
// mini-framework in internal/torch.
package ref

import "math"

// TensorShape4 describes an NCHW tensor.
type TensorShape4 struct{ N, C, H, W int }

// Count returns the element count.
func (s TensorShape4) Count() int { return s.N * s.C * s.H * s.W }

// ConvParams describes a square-window convolution (cross-correlation).
type ConvParams struct {
	Stride int
	Pad    int
}

// ConvOut returns the output spatial size for input edge h and filter r.
func (p ConvParams) ConvOut(h, r int) int {
	return (h+2*p.Pad-r)/p.Stride + 1
}

// Conv2DForward computes y[n,k,oy,ox] = Σ x[n,c,oy*s-p+r, ox*s-p+q] *
// w[k,c,r,q] (cross-correlation, NCHW / KCRS).
func Conv2DForward(x []float32, xs TensorShape4, w []float32, k, r int, p ConvParams) ([]float32, TensorShape4) {
	oh := p.ConvOut(xs.H, r)
	ow := p.ConvOut(xs.W, r)
	ys := TensorShape4{N: xs.N, C: k, H: oh, W: ow}
	y := make([]float32, ys.Count())
	for n := 0; n < xs.N; n++ {
		for kk := 0; kk < k; kk++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float32
					for c := 0; c < xs.C; c++ {
						for rr := 0; rr < r; rr++ {
							iy := oy*p.Stride - p.Pad + rr
							if iy < 0 || iy >= xs.H {
								continue
							}
							for qq := 0; qq < r; qq++ {
								ix := ox*p.Stride - p.Pad + qq
								if ix < 0 || ix >= xs.W {
									continue
								}
								xv := x[((n*xs.C+c)*xs.H+iy)*xs.W+ix]
								wv := w[((kk*xs.C+c)*r+rr)*r+qq]
								acc += xv * wv
							}
						}
					}
					y[((n*k+kk)*oh+oy)*ow+ox] = acc
				}
			}
		}
	}
	return y, ys
}

// Conv2DBackwardData computes dx given dy and w.
func Conv2DBackwardData(dy []float32, ys TensorShape4, w []float32, c, r int, xs TensorShape4, p ConvParams) []float32 {
	dx := make([]float32, xs.Count())
	k := ys.C
	for n := 0; n < xs.N; n++ {
		for kk := 0; kk < k; kk++ {
			for oy := 0; oy < ys.H; oy++ {
				for ox := 0; ox < ys.W; ox++ {
					g := dy[((n*k+kk)*ys.H+oy)*ys.W+ox]
					for cc := 0; cc < c; cc++ {
						for rr := 0; rr < r; rr++ {
							iy := oy*p.Stride - p.Pad + rr
							if iy < 0 || iy >= xs.H {
								continue
							}
							for qq := 0; qq < r; qq++ {
								ix := ox*p.Stride - p.Pad + qq
								if ix < 0 || ix >= xs.W {
									continue
								}
								dx[((n*c+cc)*xs.H+iy)*xs.W+ix] += g * w[((kk*c+cc)*r+rr)*r+qq]
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Conv2DBackwardFilter computes dw given x and dy.
func Conv2DBackwardFilter(x []float32, xs TensorShape4, dy []float32, ys TensorShape4, r int, p ConvParams) []float32 {
	k := ys.C
	dw := make([]float32, k*xs.C*r*r)
	for n := 0; n < xs.N; n++ {
		for kk := 0; kk < k; kk++ {
			for oy := 0; oy < ys.H; oy++ {
				for ox := 0; ox < ys.W; ox++ {
					g := dy[((n*k+kk)*ys.H+oy)*ys.W+ox]
					for cc := 0; cc < xs.C; cc++ {
						for rr := 0; rr < r; rr++ {
							iy := oy*p.Stride - p.Pad + rr
							if iy < 0 || iy >= xs.H {
								continue
							}
							for qq := 0; qq < r; qq++ {
								ix := ox*p.Stride - p.Pad + qq
								if ix < 0 || ix >= xs.W {
									continue
								}
								dw[((kk*xs.C+cc)*r+rr)*r+qq] += g * x[((n*xs.C+cc)*xs.H+iy)*xs.W+ix]
							}
						}
					}
				}
			}
		}
	}
	return dw
}

// Gemm computes C = alpha*A*B + beta*C for row-major A[M,K], B[K,N].
func Gemm(a, bm, cm []float32, m, n, k int, alpha, beta float32) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += a[i*k+p] * bm[p*n+j]
			}
			cm[i*n+j] = alpha*acc + beta*cm[i*n+j]
		}
	}
}

// GemvT computes y = alpha*Aᵀx + beta*y for row-major A[rows, cols].
func GemvT(a, x, y []float32, rows, cols int, alpha, beta float32) {
	for j := 0; j < cols; j++ {
		var acc float32
		for i := 0; i < rows; i++ {
			acc += a[i*cols+j] * x[i]
		}
		y[j] = alpha*acc + beta*y[j]
	}
}

// Im2Col expands a single image x[C,H,W] exactly like the GPU kernel.
func Im2Col(x []float32, c, h, w, r, s, oh, ow, stride, pad int) []float32 {
	out := make([]float32, c*r*s*oh*ow)
	i := 0
	for cc := 0; cc < c; cc++ {
		for rr := 0; rr < r; rr++ {
			for ss := 0; ss < s; ss++ {
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						iy := oy*stride - pad + rr
						ix := ox*stride - pad + ss
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							out[i] = x[(cc*h+iy)*w+ix]
						}
						i++
					}
				}
			}
		}
	}
	return out
}

// MaxPoolForward pools x[N,C,H,W]; returns y and flat argmax indices.
func MaxPoolForward(x []float32, xs TensorShape4, win, stride int) ([]float32, []int32, TensorShape4) {
	oh := (xs.H-win)/stride + 1
	ow := (xs.W-win)/stride + 1
	ys := TensorShape4{N: xs.N, C: xs.C, H: oh, W: ow}
	y := make([]float32, ys.Count())
	idx := make([]int32, ys.Count())
	for n := 0; n < xs.N; n++ {
		for c := 0; c < xs.C; c++ {
			base := (n*xs.C + c) * xs.H * xs.W
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bestI := 0
					for dy := 0; dy < win; dy++ {
						iy := oy*stride + dy
						if iy >= xs.H {
							continue
						}
						for dx := 0; dx < win; dx++ {
							ix := ox*stride + dx
							if ix >= xs.W {
								continue
							}
							v := x[base+iy*xs.W+ix]
							if v > best {
								best = v
								bestI = base + iy*xs.W + ix
							}
						}
					}
					o := ((n*xs.C+c)*oh+oy)*ow + ox
					y[o] = best
					idx[o] = int32(bestI)
				}
			}
		}
	}
	return y, idx, ys
}

// MaxPoolBackward scatters dy through argmax indices.
func MaxPoolBackward(dy []float32, idx []int32, inCount int) []float32 {
	dx := make([]float32, inCount)
	for i, g := range dy {
		dx[idx[i]] += g
	}
	return dx
}

// LRNForward computes cross-channel LRN over one image x[C, HW].
func LRNForward(x []float32, c, hw, win int, k, alpha, beta float32) []float32 {
	y := make([]float32, len(x))
	half := win / 2
	for cc := 0; cc < c; cc++ {
		for i := 0; i < hw; i++ {
			var sum float32
			for j := cc - half; j <= cc+half; j++ {
				if j < 0 || j >= c {
					continue
				}
				v := x[j*hw+i]
				sum += v * v
			}
			den := k + alpha/float32(win)*sum
			y[cc*hw+i] = x[cc*hw+i] / float32(math.Pow(float64(den), float64(beta)))
		}
	}
	return y
}

// LRNBackward mirrors the GPU kernel's widely-used approximation (the
// cross term divides by the current channel's denominator).
func LRNBackward(x, y, dy []float32, c, hw, win int, k, alpha, beta float32) []float32 {
	dx := make([]float32, len(x))
	half := win / 2
	aOverN := alpha / float32(win)
	for cc := 0; cc < c; cc++ {
		for i := 0; i < hw; i++ {
			var sum float32
			for j := cc - half; j <= cc+half; j++ {
				if j < 0 || j >= c {
					continue
				}
				v := x[j*hw+i]
				sum += v * v
			}
			den := k + aOverN*sum
			pow := float32(math.Pow(float64(den), float64(beta)))
			var cross float32
			for j := cc - half; j <= cc+half; j++ {
				if j < 0 || j >= c {
					continue
				}
				cross += dy[j*hw+i] * y[j*hw+i] / den
			}
			dx[cc*hw+i] = dy[cc*hw+i]/pow - 2*aOverN*beta*x[cc*hw+i]*cross
		}
	}
	return dx
}

// Softmax computes row-wise softmax over x[rows, cols].
func Softmax(x []float32, rows, cols int) []float32 {
	y := make([]float32, len(x))
	for r := 0; r < rows; r++ {
		row := x[r*cols : (r+1)*cols]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float32
		for j, v := range row {
			e := float32(math.Exp(float64(v - maxv)))
			y[r*cols+j] = e
			sum += e
		}
		for j := range row {
			y[r*cols+j] /= sum
		}
	}
	return y
}

// SoftmaxNLLBackward computes (y - onehot) / batch.
func SoftmaxNLLBackward(y []float32, labels []int32, rows, cols int) []float32 {
	dx := make([]float32, len(y))
	for r := 0; r < rows; r++ {
		for j := 0; j < cols; j++ {
			g := y[r*cols+j]
			if int32(j) == labels[r] {
				g -= 1
			}
			dx[r*cols+j] = g / float32(rows)
		}
	}
	return dx
}

// Relu computes max(x, 0).
func Relu(x []float32) []float32 {
	y := make([]float32, len(x))
	for i, v := range x {
		if v > 0 {
			y[i] = v
		}
	}
	return y
}

// ReluBackward computes dy masked by x > 0.
func ReluBackward(dy, x []float32) []float32 {
	dx := make([]float32, len(dy))
	for i := range dy {
		if x[i] > 0 {
			dx[i] = dy[i]
		}
	}
	return dx
}

// AddBias adds bias[c] to every spatial position of channel c.
func AddBias(y []float32, bias []float32, n, c, spatial int) {
	for i := range y {
		ch := (i / spatial) % c
		y[i] += bias[ch]
	}
}

// NLLLoss computes the mean negative log likelihood of softmax outputs.
func NLLLoss(y []float32, labels []int32, rows, cols int) float32 {
	var loss float64
	for r := 0; r < rows; r++ {
		p := float64(y[r*cols+int(labels[r])])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	return float32(loss / float64(rows))
}

// Argmax returns the index of the max element of each row.
func Argmax(y []float32, rows, cols int) []int {
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		best := y[r*cols]
		for j := 1; j < cols; j++ {
			if y[r*cols+j] > best {
				best = y[r*cols+j]
				out[r] = j
			}
		}
	}
	return out
}
