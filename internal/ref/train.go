package ref

// CPU reference implementations of the transformer training operators —
// the oracles for the internal/kernels train module and the BackwardCPU
// paths of the internal/torch transformer layers. Reductions run in
// float64 like the forward oracles, so the device kernels' float32
// accumulation is compared against a higher-precision truth.

import "math"

// GemmTN computes C = alpha*Aᵀ*B + beta*C for row-major A[k,m], B[k,n],
// C[m,n] — the weight-gradient GEMM (dW = xᵀ·dy).
func GemmTN(a, bm, cm []float32, m, n, k int, alpha, beta float32) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += a[p*m+i] * bm[p*n+j]
			}
			cm[i*n+j] = alpha*acc + beta*cm[i*n+j]
		}
	}
}

// LayerNormBackward differentiates LayerNorm for x[rows, cols]: given the
// upstream dy it returns dx and the per-column parameter gradients
// dgamma[j] = Σ_r dy·x̂ and dbeta[j] = Σ_r dy.
func LayerNormBackward(x, gamma, dy []float32, rows, cols int, eps float32) (dx, dgamma, dbeta []float32) {
	dx = make([]float32, len(x))
	dgamma = make([]float32, cols)
	dbeta = make([]float32, cols)
	for r := 0; r < rows; r++ {
		row := x[r*cols : (r+1)*cols]
		drow := dy[r*cols : (r+1)*cols]
		var sum float64
		for _, v := range row {
			sum += float64(v)
		}
		mean := sum / float64(cols)
		var sq float64
		for _, v := range row {
			d := float64(v) - mean
			sq += d * d
		}
		inv := 1 / math.Sqrt(sq/float64(cols)+float64(eps))
		// x̂ = (x-μ)·inv; g = dy·γ; dx = (g - mean(g) - x̂·mean(g·x̂))·inv
		var s1, s2 float64
		for j := range row {
			xh := (float64(row[j]) - mean) * inv
			g := float64(drow[j]) * float64(gamma[j])
			s1 += g
			s2 += g * xh
		}
		s1 /= float64(cols)
		s2 /= float64(cols)
		for j := range row {
			xh := (float64(row[j]) - mean) * inv
			g := float64(drow[j]) * float64(gamma[j])
			dx[r*cols+j] = float32((g - s1 - xh*s2) * inv)
			dgamma[j] += float32(float64(drow[j]) * xh)
			dbeta[j] += drow[j]
		}
	}
	return dx, dgamma, dbeta
}

// GeluBackward computes dx = dy·GELU'(x) for the tanh-form GELU.
func GeluBackward(x, dy []float32) []float32 {
	dx := make([]float32, len(x))
	const c0 = 0.7978845608028654 // sqrt(2/pi)
	const c1 = 0.044715
	for i, v := range x {
		z := float64(v)
		u := c0 * (z + c1*z*z*z)
		t := math.Tanh(u)
		du := c0 * (1 + 3*c1*z*z)
		d := 0.5*(1+t) + 0.5*z*(1-t*t)*du
		dx[i] = float32(float64(dy[i]) * d)
	}
	return dx
}

// SoftmaxBackward differentiates a row softmax: given the forward output
// probs[rows, cols] and the upstream dprobs, it returns
// dx[r,j] = probs[r,j]·(dprobs[r,j] - Σ_k dprobs[r,k]·probs[r,k]).
func SoftmaxBackward(probs, dprobs []float32, rows, cols int) []float32 {
	dx := make([]float32, len(probs))
	for r := 0; r < rows; r++ {
		var dot float64
		for j := 0; j < cols; j++ {
			dot += float64(dprobs[r*cols+j]) * float64(probs[r*cols+j])
		}
		for j := 0; j < cols; j++ {
			dx[r*cols+j] = float32(float64(probs[r*cols+j]) * (float64(dprobs[r*cols+j]) - dot))
		}
	}
	return dx
}

// SoftmaxXentBackward is the fused softmax + cross-entropy gradient on
// raw logits[rows, cols]: dx = (softmax(logits) - onehot(label))/rows,
// plus the per-row loss -log softmax(logits)[label].
func SoftmaxXentBackward(logits []float32, labels []int32, rows, cols int) (dx, loss []float32) {
	dx = make([]float32, len(logits))
	loss = make([]float32, rows)
	for r := 0; r < rows; r++ {
		row := logits[r*cols : (r+1)*cols]
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var total float64
		for _, v := range row {
			total += math.Exp(float64(v - max))
		}
		lab := int(labels[r])
		loss[r] = float32(math.Log(total) - float64(row[lab]-max))
		for j, v := range row {
			p := math.Exp(float64(v-max)) / total
			hot := 0.0
			if j == lab {
				hot = 1
			}
			dx[r*cols+j] = float32((p - hot) / float64(rows))
		}
	}
	return dx, loss
}

// EmbeddingBackward scatter-adds the output gradient dy[rows, cols] into
// a [vocab, cols] table gradient by token id — the weight-update pattern
// the device kernel implements with global atomics.
func EmbeddingBackward(dy []float32, ids []int32, vocab, cols int) []float32 {
	dt := make([]float32, vocab*cols)
	for i, id := range ids {
		for j := 0; j < cols; j++ {
			dt[int(id)*cols+j] += dy[i*cols+j]
		}
	}
	return dt
}
