package ref

// CPU reference implementations of the KV-cached decode operators — the
// oracles for the internal/kernels decode module and the GenerateCPU
// path of torch.TransformerDecoder.

import "math"

func exp32(v float32) float32 { return float32(math.Exp(float64(v))) }

// CacheAppend scatters in[seq, heads*dh] into the head-major cache
// [heads, maxSeq, dh] at row offset pos (in place).
func CacheAppend(cache, in []float32, seq, heads, dh, maxSeq, pos int) {
	for s := 0; s < seq; s++ {
		for h := 0; h < heads; h++ {
			for d := 0; d < dh; d++ {
				cache[(h*maxSeq+pos+s)*dh+d] = in[(s*heads+h)*dh+d]
			}
		}
	}
}

// AttnScoresCached computes scores[h, s, t] = scale·Σ_d q[(h*seq+s)*dh+d]
// · cacheK[(h*maxSeq+t)*dh+d] for t < cacheLen, with q already split
// into [heads, seq, dh]. seq=1 is the decode-step GEMV.
func AttnScoresCached(q, cacheK []float32, seq, heads, dh, maxSeq, cacheLen int, scale float32) []float32 {
	scores := make([]float32, heads*seq*cacheLen)
	for h := 0; h < heads; h++ {
		for s := 0; s < seq; s++ {
			for t := 0; t < cacheLen; t++ {
				var acc float32
				for d := 0; d < dh; d++ {
					acc += q[(h*seq+s)*dh+d] * cacheK[(h*maxSeq+t)*dh+d]
				}
				scores[(h*seq+s)*cacheLen+t] = acc * scale
			}
		}
	}
	return scores
}

// SoftmaxCausal computes the causal-masked row softmax of x[rows, cols]:
// row r attends to the first pos + (r%seq) + 1 columns; masked columns
// are exact zeros. Mirrors the softmax_causal kernel (max-subtracted,
// float32 arithmetic).
func SoftmaxCausal(x []float32, rows, cols, seq, pos int) []float32 {
	y := make([]float32, len(x))
	for r := 0; r < rows; r++ {
		vlen := pos + r%seq + 1
		if vlen > cols {
			vlen = cols
		}
		row := x[r*cols : r*cols+vlen]
		max := float32(-3.4e38)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var total float32
		evs := make([]float32, vlen)
		for j, v := range row {
			evs[j] = exp32(v - max)
			total += evs[j]
		}
		for j := 0; j < vlen; j++ {
			y[r*cols+j] = evs[j] / total
		}
	}
	return y
}

// AttnContextCached computes out[(h*seq+s)*dh+d] = Σ_t probs[(h*seq+s)*
// cacheLen+t] · cacheV[(h*maxSeq+t)*dh+d] — the probabilities·V side of
// cached attention, output in split [heads, seq, dh] layout.
func AttnContextCached(probs, cacheV []float32, seq, heads, dh, maxSeq, cacheLen int) []float32 {
	out := make([]float32, heads*seq*dh)
	for h := 0; h < heads; h++ {
		for s := 0; s < seq; s++ {
			for d := 0; d < dh; d++ {
				var acc float32
				for t := 0; t < cacheLen; t++ {
					acc += probs[(h*seq+s)*cacheLen+t] * cacheV[(h*maxSeq+t)*dh+d]
				}
				out[(h*seq+s)*dh+d] = acc
			}
		}
	}
	return out
}

// LogitGemv computes logits[v] = Σ_d x[d]·table[v*dim+d] for the single
// activation row x[dim] against the tied embedding table [vocab, dim].
func LogitGemv(x, table []float32, vocab, dim int) []float32 {
	logits := make([]float32, vocab)
	for v := 0; v < vocab; v++ {
		var acc float32
		for d := 0; d < dim; d++ {
			acc += x[d] * table[v*dim+d]
		}
		logits[v] = acc
	}
	return logits
}
