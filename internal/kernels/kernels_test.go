package kernels_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cudart"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/kernels"
	"repro/internal/ref"
)

func newCtx(t *testing.T) *cudart.Context {
	t.Helper()
	ctx := cudart.NewContext(exec.BugSet{})
	for i, src := range kernels.AllModules() {
		if _, err := ctx.RegisterModule(src); err != nil {
			t.Fatalf("module %d failed to parse: %v", i, err)
		}
	}
	return ctx
}

func upload(t *testing.T, ctx *cudart.Context, data []float32) uint64 {
	t.Helper()
	addr, err := ctx.Malloc(uint64(4 * len(data)))
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	ctx.MemcpyF32HtoD(addr, data)
	return addr
}

func alloc(t *testing.T, ctx *cudart.Context, n int) uint64 {
	t.Helper()
	addr, err := ctx.Malloc(uint64(4 * n))
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	return addr
}

func randSlice(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32()*2 - 1
	}
	return out
}

func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func grid1D(n, block int) exec.Dim3 {
	return exec.Dim3{X: (n + block - 1) / block}
}

func TestAllModulesParse(t *testing.T) {
	ctx := newCtx(t)
	if len(ctx.Modules()) != 10 {
		t.Fatalf("expected 10 modules, got %d", len(ctx.Modules()))
	}
	// fill_zero exists in two modules (duplicate symbol across PTX files);
	// lookup must succeed and return the first registration.
	if _, _, err := ctx.LookupKernel("fill_zero"); err != nil {
		t.Fatalf("duplicate-name kernel lookup failed: %v", err)
	}
}

func TestSgemmTiled(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(1))
	cases := []struct{ m, n, k int }{
		{16, 16, 16}, {33, 17, 25}, {5, 70, 3}, {64, 64, 64},
	}
	for _, c := range cases {
		a := randSlice(rng, c.m*c.k)
		bm := randSlice(rng, c.k*c.n)
		cm := randSlice(rng, c.m*c.n)
		want := append([]float32(nil), cm...)
		ref.Gemm(a, bm, want, c.m, c.n, c.k, 1.5, 0.5)

		pa, pb, pc := upload(t, ctx, a), upload(t, ctx, bm), upload(t, ctx, cm)
		params := cudart.NewParams().Ptr(pa).Ptr(pb).Ptr(pc).
			U32(uint32(c.m)).U32(uint32(c.n)).U32(uint32(c.k)).
			U32(0).U32(0).U32(0).F32(1.5).F32(0.5)
		grid := exec.Dim3{X: (c.n + 15) / 16, Y: (c.m + 15) / 16, Z: 1}
		if _, err := ctx.Launch("sgemm_tiled", grid, exec.Dim3{X: 16, Y: 16}, params, 0); err != nil {
			t.Fatalf("launch: %v", err)
		}
		got := ctx.MemcpyF32DtoH(pc, c.m*c.n)
		if d := maxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("gemm %dx%dx%d: max diff %g", c.m, c.n, c.k, d)
		}
	}
}

func TestSgemmBatchedStrides(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(2))
	m, n, k, batch := 8, 12, 10, 4
	a := randSlice(rng, batch*m*k)
	bm := randSlice(rng, batch*k*n)
	cm := make([]float32, batch*m*n)
	want := make([]float32, batch*m*n)
	for bz := 0; bz < batch; bz++ {
		w := want[bz*m*n : (bz+1)*m*n]
		ref.Gemm(a[bz*m*k:], bm[bz*k*n:], w, m, n, k, 1, 0)
	}
	pa, pb, pc := upload(t, ctx, a), upload(t, ctx, bm), upload(t, ctx, cm)
	params := cudart.NewParams().Ptr(pa).Ptr(pb).Ptr(pc).
		U32(uint32(m)).U32(uint32(n)).U32(uint32(k)).
		U32(uint32(m * k)).U32(uint32(k * n)).U32(uint32(m * n)).F32(1).F32(0)
	grid := exec.Dim3{X: (n + 15) / 16, Y: (m + 15) / 16, Z: batch}
	if _, err := ctx.Launch("sgemm_tiled", grid, exec.Dim3{X: 16, Y: 16}, params, 0); err != nil {
		t.Fatalf("launch: %v", err)
	}
	got := ctx.MemcpyF32DtoH(pc, batch*m*n)
	if d := maxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("batched gemm: max diff %g", d)
	}
}

func TestGemv2T(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(3))
	rows, cols := 37, 19
	a := randSlice(rng, rows*cols)
	x := randSlice(rng, rows)
	y := randSlice(rng, cols)
	want := append([]float32(nil), y...)
	ref.GemvT(a, x, want, rows, cols, 2, 0.25)
	pa, px, py := upload(t, ctx, a), upload(t, ctx, x), upload(t, ctx, y)
	params := cudart.NewParams().Ptr(pa).Ptr(px).Ptr(py).
		U32(uint32(rows)).U32(uint32(cols)).F32(2).F32(0.25)
	if _, err := ctx.Launch("gemv2t", grid1D(cols, 64), exec.Dim3{X: 64}, params, 0); err != nil {
		t.Fatalf("launch: %v", err)
	}
	got := ctx.MemcpyF32DtoH(py, cols)
	if d := maxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("gemv2t: max diff %g", d)
	}
}

func TestIm2Col(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(4))
	c, h, w, r, s, stride, pad := 3, 9, 7, 3, 3, 2, 1
	oh := (h+2*pad-r)/stride + 1
	ow := (w+2*pad-s)/stride + 1
	x := randSlice(rng, c*h*w)
	want := ref.Im2Col(x, c, h, w, r, s, oh, ow, stride, pad)
	px := upload(t, ctx, x)
	pcol := alloc(t, ctx, len(want))
	params := cudart.NewParams().Ptr(px).Ptr(pcol).
		U32(uint32(c)).U32(uint32(h)).U32(uint32(w)).
		U32(uint32(r)).U32(uint32(s)).U32(uint32(oh)).U32(uint32(ow)).
		U32(uint32(stride)).U32(uint32(pad))
	tot := c * r * s * oh * ow
	if _, err := ctx.Launch("im2col", grid1D(tot, 128), exec.Dim3{X: 128}, params, 0); err != nil {
		t.Fatalf("launch: %v", err)
	}
	got := ctx.MemcpyF32DtoH(pcol, len(want))
	if d := maxAbsDiff(got, want); d != 0 {
		t.Fatalf("im2col: max diff %g", d)
	}
}

func TestElementwiseKernels(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(5))
	n := 300
	x := randSlice(rng, n)

	t.Run("relu_forward", func(t *testing.T) {
		px := upload(t, ctx, x)
		py := alloc(t, ctx, n)
		params := cudart.NewParams().Ptr(px).Ptr(py).U32(uint32(n))
		if _, err := ctx.Launch("relu_forward", grid1D(n, 128), exec.Dim3{X: 128}, params, 0); err != nil {
			t.Fatal(err)
		}
		got := ctx.MemcpyF32DtoH(py, n)
		if d := maxAbsDiff(got, ref.Relu(x)); d != 0 {
			t.Fatalf("relu diff %g", d)
		}
	})
	t.Run("relu_backward", func(t *testing.T) {
		dy := randSlice(rng, n)
		px, pdy := upload(t, ctx, x), upload(t, ctx, dy)
		pdx := alloc(t, ctx, n)
		params := cudart.NewParams().Ptr(pdy).Ptr(px).Ptr(pdx).U32(uint32(n))
		if _, err := ctx.Launch("relu_backward", grid1D(n, 128), exec.Dim3{X: 128}, params, 0); err != nil {
			t.Fatal(err)
		}
		got := ctx.MemcpyF32DtoH(pdx, n)
		if d := maxAbsDiff(got, ref.ReluBackward(dy, x)); d != 0 {
			t.Fatalf("relu bwd diff %g", d)
		}
	})
	t.Run("add_bias", func(t *testing.T) {
		c, spatial := 5, 12
		nn := 2 * c * spatial
		y := randSlice(rng, nn)
		bias := randSlice(rng, c)
		want := append([]float32(nil), y...)
		ref.AddBias(want, bias, 2, c, spatial)
		py, pb := upload(t, ctx, y), upload(t, ctx, bias)
		params := cudart.NewParams().Ptr(py).Ptr(pb).U32(uint32(nn)).U32(uint32(c)).U32(uint32(spatial))
		if _, err := ctx.Launch("add_bias", grid1D(nn, 128), exec.Dim3{X: 128}, params, 0); err != nil {
			t.Fatal(err)
		}
		got := ctx.MemcpyF32DtoH(py, nn)
		if d := maxAbsDiff(got, want); d != 0 {
			t.Fatalf("add_bias diff %g", d)
		}
	})
	t.Run("sgd_update", func(t *testing.T) {
		g := randSlice(rng, n)
		w := append([]float32(nil), x...)
		want := make([]float32, n)
		for i := range want {
			want[i] = x[i] - 0.05*g[i]
		}
		pw, pg := upload(t, ctx, w), upload(t, ctx, g)
		params := cudart.NewParams().Ptr(pw).Ptr(pg).U32(uint32(n)).F32(0.05)
		if _, err := ctx.Launch("sgd_update", grid1D(n, 128), exec.Dim3{X: 128}, params, 0); err != nil {
			t.Fatal(err)
		}
		got := ctx.MemcpyF32DtoH(pw, n)
		if d := maxAbsDiff(got, want); d > 1e-6 {
			t.Fatalf("sgd diff %g", d)
		}
	})
	t.Run("rotate_filter_180", func(t *testing.T) {
		k, c, r, s := 3, 2, 3, 3
		w := randSlice(rng, k*c*r*s)
		want := make([]float32, len(w))
		for kk := 0; kk < k; kk++ {
			for cc := 0; cc < c; cc++ {
				for rr := 0; rr < r; rr++ {
					for ss := 0; ss < s; ss++ {
						src := ((kk*c+cc)*r+rr)*s + ss
						dst := ((cc*k+kk)*r+(r-1-rr))*s + (s - 1 - ss)
						want[dst] = w[src]
					}
				}
			}
		}
		pw := upload(t, ctx, w)
		po := alloc(t, ctx, len(w))
		params := cudart.NewParams().Ptr(pw).Ptr(po).
			U32(uint32(k)).U32(uint32(c)).U32(uint32(r)).U32(uint32(s))
		if _, err := ctx.Launch("rotate_filter_180", grid1D(len(w), 64), exec.Dim3{X: 64}, params, 0); err != nil {
			t.Fatal(err)
		}
		got := ctx.MemcpyF32DtoH(po, len(w))
		if d := maxAbsDiff(got, want); d != 0 {
			t.Fatalf("rotate diff %g", d)
		}
	})
	t.Run("f16_roundtrip", func(t *testing.T) {
		px := upload(t, ctx, x)
		ph := alloc(t, ctx, (n+1)/2) // n halves = n*2 bytes
		py := alloc(t, ctx, n)
		params := cudart.NewParams().Ptr(px).Ptr(ph).U32(uint32(n))
		if _, err := ctx.Launch("convert_f32_to_f16", grid1D(n, 128), exec.Dim3{X: 128}, params, 0); err != nil {
			t.Fatal(err)
		}
		params = cudart.NewParams().Ptr(ph).Ptr(py).U32(uint32(n))
		if _, err := ctx.Launch("convert_f16_to_f32", grid1D(n, 128), exec.Dim3{X: 128}, params, 0); err != nil {
			t.Fatal(err)
		}
		got := ctx.MemcpyF32DtoH(py, n)
		for i := range got {
			want := exec.HalfToF32(exec.F32ToHalf(x[i]))
			if got[i] != want {
				t.Fatalf("f16 roundtrip[%d] = %v, want %v", i, got[i], want)
			}
		}
	})
}

func TestMaxPool(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(6))
	xs := ref.TensorShape4{N: 2, C: 3, H: 8, W: 8}
	x := randSlice(rng, xs.Count())
	wantY, wantIdx, ys := ref.MaxPoolForward(x, xs, 2, 2)

	px := upload(t, ctx, x)
	py := alloc(t, ctx, ys.Count())
	pidx := alloc(t, ctx, ys.Count())
	perImage := ys.C * ys.H * ys.W
	params := cudart.NewParams().Ptr(px).Ptr(py).Ptr(pidx).
		U32(uint32(xs.C)).U32(uint32(xs.H)).U32(uint32(xs.W)).
		U32(2).U32(2).U32(uint32(ys.H)).U32(uint32(ys.W))
	grid := exec.Dim3{X: (perImage + 127) / 128, Y: xs.N}
	if _, err := ctx.Launch("maxpool_forward", grid, exec.Dim3{X: 128}, params, 0); err != nil {
		t.Fatal(err)
	}
	gotY := ctx.MemcpyF32DtoH(py, ys.Count())
	if d := maxAbsDiff(gotY, wantY); d != 0 {
		t.Fatalf("maxpool fwd diff %g", d)
	}

	dy := randSlice(rng, ys.Count())
	wantDX := ref.MaxPoolBackward(dy, wantIdx, xs.Count())
	pdy := upload(t, ctx, dy)
	pdx := alloc(t, ctx, xs.Count())
	params = cudart.NewParams().Ptr(pdy).Ptr(pidx).Ptr(pdx).U32(uint32(ys.Count()))
	if _, err := ctx.Launch("maxpool_backward", grid1D(ys.Count(), 128), exec.Dim3{X: 128}, params, 0); err != nil {
		t.Fatal(err)
	}
	gotDX := ctx.MemcpyF32DtoH(pdx, xs.Count())
	if d := maxAbsDiff(gotDX, wantDX); d > 1e-5 {
		t.Fatalf("maxpool bwd diff %g", d)
	}
}

func TestSoftmax(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(7))
	rows, cols := 4, 10
	x := randSlice(rng, rows*cols)
	want := ref.Softmax(x, rows, cols)
	px := upload(t, ctx, x)
	py := alloc(t, ctx, rows*cols)
	params := cudart.NewParams().Ptr(px).Ptr(py).U32(uint32(cols))
	if _, err := ctx.Launch("softmax_forward", exec.Dim3{X: rows}, exec.Dim3{X: 32}, params, 0); err != nil {
		t.Fatal(err)
	}
	got := ctx.MemcpyF32DtoH(py, rows*cols)
	if d := maxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("softmax diff %g", d)
	}
	// rows sum to 1
	for r := 0; r < rows; r++ {
		var s float32
		for j := 0; j < cols; j++ {
			s += got[r*cols+j]
		}
		if math.Abs(float64(s-1)) > 1e-4 {
			t.Fatalf("row %d sums to %v", r, s)
		}
	}
}

func TestLRNForwardWithTexture(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(8))
	c, hw, win := 6, 20, 5
	k, alpha, beta := float32(2), float32(1e-2), float32(0.75)
	x := make([]float32, c*hw)
	for i := range x {
		x[i] = rng.Float32() * 3
	}
	want := ref.LRNForward(x, c, hw, win, k, alpha, beta)

	// Bind the input to the lrn_tex texture name, as the host-side layer
	// does before each launch (§III-C path).
	arr := device.NewCudaArray(c*hw, 1, 1)
	copy(arr.Data, x)
	tr, err := ctx.TexRefByName(kernels.LRNTexName)
	if err != nil {
		t.Fatalf("texref: %v", err)
	}
	if err := ctx.BindTextureToArray(tr, arr); err != nil {
		t.Fatalf("bind: %v", err)
	}
	py := alloc(t, ctx, c*hw)
	params := cudart.NewParams().Ptr(py).
		U32(uint32(c)).U32(uint32(hw)).U32(uint32(win)).
		F32(k).F32(alpha).F32(beta)
	if _, err := ctx.Launch("lrn_forward", grid1D(c*hw, 64), exec.Dim3{X: 64}, params, 0); err != nil {
		t.Fatal(err)
	}
	got := ctx.MemcpyF32DtoH(py, c*hw)
	if d := maxAbsDiff(got, want); d > 1e-3 {
		t.Fatalf("lrn diff %g", d)
	}
}

func TestLRNBackward(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(9))
	c, hw, win := 5, 16, 3
	k, alpha, beta := float32(2), float32(1e-2), float32(0.75)
	x := make([]float32, c*hw)
	for i := range x {
		x[i] = rng.Float32() * 2
	}
	y := ref.LRNForward(x, c, hw, win, k, alpha, beta)
	dy := randSlice(rng, c*hw)
	want := ref.LRNBackward(x, y, dy, c, hw, win, k, alpha, beta)
	px, pyb, pdy := upload(t, ctx, x), upload(t, ctx, y), upload(t, ctx, dy)
	pdx := alloc(t, ctx, c*hw)
	params := cudart.NewParams().Ptr(px).Ptr(pyb).Ptr(pdy).Ptr(pdx).
		U32(uint32(c)).U32(uint32(hw)).U32(uint32(win)).
		F32(k).F32(alpha).F32(beta)
	if _, err := ctx.Launch("lrn_backward", grid1D(c*hw, 64), exec.Dim3{X: 64}, params, 0); err != nil {
		t.Fatal(err)
	}
	got := ctx.MemcpyF32DtoH(pdx, c*hw)
	if d := maxAbsDiff(got, want); d > 1e-3 {
		t.Fatalf("lrn backward diff %g", d)
	}
}

// launchConvFwd runs implicit_gemm_conv_fwd for x/w and returns y.
func launchConvFwd(t *testing.T, ctx *cudart.Context, x []float32, xs ref.TensorShape4, w []float32, k, r int, p ref.ConvParams) []float32 {
	t.Helper()
	oh := p.ConvOut(xs.H, r)
	ow := p.ConvOut(xs.W, r)
	px, pw := upload(t, ctx, x), upload(t, ctx, w)
	py := alloc(t, ctx, xs.N*k*oh*ow)
	params := cudart.NewParams().Ptr(px).Ptr(pw).Ptr(py).
		U32(uint32(xs.C)).U32(uint32(xs.H)).U32(uint32(xs.W)).
		U32(uint32(k)).U32(uint32(r)).U32(uint32(r)).
		U32(uint32(oh)).U32(uint32(ow)).
		U32(uint32(p.Stride)).U32(uint32(p.Pad))
	per := k * oh * ow
	grid := exec.Dim3{X: (per + 127) / 128, Y: xs.N}
	if _, err := ctx.Launch("implicit_gemm_conv_fwd", grid, exec.Dim3{X: 128}, params, 0); err != nil {
		t.Fatal(err)
	}
	return ctx.MemcpyF32DtoH(py, xs.N*k*oh*ow)
}

func TestConvForwardImplicitGemm(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(10))
	cases := []struct {
		xs   ref.TensorShape4
		k, r int
		p    ref.ConvParams
	}{
		{ref.TensorShape4{N: 1, C: 1, H: 8, W: 8}, 2, 3, ref.ConvParams{Stride: 1, Pad: 0}},
		{ref.TensorShape4{N: 2, C: 3, H: 9, W: 7}, 4, 3, ref.ConvParams{Stride: 2, Pad: 1}},
		{ref.TensorShape4{N: 1, C: 2, H: 12, W: 12}, 3, 5, ref.ConvParams{Stride: 1, Pad: 2}},
	}
	for _, c := range cases {
		x := randSlice(rng, c.xs.Count())
		w := randSlice(rng, c.k*c.xs.C*c.r*c.r)
		want, _ := ref.Conv2DForward(x, c.xs, w, c.k, c.r, c.p)
		got := launchConvFwd(t, ctx, x, c.xs, w, c.k, c.r, c.p)
		if d := maxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("conv fwd %+v: diff %g", c, d)
		}
	}
}

func TestConvBwdData(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(11))
	xs := ref.TensorShape4{N: 2, C: 3, H: 8, W: 8}
	k, r := 4, 3
	p := ref.ConvParams{Stride: 1, Pad: 1}
	oh := p.ConvOut(xs.H, r)
	ow := p.ConvOut(xs.W, r)
	ys := ref.TensorShape4{N: xs.N, C: k, H: oh, W: ow}
	dy := randSlice(rng, ys.Count())
	w := randSlice(rng, k*xs.C*r*r)
	want := ref.Conv2DBackwardData(dy, ys, w, xs.C, r, xs, p)

	for _, algo := range []string{"conv_bwd_data_algo0", "conv_bwd_data_algo1"} {
		pdy, pw := upload(t, ctx, dy), upload(t, ctx, w)
		pdx := alloc(t, ctx, xs.Count())
		// algo1 accumulates with atomics: zero-init required
		zp := cudart.NewParams().Ptr(pdx).U32(uint32(xs.Count()))
		if _, err := ctx.Launch("fill_zero", grid1D(xs.Count(), 128), exec.Dim3{X: 128}, zp, 0); err != nil {
			t.Fatal(err)
		}
		params := cudart.NewParams().Ptr(pdy).Ptr(pw).Ptr(pdx).
			U32(uint32(xs.C)).U32(uint32(xs.H)).U32(uint32(xs.W)).
			U32(uint32(k)).U32(uint32(r)).U32(uint32(r)).
			U32(uint32(oh)).U32(uint32(ow)).
			U32(uint32(p.Stride)).U32(uint32(p.Pad))
		var grid exec.Dim3
		if algo == "conv_bwd_data_algo0" {
			per := xs.C * xs.H * xs.W
			grid = exec.Dim3{X: (per + 127) / 128, Y: xs.N}
		} else {
			per := k * oh * ow
			grid = exec.Dim3{X: (per + 127) / 128, Y: xs.N}
		}
		if _, err := ctx.Launch(algo, grid, exec.Dim3{X: 128}, params, 0); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		got := ctx.MemcpyF32DtoH(pdx, xs.Count())
		if d := maxAbsDiff(got, want); d > 1e-3 {
			t.Fatalf("%s: diff %g", algo, d)
		}
	}
}

func TestConvBwdFilter(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(12))
	xs := ref.TensorShape4{N: 2, C: 3, H: 8, W: 8}
	k, r := 4, 3
	p := ref.ConvParams{Stride: 1, Pad: 1}
	oh := p.ConvOut(xs.H, r)
	ow := p.ConvOut(xs.W, r)
	ys := ref.TensorShape4{N: xs.N, C: k, H: oh, W: ow}
	x := randSlice(rng, xs.Count())
	dy := randSlice(rng, ys.Count())
	want := ref.Conv2DBackwardFilter(x, xs, dy, ys, r, p)
	nW := k * xs.C * r * r

	run := func(algo string, grid, block exec.Dim3, withN bool) []float32 {
		px, pdy := upload(t, ctx, x), upload(t, ctx, dy)
		pdw := alloc(t, ctx, nW)
		zp := cudart.NewParams().Ptr(pdw).U32(uint32(nW))
		if _, err := ctx.Launch("fill_zero", grid1D(nW, 128), exec.Dim3{X: 128}, zp, 0); err != nil {
			t.Fatal(err)
		}
		params := cudart.NewParams().Ptr(px).Ptr(pdy).Ptr(pdw)
		if withN {
			params.U32(uint32(xs.N))
		}
		params.U32(uint32(xs.C)).U32(uint32(xs.H)).U32(uint32(xs.W)).
			U32(uint32(k)).U32(uint32(r)).U32(uint32(r)).
			U32(uint32(oh)).U32(uint32(ow)).
			U32(uint32(p.Stride)).U32(uint32(p.Pad))
		if _, err := ctx.Launch(algo, grid, block, params, 0); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		return ctx.MemcpyF32DtoH(pdw, nW)
	}

	t.Run("algo0", func(t *testing.T) {
		got := run("conv_bwd_filter_algo0", grid1D(nW, 64), exec.Dim3{X: 64}, true)
		if d := maxAbsDiff(got, want); d > 1e-3 {
			t.Fatalf("algo0 diff %g", d)
		}
	})
	t.Run("algo1", func(t *testing.T) {
		per := k * oh * ow
		got := run("conv_bwd_filter_algo1", exec.Dim3{X: (per + 127) / 128, Y: xs.N}, exec.Dim3{X: 128}, false)
		if d := maxAbsDiff(got, want); d > 1e-3 {
			t.Fatalf("algo1 diff %g", d)
		}
	})
	t.Run("algo3", func(t *testing.T) {
		got := run("conv_bwd_filter_algo3", exec.Dim3{X: nW}, exec.Dim3{X: 256}, true)
		if d := maxAbsDiff(got, want); d > 1e-3 {
			t.Fatalf("algo3 diff %g", d)
		}
	})
}

func TestWinogradFused(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(13))
	xs := ref.TensorShape4{N: 2, C: 3, H: 10, W: 8}
	k := 4
	p := ref.ConvParams{Stride: 1, Pad: 1}
	x := randSlice(rng, xs.Count())
	w := randSlice(rng, k*xs.C*9)
	want, ys := ref.Conv2DForward(x, xs, w, k, 3, p)

	px, pw := upload(t, ctx, x), upload(t, ctx, w)
	py := alloc(t, ctx, ys.Count())
	params := cudart.NewParams().Ptr(px).Ptr(pw).Ptr(py).
		U32(uint32(xs.C)).U32(uint32(xs.H)).U32(uint32(xs.W)).
		U32(uint32(k)).U32(uint32(ys.H)).U32(uint32(ys.W)).
		U32(uint32(p.Pad))
	tiles := ((ys.H + 1) / 2) * ((ys.W + 1) / 2)
	per := k * tiles
	grid := exec.Dim3{X: (per + 63) / 64, Y: xs.N}
	if _, err := ctx.Launch("winograd_fused_2x2_3x3", grid, exec.Dim3{X: 64}, params, 0); err != nil {
		t.Fatal(err)
	}
	got := ctx.MemcpyF32DtoH(py, ys.Count())
	if d := maxAbsDiff(got, want); d > 1e-3 {
		t.Fatalf("winograd fused diff %g", d)
	}
}

func TestWinogradNonfusedPipeline(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(14))
	xs := ref.TensorShape4{N: 2, C: 3, H: 8, W: 8}
	k := 4
	p := ref.ConvParams{Stride: 1, Pad: 1}
	x := randSlice(rng, xs.Count())
	w := randSlice(rng, k*xs.C*9)
	want, ys := ref.Conv2DForward(x, xs, w, k, 3, p)

	tilesY := (ys.H + 1) / 2
	tilesX := (ys.W + 1) / 2
	P := xs.N * tilesY * tilesX
	kc := k * xs.C
	cp := xs.C * P
	kp := k * P

	px, pw := upload(t, ctx, x), upload(t, ctx, w)
	pu := alloc(t, ctx, 16*kc)
	pv := alloc(t, ctx, 16*cp)
	pm := alloc(t, ctx, 16*kp)
	py := alloc(t, ctx, ys.Count())

	// stage 1: filter transform
	params := cudart.NewParams().Ptr(pw).Ptr(pu).U32(uint32(kc))
	if _, err := ctx.Launch("winograd_filter_transform", grid1D(kc, 64), exec.Dim3{X: 64}, params, 0); err != nil {
		t.Fatal(err)
	}
	// stage 2: input transform
	params = cudart.NewParams().Ptr(px).Ptr(pv).
		U32(uint32(xs.C)).U32(uint32(xs.H)).U32(uint32(xs.W)).
		U32(uint32(tilesX)).U32(uint32(tilesY)).
		U32(uint32(p.Pad)).U32(uint32(xs.N))
	if _, err := ctx.Launch("winograd_input_transform", grid1D(cp, 64), exec.Dim3{X: 64}, params, 0); err != nil {
		t.Fatal(err)
	}
	// stage 3: 16-way batched GEMM M[xi] = U[xi] (KxC) * V[xi] (CxP)
	params = cudart.NewParams().Ptr(pu).Ptr(pv).Ptr(pm).
		U32(uint32(k)).U32(uint32(P)).U32(uint32(xs.C)).
		U32(uint32(kc)).U32(uint32(cp)).U32(uint32(kp)).F32(1).F32(0)
	grid := exec.Dim3{X: (P + 15) / 16, Y: (k + 15) / 16, Z: 16}
	if _, err := ctx.Launch("sgemm_tiled", grid, exec.Dim3{X: 16, Y: 16}, params, 0); err != nil {
		t.Fatal(err)
	}
	// stage 4: output transform
	params = cudart.NewParams().Ptr(pm).Ptr(py).
		U32(uint32(k)).U32(uint32(ys.H)).U32(uint32(ys.W)).
		U32(uint32(tilesX)).U32(uint32(tilesY)).U32(uint32(xs.N))
	if _, err := ctx.Launch("winograd_output_transform", grid1D(kp, 64), exec.Dim3{X: 64}, params, 0); err != nil {
		t.Fatal(err)
	}
	got := ctx.MemcpyF32DtoH(py, ys.Count())
	if d := maxAbsDiff(got, want); d > 1e-3 {
		t.Fatalf("winograd nonfused diff %g", d)
	}
}

func TestWinogradBwdFilter(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(15))
	xs := ref.TensorShape4{N: 2, C: 3, H: 8, W: 8}
	k := 4
	p := ref.ConvParams{Stride: 1, Pad: 1}
	oh := p.ConvOut(xs.H, 3)
	ow := p.ConvOut(xs.W, 3)
	ys := ref.TensorShape4{N: xs.N, C: k, H: oh, W: ow}
	x := randSlice(rng, xs.Count())
	dy := randSlice(rng, ys.Count())
	want := ref.Conv2DBackwardFilter(x, xs, dy, ys, 3, p)

	px, pdy := upload(t, ctx, x), upload(t, ctx, dy)
	pdw := alloc(t, ctx, k*xs.C*9)
	params := cudart.NewParams().Ptr(px).Ptr(pdy).Ptr(pdw).
		U32(uint32(xs.C)).U32(uint32(xs.H)).U32(uint32(xs.W)).
		U32(uint32(k)).U32(uint32(oh)).U32(uint32(ow)).
		U32(uint32(p.Pad)).U32(uint32(xs.N))
	grid := exec.Dim3{X: k * xs.C}
	if _, err := ctx.Launch("winograd_bwd_filter", grid, exec.Dim3{X: 64}, params, 0); err != nil {
		t.Fatal(err)
	}
	got := ctx.MemcpyF32DtoH(pdw, k*xs.C*9)
	if d := maxAbsDiff(got, want); d > 1e-2 {
		t.Fatalf("winograd bwd filter diff %g", d)
	}
}

// dft2D computes a naive 2D DFT of a real n x n tile (reference).
func dft2D(in []float32, n int) ([]float32, []float32) {
	re := make([]float32, n*n)
	im := make([]float32, n*n)
	for fy := 0; fy < n; fy++ {
		for fx := 0; fx < n; fx++ {
			var sr, si float64
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					ang := -2 * math.Pi * (float64(fy*y)/float64(n) + float64(fx*x)/float64(n))
					v := float64(in[y*n+x])
					sr += v * math.Cos(ang)
					si += v * math.Sin(ang)
				}
			}
			re[fy*n+fx] = float32(sr)
			im[fy*n+fx] = float32(si)
		}
	}
	return re, im
}

func TestFFTR2CAgainstDFT(t *testing.T) {
	for _, n := range []int{16, 32} {
		n := n
		t.Run(map[int]string{16: "fft2d_r2c_16x16", 32: "fft2d_r2c_32x32"}[n], func(t *testing.T) {
			ctx := newCtx(t)
			rng := rand.New(rand.NewSource(int64(16 + n)))
			in := randSlice(rng, n*n)
			wantRe, wantIm := dft2D(in, n)
			pin := upload(t, ctx, in)
			pout := alloc(t, ctx, 2*n*n)
			params := cudart.NewParams().Ptr(pin).Ptr(pout)
			name := "fft2d_r2c_32x32"
			if n == 16 {
				name = "fft2d_r2c_16x16"
			}
			if _, err := ctx.Launch(name, exec.Dim3{X: 1}, exec.Dim3{X: n}, params, 0); err != nil {
				t.Fatal(err)
			}
			got := ctx.MemcpyF32DtoH(pout, 2*n*n)
			var maxd float64
			for i := 0; i < n*n; i++ {
				dr := math.Abs(float64(got[2*i] - wantRe[i]))
				di := math.Abs(float64(got[2*i+1] - wantIm[i]))
				if dr > maxd {
					maxd = dr
				}
				if di > maxd {
					maxd = di
				}
			}
			if maxd > 2e-3*float64(n) {
				t.Fatalf("fft vs dft max diff %g", maxd)
			}
		})
	}
}

func TestFFTRoundTrip(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(17))
	n := 32
	planes := 3
	in := randSlice(rng, planes*n*n)
	pin := upload(t, ctx, in)
	pspec := alloc(t, ctx, 2*planes*n*n)
	pback := alloc(t, ctx, planes*n*n)
	params := cudart.NewParams().Ptr(pin).Ptr(pspec)
	if _, err := ctx.Launch("fft2d_r2c_32x32", exec.Dim3{X: planes}, exec.Dim3{X: n}, params, 0); err != nil {
		t.Fatal(err)
	}
	params = cudart.NewParams().Ptr(pspec).Ptr(pback).F32(1.0 / float32(n*n))
	if _, err := ctx.Launch("fft2d_c2r_32x32", exec.Dim3{X: planes}, exec.Dim3{X: n}, params, 0); err != nil {
		t.Fatal(err)
	}
	got := ctx.MemcpyF32DtoH(pback, planes*n*n)
	if d := maxAbsDiff(got, in); d > 1e-3 {
		t.Fatalf("fft roundtrip diff %g", d)
	}
}

// TestFFTConvPipeline runs the full FFT convolution (pad, r2c of x and w,
// cgemm with conjugated filter spectrum, c2r, crop) and compares against
// the direct reference convolution.
func TestFFTConvPipeline(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(18))
	xs := ref.TensorShape4{N: 1, C: 2, H: 12, W: 12}
	k, r := 3, 5
	p := ref.ConvParams{Stride: 1, Pad: 0}
	n := 16 // 12 + 5 - 1 = 16 fits
	x := randSlice(rng, xs.Count())
	w := randSlice(rng, k*xs.C*r*r)
	want, ys := ref.Conv2DForward(x, xs, w, k, r, p)

	// pad x planes into n x n frames
	px := upload(t, ctx, x)
	pxpad := alloc(t, ctx, xs.C*n*n)
	params := cudart.NewParams().Ptr(px).Ptr(pxpad).
		U32(uint32(xs.H)).U32(uint32(xs.W)).U32(uint32(n)).U32(uint32(n)).
		U32(0).U32(0)
	if _, err := ctx.Launch("pad2d", exec.Dim3{X: (n*n + 127) / 128, Y: xs.C}, exec.Dim3{X: 128}, params, 0); err != nil {
		t.Fatal(err)
	}
	// pad w planes
	pw := upload(t, ctx, w)
	pwpad := alloc(t, ctx, k*xs.C*n*n)
	params = cudart.NewParams().Ptr(pw).Ptr(pwpad).
		U32(uint32(r)).U32(uint32(r)).U32(uint32(n)).U32(uint32(n)).
		U32(0).U32(0)
	if _, err := ctx.Launch("pad2d", exec.Dim3{X: (n*n + 127) / 128, Y: k * xs.C}, exec.Dim3{X: 128}, params, 0); err != nil {
		t.Fatal(err)
	}
	// spectra
	pxs := alloc(t, ctx, 2*xs.C*n*n)
	pws := alloc(t, ctx, 2*k*xs.C*n*n)
	params = cudart.NewParams().Ptr(pxpad).Ptr(pxs)
	if _, err := ctx.Launch("fft2d_r2c_16x16", exec.Dim3{X: xs.C}, exec.Dim3{X: n}, params, 0); err != nil {
		t.Fatal(err)
	}
	params = cudart.NewParams().Ptr(pwpad).Ptr(pws)
	if _, err := ctx.Launch("fft2d_r2c_16x16", exec.Dim3{X: k * xs.C}, exec.Dim3{X: n}, params, 0); err != nil {
		t.Fatal(err)
	}
	// cgemm
	pyspec := alloc(t, ctx, 2*k*n*n)
	params = cudart.NewParams().Ptr(pxs).Ptr(pws).Ptr(pyspec).
		U32(uint32(xs.C)).U32(uint32(k)).U32(uint32(n * n)).U32(1)
	if _, err := ctx.Launch("cgemm", grid1D(k*n*n, 128), exec.Dim3{X: 128}, params, 0); err != nil {
		t.Fatal(err)
	}
	// inverse
	pyfull := alloc(t, ctx, k*n*n)
	params = cudart.NewParams().Ptr(pyspec).Ptr(pyfull).F32(1.0 / float32(n*n))
	if _, err := ctx.Launch("fft2d_c2r_16x16", exec.Dim3{X: k}, exec.Dim3{X: n}, params, 0); err != nil {
		t.Fatal(err)
	}
	// crop valid region
	py := alloc(t, ctx, ys.Count())
	params = cudart.NewParams().Ptr(pyfull).Ptr(py).
		U32(uint32(n)).U32(uint32(ys.H)).U32(uint32(ys.W)).U32(uint32(p.Pad))
	if _, err := ctx.Launch("fft_crop", exec.Dim3{X: (ys.H*ys.W + 127) / 128, Y: k}, exec.Dim3{X: 128}, params, 0); err != nil {
		t.Fatal(err)
	}
	got := ctx.MemcpyF32DtoH(py, ys.Count())
	if d := maxAbsDiff(got, want); d > 5e-3 {
		t.Fatalf("fft conv pipeline diff %g", d)
	}
}
