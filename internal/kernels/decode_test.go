package kernels_test

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cudart"
	"repro/internal/exec"
	"repro/internal/ref"
)

// Table-driven tests for the KV-cached decode kernels, covering the
// shape edge cases the satellite names: seq=1 prefill, cache lengths
// crossing a tile/sector boundary (a 32B sector holds 8 floats, an L2
// line 32), head dims that are not a warp multiple, and the final step
// that fills the cache to maxSeq. Every case is checked against the
// internal/ref oracle.

func TestKVCacheAppendKernel(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(81))
	cases := []struct {
		name                   string
		seq, heads, dh, maxSeq int
		pos                    int
	}{
		{"seq1_prefill", 1, 2, 8, 8, 0},
		{"decode_step_mid_cache", 1, 4, 8, 16, 9},
		{"prefill_bulk", 6, 2, 8, 16, 0},
		{"dh_not_warp_multiple", 2, 3, 7, 12, 4},
		{"max_cache_length_step", 1, 2, 8, 8, 7},
		{"sector_boundary_pos", 1, 2, 4, 40, 8}, // row 8 of dh=4 starts a new 32B sector
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := randSlice(rng, c.seq*c.heads*c.dh)
			cache := randSlice(rng, c.heads*c.maxSeq*c.dh)
			want := append([]float32(nil), cache...)
			ref.CacheAppend(want, in, c.seq, c.heads, c.dh, c.maxSeq, c.pos)
			pin, pc := upload(t, ctx, in), upload(t, ctx, cache)
			n := c.seq * c.heads * c.dh
			params := cudart.NewParams().Ptr(pin).Ptr(pc).
				U32(uint32(c.seq)).U32(uint32(c.heads)).U32(uint32(c.dh)).
				U32(uint32(c.maxSeq)).U32(uint32(c.pos))
			if _, err := ctx.Launch("kv_cache_append", grid1D(n, 256), exec.Dim3{X: 256}, params, 0); err != nil {
				t.Fatalf("launch: %v", err)
			}
			got := ctx.MemcpyF32DtoH(pc, len(cache))
			if d := maxAbsDiff(got, want); d != 0 {
				t.Fatalf("cache append %s: max diff %g (want exact)", c.name, d)
			}
		})
	}
}

func TestAttnQKCachedKernel(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(82))
	cases := []struct {
		name                        string
		heads, dh, maxSeq, cacheLen int
	}{
		{"seq1_prefill", 2, 8, 8, 1},
		{"cache_crosses_sector", 2, 8, 16, 9}, // 9 rows of 32B: crosses the 8-float sector
		{"cache_crosses_l2_line", 1, 4, 64, 33},
		{"dh_not_warp_multiple", 3, 7, 12, 5},
		{"max_cache_length_step", 2, 8, 8, 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			scale := float32(1 / math.Sqrt(float64(c.dh)))
			q := randSlice(rng, c.heads*c.dh)
			cacheK := randSlice(rng, c.heads*c.maxSeq*c.dh)
			want := ref.AttnScoresCached(q, cacheK, 1, c.heads, c.dh, c.maxSeq, c.cacheLen, scale)
			pq, pk := upload(t, ctx, q), upload(t, ctx, cacheK)
			ps := alloc(t, ctx, c.heads*c.cacheLen)
			n := c.heads * c.cacheLen
			params := cudart.NewParams().Ptr(pq).Ptr(pk).Ptr(ps).
				U32(uint32(c.heads)).U32(uint32(c.dh)).
				U32(uint32(c.maxSeq)).U32(uint32(c.cacheLen)).F32(scale)
			if _, err := ctx.Launch("attn_qk_cached", grid1D(n, 128), exec.Dim3{X: 128}, params, 0); err != nil {
				t.Fatalf("launch: %v", err)
			}
			got := ctx.MemcpyF32DtoH(ps, n)
			if d := maxAbsDiff(got, want); d > 1e-5 {
				t.Fatalf("qk cached %s: max diff %g", c.name, d)
			}
		})
	}
}

func TestSoftmaxCausalKernel(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(83))
	cases := []struct {
		name                  string
		heads, seq, cols, pos int
	}{
		{"seq1_prefill", 2, 1, 1, 0},
		{"decode_step", 2, 1, 9, 8}, // one query over a 9-long cache
		{"prefill_masked_rows", 2, 4, 4, 0},
		{"cols_cross_warp", 1, 2, 40, 38},
		{"max_cache_length_step", 2, 1, 8, 7},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rows := c.heads * c.seq
			x := randSlice(rng, rows*c.cols)
			want := ref.SoftmaxCausal(x, rows, c.cols, c.seq, c.pos)
			px := upload(t, ctx, x)
			py := alloc(t, ctx, rows*c.cols)
			params := cudart.NewParams().Ptr(px).Ptr(py).
				U32(uint32(c.cols)).U32(uint32(c.seq)).U32(uint32(c.pos))
			if _, err := ctx.Launch("softmax_causal", exec.Dim3{X: rows}, exec.Dim3{X: 32}, params, 0); err != nil {
				t.Fatalf("launch: %v", err)
			}
			got := ctx.MemcpyF32DtoH(py, rows*c.cols)
			if d := maxAbsDiff(got, want); d > 1e-4 {
				t.Fatalf("softmax causal %s: max diff %g", c.name, d)
			}
			// masked columns must be exact zeros — the downstream
			// probabilities·V product reads the full row
			for r := 0; r < rows; r++ {
				vlen := c.pos + r%c.seq + 1
				for j := vlen; j < c.cols; j++ {
					if got[r*c.cols+j] != 0 {
						t.Fatalf("softmax causal %s: masked [%d,%d] = %g, want exact 0",
							c.name, r, j, got[r*c.cols+j])
					}
				}
			}
		})
	}
}

func TestAttnAVCachedKernel(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(84))
	cases := []struct {
		name                        string
		heads, dh, maxSeq, cacheLen int
	}{
		{"seq1_prefill", 2, 8, 8, 1},
		{"cache_crosses_sector", 2, 8, 16, 9},
		{"dh_not_warp_multiple", 3, 7, 12, 5},
		{"max_cache_length_step", 2, 8, 8, 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			probs := randSlice(rng, c.heads*c.cacheLen)
			cacheV := randSlice(rng, c.heads*c.maxSeq*c.dh)
			want := ref.AttnContextCached(probs, cacheV, 1, c.heads, c.dh, c.maxSeq, c.cacheLen)
			pp, pv := upload(t, ctx, probs), upload(t, ctx, cacheV)
			po := alloc(t, ctx, c.heads*c.dh)
			n := c.heads * c.dh
			params := cudart.NewParams().Ptr(pp).Ptr(pv).Ptr(po).
				U32(uint32(c.heads)).U32(uint32(c.dh)).
				U32(uint32(c.maxSeq)).U32(uint32(c.cacheLen))
			if _, err := ctx.Launch("attn_av_cached", grid1D(n, 128), exec.Dim3{X: 128}, params, 0); err != nil {
				t.Fatalf("launch: %v", err)
			}
			got := ctx.MemcpyF32DtoH(po, n)
			if d := maxAbsDiff(got, want); d > 1e-5 {
				t.Fatalf("av cached %s: max diff %g", c.name, d)
			}
		})
	}
}

func TestLogitGemvKernel(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(85))
	cases := []struct {
		name       string
		vocab, dim int
	}{
		{"tiny", 3, 4},
		{"dim_not_warp_multiple", 29, 33},
		{"vocab_crosses_block", 200, 16},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			x := randSlice(rng, c.dim)
			table := randSlice(rng, c.vocab*c.dim)
			want := ref.LogitGemv(x, table, c.vocab, c.dim)
			px, pt := upload(t, ctx, x), upload(t, ctx, table)
			pl := alloc(t, ctx, c.vocab)
			params := cudart.NewParams().Ptr(px).Ptr(pt).Ptr(pl).
				U32(uint32(c.vocab)).U32(uint32(c.dim))
			if _, err := ctx.Launch("logit_gemv", grid1D(c.vocab, 128), exec.Dim3{X: 128}, params, 0); err != nil {
				t.Fatalf("launch: %v", err)
			}
			got := ctx.MemcpyF32DtoH(pl, c.vocab)
			if d := maxAbsDiff(got, want); d > 1e-5 {
				t.Fatalf("logit gemv %s: max diff %g", c.name, d)
			}
		})
	}
}

func TestArgmaxU32Kernel(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(86))
	cases := []struct {
		name string
		x    []float32
	}{
		{"single", []float32{-2}},
		{"max_in_tail_lane", func() []float32 {
			x := randSlice(rng, 100)
			x[97] = 5
			return x
		}()},
		{"tie_lowest_index_wins", func() []float32 {
			x := make([]float32, 70)
			for i := range x {
				x[i] = -1
			}
			x[13], x[45], x[62] = 3, 3, 3
			return x
		}()},
		{"tie_across_lanes", func() []float32 {
			// equal maxima in different reduction lanes: 7 and 40
			x := randSlice(rng, 64)
			for i := range x {
				x[i] -= 10
			}
			x[40], x[7] = 2, 2
			return x
		}()},
		{"all_negative", []float32{-5, -3, -9, -3.5}},
		{"random_n_not_warp_multiple", randSlice(rng, 37)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := ref.Argmax(c.x, 1, len(c.x))[0]
			px := upload(t, ctx, c.x)
			pout := alloc(t, ctx, 4)
			const outIdx = 2
			params := cudart.NewParams().Ptr(px).U32(uint32(len(c.x))).Ptr(pout).U32(outIdx)
			if _, err := ctx.Launch("argmax_u32", exec.Dim3{X: 1}, exec.Dim3{X: 32}, params, 0); err != nil {
				t.Fatalf("launch: %v", err)
			}
			raw := make([]byte, 16)
			ctx.MemcpyDtoH(raw, pout)
			got := int(binary.LittleEndian.Uint32(raw[outIdx*4:]))
			if got != want {
				t.Fatalf("argmax %s: got %d, want %d", c.name, got, want)
			}
		})
	}
}
