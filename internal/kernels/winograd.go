package kernels

// Winograd F(2x2, 3x3) convolution kernels, fused ("Winograd" in the
// paper's Fig. 7) and non-fused (the four-stage pipeline the paper's
// conv_sample study calls Winograd Nonfused: filter transform, input
// transform, 16-way batched GEMM, output transform), plus the
// backward-filter kernel whose tiny grid reproduces the load imbalance of
// Figs. 20–21.
//
// Transforms (correlation convention, as in CNNs):
//
//	V = Bᵀ d B   (input 4x4)
//	U = G g Gᵀ   (filter 3x3 -> 4x4)
//	Y = Aᵀ (U ⊙ V) A  (output 2x2)

// emitInputTransform emits V = Bᵀ d B for 16 f32 registers (row-major).
func emitInputTransform(b *Builder, d [16]string) [16]string {
	var t, v [16]string
	// t = Bᵀ d : rows combine
	for j := 0; j < 4; j++ {
		t[0*4+j] = b.R("f")
		b.I("sub.f32 %s, %s, %s;", t[0*4+j], d[0*4+j], d[2*4+j])
		t[1*4+j] = b.R("f")
		b.I("add.f32 %s, %s, %s;", t[1*4+j], d[1*4+j], d[2*4+j])
		t[2*4+j] = b.R("f")
		b.I("sub.f32 %s, %s, %s;", t[2*4+j], d[2*4+j], d[1*4+j])
		t[3*4+j] = b.R("f")
		b.I("sub.f32 %s, %s, %s;", t[3*4+j], d[1*4+j], d[3*4+j])
	}
	// v = t B : columns combine
	for i := 0; i < 4; i++ {
		v[i*4+0] = b.R("f")
		b.I("sub.f32 %s, %s, %s;", v[i*4+0], t[i*4+0], t[i*4+2])
		v[i*4+1] = b.R("f")
		b.I("add.f32 %s, %s, %s;", v[i*4+1], t[i*4+1], t[i*4+2])
		v[i*4+2] = b.R("f")
		b.I("sub.f32 %s, %s, %s;", v[i*4+2], t[i*4+2], t[i*4+1])
		v[i*4+3] = b.R("f")
		b.I("sub.f32 %s, %s, %s;", v[i*4+3], t[i*4+1], t[i*4+3])
	}
	return v
}

// emitFilterTransform emits U = G g Gᵀ for a 3x3 filter in registers.
func emitFilterTransform(b *Builder, g [9]string) [16]string {
	half := b.MovF32(0.5)
	var t [12]string // 4x3
	for j := 0; j < 3; j++ {
		t[0*3+j] = g[0*3+j]
		s1 := b.R("f")
		b.I("add.f32 %s, %s, %s;", s1, g[0*3+j], g[1*3+j])
		b.I("add.f32 %s, %s, %s;", s1, s1, g[2*3+j])
		t1 := b.R("f")
		b.I("mul.f32 %s, %s, %s;", t1, s1, half)
		t[1*3+j] = t1
		s2 := b.R("f")
		b.I("sub.f32 %s, %s, %s;", s2, g[0*3+j], g[1*3+j])
		b.I("add.f32 %s, %s, %s;", s2, s2, g[2*3+j])
		t2 := b.R("f")
		b.I("mul.f32 %s, %s, %s;", t2, s2, half)
		t[2*3+j] = t2
		t[3*3+j] = g[2*3+j]
	}
	var u [16]string
	for i := 0; i < 4; i++ {
		u[i*4+0] = t[i*3+0]
		s1 := b.R("f")
		b.I("add.f32 %s, %s, %s;", s1, t[i*3+0], t[i*3+1])
		b.I("add.f32 %s, %s, %s;", s1, s1, t[i*3+2])
		u1 := b.R("f")
		b.I("mul.f32 %s, %s, %s;", u1, s1, half)
		u[i*4+1] = u1
		s2 := b.R("f")
		b.I("sub.f32 %s, %s, %s;", s2, t[i*3+0], t[i*3+1])
		b.I("add.f32 %s, %s, %s;", s2, s2, t[i*3+2])
		u2 := b.R("f")
		b.I("mul.f32 %s, %s, %s;", u2, s2, half)
		u[i*4+2] = u2
		u[i*4+3] = t[i*3+2]
	}
	return u
}

// emitOutputTransform emits Y = Aᵀ m A (2x2 result).
func emitOutputTransform(b *Builder, m [16]string) [4]string {
	var t [8]string // 2x4
	for j := 0; j < 4; j++ {
		t0 := b.R("f")
		b.I("add.f32 %s, %s, %s;", t0, m[0*4+j], m[1*4+j])
		b.I("add.f32 %s, %s, %s;", t0, t0, m[2*4+j])
		t[0*4+j] = t0
		t1 := b.R("f")
		b.I("sub.f32 %s, %s, %s;", t1, m[1*4+j], m[2*4+j])
		b.I("sub.f32 %s, %s, %s;", t1, t1, m[3*4+j])
		t[1*4+j] = t1
	}
	var y [4]string
	for i := 0; i < 2; i++ {
		y0 := b.R("f")
		b.I("add.f32 %s, %s, %s;", y0, t[i*4+0], t[i*4+1])
		b.I("add.f32 %s, %s, %s;", y0, y0, t[i*4+2])
		y[i*2+0] = y0
		y1 := b.R("f")
		b.I("sub.f32 %s, %s, %s;", y1, t[i*4+1], t[i*4+2])
		b.I("sub.f32 %s, %s, %s;", y1, y1, t[i*4+3])
		y[i*2+1] = y1
	}
	return y
}

// emitLoadPatch4 loads a 4x4 input patch at (y0, x0) of plane base
// (bounds-checked, zeros outside) into 16 fresh f32 registers.
func emitLoadPatch4(b *Builder, xB, base, y0, x0, h, w string) [16]string {
	var d [16]string
	z := b.MovF32(0)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			iy, ix := b.R("r"), b.R("r")
			b.I("add.u32 %s, %s, %d;", iy, y0, i)
			b.I("add.u32 %s, %s, %d;", ix, x0, j)
			pin, ptmp := b.R("p"), b.R("p")
			b.I("setp.lt.u32 %s, %s, %s;", pin, iy, h)
			b.I("setp.lt.u32 %s, %s, %s;", ptmp, ix, w)
			b.I("and.pred %s, %s, %s;", pin, pin, ptmp)
			si, clamped := b.R("r"), b.R("r")
			b.I("mad.lo.s32 %s, %s, %s, %s;", si, iy, w, ix)
			b.I("add.u32 %s, %s, %s;", si, si, base)
			b.I("selp.b32 %s, %s, %s, %s;", clamped, si, base, pin)
			a := b.ElemAddr(xB, clamped, 4)
			v := b.R("f")
			b.I("ld.global.f32 %s, [%s];", v, a)
			vv := b.R("f")
			b.I("selp.b32 %s, %s, %s, %s;", vv, v, z, pin)
			d[i*4+j] = vv
		}
	}
	return d
}

// WinogradFused is the single-kernel F(2x2,3x3) convolution ("Winograd" in
// Fig. 7): one thread per (k, output tile) of image n = ctaid.y; filters
// are transformed on the fly.
func WinogradFused() string {
	b := NewBuilder("winograd_fused_2x2_3x3")
	pX, pW, pY := b.PtrParam("pX"), b.PtrParam("pW"), b.PtrParam("pY")
	pC, pH, pWw := b.U32Param("pC"), b.U32Param("pH"), b.U32Param("pWidth")
	pK, pOH, pOW := b.U32Param("pK"), b.U32Param("pOH"), b.U32Param("pOW")
	pPad := b.U32Param("pPad")
	end := b.NewLabel("end")
	idx := b.GlobalTidX()
	k := b.LoadU32(pK)
	oh := b.LoadU32(pOH)
	ow := b.LoadU32(pOW)
	tilesY, tilesX := b.R("r"), b.R("r")
	b.I("add.u32 %s, %s, 1;", tilesY, oh)
	b.I("shr.u32 %s, %s, 1;", tilesY, tilesY)
	b.I("add.u32 %s, %s, 1;", tilesX, ow)
	b.I("shr.u32 %s, %s, 1;", tilesX, tilesX)
	tiles := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", tiles, tilesY, tilesX)
	tot := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", tot, k, tiles)
	b.GuardEnd(idx, tot, end)
	tileIdx, kk := b.R("r"), b.R("r")
	b.I("rem.u32 %s, %s, %s;", tileIdx, idx, tiles)
	b.I("div.u32 %s, %s, %s;", kk, idx, tiles)
	ty, tx := b.R("r"), b.R("r")
	b.I("div.u32 %s, %s, %s;", ty, tileIdx, tilesX)
	b.I("rem.u32 %s, %s, %s;", tx, tileIdx, tilesX)
	n := b.R("r")
	b.I("mov.u32 %s, %%ctaid.y;", n)

	c := b.LoadU32(pC)
	h := b.LoadU32(pH)
	w := b.LoadU32(pWw)
	pad := b.LoadU32(pPad)
	xB := b.LoadPtr(pX)
	wB := b.LoadPtr(pW)
	yB := b.LoadPtr(pY)

	// accumulators
	var acc [16]string
	for i := range acc {
		acc[i] = b.MovF32(0)
	}
	// patch origin: (2*ty - pad, 2*tx - pad)
	y0, x0 := b.R("r"), b.R("r")
	b.I("shl.b32 %s, %s, 1;", y0, ty)
	b.I("sub.u32 %s, %s, %s;", y0, y0, pad)
	b.I("shl.b32 %s, %s, 1;", x0, tx)
	b.I("sub.u32 %s, %s, %s;", x0, x0, pad)
	hw := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", hw, h, w)
	chw := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", chw, c, hw)
	imgOff := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", imgOff, n, chw)

	cc := b.R("r")
	b.I("mov.u32 %s, 0;", cc)
	cloop := b.L("WF_C")
	pc := b.R("p")
	cend := b.NewLabel("wf_c_end")
	b.I("setp.ge.u32 %s, %s, %s;", pc, cc, c)
	b.I("@%s bra %s;", pc, cend)
	base := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", base, cc, hw, imgOff)
	d := emitLoadPatch4(b, xB, base, y0, x0, h, w)
	v := emitInputTransform(b, d)
	// load 3x3 filter w[kk, cc]
	var g [9]string
	fbase := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", fbase, kk, c, cc)
	b.I("mul.lo.u32 %s, %s, 9;", fbase, fbase)
	for i := 0; i < 9; i++ {
		fi := b.R("r")
		b.I("add.u32 %s, %s, %d;", fi, fbase, i)
		a := b.ElemAddr(wB, fi, 4)
		gv := b.R("f")
		b.I("ld.global.f32 %s, [%s];", gv, a)
		g[i] = gv
	}
	u := emitFilterTransform(b, g)
	for i := 0; i < 16; i++ {
		b.I("fma.rn.f32 %s, %s, %s, %s;", acc[i], u[i], v[i], acc[i])
	}
	b.I("add.u32 %s, %s, 1;", cc, cc)
	b.I("bra %s;", cloop)
	b.L(cend)

	yv := emitOutputTransform(b, acc)
	// store 2x2 with bounds
	kohw := b.R("r")
	ohw := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", ohw, oh, ow)
	b.I("mul.lo.u32 %s, %s, %s;", kohw, k, ohw)
	outBase := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", outBase, n, kohw)
	b.I("mad.lo.s32 %s, %s, %s, %s;", outBase, kk, ohw, outBase)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			oy, oxr := b.R("r"), b.R("r")
			b.I("shl.b32 %s, %s, 1;", oy, ty)
			b.I("add.u32 %s, %s, %d;", oy, oy, i)
			b.I("shl.b32 %s, %s, 1;", oxr, tx)
			b.I("add.u32 %s, %s, %d;", oxr, oxr, j)
			pin, ptmp := b.R("p"), b.R("p")
			skip := b.NewLabel("wf_skip")
			b.I("setp.ge.u32 %s, %s, %s;", pin, oy, oh)
			b.I("@%s bra %s;", pin, skip)
			b.I("setp.ge.u32 %s, %s, %s;", ptmp, oxr, ow)
			b.I("@%s bra %s;", ptmp, skip)
			oi := b.R("r")
			b.I("mad.lo.s32 %s, %s, %s, %s;", oi, oy, ow, oxr)
			b.I("add.u32 %s, %s, %s;", oi, oi, outBase)
			a := b.ElemAddr(yB, oi, 4)
			b.I("st.global.f32 [%s], %s;", a, yv[i*2+j])
			b.L(skip)
		}
	}
	b.L(end)
	return b.Build()
}

// WinogradFilterTransform (non-fused stage 1): U[xi, k*C+c] = (G g Gᵀ)[xi]
// for one thread per (k, c). Layout: U is [16][K*C].
func WinogradFilterTransform() string {
	b := NewBuilder("winograd_filter_transform")
	pW, pU := b.PtrParam("pW"), b.PtrParam("pU")
	pKC := b.U32Param("pKC")
	end := b.NewLabel("end")
	idx := b.GlobalTidX()
	kc := b.LoadU32(pKC)
	b.GuardEnd(idx, kc, end)
	wB := b.LoadPtr(pW)
	uB := b.LoadPtr(pU)
	var g [9]string
	fbase := b.R("r")
	b.I("mul.lo.u32 %s, %s, 9;", fbase, idx)
	for i := 0; i < 9; i++ {
		fi := b.R("r")
		b.I("add.u32 %s, %s, %d;", fi, fbase, i)
		a := b.ElemAddr(wB, fi, 4)
		gv := b.R("f")
		b.I("ld.global.f32 %s, [%s];", gv, a)
		g[i] = gv
	}
	u := emitFilterTransform(b, g)
	for xi := 0; xi < 16; xi++ {
		ui := b.R("r")
		b.I("mad.lo.s32 %s, %s, %d, %s;", ui, kc, xi, idx)
		a := b.ElemAddr(uB, ui, 4)
		b.I("st.global.f32 [%s], %s;", a, u[xi])
	}
	b.L(end)
	return b.Build()
}

// WinogradInputTransform (non-fused stage 2): V[xi, c*P+p] = (Bᵀ d B)[xi]
// for one thread per (c, p) where p enumerates (n, ty, tx) tiles.
// Layout: V is [16][C*P].
func WinogradInputTransform() string {
	b := NewBuilder("winograd_input_transform")
	pX, pV := b.PtrParam("pX"), b.PtrParam("pV")
	pC, pH, pWw := b.U32Param("pC"), b.U32Param("pH"), b.U32Param("pWidth")
	pTX, pTY := b.U32Param("pTilesX"), b.U32Param("pTilesY")
	pPad, pNImg := b.U32Param("pPad"), b.U32Param("pNImg")
	end := b.NewLabel("end")
	idx := b.GlobalTidX()
	c := b.LoadU32(pC)
	tx := b.LoadU32(pTX)
	ty := b.LoadU32(pTY)
	nimg := b.LoadU32(pNImg)
	tilesPerImg := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", tilesPerImg, tx, ty)
	p := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", p, tilesPerImg, nimg)
	tot := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", tot, c, p)
	b.GuardEnd(idx, tot, end)
	// idx -> (cc, pp); pp -> (n, tyy, txx)
	pp, cc := b.R("r"), b.R("r")
	b.I("rem.u32 %s, %s, %s;", pp, idx, p)
	b.I("div.u32 %s, %s, %s;", cc, idx, p)
	tIdx, n := b.R("r"), b.R("r")
	b.I("rem.u32 %s, %s, %s;", tIdx, pp, tilesPerImg)
	b.I("div.u32 %s, %s, %s;", n, pp, tilesPerImg)
	tyy, txx := b.R("r"), b.R("r")
	b.I("div.u32 %s, %s, %s;", tyy, tIdx, tx)
	b.I("rem.u32 %s, %s, %s;", txx, tIdx, tx)

	h := b.LoadU32(pH)
	w := b.LoadU32(pWw)
	pad := b.LoadU32(pPad)
	xB := b.LoadPtr(pX)
	vB := b.LoadPtr(pV)
	hw := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", hw, h, w)
	chw := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", chw, c, hw)
	base := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", base, n, chw)
	b.I("mad.lo.s32 %s, %s, %s, %s;", base, cc, hw, base)
	y0, x0 := b.R("r"), b.R("r")
	b.I("shl.b32 %s, %s, 1;", y0, tyy)
	b.I("sub.u32 %s, %s, %s;", y0, y0, pad)
	b.I("shl.b32 %s, %s, 1;", x0, txx)
	b.I("sub.u32 %s, %s, %s;", x0, x0, pad)
	d := emitLoadPatch4(b, xB, base, y0, x0, h, w)
	v := emitInputTransform(b, d)
	for xi := 0; xi < 16; xi++ {
		vi := b.R("r")
		b.I("mad.lo.s32 %s, %s, %d, %s;", vi, tot, xi, idx)
		a := b.ElemAddr(vB, vi, 4)
		b.I("st.global.f32 [%s], %s;", a, v[xi])
	}
	b.L(end)
	return b.Build()
}

// WinogradOutputTransform (non-fused stage 4): y tile = Aᵀ m A where
// m[xi] = M[xi, k*P+p]; M is [16][K*P].
func WinogradOutputTransform() string {
	b := NewBuilder("winograd_output_transform")
	pM, pY := b.PtrParam("pM"), b.PtrParam("pY")
	pK, pOH, pOW := b.U32Param("pK"), b.U32Param("pOH"), b.U32Param("pOW")
	pTX, pTY, pNImg := b.U32Param("pTilesX"), b.U32Param("pTilesY"), b.U32Param("pNImg")
	end := b.NewLabel("end")
	idx := b.GlobalTidX()
	k := b.LoadU32(pK)
	tx := b.LoadU32(pTX)
	ty := b.LoadU32(pTY)
	nimg := b.LoadU32(pNImg)
	tilesPerImg := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", tilesPerImg, tx, ty)
	p := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", p, tilesPerImg, nimg)
	tot := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", tot, k, p)
	b.GuardEnd(idx, tot, end)
	pp, kk := b.R("r"), b.R("r")
	b.I("rem.u32 %s, %s, %s;", pp, idx, p)
	b.I("div.u32 %s, %s, %s;", kk, idx, p)
	tIdx, n := b.R("r"), b.R("r")
	b.I("rem.u32 %s, %s, %s;", tIdx, pp, tilesPerImg)
	b.I("div.u32 %s, %s, %s;", n, pp, tilesPerImg)
	tyy, txx := b.R("r"), b.R("r")
	b.I("div.u32 %s, %s, %s;", tyy, tIdx, tx)
	b.I("rem.u32 %s, %s, %s;", txx, tIdx, tx)

	mB := b.LoadPtr(pM)
	yB := b.LoadPtr(pY)
	var m [16]string
	for xi := 0; xi < 16; xi++ {
		mi := b.R("r")
		b.I("mad.lo.s32 %s, %s, %d, %s;", mi, tot, xi, idx)
		a := b.ElemAddr(mB, mi, 4)
		mv := b.R("f")
		b.I("ld.global.f32 %s, [%s];", mv, a)
		m[xi] = mv
	}
	yv := emitOutputTransform(b, m)
	oh := b.LoadU32(pOH)
	ow := b.LoadU32(pOW)
	ohw := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", ohw, oh, ow)
	kohw := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", kohw, k, ohw)
	outBase := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", outBase, n, kohw)
	b.I("mad.lo.s32 %s, %s, %s, %s;", outBase, kk, ohw, outBase)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			oy, oxr := b.R("r"), b.R("r")
			b.I("shl.b32 %s, %s, 1;", oy, tyy)
			b.I("add.u32 %s, %s, %d;", oy, oy, i)
			b.I("shl.b32 %s, %s, 1;", oxr, txx)
			b.I("add.u32 %s, %s, %d;", oxr, oxr, j)
			pskip, ptmp := b.R("p"), b.R("p")
			skip := b.NewLabel("wo_skip")
			b.I("setp.ge.u32 %s, %s, %s;", pskip, oy, oh)
			b.I("@%s bra %s;", pskip, skip)
			b.I("setp.ge.u32 %s, %s, %s;", ptmp, oxr, ow)
			b.I("@%s bra %s;", ptmp, skip)
			oi := b.R("r")
			b.I("mad.lo.s32 %s, %s, %s, %s;", oi, oy, ow, oxr)
			b.I("add.u32 %s, %s, %s;", oi, oi, outBase)
			a := b.ElemAddr(yB, oi, 4)
			b.I("st.global.f32 [%s], %s;", a, yv[i*2+j])
			b.L(skip)
		}
	}
	b.L(end)
	return b.Build()
}

// WinogradBwdFilter computes dW[k,c] = Gᵀ [ Σ_tiles (Bᵀ d B) ⊙ (A dy Aᵀ) ] G.
// One 64-thread block per (k, c); threads stride over tiles and reduce the
// 16 transform-domain accumulators in shared memory. The grid has only K*C
// blocks, which is what starves most SMs in the paper's Figs. 20–21.
func WinogradBwdFilter() string {
	b := NewBuilder("winograd_bwd_filter")
	pX, pDY, pDW := b.PtrParam("pX"), b.PtrParam("pDY"), b.PtrParam("pDW")
	pC, pH, pWw := b.U32Param("pC"), b.U32Param("pH"), b.U32Param("pWidth")
	pK, pOH, pOW := b.U32Param("pK"), b.U32Param("pOH"), b.U32Param("pOW")
	pPad, pNImg := b.U32Param("pPad"), b.U32Param("pNImg")
	sacc := b.Shared("wacc", 64*16*4, 4)

	tid := b.R("r")
	b.I("mov.u32 %s, %%tid.x;", tid)
	fid := b.R("r")
	b.I("mov.u32 %s, %%ctaid.x;", fid)
	c := b.LoadU32(pC)
	k := b.LoadU32(pK)
	cc, kk := b.R("r"), b.R("r")
	b.I("rem.u32 %s, %s, %s;", cc, fid, c)
	b.I("div.u32 %s, %s, %s;", kk, fid, c)
	_ = k

	oh := b.LoadU32(pOH)
	ow := b.LoadU32(pOW)
	tilesY, tilesX := b.R("r"), b.R("r")
	b.I("add.u32 %s, %s, 1;", tilesY, oh)
	b.I("shr.u32 %s, %s, 1;", tilesY, tilesY)
	b.I("add.u32 %s, %s, 1;", tilesX, ow)
	b.I("shr.u32 %s, %s, 1;", tilesX, tilesX)
	nimg := b.LoadU32(pNImg)
	tilesPerImg := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", tilesPerImg, tilesY, tilesX)
	tot := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", tot, tilesPerImg, nimg)

	h := b.LoadU32(pH)
	w := b.LoadU32(pWw)
	pad := b.LoadU32(pPad)
	xB := b.LoadPtr(pX)
	dyB := b.LoadPtr(pDY)
	dwB := b.LoadPtr(pDW)
	hw := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", hw, h, w)
	chw := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", chw, c, hw)
	ohw := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", ohw, oh, ow)
	kohw := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", kohw, k, ohw)

	var acc [16]string
	for i := range acc {
		acc[i] = b.MovF32(0)
	}
	pos := b.R("r")
	b.I("mov.u32 %s, %s;", pos, tid)
	loop := b.L("WBF_LOOP")
	pd := b.R("p")
	lend := b.NewLabel("wbf_end")
	b.I("setp.ge.u32 %s, %s, %s;", pd, pos, tot)
	b.I("@%s bra %s;", pd, lend)
	tIdx, n := b.R("r"), b.R("r")
	b.I("rem.u32 %s, %s, %s;", tIdx, pos, tilesPerImg)
	b.I("div.u32 %s, %s, %s;", n, pos, tilesPerImg)
	tyy, txx := b.R("r"), b.R("r")
	b.I("div.u32 %s, %s, %s;", tyy, tIdx, tilesX)
	b.I("rem.u32 %s, %s, %s;", txx, tIdx, tilesX)
	// input patch of x[n, cc]
	base := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", base, n, chw)
	b.I("mad.lo.s32 %s, %s, %s, %s;", base, cc, hw, base)
	y0, x0 := b.R("r"), b.R("r")
	b.I("shl.b32 %s, %s, 1;", y0, tyy)
	b.I("sub.u32 %s, %s, %s;", y0, y0, pad)
	b.I("shl.b32 %s, %s, 1;", x0, txx)
	b.I("sub.u32 %s, %s, %s;", x0, x0, pad)
	d := emitLoadPatch4(b, xB, base, y0, x0, h, w)
	v := emitInputTransform(b, d)
	// dy 2x2 tile of dy[n, kk] (zeros outside)
	dyBase := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", dyBase, n, kohw)
	b.I("mad.lo.s32 %s, %s, %s, %s;", dyBase, kk, ohw, dyBase)
	var dyv [4]string
	z := b.MovF32(0)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			oy, oxr := b.R("r"), b.R("r")
			b.I("shl.b32 %s, %s, 1;", oy, tyy)
			b.I("add.u32 %s, %s, %d;", oy, oy, i)
			b.I("shl.b32 %s, %s, 1;", oxr, txx)
			b.I("add.u32 %s, %s, %d;", oxr, oxr, j)
			pin, ptmp := b.R("p"), b.R("p")
			b.I("setp.lt.u32 %s, %s, %s;", pin, oy, oh)
			b.I("setp.lt.u32 %s, %s, %s;", ptmp, oxr, ow)
			b.I("and.pred %s, %s, %s;", pin, pin, ptmp)
			si, clamped := b.R("r"), b.R("r")
			b.I("mad.lo.s32 %s, %s, %s, %s;", si, oy, ow, oxr)
			b.I("add.u32 %s, %s, %s;", si, si, dyBase)
			b.I("selp.b32 %s, %s, %s, %s;", clamped, si, dyBase, pin)
			a := b.ElemAddr(dyB, clamped, 4)
			dv := b.R("f")
			b.I("ld.global.f32 %s, [%s];", dv, a)
			dvv := b.R("f")
			b.I("selp.b32 %s, %s, %s, %s;", dvv, dv, z, pin)
			dyv[i*2+j] = dvv
		}
	}
	// Mdy = A dy Aᵀ where A (4x2) = [[1,0],[1,1],[1,-1],[0,-1]]
	var trows [8]string // 4x2: A*dy
	for j := 0; j < 2; j++ {
		t0 := dyv[0*2+j]
		t1 := b.R("f")
		b.I("add.f32 %s, %s, %s;", t1, dyv[0*2+j], dyv[1*2+j])
		t2 := b.R("f")
		b.I("sub.f32 %s, %s, %s;", t2, dyv[0*2+j], dyv[1*2+j])
		t3 := b.R("f")
		b.I("neg.f32 %s, %s;", t3, dyv[1*2+j])
		trows[0*2+j] = t0
		trows[1*2+j] = t1
		trows[2*2+j] = t2
		trows[3*2+j] = t3
	}
	var mdy [16]string
	for i := 0; i < 4; i++ {
		m0 := trows[i*2+0]
		m1 := b.R("f")
		b.I("add.f32 %s, %s, %s;", m1, trows[i*2+0], trows[i*2+1])
		m2 := b.R("f")
		b.I("sub.f32 %s, %s, %s;", m2, trows[i*2+0], trows[i*2+1])
		m3 := b.R("f")
		b.I("neg.f32 %s, %s;", m3, trows[i*2+1])
		mdy[i*4+0] = m0
		mdy[i*4+1] = m1
		mdy[i*4+2] = m2
		mdy[i*4+3] = m3
	}
	for i := 0; i < 16; i++ {
		b.I("fma.rn.f32 %s, %s, %s, %s;", acc[i], v[i], mdy[i], acc[i])
	}
	b.I("add.u32 %s, %s, 64;", pos, pos)
	b.I("bra %s;", loop)
	b.L(lend)

	// reduce 16 accumulators across the 64 threads via shared memory
	sbase := b.R("r")
	b.I("mov.u32 %s, %s;", sbase, sacc)
	for i := 0; i < 16; i++ {
		slot := b.R("r")
		b.I("mad.lo.s32 %s, %s, 4, %s;", slot, tid, sbase)
		b.I("add.u32 %s, %s, %d;", slot, slot, i*64*4)
		b.I("st.shared.f32 [%s], %s;", slot, acc[i])
	}
	b.I("bar.sync 0;")
	step := b.R("r")
	b.I("mov.u32 %s, 32;", step)
	rl := b.L("WBF_RED")
	pz := b.R("p")
	rend := b.NewLabel("wbf_red_end")
	b.I("setp.eq.u32 %s, %s, 0;", pz, step)
	b.I("@%s bra %s;", pz, rend)
	pact := b.R("p")
	skipR := b.NewLabel("wbf_skip")
	b.I("setp.ge.u32 %s, %s, %s;", pact, tid, step)
	b.I("@%s bra %s;", pact, skipR)
	for i := 0; i < 16; i++ {
		mine, other := b.R("r"), b.R("r")
		b.I("mad.lo.s32 %s, %s, 4, %s;", mine, tid, sbase)
		b.I("add.u32 %s, %s, %d;", mine, mine, i*64*4)
		stepOff := b.R("r")
		b.I("shl.b32 %s, %s, 2;", stepOff, step)
		b.I("add.u32 %s, %s, %s;", other, mine, stepOff)
		va, vb := b.R("f"), b.R("f")
		b.I("ld.shared.f32 %s, [%s];", va, mine)
		b.I("ld.shared.f32 %s, [%s];", vb, other)
		b.I("add.f32 %s, %s, %s;", va, va, vb)
		b.I("st.shared.f32 [%s], %s;", mine, va)
	}
	b.L(skipR)
	b.I("bar.sync 0;")
	b.I("shr.u32 %s, %s, 1;", step, step)
	b.I("bra %s;", rl)
	b.L(rend)

	// thread 0 applies Gᵀ S G and writes the 3x3 filter gradient
	p0 := b.R("p")
	done := b.NewLabel("wbf_done")
	b.I("setp.ne.u32 %s, %s, 0;", p0, tid)
	b.I("@%s bra %s;", p0, done)
	var s [16]string
	for i := 0; i < 16; i++ {
		a := b.R("r")
		b.I("add.u32 %s, %s, %d;", a, sbase, i*64*4)
		sv := b.R("f")
		b.I("ld.shared.f32 %s, [%s];", sv, a)
		s[i] = sv
	}
	// t = Gᵀ s : 3x4, Gᵀ = [[1,.5,.5,0],[0,.5,-.5,0],[0,.5,.5,1]]
	half := b.MovF32(0.5)
	var tg [12]string
	for j := 0; j < 4; j++ {
		sum12 := b.R("f")
		b.I("add.f32 %s, %s, %s;", sum12, s[1*4+j], s[2*4+j])
		b.I("mul.f32 %s, %s, %s;", sum12, sum12, half)
		dif12 := b.R("f")
		b.I("sub.f32 %s, %s, %s;", dif12, s[1*4+j], s[2*4+j])
		b.I("mul.f32 %s, %s, %s;", dif12, dif12, half)
		t0 := b.R("f")
		b.I("add.f32 %s, %s, %s;", t0, s[0*4+j], sum12)
		t2 := b.R("f")
		b.I("add.f32 %s, %s, %s;", t2, s[3*4+j], sum12)
		tg[0*4+j] = t0
		tg[1*4+j] = dif12
		tg[2*4+j] = t2
	}
	// dw = t G : 3x3
	var dwv [9]string
	for i := 0; i < 3; i++ {
		sum12 := b.R("f")
		b.I("add.f32 %s, %s, %s;", sum12, tg[i*4+1], tg[i*4+2])
		b.I("mul.f32 %s, %s, %s;", sum12, sum12, half)
		dif12 := b.R("f")
		b.I("sub.f32 %s, %s, %s;", dif12, tg[i*4+1], tg[i*4+2])
		b.I("mul.f32 %s, %s, %s;", dif12, dif12, half)
		d0 := b.R("f")
		b.I("add.f32 %s, %s, %s;", d0, tg[i*4+0], sum12)
		d2 := b.R("f")
		b.I("add.f32 %s, %s, %s;", d2, tg[i*4+3], sum12)
		dwv[i*3+0] = d0
		dwv[i*3+1] = dif12
		dwv[i*3+2] = d2
	}
	outBase := b.R("r")
	b.I("mul.lo.u32 %s, %s, 9;", outBase, fid)
	for i := 0; i < 9; i++ {
		oi := b.R("r")
		b.I("add.u32 %s, %s, %d;", oi, outBase, i)
		a := b.ElemAddr(dwB, oi, 4)
		b.I("st.global.f32 [%s], %s;", a, dwv[i])
	}
	b.L(done)
	return b.Build()
}
