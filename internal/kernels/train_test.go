package kernels_test

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/cudart"
	"repro/internal/exec"
	"repro/internal/ref"
)

// Table-driven tests for the training kernel builders, covering the
// backward-pass shape edge cases: rows shorter than a warp, partial
// GEMM tiles, repeated token ids colliding on one table row (the
// atomics path), and label positions at the row boundaries.

func uploadIDs(t *testing.T, ctx *cudart.Context, ids []int32) uint64 {
	t.Helper()
	addr, err := ctx.Malloc(uint64(4 * len(ids)))
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	buf := make([]byte, 4*len(ids))
	for i, id := range ids {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(id))
	}
	ctx.MemcpyHtoD(addr, buf)
	return addr
}

func TestSgemmTNBatched(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(31))
	cases := []struct {
		name        string
		m, n, k     int
		batch       int
		alpha, beta float32
	}{
		{"single_tile", 16, 16, 16, 1, 1, 0},
		{"batch1_odd_shapes", 5, 7, 13, 1, 1.5, 0.5},
		{"k1_rank1_update", 9, 11, 1, 1, 1, 1},
		{"partial_tiles_batched", 33, 17, 25, 4, 2, 0.25},
		{"accumulate_beta1", 8, 8, 37, 2, 1, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := randSlice(rng, c.batch*c.k*c.m)
			bm := randSlice(rng, c.batch*c.k*c.n)
			cm := randSlice(rng, c.batch*c.m*c.n)
			want := append([]float32(nil), cm...)
			for bz := 0; bz < c.batch; bz++ {
				ref.GemmTN(a[bz*c.k*c.m:], bm[bz*c.k*c.n:], want[bz*c.m*c.n:(bz+1)*c.m*c.n],
					c.m, c.n, c.k, c.alpha, c.beta)
			}
			pa, pb, pc := upload(t, ctx, a), upload(t, ctx, bm), upload(t, ctx, cm)
			params := cudart.NewParams().Ptr(pa).Ptr(pb).Ptr(pc).
				U32(uint32(c.m)).U32(uint32(c.n)).U32(uint32(c.k)).
				U32(uint32(c.k * c.m)).U32(uint32(c.k * c.n)).U32(uint32(c.m * c.n)).
				F32(c.alpha).F32(c.beta)
			grid := exec.Dim3{X: (c.n + 15) / 16, Y: (c.m + 15) / 16, Z: c.batch}
			if _, err := ctx.Launch("sgemm_tn_batched", grid, exec.Dim3{X: 16, Y: 16}, params, 0); err != nil {
				t.Fatalf("launch: %v", err)
			}
			got := ctx.MemcpyF32DtoH(pc, c.batch*c.m*c.n)
			if d := maxAbsDiff(got, want); d > 1e-4 {
				t.Fatalf("gemm_tn %s: max diff %g", c.name, d)
			}
		})
	}
}

func TestLayerNormBackwardKernel(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(32))
	const eps = 1e-5
	cases := []struct {
		name       string
		rows, cols int
	}{
		{"cols_below_warp", 2, 7},
		{"cols_warp_exact", 3, 32},
		{"cols_odd_above_warp", 5, 33},
		{"one_row", 1, 96},
		{"many_rows_atomic_contention", 16, 16},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			x := randSlice(rng, c.rows*c.cols)
			gamma := randSlice(rng, c.cols)
			dy := randSlice(rng, c.rows*c.cols)
			wantDX, wantDG, wantDB := ref.LayerNormBackward(x, gamma, dy, c.rows, c.cols, eps)
			px, pg, pdy := upload(t, ctx, x), upload(t, ctx, gamma), upload(t, ctx, dy)
			pdx := alloc(t, ctx, c.rows*c.cols)
			// dgamma/dbeta accumulate, so start them zeroed
			pdg := upload(t, ctx, make([]float32, c.cols))
			pdb := upload(t, ctx, make([]float32, c.cols))
			params := cudart.NewParams().Ptr(px).Ptr(pg).Ptr(pdy).Ptr(pdx).Ptr(pdg).Ptr(pdb).
				U32(uint32(c.cols)).F32(eps)
			if _, err := ctx.Launch("layernorm_backward", exec.Dim3{X: c.rows}, exec.Dim3{X: 32}, params, 0); err != nil {
				t.Fatalf("launch: %v", err)
			}
			if d := maxAbsDiff(ctx.MemcpyF32DtoH(pdx, c.rows*c.cols), wantDX); d > 2e-3 {
				t.Fatalf("layernorm_backward %s dx: max diff %g", c.name, d)
			}
			if d := maxAbsDiff(ctx.MemcpyF32DtoH(pdg, c.cols), wantDG); d > 2e-3 {
				t.Fatalf("layernorm_backward %s dgamma: max diff %g", c.name, d)
			}
			if d := maxAbsDiff(ctx.MemcpyF32DtoH(pdb, c.cols), wantDB); d > 2e-3 {
				t.Fatalf("layernorm_backward %s dbeta: max diff %g", c.name, d)
			}
		})
	}
}

func TestGeluBackwardKernel(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(33))
	// saturation extremes included: the clamped tanh must give derivative
	// ~1 (pos tail) and ~0 (neg tail), never NaN
	x := []float32{-50, -8, -3, -1, -0.1, 0, 0.1, 1, 3, 8, 50, 0.5, -0.5}
	dy := randSlice(rng, len(x))
	want := ref.GeluBackward(x, dy)
	px, pdy := upload(t, ctx, x), upload(t, ctx, dy)
	pdx := alloc(t, ctx, len(x))
	params := cudart.NewParams().Ptr(px).Ptr(pdy).Ptr(pdx).U32(uint32(len(x)))
	if _, err := ctx.Launch("gelu_backward", grid1D(len(x), 128), exec.Dim3{X: 128}, params, 0); err != nil {
		t.Fatalf("launch: %v", err)
	}
	got := ctx.MemcpyF32DtoH(pdx, len(x))
	if d := maxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("gelu_backward: max diff %g (got %v)", d, got)
	}
	for i, v := range got {
		if v != v {
			t.Fatalf("gelu_backward produced NaN at %d (input %v)", i, x[i])
		}
	}
}

func TestSoftmaxBackwardKernel(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(34))
	cases := []struct {
		name       string
		rows, cols int
	}{
		{"single_col", 3, 1},
		{"cols_below_warp", 4, 6},
		{"cols_odd_above_warp", 2, 37},
		{"one_row_long", 1, 80},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			logits := randSlice(rng, c.rows*c.cols)
			probs := ref.Softmax(logits, c.rows, c.cols)
			dprobs := randSlice(rng, c.rows*c.cols)
			want := ref.SoftmaxBackward(probs, dprobs, c.rows, c.cols)
			pp, pdp := upload(t, ctx, probs), upload(t, ctx, dprobs)
			pdx := alloc(t, ctx, c.rows*c.cols)
			params := cudart.NewParams().Ptr(pp).Ptr(pdp).Ptr(pdx).U32(uint32(c.cols))
			if _, err := ctx.Launch("softmax_backward", exec.Dim3{X: c.rows}, exec.Dim3{X: 32}, params, 0); err != nil {
				t.Fatalf("launch: %v", err)
			}
			if d := maxAbsDiff(ctx.MemcpyF32DtoH(pdx, c.rows*c.cols), want); d > 1e-4 {
				t.Fatalf("softmax_backward %s: max diff %g", c.name, d)
			}
		})
	}
}

func TestSoftmaxXentBackwardKernel(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(35))
	cases := []struct {
		name       string
		rows, cols int
		labels     []int32
	}{
		{"label_first_col", 2, 5, []int32{0, 0}},
		{"label_last_col", 3, 7, []int32{6, 6, 6}},
		{"cols_above_warp", 2, 61, []int32{17, 60}},
		{"one_row", 1, 29, []int32{11}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			logits := randSlice(rng, c.rows*c.cols)
			wantDX, wantLoss := ref.SoftmaxXentBackward(logits, c.labels, c.rows, c.cols)
			px := upload(t, ctx, logits)
			plab := uploadIDs(t, ctx, c.labels)
			pdx := alloc(t, ctx, c.rows*c.cols)
			ploss := alloc(t, ctx, c.rows)
			params := cudart.NewParams().Ptr(px).Ptr(plab).Ptr(pdx).Ptr(ploss).
				U32(uint32(c.cols)).U32(uint32(c.rows))
			if _, err := ctx.Launch("softmax_xent_backward", exec.Dim3{X: c.rows}, exec.Dim3{X: 32}, params, 0); err != nil {
				t.Fatalf("launch: %v", err)
			}
			if d := maxAbsDiff(ctx.MemcpyF32DtoH(pdx, c.rows*c.cols), wantDX); d > 1e-3 {
				t.Fatalf("softmax_xent_backward %s dx: max diff %g", c.name, d)
			}
			if d := maxAbsDiff(ctx.MemcpyF32DtoH(ploss, c.rows), wantLoss); d > 1e-3 {
				t.Fatalf("softmax_xent_backward %s loss: max diff %g", c.name, d)
			}
		})
	}
}

func TestEmbeddingBackwardKernel(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(36))
	cases := []struct {
		name  string
		vocab int
		cols  int
		ids   []int32
	}{
		{"unique_ids", 11, 8, []int32{1, 4, 9}},
		{"repeated_ids_collide", 5, 16, []int32{2, 2, 2, 0, 2}},
		{"single_token", 7, 33, []int32{3}},
		{"all_same_token", 4, 6, []int32{1, 1, 1, 1, 1, 1, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rows := len(c.ids)
			dy := randSlice(rng, rows*c.cols)
			want := ref.EmbeddingBackward(dy, c.ids, c.vocab, c.cols)
			pdy := upload(t, ctx, dy)
			pids := uploadIDs(t, ctx, c.ids)
			pdt := upload(t, ctx, make([]float32, c.vocab*c.cols))
			params := cudart.NewParams().Ptr(pdy).Ptr(pids).Ptr(pdt).
				U32(uint32(rows)).U32(uint32(c.cols))
			if _, err := ctx.Launch("embedding_backward", grid1D(rows*c.cols, 256), exec.Dim3{X: 256}, params, 0); err != nil {
				t.Fatalf("launch: %v", err)
			}
			if d := maxAbsDiff(ctx.MemcpyF32DtoH(pdt, c.vocab*c.cols), want); d > 1e-4 {
				t.Fatalf("embedding_backward %s: max diff %g", c.name, d)
			}
		})
	}
}
