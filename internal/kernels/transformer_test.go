package kernels_test

import (
	"math/rand"
	"testing"

	"repro/internal/cudart"
	"repro/internal/exec"
	"repro/internal/ref"
)

// Table-driven tests for the transformer kernel builders, covering the
// shape/stride edge cases the launch code must survive: batch=1, seq=1,
// head dims that are not a multiple of the warp size, and row lengths
// that leave partial tiles/warp iterations.

func TestSgemmNTBatched(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(21))
	cases := []struct {
		name        string
		m, n, k     int
		batch       int
		alpha, beta float32
	}{
		{"single_tile", 16, 16, 16, 1, 1, 0},
		{"batch1_odd_shapes", 5, 7, 13, 1, 1.5, 0.5},
		{"seq1", 1, 1, 9, 3, 1, 0},
		{"partial_tiles_batched", 33, 17, 25, 4, 2, 0.25},
		{"k_not_warp_multiple", 8, 8, 37, 2, 1, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := randSlice(rng, c.batch*c.m*c.k)
			bm := randSlice(rng, c.batch*c.n*c.k)
			cm := randSlice(rng, c.batch*c.m*c.n)
			want := append([]float32(nil), cm...)
			for bz := 0; bz < c.batch; bz++ {
				ref.GemmNT(a[bz*c.m*c.k:], bm[bz*c.n*c.k:], want[bz*c.m*c.n:(bz+1)*c.m*c.n],
					c.m, c.n, c.k, c.alpha, c.beta)
			}
			pa, pb, pc := upload(t, ctx, a), upload(t, ctx, bm), upload(t, ctx, cm)
			params := cudart.NewParams().Ptr(pa).Ptr(pb).Ptr(pc).
				U32(uint32(c.m)).U32(uint32(c.n)).U32(uint32(c.k)).
				U32(uint32(c.m * c.k)).U32(uint32(c.n * c.k)).U32(uint32(c.m * c.n)).
				F32(c.alpha).F32(c.beta)
			grid := exec.Dim3{X: (c.n + 15) / 16, Y: (c.m + 15) / 16, Z: c.batch}
			if _, err := ctx.Launch("sgemm_nt_batched", grid, exec.Dim3{X: 16, Y: 16}, params, 0); err != nil {
				t.Fatalf("launch: %v", err)
			}
			got := ctx.MemcpyF32DtoH(pc, c.batch*c.m*c.n)
			if d := maxAbsDiff(got, want); d > 1e-4 {
				t.Fatalf("gemm_nt %s: max diff %g", c.name, d)
			}
		})
	}
}

func TestLayerNormKernel(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(22))
	const eps = 1e-5
	cases := []struct {
		name       string
		rows, cols int
	}{
		{"single_element_rows", 4, 1},
		{"cols_below_warp", 2, 7},
		{"cols_warp_exact", 3, 32},
		{"cols_odd_above_warp", 5, 33},
		{"one_row", 1, 96},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			x := randSlice(rng, c.rows*c.cols)
			gamma := randSlice(rng, c.cols)
			beta := randSlice(rng, c.cols)
			want := ref.LayerNorm(x, gamma, beta, c.rows, c.cols, eps)
			px, pg, pb := upload(t, ctx, x), upload(t, ctx, gamma), upload(t, ctx, beta)
			py := alloc(t, ctx, c.rows*c.cols)
			params := cudart.NewParams().Ptr(px).Ptr(pg).Ptr(pb).Ptr(py).
				U32(uint32(c.cols)).F32(eps)
			if _, err := ctx.Launch("layernorm_forward", exec.Dim3{X: c.rows}, exec.Dim3{X: 32}, params, 0); err != nil {
				t.Fatalf("launch: %v", err)
			}
			got := ctx.MemcpyF32DtoH(py, c.rows*c.cols)
			if d := maxAbsDiff(got, want); d > 1e-3 {
				t.Fatalf("layernorm %s: max diff %g", c.name, d)
			}
		})
	}
}

func TestGeluKernel(t *testing.T) {
	ctx := newCtx(t)
	// include saturation extremes: the kernel clamps its tanh argument,
	// large inputs must come out as ~x (pos) and ~0 (neg), never NaN
	x := []float32{-50, -8, -3, -1, -0.1, 0, 0.1, 1, 3, 8, 50, 0.5, -0.5}
	want := ref.Gelu(x)
	px := upload(t, ctx, x)
	py := alloc(t, ctx, len(x))
	params := cudart.NewParams().Ptr(px).Ptr(py).U32(uint32(len(x)))
	if _, err := ctx.Launch("gelu_forward", grid1D(len(x), 128), exec.Dim3{X: 128}, params, 0); err != nil {
		t.Fatalf("launch: %v", err)
	}
	got := ctx.MemcpyF32DtoH(py, len(x))
	if d := maxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("gelu: max diff %g (got %v)", d, got)
	}
	for i, v := range got {
		if v != v {
			t.Fatalf("gelu produced NaN at %d (input %v)", i, x[i])
		}
	}
}

func TestResidualAddKernel(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 255, 256, 300} {
		x := randSlice(rng, n)
		r := randSlice(rng, n)
		want := ref.AddResidual(x, r)
		px, pr := upload(t, ctx, x), upload(t, ctx, r)
		py := alloc(t, ctx, n)
		params := cudart.NewParams().Ptr(px).Ptr(pr).Ptr(py).U32(uint32(n))
		if _, err := ctx.Launch("residual_add", grid1D(n, 128), exec.Dim3{X: 128}, params, 0); err != nil {
			t.Fatalf("launch: %v", err)
		}
		got := ctx.MemcpyF32DtoH(py, n)
		if d := maxAbsDiff(got, want); d != 0 {
			t.Fatalf("residual_add n=%d: max diff %g", n, d)
		}
	}
}

func TestHeadPermuteKernels(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(24))
	cases := []struct {
		name           string
		seq, heads, dh int
	}{
		{"single_head", 4, 1, 8},
		{"seq1", 1, 3, 4},
		{"dh_not_warp_multiple", 6, 2, 5},
		{"dh1", 3, 4, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := c.seq * c.heads * c.dh
			x := randSlice(rng, n)
			wantSplit := ref.SplitHeads(x, c.seq, c.heads, c.dh)
			px := upload(t, ctx, x)
			ps := alloc(t, ctx, n)
			pm := alloc(t, ctx, n)
			params := cudart.NewParams().Ptr(px).Ptr(ps).
				U32(uint32(c.seq)).U32(uint32(c.heads)).U32(uint32(c.dh))
			if _, err := ctx.Launch("split_heads", grid1D(n, 128), exec.Dim3{X: 128}, params, 0); err != nil {
				t.Fatalf("split launch: %v", err)
			}
			got := ctx.MemcpyF32DtoH(ps, n)
			if d := maxAbsDiff(got, wantSplit); d != 0 {
				t.Fatalf("split_heads %s: diff %g", c.name, d)
			}
			// merge must invert split exactly
			params = cudart.NewParams().Ptr(ps).Ptr(pm).
				U32(uint32(c.seq)).U32(uint32(c.heads)).U32(uint32(c.dh))
			if _, err := ctx.Launch("merge_heads", grid1D(n, 128), exec.Dim3{X: 128}, params, 0); err != nil {
				t.Fatalf("merge launch: %v", err)
			}
			back := ctx.MemcpyF32DtoH(pm, n)
			if d := maxAbsDiff(back, x); d != 0 {
				t.Fatalf("merge(split(x)) %s: diff %g", c.name, d)
			}
		})
	}
}

func TestEmbeddingLookupKernel(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(25))
	vocab, cols := 13, 7
	table := randSlice(rng, vocab*cols)
	ids := []int32{0, 12, 5, 5, 1}
	want := ref.EmbeddingLookup(table, ids, cols)
	pt := upload(t, ctx, table)
	pids, err := ctx.Malloc(uint64(4 * len(ids)))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*len(ids))
	for i, id := range ids {
		buf[4*i] = byte(id)
		buf[4*i+1] = byte(id >> 8)
		buf[4*i+2] = byte(id >> 16)
		buf[4*i+3] = byte(id >> 24)
	}
	ctx.MemcpyHtoD(pids, buf)
	po := alloc(t, ctx, len(want))
	n := len(ids) * cols
	params := cudart.NewParams().Ptr(pt).Ptr(pids).Ptr(po).
		U32(uint32(len(ids))).U32(uint32(cols))
	if _, err := ctx.Launch("embedding_lookup", grid1D(n, 128), exec.Dim3{X: 128}, params, 0); err != nil {
		t.Fatalf("launch: %v", err)
	}
	got := ctx.MemcpyF32DtoH(po, len(want))
	if d := maxAbsDiff(got, want); d != 0 {
		t.Fatalf("embedding_lookup: diff %g", d)
	}
}
