package kernels

import (
	"fmt"
	"math"
)

// FFT convolution kernels. The kernel names replicate the cuDNN kernels
// the paper observed for MNIST (Fig. 7): fft2d_r2c_32x32, fft2d_r2c_16x16,
// fft2d_c2r_32x32 (we also provide fft2d_c2r_16x16), plus the pointwise
// complex CGEMM. Bit reversal uses brev.b32 — the PTX 2.0 instruction the
// paper had to add to GPGPU-Sim for cuDNN's FFT-based kernels (§III-B).
//
// Layouts: real planes are [plane][N*N] floats; spectra are interleaved
// complex [plane][N*N] float2 (ld/st.v2.f32). One thread block of N
// threads handles one plane: thread t FFTs row t, barrier, then column t.

// fftLog2 returns log2(n) for the supported power-of-two tile edges.
func fftLog2(n int) int {
	switch n {
	case 8:
		return 3
	case 16:
		return 4
	case 32:
		return 5
	}
	panic(fmt.Sprintf("kernels: unsupported FFT size %d", n))
}

// emitButterflies generates the in-place radix-2 DIT butterfly loops over
// one line of the shared-memory tile. base is a b32 shared byte address of
// element 0 of the line; strideElems is the element distance within the
// line (1 for rows, N for columns). sign is -1 for forward, +1 for inverse.
func emitButterflies(b *Builder, n int, base string, strideElems int, sign float32, uniq string) {
	log2n := fftLog2(n)
	pi := b.MovF32(sign * float32(math.Pi))
	s := b.R("r")
	b.I("mov.u32 %s, 1;", s)
	sLoop := b.L("FFT_S_" + uniq)
	pDone := b.R("p")
	sEnd := b.NewLabel("fft_s_end_" + uniq)
	b.I("setp.gt.u32 %s, %s, %d;", pDone, s, log2n)
	b.I("@%s bra %s;", pDone, sEnd)
	m, half := b.R("r"), b.R("r")
	b.I("shl.b32 %s, 1, %s;", m, s)
	b.I("shr.u32 %s, %s, 1;", half, m)
	sm1 := b.R("r")
	b.I("sub.u32 %s, %s, 1;", sm1, s)
	halfMask := b.R("r")
	b.I("sub.u32 %s, %s, 1;", halfMask, half)

	j := b.R("r")
	b.I("mov.u32 %s, 0;", j)
	jLoop := b.L("FFT_J_" + uniq)
	pj := b.R("p")
	jEnd := b.NewLabel("fft_j_end_" + uniq)
	b.I("setp.ge.u32 %s, %s, %d;", pj, j, n/2)
	b.I("@%s bra %s;", pj, jEnd)

	grp, pos := b.R("r"), b.R("r")
	b.I("shr.u32 %s, %s, %s;", grp, j, sm1)
	b.I("and.b32 %s, %s, %s;", pos, j, halfMask)
	i1, i2 := b.R("r"), b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", i1, grp, m, pos)
	b.I("add.u32 %s, %s, %s;", i2, i1, half)

	// twiddle: ang = sign*pi*pos/half
	posF, halfF, ang := b.R("f"), b.R("f"), b.R("f")
	b.I("cvt.rn.f32.u32 %s, %s;", posF, pos)
	b.I("cvt.rn.f32.u32 %s, %s;", halfF, half)
	b.I("div.rn.f32 %s, %s, %s;", ang, posF, halfF)
	b.I("mul.f32 %s, %s, %s;", ang, ang, pi)
	wr, wi := b.R("f"), b.R("f")
	b.I("cos.approx.f32 %s, %s;", wr, ang)
	b.I("sin.approx.f32 %s, %s;", wi, ang)

	a1, a2 := b.R("r"), b.R("r")
	b.I("mad.lo.s32 %s, %s, %d, %s;", a1, i1, strideElems*8, base)
	b.I("mad.lo.s32 %s, %s, %d, %s;", a2, i2, strideElems*8, base)
	r2, im2 := b.R("f"), b.R("f")
	b.I("ld.shared.v2.f32 {%s, %s}, [%s];", r2, im2, a2)
	tr, ti := b.R("f"), b.R("f")
	tmp := b.R("f")
	b.I("mul.f32 %s, %s, %s;", tr, wr, r2)
	b.I("mul.f32 %s, %s, %s;", tmp, wi, im2)
	b.I("sub.f32 %s, %s, %s;", tr, tr, tmp)
	b.I("mul.f32 %s, %s, %s;", ti, wr, im2)
	b.I("fma.rn.f32 %s, %s, %s, %s;", ti, wi, r2, ti)
	r1, im1 := b.R("f"), b.R("f")
	b.I("ld.shared.v2.f32 {%s, %s}, [%s];", r1, im1, a1)
	or2, oi2 := b.R("f"), b.R("f")
	b.I("sub.f32 %s, %s, %s;", or2, r1, tr)
	b.I("sub.f32 %s, %s, %s;", oi2, im1, ti)
	b.I("st.shared.v2.f32 [%s], {%s, %s};", a2, or2, oi2)
	or1, oi1 := b.R("f"), b.R("f")
	b.I("add.f32 %s, %s, %s;", or1, r1, tr)
	b.I("add.f32 %s, %s, %s;", oi1, im1, ti)
	b.I("st.shared.v2.f32 [%s], {%s, %s};", a1, or1, oi1)

	b.I("add.u32 %s, %s, 1;", j, j)
	b.I("bra %s;", jLoop)
	b.L(jEnd)
	b.I("add.u32 %s, %s, 1;", s, s)
	b.I("bra %s;", sLoop)
	b.L(sEnd)
}

// bitRev emits jr = brev(j) >> (32 - log2n).
func bitRev(b *Builder, j string, log2n int) string {
	jr := b.R("r")
	b.I("brev.b32 %s, %s;", jr, j)
	b.I("shr.u32 %s, %s, %d;", jr, jr, 32-log2n)
	return jr
}

// FFT2D generates one of the fft2d kernels.
//   - name: entry name (e.g. "fft2d_r2c_32x32")
//   - n: tile edge (16 or 32)
//   - inverse: inverse transform (positive twiddle sign)
//   - realIn: input planes are real floats (forward r2c staging)
//   - realOut: output planes are real floats scaled by pScale (c2r)
func FFT2D(name string, n int, inverse, realIn, realOut bool) string {
	log2n := fftLog2(n)
	b := NewBuilder(name)
	pIn, pOut := b.PtrParam("pIn"), b.PtrParam("pOut")
	var pScale string
	if realOut {
		pScale = b.F32Param("pScale")
	}
	sm := b.Shared("tile", n*n*8, 8)

	t := b.R("r")
	b.I("mov.u32 %s, %%tid.x;", t)
	plane := b.R("r")
	b.I("mov.u32 %s, %%ctaid.x;", plane)
	inB := b.LoadPtr(pIn)
	outB := b.LoadPtr(pOut)
	smBase := b.R("r")
	b.I("mov.u32 %s, %s;", smBase, sm)

	sign := float32(-1)
	if inverse {
		sign = 1
	}

	// ---- Phase A: row t ----
	// Load row elements into bit-reversed positions of shared memory.
	rowBase := b.R("r")
	b.I("mad.lo.s32 %s, %s, %d, %s;", rowBase, t, n*8, smBase)
	planeOffIn := b.R("r")
	if realIn {
		b.I("mul.lo.u32 %s, %s, %d;", planeOffIn, plane, n*n)
	} else {
		b.I("mul.lo.u32 %s, %s, %d;", planeOffIn, plane, n*n)
	}
	j := b.R("r")
	b.I("mov.u32 %s, 0;", j)
	loadLoop := b.L("LOAD_LOOP")
	pl := b.R("p")
	loadEnd := b.NewLabel("load_end")
	b.I("setp.ge.u32 %s, %s, %d;", pl, j, n)
	b.I("@%s bra %s;", pl, loadEnd)
	srcIdx := b.R("r")
	b.I("mad.lo.s32 %s, %s, %d, %s;", srcIdx, t, n, j)
	b.I("add.u32 %s, %s, %s;", srcIdx, srcIdx, planeOffIn)
	re, im := b.R("f"), b.R("f")
	if realIn {
		aIn := b.ElemAddr(inB, srcIdx, 4)
		b.I("ld.global.f32 %s, [%s];", re, aIn)
		b.I("mov.f32 %s, %s;", im, F32Imm(0))
	} else {
		aIn := b.ElemAddr(inB, srcIdx, 8)
		b.I("ld.global.v2.f32 {%s, %s}, [%s];", re, im, aIn)
	}
	jr := bitRev(b, j, log2n)
	dst := b.R("r")
	b.I("mad.lo.s32 %s, %s, 8, %s;", dst, jr, rowBase)
	b.I("st.shared.v2.f32 [%s], {%s, %s};", dst, re, im)
	b.I("add.u32 %s, %s, 1;", j, j)
	b.I("bra %s;", loadLoop)
	b.L(loadEnd)

	emitButterflies(b, n, rowBase, 1, sign, "row")
	b.I("bar.sync 0;")

	// ---- Phase B: column t ----
	colBase := b.R("r")
	b.I("mad.lo.s32 %s, %s, 8, %s;", colBase, t, smBase)
	// In-place bit-reversal permutation along the column.
	j2 := b.R("r")
	b.I("mov.u32 %s, 0;", j2)
	permLoop := b.L("PERM_LOOP")
	pp := b.R("p")
	permEnd := b.NewLabel("perm_end")
	b.I("setp.ge.u32 %s, %s, %d;", pp, j2, n)
	b.I("@%s bra %s;", pp, permEnd)
	jr2 := bitRev(b, j2, log2n)
	pswap := b.R("p")
	noswap := b.NewLabel("noswap")
	b.I("setp.ge.u32 %s, %s, %s;", pswap, j2, jr2)
	b.I("@%s bra %s;", pswap, noswap)
	aA, aB := b.R("r"), b.R("r")
	b.I("mad.lo.s32 %s, %s, %d, %s;", aA, j2, n*8, colBase)
	b.I("mad.lo.s32 %s, %s, %d, %s;", aB, jr2, n*8, colBase)
	ra, ia := b.R("f"), b.R("f")
	rb, ib := b.R("f"), b.R("f")
	b.I("ld.shared.v2.f32 {%s, %s}, [%s];", ra, ia, aA)
	b.I("ld.shared.v2.f32 {%s, %s}, [%s];", rb, ib, aB)
	b.I("st.shared.v2.f32 [%s], {%s, %s};", aA, rb, ib)
	b.I("st.shared.v2.f32 [%s], {%s, %s};", aB, ra, ia)
	b.L(noswap)
	b.I("add.u32 %s, %s, 1;", j2, j2)
	b.I("bra %s;", permLoop)
	b.L(permEnd)

	emitButterflies(b, n, colBase, n, sign, "col")

	// ---- write out ----
	var scale string
	if realOut {
		scale = b.LoadF32(pScale)
	}
	planeOffOut := b.R("r")
	b.I("mul.lo.u32 %s, %s, %d;", planeOffOut, plane, n*n)
	j3 := b.R("r")
	b.I("mov.u32 %s, 0;", j3)
	outLoop := b.L("OUT_LOOP")
	po := b.R("p")
	outEnd := b.NewLabel("out_end")
	b.I("setp.ge.u32 %s, %s, %d;", po, j3, n)
	b.I("@%s bra %s;", po, outEnd)
	sAddr := b.R("r")
	b.I("mad.lo.s32 %s, %s, %d, %s;", sAddr, j3, n*8, colBase)
	vr, vi := b.R("f"), b.R("f")
	b.I("ld.shared.v2.f32 {%s, %s}, [%s];", vr, vi, sAddr)
	dstIdx := b.R("r")
	b.I("mad.lo.s32 %s, %s, %d, %s;", dstIdx, j3, n, t)
	b.I("add.u32 %s, %s, %s;", dstIdx, dstIdx, planeOffOut)
	if realOut {
		b.I("mul.f32 %s, %s, %s;", vr, vr, scale)
		aOut := b.ElemAddr(outB, dstIdx, 4)
		b.I("st.global.f32 [%s], %s;", aOut, vr)
	} else {
		aOut := b.ElemAddr(outB, dstIdx, 8)
		b.I("st.global.v2.f32 [%s], {%s, %s};", aOut, vr, vi)
	}
	b.I("add.u32 %s, %s, 1;", j3, j3)
	b.I("bra %s;", outLoop)
	b.L(outEnd)
	return b.Build()
}

// FFTR2C32 is fft2d_r2c_32x32 — the kernel in which the paper's debug
// flow localised GPGPU-Sim's rem.u32 bug.
func FFTR2C32() string { return FFT2D("fft2d_r2c_32x32", 32, false, true, false) }

// FFTR2C16 is fft2d_r2c_16x16.
func FFTR2C16() string { return FFT2D("fft2d_r2c_16x16", 16, false, true, false) }

// FFTC2R32 is fft2d_c2r_32x32 (inverse, real output, scaled).
func FFTC2R32() string { return FFT2D("fft2d_c2r_32x32", 32, true, false, true) }

// FFTC2R16 is fft2d_c2r_16x16.
func FFTC2R16() string { return FFT2D("fft2d_c2r_16x16", 16, true, false, true) }

// CGemm is the pointwise complex accumulation across channels in the
// frequency domain: for tile tt (= ctaid.y) and each (k, f),
//
//	Y[(k*NT+tt), f] = sum_c conj(W[(k*C+c), f]) * X[(c*NT+tt), f]
//
// conj(W)·X implements cross-correlation (what CNN "convolution" is).
func CGemm() string {
	b := NewBuilder("cgemm")
	pX, pW, pY := b.PtrParam("pX"), b.PtrParam("pW"), b.PtrParam("pY")
	pC, pK, pNN, pNT := b.U32Param("pC"), b.U32Param("pK"), b.U32Param("pNN"), b.U32Param("pNT")
	end := b.NewLabel("end")
	idx := b.GlobalTidX()
	k := b.LoadU32(pK)
	nn := b.LoadU32(pNN)
	tot := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", tot, k, nn)
	b.GuardEnd(idx, tot, end)
	f, kk := b.R("r"), b.R("r")
	b.I("rem.u32 %s, %s, %s;", f, idx, nn)
	b.I("div.u32 %s, %s, %s;", kk, idx, nn)
	tt := b.R("r")
	b.I("mov.u32 %s, %%ctaid.y;", tt)
	c := b.LoadU32(pC)
	nt := b.LoadU32(pNT)
	xB := b.LoadPtr(pX)
	wB := b.LoadPtr(pW)
	yB := b.LoadPtr(pY)

	accR := b.MovF32(0)
	accI := b.MovF32(0)
	cc := b.R("r")
	b.I("mov.u32 %s, 0;", cc)
	loop := b.L("CG_LOOP")
	pc := b.R("p")
	lend := b.NewLabel("cg_end")
	b.I("setp.ge.u32 %s, %s, %s;", pc, cc, c)
	b.I("@%s bra %s;", pc, lend)
	// X[(cc*NT+tt)*NN + f]
	xi := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", xi, cc, nt, tt)
	b.I("mad.lo.s32 %s, %s, %s, %s;", xi, xi, nn, f)
	ax := b.ElemAddr(xB, xi, 8)
	xr, xim := b.R("f"), b.R("f")
	b.I("ld.global.v2.f32 {%s, %s}, [%s];", xr, xim, ax)
	// W[(kk*C+cc)*NN + f]
	wi := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", wi, kk, c, cc)
	b.I("mad.lo.s32 %s, %s, %s, %s;", wi, wi, nn, f)
	aw := b.ElemAddr(wB, wi, 8)
	wr, wim := b.R("f"), b.R("f")
	b.I("ld.global.v2.f32 {%s, %s}, [%s];", wr, wim, aw)
	// conj(W)*X = (wr - i wi)(xr + i xi) = (wr*xr + wi*xi) + i(wr*xi - wi*xr)
	b.I("fma.rn.f32 %s, %s, %s, %s;", accR, wr, xr, accR)
	b.I("fma.rn.f32 %s, %s, %s, %s;", accR, wim, xim, accR)
	b.I("fma.rn.f32 %s, %s, %s, %s;", accI, wr, xim, accI)
	t1 := b.R("f")
	b.I("mul.f32 %s, %s, %s;", t1, wim, xr)
	b.I("sub.f32 %s, %s, %s;", accI, accI, t1)
	b.I("add.u32 %s, %s, 1;", cc, cc)
	b.I("bra %s;", loop)
	b.L(lend)

	yi := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", yi, kk, nt, tt)
	b.I("mad.lo.s32 %s, %s, %s, %s;", yi, yi, nn, f)
	ay := b.ElemAddr(yB, yi, 8)
	b.I("st.global.v2.f32 [%s], {%s, %s};", ay, accR, accI)
	b.L(end)
	return b.Build()
}

// FFTCrop extracts the valid correlation region from full inverse-FFT
// frames: out[p, u, v] = in[p, (u-P) mod N, (v-P) mod N] for planes p.
func FFTCrop() string {
	b := NewBuilder("fft_crop")
	pIn, pOut := b.PtrParam("pIn"), b.PtrParam("pOut")
	pN := b.U32Param("pN")
	pOH, pOW := b.U32Param("pOH"), b.U32Param("pOW")
	pPad := b.U32Param("pPad")
	end := b.NewLabel("end")
	idx := b.GlobalTidX()
	oh := b.LoadU32(pOH)
	ow := b.LoadU32(pOW)
	tot := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", tot, oh, ow)
	b.GuardEnd(idx, tot, end)
	plane := b.R("r")
	b.I("mov.u32 %s, %%ctaid.y;", plane)
	u, v := b.R("r"), b.R("r")
	b.I("div.u32 %s, %s, %s;", u, idx, ow)
	b.I("rem.u32 %s, %s, %s;", v, idx, ow)
	n := b.LoadU32(pN)
	pad := b.LoadU32(pPad)
	su, sv := b.R("r"), b.R("r")
	b.I("add.u32 %s, %s, %s;", su, u, n)
	b.I("sub.u32 %s, %s, %s;", su, su, pad)
	b.I("rem.u32 %s, %s, %s;", su, su, n)
	b.I("add.u32 %s, %s, %s;", sv, v, n)
	b.I("sub.u32 %s, %s, %s;", sv, sv, pad)
	b.I("rem.u32 %s, %s, %s;", sv, sv, n)
	inB := b.LoadPtr(pIn)
	outB := b.LoadPtr(pOut)
	nn := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", nn, n, n)
	si := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, 0;", si, plane, nn)
	b.I("mad.lo.s32 %s, %s, %s, %s;", si, su, n, si)
	b.I("add.u32 %s, %s, %s;", si, si, sv)
	ain := b.ElemAddr(inB, si, 4)
	val := b.R("f")
	b.I("ld.global.f32 %s, [%s];", val, ain)
	di := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", di, plane, tot, idx)
	aout := b.ElemAddr(outB, di, 4)
	b.I("st.global.f32 [%s], %s;", aout, val)
	b.L(end)
	return b.Build()
}

// FFTTileExtract cuts overlapping tileN x tileN tiles out of x[C,H,W] for
// the FFT-Tiling algorithm: dst plane (c*ntX*ntY + ty*ntX + tx) holds the
// tile whose origin is (ty*step-pad, tx*step-pad), zero-filled outside.
func FFTTileExtract() string {
	b := NewBuilder("fft_tile_extract")
	pX, pOut := b.PtrParam("pX"), b.PtrParam("pOut")
	b.U32Param("pC") // kept for a cuDNN-shaped signature; plane = ctaid.y
	pH, pW := b.U32Param("pH"), b.U32Param("pWidth")
	pTileN, pNTX, pNTY := b.U32Param("pTileN"), b.U32Param("pNTX"), b.U32Param("pNTY")
	pStep, pPad := b.U32Param("pStep"), b.U32Param("pPad")
	pWin := b.U32Param("pWin") // tile positions at u or v >= win read as zero
	end := b.NewLabel("end")
	idx := b.GlobalTidX()
	tn := b.LoadU32(pTileN)
	nn := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", nn, tn, tn)
	b.GuardEnd(idx, nn, end)
	plane := b.R("r")
	b.I("mov.u32 %s, %%ctaid.y;", plane)
	ntx := b.LoadU32(pNTX)
	nty := b.LoadU32(pNTY)
	// plane -> (c, ty, tx)
	tiles := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", tiles, ntx, nty)
	tIdx, c := b.R("r"), b.R("r")
	b.I("rem.u32 %s, %s, %s;", tIdx, plane, tiles)
	b.I("div.u32 %s, %s, %s;", c, plane, tiles)
	ty, tx := b.R("r"), b.R("r")
	b.I("div.u32 %s, %s, %s;", ty, tIdx, ntx)
	b.I("rem.u32 %s, %s, %s;", tx, tIdx, ntx)
	u, v := b.R("r"), b.R("r")
	b.I("div.u32 %s, %s, %s;", u, idx, tn)
	b.I("rem.u32 %s, %s, %s;", v, idx, tn)
	step := b.LoadU32(pStep)
	pad := b.LoadU32(pPad)
	iy, ix := b.R("r"), b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", iy, ty, step, u)
	b.I("sub.u32 %s, %s, %s;", iy, iy, pad)
	b.I("mad.lo.s32 %s, %s, %s, %s;", ix, tx, step, v)
	b.I("sub.u32 %s, %s, %s;", ix, ix, pad)
	h := b.LoadU32(pH)
	w := b.LoadU32(pW)
	pin, ptmp := b.R("p"), b.R("p")
	b.I("setp.lt.u32 %s, %s, %s;", pin, iy, h)
	b.I("setp.lt.u32 %s, %s, %s;", ptmp, ix, w)
	b.I("and.pred %s, %s, %s;", pin, pin, ptmp)
	winLim := b.LoadU32(pWin)
	b.I("setp.lt.u32 %s, %s, %s;", ptmp, u, winLim)
	b.I("and.pred %s, %s, %s;", pin, pin, ptmp)
	b.I("setp.lt.u32 %s, %s, %s;", ptmp, v, winLim)
	b.I("and.pred %s, %s, %s;", pin, pin, ptmp)
	xB := b.LoadPtr(pX)
	outB := b.LoadPtr(pOut)
	si, clamped := b.R("r"), b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", si, c, h, iy)
	b.I("mad.lo.s32 %s, %s, %s, %s;", si, si, w, ix)
	b.I("selp.b32 %s, %s, 0, %s;", clamped, si, pin)
	ax := b.ElemAddr(xB, clamped, 4)
	val := b.R("f")
	z := b.MovF32(0)
	b.I("ld.global.f32 %s, [%s];", val, ax)
	b.I("selp.b32 %s, %s, %s, %s;", val, val, z, pin)
	di := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", di, plane, nn, idx)
	aout := b.ElemAddr(outB, di, 4)
	b.I("st.global.f32 [%s], %s;", aout, val)
	b.L(end)
	return b.Build()
}

// FFTTileStitch assembles the per-tile correlation results back into
// y[k, OH, OW]: each output pixel belongs to exactly one tile of edge
// step; tiles are laid out as planes (k*ntX*ntY + ty*ntX + tx) of tileN².
func FFTTileStitch() string {
	b := NewBuilder("fft_tile_stitch")
	pTiles, pY := b.PtrParam("pTiles"), b.PtrParam("pY")
	pOH, pOW := b.U32Param("pOH"), b.U32Param("pOW")
	pTileN, pNTX, pNTY := b.U32Param("pTileN"), b.U32Param("pNTX"), b.U32Param("pNTY")
	pStep := b.U32Param("pStep")
	end := b.NewLabel("end")
	idx := b.GlobalTidX()
	oh := b.LoadU32(pOH)
	ow := b.LoadU32(pOW)
	tot := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", tot, oh, ow)
	b.GuardEnd(idx, tot, end)
	k := b.R("r")
	b.I("mov.u32 %s, %%ctaid.y;", k)
	oy, ox := b.R("r"), b.R("r")
	b.I("div.u32 %s, %s, %s;", oy, idx, ow)
	b.I("rem.u32 %s, %s, %s;", ox, idx, ow)
	step := b.LoadU32(pStep)
	ty, u := b.R("r"), b.R("r")
	b.I("div.u32 %s, %s, %s;", ty, oy, step)
	b.I("rem.u32 %s, %s, %s;", u, oy, step)
	tx, v := b.R("r"), b.R("r")
	b.I("div.u32 %s, %s, %s;", tx, ox, step)
	b.I("rem.u32 %s, %s, %s;", v, ox, step)
	ntx := b.LoadU32(pNTX)
	nty := b.LoadU32(pNTY)
	tn := b.LoadU32(pTileN)
	tiles := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", tiles, ntx, nty)
	plane := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, 0;", plane, k, tiles)
	b.I("mad.lo.s32 %s, %s, %s, %s;", plane, ty, ntx, plane)
	b.I("add.u32 %s, %s, %s;", plane, plane, tx)
	nn := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", nn, tn, tn)
	si := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, 0;", si, plane, nn)
	b.I("mad.lo.s32 %s, %s, %s, %s;", si, u, tn, si)
	b.I("add.u32 %s, %s, %s;", si, si, v)
	tB := b.LoadPtr(pTiles)
	yB := b.LoadPtr(pY)
	ain := b.ElemAddr(tB, si, 4)
	val := b.R("f")
	b.I("ld.global.f32 %s, [%s];", val, ain)
	di := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", di, k, tot, idx)
	aout := b.ElemAddr(yB, di, 4)
	b.I("st.global.f32 [%s], %s;", aout, val)
	b.L(end)
	return b.Build()
}

// CGemmBwdFilter accumulates filter-gradient spectra:
//
//	dWspec[(k*C+c), f] += sum_t conj(DY[(k*NT+t), f]) * X[(c*NT+t), f]
//
// where t enumerates the NT tiles of one image (NT=1 for the plain FFT
// algorithm). The caller zeroes dWspec once and launches per image, so the
// image sum also accumulates in the frequency domain.
func CGemmBwdFilter() string {
	b := NewBuilder("cgemm_bwd_filter")
	pX, pDY, pDW := b.PtrParam("pX"), b.PtrParam("pDY"), b.PtrParam("pDW")
	pC, pK, pNN, pNT := b.U32Param("pC"), b.U32Param("pK"), b.U32Param("pNN"), b.U32Param("pNT")
	end := b.NewLabel("end")
	idx := b.GlobalTidX()
	c := b.LoadU32(pC)
	k := b.LoadU32(pK)
	nn := b.LoadU32(pNN)
	tot := b.R("r")
	b.I("mul.lo.u32 %s, %s, %s;", tot, k, c)
	b.I("mul.lo.u32 %s, %s, %s;", tot, tot, nn)
	b.GuardEnd(idx, tot, end)
	f, t1 := b.R("r"), b.R("r")
	b.I("rem.u32 %s, %s, %s;", f, idx, nn)
	b.I("div.u32 %s, %s, %s;", t1, idx, nn)
	cc, kk := b.R("r"), b.R("r")
	b.I("rem.u32 %s, %s, %s;", cc, t1, c)
	b.I("div.u32 %s, %s, %s;", kk, t1, c)
	nt := b.LoadU32(pNT)
	xB := b.LoadPtr(pX)
	dyB := b.LoadPtr(pDY)
	dwB := b.LoadPtr(pDW)

	accR := b.MovF32(0)
	accI := b.MovF32(0)
	tt := b.R("r")
	b.I("mov.u32 %s, 0;", tt)
	loop := b.L("CGBF_LOOP")
	pt := b.R("p")
	lend := b.NewLabel("cgbf_end")
	b.I("setp.ge.u32 %s, %s, %s;", pt, tt, nt)
	b.I("@%s bra %s;", pt, lend)
	xi := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", xi, cc, nt, tt)
	b.I("mad.lo.s32 %s, %s, %s, %s;", xi, xi, nn, f)
	ax := b.ElemAddr(xB, xi, 8)
	xr, xim := b.R("f"), b.R("f")
	b.I("ld.global.v2.f32 {%s, %s}, [%s];", xr, xim, ax)
	dyi := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", dyi, kk, nt, tt)
	b.I("mad.lo.s32 %s, %s, %s, %s;", dyi, dyi, nn, f)
	ady := b.ElemAddr(dyB, dyi, 8)
	yr, yim := b.R("f"), b.R("f")
	b.I("ld.global.v2.f32 {%s, %s}, [%s];", yr, yim, ady)
	// conj(DY)*X = (yr - i yi)(xr + i xi)
	b.I("fma.rn.f32 %s, %s, %s, %s;", accR, yr, xr, accR)
	b.I("fma.rn.f32 %s, %s, %s, %s;", accR, yim, xim, accR)
	b.I("fma.rn.f32 %s, %s, %s, %s;", accI, yr, xim, accI)
	tmp := b.R("f")
	b.I("mul.f32 %s, %s, %s;", tmp, yim, xr)
	b.I("sub.f32 %s, %s, %s;", accI, accI, tmp)
	b.I("add.u32 %s, %s, 1;", tt, tt)
	b.I("bra %s;", loop)
	b.L(lend)

	awOut := b.ElemAddr(dwB, idx, 8)
	oldR, oldI := b.R("f"), b.R("f")
	b.I("ld.global.v2.f32 {%s, %s}, [%s];", oldR, oldI, awOut)
	b.I("add.f32 %s, %s, %s;", accR, accR, oldR)
	b.I("add.f32 %s, %s, %s;", accI, accI, oldI)
	b.I("st.global.v2.f32 [%s], {%s, %s};", awOut, accR, accI)
	b.L(end)
	return b.Build()
}
