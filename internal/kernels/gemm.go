package kernels

// GEMM-family kernels: the tiled shared-memory SGEMM used by the GEMM
// convolution algorithm (and by Winograd-Nonfused's batched stage via
// grid.z), and GEMV2T, the transposed matrix-vector kernel cuDNN uses for
// fully-connected layers (one of the paper's Fig. 7 kernels).

// GemmTile is the square tile edge of the SGEMM kernel.
const GemmTile = 16

// SgemmTiled computes C = alpha*A*B + beta*C for row-major A[M,K], B[K,N],
// C[M,N]. grid.z selects a batch slice at the given element strides, which
// lets the same kernel serve both plain and batched (Winograd, FFT) GEMMs.
// Launch with block (16,16), grid (ceil(N/16), ceil(M/16), batches).
func SgemmTiled() string {
	b := NewBuilder("sgemm_tiled")
	pA, pB, pC := b.PtrParam("pA"), b.PtrParam("pB"), b.PtrParam("pC")
	pM, pN, pK := b.U32Param("pM"), b.U32Param("pN"), b.U32Param("pK")
	pSA, pSB, pSC := b.U32Param("pStrideA"), b.U32Param("pStrideB"), b.U32Param("pStrideC")
	pAl, pBe := b.F32Param("pAlpha"), b.F32Param("pBeta")
	as := b.Shared("As", GemmTile*GemmTile*4, 4)
	bs := b.Shared("Bs", GemmTile*GemmTile*4, 4)

	tx, ty := b.R("r"), b.R("r")
	b.I("mov.u32 %s, %%tid.x;", tx)
	b.I("mov.u32 %s, %%tid.y;", ty)
	bx, by, bz := b.R("r"), b.R("r"), b.R("r")
	b.I("mov.u32 %s, %%ctaid.x;", bx)
	b.I("mov.u32 %s, %%ctaid.y;", by)
	b.I("mov.u32 %s, %%ctaid.z;", bz)
	row, col := b.R("r"), b.R("r")
	b.I("mad.lo.s32 %s, %s, %d, %s;", row, by, GemmTile, ty)
	b.I("mad.lo.s32 %s, %s, %d, %s;", col, bx, GemmTile, tx)

	m, n, k := b.LoadU32(pM), b.LoadU32(pN), b.LoadU32(pK)
	aBase, bBase, cBase := b.LoadPtr(pA), b.LoadPtr(pB), b.LoadPtr(pC)
	// batch offsets
	for _, pair := range [][2]string{{aBase, pSA}, {bBase, pSB}, {cBase, pSC}} {
		stride := b.LoadU32(pair[1])
		off32 := b.R("r")
		off := b.R("rd")
		b.I("mul.lo.u32 %s, %s, %s;", off32, bz, stride)
		b.I("mul.wide.u32 %s, %s, 4;", off, off32)
		b.I("add.s64 %s, %s, %s;", pair[0], pair[0], off)
	}

	acc := b.MovF32(0)
	zero := b.MovF32(0)
	numTiles := b.R("r")
	b.I("add.u32 %s, %s, %d;", numTiles, k, GemmTile-1)
	b.I("div.u32 %s, %s, %d;", numTiles, numTiles, GemmTile)

	asAddr, bsAddr := b.R("r"), b.R("r")
	b.I("mov.u32 %s, %s;", asAddr, as)
	b.I("mov.u32 %s, %s;", bsAddr, bs)
	// this thread's store slots in the tiles
	asSt, bsSt := b.R("r"), b.R("r")
	lin := b.R("r")
	b.I("mad.lo.s32 %s, %s, %d, %s;", lin, ty, GemmTile, tx)
	b.I("mad.lo.s32 %s, %s, 4, %s;", asSt, lin, asAddr)
	b.I("mad.lo.s32 %s, %s, 4, %s;", bsSt, lin, bsAddr)

	t := b.R("r")
	b.I("mov.u32 %s, 0;", t)
	tileLoop := b.L("TILE_LOOP")
	pDone := b.R("p")
	endTiles := b.NewLabel("end_tiles")
	b.I("setp.ge.u32 %s, %s, %s;", pDone, t, numTiles)
	b.I("@%s bra %s;", pDone, endTiles)

	// load A element (row, t*16+tx), guarded via selp clamp
	aCol := b.R("r")
	b.I("mad.lo.s32 %s, %s, %d, %s;", aCol, t, GemmTile, tx)
	pa1, pa2 := b.R("p"), b.R("p")
	b.I("setp.lt.u32 %s, %s, %s;", pa1, row, m)
	b.I("setp.lt.u32 %s, %s, %s;", pa2, aCol, k)
	b.I("and.pred %s, %s, %s;", pa1, pa1, pa2)
	aIdx := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", aIdx, row, k, aCol)
	b.I("selp.b32 %s, %s, 0, %s;", aIdx, aIdx, pa1)
	aAddr := b.ElemAddr(aBase, aIdx, 4)
	va := b.R("f")
	b.I("ld.global.f32 %s, [%s];", va, aAddr)
	b.I("selp.b32 %s, %s, %s, %s;", va, va, zero, pa1)
	b.I("st.shared.f32 [%s], %s;", asSt, va)

	// load B element (t*16+ty, col)
	bRow := b.R("r")
	b.I("mad.lo.s32 %s, %s, %d, %s;", bRow, t, GemmTile, ty)
	pb1, pb2 := b.R("p"), b.R("p")
	b.I("setp.lt.u32 %s, %s, %s;", pb1, bRow, k)
	b.I("setp.lt.u32 %s, %s, %s;", pb2, col, n)
	b.I("and.pred %s, %s, %s;", pb1, pb1, pb2)
	bIdx := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", bIdx, bRow, n, col)
	b.I("selp.b32 %s, %s, 0, %s;", bIdx, bIdx, pb1)
	bAddr := b.ElemAddr(bBase, bIdx, 4)
	vb := b.R("f")
	b.I("ld.global.f32 %s, [%s];", vb, bAddr)
	b.I("selp.b32 %s, %s, %s, %s;", vb, vb, zero, pb1)
	b.I("st.shared.f32 [%s], %s;", bsSt, vb)

	b.I("bar.sync 0;")

	// inner product over the tile
	asPtr, bsPtr := b.R("r"), b.R("r")
	b.I("mad.lo.s32 %s, %s, %d, %s;", asPtr, ty, GemmTile*4, asAddr)
	b.I("mad.lo.s32 %s, %s, 4, %s;", bsPtr, tx, bsAddr)
	kk := b.R("r")
	b.I("mov.u32 %s, 0;", kk)
	inner := b.L("INNER")
	pInner := b.R("p")
	innerEnd := b.NewLabel("inner_end")
	b.I("setp.ge.u32 %s, %s, %d;", pInner, kk, GemmTile)
	b.I("@%s bra %s;", pInner, innerEnd)
	ea, eb := b.R("f"), b.R("f")
	b.I("ld.shared.f32 %s, [%s];", ea, asPtr)
	b.I("ld.shared.f32 %s, [%s];", eb, bsPtr)
	b.I("fma.rn.f32 %s, %s, %s, %s;", acc, ea, eb, acc)
	b.I("add.u32 %s, %s, 4;", asPtr, asPtr)
	b.I("add.u32 %s, %s, %d;", bsPtr, bsPtr, GemmTile*4)
	b.I("add.u32 %s, %s, 1;", kk, kk)
	b.I("bra %s;", inner)
	b.L(innerEnd)

	b.I("bar.sync 0;")
	b.I("add.u32 %s, %s, 1;", t, t)
	b.I("bra %s;", tileLoop)
	b.L(endTiles)

	// write back
	end := b.NewLabel("end")
	pc1, pc2 := b.R("p"), b.R("p")
	b.I("setp.ge.u32 %s, %s, %s;", pc1, row, m)
	b.I("@%s bra %s;", pc1, end)
	b.I("setp.ge.u32 %s, %s, %s;", pc2, col, n)
	b.I("@%s bra %s;", pc2, end)
	cIdx := b.R("r")
	b.I("mad.lo.s32 %s, %s, %s, %s;", cIdx, row, n, col)
	cAddr := b.ElemAddr(cBase, cIdx, 4)
	alpha, beta := b.LoadF32(pAl), b.LoadF32(pBe)
	old := b.R("f")
	b.I("ld.global.f32 %s, [%s];", old, cAddr)
	resv := b.R("f")
	b.I("mul.f32 %s, %s, %s;", resv, acc, alpha)
	b.I("fma.rn.f32 %s, %s, %s, %s;", resv, old, beta, resv)
	b.I("st.global.f32 [%s], %s;", cAddr, resv)
	b.L(end)
	return b.Build()
}

// Gemv2T computes y = alpha * A^T x + beta * y for row-major A[rows,
// cols]: y[j] = sum_i A[i, j] * x[i]. One thread per output element; this
// is the "GEMV2T" kernel shape cuDNN uses for fully-connected layers.
func Gemv2T() string {
	b := NewBuilder("gemv2t")
	pA, pX, pY := b.PtrParam("pA"), b.PtrParam("pX"), b.PtrParam("pY")
	pRows, pCols := b.U32Param("pRows"), b.U32Param("pCols")
	pAl, pBe := b.F32Param("pAlpha"), b.F32Param("pBeta")
	end := b.NewLabel("end")
	j := b.GlobalTidX()
	cols := b.LoadU32(pCols)
	b.GuardEnd(j, cols, end)
	rows := b.LoadU32(pRows)
	aBase, xBase, yBase := b.LoadPtr(pA), b.LoadPtr(pX), b.LoadPtr(pY)

	acc := b.MovF32(0)
	// aPtr walks down column j with stride cols*4
	aPtr := b.ElemAddr(aBase, j, 4)
	xPtr := b.R("rd")
	b.I("mov.u64 %s, %s;", xPtr, xBase)
	strideBytes := b.R("rd")
	b.I("mul.wide.u32 %s, %s, 4;", strideBytes, cols)
	i := b.R("r")
	b.I("mov.u32 %s, 0;", i)
	loop := b.L("ROW_LOOP")
	p := b.R("p")
	loopEnd := b.NewLabel("row_end")
	b.I("setp.ge.u32 %s, %s, %s;", p, i, rows)
	b.I("@%s bra %s;", p, loopEnd)
	va, vx := b.R("f"), b.R("f")
	b.I("ld.global.f32 %s, [%s];", va, aPtr)
	b.I("ld.global.f32 %s, [%s];", vx, xPtr)
	b.I("fma.rn.f32 %s, %s, %s, %s;", acc, va, vx, acc)
	b.I("add.s64 %s, %s, %s;", aPtr, aPtr, strideBytes)
	b.I("add.s64 %s, %s, 4;", xPtr, xPtr)
	b.I("add.u32 %s, %s, 1;", i, i)
	b.I("bra %s;", loop)
	b.L(loopEnd)

	alpha, beta := b.LoadF32(pAl), b.LoadF32(pBe)
	yAddr := b.ElemAddr(yBase, j, 4)
	old, res := b.R("f"), b.R("f")
	b.I("ld.global.f32 %s, [%s];", old, yAddr)
	b.I("mul.f32 %s, %s, %s;", res, acc, alpha)
	b.I("fma.rn.f32 %s, %s, %s, %s;", res, old, beta, res)
	b.I("st.global.f32 [%s], %s;", yAddr, res)
	b.L(end)
	return b.Build()
}
