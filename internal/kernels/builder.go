// Package kernels contains the PTX kernel corpus of our cuDNN-analog
// library. Like the real cuDNN, the library ships kernels as PTX text that
// the simulator's loader parses and executes; unlike the real cuDNN we
// generate that PTX from small Go builders so every algorithm (GEMM,
// implicit GEMM, FFT with brev-based bit reversal, Winograd fused and
// non-fused, LRN via textures, pooling, softmax, SGD) stays reviewable.
//
// Kernel names intentionally match the hot kernels in the paper's Fig. 7:
// fft2d_r2c_32x32, fft2d_r2c_16x16, fft2d_c2r_32x32, CGEMM, GEMV2T,
// winograd*, LRN.
package kernels

import (
	"fmt"
	"math"
	"strings"
)

// Builder assembles one .entry kernel as PTX text.
type Builder struct {
	name       string
	params     []string
	decls      []string
	body       []string
	counts     map[string]int
	labelCount int
}

// NewBuilder starts a kernel with the given entry name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, counts: make(map[string]int)}
}

// Reg classes: p=pred, r=b32, rd=b64, f=f32, fd=f64, h=b16.
var regClassTypes = map[string]string{
	"p": "pred", "r": "b32", "rd": "b64", "f": "f32", "fd": "f64", "h": "b16",
}

// R allocates a fresh virtual register of the given class and returns its
// name (e.g. "%r7").
func (b *Builder) R(class string) string {
	if _, ok := regClassTypes[class]; !ok {
		panic("kernels: unknown register class " + class)
	}
	b.counts[class]++
	return fmt.Sprintf("%%%s%d", class, b.counts[class])
}

// PtrParam declares a .u64 pointer parameter.
func (b *Builder) PtrParam(name string) string {
	b.params = append(b.params, fmt.Sprintf(".param .u64 %s", name))
	return name
}

// U32Param declares a .u32 scalar parameter.
func (b *Builder) U32Param(name string) string {
	b.params = append(b.params, fmt.Sprintf(".param .u32 %s", name))
	return name
}

// F32Param declares a .f32 scalar parameter.
func (b *Builder) F32Param(name string) string {
	b.params = append(b.params, fmt.Sprintf(".param .f32 %s", name))
	return name
}

// Shared declares a static shared-memory array of the given byte size.
func (b *Builder) Shared(name string, bytes, align int) string {
	b.decls = append(b.decls, fmt.Sprintf(".shared .align %d .b8 %s[%d];", align, name, bytes))
	return name
}

// I emits one instruction line.
func (b *Builder) I(format string, args ...interface{}) {
	b.body = append(b.body, "\t"+fmt.Sprintf(format, args...))
}

// L emits a label definition and returns the label name.
func (b *Builder) L(label string) string {
	b.body = append(b.body, label+":")
	return label
}

// NewLabel returns a unique label name (without emitting it).
func (b *Builder) NewLabel(hint string) string {
	b.labelCount++
	return fmt.Sprintf("%s_%d", strings.ToUpper(hint), b.labelCount)
}

// Build assembles the kernel body into a complete PTX translation unit
// fragment (without the module header; see Module).
func (b *Builder) Build() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".visible .entry %s(\n", b.name)
	for i, p := range b.params {
		sep := ","
		if i == len(b.params)-1 {
			sep = ""
		}
		fmt.Fprintf(&sb, "\t%s%s\n", p, sep)
	}
	sb.WriteString(")\n{\n")
	for class, n := range b.counts {
		fmt.Fprintf(&sb, "\t.reg .%s %%%s<%d>;\n", regClassTypes[class], class, n+1)
	}
	for _, d := range b.decls {
		sb.WriteString("\t" + d + "\n")
	}
	for _, line := range b.body {
		sb.WriteString(line + "\n")
	}
	sb.WriteString("\tret;\n}\n")
	return sb.String()
}

// Module wraps kernel fragments into a full PTX translation unit.
func Module(textures []string, kernelSrcs ...string) string {
	var sb strings.Builder
	sb.WriteString(".version 6.0\n.target sm_61\n.address_size 64\n\n")
	for _, t := range textures {
		fmt.Fprintf(&sb, ".global .texref %s;\n", t)
	}
	for _, k := range kernelSrcs {
		sb.WriteString(k)
		sb.WriteString("\n")
	}
	return sb.String()
}

// ---- common code-generation helpers ----

// GlobalTidX emits code computing ctaid.x*ntid.x+tid.x into a fresh b32.
func (b *Builder) GlobalTidX() string {
	cta, nt, tid := b.R("r"), b.R("r"), b.R("r")
	out := b.R("r")
	b.I("mov.u32 %s, %%ctaid.x;", cta)
	b.I("mov.u32 %s, %%ntid.x;", nt)
	b.I("mov.u32 %s, %%tid.x;", tid)
	b.I("mad.lo.s32 %s, %s, %s, %s;", out, cta, nt, tid)
	return out
}

// LoadPtr loads a pointer parameter and converts it to a global address.
func (b *Builder) LoadPtr(param string) string {
	rd := b.R("rd")
	b.I("ld.param.u64 %s, [%s];", rd, param)
	b.I("cvta.to.global.u64 %s, %s;", rd, rd)
	return rd
}

// LoadU32 loads a u32 parameter.
func (b *Builder) LoadU32(param string) string {
	r := b.R("r")
	b.I("ld.param.u32 %s, [%s];", r, param)
	return r
}

// LoadF32 loads an f32 parameter.
func (b *Builder) LoadF32(param string) string {
	f := b.R("f")
	b.I("ld.param.f32 %s, [%s];", f, param)
	return f
}

// ElemAddr emits address arithmetic: base + idx*elemSize (idx is b32).
func (b *Builder) ElemAddr(base, idx string, elemSize int) string {
	off := b.R("rd")
	out := b.R("rd")
	b.I("mul.wide.u32 %s, %s, %d;", off, idx, elemSize)
	b.I("add.s64 %s, %s, %s;", out, base, off)
	return out
}

// F32Imm formats a float32 immediate as a PTX 0f literal.
func F32Imm(v float32) string {
	return fmt.Sprintf("0f%08X", math.Float32bits(v))
}

// MovF32 emits a float constant into a fresh f32 register.
func (b *Builder) MovF32(v float32) string {
	f := b.R("f")
	b.I("mov.f32 %s, %s;", f, F32Imm(v))
	return f
}

// GuardEnd emits "if idx >= n goto END" using a fresh predicate; the
// caller must emit the END label before ret (Build adds ret after body).
func (b *Builder) GuardEnd(idx, n, endLabel string) {
	p := b.R("p")
	b.I("setp.ge.u32 %s, %s, %s;", p, idx, n)
	b.I("@%s bra %s;", p, endLabel)
}
