package kernels

// Library assembly. Mirroring real cuDNN — whose shared library embeds
// many PTX translation units, with some symbol names repeated across
// units (§III-A) — the kernel corpus is split into several modules that
// must each be registered with a separate cudart.RegisterModule call.
// The fill_zero helper is intentionally present in two modules to keep
// the duplicate-symbol behaviour exercised.

// ModuleElementwise contains activation/bias/SGD/conversion kernels.
func ModuleElementwise() string {
	return Module(nil,
		ReluForward(), ReluBackward(), AddBias(), SGDUpdate(), Scale(),
		AccumulateAdd(), FillZero(), RotateFilter180(), Pad2D(),
		F32ToF16Kernel(), F16ToF32Kernel(),
	)
}

// ModuleGemm contains the GEMM family and im2col/col2im staging.
func ModuleGemm() string {
	return Module(nil, SgemmTiled(), Gemv2T(), Im2Col(), Col2Im())
}

// ModuleConvDirect contains the direct (implicit GEMM / Algorithm 0/1/3)
// convolution kernels.
func ModuleConvDirect() string {
	return Module(nil,
		ConvForwardImplicitGemm(), ConvBwdDataAlgo0(), ConvBwdDataAlgo1(),
		ConvBwdFilterAlgo0(), ConvBwdFilterAlgo1(), ConvBwdFilterAlgo3(),
	)
}

// ModuleFFT contains the FFT convolution pipeline. It deliberately also
// carries its own copy of fill_zero (duplicate symbol across modules).
func ModuleFFT() string {
	return Module(nil,
		FFTR2C32(), FFTR2C16(), FFTC2R32(), FFTC2R16(),
		CGemm(), CGemmBwdFilter(), FFTCrop(), FFTTileExtract(), FFTTileStitch(), FillZero(),
	)
}

// ModuleWinograd contains the Winograd kernels.
func ModuleWinograd() string {
	return Module(nil,
		WinogradFused(), WinogradFilterTransform(), WinogradInputTransform(),
		WinogradOutputTransform(), WinogradBwdFilter(),
	)
}

// ModulePoolSoftmax contains pooling and softmax kernels.
func ModulePoolSoftmax() string {
	return Module(nil,
		MaxPoolForward(), MaxPoolBackward(), SoftmaxForward(), SoftmaxNLLBackward(),
	)
}

// ModuleLRN contains the texture-based LRN kernels and declares the
// module-level texref they sample.
func ModuleLRN() string {
	return Module([]string{LRNTexName}, LRNForward(), LRNBackward())
}

// ModuleTransformer contains the transformer-inference kernels: the NT
// strided-batched GEMM (attention scores), layernorm, GELU, residual
// add, the head split/merge permutes and the embedding gather.
func ModuleTransformer() string {
	return Module(nil,
		SgemmNTBatched(), LayerNormForward(), GeluForward(), ResidualAdd(),
		SplitHeads(), MergeHeads(), EmbeddingLookup(),
	)
}

// ModuleDecode contains the KV-cached autoregressive-decode kernels:
// cache append, the single-token attention GEMVs over the cache, the
// causal-masked softmax, the tied-embedding logit GEMV and the on-device
// greedy argmax.
func ModuleDecode() string {
	return Module(nil,
		KVCacheAppend(), AttnQKCached(), AttnAVCached(), SoftmaxCausal(),
		LogitGemv(), ArgmaxU32(),
	)
}

// ModuleTrain contains the transformer training kernels: the TN
// strided-batched GEMM (weight gradients, attention dK/dV), the
// layernorm/GELU/softmax backward passes, the fused softmax +
// cross-entropy loss gradient, and the atomics-based embedding
// scatter-add.
func ModuleTrain() string {
	return Module(nil,
		SgemmTNBatched(), LayerNormBackward(), GeluBackward(),
		SoftmaxBackward(), SoftmaxXentBackward(), EmbeddingBackward(),
	)
}

// AllModules returns every library module, in registration order.
func AllModules() []string {
	return []string{
		ModuleElementwise(), ModuleGemm(), ModuleConvDirect(),
		ModuleFFT(), ModuleWinograd(), ModulePoolSoftmax(), ModuleLRN(),
		ModuleTransformer(), ModuleDecode(), ModuleTrain(),
	}
}
