package checkpoint_test

import (
	"math/rand"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/exec"
	"repro/internal/ref"
	"repro/internal/timing"
)

// workload launches a 3-kernel pipeline (relu, gemm, relu) so the
// checkpoint can land inside the middle kernel.
func workload(t *testing.T, ctx *cudart.Context, h *cudnn.Handle, x, w []float32, m, n, k int) (uint64, error) {
	t.Helper()
	px, err := ctx.Malloc(uint64(4 * len(x)))
	if err != nil {
		return 0, err
	}
	ctx.MemcpyF32HtoD(px, x)
	pw, err := ctx.Malloc(uint64(4 * len(w)))
	if err != nil {
		return 0, err
	}
	ctx.MemcpyF32HtoD(pw, w)
	pa, err := ctx.Malloc(uint64(4 * len(x)))
	if err != nil {
		return 0, err
	}
	pc, err := ctx.Malloc(uint64(4 * m * n))
	if err != nil {
		return 0, err
	}
	if err := h.ActivationForward(px, pa, len(x)); err != nil {
		return 0, err
	}
	if err := h.Gemm(pa, pw, pc, m, n, k, 1, 0); err != nil {
		return 0, err
	}
	if err := h.ActivationForward(pc, pc, m*n); err != nil {
		return 0, err
	}
	return pc, nil
}

func expected(x, w []float32, m, n, k int) []float32 {
	a := ref.Relu(x)
	c := make([]float32, m*n)
	ref.Gemm(a, w, c, m, n, k, 1, 0)
	return ref.Relu(c)
}

func TestCheckpointResumeMatchesDirectRun(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	m, n, k := 48, 40, 32
	x := make([]float32, m*k)
	w := make([]float32, k*n)
	for i := range x {
		x[i] = rng.Float32()*2 - 1
	}
	for i := range w {
		w[i] = rng.Float32()*2 - 1
	}
	want := expected(x, w, m, n, k)

	points := []checkpoint.Point{
		{KernelX: 1, CTAM: 2, CTAT: 1, InstrY: 40}, // inside the gemm
		{KernelX: 1, CTAM: 0, CTAT: 2, InstrY: 5},  // from the very start
		{KernelX: 2, CTAM: 0, CTAT: 0, InstrY: 10}, // inside the last relu
	}
	for _, p := range points {
		// --- capture phase (functional fast-forward) ---
		ctx := cudart.NewContext(exec.BugSet{})
		h, err := cudnn.Create(ctx)
		if err != nil {
			t.Fatal(err)
		}
		cap := &checkpoint.CaptureRunner{Ctx: ctx, P: p}
		ctx.SetRunner(cap)
		if _, err := workload(t, ctx, h, x, w, m, n, k); err != nil {
			t.Fatalf("capture workload: %v", err)
		}
		if cap.State == nil {
			t.Fatalf("point %+v: no checkpoint captured", p)
		}
		blob, err := cap.State.Encode()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		st, err := checkpoint.Decode(blob)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}

		// --- resume phase (performance mode) ---
		ctx2 := cudart.NewContext(exec.BugSet{})
		h2, err := cudnn.Create(ctx2)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := timing.New(timing.GTX1050())
		if err != nil {
			t.Fatal(err)
		}
		res := &checkpoint.ResumeRunner{Ctx: ctx2, State: st, Engine: eng}
		ctx2.SetRunner(res)
		res.Restore()
		pc, err := workload(t, ctx2, h2, x, w, m, n, k)
		if err != nil {
			t.Fatalf("resume workload: %v", err)
		}
		got := ctx2.MemcpyF32DtoH(pc, m*n)
		for i := range got {
			d := got[i] - want[i]
			if d < -1e-3 || d > 1e-3 {
				t.Fatalf("point %+v: result[%d] = %v, want %v", p, i, got[i], want[i])
			}
		}
		if eng.Cycle() == 0 {
			t.Fatalf("point %+v: resume did not run in performance mode", p)
		}
	}
}

// TestCheckpointCapturesData1 checks the checkpoint actually contains
// mid-kernel register/SIMT state for the in-flight CTAs.
func TestCheckpointCapturesData1(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m, n, k := 48, 40, 32
	x := make([]float32, m*k)
	w := make([]float32, k*n)
	for i := range x {
		x[i] = rng.Float32()
	}
	for i := range w {
		w[i] = rng.Float32()
	}
	ctx := cudart.NewContext(exec.BugSet{})
	h, err := cudnn.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p := checkpoint.Point{KernelX: 1, CTAM: 0, CTAT: 1, InstrY: 25}
	cap := &checkpoint.CaptureRunner{Ctx: ctx, P: p}
	ctx.SetRunner(cap)
	if _, err := workload(t, ctx, h, x, w, m, n, k); err != nil {
		t.Fatal(err)
	}
	st := cap.State
	if st == nil {
		t.Fatal("no checkpoint")
	}
	if st.Kernel != "sgemm_tiled" {
		t.Fatalf("checkpoint kernel = %q, want sgemm_tiled", st.Kernel)
	}
	if len(st.CTAs) != 2 {
		t.Fatalf("expected 2 in-flight CTAs, got %d", len(st.CTAs))
	}
	for _, cs := range st.CTAs {
		if len(cs.Warps) == 0 {
			t.Fatal("CTA state missing warps")
		}
		var executed uint64
		nonZeroRegs := 0
		for _, ws := range cs.Warps {
			executed += ws.InstrCount
			for _, r := range ws.Regs {
				if r != 0 {
					nonZeroRegs++
				}
			}
			if len(ws.Stack) == 0 && !ws.Done {
				t.Fatal("live warp with empty SIMT stack")
			}
		}
		if executed == 0 {
			t.Fatal("in-flight CTA executed no instructions before snapshot")
		}
		if nonZeroRegs == 0 {
			t.Fatal("register file snapshot is all zeroes")
		}
		if len(cs.Shared) == 0 {
			t.Fatal("shared memory snapshot missing for tiled GEMM")
		}
	}
	if st.Mem == nil || len(st.Mem.PageNums) == 0 {
		t.Fatal("global memory snapshot (Data2) missing")
	}
}
