// Package checkpoint implements the paper's §III-F checkpoint/resume
// support (Figs. 4-5). An application is fast-forwarded in the cheap
// Functional simulation mode up to a user-chosen point — kernel x, CTA M,
// with t additional in-flight CTAs executed for y instructions per warp —
// then the architectural state is saved:
//
//	Data1: register file and local memory per thread, SIMT stack per
//	       warp, shared memory per CTA (for the in-flight CTAs)
//	Data2: global memory
//
// Resume restores the state into a fresh context and continues kernel x
// from CTA M in the (7-8x slower) Performance simulation mode; kernels
// before x are skipped, kernels after x run normally under timing.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/cudart"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/timing"
)

// Point selects where to checkpoint.
type Point struct {
	KernelX int   // kernel launch index to stop inside
	CTAM    int   // first in-flight CTA
	CTAT    int   // number of in-flight CTAs after M (inclusive window is [M, M+T])
	InstrY  int64 // per-warp instruction budget for in-flight CTAs
}

// WarpState is the per-warp portion of Data1.
type WarpState struct {
	ID         int
	Stack      []exec.StackEntry
	Regs       []uint64
	Locals     [][]byte
	InitMask   uint32
	AtBarrier  bool
	Done       bool
	InstrCount uint64
}

// CTAState is one in-flight CTA's Data1.
type CTAState struct {
	Index  int
	Shared []byte
	Warps  []WarpState
}

// State is a complete checkpoint.
type State struct {
	Point     Point
	Kernel    string
	GridDim   exec.Dim3
	BlockDim  exec.Dim3
	SharedDyn int
	Params    []byte
	CTAs      []CTAState       // Data1
	Mem       *device.Snapshot // Data2
	Launches  int              // kernels fully executed before the checkpoint kernel
}

// Encode serialises the state with gob.
func (s *State) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode deserialises a checkpoint.
func Decode(data []byte) (*State, error) {
	var s State
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// ErrCheckpointTaken is returned by the capture runner once the
// checkpoint has been captured; subsequent kernels are skipped (paper:
// "All kernels with kernel_id > x are not executed").
var ErrCheckpointTaken = fmt.Errorf("checkpoint: captured")

// CaptureRunner is a cudart.Runner that runs kernels functionally until
// the checkpoint point, captures Data1/Data2, and skips everything after.
type CaptureRunner struct {
	Ctx   *cudart.Context
	P     Point
	State *State
	n     int
}

// RunKernel implements cudart.Runner.
func (r *CaptureRunner) RunKernel(g *exec.Grid) (cudart.KernelStats, error) {
	m := g.Machine()
	switch {
	case r.State != nil: // already captured: skip
		return cudart.KernelStats{Name: g.Kernel.Name}, nil
	case r.n < r.P.KernelX:
		r.n++
		if err := m.RunGrid(g); err != nil {
			return cudart.KernelStats{}, err
		}
		return cudart.KernelStats{Name: g.Kernel.Name}, nil
	}

	// Kernel x: CTAs before M execute normally (checkpoint flow, Fig. 5).
	st := &State{
		Point: r.P, Kernel: g.Kernel.Name,
		GridDim: g.GridDim, BlockDim: g.BlockDim,
		SharedDyn: g.SharedDyn,
		Params:    append([]byte(nil), g.Params...),
		Launches:  r.n,
	}
	total := g.NumCTAs()
	m0 := r.P.CTAM
	if m0 > total {
		m0 = total
	}
	for i := 0; i < m0; i++ {
		cta := g.InitCTA(i)
		if err := m.RunCTA(cta); err != nil {
			return cudart.KernelStats{}, err
		}
	}
	// CTAs M..M+T: execute y instructions per warp, then snapshot Data1.
	hi := m0 + r.P.CTAT
	if hi >= total {
		hi = total - 1
	}
	for i := m0; i <= hi && i < total; i++ {
		cta := g.InitCTA(i)
		if err := runBudget(m, cta, r.P.InstrY); err != nil {
			return cudart.KernelStats{}, err
		}
		st.CTAs = append(st.CTAs, snapshotCTA(cta))
	}
	st.Mem = r.Ctx.Mem.Snapshot() // Data2
	r.State = st
	return cudart.KernelStats{Name: g.Kernel.Name}, nil
}

// runBudget executes up to `budget` instructions per warp, respecting
// barriers (a warp blocked at a barrier before exhausting its budget
// waits for the others, exactly like the functional scheduler).
func runBudget(m *exec.Machine, cta *exec.CTA, budget int64) error {
	remaining := make(map[*exec.Warp]int64, len(cta.Warps))
	for _, w := range cta.Warps {
		remaining[w] = budget
	}
	for {
		progressed := false
		for _, w := range cta.Warps {
			if w.Done || w.AtBarrier || remaining[w] <= 0 {
				continue
			}
			n, err := m.RunWarp(cta, w, remaining[w])
			if err != nil {
				return err
			}
			remaining[w] -= n
			if n > 0 {
				progressed = true
			}
		}
		if cta.ReleaseBarrier() {
			continue
		}
		if !progressed {
			return nil
		}
	}
}

func snapshotCTA(cta *exec.CTA) CTAState {
	cs := CTAState{Index: cta.Index, Shared: append([]byte(nil), cta.Shared...)}
	for _, w := range cta.Warps {
		ws := WarpState{
			ID:         w.ID,
			Stack:      append([]exec.StackEntry(nil), w.Stack...),
			Regs:       append([]uint64(nil), w.Regs...),
			InitMask:   w.InitMask,
			AtBarrier:  w.AtBarrier,
			Done:       w.Done,
			InstrCount: w.InstrCount,
		}
		for _, lm := range w.Locals {
			ws.Locals = append(ws.Locals, append([]byte(nil), lm...))
		}
		cs.Warps = append(cs.Warps, ws)
	}
	return cs
}

func restoreCTA(g *exec.Grid, cs CTAState) *exec.CTA {
	cta := g.InitCTA(cs.Index)
	copy(cta.Shared, cs.Shared)
	for i, ws := range cs.Warps {
		w := cta.Warps[i]
		w.Stack = append(w.Stack[:0], ws.Stack...)
		copy(w.Regs, ws.Regs)
		w.InitMask = ws.InitMask
		w.AtBarrier = ws.AtBarrier
		w.Done = ws.Done
		w.InstrCount = ws.InstrCount
		for l, lm := range ws.Locals {
			if lm != nil && w.Locals != nil {
				copy(w.Locals[l], lm)
			}
		}
	}
	return cta
}

// ResumeRunner is a cudart.Runner that restores a checkpoint: kernels
// before x are skipped (global memory was restored wholesale), kernel x
// resumes from CTA M with the saved in-flight CTAs, and later kernels run
// under the performance engine.
type ResumeRunner struct {
	Ctx     *cudart.Context
	State   *State
	Engine  *timing.Engine
	n       int
	resumed bool
}

// Restore loads Data2 into the context's memory image. Call once before
// replaying the application.
func (r *ResumeRunner) Restore() {
	r.Ctx.Mem.Restore(r.State.Mem)
}

// RunKernel implements cudart.Runner.
func (r *ResumeRunner) RunKernel(g *exec.Grid) (cudart.KernelStats, error) {
	idx := r.n
	r.n++
	switch {
	case idx < r.State.Launches:
		// skipped: effects already in the restored global memory
		return cudart.KernelStats{Name: g.Kernel.Name}, nil
	case idx == r.State.Launches && !r.resumed:
		r.resumed = true
		if g.Kernel.Name != r.State.Kernel {
			return cudart.KernelStats{}, fmt.Errorf(
				"checkpoint: replay diverged: kernel %q at launch %d, checkpoint has %q",
				g.Kernel.Name, idx, r.State.Kernel)
		}
		var preload []*exec.CTA
		for _, cs := range r.State.CTAs {
			preload = append(preload, restoreCTA(g, cs))
		}
		return r.Engine.RunGridResume(g, r.State.Point.CTAM, preload)
	default:
		return r.Engine.RunGrid(g)
	}
}
