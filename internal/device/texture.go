package device

import "fmt"

// CudaArray is a 1D or 2D array bound to texture references. Data is
// stored as float32 channels (Channels per texel).
type CudaArray struct {
	Width    int
	Height   int // 1 for 1D arrays
	Channels int
	Data     []float32
}

// NewCudaArray allocates a width×height array with the given channel count.
func NewCudaArray(width, height, channels int) *CudaArray {
	if height < 1 {
		height = 1
	}
	return &CudaArray{
		Width: width, Height: height, Channels: channels,
		Data: make([]float32, width*height*channels),
	}
}

// Fetch reads one texel with clamp-to-edge addressing and returns up to
// four channel values (missing channels read as 0).
func (a *CudaArray) Fetch(x, y int) [4]float32 {
	if x < 0 {
		x = 0
	}
	if x >= a.Width {
		x = a.Width - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= a.Height {
		y = a.Height - 1
	}
	var out [4]float32
	base := (y*a.Width + x) * a.Channels
	for c := 0; c < a.Channels && c < 4; c++ {
		out[c] = a.Data[base+c]
	}
	return out
}

// TextureInfo carries the metadata cudaBindTextureToArray supplies.
type TextureInfo struct {
	Format     string // "f32"
	Normalized bool
}

// TextureReferenceAttr carries addressing/filter attributes.
type TextureReferenceAttr struct {
	AddressMode string // "clamp"
	FilterMode  string // "point"
}

// TexRef is a texture reference object as registered by
// __cudaRegisterTexture.
type TexRef struct {
	Name  string
	Array *CudaArray
	Info  TextureInfo
	Attr  TextureReferenceAttr
}

// TextureRegistry implements the texture-name plumbing after the paper's
// §III-C fixes:
//
//   - A texture *name* maps to a *set* of texrefs (MNIST registers multiple
//     texrefs under one name; the pre-fix map silently dropped data).
//   - The name additionally maps directly to the currently bound cudaArray,
//     textureInfo and textureReferenceAttr, and texture instructions look
//     bindings up *by name*.
//   - Rebinding a texref that is already bound implicitly unbinds the old
//     cudaArray first.
type TextureRegistry struct {
	byName   map[string][]*TexRef
	boundArr map[string]*CudaArray
	info     map[string]TextureInfo
	attr     map[string]TextureReferenceAttr
}

// NewTextureRegistry returns an empty registry.
func NewTextureRegistry() *TextureRegistry {
	return &TextureRegistry{
		byName:   make(map[string][]*TexRef),
		boundArr: make(map[string]*CudaArray),
		info:     make(map[string]TextureInfo),
		attr:     make(map[string]TextureReferenceAttr),
	}
}

// RegisterTexture registers a texref under a name. Multiple registrations
// under the same name accumulate rather than overwrite.
func (r *TextureRegistry) RegisterTexture(name string, ref *TexRef) {
	ref.Name = name
	r.byName[name] = append(r.byName[name], ref)
}

// BindTextureToArray binds a cudaArray to a texref. If the texref already
// has an array bound, it is implicitly unbound first (paper §III-C second
// fix). The binding is also recorded against the texture name so that
// texture instructions can resolve it by name.
func (r *TextureRegistry) BindTextureToArray(ref *TexRef, arr *CudaArray, info TextureInfo, attr TextureReferenceAttr) error {
	if len(r.byName[ref.Name]) == 0 {
		return fmt.Errorf("device: texref %q was never registered", ref.Name)
	}
	ref.Array = arr // implicit unbind of any previous array
	ref.Info = info
	ref.Attr = attr
	r.boundArr[ref.Name] = arr
	r.info[ref.Name] = info
	r.attr[ref.Name] = attr
	return nil
}

// UnbindTexture removes the array binding from a texref (and from the name
// if this texref provided the name's current binding).
func (r *TextureRegistry) UnbindTexture(ref *TexRef) {
	if r.boundArr[ref.Name] == ref.Array {
		delete(r.boundArr, ref.Name)
		delete(r.info, ref.Name)
		delete(r.attr, ref.Name)
	}
	ref.Array = nil
}

// LookupByName resolves the cudaArray bound under a texture name; texture
// instructions use this (post-fix) name-based path.
func (r *TextureRegistry) LookupByName(name string) (*CudaArray, error) {
	arr, ok := r.boundArr[name]
	if !ok || arr == nil {
		return nil, fmt.Errorf("device: no cudaArray bound to texture name %q", name)
	}
	return arr, nil
}

// Refs returns all texrefs registered under a name.
func (r *TextureRegistry) Refs(name string) []*TexRef { return r.byName[name] }
