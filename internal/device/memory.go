// Package device models the GPU device-side state that is independent of
// any particular kernel: the global memory image and allocator, the
// address-space windows used for generic addressing, and the texture
// machinery (texture names, texture references, cudaArrays) with the
// remapping semantics the paper's §III-C fixes introduced.
package device

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Address-space windows for generic addressing. A generic 64-bit address
// is classified by these windows, mirroring how GPGPU-Sim carves up its
// simulated address space.
const (
	SharedWindowBase = 0x0000_0000_0100_0000
	SharedWindowSize = 0x0000_0000_0100_0000 // 16 MiB
	LocalWindowBase  = 0x0000_0000_0200_0000
	LocalWindowSize  = 0x0000_0000_0100_0000 // 16 MiB
	GlobalBase       = 0x0000_0001_0000_0000
)

// InSharedWindow reports whether a generic address falls in the shared window.
func InSharedWindow(addr uint64) bool {
	return addr >= SharedWindowBase && addr < SharedWindowBase+SharedWindowSize
}

// InLocalWindow reports whether a generic address falls in the local window.
func InLocalWindow(addr uint64) bool {
	return addr >= LocalWindowBase && addr < LocalWindowBase+LocalWindowSize
}

const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse, page-backed global memory image.
//
// The page *directory* (the map from page number to backing slice) is
// guarded by a lock so concurrent warps — the parallel timing engine steps
// SM cores on multiple goroutines — can fault in pages safely. The page
// *contents* are intentionally unguarded: simulated threads of a data-
// race-free kernel touch disjoint bytes, and racy kernels are racy on
// real hardware too. Cross-CTA atomics are serialised by the timing
// engine itself (deferred-atomic drain), not here.
type Memory struct {
	mu    sync.RWMutex
	pages map[uint64][]byte
}

// NewMemory returns an empty global memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

// page returns the backing slice for a page number. With create, a missing
// page is faulted in under the write lock; the double-checked lookup keeps
// the common resident-page path on the read lock only.
func (m *Memory) page(pn uint64, create bool) []byte {
	m.mu.RLock()
	p := m.pages[pn]
	m.mu.RUnlock()
	if p != nil || !create {
		return p
	}
	m.mu.Lock()
	p = m.pages[pn]
	if p == nil {
		p = make([]byte, pageSize)
		m.pages[pn] = p
	}
	m.mu.Unlock()
	return p
}

// Read copies len(buf) bytes starting at addr into buf. Unwritten memory
// reads as zero.
func (m *Memory) Read(addr uint64, buf []byte) {
	for len(buf) > 0 {
		pn := addr >> pageBits
		off := int(addr & (pageSize - 1))
		n := pageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		if p := m.page(pn, false); p != nil {
			copy(buf[:n], p[off:off+n])
		} else {
			for i := 0; i < n; i++ {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		addr += uint64(n)
	}
}

// Write copies buf into memory starting at addr.
func (m *Memory) Write(addr uint64, buf []byte) {
	for len(buf) > 0 {
		pn := addr >> pageBits
		off := int(addr & (pageSize - 1))
		n := pageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		copy(m.page(pn, true)[off:off+n], buf[:n])
		buf = buf[n:]
		addr += uint64(n)
	}
}

// Load reads size (1/2/4/8) bytes at addr as little-endian raw bits.
func (m *Memory) Load(addr uint64, size int) uint64 {
	var b [8]byte
	m.Read(addr, b[:size])
	return binary.LittleEndian.Uint64(b[:])
}

// Store writes the low size bytes of bits at addr.
func (m *Memory) Store(addr uint64, bits uint64, size int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], bits)
	m.Write(addr, b[:size])
}

// Snapshot serialises all touched pages (paper §III-F "Data2": global
// memory per kernel). Pages are emitted in sorted order for determinism.
type Snapshot struct {
	PageNums []uint64
	Pages    [][]byte
}

// Snapshot captures the current memory image.
func (m *Memory) Snapshot() *Snapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := &Snapshot{}
	for pn := range m.pages {
		s.PageNums = append(s.PageNums, pn)
	}
	sort.Slice(s.PageNums, func(i, j int) bool { return s.PageNums[i] < s.PageNums[j] })
	for _, pn := range s.PageNums {
		p := make([]byte, pageSize)
		copy(p, m.pages[pn])
		s.Pages = append(s.Pages, p)
	}
	return s
}

// Restore replaces the memory image with the snapshot contents.
func (m *Memory) Restore(s *Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = make(map[uint64][]byte, len(s.PageNums))
	for i, pn := range s.PageNums {
		p := make([]byte, pageSize)
		copy(p, s.Pages[i])
		m.pages[pn] = p
	}
}

// TouchedBytes returns the number of resident bytes (page granularity).
func (m *Memory) TouchedBytes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages) * pageSize
}

// Allocator is a simple first-fit device memory allocator handing out
// addresses above GlobalBase.
type Allocator struct {
	next  uint64
	sizes map[uint64]uint64
	free  []span // sorted free list
}

type span struct{ base, size uint64 }

// NewAllocator returns an allocator starting at GlobalBase.
func NewAllocator() *Allocator {
	return &Allocator{next: GlobalBase, sizes: make(map[uint64]uint64)}
}

const allocAlign = 256 // cudaMalloc guarantees 256-byte alignment

// Alloc reserves size bytes and returns the device address.
func (a *Allocator) Alloc(size uint64) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("device: zero-byte allocation")
	}
	size = (size + allocAlign - 1) &^ uint64(allocAlign-1)
	for i, s := range a.free {
		if s.size >= size {
			addr := s.base
			if s.size == size {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = span{s.base + size, s.size - size}
			}
			a.sizes[addr] = size
			return addr, nil
		}
	}
	addr := a.next
	a.next += size
	a.sizes[addr] = size
	return addr, nil
}

// Free releases an allocation. Freeing an unknown address is an error,
// mirroring cudaErrorInvalidDevicePointer.
func (a *Allocator) Free(addr uint64) error {
	size, ok := a.sizes[addr]
	if !ok {
		return fmt.Errorf("device: free of unallocated address %#x", addr)
	}
	delete(a.sizes, addr)
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].base >= addr })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{addr, size}
	// coalesce neighbours
	if i+1 < len(a.free) && a.free[i].base+a.free[i].size == a.free[i+1].base {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].base+a.free[i-1].size == a.free[i].base {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	return nil
}

// SizeOf returns the size of a live allocation containing addr, together
// with its base address. The debug tool uses this to discover candidate
// output buffers from kernel pointer arguments (paper §III-D: "we modified
// GPGPU-Sim to obtain the size of any GPU memory buffers pointed to by
// these pointers").
func (a *Allocator) SizeOf(addr uint64) (base, size uint64, ok bool) {
	for b, s := range a.sizes {
		if addr >= b && addr < b+s {
			return b, s, true
		}
	}
	return 0, 0, false
}

// LiveAllocations returns the bases of all live allocations, sorted.
func (a *Allocator) LiveAllocations() []uint64 {
	out := make([]uint64, 0, len(a.sizes))
	for b := range a.sizes {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
