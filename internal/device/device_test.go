package device

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMemoryReadWriteProperty(t *testing.T) {
	mem := NewMemory()
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		// straddle page boundaries deliberately
		addr := GlobalBase + uint64(off) + pageSize - 8
		mem.Write(addr, data)
		got := make([]byte, len(data))
		mem.Read(addr, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMemoryZeroFill(t *testing.T) {
	mem := NewMemory()
	buf := make([]byte, 64)
	mem.Read(0xDEAD0000, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten memory must read as zero")
		}
	}
}

func TestLoadStoreSizes(t *testing.T) {
	mem := NewMemory()
	for _, size := range []int{1, 2, 4, 8} {
		addr := GlobalBase + uint64(size*100)
		v := uint64(0x1122334455667788) & (1<<(8*size) - 1)
		mem.Store(addr, v, size)
		if got := mem.Load(addr, size); got != v {
			t.Errorf("size %d: load = %#x, want %#x", size, got, v)
		}
	}
}

func TestSnapshotRestoreProperty(t *testing.T) {
	f := func(writes []uint16) bool {
		mem := NewMemory()
		for i, w := range writes {
			mem.Store(GlobalBase+uint64(w)*16, uint64(i)*7+1, 8)
		}
		snap := mem.Snapshot()
		// mutate, then restore
		mem.Store(GlobalBase, 0xFFFF, 8)
		for _, w := range writes {
			mem.Store(GlobalBase+uint64(w)*16, 0, 8)
		}
		mem.Restore(snap)
		for i, w := range writes {
			want := uint64(0)
			// later duplicate writes win; recompute expectation
			for j := i; j < len(writes); j++ {
				if writes[j] == w {
					want = uint64(j)*7 + 1
				}
			}
			if got := mem.Load(GlobalBase+uint64(w)*16, 8); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAllocatorReuseAndCoalesce(t *testing.T) {
	a := NewAllocator()
	p1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p1%256 != 0 || p2%256 != 0 {
		t.Fatal("allocations must be 256-byte aligned")
	}
	if err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	// freeing the neighbour must coalesce: a 512-byte request then fits
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	p4, err := a.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if p4 != p1 {
		t.Errorf("coalesced region not reused: got %#x, want %#x", p4, p1)
	}
	if _, _, ok := a.SizeOf(p3 + 50); !ok {
		t.Error("SizeOf failed to find interior pointer")
	}
	if _, _, ok := a.SizeOf(0x42); ok {
		t.Error("SizeOf found a never-allocated address")
	}
}

func TestTextureRegistrySemantics(t *testing.T) {
	r := NewTextureRegistry()
	// §III-C: multiple texrefs registered under one name must accumulate.
	ref1, ref2 := &TexRef{}, &TexRef{}
	r.RegisterTexture("t", ref1)
	r.RegisterTexture("t", ref2)
	if len(r.Refs("t")) != 2 {
		t.Fatalf("expected 2 texrefs under one name, got %d", len(r.Refs("t")))
	}
	arr1 := NewCudaArray(8, 1, 1)
	arr2 := NewCudaArray(8, 1, 1)
	arr1.Data[0] = 1
	arr2.Data[0] = 2
	if err := r.BindTextureToArray(ref1, arr1, TextureInfo{}, TextureReferenceAttr{}); err != nil {
		t.Fatal(err)
	}
	got, err := r.LookupByName("t")
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 1 {
		t.Fatal("name lookup did not resolve first binding")
	}
	// §III-C: rebinding implicitly unbinds the previous array.
	if err := r.BindTextureToArray(ref1, arr2, TextureInfo{}, TextureReferenceAttr{}); err != nil {
		t.Fatal(err)
	}
	got, _ = r.LookupByName("t")
	if got.Data[0] != 2 {
		t.Fatal("rebinding did not replace the array")
	}
	r.UnbindTexture(ref1)
	if _, err := r.LookupByName("t"); err == nil {
		t.Fatal("lookup after unbind should fail")
	}
	// binding an unregistered texref is an error
	if err := r.BindTextureToArray(&TexRef{Name: "ghost"}, arr1, TextureInfo{}, TextureReferenceAttr{}); err == nil {
		t.Fatal("binding unregistered texref should fail")
	}
}

func TestCudaArrayClamp(t *testing.T) {
	arr := NewCudaArray(4, 4, 1)
	for i := range arr.Data {
		arr.Data[i] = float32(i)
	}
	if v := arr.Fetch(-5, 0); v[0] != 0 {
		t.Errorf("x clamp low: %v", v[0])
	}
	if v := arr.Fetch(99, 3); v[0] != 15 {
		t.Errorf("clamp high: %v", v[0])
	}
	if v := arr.Fetch(2, 1); v[0] != 6 {
		t.Errorf("interior: %v", v[0])
	}
}
