// Package hwmodel plays the role real silicon plays in the paper's §IV
// correlation study: an *independent* per-kernel execution-time source to
// correlate the detailed simulator against. Since no GPU is available, the
// oracle combines a functional profiling pass (instruction and memory-
// traffic counts, the quantities NVProf reports) with an analytical
// throughput model of the target card, plus per-kernel-family calibration
// factors derived from the paper's published per-kernel discrepancies
// (Fig. 7). See DESIGN.md "Substitutions".
package hwmodel

import (
	"strings"

	"repro/internal/cudart"
	"repro/internal/exec"
)

// Oracle estimates hardware cycles for kernel launches. It implements
// cudart.Runner, so installing it on a context is the analog of "running
// the application on the GPU under NVProf".
type Oracle struct {
	Name            string
	NumSMs          int
	IssuePerSM      float64 // warp instructions per cycle per SM
	BWBytesPerCycle float64 // DRAM bandwidth at core clock
	LaunchOverhead  float64 // fixed per-launch cycles
	ClockMHz        float64

	// Fudge maps kernel-name substrings to calibration multipliers. The
	// entries encode the relative behaviour the paper reports: cuDNN's
	// hand-tuned SASS kernels (CGEMM, Winograd, LRN, GEMV2T, fft2d_*) run
	// further from a PTX-level model than plain kernels do — these are the
	// kernels with the largest discrepancies in Fig. 7.
	Fudge map[string]float64

	// Samples records one entry per launch (NVProf-style report).
	Samples []Sample
}

// Sample is one launch's oracle measurement.
type Sample struct {
	Name       string
	Cycles     float64
	WarpInstrs uint64
	MemBytes   uint64
}

// GTX1050 models the paper's correlation target (§IV).
func GTX1050() *Oracle {
	return &Oracle{
		Name: "GTX1050", NumSMs: 5, IssuePerSM: 3.2,
		BWBytesPerCycle: 112e9 / 1392e6, // 112 GB/s at 1392 MHz
		LaunchOverhead:  2800,
		ClockMHz:        1392,
		Fudge:           defaultFudge(),
	}
}

// GTX1080Ti models the case-study target (§V-A).
func GTX1080Ti() *Oracle {
	return &Oracle{
		Name: "GTX1080Ti", NumSMs: 28, IssuePerSM: 3.2,
		BWBytesPerCycle: 484e9 / 1481e6,
		LaunchOverhead:  2800,
		ClockMHz:        1481,
		Fudge:           defaultFudge(),
	}
}

// defaultFudge encodes the paper's Fig. 7 shape: the simulator
// overestimates LRN and CGEMM heavily and misestimates the Winograd,
// GEMV2T and fft2d kernels, because the shipping cuDNN kernels are
// hand-tuned SASS the PTX-level model cannot capture. A factor below 1
// means hardware is faster than a naive throughput estimate.
func defaultFudge() map[string]float64 {
	return map[string]float64{
		"lrn":      0.25, // hardware LRN is far faster than the sim models
		"cgemm":    0.35,
		"gemv2t":   0.55,
		"winograd": 0.60,
		"fft2d":    0.50,
		"sgemm":    0.85,
	}
}

func (o *Oracle) fudgeFor(name string) float64 {
	low := strings.ToLower(name)
	for sub, f := range o.Fudge {
		if strings.Contains(low, sub) {
			return f
		}
	}
	return 1.0
}

// RunKernel implements cudart.Runner: it executes the kernel functionally
// (hardware is always functionally correct) while counting instructions
// and coalesced memory traffic, then applies the throughput model.
func (o *Oracle) RunKernel(g *exec.Grid) (cudart.KernelStats, error) {
	m := g.Machine()
	var warpInstrs uint64
	var memBytes uint64
	segSize := uint64(128)

	for i := 0; i < g.NumCTAs(); i++ {
		cta := g.InitCTA(i)
		for {
			progressed := false
			for _, w := range cta.Warps {
				for !w.Done && !w.AtBarrier {
					info, err := m.StepWarp(cta, w)
					if err != nil {
						return cudart.KernelStats{}, err
					}
					progressed = true
					warpInstrs++
					if info.IsMem && info.Space != 0 {
						// count unique 128B segments like the coalescer
						var segs []uint64
						for l := 0; l < exec.WarpSize; l++ {
							if info.ActiveMask&(1<<l) == 0 {
								continue
							}
							s := info.Addrs[l] &^ (segSize - 1)
							dup := false
							for _, e := range segs {
								if e == s {
									dup = true
									break
								}
							}
							if !dup {
								segs = append(segs, s)
							}
						}
						memBytes += uint64(len(segs)) * segSize
					}
				}
			}
			live, waiting := 0, 0
			for _, w := range cta.Warps {
				if !w.Done {
					live++
					if w.AtBarrier {
						waiting++
					}
				}
			}
			if live == 0 {
				break
			}
			if waiting == live {
				for _, w := range cta.Warps {
					w.AtBarrier = false
				}
				continue
			}
			if !progressed {
				break
			}
		}
	}

	compute := float64(warpInstrs) / (float64(o.NumSMs) * o.IssuePerSM)
	mem := float64(memBytes) / o.BWBytesPerCycle
	cycles := compute
	if mem > cycles {
		cycles = mem
	}
	cycles = o.LaunchOverhead + cycles*o.fudgeFor(g.Kernel.Name)
	o.Samples = append(o.Samples, Sample{
		Name: g.Kernel.Name, Cycles: cycles,
		WarpInstrs: warpInstrs, MemBytes: memBytes,
	})
	return cudart.KernelStats{
		Name: g.Kernel.Name, GridDim: g.GridDim, BlockDim: g.BlockDim,
		Cycles: uint64(cycles), WarpInstrs: warpInstrs,
	}, nil
}

// Reset clears recorded samples.
func (o *Oracle) Reset() { o.Samples = nil }
