package hwmodel_test

import (
	"testing"

	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/exec"
	"repro/internal/hwmodel"
)

// TestOracleRunsFunctionally: the oracle must produce correct functional
// results (hardware is always right) and NVProf-style per-kernel samples.
func TestOracleRunsFunctionally(t *testing.T) {
	ctx := cudart.NewContext(exec.BugSet{})
	h, err := cudnn.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	oracle := hwmodel.GTX1050()
	ctx.SetRunner(oracle)
	n := 512
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(i) - 256
	}
	px, _ := ctx.Malloc(uint64(4 * n))
	ctx.MemcpyF32HtoD(px, x)
	py, _ := ctx.Malloc(uint64(4 * n))
	if err := h.ActivationForward(px, py, n); err != nil {
		t.Fatal(err)
	}
	got := ctx.MemcpyF32DtoH(py, n)
	for i, v := range got {
		want := x[i]
		if want < 0 {
			want = 0
		}
		if v != want {
			t.Fatalf("relu[%d] = %v, want %v", i, v, want)
		}
	}
	if len(oracle.Samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(oracle.Samples))
	}
	s := oracle.Samples[0]
	if s.Cycles <= oracle.LaunchOverhead {
		t.Errorf("cycles %v should exceed launch overhead", s.Cycles)
	}
	if s.WarpInstrs == 0 || s.MemBytes == 0 {
		t.Errorf("profile counters empty: %+v", s)
	}
}

// TestFudgeMatchesKernelFamilies pins the calibration table's dispatch.
func TestFudgeMatchesKernelFamilies(t *testing.T) {
	o := hwmodel.GTX1050()
	cases := map[string]bool{ // name -> expect fudge < 1
		"fft2d_r2c_32x32": true,
		"cgemm":           true,
		"gemv2t":          true,
		"lrn_forward":     true,
		"relu_forward":    false,
	}
	for name, fudged := range cases {
		// exercise via a private-equivalent path: compare two oracles'
		// overhead-stripped estimates using the exported Fudge map
		f := 1.0
		for sub, v := range o.Fudge {
			low := name
			if len(sub) <= len(low) {
				for i := 0; i+len(sub) <= len(low); i++ {
					if low[i:i+len(sub)] == sub {
						f = v
					}
				}
			}
		}
		if (f < 1) != fudged {
			t.Errorf("%s: fudge %v, expected fudged=%v", name, f, fudged)
		}
	}
}
