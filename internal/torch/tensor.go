// Package torch is the PyTorch-analog mini-framework of this
// reproduction: device tensors, layer modules with backward passes, and an
// SGD optimizer, all implemented by calling the cuDNN-analog library
// (internal/cudnn) through the CUDA runtime — the same layering through
// which PyTorch reaches cuDNN in the paper (§III-E).
package torch

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/exec"
)

// Device owns a runtime context and a cudnn handle.
type Device struct {
	Ctx *cudart.Context
	H   *cudnn.Handle
}

// NewDevice creates a simulated GPU device with the library registered.
func NewDevice(bugs exec.BugSet) (*Device, error) {
	ctx := cudart.NewContext(bugs)
	h, err := cudnn.Create(ctx)
	if err != nil {
		return nil, err
	}
	return &Device{Ctx: ctx, H: h}, nil
}

// Tensor is a float32 NCHW (or flat) device tensor.
type Tensor struct {
	Shape []int
	Ptr   uint64
	dev   *Device
}

// Count returns the element count.
func (t *Tensor) Count() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Dim returns shape dimension i (1 when out of range).
func (t *Tensor) Dim(i int) int {
	if i >= len(t.Shape) {
		return 1
	}
	return t.Shape[i]
}

// NewTensor allocates an uninitialised tensor.
func (d *Device) NewTensor(shape ...int) (*Tensor, error) {
	t := &Tensor{Shape: shape, dev: d}
	addr, err := d.Ctx.Malloc(uint64(4 * t.Count()))
	if err != nil {
		return nil, err
	}
	t.Ptr = addr
	return t, nil
}

// Zeros allocates a zero-filled tensor.
func (d *Device) Zeros(shape ...int) (*Tensor, error) {
	t, err := d.NewTensor(shape...)
	if err != nil {
		return nil, err
	}
	d.Ctx.Memset(t.Ptr, 0, 4*t.Count())
	return t, nil
}

// FromHost uploads host data.
func (d *Device) FromHost(data []float32, shape ...int) (*Tensor, error) {
	t, err := d.NewTensor(shape...)
	if err != nil {
		return nil, err
	}
	if len(data) != t.Count() {
		return nil, fmt.Errorf("torch: %d values for shape %v", len(data), shape)
	}
	d.Ctx.MemcpyF32HtoD(t.Ptr, data)
	return t, nil
}

// ToHost downloads the tensor contents.
func (t *Tensor) ToHost() []float32 {
	return t.dev.Ctx.MemcpyF32DtoH(t.Ptr, t.Count())
}

// Free releases the tensor's device memory.
func (t *Tensor) Free() {
	if t.Ptr != 0 {
		_ = t.dev.Ctx.Free(t.Ptr)
		t.Ptr = 0
	}
}

// UploadLabels stores int32 labels on the device (u32 buffer).
func (d *Device) UploadLabels(labels []int32) (uint64, error) {
	addr, err := d.Ctx.Malloc(uint64(4 * len(labels)))
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 4*len(labels))
	for i, l := range labels {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(l))
	}
	d.Ctx.MemcpyHtoD(addr, buf)
	return addr, nil
}

// RandInit fills a tensor with uniform values in [-scale, scale] using a
// deterministic seed (reproducible "trained weights").
func (t *Tensor) RandInit(rng *rand.Rand, scale float32) {
	data := make([]float32, t.Count())
	for i := range data {
		data[i] = (rng.Float32()*2 - 1) * scale
	}
	t.dev.Ctx.MemcpyF32HtoD(t.Ptr, data)
}
