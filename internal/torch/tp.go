package torch

// Tensor-parallel transformer shards for the multi-GPU node. Every
// weight matrix is split column-wise across the world: rank r of W
// holds the contiguous column block W[:, r*cols/world : (r+1)*cols/world]
// (for the attention projections that block is a contiguous range of
// whole heads). Each phase computes a column shard of its layer's
// output from a *full-width* input, then the node's all-gather
// concatenates the shards back into the full activation on every rank
// before the next phase consumes it.
//
// The all-column split (rather than the Megatron column-then-row pair)
// is deliberate: every GEMM keeps the full K dimension, so each output
// element is the same dot product, accumulated in the same k-order, as
// the single-device encoder's — and since the gather only *moves* bytes,
// the sharded forward is bitwise identical to TransformerEncoder.Forward
// with the same weights. The multi-GPU tests lean on that as an exact
// oracle; the cost is one extra gather per block over the 2-collective
// Megatron schedule, which the modelled fabric prices accordingly.
//
// Phase methods only touch the shard's own device and launch on the
// default stream (synchronous), so the node can run one phase per rank
// concurrently on the host pool and find every engine idle at the
// collective boundary.

import (
	"fmt"
	"math"
)

// tpBlock holds rank-local weights of one transformer block: replicated
// layer norms, column-sharded projections.
type tpBlock struct {
	ln1G, ln1B *Tensor
	ln2G, ln2B *Tensor
	wq, wk, wv *projection // [DModel, DModel/world]
	wo         *projection // [DModel, DModel/world]
	fc1        *projection // [DModel, FF/world]
	fc2        *projection // [FF, DModel/world]
}

// TPShard is one rank of a tensor-parallel replica of a
// TransformerEncoder. The embedding, positional table and layer norms
// are replicated; all projections are column shards.
type TPShard struct {
	Dev   *Device
	Cfg   TransformerConfig
	Rank  int
	World int

	localHeads int // Heads / World
	dh         int // DModel / Heads
	dmShard    int // DModel / World
	ffShard    int // FF / World
	eps        float32

	table  *Tensor // [Vocab, DModel] replicated
	pos    *Tensor // [MaxSeq, DModel] replicated
	blocks []*tpBlock
	finalG *Tensor
	finalB *Tensor

	// forward state threaded between phases
	seq   int
	x     *Tensor // residual stream [seq, DModel]
	h     *Tensor // post-attention residual [seq, DModel]
	shard *Tensor // column shard the last phase produced
	full  *Tensor // gather destination the next phase consumes
}

// colShard extracts the contiguous column block [c0, c0+n) of a
// row-major [rows, cols] host matrix.
func colShard(w []float32, rows, cols, c0, n int) []float32 {
	out := make([]float32, rows*n)
	for r := 0; r < rows; r++ {
		copy(out[r*n:(r+1)*n], w[r*cols+c0:r*cols+c0+n])
	}
	return out
}

// shardProjection uploads rank-local column shards of a reference
// projection (weight [in, out] → [in, n]; bias [out] → [n]).
func shardProjection(dev *Device, ref *projection, in, out, c0, n int) (*projection, error) {
	w, err := dev.FromHost(colShard(ref.W.W.ToHost(), in, out, c0, n), in, n)
	if err != nil {
		return nil, err
	}
	b, err := dev.FromHost(ref.B.W.ToHost()[c0:c0+n], n)
	if err != nil {
		return nil, err
	}
	return &projection{W: &Param{W: w, Name: ref.W.Name}, B: &Param{W: b, Name: ref.B.Name}}, nil
}

// replicate uploads a full copy of a reference tensor.
func replicate(dev *Device, src *Tensor) (*Tensor, error) {
	return dev.FromHost(src.ToHost(), src.Shape...)
}

// NewTPShard builds rank `rank` of a `world`-way tensor-parallel copy of
// ref's weights on dev. The reference encoder stays untouched (its
// weights are read back to the host and re-uploaded shard-wise), so it
// remains usable as the exact single-device oracle. world must divide
// Heads, DModel and FF.
func NewTPShard(dev *Device, ref *TransformerEncoder, rank, world int) (*TPShard, error) {
	cfg := ref.Cfg
	if world < 1 || rank < 0 || rank >= world {
		return nil, fmt.Errorf("torch: tensor-parallel rank %d out of range for world %d", rank, world)
	}
	if cfg.Heads%world != 0 || cfg.DModel%world != 0 || cfg.FF%world != 0 {
		return nil, fmt.Errorf("torch: tensor-parallel world %d must divide heads %d, d_model %d and ff %d",
			world, cfg.Heads, cfg.DModel, cfg.FF)
	}
	s := &TPShard{
		Dev: dev, Cfg: cfg, Rank: rank, World: world,
		localHeads: cfg.Heads / world,
		dh:         cfg.DModel / cfg.Heads,
		dmShard:    cfg.DModel / world,
		ffShard:    cfg.FF / world,
		eps:        ref.Final.Eps,
	}
	var err error
	if s.table, err = replicate(dev, ref.Embed.Table.W); err != nil {
		return nil, err
	}
	if s.pos, err = replicate(dev, ref.Pos.W); err != nil {
		return nil, err
	}
	for _, blk := range ref.Blocks {
		b := &tpBlock{}
		if b.ln1G, err = replicate(dev, blk.Ln1.Gamma.W); err != nil {
			return nil, err
		}
		if b.ln1B, err = replicate(dev, blk.Ln1.Beta.W); err != nil {
			return nil, err
		}
		if b.ln2G, err = replicate(dev, blk.Ln2.Gamma.W); err != nil {
			return nil, err
		}
		if b.ln2B, err = replicate(dev, blk.Ln2.Beta.W); err != nil {
			return nil, err
		}
		dm := cfg.DModel
		if b.wq, err = shardProjection(dev, blk.Attn.Wq, dm, dm, rank*s.dmShard, s.dmShard); err != nil {
			return nil, err
		}
		if b.wk, err = shardProjection(dev, blk.Attn.Wk, dm, dm, rank*s.dmShard, s.dmShard); err != nil {
			return nil, err
		}
		if b.wv, err = shardProjection(dev, blk.Attn.Wv, dm, dm, rank*s.dmShard, s.dmShard); err != nil {
			return nil, err
		}
		if b.wo, err = shardProjection(dev, blk.Attn.Wo, dm, dm, rank*s.dmShard, s.dmShard); err != nil {
			return nil, err
		}
		if b.fc1, err = shardProjection(dev, blk.Fc1, dm, cfg.FF, rank*s.ffShard, s.ffShard); err != nil {
			return nil, err
		}
		if b.fc2, err = shardProjection(dev, blk.Fc2, cfg.FF, dm, rank*s.dmShard, s.dmShard); err != nil {
			return nil, err
		}
		s.blocks = append(s.blocks, b)
	}
	if s.finalG, err = replicate(dev, ref.Final.Gamma.W); err != nil {
		return nil, err
	}
	if s.finalB, err = replicate(dev, ref.Final.Beta.W); err != nil {
		return nil, err
	}
	return s, nil
}

// Layers returns the number of transformer blocks.
func (s *TPShard) Layers() int { return len(s.blocks) }

// PendingGather returns the column shard the last phase produced and
// the full-width destination the next phase consumes. The node's
// all-gather collective fills dst from every rank's shard.
func (s *TPShard) PendingGather() (shard, dst *Tensor) { return s.shard, s.full }

// layerNorm applies a replicated layer norm out-of-place.
func (s *TPShard) layerNorm(x, g, b *Tensor, rows int) (*Tensor, error) {
	y, err := s.Dev.NewTensor(rows, s.Cfg.DModel)
	if err != nil {
		return nil, err
	}
	if err := s.Dev.H.LayerNormForward(x.Ptr, g.Ptr, b.Ptr, y.Ptr, rows, s.Cfg.DModel, s.eps); err != nil {
		return nil, err
	}
	return y, nil
}

// StartForward begins a sequence: uploads the ids, gathers embeddings
// and adds the positional prefix. No collective needed — the embedding
// is replicated.
func (s *TPShard) StartForward(ids []int32) error {
	if err := validateTokenIDs(ids, s.Cfg.Vocab); err != nil {
		return err
	}
	seq := len(ids)
	if seq > s.Cfg.MaxSeq {
		return fmt.Errorf("torch: sequence length %d exceeds MaxSeq %d", seq, s.Cfg.MaxSeq)
	}
	addr, err := s.Dev.UploadLabels(ids)
	if err != nil {
		return err
	}
	e, err := s.Dev.NewTensor(seq, s.Cfg.DModel)
	if err != nil {
		return err
	}
	if err := s.Dev.H.EmbeddingLookup(s.table.Ptr, addr, e.Ptr, seq, s.Cfg.DModel); err != nil {
		return err
	}
	x, err := s.Dev.NewTensor(seq, s.Cfg.DModel)
	if err != nil {
		return err
	}
	if err := s.Dev.H.ResidualAdd(e.Ptr, s.pos.Ptr, x.Ptr, seq*s.Cfg.DModel); err != nil {
		return err
	}
	s.seq, s.x = seq, x
	s.shard, s.full = nil, nil
	return nil
}

// AttnCtx runs block blk's ln1 and the rank's local attention heads,
// producing the context column shard [seq, DModel/World]. Next
// collective: gather the full context.
func (s *TPShard) AttnCtx(blk int) error {
	b := s.blocks[blk]
	seq, dm, dh := s.seq, s.Cfg.DModel, s.dh
	h := s.Dev.H
	n1, err := s.layerNorm(s.x, b.ln1G, b.ln1B, seq)
	if err != nil {
		return err
	}
	cols := s.dmShard // localHeads*dh
	q, err := b.wq.apply(s.Dev, n1, seq, dm, cols)
	if err != nil {
		return err
	}
	k, err := b.wk.apply(s.Dev, n1, seq, dm, cols)
	if err != nil {
		return err
	}
	v, err := b.wv.apply(s.Dev, n1, seq, dm, cols)
	if err != nil {
		return err
	}
	heads := make([]*Tensor, 3)
	for i, src := range []*Tensor{q, k, v} {
		t, err := s.Dev.NewTensor(s.localHeads, seq, dh)
		if err != nil {
			return err
		}
		if err := h.SplitHeads(src.Ptr, t.Ptr, seq, s.localHeads, dh); err != nil {
			return err
		}
		heads[i] = t
	}
	qh, kh, vh := heads[0], heads[1], heads[2]
	scores, err := s.Dev.NewTensor(s.localHeads, seq, seq)
	if err != nil {
		return err
	}
	scale := float32(1 / math.Sqrt(float64(dh)))
	if err := h.GemmNTStridedBatched(qh.Ptr, kh.Ptr, scores.Ptr,
		seq, seq, dh, seq*dh, seq*dh, seq*seq, s.localHeads, scale, 0); err != nil {
		return err
	}
	probs, err := s.Dev.NewTensor(s.localHeads, seq, seq)
	if err != nil {
		return err
	}
	if err := h.SoftmaxForward(scores.Ptr, probs.Ptr, s.localHeads*seq, seq); err != nil {
		return err
	}
	ctxh, err := s.Dev.NewTensor(s.localHeads, seq, dh)
	if err != nil {
		return err
	}
	if err := h.GemmStridedBatched(probs.Ptr, vh.Ptr, ctxh.Ptr,
		seq, dh, seq, seq*seq, seq*dh, seq*dh, s.localHeads, 1, 0); err != nil {
		return err
	}
	merged, err := s.Dev.NewTensor(seq, cols)
	if err != nil {
		return err
	}
	if err := h.MergeHeads(ctxh.Ptr, merged.Ptr, seq, s.localHeads, dh); err != nil {
		return err
	}
	s.shard = merged
	if s.full, err = s.Dev.NewTensor(seq, dm); err != nil {
		return err
	}
	return nil
}

// AttnOut consumes the gathered full context and produces the output
// projection's column shard. Next collective: gather the full attention
// output.
func (s *TPShard) AttnOut(blk int) error {
	b := s.blocks[blk]
	seq, dm := s.seq, s.Cfg.DModel
	o, err := b.wo.apply(s.Dev, s.full, seq, dm, s.dmShard)
	if err != nil {
		return err
	}
	s.shard = o
	if s.full, err = s.Dev.NewTensor(seq, dm); err != nil {
		return err
	}
	return nil
}

// MLPAct consumes the gathered attention output: adds the residual,
// runs ln2 and the rank's fc1 column shard plus GELU. Next collective:
// gather the full [seq, FF] activation.
func (s *TPShard) MLPAct(blk int) error {
	b := s.blocks[blk]
	seq, dm := s.seq, s.Cfg.DModel
	hres, err := s.Dev.NewTensor(seq, dm)
	if err != nil {
		return err
	}
	if err := s.Dev.H.ResidualAdd(s.x.Ptr, s.full.Ptr, hres.Ptr, seq*dm); err != nil {
		return err
	}
	n2, err := s.layerNorm(hres, b.ln2G, b.ln2B, seq)
	if err != nil {
		return err
	}
	f1, err := b.fc1.apply(s.Dev, n2, seq, dm, s.ffShard)
	if err != nil {
		return err
	}
	act, err := s.Dev.NewTensor(seq, s.ffShard)
	if err != nil {
		return err
	}
	if err := s.Dev.H.GeluForward(f1.Ptr, act.Ptr, f1.Count()); err != nil {
		return err
	}
	s.h = hres
	s.shard = act
	if s.full, err = s.Dev.NewTensor(seq, s.Cfg.FF); err != nil {
		return err
	}
	return nil
}

// MLPOut consumes the gathered full GELU activation and produces the
// fc2 column shard. Next collective: gather the full MLP output.
func (s *TPShard) MLPOut(blk int) error {
	b := s.blocks[blk]
	seq := s.seq
	f2, err := b.fc2.apply(s.Dev, s.full, seq, s.Cfg.FF, s.dmShard)
	if err != nil {
		return err
	}
	s.shard = f2
	if s.full, err = s.Dev.NewTensor(seq, s.Cfg.DModel); err != nil {
		return err
	}
	return nil
}

// EndBlock consumes the gathered full MLP output and closes block blk
// with the second residual add, leaving the stream ready for the next
// block's AttnCtx.
func (s *TPShard) EndBlock(blk int) error {
	_ = blk
	seq, dm := s.seq, s.Cfg.DModel
	x, err := s.Dev.NewTensor(seq, dm)
	if err != nil {
		return err
	}
	if err := s.Dev.H.ResidualAdd(s.h.Ptr, s.full.Ptr, x.Ptr, seq*dm); err != nil {
		return err
	}
	s.x = x
	s.shard, s.full = nil, nil
	return nil
}

// Output applies the replicated final layer norm and returns the
// [seq, DModel] activation — bitwise identical on every rank, and to
// the single-device encoder's Forward with the same weights.
func (s *TPShard) Output() (*Tensor, error) {
	y, err := s.Dev.NewTensor(s.seq, s.Cfg.DModel)
	if err != nil {
		return nil, err
	}
	if err := s.Dev.H.LayerNormForward(s.x.Ptr, s.finalG.Ptr, s.finalB.Ptr, y.Ptr, s.seq, s.Cfg.DModel, s.eps); err != nil {
		return nil, err
	}
	return y, nil
}
