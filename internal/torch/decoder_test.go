package torch_test

import (
	"math/rand"
	"testing"

	"repro/internal/torch"
)

// Decoder differential tests, functional mode: the KV-cached incremental
// device decode against the full-reforward GenerateCPU oracle, plus the
// session state-machine error contract.

func newDecoder(t *testing.T, seed int64, cfg torch.TransformerConfig) (*torch.Device, *torch.TransformerDecoder) {
	t.Helper()
	dev := newDev(t)
	dec, err := torch.NewTransformerDecoder(dev, rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev, dec
}

func TestDecodeGenerateMatchesCPU(t *testing.T) {
	cases := []struct {
		name   string
		cfg    torch.TransformerConfig
		prompt []int32
		n      int
	}{
		{"single_token_prompt", torch.TransformerConfig{Layers: 1, Heads: 2, DModel: 8, FF: 16, Vocab: 13, MaxSeq: 8}, []int32{5}, 4},
		{"multi_token_prompt", torch.TransformerConfig{Layers: 2, Heads: 2, DModel: 16, FF: 32, Vocab: 29, MaxSeq: 8}, []int32{1, 7, 3}, 5},
		{"dh_not_warp_multiple", torch.TransformerConfig{Layers: 1, Heads: 3, DModel: 21, FF: 12, Vocab: 17, MaxSeq: 6}, []int32{2, 11}, 3},
		{"fill_cache_to_max", torch.TransformerConfig{Layers: 1, Heads: 2, DModel: 8, FF: 16, Vocab: 13, MaxSeq: 6}, []int32{4, 9}, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, dec := newDecoder(t, 61, c.cfg)
			got, err := dec.Generate(c.prompt, c.n)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			want, err := dec.GenerateCPU(c.prompt, c.n)
			if err != nil {
				t.Fatalf("GenerateCPU: %v", err)
			}
			if len(got) != c.n || len(want) != c.n {
				t.Fatalf("got %d tokens, oracle %d, want %d", len(got), len(want), c.n)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("token %d: device %d, oracle %d (full: %v vs %v)",
						i, got[i], want[i], got, want)
				}
			}
		})
	}
}

// TestDecodeStepwiseMatchesGenerate drives the session API by hand
// (NewSession + PrefillStep + DecodeStep) and checks it produces exactly
// the tokens of the one-shot Generate convenience path.
func TestDecodeStepwiseMatchesGenerate(t *testing.T) {
	cfg := torch.TransformerConfig{Layers: 2, Heads: 2, DModel: 16, FF: 32, Vocab: 29, MaxSeq: 8}
	_, dec := newDecoder(t, 62, cfg)
	prompt := []int32{3, 14, 8}
	const n = 4
	want, err := dec.Generate(prompt, n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dec.NewSession(prompt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Free()
	if err := dec.PrefillStep(s); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if err := dec.DecodeStep(s); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := dec.Dev.Ctx.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	got := s.Tokens()
	if len(got) != n {
		t.Fatalf("session generated %d tokens, want %d", len(got), n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: stepwise %d, generate %d", i, got[i], want[i])
		}
	}
	if s.Len != len(prompt)+n-1 {
		t.Fatalf("cache length %d, want %d", s.Len, len(prompt)+n-1)
	}
}

// TestDecoderSharesEncoderWeights pins that the decoder built from a
// seed has bit-identical parameters to the encoder built from the same
// seed — serve can swap architectures without re-deriving model state.
func TestDecoderSharesEncoderWeights(t *testing.T) {
	cfg := torch.TransformerConfig{Layers: 1, Heads: 2, DModel: 8, FF: 16, Vocab: 13, MaxSeq: 6}
	dev1 := newDev(t)
	enc, err := torch.NewTransformerEncoder(dev1, rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, dec := newDecoder(t, 7, cfg)
	ep, dp := enc.Params(), dec.Params()
	if len(ep) != len(dp) {
		t.Fatalf("param count %d vs %d", len(ep), len(dp))
	}
	for i := range ep {
		a, b := ep[i].W.ToHost(), dp[i].W.ToHost()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("param %s drifts at %d", ep[i].Name, j)
			}
		}
	}
}

func TestDecodeSessionErrors(t *testing.T) {
	cfg := torch.TransformerConfig{Layers: 1, Heads: 2, DModel: 8, FF: 16, Vocab: 13, MaxSeq: 4}
	_, dec := newDecoder(t, 63, cfg)

	if _, err := dec.NewSession(nil); err == nil {
		t.Fatal("empty prompt accepted")
	}
	if _, err := dec.NewSession([]int32{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("prompt longer than MaxSeq accepted")
	}
	if _, err := dec.NewSession([]int32{13}); err == nil {
		t.Fatal("out-of-vocabulary prompt accepted")
	}
	if _, err := dec.Generate([]int32{1}, 0); err == nil {
		t.Fatal("generate count 0 accepted")
	}
	if _, err := dec.Generate([]int32{1, 2}, 4); err == nil {
		t.Fatal("generation past MaxSeq accepted")
	}
	if _, err := dec.GenerateCPU([]int32{1, 2}, 4); err == nil {
		t.Fatal("CPU generation past MaxSeq accepted")
	}

	s, err := dec.NewSession([]int32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Free()
	if err := dec.DecodeStep(s); err == nil {
		t.Fatal("decode step before prefill accepted")
	}
	if err := dec.PrefillStep(s); err != nil {
		t.Fatal(err)
	}
	if err := dec.PrefillStep(s); err == nil {
		t.Fatal("second prefill accepted")
	}
	// cache: 2 prompt positions, MaxSeq 4 -> two more steps fill it
	if err := dec.DecodeStep(s); err != nil {
		t.Fatal(err)
	}
	if err := dec.DecodeStep(s); err != nil {
		t.Fatal(err)
	}
	if err := dec.DecodeStep(s); err == nil {
		t.Fatal("decode step past full cache accepted")
	}
}
