package torch

// Transformer training step. The device path chains the train-module
// kernels through TransformerEncoder.Backward and the tied-embedding LM
// head; CPUTrainState is the independent host mirror (its own weight
// copies, stepped with internal/ref math) that the timing tests compare
// against step-for-step.
//
// Gradient buffers are allocated here, lazily, AFTER model
// construction: inference-only code never calls EnsureGrads, so the
// allocator layout of every pre-existing workload — and with it the
// pinned golden timing stats — is untouched.

import (
	"fmt"
	"math"

	"repro/internal/ref"
)

// EnsureGrads allocates a zeroed gradient buffer for every parameter
// that does not have one yet. Idempotent.
func EnsureGrads(dev *Device, params []*Param) error {
	for _, p := range params {
		if p.Grad != nil {
			continue
		}
		g, err := dev.Zeros(p.W.Shape...)
		if err != nil {
			return fmt.Errorf("torch: allocating gradient for %s: %w", p.Name, err)
		}
		p.Grad = g
	}
	return nil
}

// NextTokenTargets returns the language-modelling targets for ids: each
// position predicts its successor, with the final position wrapping to
// the first token so every row contributes to the loss.
func NextTokenTargets(ids []int32) []int32 {
	tgt := make([]int32, len(ids))
	for i := range ids {
		tgt[i] = ids[(i+1)%len(ids)]
	}
	return tgt
}

// TransformerTrainer owns one encoder, its SGD optimizer and the loss
// head. The LM head ties the embedding table: logits = y·Tableᵀ, so the
// table gradient accumulates from both the logit GEMM and the embedding
// scatter-add.
type TransformerTrainer struct {
	Dev   *Device
	Model *TransformerEncoder
	Opt   *SGD
}

// NewTransformerTrainer allocates gradient buffers for every model
// parameter and builds the optimizer.
func NewTransformerTrainer(dev *Device, model *TransformerEncoder, lr float32) (*TransformerTrainer, error) {
	params := model.Params()
	if err := EnsureGrads(dev, params); err != nil {
		return nil, err
	}
	return &TransformerTrainer{Dev: dev, Model: model,
		Opt: &SGD{Dev: dev, LR: lr, Params: params}}, nil
}

// TrainStep runs one full training step on the device — forward, loss,
// backward, SGD update — and returns the mean next-token cross-entropy
// loss. All math up to the loss download runs as kernels; the only
// synchronising transfer is the per-row loss readback.
func (t *TransformerTrainer) TrainStep(ids []int32) (float32, error) {
	loss, err := t.ForwardBackward(ids)
	if err != nil {
		return 0, err
	}
	if err := t.Opt.Step(); err != nil {
		return 0, err
	}
	return loss, nil
}

// ForwardBackward runs the forward pass, loss head and backward pass
// without the optimizer update, and returns the mean next-token loss.
// Gradients accumulate on the device: single-device training steps the
// optimizer right after (TrainStep); data-parallel training first
// combines the replicas' gradients with a ring all-reduce
// (internal/multigpu) and only then steps each replica.
func (t *TransformerTrainer) ForwardBackward(ids []int32) (float32, error) {
	cfg := t.Model.Cfg
	seq, dm, vocab := len(ids), cfg.DModel, cfg.Vocab
	table := t.Model.Embed.Table

	y, err := t.Model.Forward(ids)
	if err != nil {
		return 0, err
	}
	// logits[seq, vocab] = y·Tableᵀ (tied embedding)
	logits, err := t.Dev.NewTensor(seq, vocab)
	if err != nil {
		return 0, err
	}
	if err := t.Dev.H.GemmNTStridedBatched(y.Ptr, table.W.Ptr, logits.Ptr,
		seq, vocab, dm, seq*dm, vocab*dm, seq*vocab, 1, 1, 0); err != nil {
		return 0, err
	}
	lab, err := t.Dev.UploadLabels(NextTokenTargets(ids))
	if err != nil {
		return 0, err
	}
	dlogits, err := t.Dev.NewTensor(seq, vocab)
	if err != nil {
		return 0, err
	}
	lossT, err := t.Dev.NewTensor(seq)
	if err != nil {
		return 0, err
	}
	if err := t.Dev.H.SoftmaxXentBackward(logits.Ptr, lab, dlogits.Ptr, lossT.Ptr, seq, vocab); err != nil {
		return 0, err
	}
	// dTable += dlogitsᵀ·y (the scatter-add half comes from Backward)
	if err := t.Dev.H.GemmTNStridedBatched(dlogits.Ptr, y.Ptr, table.Grad.Ptr,
		vocab, dm, seq, seq*vocab, seq*dm, vocab*dm, 1, 1, 1); err != nil {
		return 0, err
	}
	// dy[seq, dm] = dlogits·Table
	dy, err := t.Dev.NewTensor(seq, dm)
	if err != nil {
		return 0, err
	}
	if err := t.Dev.H.GemmStridedBatched(dlogits.Ptr, table.W.Ptr, dy.Ptr,
		seq, dm, vocab, seq*vocab, vocab*dm, seq*dm, 1, 1, 0); err != nil {
		return 0, err
	}
	if err := t.Model.Backward(dy); err != nil {
		return 0, err
	}
	perRow := lossT.ToHost()
	var sum float32
	for _, v := range perRow {
		sum += v
	}
	return sum / float32(seq), nil
}

// ---------------------------------------------------------------------------
// CPU oracle

type cpuProj struct {
	w, b   []float32
	dw, db []float32
}

func (p *cpuProj) apply(x []float32, rows, in, out int) []float32 {
	y := make([]float32, rows*out)
	ref.Gemm(x, p.w, y, rows, out, in, 1, 0)
	ref.AddBias(y, p.b, rows, out, 1)
	return y
}

func (p *cpuProj) backward(x, dy []float32, rows, in, out int) []float32 {
	dx := make([]float32, rows*in)
	ref.GemmNT(dy, p.w, dx, rows, in, out, 1, 0)
	ref.GemmTN(x, dy, p.dw, in, out, rows, 1, 1)
	for r := 0; r < rows; r++ {
		for j := 0; j < out; j++ {
			p.db[j] += dy[r*out+j]
		}
	}
	return dx
}

type cpuLN struct {
	g, b   []float32
	dg, db []float32
}

func (l *cpuLN) forward(x []float32, rows, cols int, eps float32) []float32 {
	return ref.LayerNorm(x, l.g, l.b, rows, cols, eps)
}

func (l *cpuLN) backward(x, dy []float32, rows, cols int, eps float32) []float32 {
	dx, dg, db := ref.LayerNormBackward(x, l.g, dy, rows, cols, eps)
	addInto(l.dg, dg)
	addInto(l.db, db)
	return dx
}

type cpuBlock struct {
	ln1, ln2      cpuLN
	q, k, v, o    cpuProj
	fc1, fc2      cpuProj
	x, n1, h, n2  []float32
	f1, act       []float32
	qh, kh, vh    []float32
	probs, merged []float32
}

// CPUTrainState is a host mirror of a TransformerEncoder for the
// training oracle: it snapshots the model's weights at construction and
// thereafter evolves independently with internal/ref arithmetic, so a
// device-vs-CPU loss comparison spans the whole train loop, not just
// one step.
type CPUTrainState struct {
	Cfg          TransformerConfig
	Eps          float32
	table, pos   []float32
	dtable, dpos []float32
	blocks       []*cpuBlock
	final        cpuLN
	finalX       []float32
}

func newCPUProj(p *projection) cpuProj {
	w, b := p.W.W.ToHost(), p.B.W.ToHost()
	return cpuProj{w: w, b: b, dw: make([]float32, len(w)), db: make([]float32, len(b))}
}

func newCPULN(l *LayerNorm) cpuLN {
	g, b := l.Gamma.W.ToHost(), l.Beta.W.ToHost()
	return cpuLN{g: g, b: b, dg: make([]float32, len(g)), db: make([]float32, len(b))}
}

// NewCPUTrainState snapshots model's current weights into an
// independent host mirror.
func NewCPUTrainState(model *TransformerEncoder) *CPUTrainState {
	c := &CPUTrainState{
		Cfg:   model.Cfg,
		Eps:   model.Final.Eps,
		table: model.Embed.Table.W.ToHost(),
		pos:   model.Pos.W.ToHost(),
		final: newCPULN(model.Final),
	}
	c.dtable = make([]float32, len(c.table))
	c.dpos = make([]float32, len(c.pos))
	for _, blk := range model.Blocks {
		c.blocks = append(c.blocks, &cpuBlock{
			ln1: newCPULN(blk.Ln1), ln2: newCPULN(blk.Ln2),
			q: newCPUProj(blk.Attn.Wq), k: newCPUProj(blk.Attn.Wk),
			v: newCPUProj(blk.Attn.Wv), o: newCPUProj(blk.Attn.Wo),
			fc1: newCPUProj(blk.Fc1), fc2: newCPUProj(blk.Fc2),
		})
	}
	return c
}

func addInto(dst, src []float32) {
	for i, v := range src {
		dst[i] += v
	}
}

func (c *CPUTrainState) attnForward(b *cpuBlock, x []float32, seq int) []float32 {
	dm := c.Cfg.DModel
	heads := c.Cfg.Heads
	dh := dm / heads
	b.qh = ref.SplitHeads(b.q.apply(x, seq, dm, dm), seq, heads, dh)
	b.kh = ref.SplitHeads(b.k.apply(x, seq, dm, dm), seq, heads, dh)
	b.vh = ref.SplitHeads(b.v.apply(x, seq, dm, dm), seq, heads, dh)
	scale := invSqrt(dh)
	b.probs = make([]float32, heads*seq*seq)
	ctxh := make([]float32, heads*seq*dh)
	for hh := 0; hh < heads; hh++ {
		scores := make([]float32, seq*seq)
		ref.GemmNT(b.qh[hh*seq*dh:], b.kh[hh*seq*dh:], scores, seq, seq, dh, scale, 0)
		copy(b.probs[hh*seq*seq:], ref.Softmax(scores, seq, seq))
		ref.Gemm(b.probs[hh*seq*seq:(hh+1)*seq*seq], b.vh[hh*seq*dh:(hh+1)*seq*dh],
			ctxh[hh*seq*dh:(hh+1)*seq*dh], seq, dh, seq, 1, 0)
	}
	b.merged = ref.MergeHeads(ctxh, seq, heads, dh)
	return b.o.apply(b.merged, seq, dm, dm)
}

func (c *CPUTrainState) attnBackward(b *cpuBlock, dy []float32, seq int) []float32 {
	dm := c.Cfg.DModel
	heads := c.Cfg.Heads
	dh := dm / heads
	scale := invSqrt(dh)
	dmerged := b.o.backward(b.merged, dy, seq, dm, dm)
	dctxh := ref.SplitHeads(dmerged, seq, heads, dh)
	dqh := make([]float32, heads*seq*dh)
	dkh := make([]float32, heads*seq*dh)
	dvh := make([]float32, heads*seq*dh)
	for hh := 0; hh < heads; hh++ {
		dctx := dctxh[hh*seq*dh : (hh+1)*seq*dh]
		probs := b.probs[hh*seq*seq : (hh+1)*seq*seq]
		dprobs := make([]float32, seq*seq)
		ref.GemmNT(dctx, b.vh[hh*seq*dh:], dprobs, seq, seq, dh, 1, 0)
		ref.GemmTN(probs, dctx, dvh[hh*seq*dh:(hh+1)*seq*dh], seq, dh, seq, 1, 1)
		dscores := ref.SoftmaxBackward(probs, dprobs, seq, seq)
		ref.Gemm(dscores, b.kh[hh*seq*dh:(hh+1)*seq*dh], dqh[hh*seq*dh:(hh+1)*seq*dh],
			seq, dh, seq, scale, 0)
		ref.GemmTN(dscores, b.qh[hh*seq*dh:], dkh[hh*seq*dh:(hh+1)*seq*dh], seq, dh, seq, scale, 1)
	}
	dq := ref.MergeHeads(dqh, seq, heads, dh)
	dk := ref.MergeHeads(dkh, seq, heads, dh)
	dv := ref.MergeHeads(dvh, seq, heads, dh)
	dx := b.q.backward(b.x1(), dq, seq, dm, dm)
	addInto(dx, b.k.backward(b.x1(), dk, seq, dm, dm))
	addInto(dx, b.v.backward(b.x1(), dv, seq, dm, dm))
	return dx
}

// x1 is the attention input (the ln1 output cached on the block).
func (b *cpuBlock) x1() []float32 { return b.n1 }

// TrainStep mirrors TransformerTrainer.TrainStep on the host and
// returns the mean loss.
func (c *CPUTrainState) TrainStep(ids []int32, lr float32) float32 {
	loss := c.ForwardBackward(ids)
	c.sgd(lr)
	return loss
}

// ForwardBackward mirrors TransformerTrainer.ForwardBackward on the
// host: gradients accumulate into the mirror's buffers without an
// optimizer update, so the data-parallel oracle can combine them across
// mirrors (AllReduceCPUGrads) before stepping each with ApplySGD.
func (c *CPUTrainState) ForwardBackward(ids []int32) float32 {
	cfg := c.Cfg
	seq, dm, vocab := len(ids), cfg.DModel, cfg.Vocab
	eps := c.Eps

	// forward
	x := ref.EmbeddingLookup(c.table, ids, dm)
	x = ref.AddResidual(x, c.pos[:seq*dm])
	for _, b := range c.blocks {
		b.x = x
		b.n1 = b.ln1.forward(x, seq, dm, eps)
		att := c.attnForward(b, b.n1, seq)
		b.h = ref.AddResidual(x, att)
		b.n2 = b.ln2.forward(b.h, seq, dm, eps)
		b.f1 = b.fc1.apply(b.n2, seq, dm, cfg.FF)
		b.act = ref.Gelu(b.f1)
		f2 := b.fc2.apply(b.act, seq, cfg.FF, dm)
		x = ref.AddResidual(b.h, f2)
	}
	c.finalX = x
	y := c.final.forward(x, seq, dm, eps)

	// tied-embedding loss head
	logits := make([]float32, seq*vocab)
	ref.GemmNT(y, c.table, logits, seq, vocab, dm, 1, 0)
	dlogits, perRow := ref.SoftmaxXentBackward(logits, NextTokenTargets(ids), seq, vocab)
	var sum float32
	for _, v := range perRow {
		sum += v
	}
	ref.GemmTN(dlogits, y, c.dtable, vocab, dm, seq, 1, 1)
	dy := make([]float32, seq*dm)
	ref.Gemm(dlogits, c.table, dy, seq, dm, vocab, 1, 0)

	// backward
	dx := c.final.backward(c.finalX, dy, seq, dm, eps)
	for i := len(c.blocks) - 1; i >= 0; i-- {
		b := c.blocks[i]
		da := b.fc2.backward(b.act, dx, seq, cfg.FF, dm)
		df1 := ref.GeluBackward(b.f1, da)
		dn2 := b.fc1.backward(b.n2, df1, seq, dm, cfg.FF)
		dhFF := b.ln2.backward(b.h, dn2, seq, dm, eps)
		dh := ref.AddResidual(dx, dhFF)
		dn1 := c.attnBackward(b, dh, seq)
		dxAttn := b.ln1.backward(b.x, dn1, seq, dm, eps)
		dx = ref.AddResidual(dh, dxAttn)
	}
	addInto(c.dpos[:seq*dm], dx)
	addInto(c.dtable, ref.EmbeddingBackward(dx, ids, vocab, dm))

	return sum / float32(seq)
}

// ApplySGD applies one SGD update with the given learning rate and
// zeroes the accumulated gradients (exported for the data-parallel
// mirror, which all-reduces gradients across replicas before stepping).
func (c *CPUTrainState) ApplySGD(lr float32) { c.sgd(lr) }

func (c *CPUTrainState) sgd(lr float32) {
	step := func(w, g []float32) {
		for i := range w {
			w[i] -= lr * g[i]
			g[i] = 0
		}
	}
	step(c.table, c.dtable)
	step(c.pos, c.dpos)
	for _, b := range c.blocks {
		step(b.ln1.g, b.ln1.dg)
		step(b.ln1.b, b.ln1.db)
		for _, p := range []*cpuProj{&b.q, &b.k, &b.v, &b.o, &b.fc1, &b.fc2} {
			step(p.w, p.dw)
			step(p.b, p.db)
		}
		step(b.ln2.g, b.ln2.dg)
		step(b.ln2.b, b.ln2.db)
	}
	step(c.final.g, c.final.dg)
	step(c.final.b, c.final.db)
}

// ParamSnapshot returns the mirror's weights for parameter index i, in
// the same order as TransformerEncoder.Params(): table, pos, then per
// block ln1.γ/β, q/k/v/o weight+bias, ln2.γ/β, fc1 and fc2 weight+bias,
// and finally the last norm's γ/β.
func (c *CPUTrainState) ParamSnapshot(i int) []float32 {
	var all [][]float32
	all = append(all, c.table, c.pos)
	for _, b := range c.blocks {
		all = append(all, b.ln1.g, b.ln1.b,
			b.q.w, b.q.b, b.k.w, b.k.b, b.v.w, b.v.b, b.o.w, b.o.b,
			b.ln2.g, b.ln2.b, b.fc1.w, b.fc1.b, b.fc2.w, b.fc2.b)
	}
	all = append(all, c.final.g, c.final.b)
	return all[i]
}

// gradSlices returns the mirror's gradient buffers in ParamSnapshot
// order.
func (c *CPUTrainState) gradSlices() [][]float32 {
	var all [][]float32
	all = append(all, c.dtable, c.dpos)
	for _, b := range c.blocks {
		all = append(all, b.ln1.dg, b.ln1.db,
			b.q.dw, b.q.db, b.k.dw, b.k.db, b.v.dw, b.v.db, b.o.dw, b.o.db,
			b.ln2.dg, b.ln2.db, b.fc1.dw, b.fc1.db, b.fc2.dw, b.fc2.db)
	}
	all = append(all, c.final.dg, c.final.db)
	return all
}

// AllReduceCPUGrads sums the accumulated gradients of the given mirrors
// element-wise in argument order and stores the sum back into every
// mirror — the host-side analog of the device ring all-reduce. The
// rank-ordered summation matches the multi-GPU coordinator's exactly,
// so the mirrors track the device replicas' rounding behaviour.
func AllReduceCPUGrads(states []*CPUTrainState) {
	if len(states) < 2 {
		return
	}
	grads := make([][][]float32, len(states))
	for i, s := range states {
		grads[i] = s.gradSlices()
	}
	for p := range grads[0] {
		sum := make([]float32, len(grads[0][p]))
		copy(sum, grads[0][p])
		for r := 1; r < len(states); r++ {
			for j, v := range grads[r][p] {
				sum[j] += v
			}
		}
		for r := range states {
			copy(grads[r][p], sum)
		}
	}
}

func invSqrt(n int) float32 {
	return float32(1 / math.Sqrt(float64(n)))
}
