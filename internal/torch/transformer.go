package torch

// Transformer modules: LayerNorm, GELU, multi-head attention, the pre-LN
// encoder block, the embedding table, and a small encoder model able to
// overlap per-sequence forward passes on CUDA streams. Every module
// carries the same ForwardCPU self-check oracle contract as the
// convolutional layers, and since the training milestone each implements
// Backward against the train kernel module. Forward caches activation
// *pointers* only — it allocates nothing beyond what inference always
// allocated, so inference-path device addresses (and therefore the
// pinned golden timing stats) are unchanged. Gradient buffers are
// allocated lazily by EnsureGrads after model construction; Backward on
// a parameter without one fails loudly.

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/ref"
)

// gradsRequired rejects a Backward call on parameters whose gradient
// buffers have not been allocated (EnsureGrads was never run).
func gradsRequired(ps ...*Param) error {
	for _, p := range ps {
		if p.Grad == nil {
			return fmt.Errorf("torch: parameter %s has no gradient buffer; call EnsureGrads before training", p.Name)
		}
	}
	return nil
}

// validateTokenIDs rejects ids outside [0, vocab) before they reach the
// device: the gather kernel does no bounds check, and an out-of-range id
// would silently read past the table (and panic the CPU oracle).
func validateTokenIDs(ids []int32, vocab int) error {
	for i, id := range ids {
		if id < 0 || int(id) >= vocab {
			return fmt.Errorf("torch: token id %d at position %d outside vocabulary [0, %d)", id, i, vocab)
		}
	}
	return nil
}

// LayerNorm normalises the trailing dimension of a [rows, Dim] tensor.
type LayerNorm struct {
	Dev   *Device
	Dim   int
	Eps   float32
	Gamma *Param
	Beta  *Param
	lastX *Tensor
}

// NewLayerNorm builds a layer norm with γ=1, β=0.
func NewLayerNorm(dev *Device, dim int) (*LayerNorm, error) {
	ones := make([]float32, dim)
	for i := range ones {
		ones[i] = 1
	}
	g, err := dev.FromHost(ones, dim)
	if err != nil {
		return nil, err
	}
	b, err := dev.Zeros(dim)
	if err != nil {
		return nil, err
	}
	return &LayerNorm{Dev: dev, Dim: dim, Eps: 1e-5,
		Gamma: &Param{W: g, Name: "ln.gamma"},
		Beta:  &Param{W: b, Name: "ln.beta"}}, nil
}

// Forward implements Module.
func (l *LayerNorm) Forward(x *Tensor) (*Tensor, error) {
	rows := x.Count() / l.Dim
	y, err := l.Dev.NewTensor(x.Shape...)
	if err != nil {
		return nil, err
	}
	if err := l.Dev.H.LayerNormForward(x.Ptr, l.Gamma.W.Ptr, l.Beta.W.Ptr, y.Ptr, rows, l.Dim, l.Eps); err != nil {
		return nil, err
	}
	l.lastX = x
	return y, nil
}

// Backward implements Module: dx from the cached input, with dgamma and
// dbeta accumulated into the parameter gradients.
func (l *LayerNorm) Backward(dy *Tensor) (*Tensor, error) {
	if err := gradsRequired(l.Gamma, l.Beta); err != nil {
		return nil, err
	}
	rows := dy.Count() / l.Dim
	dx, err := l.Dev.NewTensor(dy.Shape...)
	if err != nil {
		return nil, err
	}
	if err := l.Dev.H.LayerNormBackward(l.lastX.Ptr, l.Gamma.W.Ptr, dy.Ptr, dx.Ptr,
		l.Gamma.Grad.Ptr, l.Beta.Grad.Ptr, rows, l.Dim, l.Eps); err != nil {
		return nil, err
	}
	return dx, nil
}

// Params implements Module.
func (l *LayerNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }

// ForwardCPU implements Module.
func (l *LayerNorm) ForwardCPU(x []float32, shape []int) ([]float32, []int) {
	rows := len(x) / l.Dim
	return ref.LayerNorm(x, l.Gamma.W.ToHost(), l.Beta.W.ToHost(), rows, l.Dim, l.Eps), shape
}

// GELU is the tanh-form GELU activation.
type GELU struct {
	Dev   *Device
	lastX *Tensor
}

// Forward implements Module.
func (g *GELU) Forward(x *Tensor) (*Tensor, error) {
	y, err := g.Dev.NewTensor(x.Shape...)
	if err != nil {
		return nil, err
	}
	if err := g.Dev.H.GeluForward(x.Ptr, y.Ptr, x.Count()); err != nil {
		return nil, err
	}
	g.lastX = x
	return y, nil
}

// Backward implements Module.
func (g *GELU) Backward(dy *Tensor) (*Tensor, error) {
	dx, err := g.Dev.NewTensor(dy.Shape...)
	if err != nil {
		return nil, err
	}
	if err := g.Dev.H.GeluBackward(g.lastX.Ptr, dy.Ptr, dx.Ptr, dy.Count()); err != nil {
		return nil, err
	}
	return dx, nil
}

// Params implements Module.
func (g *GELU) Params() []*Param { return nil }

// ForwardCPU implements Module.
func (g *GELU) ForwardCPU(x []float32, shape []int) ([]float32, []int) {
	return ref.Gelu(x), shape
}

// projection is one [In, Out] dense weight + bias applied with the tiled
// SGEMM kernel (one launch per matrix, unlike Linear's per-row GEMV —
// transformer projections are batched over the whole sequence).
type projection struct {
	W *Param
	B *Param
}

func newProjection(dev *Device, rng *rand.Rand, in, out int, name string) (*projection, error) {
	w, err := dev.NewTensor(in, out)
	if err != nil {
		return nil, err
	}
	b, err := dev.Zeros(out)
	if err != nil {
		return nil, err
	}
	w.RandInit(rng, float32(math.Sqrt(2.0/float64(in))))
	return &projection{
		W: &Param{W: w, Name: name + ".weight"},
		B: &Param{W: b, Name: name + ".bias"},
	}, nil
}

// apply computes y = x·W + b for x[rows, in] on the device.
func (p *projection) apply(dev *Device, x *Tensor, rows, in, out int) (*Tensor, error) {
	y, err := dev.NewTensor(rows, out)
	if err != nil {
		return nil, err
	}
	if err := dev.H.Gemm(x.Ptr, p.W.W.Ptr, y.Ptr, rows, out, in, 1, 0); err != nil {
		return nil, err
	}
	yd := cudnn.TensorDesc{N: rows, C: out, H: 1, W: 1}
	if err := dev.H.AddTensor(p.B.W.Ptr, y.Ptr, yd); err != nil {
		return nil, err
	}
	return y, nil
}

// applyCPU mirrors apply on the host.
func (p *projection) applyCPU(x []float32, rows, in, out int) []float32 {
	y := make([]float32, rows*out)
	ref.Gemm(x, p.W.W.ToHost(), y, rows, out, in, 1, 0)
	ref.AddBias(y, p.B.W.ToHost(), rows, out, 1)
	return y
}

// backward computes dx = dy·Wᵀ and accumulates dW += xᵀ·dy and
// db += Σ_rows dy, where x is the cached forward input of this
// projection.
func (p *projection) backward(dev *Device, x, dy *Tensor, rows, in, out int) (*Tensor, error) {
	if err := gradsRequired(p.W, p.B); err != nil {
		return nil, err
	}
	dx, err := dev.NewTensor(rows, in)
	if err != nil {
		return nil, err
	}
	// dx[rows,in] = dy[rows,out] · W[in,out]ᵀ
	if err := dev.H.GemmNTStridedBatched(dy.Ptr, p.W.W.Ptr, dx.Ptr,
		rows, in, out, rows*out, in*out, rows*in, 1, 1, 0); err != nil {
		return nil, err
	}
	// dW[in,out] += x[rows,in]ᵀ · dy[rows,out]
	if err := dev.H.GemmTNStridedBatched(x.Ptr, dy.Ptr, p.W.Grad.Ptr,
		in, out, rows, rows*in, rows*out, in*out, 1, 1, 1); err != nil {
		return nil, err
	}
	// db[out] += dy[rows,out]ᵀ · ones[rows]
	ones, err := dev.FromHost(onesSlice(rows), rows)
	if err != nil {
		return nil, err
	}
	defer ones.Free()
	if err := dev.H.GemvT(dy.Ptr, ones.Ptr, p.B.Grad.Ptr, rows, out, 1, 1); err != nil {
		return nil, err
	}
	return dx, nil
}

// MultiHeadAttention is scaled dot-product self-attention over a
// [seq, DModel] activation: per-head Q·Kᵀ via the NT strided-batched
// GEMM, row-softmax, probabilities·V via the NN strided-batched GEMM,
// with split/merge head permutes and four dense projections.
type MultiHeadAttention struct {
	Dev    *Device
	Heads  int
	DModel int
	Wq     *projection
	Wk     *projection
	Wv     *projection
	Wo     *projection
	// forward activation cache (pointers only) for Backward
	lastX   *Tensor
	lastSeq int
	qh, kh  *Tensor
	vh      *Tensor
	probs   *Tensor
	merged  *Tensor
}

// NewMultiHeadAttention builds the four projections; dModel must divide
// evenly into heads.
func NewMultiHeadAttention(dev *Device, rng *rand.Rand, heads, dModel int) (*MultiHeadAttention, error) {
	if dModel%heads != 0 {
		return nil, fmt.Errorf("torch: dModel %d not divisible by %d heads", dModel, heads)
	}
	m := &MultiHeadAttention{Dev: dev, Heads: heads, DModel: dModel}
	var err error
	for _, p := range []struct {
		dst  **projection
		name string
	}{{&m.Wq, "attn.q"}, {&m.Wk, "attn.k"}, {&m.Wv, "attn.v"}, {&m.Wo, "attn.out"}} {
		if *p.dst, err = newProjection(dev, rng, dModel, dModel, p.name); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Forward implements Module for x of shape [seq, DModel].
func (m *MultiHeadAttention) Forward(x *Tensor) (*Tensor, error) {
	seq := x.Dim(0)
	dm := m.DModel
	dh := dm / m.Heads
	h := m.Dev.H

	q, err := m.Wq.apply(m.Dev, x, seq, dm, dm)
	if err != nil {
		return nil, err
	}
	k, err := m.Wk.apply(m.Dev, x, seq, dm, dm)
	if err != nil {
		return nil, err
	}
	v, err := m.Wv.apply(m.Dev, x, seq, dm, dm)
	if err != nil {
		return nil, err
	}

	// per-head layout [Heads, seq, dh]
	heads := make([]*Tensor, 3)
	for i, src := range []*Tensor{q, k, v} {
		t, err := m.Dev.NewTensor(m.Heads, seq, dh)
		if err != nil {
			return nil, err
		}
		if err := h.SplitHeads(src.Ptr, t.Ptr, seq, m.Heads, dh); err != nil {
			return nil, err
		}
		heads[i] = t
	}
	qh, kh, vh := heads[0], heads[1], heads[2]

	// scores[h] = Qh·Khᵀ / sqrt(dh), then row softmax
	scores, err := m.Dev.NewTensor(m.Heads, seq, seq)
	if err != nil {
		return nil, err
	}
	scale := float32(1 / math.Sqrt(float64(dh)))
	if err := h.GemmNTStridedBatched(qh.Ptr, kh.Ptr, scores.Ptr,
		seq, seq, dh, seq*dh, seq*dh, seq*seq, m.Heads, scale, 0); err != nil {
		return nil, err
	}
	probs, err := m.Dev.NewTensor(m.Heads, seq, seq)
	if err != nil {
		return nil, err
	}
	if err := h.SoftmaxForward(scores.Ptr, probs.Ptr, m.Heads*seq, seq); err != nil {
		return nil, err
	}

	// context[h] = probs·Vh, merged back to [seq, DModel]
	ctxh, err := m.Dev.NewTensor(m.Heads, seq, dh)
	if err != nil {
		return nil, err
	}
	if err := h.GemmStridedBatched(probs.Ptr, vh.Ptr, ctxh.Ptr,
		seq, dh, seq, seq*seq, seq*dh, seq*dh, m.Heads, 1, 0); err != nil {
		return nil, err
	}
	merged, err := m.Dev.NewTensor(seq, dm)
	if err != nil {
		return nil, err
	}
	if err := h.MergeHeads(ctxh.Ptr, merged.Ptr, seq, m.Heads, dh); err != nil {
		return nil, err
	}
	m.lastX, m.lastSeq = x, seq
	m.qh, m.kh, m.vh = qh, kh, vh
	m.probs, m.merged = probs, merged
	return m.Wo.apply(m.Dev, merged, seq, dm, dm)
}

// Backward implements Module: walks the attention graph in reverse —
// output projection, head merge, probs·V, the softmax Jacobian, the
// scaled Q·Kᵀ, the head split, and finally the three input projections
// whose input gradients sum into dx.
func (m *MultiHeadAttention) Backward(dy *Tensor) (*Tensor, error) {
	seq := m.lastSeq
	dm := m.DModel
	dh := dm / m.Heads
	h := m.Dev.H
	scale := float32(1 / math.Sqrt(float64(dh)))

	dmerged, err := m.Wo.backward(m.Dev, m.merged, dy, seq, dm, dm)
	if err != nil {
		return nil, err
	}
	dctxh, err := m.Dev.NewTensor(m.Heads, seq, dh)
	if err != nil {
		return nil, err
	}
	if err := h.SplitHeads(dmerged.Ptr, dctxh.Ptr, seq, m.Heads, dh); err != nil {
		return nil, err
	}

	// context[h] = probs·Vh  ⇒  dprobs = dctx·Vhᵀ, dVh = probsᵀ·dctx
	dprobs, err := m.Dev.NewTensor(m.Heads, seq, seq)
	if err != nil {
		return nil, err
	}
	if err := h.GemmNTStridedBatched(dctxh.Ptr, m.vh.Ptr, dprobs.Ptr,
		seq, seq, dh, seq*dh, seq*dh, seq*seq, m.Heads, 1, 0); err != nil {
		return nil, err
	}
	dvh, err := m.Dev.NewTensor(m.Heads, seq, dh)
	if err != nil {
		return nil, err
	}
	if err := h.GemmTNStridedBatched(m.probs.Ptr, dctxh.Ptr, dvh.Ptr,
		seq, dh, seq, seq*seq, seq*dh, seq*dh, m.Heads, 1, 0); err != nil {
		return nil, err
	}

	dscores, err := m.Dev.NewTensor(m.Heads, seq, seq)
	if err != nil {
		return nil, err
	}
	if err := h.SoftmaxBackward(m.probs.Ptr, dprobs.Ptr, dscores.Ptr, m.Heads*seq, seq); err != nil {
		return nil, err
	}

	// scores = scale·Qh·Khᵀ  ⇒  dQh = scale·dscores·Kh, dKh = scale·dscoresᵀ·Qh
	dqh, err := m.Dev.NewTensor(m.Heads, seq, dh)
	if err != nil {
		return nil, err
	}
	if err := h.GemmStridedBatched(dscores.Ptr, m.kh.Ptr, dqh.Ptr,
		seq, dh, seq, seq*seq, seq*dh, seq*dh, m.Heads, scale, 0); err != nil {
		return nil, err
	}
	dkh, err := m.Dev.NewTensor(m.Heads, seq, dh)
	if err != nil {
		return nil, err
	}
	if err := h.GemmTNStridedBatched(dscores.Ptr, m.qh.Ptr, dkh.Ptr,
		seq, dh, seq, seq*seq, seq*dh, seq*dh, m.Heads, scale, 0); err != nil {
		return nil, err
	}

	// back to [seq, DModel] and through the input projections
	grads := make([]*Tensor, 3)
	for i, src := range []*Tensor{dqh, dkh, dvh} {
		t, err := m.Dev.NewTensor(seq, dm)
		if err != nil {
			return nil, err
		}
		if err := h.MergeHeads(src.Ptr, t.Ptr, seq, m.Heads, dh); err != nil {
			return nil, err
		}
		grads[i] = t
	}
	dx, err := m.Wq.backward(m.Dev, m.lastX, grads[0], seq, dm, dm)
	if err != nil {
		return nil, err
	}
	for i, p := range []*projection{m.Wk, m.Wv} {
		d, err := p.backward(m.Dev, m.lastX, grads[i+1], seq, dm, dm)
		if err != nil {
			return nil, err
		}
		if err := h.AccumulateAdd(d.Ptr, dx.Ptr, seq*dm); err != nil {
			return nil, err
		}
	}
	return dx, nil
}

// Params implements Module.
func (m *MultiHeadAttention) Params() []*Param {
	return []*Param{m.Wq.W, m.Wq.B, m.Wk.W, m.Wk.B, m.Wv.W, m.Wv.B, m.Wo.W, m.Wo.B}
}

// ForwardCPU implements Module.
func (m *MultiHeadAttention) ForwardCPU(x []float32, shape []int) ([]float32, []int) {
	seq := shape[0]
	dm := m.DModel
	dh := dm / m.Heads
	q := ref.SplitHeads(m.Wq.applyCPU(x, seq, dm, dm), seq, m.Heads, dh)
	k := ref.SplitHeads(m.Wk.applyCPU(x, seq, dm, dm), seq, m.Heads, dh)
	v := ref.SplitHeads(m.Wv.applyCPU(x, seq, dm, dm), seq, m.Heads, dh)
	scale := float32(1 / math.Sqrt(float64(dh)))
	ctxh := make([]float32, m.Heads*seq*dh)
	for hh := 0; hh < m.Heads; hh++ {
		scores := make([]float32, seq*seq)
		ref.GemmNT(q[hh*seq*dh:], k[hh*seq*dh:], scores, seq, seq, dh, scale, 0)
		probs := ref.Softmax(scores, seq, seq)
		ref.Gemm(probs, v[hh*seq*dh:(hh+1)*seq*dh], ctxh[hh*seq*dh:(hh+1)*seq*dh], seq, dh, seq, 1, 0)
	}
	merged := ref.MergeHeads(ctxh, seq, m.Heads, dh)
	return m.Wo.applyCPU(merged, seq, dm, dm), shape
}

// TransformerBlock is one pre-LN encoder block:
// h = x + Attn(LN1(x)); y = h + W2·GELU(W1·LN2(h)).
type TransformerBlock struct {
	Dev  *Device
	Dm   int
	Ff   int
	Ln1  *LayerNorm
	Attn *MultiHeadAttention
	Ln2  *LayerNorm
	Fc1  *projection
	Fc2  *projection
	Act  *GELU
	// forward activation cache (pointers only) for Backward
	lastSeq int
	lastN2  *Tensor
	lastAct *Tensor
}

// NewTransformerBlock builds one encoder block.
func NewTransformerBlock(dev *Device, rng *rand.Rand, heads, dModel, ff int) (*TransformerBlock, error) {
	ln1, err := NewLayerNorm(dev, dModel)
	if err != nil {
		return nil, err
	}
	attn, err := NewMultiHeadAttention(dev, rng, heads, dModel)
	if err != nil {
		return nil, err
	}
	ln2, err := NewLayerNorm(dev, dModel)
	if err != nil {
		return nil, err
	}
	fc1, err := newProjection(dev, rng, dModel, ff, "ff.fc1")
	if err != nil {
		return nil, err
	}
	fc2, err := newProjection(dev, rng, ff, dModel, "ff.fc2")
	if err != nil {
		return nil, err
	}
	return &TransformerBlock{Dev: dev, Dm: dModel, Ff: ff,
		Ln1: ln1, Attn: attn, Ln2: ln2, Fc1: fc1, Fc2: fc2, Act: &GELU{Dev: dev}}, nil
}

// residual computes x + r into a fresh tensor.
func (b *TransformerBlock) residual(x, r *Tensor) (*Tensor, error) {
	y, err := b.Dev.NewTensor(x.Shape...)
	if err != nil {
		return nil, err
	}
	if err := b.Dev.H.ResidualAdd(x.Ptr, r.Ptr, y.Ptr, x.Count()); err != nil {
		return nil, err
	}
	return y, nil
}

// Forward implements Module for x of shape [seq, Dm].
func (b *TransformerBlock) Forward(x *Tensor) (*Tensor, error) {
	seq := x.Dim(0)
	n1, err := b.Ln1.Forward(x)
	if err != nil {
		return nil, err
	}
	att, err := b.Attn.Forward(n1)
	if err != nil {
		return nil, err
	}
	h, err := b.residual(x, att)
	if err != nil {
		return nil, err
	}
	n2, err := b.Ln2.Forward(h)
	if err != nil {
		return nil, err
	}
	f1, err := b.Fc1.apply(b.Dev, n2, seq, b.Dm, b.Ff)
	if err != nil {
		return nil, err
	}
	a, err := b.Act.Forward(f1)
	if err != nil {
		return nil, err
	}
	f2, err := b.Fc2.apply(b.Dev, a, seq, b.Ff, b.Dm)
	if err != nil {
		return nil, err
	}
	b.lastSeq, b.lastN2, b.lastAct = seq, n2, a
	return b.residual(h, f2)
}

// Backward implements Module. The two residual connections make the
// gradient flow: dy reaches both the FF branch and (as a pass-through)
// h; the combined dh then reaches both the attention branch and (again
// as a pass-through) x.
func (b *TransformerBlock) Backward(dy *Tensor) (*Tensor, error) {
	seq := b.lastSeq
	// FF branch: y = h + Fc2(GELU(Fc1(LN2(h))))
	da, err := b.Fc2.backward(b.Dev, b.lastAct, dy, seq, b.Ff, b.Dm)
	if err != nil {
		return nil, err
	}
	df1, err := b.Act.Backward(da)
	if err != nil {
		return nil, err
	}
	dn2, err := b.Fc1.backward(b.Dev, b.lastN2, df1, seq, b.Dm, b.Ff)
	if err != nil {
		return nil, err
	}
	dhFF, err := b.Ln2.Backward(dn2)
	if err != nil {
		return nil, err
	}
	// dh = dy (residual) + FF-branch gradient
	dh, err := b.residual(dy, dhFF)
	if err != nil {
		return nil, err
	}
	// attention branch: h = x + Attn(LN1(x))
	dn1, err := b.Attn.Backward(dh)
	if err != nil {
		return nil, err
	}
	dxAttn, err := b.Ln1.Backward(dn1)
	if err != nil {
		return nil, err
	}
	return b.residual(dh, dxAttn)
}

// Params implements Module.
func (b *TransformerBlock) Params() []*Param {
	out := append(b.Ln1.Params(), b.Attn.Params()...)
	out = append(out, b.Ln2.Params()...)
	return append(out, b.Fc1.W, b.Fc1.B, b.Fc2.W, b.Fc2.B)
}

// ForwardCPU implements Module.
func (b *TransformerBlock) ForwardCPU(x []float32, shape []int) ([]float32, []int) {
	seq := shape[0]
	n1, _ := b.Ln1.ForwardCPU(x, shape)
	att, _ := b.Attn.ForwardCPU(n1, shape)
	h := ref.AddResidual(x, att)
	n2, _ := b.Ln2.ForwardCPU(h, shape)
	f1 := b.Fc1.applyCPU(n2, seq, b.Dm, b.Ff)
	a := ref.Gelu(f1)
	f2 := b.Fc2.applyCPU(a, seq, b.Ff, b.Dm)
	return ref.AddResidual(h, f2), shape
}

// Embedding gathers learned [Vocab, Dim] rows by token id. It is not a
// Module (its input is ids, not a float tensor); it exposes the same
// Forward/ForwardCPU differential contract directly.
type Embedding struct {
	Dev     *Device
	Vocab   int
	Dim     int
	Table   *Param
	lastIDs uint64
	lastN   int
}

// NewEmbedding builds a randomly initialised embedding table.
func NewEmbedding(dev *Device, rng *rand.Rand, vocab, dim int) (*Embedding, error) {
	w, err := dev.NewTensor(vocab, dim)
	if err != nil {
		return nil, err
	}
	w.RandInit(rng, 0.5)
	return &Embedding{Dev: dev, Vocab: vocab, Dim: dim,
		Table: &Param{W: w, Name: "embed.table"}}, nil
}

// ForwardDevice gathers n pre-uploaded u32 ids into a [n, Dim] tensor
// without any host-device synchronisation (stream-overlap safe).
func (e *Embedding) ForwardDevice(ids uint64, n int) (*Tensor, error) {
	y, err := e.Dev.NewTensor(n, e.Dim)
	if err != nil {
		return nil, err
	}
	if err := e.Dev.H.EmbeddingLookup(e.Table.W.Ptr, ids, y.Ptr, n, e.Dim); err != nil {
		return nil, err
	}
	e.lastIDs, e.lastN = ids, n
	return y, nil
}

// Backward scatter-adds dy into the table gradient by the cached token
// ids. The embedding consumes ids, not activations, so no input
// gradient is produced.
func (e *Embedding) Backward(dy *Tensor) error {
	if err := gradsRequired(e.Table); err != nil {
		return err
	}
	return e.Dev.H.EmbeddingBackward(dy.Ptr, e.lastIDs, e.Table.Grad.Ptr, e.lastN, e.Dim)
}

// Forward uploads the ids and gathers their embedding rows.
func (e *Embedding) Forward(ids []int32) (*Tensor, error) {
	if err := validateTokenIDs(ids, e.Vocab); err != nil {
		return nil, err
	}
	addr, err := e.Dev.UploadLabels(ids)
	if err != nil {
		return nil, err
	}
	return e.ForwardDevice(addr, len(ids))
}

// ForwardCPU is the host oracle of Forward.
func (e *Embedding) ForwardCPU(ids []int32) ([]float32, []int) {
	return ref.EmbeddingLookup(e.Table.W.ToHost(), ids, e.Dim), []int{len(ids), e.Dim}
}

// TransformerConfig sizes a TransformerEncoder.
type TransformerConfig struct {
	Layers int
	Heads  int
	DModel int
	FF     int
	Vocab  int
	MaxSeq int
}

// TransformerEncoder is a small N-layer pre-LN encoder: token embedding
// + learned positional embedding, Layers blocks, and a final LayerNorm.
type TransformerEncoder struct {
	Dev     *Device
	Cfg     TransformerConfig
	Embed   *Embedding
	Pos     *Param
	Blocks  []*TransformerBlock
	Final   *LayerNorm
	lastSeq int
}

// NewTransformerEncoder builds the model with deterministic rng-seeded
// weights.
func NewTransformerEncoder(dev *Device, rng *rand.Rand, cfg TransformerConfig) (*TransformerEncoder, error) {
	emb, err := NewEmbedding(dev, rng, cfg.Vocab, cfg.DModel)
	if err != nil {
		return nil, err
	}
	pos, err := dev.NewTensor(cfg.MaxSeq, cfg.DModel)
	if err != nil {
		return nil, err
	}
	pos.RandInit(rng, 0.1)
	enc := &TransformerEncoder{Dev: dev, Cfg: cfg, Embed: emb,
		Pos: &Param{W: pos, Name: "embed.pos"}}
	for i := 0; i < cfg.Layers; i++ {
		blk, err := NewTransformerBlock(dev, rng, cfg.Heads, cfg.DModel, cfg.FF)
		if err != nil {
			return nil, err
		}
		enc.Blocks = append(enc.Blocks, blk)
	}
	if enc.Final, err = NewLayerNorm(dev, cfg.DModel); err != nil {
		return nil, err
	}
	return enc, nil
}

// forwardDevice runs the encoder over pre-uploaded ids, launching only
// kernels (no synchronising copies), so it can ride a CUDA stream.
func (t *TransformerEncoder) forwardDevice(ids uint64, seq int) (*Tensor, error) {
	if seq > t.Cfg.MaxSeq {
		return nil, fmt.Errorf("torch: sequence length %d exceeds MaxSeq %d", seq, t.Cfg.MaxSeq)
	}
	e, err := t.Embed.ForwardDevice(ids, seq)
	if err != nil {
		return nil, err
	}
	x, err := t.Dev.NewTensor(seq, t.Cfg.DModel)
	if err != nil {
		return nil, err
	}
	// positional rows 0..seq-1 are the table prefix
	if err := t.Dev.H.ResidualAdd(e.Ptr, t.Pos.W.Ptr, x.Ptr, seq*t.Cfg.DModel); err != nil {
		return nil, err
	}
	for _, blk := range t.Blocks {
		if x, err = blk.Forward(x); err != nil {
			return nil, err
		}
	}
	t.lastSeq = seq
	return t.Final.Forward(x)
}

// Backward propagates dy (gradient of the final [seq, DModel]
// activation) through the final norm and every block in reverse, then
// accumulates the positional-table gradient prefix and scatter-adds the
// token gradient into the embedding table. Parameter gradients
// accumulate in place; run EnsureGrads once before the first call.
func (t *TransformerEncoder) Backward(dy *Tensor) error {
	if err := gradsRequired(t.Pos); err != nil {
		return err
	}
	seq := t.lastSeq
	dx, err := t.Final.Backward(dy)
	if err != nil {
		return err
	}
	for i := len(t.Blocks) - 1; i >= 0; i-- {
		if dx, err = t.Blocks[i].Backward(dx); err != nil {
			return err
		}
	}
	// x0 = embed + pos[:seq] — dx feeds both tables
	if err := t.Dev.H.AccumulateAdd(dx.Ptr, t.Pos.Grad.Ptr, seq*t.Cfg.DModel); err != nil {
		return err
	}
	return t.Embed.Backward(dx)
}

// Forward runs one sequence of token ids through the encoder and returns
// the [len(ids), DModel] activation tensor.
func (t *TransformerEncoder) Forward(ids []int32) (*Tensor, error) {
	if err := validateTokenIDs(ids, t.Cfg.Vocab); err != nil {
		return nil, err
	}
	addr, err := t.Dev.UploadLabels(ids)
	if err != nil {
		return nil, err
	}
	return t.forwardDevice(addr, len(ids))
}

// ForwardCPU is the host oracle of Forward.
func (t *TransformerEncoder) ForwardCPU(ids []int32) ([]float32, []int) {
	seq := len(ids)
	x, shape := t.Embed.ForwardCPU(ids)
	pos := t.Pos.W.ToHost()
	x = ref.AddResidual(x, pos[:seq*t.Cfg.DModel])
	for _, blk := range t.Blocks {
		x, shape = blk.ForwardCPU(x, shape)
	}
	x, shape = t.Final.ForwardCPU(x, shape)
	return x, shape
}

// ForwardBatch runs several sequences through the encoder. With
// concurrent=true each sequence's kernel chain is issued on its own CUDA
// stream (via the handle's SetStream, the cudnnSetStream analog) so the
// detailed timing model overlaps them; otherwise everything serialises
// on the default stream. All id uploads happen before the first launch —
// synchronous copies are device-synchronizing and would drain the
// streams. Returns the downloaded [seq, DModel] outputs in input order.
func (t *TransformerEncoder) ForwardBatch(batch [][]int32, concurrent bool) ([][]float32, error) {
	ctx := t.Dev.Ctx
	idBufs := make([]uint64, len(batch))
	for i, ids := range batch {
		if err := validateTokenIDs(ids, t.Cfg.Vocab); err != nil {
			return nil, err
		}
		addr, err := t.Dev.UploadLabels(ids)
		if err != nil {
			return nil, err
		}
		idBufs[i] = addr
	}
	outs := make([]*Tensor, len(batch))
	// the per-sequence streams are single-use; release their state (on
	// every path) so repeated batches do not accumulate stream bookkeeping
	var streams []cudart.Stream
	defer func() {
		for _, s := range streams {
			ctx.StreamDestroy(s)
		}
	}()
	for i, ids := range batch {
		s := cudart.DefaultStream
		if concurrent {
			s = ctx.StreamCreate()
			streams = append(streams, s)
		}
		t.Dev.H.SetStream(s)
		y, err := t.forwardDevice(idBufs[i], len(ids))
		if err != nil {
			t.Dev.H.SetStream(cudart.DefaultStream)
			return nil, err
		}
		outs[i] = y
	}
	t.Dev.H.SetStream(cudart.DefaultStream)
	if err := ctx.DeviceSynchronize(); err != nil {
		return nil, err
	}
	res := make([][]float32, len(batch))
	for i, y := range outs {
		res[i] = y.ToHost()
	}
	return res, nil
}

// Params returns every parameter of the encoder.
func (t *TransformerEncoder) Params() []*Param {
	out := []*Param{t.Embed.Table, t.Pos}
	for _, blk := range t.Blocks {
		out = append(out, blk.Params()...)
	}
	return append(out, t.Final.Params()...)
}
