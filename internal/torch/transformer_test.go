package torch_test

import (
	"math/rand"
	"testing"

	"repro/internal/torch"
)

// transformer module differential tests: simulated Forward vs the
// ForwardCPU host oracle for every new module, functional mode.

func randInput(rng *rand.Rand, n int) []float32 {
	x := make([]float32, n)
	for i := range x {
		x[i] = rng.Float32()*2 - 1
	}
	return x
}

func TestLayerNormForwardMatchesCPU(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(41))
	for _, c := range []struct{ rows, dim int }{{1, 1}, {3, 8}, {4, 33}} {
		ln, err := torch.NewLayerNorm(dev, c.dim)
		if err != nil {
			t.Fatal(err)
		}
		x := randInput(rng, c.rows*c.dim)
		moduleVsCPU(t, dev, ln, x, []int{c.rows, c.dim}, 1e-3)
	}
}

func TestGELUForwardMatchesCPU(t *testing.T) {
	dev := newDev(t)
	x := []float32{-6, -2, -0.5, -0.044715, 0, 0.25, 1, 3, 8}
	moduleVsCPU(t, dev, &torch.GELU{Dev: dev}, x, []int{1, len(x)}, 1e-4)
}

func TestMultiHeadAttentionForwardMatchesCPU(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(43))
	for _, c := range []struct{ seq, heads, dm int }{{1, 1, 4}, {6, 2, 8}, {5, 3, 15}} {
		attn, err := torch.NewMultiHeadAttention(dev, rng, c.heads, c.dm)
		if err != nil {
			t.Fatal(err)
		}
		x := randInput(rng, c.seq*c.dm)
		moduleVsCPU(t, dev, attn, x, []int{c.seq, c.dm}, 2e-3)
	}
}

func TestTransformerBlockForwardMatchesCPU(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(44))
	blk, err := torch.NewTransformerBlock(dev, rng, 2, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(rng, 5*8)
	moduleVsCPU(t, dev, blk, x, []int{5, 8}, 5e-3)
}

func TestEmbeddingForwardMatchesCPU(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(45))
	emb, err := torch.NewEmbedding(dev, rng, 11, 6)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int32{0, 10, 3, 3, 7}
	y, err := emb.Forward(ids)
	if err != nil {
		t.Fatal(err)
	}
	want, shape := emb.ForwardCPU(ids)
	if y.Count() != len(want) || shape[0] != len(ids) || shape[1] != 6 {
		t.Fatalf("shape mismatch: %v vs %v", y.Shape, shape)
	}
	got := y.ToHost()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("embedding[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTransformerEncoderForwardMatchesCPU(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(46))
	enc, err := torch.NewTransformerEncoder(dev, rng, torch.TransformerConfig{
		Layers: 2, Heads: 2, DModel: 8, FF: 16, Vocab: 17, MaxSeq: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := []int32{1, 16, 4, 9, 0, 2}
	y, err := enc.Forward(ids)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := enc.ForwardCPU(ids)
	got := y.ToHost()
	if len(got) != len(want) {
		t.Fatalf("output size %d, oracle %d", len(got), len(want))
	}
	for i := range want {
		d := got[i] - want[i]
		if d < -5e-3 || d > 5e-3 {
			t.Fatalf("encoder mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if got := len(enc.Params()); got == 0 {
		t.Fatal("encoder reports no parameters")
	}
}

// TestTransformerForwardBatchRepeats runs several concurrent batches on
// one encoder: per-batch streams are single-use (destroyed after the
// drain), so repeated inference must keep working and stay stable.
func TestTransformerForwardBatchRepeats(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(48))
	enc, err := torch.NewTransformerEncoder(dev, rng, torch.TransformerConfig{
		Layers: 1, Heads: 2, DModel: 8, FF: 16, Vocab: 13, MaxSeq: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := [][]int32{{1, 5, 9}, {12, 0, 3}}
	first, err := enc.ForwardBatch(batch, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := enc.ForwardBatch(batch, true)
		if err != nil {
			t.Fatalf("repeat %d: %v", i, err)
		}
		for s := range got {
			for j := range got[s] {
				if got[s][j] != first[s][j] {
					t.Fatalf("repeat %d seq %d: output drifted at %d", i, s, j)
				}
			}
		}
	}
}

// TestTransformerRejectsBadTokenIDs pins the host-side bounds check: the
// gather kernel itself has none, so out-of-range ids must fail fast.
func TestTransformerRejectsBadTokenIDs(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(49))
	emb, err := torch.NewEmbedding(dev, rng, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := torch.NewTransformerEncoder(dev, rng, torch.TransformerConfig{
		Layers: 1, Heads: 1, DModel: 4, FF: 8, Vocab: 7, MaxSeq: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ids := range [][]int32{{7}, {-1}, {0, 99}} {
		if _, err := emb.Forward(ids); err == nil {
			t.Fatalf("Embedding.Forward accepted out-of-range ids %v", ids)
		}
		if _, err := enc.Forward(ids); err == nil {
			t.Fatalf("Encoder.Forward accepted out-of-range ids %v", ids)
		}
		if _, err := enc.ForwardBatch([][]int32{ids}, true); err == nil {
			t.Fatalf("ForwardBatch accepted out-of-range ids %v", ids)
		}
	}
}

// TestTransformerBackwardRequiresGrads pins the lazy-gradient contract:
// modules with parameters refuse Backward until EnsureGrads has
// allocated their gradient buffers, instead of scribbling on nil
// pointers.
func TestTransformerBackwardRequiresGrads(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(47))
	ln, err := torch.NewLayerNorm(dev, 4)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := torch.NewTransformerBlock(dev, rng, 1, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dev.FromHost(randInput(rng, 2*4), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []torch.Module{ln, blk} {
		if _, err := m.Forward(x); err != nil {
			t.Fatalf("%T.Forward: %v", m, err)
		}
		if _, err := m.Backward(x); err == nil {
			t.Fatalf("%T.Backward without gradient buffers did not error", m)
		}
	}
	// EnsureGrads unlocks training on the same modules
	for _, m := range []torch.Module{ln, blk} {
		if err := torch.EnsureGrads(dev, m.Params()); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Backward(x); err != nil {
			t.Fatalf("%T.Backward after EnsureGrads: %v", m, err)
		}
	}
}
