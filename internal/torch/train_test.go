package torch_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/torch"
)

// Training-step differential tests: the device TrainStep (train-module
// kernels end to end) against the independent CPUTrainState host
// mirror, loss trajectory and post-step weights both.

func trainIDs(rng *rand.Rand, seq, vocab int) []int32 {
	ids := make([]int32, seq)
	for i := range ids {
		ids[i] = int32(rng.Intn(vocab))
	}
	return ids
}

func TestTrainStepMatchesCPUOracle(t *testing.T) {
	dev := newDev(t)
	cfg := torch.TransformerConfig{Layers: 2, Heads: 2, DModel: 16, FF: 32, Vocab: 29, MaxSeq: 8}
	model, err := torch.NewTransformerEncoder(dev, rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const lr = 0.05
	tr, err := torch.NewTransformerTrainer(dev, model, lr)
	if err != nil {
		t.Fatal(err)
	}
	cpu := torch.NewCPUTrainState(model)

	rng := rand.New(rand.NewSource(8))
	const steps = 4
	var prev float32
	for step := 0; step < steps; step++ {
		ids := trainIDs(rng, cfg.MaxSeq, cfg.Vocab)
		devLoss, err := tr.TrainStep(ids)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		cpuLoss := cpu.TrainStep(ids, lr)
		if d := math.Abs(float64(devLoss - cpuLoss)); d > 2e-2 {
			t.Fatalf("step %d: device loss %g vs cpu %g (diff %g)", step, devLoss, cpuLoss, d)
		}
		if devLoss != devLoss {
			t.Fatalf("step %d: NaN loss", step)
		}
		if step > 0 && step == steps-1 && devLoss >= prev+0.5 {
			t.Fatalf("loss diverging: step %d %g after %g", step, devLoss, prev)
		}
		prev = devLoss
	}

	// post-training weights must track the mirror element-wise: same
	// gradients flowed through both paths every step
	for i, p := range model.Params() {
		got := p.W.ToHost()
		want := cpu.ParamSnapshot(i)
		if len(got) != len(want) {
			t.Fatalf("param %d (%s): length %d vs %d", i, p.Name, len(got), len(want))
		}
		var maxd float64
		for j := range got {
			if d := math.Abs(float64(got[j] - want[j])); d > maxd {
				maxd = d
			}
		}
		if maxd > 5e-2 {
			t.Fatalf("param %d (%s): max weight drift %g after %d steps", i, p.Name, maxd, steps)
		}
	}
}

func TestBackwardWithoutGradsFailsLoudly(t *testing.T) {
	dev := newDev(t)
	cfg := torch.TransformerConfig{Layers: 1, Heads: 1, DModel: 8, FF: 16, Vocab: 11, MaxSeq: 4}
	model, err := torch.NewTransformerEncoder(dev, rand.New(rand.NewSource(9)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	y, err := model.Forward([]int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// no EnsureGrads: Backward must refuse, not scribble on nil buffers
	err = model.Backward(y)
	if err == nil || !strings.Contains(err.Error(), "no gradient buffer") {
		t.Fatalf("Backward without grads = %v, want gradient-buffer error", err)
	}
}

// TestSGDStepPartialState pins the documented mid-loop failure contract:
// a poisoned parameter stops the step at its index, the error names the
// parameter, and parameters before it HAVE been updated while those
// after it have not.
func TestSGDStepPartialState(t *testing.T) {
	dev := newDev(t)
	mk := func(val float32) *torch.Param {
		w, err := dev.FromHost([]float32{val, val}, 2)
		if err != nil {
			t.Fatal(err)
		}
		g, err := dev.FromHost([]float32{1, 1}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return &torch.Param{W: w, Grad: g, Name: "p"}
	}
	p0, p2 := mk(1), mk(3)
	p0.Name, p2.Name = "first", "third"
	// poisoned: gradient buffer never allocated
	w1, err := dev.FromHost([]float32{2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p1 := &torch.Param{W: w1, Name: "poisoned"}

	opt := &torch.SGD{Dev: dev, LR: 0.5, Params: []*torch.Param{p0, p1, p2}}
	err = opt.Step()
	if err == nil {
		t.Fatal("step with poisoned param succeeded")
	}
	for _, want := range []string{"param 1", "poisoned", "0..0 already updated"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	if got := p0.W.ToHost(); got[0] != 0.5 {
		t.Fatalf("param before failure not updated: %v (want w -= lr*g = 0.5)", got)
	}
	if got := p2.W.ToHost(); got[0] != 3 {
		t.Fatalf("param after failure was touched: %v (want untouched 3)", got)
	}
}
