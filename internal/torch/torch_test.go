package torch_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cudnn"
	"repro/internal/exec"
	"repro/internal/ref"
	"repro/internal/torch"
)

func newDev(t *testing.T) *torch.Device {
	t.Helper()
	dev, err := torch.NewDevice(exec.BugSet{})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestTensorRoundTrip(t *testing.T) {
	dev := newDev(t)
	data := []float32{1.5, -2.25, 0, 3, 42, -0.125}
	x, err := dev.FromHost(data, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if x.Count() != 6 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(5) != 1 {
		t.Fatalf("shape bookkeeping wrong: count=%d dims=%v", x.Count(), x.Shape)
	}
	got := x.ToHost()
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, got[i], data[i])
		}
	}
	x.Free()
	if x.Ptr != 0 {
		t.Fatal("Free did not clear the pointer")
	}
	x.Free() // double free must be a no-op
}

func TestTensorZerosAndShapeMismatch(t *testing.T) {
	dev := newDev(t)
	z, err := dev.Zeros(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range z.ToHost() {
		if v != 0 {
			t.Fatalf("Zeros[%d] = %v", i, v)
		}
	}
	if _, err := dev.FromHost([]float32{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("FromHost accepted mismatched shape")
	}
}

func TestUploadLabels(t *testing.T) {
	dev := newDev(t)
	labels := []int32{3, 0, 9, 1}
	addr, err := dev.UploadLabels(labels)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*len(labels))
	dev.Ctx.MemcpyDtoH(buf, addr)
	for i, want := range labels {
		got := int32(uint32(buf[4*i]) | uint32(buf[4*i+1])<<8 | uint32(buf[4*i+2])<<16 | uint32(buf[4*i+3])<<24)
		if got != want {
			t.Fatalf("label %d = %d, want %d", i, got, want)
		}
	}
}

// moduleVsCPU runs a module's device Forward against its ForwardCPU
// oracle on the same input and compares elementwise.
func moduleVsCPU(t *testing.T, dev *torch.Device, m torch.Module, x []float32, shape []int, tol float32) {
	t.Helper()
	xt, err := dev.FromHost(x, shape...)
	if err != nil {
		t.Fatal(err)
	}
	yt, err := m.Forward(xt)
	if err != nil {
		t.Fatal(err)
	}
	got := yt.ToHost()
	want, wantShape := m.ForwardCPU(x, shape)
	if len(got) != len(want) {
		t.Fatalf("output size %d, oracle %d (shape %v)", len(got), len(want), wantShape)
	}
	n := 1
	for _, d := range wantShape {
		n *= d
	}
	if n != len(want) {
		t.Fatalf("oracle shape %v inconsistent with %d elements", wantShape, len(want))
	}
	for i := range got {
		d := got[i] - want[i]
		if d < -tol || d > tol {
			t.Fatalf("device/CPU mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestConv2dForwardMatchesCPU(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(11))
	conv, err := torch.NewConv2d(dev, rng, 2, 3, 3, 1, 1,
		cudnn.FwdAlgoImplicitGemm, cudnn.BwdDataAlgo0, cudnn.BwdFilterAlgo1)
	if err != nil {
		t.Fatal(err)
	}
	shape := []int{1, 2, 8, 8}
	x := make([]float32, 2*8*8)
	for i := range x {
		x[i] = rng.Float32() - 0.5
	}
	moduleVsCPU(t, dev, conv, x, shape, 1e-4)
}

func TestReLUForwardMatchesCPU(t *testing.T) {
	dev := newDev(t)
	x := []float32{-2, -0.5, 0, 0.5, 2, -3, 7, 0.25}
	moduleVsCPU(t, dev, &torch.ReLU{Dev: dev}, x, []int{1, 2, 2, 2}, 0)
}

func TestMaxPool2dForwardMatchesCPU(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(5))
	x := make([]float32, 1*2*8*8)
	for i := range x {
		x[i] = rng.Float32()*4 - 2
	}
	moduleVsCPU(t, dev, &torch.MaxPool2d{Dev: dev, Window: 2, Stride: 2}, x, []int{1, 2, 8, 8}, 0)
}

func TestLinearForwardMatchesCPU(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(3))
	lin, err := torch.NewLinear(dev, rng, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 2*12)
	for i := range x {
		x[i] = rng.Float32() - 0.5
	}
	moduleVsCPU(t, dev, lin, x, []int{2, 12}, 1e-4)
}

func TestSequentialForwardMatchesCPU(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(17))
	conv, err := torch.NewConv2d(dev, rng, 1, 2, 3, 1, 1,
		cudnn.FwdAlgoImplicitGemm, cudnn.BwdDataAlgo0, cudnn.BwdFilterAlgo1)
	if err != nil {
		t.Fatal(err)
	}
	net := &torch.Sequential{Mods: []torch.Module{
		conv,
		&torch.ReLU{Dev: dev},
		&torch.MaxPool2d{Dev: dev, Window: 2, Stride: 2},
		&torch.Flatten{},
	}}
	x := make([]float32, 6*6)
	for i := range x {
		x[i] = rng.Float32() - 0.5
	}
	moduleVsCPU(t, dev, net, x, []int{1, 1, 6, 6}, 1e-4)
	if got := len(net.Params()); got != 2 {
		t.Fatalf("Sequential.Params returned %d params, want 2 (conv weight+bias)", got)
	}
}

// TestLinearBackwardGradients checks dW and db of a linear layer against
// finite references computed directly from the definition.
func TestLinearBackwardGradients(t *testing.T) {
	dev := newDev(t)
	rng := rand.New(rand.NewSource(29))
	lin, err := torch.NewLinear(dev, rng, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 2
	x := make([]float32, rows*4)
	dy := make([]float32, rows*3)
	for i := range x {
		x[i] = rng.Float32() - 0.5
	}
	for i := range dy {
		dy[i] = rng.Float32() - 0.5
	}
	xt, _ := dev.FromHost(x, rows, 4)
	if _, err := lin.Forward(xt); err != nil {
		t.Fatal(err)
	}
	dyt, _ := dev.FromHost(dy, rows, 3)
	dxt, err := lin.Backward(dyt)
	if err != nil {
		t.Fatal(err)
	}
	w := lin.Weight.W.ToHost() // [In, Out]

	// dx[n,i] = sum_j w[i,j] * dy[n,j]
	dx := dxt.ToHost()
	for n := 0; n < rows; n++ {
		for i := 0; i < 4; i++ {
			var want float32
			for j := 0; j < 3; j++ {
				want += w[i*3+j] * dy[n*3+j]
			}
			if d := dx[n*4+i] - want; d < -1e-4 || d > 1e-4 {
				t.Fatalf("dx[%d,%d] = %v, want %v", n, i, dx[n*4+i], want)
			}
		}
	}
	// dW[i,j] = sum_n x[n,i] * dy[n,j]
	dw := lin.Weight.Grad.ToHost()
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			var want float32
			for n := 0; n < rows; n++ {
				want += x[n*4+i] * dy[n*3+j]
			}
			if d := dw[i*3+j] - want; d < -1e-4 || d > 1e-4 {
				t.Fatalf("dW[%d,%d] = %v, want %v", i, j, dw[i*3+j], want)
			}
		}
	}
	// db[j] = sum_n dy[n,j]
	db := lin.Bias.Grad.ToHost()
	for j := 0; j < 3; j++ {
		want := dy[j] + dy[3+j]
		if d := db[j] - want; d < -1e-4 || d > 1e-4 {
			t.Fatalf("db[%d] = %v, want %v", j, db[j], want)
		}
	}
}

// TestSGDStep checks the update rule w -= lr*g and gradient zeroing.
func TestSGDStep(t *testing.T) {
	dev := newDev(t)
	w, _ := dev.FromHost([]float32{1, 2, 3, 4}, 4)
	g, _ := dev.FromHost([]float32{0.5, -0.5, 1, 0}, 4)
	p := &torch.Param{W: w, Grad: g, Name: "p"}
	opt := &torch.SGD{Dev: dev, LR: 0.1, Params: []*torch.Param{p}}
	if err := opt.Step(); err != nil {
		t.Fatal(err)
	}
	want := []float32{0.95, 2.05, 2.9, 4}
	got := w.ToHost()
	for i := range want {
		if d := got[i] - want[i]; d < -1e-6 || d > 1e-6 {
			t.Fatalf("w[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for i, v := range g.ToHost() {
		if v != 0 {
			t.Fatalf("grad[%d] = %v after Step, want 0", i, v)
		}
	}
}

// TestSoftmaxNLLHead checks probabilities, loss and gradient of the
// fused head against internal/ref.
func TestSoftmaxNLLHead(t *testing.T) {
	dev := newDev(t)
	logits := []float32{2, 1, 0.1, -1, 0, 1}
	labels := []int32{0, 2}
	x, _ := dev.FromHost(logits, 2, 3)
	head := &torch.SoftmaxNLL{Dev: dev}
	y, loss, err := head.Forward(x, labels)
	if err != nil {
		t.Fatal(err)
	}
	wantY := ref.Softmax(logits, 2, 3)
	gotY := y.ToHost()
	for i := range wantY {
		if d := gotY[i] - wantY[i]; d < -1e-5 || d > 1e-5 {
			t.Fatalf("prob[%d] = %v, want %v", i, gotY[i], wantY[i])
		}
	}
	wantLoss := ref.NLLLoss(wantY, labels, 2, 3)
	if d := float64(loss - wantLoss); math.Abs(d) > 1e-5 {
		t.Fatalf("loss = %v, want %v", loss, wantLoss)
	}
	dx, err := head.Backward()
	if err != nil {
		t.Fatal(err)
	}
	wantDx := ref.SoftmaxNLLBackward(wantY, labels, 2, 3)
	for i, v := range dx.ToHost() {
		if d := v - wantDx[i]; d < -1e-5 || d > 1e-5 {
			t.Fatalf("dx[%d] = %v, want %v", i, v, wantDx[i])
		}
	}
}
