package torch

// KV-cached autoregressive decoder. TransformerDecoder reuses the
// encoder's weights and blocks but runs them causally: Prefill pushes the
// whole prompt through once (bulk-appending each layer's K/V into the
// cache), then every DecodeStep feeds back the previously generated token
// and attends over the growing cache with single-token GEMV kernels.
// Greedy argmax runs on the device and writes the chosen token id
// directly into the session's id buffer, so a whole generate chain is one
// long kernel sequence with no host round-trips — hundreds of tiny
// dependent launches per sequence, the regime the paper flags as the
// cycle-level simulator's worst case.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cudart"
	"repro/internal/ref"
)

// TransformerDecoder is a causal view over the encoder weights: the same
// seed builds bit-identical parameters for both.
type TransformerDecoder struct {
	*TransformerEncoder
}

// NewTransformerDecoder builds the model with deterministic rng-seeded
// weights (identical to NewTransformerEncoder for the same seed).
func NewTransformerDecoder(dev *Device, rng *rand.Rand, cfg TransformerConfig) (*TransformerDecoder, error) {
	enc, err := NewTransformerEncoder(dev, rng, cfg)
	if err != nil {
		return nil, err
	}
	return &TransformerDecoder{TransformerEncoder: enc}, nil
}

// KVCacheBytes returns the modelled device footprint of one sequence's
// full KV cache: per layer a K and a V tensor of [Heads, MaxSeq, dh]
// float32 — the quantity the serving layer's admission control budgets.
func KVCacheBytes(cfg TransformerConfig) int {
	return cfg.Layers * 2 * cfg.MaxSeq * cfg.DModel * 4
}

// layerKV is one layer's K and V cache, head-major [Heads, MaxSeq, dh].
type layerKV struct {
	K *Tensor
	V *Tensor
}

// DecodeSession is one sequence's decode state: the per-layer KV caches,
// a device id buffer of MaxSeq+1 u32 slots (prompt, then generated
// tokens appended in place by the argmax kernel), and the cache length.
type DecodeSession struct {
	dec       *TransformerDecoder
	cache     []layerKV
	ids       uint64 // device u32 buffer, MaxSeq+1 entries
	Len       int    // cached positions (== consumed tokens)
	PromptLen int
	Generated int
}

// NewSession allocates the KV caches and uploads the prompt. The upload
// is a synchronous copy, so sessions must be created at an idle point,
// not in the middle of an asynchronous kernel chain.
func (d *TransformerDecoder) NewSession(prompt []int32) (*DecodeSession, error) {
	cfg := d.Cfg
	if len(prompt) < 1 {
		return nil, fmt.Errorf("torch: decode prompt must have at least 1 token")
	}
	if len(prompt) > cfg.MaxSeq {
		return nil, fmt.Errorf("torch: prompt length %d exceeds MaxSeq %d", len(prompt), cfg.MaxSeq)
	}
	if err := validateTokenIDs(prompt, cfg.Vocab); err != nil {
		return nil, err
	}
	dh := cfg.DModel / cfg.Heads
	s := &DecodeSession{dec: d, PromptLen: len(prompt)}
	for i := 0; i < cfg.Layers; i++ {
		k, err := d.Dev.Zeros(cfg.Heads, cfg.MaxSeq, dh)
		if err != nil {
			return nil, err
		}
		v, err := d.Dev.Zeros(cfg.Heads, cfg.MaxSeq, dh)
		if err != nil {
			return nil, err
		}
		s.cache = append(s.cache, layerKV{K: k, V: v})
	}
	addr, err := d.Dev.Ctx.Malloc(uint64(4 * (cfg.MaxSeq + 1)))
	if err != nil {
		return nil, err
	}
	s.ids = addr
	buf := make([]byte, 4*len(prompt))
	for i, id := range prompt {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(id))
	}
	d.Dev.Ctx.MemcpyHtoD(addr, buf)
	return s, nil
}

// Allocations returns the session's device addresses — the per-layer
// K/V caches and the id buffer. The serving layer excludes these from
// its per-iteration transient frees while the session is resident in
// the batch.
func (s *DecodeSession) Allocations() []uint64 {
	var out []uint64
	for _, kv := range s.cache {
		out = append(out, kv.K.Ptr, kv.V.Ptr)
	}
	if s.ids != 0 {
		out = append(out, s.ids)
	}
	return out
}

// Free releases the session's device memory.
func (s *DecodeSession) Free() {
	for _, kv := range s.cache {
		kv.K.Free()
		kv.V.Free()
	}
	s.cache = nil
	if s.ids != 0 {
		_ = s.dec.Dev.Ctx.Free(s.ids)
		s.ids = 0
	}
}

// Tokens downloads the generated token ids. The caller must have drained
// the device (DeviceSynchronize) first.
func (s *DecodeSession) Tokens() []int32 {
	buf := make([]byte, 4*s.Generated)
	s.dec.Dev.Ctx.MemcpyDtoH(buf, s.ids+uint64(4*s.PromptLen))
	out := make([]int32, s.Generated)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out
}

// PrefillStep issues the prompt's full kernel chain on the handle's
// current stream: causal forward over all prompt tokens, bulk KV append
// per layer, then logit GEMV + argmax producing the first generated
// token. Issue-only — no synchronisation.
func (d *TransformerDecoder) PrefillStep(s *DecodeSession) error {
	if s.Len != 0 {
		return fmt.Errorf("torch: prefill on a session with %d cached positions", s.Len)
	}
	if err := d.stepDevice(s, s.PromptLen, 0); err != nil {
		return err
	}
	s.Len = s.PromptLen
	s.Generated = 1
	return nil
}

// DecodeStep issues one decode iteration: it consumes the most recently
// generated token (already in the device id buffer), extends every
// layer's KV cache by one position and writes the next token id. Issue-
// only — no synchronisation.
func (d *TransformerDecoder) DecodeStep(s *DecodeSession) error {
	if s.Len == 0 {
		return fmt.Errorf("torch: decode step before prefill")
	}
	if s.Len >= d.Cfg.MaxSeq {
		return fmt.Errorf("torch: KV cache full (%d positions)", s.Len)
	}
	if err := d.stepDevice(s, 1, s.Len); err != nil {
		return err
	}
	s.Len++
	s.Generated++
	return nil
}

// stepDevice runs seq tokens at positions pos..pos+seq-1 through the
// causal blocks and writes argmax(logits of the last row) to
// ids[pos+seq].
func (d *TransformerDecoder) stepDevice(s *DecodeSession, seq, pos int) error {
	cfg := d.Cfg
	dm := cfg.DModel
	e, err := d.Embed.ForwardDevice(s.ids+uint64(4*pos), seq)
	if err != nil {
		return err
	}
	x, err := d.Dev.NewTensor(seq, dm)
	if err != nil {
		return err
	}
	// positional rows pos..pos+seq-1
	if err := d.Dev.H.ResidualAdd(e.Ptr, d.Pos.W.Ptr+uint64(4*pos*dm), x.Ptr, seq*dm); err != nil {
		return err
	}
	for i, blk := range d.Blocks {
		if x, err = blk.forwardCausal(x, s.cache[i], pos, cfg.MaxSeq); err != nil {
			return err
		}
	}
	if x, err = d.Final.Forward(x); err != nil {
		return err
	}
	logits, err := d.Dev.NewTensor(cfg.Vocab)
	if err != nil {
		return err
	}
	lastRow := x.Ptr + uint64(4*(seq-1)*dm)
	if err := d.Dev.H.LogitGemv(lastRow, d.Embed.Table.W.Ptr, logits.Ptr, cfg.Vocab, dm); err != nil {
		return err
	}
	return d.Dev.H.ArgmaxU32(logits.Ptr, cfg.Vocab, s.ids, pos+seq)
}

// forwardCausal is TransformerBlock.Forward with cached causal attention.
func (b *TransformerBlock) forwardCausal(x *Tensor, kv layerKV, pos, maxSeq int) (*Tensor, error) {
	seq := x.Dim(0)
	n1, err := b.Ln1.Forward(x)
	if err != nil {
		return nil, err
	}
	att, err := b.Attn.ForwardCached(n1, kv, pos, maxSeq)
	if err != nil {
		return nil, err
	}
	h, err := b.residual(x, att)
	if err != nil {
		return nil, err
	}
	n2, err := b.Ln2.Forward(h)
	if err != nil {
		return nil, err
	}
	f1, err := b.Fc1.apply(b.Dev, n2, seq, b.Dm, b.Ff)
	if err != nil {
		return nil, err
	}
	a, err := b.Act.Forward(f1)
	if err != nil {
		return nil, err
	}
	f2, err := b.Fc2.apply(b.Dev, a, seq, b.Ff, b.Dm)
	if err != nil {
		return nil, err
	}
	return b.residual(h, f2)
}

// ForwardCached is causal self-attention over x[seq, DModel] with the
// layer's KV cache holding pos earlier positions: K/V projections of x
// are appended at rows pos..pos+seq-1, then each query row attends over
// the cache prefix. seq==1 (a decode step) takes the GEMV path — no head
// permutes, scores and context are single-token products against the
// cache; seq>1 (prefill) batches the same computation through the
// strided GEMMs at cache stride MaxSeq·dh.
func (m *MultiHeadAttention) ForwardCached(x *Tensor, kv layerKV, pos, maxSeq int) (*Tensor, error) {
	seq := x.Dim(0)
	dm := m.DModel
	dh := dm / m.Heads
	cacheLen := pos + seq
	if cacheLen > maxSeq {
		return nil, fmt.Errorf("torch: cache length %d exceeds maxSeq %d", cacheLen, maxSeq)
	}
	h := m.Dev.H

	q, err := m.Wq.apply(m.Dev, x, seq, dm, dm)
	if err != nil {
		return nil, err
	}
	k, err := m.Wk.apply(m.Dev, x, seq, dm, dm)
	if err != nil {
		return nil, err
	}
	v, err := m.Wv.apply(m.Dev, x, seq, dm, dm)
	if err != nil {
		return nil, err
	}
	if err := h.KVCacheAppend(k.Ptr, kv.K.Ptr, seq, m.Heads, dh, maxSeq, pos); err != nil {
		return nil, err
	}
	if err := h.KVCacheAppend(v.Ptr, kv.V.Ptr, seq, m.Heads, dh, maxSeq, pos); err != nil {
		return nil, err
	}
	scale := float32(1 / math.Sqrt(float64(dh)))

	if seq == 1 {
		// decode step: [1, Heads*dh] is already [Heads, 1, dh]
		scores, err := m.Dev.NewTensor(m.Heads, cacheLen)
		if err != nil {
			return nil, err
		}
		if err := h.AttnScoresCached(q.Ptr, kv.K.Ptr, scores.Ptr, m.Heads, dh, maxSeq, cacheLen, scale); err != nil {
			return nil, err
		}
		probs, err := m.Dev.NewTensor(m.Heads, cacheLen)
		if err != nil {
			return nil, err
		}
		if err := h.SoftmaxCausalForward(scores.Ptr, probs.Ptr, m.Heads, cacheLen, 1, cacheLen-1); err != nil {
			return nil, err
		}
		ctx, err := m.Dev.NewTensor(1, dm)
		if err != nil {
			return nil, err
		}
		if err := h.AttnContextCached(probs.Ptr, kv.V.Ptr, ctx.Ptr, m.Heads, dh, maxSeq, cacheLen); err != nil {
			return nil, err
		}
		return m.Wo.apply(m.Dev, ctx, 1, dm, dm)
	}

	qh, err := m.Dev.NewTensor(m.Heads, seq, dh)
	if err != nil {
		return nil, err
	}
	if err := h.SplitHeads(q.Ptr, qh.Ptr, seq, m.Heads, dh); err != nil {
		return nil, err
	}
	scores, err := m.Dev.NewTensor(m.Heads, seq, cacheLen)
	if err != nil {
		return nil, err
	}
	if err := h.GemmNTStridedBatched(qh.Ptr, kv.K.Ptr, scores.Ptr,
		seq, cacheLen, dh, seq*dh, maxSeq*dh, seq*cacheLen, m.Heads, scale, 0); err != nil {
		return nil, err
	}
	probs, err := m.Dev.NewTensor(m.Heads, seq, cacheLen)
	if err != nil {
		return nil, err
	}
	if err := h.SoftmaxCausalForward(scores.Ptr, probs.Ptr, m.Heads*seq, cacheLen, seq, pos); err != nil {
		return nil, err
	}
	ctxh, err := m.Dev.NewTensor(m.Heads, seq, dh)
	if err != nil {
		return nil, err
	}
	if err := h.GemmStridedBatched(probs.Ptr, kv.V.Ptr, ctxh.Ptr,
		seq, dh, cacheLen, seq*cacheLen, maxSeq*dh, seq*dh, m.Heads, 1, 0); err != nil {
		return nil, err
	}
	merged, err := m.Dev.NewTensor(seq, dm)
	if err != nil {
		return nil, err
	}
	if err := h.MergeHeads(ctxh.Ptr, merged.Ptr, seq, m.Heads, dh); err != nil {
		return nil, err
	}
	return m.Wo.apply(m.Dev, merged, seq, dm, dm)
}

// Generate runs the full greedy decode serially on the handle's current
// stream: prefill the prompt, then n-1 decode steps, drain, and return
// the n generated token ids. The prompt plus generated tokens must fit
// the cache: len(prompt)+n-1 <= MaxSeq.
func (d *TransformerDecoder) Generate(prompt []int32, n int) ([]int32, error) {
	if n < 1 {
		return nil, fmt.Errorf("torch: generate count %d < 1", n)
	}
	if len(prompt)+n-1 > d.Cfg.MaxSeq {
		return nil, fmt.Errorf("torch: prompt %d + %d generated tokens exceed MaxSeq %d",
			len(prompt), n, d.Cfg.MaxSeq)
	}
	s, err := d.NewSession(prompt)
	if err != nil {
		return nil, err
	}
	defer s.Free()
	if err := d.PrefillStep(s); err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		if err := d.DecodeStep(s); err != nil {
			return nil, err
		}
	}
	if err := d.Dev.Ctx.DeviceSynchronize(); err != nil {
		return nil, err
	}
	return s.Tokens(), nil
}

// GenerateBatch greedy-decodes several prompts for n tokens each. With
// concurrent=true each sequence's whole prefill+decode kernel chain is
// issued on its own CUDA stream (the ForwardBatch overlap contract);
// otherwise everything serialises on the default stream. Sessions are
// created (synchronous uploads) before the first launch.
func (d *TransformerDecoder) GenerateBatch(prompts [][]int32, n int, concurrent bool) ([][]int32, error) {
	if n < 1 {
		return nil, fmt.Errorf("torch: generate count %d < 1", n)
	}
	ctx := d.Dev.Ctx
	sessions := make([]*DecodeSession, len(prompts))
	defer func() {
		for _, s := range sessions {
			if s != nil {
				s.Free()
			}
		}
	}()
	for i, p := range prompts {
		if len(p)+n-1 > d.Cfg.MaxSeq {
			return nil, fmt.Errorf("torch: prompt %d + %d generated tokens exceed MaxSeq %d",
				len(p), n, d.Cfg.MaxSeq)
		}
		s, err := d.NewSession(p)
		if err != nil {
			return nil, err
		}
		sessions[i] = s
	}
	var streams []cudart.Stream
	defer func() {
		for _, s := range streams {
			ctx.StreamDestroy(s)
		}
	}()
	for i := range sessions {
		st := cudart.DefaultStream
		if concurrent {
			st = ctx.StreamCreate()
			streams = append(streams, st)
		}
		d.Dev.H.SetStream(st)
		err := d.PrefillStep(sessions[i])
		for j := 1; err == nil && j < n; j++ {
			err = d.DecodeStep(sessions[i])
		}
		if err != nil {
			d.Dev.H.SetStream(cudart.DefaultStream)
			return nil, err
		}
	}
	d.Dev.H.SetStream(cudart.DefaultStream)
	if err := ctx.DeviceSynchronize(); err != nil {
		return nil, err
	}
	outs := make([][]int32, len(prompts))
	for i, s := range sessions {
		outs[i] = s.Tokens()
	}
	return outs, nil
}

// ForwardCPU is the host oracle of the causal forward: the encoder
// pipeline with causally masked attention. Returns the [len(ids),
// DModel] final activations.
func (d *TransformerDecoder) ForwardCPU(ids []int32) ([]float32, []int) {
	seq := len(ids)
	dm := d.Cfg.DModel
	x, _ := d.Embed.ForwardCPU(ids)
	pos := d.Pos.W.ToHost()
	x = ref.AddResidual(x, pos[:seq*dm])
	for _, blk := range d.Blocks {
		x = blk.forwardCausalCPU(x, seq)
	}
	x, shape := d.Final.ForwardCPU(x, []int{seq, dm})
	return x, shape
}

// forwardCausalCPU mirrors forwardCausal on the host.
func (b *TransformerBlock) forwardCausalCPU(x []float32, seq int) []float32 {
	shape := []int{seq, b.Dm}
	n1, _ := b.Ln1.ForwardCPU(x, shape)
	att := b.Attn.forwardCausalCPU(n1, seq)
	h := ref.AddResidual(x, att)
	n2, _ := b.Ln2.ForwardCPU(h, shape)
	f1 := b.Fc1.applyCPU(n2, seq, b.Dm, b.Ff)
	a := ref.Gelu(f1)
	f2 := b.Fc2.applyCPU(a, seq, b.Ff, b.Dm)
	return ref.AddResidual(h, f2)
}

// forwardCausalCPU mirrors ForwardCached (from an empty cache) on the
// host: per-head causal attention over the full sequence.
func (m *MultiHeadAttention) forwardCausalCPU(x []float32, seq int) []float32 {
	dm := m.DModel
	dh := dm / m.Heads
	q := ref.SplitHeads(m.Wq.applyCPU(x, seq, dm, dm), seq, m.Heads, dh)
	k := ref.SplitHeads(m.Wk.applyCPU(x, seq, dm, dm), seq, m.Heads, dh)
	v := ref.SplitHeads(m.Wv.applyCPU(x, seq, dm, dm), seq, m.Heads, dh)
	scale := float32(1 / math.Sqrt(float64(dh)))
	ctxh := make([]float32, m.Heads*seq*dh)
	for hh := 0; hh < m.Heads; hh++ {
		scores := make([]float32, seq*seq)
		ref.GemmNT(q[hh*seq*dh:], k[hh*seq*dh:], scores, seq, seq, dh, scale, 0)
		probs := ref.SoftmaxCausal(scores, seq, seq, seq, 0)
		ref.Gemm(probs, v[hh*seq*dh:(hh+1)*seq*dh], ctxh[hh*seq*dh:(hh+1)*seq*dh], seq, dh, seq, 1, 0)
	}
	merged := ref.MergeHeads(ctxh, seq, m.Heads, dh)
	return m.Wo.applyCPU(merged, seq, dm, dm)
}

// GenerateCPU is the host oracle of Generate: greedy decode with a full
// causal re-forward per step (mathematically identical to KV caching).
func (d *TransformerDecoder) GenerateCPU(prompt []int32, n int) ([]int32, error) {
	if n < 1 {
		return nil, fmt.Errorf("torch: generate count %d < 1", n)
	}
	if len(prompt)+n-1 > d.Cfg.MaxSeq {
		return nil, fmt.Errorf("torch: prompt %d + %d generated tokens exceed MaxSeq %d",
			len(prompt), n, d.Cfg.MaxSeq)
	}
	if err := validateTokenIDs(prompt, d.Cfg.Vocab); err != nil {
		return nil, err
	}
	dm := d.Cfg.DModel
	table := d.Embed.Table.W.ToHost()
	ids := append([]int32(nil), prompt...)
	for i := 0; i < n; i++ {
		x, _ := d.ForwardCPU(ids)
		last := x[(len(ids)-1)*dm:]
		logits := ref.LogitGemv(last, table, d.Cfg.Vocab, dm)
		next := ref.Argmax(logits, 1, d.Cfg.Vocab)[0]
		ids = append(ids, int32(next))
	}
	return ids[len(prompt):], nil
}
