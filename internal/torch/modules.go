package torch

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cudnn"
	"repro/internal/ref"
)

// Module is one differentiable layer.
type Module interface {
	Forward(x *Tensor) (*Tensor, error)
	// Backward consumes the output gradient, accumulates parameter
	// gradients, and returns the input gradient (nil for loss-adjacent
	// modules that do not propagate further).
	Backward(dy *Tensor) (*Tensor, error)
	Params() []*Param
	// ForwardCPU runs the same computation on the host via internal/ref;
	// this is the self-check oracle (paper §IV: "MNIST contains
	// self-checking code").
	ForwardCPU(x []float32, shape []int) ([]float32, []int)
}

// Param pairs a weight tensor with its gradient accumulator.
type Param struct {
	W    *Tensor
	Grad *Tensor
	Name string
}

// Conv2d is a convolution layer with selectable cuDNN algorithms.
type Conv2d struct {
	Dev        *Device
	InC, OutC  int
	Kernel     int
	Pad        int
	Stride     int
	FwdAlgo    cudnn.ConvFwdAlgo
	BwdData    cudnn.ConvBwdDataAlgo
	BwdFilter  cudnn.ConvBwdFilterAlgo
	Weight     *Param
	Bias       *Param
	lastX      *Tensor
	lastXShape cudnn.TensorDesc
}

// NewConv2d builds a convolution layer with He-style initialisation.
func NewConv2d(dev *Device, rng *rand.Rand, inC, outC, kernel, pad, stride int,
	fwd cudnn.ConvFwdAlgo, bd cudnn.ConvBwdDataAlgo, bf cudnn.ConvBwdFilterAlgo) (*Conv2d, error) {
	w, err := dev.NewTensor(outC, inC, kernel, kernel)
	if err != nil {
		return nil, err
	}
	gw, err := dev.Zeros(outC, inC, kernel, kernel)
	if err != nil {
		return nil, err
	}
	b, err := dev.Zeros(outC)
	if err != nil {
		return nil, err
	}
	gb, err := dev.Zeros(outC)
	if err != nil {
		return nil, err
	}
	scale := float32(math.Sqrt(2.0 / float64(inC*kernel*kernel)))
	w.RandInit(rng, scale)
	return &Conv2d{
		Dev: dev, InC: inC, OutC: outC, Kernel: kernel, Pad: pad, Stride: stride,
		FwdAlgo: fwd, BwdData: bd, BwdFilter: bf,
		Weight: &Param{W: w, Grad: gw, Name: "conv.weight"},
		Bias:   &Param{W: b, Grad: gb, Name: "conv.bias"},
	}, nil
}

func (c *Conv2d) filterDesc() cudnn.FilterDesc {
	return cudnn.FilterDesc{K: c.OutC, C: c.InC, R: c.Kernel, S: c.Kernel}
}

func (c *Conv2d) convDesc() cudnn.ConvDesc { return cudnn.ConvDesc{Pad: c.Pad, Stride: c.Stride} }

// Forward implements Module.
func (c *Conv2d) Forward(x *Tensor) (*Tensor, error) {
	xd := cudnn.TensorDesc{N: x.Dim(0), C: x.Dim(1), H: x.Dim(2), W: x.Dim(3)}
	cd := c.convDesc()
	oh := cd.OutDim(xd.H, c.Kernel)
	ow := cd.OutDim(xd.W, c.Kernel)
	y, err := c.Dev.NewTensor(xd.N, c.OutC, oh, ow)
	if err != nil {
		return nil, err
	}
	yd, err := c.Dev.H.ConvolutionForward(c.FwdAlgo, x.Ptr, xd, c.Weight.W.Ptr, c.filterDesc(), cd, y.Ptr)
	if err != nil {
		return nil, fmt.Errorf("conv2d forward (%v): %w", c.FwdAlgo, err)
	}
	if err := c.Dev.H.AddTensor(c.Bias.W.Ptr, y.Ptr, yd); err != nil {
		return nil, err
	}
	c.lastX = x
	c.lastXShape = xd
	return y, nil
}

// Backward implements Module.
func (c *Conv2d) Backward(dy *Tensor) (*Tensor, error) {
	xd := c.lastXShape
	yd := cudnn.TensorDesc{N: dy.Dim(0), C: dy.Dim(1), H: dy.Dim(2), W: dy.Dim(3)}
	cd := c.convDesc()
	// filter gradient
	if err := c.Dev.H.ConvolutionBackwardFilter(c.BwdFilter, c.lastX.Ptr, xd, dy.Ptr, yd, cd, c.Weight.Grad.Ptr, c.filterDesc()); err != nil {
		return nil, fmt.Errorf("conv2d backward filter (%v): %w", c.BwdFilter, err)
	}
	// bias gradient: db[k] = sum over n, oh, ow of dy — per image GEMM
	// against a ones vector (M=K, N=1, K=OH*OW), accumulating with beta=1.
	ohw := yd.H * yd.W
	ones, err := c.Dev.FromHost(onesSlice(ohw), ohw)
	if err != nil {
		return nil, err
	}
	defer ones.Free()
	for n := 0; n < yd.N; n++ {
		dyOff := dy.Ptr + uint64(4*n*yd.C*ohw)
		if err := gemmRaw(c.Dev, dyOff, ones.Ptr, c.Bias.Grad.Ptr, yd.C, 1, ohw, 1, 1); err != nil {
			return nil, err
		}
	}
	// data gradient
	dx, err := c.Dev.NewTensor(xd.N, xd.C, xd.H, xd.W)
	if err != nil {
		return nil, err
	}
	if err := c.Dev.H.ConvolutionBackwardData(c.BwdData, c.Weight.W.Ptr, c.filterDesc(), dy.Ptr, yd, cd, dx.Ptr, xd); err != nil {
		return nil, fmt.Errorf("conv2d backward data (%v): %w", c.BwdData, err)
	}
	return dx, nil
}

// Params implements Module.
func (c *Conv2d) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// ForwardCPU implements Module.
func (c *Conv2d) ForwardCPU(x []float32, shape []int) ([]float32, []int) {
	xs := ref.TensorShape4{N: shape[0], C: shape[1], H: shape[2], W: shape[3]}
	w := c.Weight.W.ToHost()
	bias := c.Bias.W.ToHost()
	y, ys := ref.Conv2DForward(x, xs, w, c.OutC, c.Kernel, ref.ConvParams{Stride: c.Stride, Pad: c.Pad})
	ref.AddBias(y, bias, ys.N, ys.C, ys.H*ys.W)
	return y, []int{ys.N, ys.C, ys.H, ys.W}
}

// ReLU activation.
type ReLU struct {
	Dev   *Device
	lastX *Tensor
}

// Forward implements Module.
func (r *ReLU) Forward(x *Tensor) (*Tensor, error) {
	y, err := r.Dev.NewTensor(x.Shape...)
	if err != nil {
		return nil, err
	}
	if err := r.Dev.H.ActivationForward(x.Ptr, y.Ptr, x.Count()); err != nil {
		return nil, err
	}
	r.lastX = x
	return y, nil
}

// Backward implements Module.
func (r *ReLU) Backward(dy *Tensor) (*Tensor, error) {
	dx, err := r.Dev.NewTensor(dy.Shape...)
	if err != nil {
		return nil, err
	}
	if err := r.Dev.H.ActivationBackward(dy.Ptr, r.lastX.Ptr, dx.Ptr, dy.Count()); err != nil {
		return nil, err
	}
	return dx, nil
}

// Params implements Module.
func (r *ReLU) Params() []*Param { return nil }

// ForwardCPU implements Module.
func (r *ReLU) ForwardCPU(x []float32, shape []int) ([]float32, []int) {
	return ref.Relu(x), shape
}

// MaxPool2d with square window.
type MaxPool2d struct {
	Dev         *Device
	Window      int
	Stride      int
	lastIdx     *Tensor
	inCount     int
	lastInShape []int
	outDesc     cudnn.TensorDesc
}

// Forward implements Module.
func (m *MaxPool2d) Forward(x *Tensor) (*Tensor, error) {
	xd := cudnn.TensorDesc{N: x.Dim(0), C: x.Dim(1), H: x.Dim(2), W: x.Dim(3)}
	oh := (xd.H-m.Window)/m.Stride + 1
	ow := (xd.W-m.Window)/m.Stride + 1
	y, err := m.Dev.NewTensor(xd.N, xd.C, oh, ow)
	if err != nil {
		return nil, err
	}
	idx, err := m.Dev.NewTensor(xd.N, xd.C, oh, ow)
	if err != nil {
		return nil, err
	}
	yd, err := m.Dev.H.PoolingForward(cudnn.PoolDesc{Window: m.Window, Stride: m.Stride}, x.Ptr, xd, y.Ptr, idx.Ptr)
	if err != nil {
		return nil, err
	}
	m.lastIdx = idx
	m.inCount = x.Count()
	m.lastInShape = append([]int(nil), x.Shape...)
	m.outDesc = yd
	return y, nil
}

// Backward implements Module.
func (m *MaxPool2d) Backward(dy *Tensor) (*Tensor, error) {
	dx, err := m.Dev.NewTensor(m.lastInShape...)
	if err != nil {
		return nil, err
	}
	if err := m.Dev.H.PoolingBackward(dy.Ptr, m.lastIdx.Ptr, dx.Ptr, m.outDesc, m.inCount); err != nil {
		return nil, err
	}
	return dx, nil
}

// Params implements Module.
func (m *MaxPool2d) Params() []*Param { return nil }

// ForwardCPU implements Module.
func (m *MaxPool2d) ForwardCPU(x []float32, shape []int) ([]float32, []int) {
	xs := ref.TensorShape4{N: shape[0], C: shape[1], H: shape[2], W: shape[3]}
	y, _, ys := ref.MaxPoolForward(x, xs, m.Window, m.Stride)
	return y, []int{ys.N, ys.C, ys.H, ys.W}
}

// LRN cross-channel normalisation.
type LRN struct {
	Dev   *Device
	Desc  cudnn.LRNDesc
	lastX *Tensor
	lastY *Tensor
}

// Forward implements Module.
func (l *LRN) Forward(x *Tensor) (*Tensor, error) {
	xd := cudnn.TensorDesc{N: x.Dim(0), C: x.Dim(1), H: x.Dim(2), W: x.Dim(3)}
	y, err := l.Dev.NewTensor(x.Shape...)
	if err != nil {
		return nil, err
	}
	if err := l.Dev.H.LRNCrossChannelForward(l.Desc, x.Ptr, xd, y.Ptr); err != nil {
		return nil, err
	}
	l.lastX, l.lastY = x, y
	return y, nil
}

// Backward implements Module.
func (l *LRN) Backward(dy *Tensor) (*Tensor, error) {
	xd := cudnn.TensorDesc{N: dy.Dim(0), C: dy.Dim(1), H: dy.Dim(2), W: dy.Dim(3)}
	dx, err := l.Dev.NewTensor(dy.Shape...)
	if err != nil {
		return nil, err
	}
	if err := l.Dev.H.LRNCrossChannelBackward(l.Desc, l.lastX.Ptr, l.lastY.Ptr, dy.Ptr, dx.Ptr, xd); err != nil {
		return nil, err
	}
	return dx, nil
}

// Params implements Module.
func (l *LRN) Params() []*Param { return nil }

// ForwardCPU implements Module.
func (l *LRN) ForwardCPU(x []float32, shape []int) ([]float32, []int) {
	c := shape[1]
	hw := shape[2] * shape[3]
	out := make([]float32, 0, len(x))
	for n := 0; n < shape[0]; n++ {
		out = append(out, ref.LRNForward(x[n*c*hw:(n+1)*c*hw], c, hw, l.Desc.N, l.Desc.K, l.Desc.Alpha, l.Desc.Beta)...)
	}
	return out, shape
}

// Flatten reshapes NCHW to N x (CHW).
type Flatten struct {
	lastShape []int
}

// Forward implements Module.
func (f *Flatten) Forward(x *Tensor) (*Tensor, error) {
	f.lastShape = append([]int(nil), x.Shape...)
	n := x.Dim(0)
	return &Tensor{Shape: []int{n, x.Count() / n}, Ptr: x.Ptr, dev: x.dev}, nil
}

// Backward implements Module.
func (f *Flatten) Backward(dy *Tensor) (*Tensor, error) {
	return &Tensor{Shape: f.lastShape, Ptr: dy.Ptr, dev: dy.dev}, nil
}

// Params implements Module.
func (f *Flatten) Params() []*Param { return nil }

// ForwardCPU implements Module.
func (f *Flatten) ForwardCPU(x []float32, shape []int) ([]float32, []int) {
	n := shape[0]
	c := 1
	for _, d := range shape[1:] {
		c *= d
	}
	return x, []int{n, c}
}

// Linear is a fully-connected layer computed with the GEMV2T kernel
// (cuDNN's FC kernel in the paper's Fig. 7).
type Linear struct {
	Dev      *Device
	In, Out  int
	Weight   *Param // [In, Out] row-major
	Bias     *Param
	lastX    *Tensor
	lastRows int
}

// NewLinear builds an FC layer.
func NewLinear(dev *Device, rng *rand.Rand, in, out int) (*Linear, error) {
	w, err := dev.NewTensor(in, out)
	if err != nil {
		return nil, err
	}
	gw, err := dev.Zeros(in, out)
	if err != nil {
		return nil, err
	}
	b, err := dev.Zeros(out)
	if err != nil {
		return nil, err
	}
	gb, err := dev.Zeros(out)
	if err != nil {
		return nil, err
	}
	w.RandInit(rng, float32(math.Sqrt(2.0/float64(in))))
	return &Linear{Dev: dev, In: in, Out: out,
		Weight: &Param{W: w, Grad: gw, Name: "linear.weight"},
		Bias:   &Param{W: b, Grad: gb, Name: "linear.bias"}}, nil
}

// Forward implements Module.
func (l *Linear) Forward(x *Tensor) (*Tensor, error) {
	rows := x.Dim(0)
	y, err := l.Dev.NewTensor(rows, l.Out)
	if err != nil {
		return nil, err
	}
	for n := 0; n < rows; n++ {
		xOff := x.Ptr + uint64(4*n*l.In)
		yOff := y.Ptr + uint64(4*n*l.Out)
		if err := l.Dev.H.GemvT(l.Weight.W.Ptr, xOff, yOff, l.In, l.Out, 1, 0); err != nil {
			return nil, err
		}
	}
	yd := cudnn.TensorDesc{N: rows, C: l.Out, H: 1, W: 1}
	if err := l.Dev.H.AddTensor(l.Bias.W.Ptr, y.Ptr, yd); err != nil {
		return nil, err
	}
	l.lastX = x
	l.lastRows = rows
	return y, nil
}

// Backward implements Module.
func (l *Linear) Backward(dy *Tensor) (*Tensor, error) {
	rows := l.lastRows
	dx, err := l.Dev.NewTensor(rows, l.In)
	if err != nil {
		return nil, err
	}
	ones, err := l.Dev.FromHost(onesSlice(rows), rows)
	if err != nil {
		return nil, err
	}
	defer ones.Free()
	// db = dyᵀ · ones (accumulate)
	if err := l.Dev.H.GemvT(dy.Ptr, ones.Ptr, l.Bias.Grad.Ptr, rows, l.Out, 1, 1); err != nil {
		return nil, err
	}
	for n := 0; n < rows; n++ {
		dyOff := dy.Ptr + uint64(4*n*l.Out)
		xOff := l.lastX.Ptr + uint64(4*n*l.In)
		dxOff := dx.Ptr + uint64(4*n*l.In)
		// dx = W · dy : sgemm M=In, N=1, K=Out
		if err := gemmRaw(l.Dev, l.Weight.W.Ptr, dyOff, dxOff, l.In, 1, l.Out, 1, 0); err != nil {
			return nil, err
		}
		// dW += x ⊗ dy : sgemm M=In, N=Out, K=1, beta=1
		if err := gemmRaw(l.Dev, xOff, dyOff, l.Weight.Grad.Ptr, l.In, l.Out, 1, 1, 1); err != nil {
			return nil, err
		}
	}
	return dx, nil
}

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// ForwardCPU implements Module.
func (l *Linear) ForwardCPU(x []float32, shape []int) ([]float32, []int) {
	rows := shape[0]
	w := l.Weight.W.ToHost()
	bias := l.Bias.W.ToHost()
	y := make([]float32, rows*l.Out)
	for n := 0; n < rows; n++ {
		ref.GemvT(w, x[n*l.In:(n+1)*l.In], y[n*l.Out:(n+1)*l.Out], l.In, l.Out, 1, 0)
		for j := 0; j < l.Out; j++ {
			y[n*l.Out+j] += bias[j]
		}
	}
	return y, []int{rows, l.Out}
}

// Sequential chains modules.
type Sequential struct {
	Mods []Module
}

// Forward implements Module.
func (s *Sequential) Forward(x *Tensor) (*Tensor, error) {
	var err error
	for _, m := range s.Mods {
		x, err = m.Forward(x)
		if err != nil {
			return nil, err
		}
	}
	return x, nil
}

// Backward implements Module.
func (s *Sequential) Backward(dy *Tensor) (*Tensor, error) {
	var err error
	for i := len(s.Mods) - 1; i >= 0; i-- {
		dy, err = s.Mods[i].Backward(dy)
		if err != nil {
			return nil, err
		}
	}
	return dy, nil
}

// Params implements Module.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, m := range s.Mods {
		out = append(out, m.Params()...)
	}
	return out
}

// ForwardCPU implements Module.
func (s *Sequential) ForwardCPU(x []float32, shape []int) ([]float32, []int) {
	for _, m := range s.Mods {
		x, shape = m.ForwardCPU(x, shape)
	}
	return x, shape
}

// gemmRaw launches sgemm_tiled on raw device pointers.
func gemmRaw(dev *Device, a, bm, cm uint64, m, n, k int, alpha, beta float32) error {
	return dev.H.Gemm(a, bm, cm, m, n, k, alpha, beta)
}

func onesSlice(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// SGD is a plain stochastic-gradient-descent optimizer whose update runs
// on the device (sgd_update kernel).
type SGD struct {
	Dev    *Device
	LR     float32
	Params []*Param
}

// Step applies one update and zeroes the gradients. Updates are applied
// in Params order; on error the optimizer state is PARTIAL: parameters
// before the reported index have been updated (and their gradients
// zeroed) while the failing parameter and everything after it are
// untouched. Callers that need all-or-nothing semantics must snapshot
// weights before calling. The error names the parameter so the caller
// can tell exactly where the step stopped.
func (o *SGD) Step() error {
	for i, p := range o.Params {
		if p.Grad == nil {
			return fmt.Errorf("sgd: step stopped at param %d (%s): no gradient buffer (params 0..%d already updated)", i, p.Name, i-1)
		}
		if err := o.Dev.H.SGDUpdate(p.W.Ptr, p.Grad.Ptr, p.W.Count(), o.LR); err != nil {
			return fmt.Errorf("sgd: step stopped at param %d (%s): %w (params 0..%d already updated)", i, p.Name, err, i-1)
		}
		o.Dev.Ctx.Memset(p.Grad.Ptr, 0, 4*p.Grad.Count())
	}
	return nil
}

// SoftmaxNLL is the fused softmax + negative-log-likelihood head.
type SoftmaxNLL struct {
	Dev    *Device
	lastY  *Tensor
	rows   int
	cols   int
	labels uint64
}

// Forward computes probabilities and stores them for Backward; the loss
// value itself is computed host-side from the downloaded probabilities
// (like the sample's self-check output).
func (s *SoftmaxNLL) Forward(x *Tensor, labels []int32) (*Tensor, float32, error) {
	rows, cols := x.Dim(0), x.Dim(1)
	y, err := s.Dev.NewTensor(rows, cols)
	if err != nil {
		return nil, 0, err
	}
	if err := s.Dev.H.SoftmaxForward(x.Ptr, y.Ptr, rows, cols); err != nil {
		return nil, 0, err
	}
	lab, err := s.Dev.UploadLabels(labels)
	if err != nil {
		return nil, 0, err
	}
	s.lastY, s.rows, s.cols, s.labels = y, rows, cols, lab
	loss := ref.NLLLoss(y.ToHost(), labels, rows, cols)
	return y, loss, nil
}

// Backward returns d(loss)/d(logits).
func (s *SoftmaxNLL) Backward() (*Tensor, error) {
	dx, err := s.Dev.NewTensor(s.rows, s.cols)
	if err != nil {
		return nil, err
	}
	if err := s.Dev.H.SoftmaxNLLBackward(s.lastY.Ptr, s.labels, dx.Ptr, s.rows, s.cols); err != nil {
		return nil, err
	}
	return dx, nil
}
