// Package dram models GDDR-style DRAM channels with row-buffer banks and
// open-page scheduling, and collects the per-bank efficiency/utilization
// time series that AerialVision plots in the paper's Figs. 9-14 ("DRAM
// efficiency and utilization ... as a sequence of DRAM banks"), including
// the *bank camping* pathology (§V-B) where serialized accesses pile onto
// one bank while others sit idle.
package dram

// Config describes one DRAM channel (memory partition).
type Config struct {
	NumBanks   int
	RowBytes   int // row-buffer size
	TRCD       int // activate-to-read
	TRP        int // precharge
	TCL        int // CAS latency
	TBurst     int // data-transfer cycles per access
	QueueDepth int // channel request-queue slots (full queue back-pressures arrivals)

	// FR-FCFS knobs for ServiceBatch: within a bank, a row hit may be
	// scheduled ahead of up to ReorderWindow-1 older requests, but a
	// request bypassed StarveLimit times becomes a barrier and must be
	// serviced next (the starvation bound). ReorderWindow <= 1 degrades
	// to pure in-order open-page scheduling.
	ReorderWindow int
	StarveLimit   int
}

// DefaultConfig mirrors GDDR5-ish timings at core clock.
func DefaultConfig() Config {
	return Config{
		NumBanks: 8, RowBytes: 2048,
		TRCD: 12, TRP: 12, TCL: 12, TBurst: 4,
		QueueDepth:    32,
		ReorderWindow: 8,
		StarveLimit:   4,
	}
}

// Req is one request inside a ServiceBatch call. Arrive/Addr/Write are
// inputs; Done and RowHit are written by the scheduler. The bypass count
// is scheduler-internal (FR-FCFS starvation bound).
type Req struct {
	Arrive uint64
	Addr   uint64
	Write  bool

	Done   uint64
	RowHit bool

	bypass int
}

// BankStats accumulates one bank's counters, bucketed per sample interval
// for the AerialVision-style plots.
type BankStats struct {
	BusyCycles    uint64 // data-transfer (useful) cycles
	PendingCycles uint64 // cycles with at least one request outstanding
	Activates     uint64
	Reads         uint64
	Writes        uint64
	RowHits       uint64
}

// Channel is one DRAM channel with per-bank state.
type Channel struct {
	cfg       Config
	bankReady []uint64 // cycle when bank can accept the next command
	openRow   []int64  // -1 = closed
	lastEnd   []uint64 // completion time of last request per bank (pending tracking)
	busReady  uint64   // shared data bus availability

	// queueFree is the finite request queue as an absolute-time resource:
	// slot i holds the completion cycle of the request QueueDepth commits
	// ago, so a new request cannot start before the oldest slot frees.
	queueFree []uint64
	queueHead int

	bankQ [][]*Req // per-bank scratch queues for ServiceBatch

	Banks []BankStats

	// sampling
	interval   uint64
	busySeries [][]uint64 // [bank][bucket] busy cycles
	pendSeries [][]uint64
	cmdSeries  [][]uint64 // read+write commands per bucket
}

// NewChannel builds a channel with the given sample interval (cycles per
// AerialVision bucket; 0 disables the time series).
func NewChannel(cfg Config, sampleInterval uint64) *Channel {
	ch := &Channel{
		cfg:       cfg,
		bankReady: make([]uint64, cfg.NumBanks),
		openRow:   make([]int64, cfg.NumBanks),
		lastEnd:   make([]uint64, cfg.NumBanks),
		Banks:     make([]BankStats, cfg.NumBanks),
		interval:  sampleInterval,
	}
	for i := range ch.openRow {
		ch.openRow[i] = -1
	}
	if cfg.QueueDepth > 0 {
		ch.queueFree = make([]uint64, cfg.QueueDepth)
	}
	if sampleInterval > 0 {
		ch.busySeries = make([][]uint64, cfg.NumBanks)
		ch.pendSeries = make([][]uint64, cfg.NumBanks)
		ch.cmdSeries = make([][]uint64, cfg.NumBanks)
	}
	return ch
}

// BankOf maps a channel-local address to a bank (bank bits above the
// burst offset so consecutive 256B chunks interleave across banks).
func (ch *Channel) BankOf(addr uint64) int {
	return int(addr / 256 % uint64(ch.cfg.NumBanks))
}

func (ch *Channel) rowOf(addr uint64) int64 {
	return int64(addr / 256 / uint64(ch.cfg.NumBanks) / uint64(ch.cfg.RowBytes/256))
}

func addToBucket(series *[][]uint64, bank int, idx uint64, v uint64) {
	s := (*series)[bank]
	for uint64(len(s)) <= idx {
		s = append(s, 0)
	}
	s[idx] += v
	(*series)[bank] = s
}

// Service schedules one request arriving at cycle `now` and returns its
// completion cycle — a batch of one (no reordering opportunity).
func (ch *Channel) Service(now uint64, addr uint64, write bool) uint64 {
	r := Req{Arrive: now, Addr: addr, Write: write}
	ch.commitReq(&r)
	return r.Done
}

// ServiceBatch schedules a batch of requests with FR-FCFS bank ordering
// and writes each request's completion cycle into Req.Done. The batch is
// the bounded reorder window the memory partition presents each cycle (in
// canonical core/issue order), so reordering inside it is deterministic.
// Scheduling: per bank, the first row hit within ReorderWindow entries is
// preferred over the bank's oldest request unless the oldest has already
// been bypassed StarveLimit times (the starvation bound); across banks,
// the candidate with the earliest achievable data-bus slot commits first
// (ties to the lowest bank), so bank-parallel traffic interleaves on the
// shared bus the way the per-request Service path did.
func (ch *Channel) ServiceBatch(reqs []*Req) {
	if len(reqs) == 0 {
		return
	}
	if len(reqs) == 1 {
		ch.commitReq(reqs[0])
		return
	}
	if ch.bankQ == nil {
		ch.bankQ = make([][]*Req, ch.cfg.NumBanks)
	}
	for _, r := range reqs {
		r.bypass = 0
		b := ch.BankOf(r.Addr)
		ch.bankQ[b] = append(ch.bankQ[b], r)
	}
	for remaining := len(reqs); remaining > 0; remaining-- {
		bestBank, bestIdx := -1, 0
		var bestStart uint64
		for b := range ch.bankQ {
			q := ch.bankQ[b]
			if len(q) == 0 {
				continue
			}
			ci := ch.pickFRFCFS(b, q)
			_, _, ds := ch.schedTimes(b, q[ci])
			if bestBank < 0 || ds < bestStart {
				bestBank, bestIdx, bestStart = b, ci, ds
			}
		}
		q := ch.bankQ[bestBank]
		for i := 0; i < bestIdx; i++ {
			q[i].bypass++
		}
		ch.commitReq(q[bestIdx])
		copy(q[bestIdx:], q[bestIdx+1:])
		q[len(q)-1] = nil
		ch.bankQ[bestBank] = q[:len(q)-1]
	}
}

// pickFRFCFS selects the next request index for one bank's queue:
// row-hit-first within the reorder window, bounded by the head's
// starvation count.
func (ch *Channel) pickFRFCFS(bank int, q []*Req) int {
	w := ch.cfg.ReorderWindow
	if w <= 1 {
		return 0
	}
	if s := ch.cfg.StarveLimit; s > 0 && q[0].bypass >= s {
		return 0
	}
	open := ch.openRow[bank]
	if open < 0 {
		return 0
	}
	if w > len(q) {
		w = len(q)
	}
	for i := 0; i < w; i++ {
		if ch.rowOf(q[i].Addr) == open {
			return i
		}
	}
	return 0
}

// schedTimes computes, without mutating channel state, the cycle a
// request would occupy the bank command path (start), whether it row-hits
// the currently open row, and the cycle its data burst would begin.
// commitReq commits exactly these times, so the FR-FCFS cross-bank
// arbitration in ServiceBatch always compares the schedule that would
// actually be committed.
func (ch *Channel) schedTimes(bank int, r *Req) (start uint64, rowHit bool, dataStart uint64) {
	start = r.Arrive
	// finite request queue: wait for the oldest slot to free
	if len(ch.queueFree) > 0 {
		if f := ch.queueFree[ch.queueHead]; f > start {
			start = f
		}
	}
	if ch.bankReady[bank] > start {
		start = ch.bankReady[bank]
	}
	var cmd uint64
	if ch.openRow[bank] == ch.rowOf(r.Addr) {
		rowHit = true
		cmd = uint64(ch.cfg.TCL)
	} else {
		if ch.openRow[bank] >= 0 {
			cmd += uint64(ch.cfg.TRP)
		}
		cmd += uint64(ch.cfg.TRCD + ch.cfg.TCL)
	}
	dataStart = start + cmd
	if ch.busReady > dataStart {
		dataStart = ch.busReady
	}
	return start, rowHit, dataStart
}

// commitReq schedules one request against the channel's absolute-time
// resources (request-queue slot, bank, shared data bus) and records its
// completion in r.Done. Open-page policy: row hits skip ACT/PRE; the
// shared data bus serialises bursts.
func (ch *Channel) commitReq(r *Req) {
	now := r.Arrive
	bank := ch.BankOf(r.Addr)
	start, rowHit, dataStart := ch.schedTimes(bank, r)
	st := &ch.Banks[bank]
	r.RowHit = rowHit
	if rowHit {
		st.RowHits++
	} else {
		ch.openRow[bank] = ch.rowOf(r.Addr)
		st.Activates++
	}
	end := dataStart + uint64(ch.cfg.TBurst)
	ch.busReady = end
	ch.bankReady[bank] = end
	if len(ch.queueFree) > 0 {
		ch.queueFree[ch.queueHead] = end
		ch.queueHead = (ch.queueHead + 1) % len(ch.queueFree)
	}
	if r.Write {
		st.Writes++
	} else {
		st.Reads++
	}
	st.BusyCycles += uint64(ch.cfg.TBurst)
	// pending window: arrival -> completion
	if end > now {
		st.PendingCycles += end - now
	}
	ch.lastEnd[bank] = end
	r.Done = end

	if ch.interval > 0 {
		// burst cycles to the bucket containing dataStart
		addToBucket(&ch.busySeries, bank, dataStart/ch.interval, uint64(ch.cfg.TBurst))
		addToBucket(&ch.cmdSeries, bank, start/ch.interval, 1)
		for b := now / ch.interval; b <= end/ch.interval; b++ {
			span := ch.interval
			if b == now/ch.interval {
				span = ch.interval - now%ch.interval
			}
			if b == end/ch.interval {
				e := end % ch.interval
				if b == now/ch.interval {
					span = end - now
				} else {
					span = e
				}
			}
			addToBucket(&ch.pendSeries, bank, b, span)
		}
	}
}

// NumBanks returns the bank count.
func (ch *Channel) NumBanks() int { return ch.cfg.NumBanks }

// BurstCycles returns the data-transfer cycles per access.
func (ch *Channel) BurstCycles() int { return ch.cfg.TBurst }

// EfficiencySeries returns per-bank per-bucket efficiency in [0,1]: the
// paper's definition — bandwidth utilization when there is a pending
// request waiting to be processed.
func (ch *Channel) EfficiencySeries() [][]float64 {
	out := make([][]float64, ch.cfg.NumBanks)
	for b := 0; b < ch.cfg.NumBanks; b++ {
		busy := ch.busySeries[b]
		pend := ch.pendSeries[b]
		n := len(pend)
		if len(busy) > n {
			n = len(busy)
		}
		s := make([]float64, n)
		for i := 0; i < n; i++ {
			var bu, pe uint64
			if i < len(busy) {
				bu = busy[i]
			}
			if i < len(pend) {
				pe = pend[i]
			}
			if pe > 0 {
				v := float64(bu) / float64(pe)
				if v > 1 {
					v = 1
				}
				s[i] = v
			}
		}
		out[b] = s
	}
	return out
}

// UtilizationSeries returns per-bank per-bucket utilization: per the
// paper, two times the number of read and write commands per command
// cycle (normalised to the bucket width).
func (ch *Channel) UtilizationSeries() [][]float64 {
	out := make([][]float64, ch.cfg.NumBanks)
	for b := 0; b < ch.cfg.NumBanks; b++ {
		cmds := ch.cmdSeries[b]
		s := make([]float64, len(cmds))
		for i, c := range cmds {
			v := 2 * float64(c) * float64(ch.cfg.TBurst) / float64(ch.interval)
			if v > 1 {
				v = 1
			}
			s[i] = v
		}
		out[b] = s
	}
	return out
}

// Totals returns aggregate reads, writes, activates, busy cycles.
func (ch *Channel) Totals() (reads, writes, acts, busy uint64) {
	for i := range ch.Banks {
		reads += ch.Banks[i].Reads
		writes += ch.Banks[i].Writes
		acts += ch.Banks[i].Activates
		busy += ch.Banks[i].BusyCycles
	}
	return
}

// Reset clears state and statistics.
func (ch *Channel) Reset() {
	for i := range ch.bankReady {
		ch.bankReady[i] = 0
		ch.openRow[i] = -1
		ch.lastEnd[i] = 0
		ch.Banks[i] = BankStats{}
	}
	ch.busReady = 0
	for i := range ch.queueFree {
		ch.queueFree[i] = 0
	}
	ch.queueHead = 0
	if ch.interval > 0 {
		ch.busySeries = make([][]uint64, ch.cfg.NumBanks)
		ch.pendSeries = make([][]uint64, ch.cfg.NumBanks)
		ch.cmdSeries = make([][]uint64, ch.cfg.NumBanks)
	}
}
