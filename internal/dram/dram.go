// Package dram models GDDR-style DRAM channels with row-buffer banks and
// open-page scheduling, and collects the per-bank efficiency/utilization
// time series that AerialVision plots in the paper's Figs. 9-14 ("DRAM
// efficiency and utilization ... as a sequence of DRAM banks"), including
// the *bank camping* pathology (§V-B) where serialized accesses pile onto
// one bank while others sit idle.
package dram

// Config describes one DRAM channel (memory partition).
type Config struct {
	NumBanks   int
	RowBytes   int // row-buffer size
	TRCD       int // activate-to-read
	TRP        int // precharge
	TCL        int // CAS latency
	TBurst     int // data-transfer cycles per access
	QueueDepth int
}

// DefaultConfig mirrors GDDR5-ish timings at core clock.
func DefaultConfig() Config {
	return Config{
		NumBanks: 8, RowBytes: 2048,
		TRCD: 12, TRP: 12, TCL: 12, TBurst: 4,
		QueueDepth: 32,
	}
}

// BankStats accumulates one bank's counters, bucketed per sample interval
// for the AerialVision-style plots.
type BankStats struct {
	BusyCycles    uint64 // data-transfer (useful) cycles
	PendingCycles uint64 // cycles with at least one request outstanding
	Activates     uint64
	Reads         uint64
	Writes        uint64
	RowHits       uint64
}

// Channel is one DRAM channel with per-bank state.
type Channel struct {
	cfg       Config
	bankReady []uint64 // cycle when bank can accept the next command
	openRow   []int64  // -1 = closed
	lastEnd   []uint64 // completion time of last request per bank (pending tracking)
	busReady  uint64   // shared data bus availability

	Banks []BankStats

	// sampling
	interval   uint64
	busySeries [][]uint64 // [bank][bucket] busy cycles
	pendSeries [][]uint64
	cmdSeries  [][]uint64 // read+write commands per bucket
}

// NewChannel builds a channel with the given sample interval (cycles per
// AerialVision bucket; 0 disables the time series).
func NewChannel(cfg Config, sampleInterval uint64) *Channel {
	ch := &Channel{
		cfg:       cfg,
		bankReady: make([]uint64, cfg.NumBanks),
		openRow:   make([]int64, cfg.NumBanks),
		lastEnd:   make([]uint64, cfg.NumBanks),
		Banks:     make([]BankStats, cfg.NumBanks),
		interval:  sampleInterval,
	}
	for i := range ch.openRow {
		ch.openRow[i] = -1
	}
	if sampleInterval > 0 {
		ch.busySeries = make([][]uint64, cfg.NumBanks)
		ch.pendSeries = make([][]uint64, cfg.NumBanks)
		ch.cmdSeries = make([][]uint64, cfg.NumBanks)
	}
	return ch
}

// BankOf maps a channel-local address to a bank (bank bits above the
// burst offset so consecutive 256B chunks interleave across banks).
func (ch *Channel) BankOf(addr uint64) int {
	return int(addr / 256 % uint64(ch.cfg.NumBanks))
}

func (ch *Channel) rowOf(addr uint64) int64 {
	return int64(addr / 256 / uint64(ch.cfg.NumBanks) / uint64(ch.cfg.RowBytes/256))
}

func addToBucket(series *[][]uint64, bank int, idx uint64, v uint64) {
	s := (*series)[bank]
	for uint64(len(s)) <= idx {
		s = append(s, 0)
	}
	s[idx] += v
	(*series)[bank] = s
}

// Service schedules one request arriving at cycle `now` and returns its
// completion cycle. Open-page policy: row hits skip ACT/PRE; the shared
// data bus serialises bursts.
func (ch *Channel) Service(now uint64, addr uint64, write bool) uint64 {
	bank := ch.BankOf(addr)
	row := ch.rowOf(addr)
	start := now
	if ch.bankReady[bank] > start {
		start = ch.bankReady[bank]
	}
	cmd := uint64(0)
	st := &ch.Banks[bank]
	if ch.openRow[bank] == row {
		st.RowHits++
		cmd = uint64(ch.cfg.TCL)
	} else {
		if ch.openRow[bank] >= 0 {
			cmd += uint64(ch.cfg.TRP)
		}
		cmd += uint64(ch.cfg.TRCD + ch.cfg.TCL)
		ch.openRow[bank] = row
		st.Activates++
	}
	dataStart := start + cmd
	if ch.busReady > dataStart {
		dataStart = ch.busReady
	}
	end := dataStart + uint64(ch.cfg.TBurst)
	ch.busReady = end
	ch.bankReady[bank] = end
	if write {
		st.Writes++
	} else {
		st.Reads++
	}
	st.BusyCycles += uint64(ch.cfg.TBurst)
	// pending window: arrival -> completion
	if end > now {
		st.PendingCycles += end - now
	}
	ch.lastEnd[bank] = end

	if ch.interval > 0 {
		// burst cycles to the bucket containing dataStart
		addToBucket(&ch.busySeries, bank, dataStart/ch.interval, uint64(ch.cfg.TBurst))
		addToBucket(&ch.cmdSeries, bank, start/ch.interval, 1)
		for b := now / ch.interval; b <= end/ch.interval; b++ {
			span := ch.interval
			if b == now/ch.interval {
				span = ch.interval - now%ch.interval
			}
			if b == end/ch.interval {
				e := end % ch.interval
				if b == now/ch.interval {
					span = end - now
				} else {
					span = e
				}
			}
			addToBucket(&ch.pendSeries, bank, b, span)
		}
	}
	return end
}

// NumBanks returns the bank count.
func (ch *Channel) NumBanks() int { return ch.cfg.NumBanks }

// BurstCycles returns the data-transfer cycles per access.
func (ch *Channel) BurstCycles() int { return ch.cfg.TBurst }

// EfficiencySeries returns per-bank per-bucket efficiency in [0,1]: the
// paper's definition — bandwidth utilization when there is a pending
// request waiting to be processed.
func (ch *Channel) EfficiencySeries() [][]float64 {
	out := make([][]float64, ch.cfg.NumBanks)
	for b := 0; b < ch.cfg.NumBanks; b++ {
		busy := ch.busySeries[b]
		pend := ch.pendSeries[b]
		n := len(pend)
		if len(busy) > n {
			n = len(busy)
		}
		s := make([]float64, n)
		for i := 0; i < n; i++ {
			var bu, pe uint64
			if i < len(busy) {
				bu = busy[i]
			}
			if i < len(pend) {
				pe = pend[i]
			}
			if pe > 0 {
				v := float64(bu) / float64(pe)
				if v > 1 {
					v = 1
				}
				s[i] = v
			}
		}
		out[b] = s
	}
	return out
}

// UtilizationSeries returns per-bank per-bucket utilization: per the
// paper, two times the number of read and write commands per command
// cycle (normalised to the bucket width).
func (ch *Channel) UtilizationSeries() [][]float64 {
	out := make([][]float64, ch.cfg.NumBanks)
	for b := 0; b < ch.cfg.NumBanks; b++ {
		cmds := ch.cmdSeries[b]
		s := make([]float64, len(cmds))
		for i, c := range cmds {
			v := 2 * float64(c) * float64(ch.cfg.TBurst) / float64(ch.interval)
			if v > 1 {
				v = 1
			}
			s[i] = v
		}
		out[b] = s
	}
	return out
}

// Totals returns aggregate reads, writes, activates, busy cycles.
func (ch *Channel) Totals() (reads, writes, acts, busy uint64) {
	for i := range ch.Banks {
		reads += ch.Banks[i].Reads
		writes += ch.Banks[i].Writes
		acts += ch.Banks[i].Activates
		busy += ch.Banks[i].BusyCycles
	}
	return
}

// Reset clears state and statistics.
func (ch *Channel) Reset() {
	for i := range ch.bankReady {
		ch.bankReady[i] = 0
		ch.openRow[i] = -1
		ch.lastEnd[i] = 0
		ch.Banks[i] = BankStats{}
	}
	ch.busReady = 0
	if ch.interval > 0 {
		ch.busySeries = make([][]uint64, ch.cfg.NumBanks)
		ch.pendSeries = make([][]uint64, ch.cfg.NumBanks)
		ch.cmdSeries = make([][]uint64, ch.cfg.NumBanks)
	}
}
