package dram

import (
	"testing"
	"testing/quick"
)

func TestRowHitFasterThanRowMiss(t *testing.T) {
	ch := NewChannel(DefaultConfig(), 0)
	// first access opens the row
	e1 := ch.Service(0, 0x0, false)
	// same row: CAS only
	e2 := ch.Service(e1, 0x40, false)
	// different row, same bank: precharge + activate + CAS
	cfg := DefaultConfig()
	far := uint64(cfg.RowBytes) * uint64(cfg.NumBanks) * 256
	e3 := ch.Service(e2, far, false)
	hitLat := e2 - e1
	missLat := e3 - e2
	if hitLat >= missLat {
		t.Fatalf("row hit (%d) not faster than row miss (%d)", hitLat, missLat)
	}
	r, _, acts, _ := ch.Totals()
	if r != 3 || acts != 2 {
		t.Fatalf("reads=%d acts=%d, want 3 reads 2 activates", r, acts)
	}
}

func TestBankParallelismBeatsBankCamping(t *testing.T) {
	// The paper's §V-B phenomenon: requests hammering one bank serialise;
	// spread across banks they overlap.
	camped := NewChannel(DefaultConfig(), 0)
	var endCamped uint64
	for i := 0; i < 8; i++ {
		// same bank, different rows -> worst case
		addr := uint64(i) * uint64(DefaultConfig().RowBytes) * uint64(DefaultConfig().NumBanks) * 256
		endCamped = camped.Service(0, addr, false)
	}
	spread := NewChannel(DefaultConfig(), 0)
	var endSpread uint64
	for i := 0; i < 8; i++ {
		addr := uint64(i) * 256 // consecutive banks
		e := spread.Service(0, addr, false)
		if e > endSpread {
			endSpread = e
		}
	}
	if endSpread >= endCamped {
		t.Fatalf("bank-parallel completion %d not faster than camped %d", endSpread, endCamped)
	}
}

func TestEfficiencyAndUtilizationSeries(t *testing.T) {
	ch := NewChannel(DefaultConfig(), 100)
	for i := 0; i < 32; i++ {
		ch.Service(uint64(i*10), uint64(i)*256, i%4 == 0)
	}
	eff := ch.EfficiencySeries()
	util := ch.UtilizationSeries()
	if len(eff) != ch.NumBanks() || len(util) != ch.NumBanks() {
		t.Fatalf("series bank counts: %d/%d", len(eff), len(util))
	}
	var any float64
	for b := range eff {
		for _, v := range eff[b] {
			if v < 0 || v > 1 {
				t.Fatalf("efficiency %v out of range", v)
			}
			any += v
		}
		for _, v := range util[b] {
			if v < 0 || v > 1 {
				t.Fatalf("utilization %v out of range", v)
			}
		}
	}
	if any == 0 {
		t.Fatal("efficiency series empty despite traffic")
	}
}

// Property: completion times never precede arrival, and the data bus
// never double-books (monotone completion per issue order on one bank).
func TestServiceOrderingProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		ch := NewChannel(DefaultConfig(), 0)
		now := uint64(0)
		lastEnd := map[int]uint64{}
		for _, a := range addrs {
			addr := uint64(a) * 64
			end := ch.Service(now, addr, false)
			if end <= now {
				return false
			}
			b := ch.BankOf(addr)
			if end < lastEnd[b] {
				return false // per-bank completions must be monotone
			}
			lastEnd[b] = end
			now += 2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// sameBankAddr returns the i-th address on bank `bank`, advancing one
// row per step (the row-thrash stride).
func sameBankAddr(cfg Config, bank, i int) uint64 {
	rowStride := uint64(cfg.RowBytes) * uint64(cfg.NumBanks)
	return uint64(bank)*256 + uint64(i)*rowStride
}

// TestSchedulingEdgeCases is the table-driven pass over the §V-B
// pathologies and the FR-FCFS scheduler's bounds.
func TestSchedulingEdgeCases(t *testing.T) {
	t.Run("row_buffer_thrash", func(t *testing.T) {
		// alternating rows on one bank: every access activates, none hit
		ch := NewChannel(DefaultConfig(), 0)
		for i := 0; i < 16; i++ {
			ch.Service(uint64(i), sameBankAddr(ch.cfg, 0, i%2*3), false)
		}
		_, _, acts, _ := ch.Totals()
		if acts != 16 || ch.Banks[0].RowHits != 0 {
			t.Fatalf("thrash: activates=%d rowhits=%d, want 16/0", acts, ch.Banks[0].RowHits)
		}
	})

	t.Run("bank_camping_slower_than_spread", func(t *testing.T) {
		// batch API twin of TestBankParallelismBeatsBankCamping
		camped := NewChannel(DefaultConfig(), 0)
		var campReqs []*Req
		for i := 0; i < 8; i++ {
			campReqs = append(campReqs, &Req{Addr: sameBankAddr(camped.cfg, 0, i)})
		}
		camped.ServiceBatch(campReqs)
		spread := NewChannel(DefaultConfig(), 0)
		var spreadReqs []*Req
		for i := 0; i < 8; i++ {
			spreadReqs = append(spreadReqs, &Req{Addr: uint64(i) * 256})
		}
		spread.ServiceBatch(spreadReqs)
		campEnd, spreadEnd := uint64(0), uint64(0)
		for i := range campReqs {
			if campReqs[i].Done > campEnd {
				campEnd = campReqs[i].Done
			}
			if spreadReqs[i].Done > spreadEnd {
				spreadEnd = spreadReqs[i].Done
			}
		}
		if spreadEnd >= campEnd {
			t.Fatalf("bank-parallel batch %d not faster than camped batch %d", spreadEnd, campEnd)
		}
	})

	t.Run("full_queue_backpressure", func(t *testing.T) {
		// same-cycle bank-parallel traffic: with queue slots to spare the
		// banks overlap; with a 2-deep queue request i cannot start before
		// request i-2 completed, serialising the same traffic
		mkReqs := func() []*Req {
			var reqs []*Req
			for i := 0; i < 16; i++ {
				reqs = append(reqs, &Req{Addr: uint64(i%8) * 256})
			}
			return reqs
		}
		wide := DefaultConfig()
		deep := mkReqs()
		NewChannel(wide, 0).ServiceBatch(deep)
		narrow := DefaultConfig()
		narrow.QueueDepth = 2
		shallow := mkReqs()
		NewChannel(narrow, 0).ServiceBatch(shallow)
		last := func(reqs []*Req) uint64 {
			var m uint64
			for _, r := range reqs {
				if r.Done > m {
					m = r.Done
				}
			}
			return m
		}
		if last(shallow) <= last(deep) {
			t.Fatalf("2-deep queue finished at %d, not later than %d-deep queue at %d",
				last(shallow), wide.QueueDepth, last(deep))
		}
	})

	t.Run("frfcfs_row_hit_first", func(t *testing.T) {
		cfg := DefaultConfig()
		ch := NewChannel(cfg, 0)
		ch.Service(0, sameBankAddr(cfg, 0, 0), false) // open row 0 on bank 0
		// row 0's chunks on bank 0 sit 256*NumBanks bytes apart (256B
		// chunks interleave across banks)
		chunk := uint64(256 * cfg.NumBanks)
		miss := &Req{Addr: sameBankAddr(cfg, 0, 5)}
		hit := &Req{Addr: sameBankAddr(cfg, 0, 0) + chunk} // row 0, next chunk
		ch.ServiceBatch([]*Req{miss, hit})
		if !hit.RowHit {
			t.Fatal("open-row request not detected as a row hit")
		}
		if hit.Done >= miss.Done {
			t.Fatalf("row hit (done %d) not scheduled before older row miss (done %d)", hit.Done, miss.Done)
		}

		// window 1 degrades to in-order: the older miss goes first
		inorder := cfg
		inorder.ReorderWindow = 1
		ch2 := NewChannel(inorder, 0)
		ch2.Service(0, sameBankAddr(cfg, 0, 0), false)
		miss2 := &Req{Addr: sameBankAddr(cfg, 0, 5)}
		hit2 := &Req{Addr: sameBankAddr(cfg, 0, 0) + chunk}
		ch2.ServiceBatch([]*Req{miss2, hit2})
		if miss2.Done >= hit2.Done {
			t.Fatalf("window=1 must service in order: miss done %d, later row-hit done %d", miss2.Done, hit2.Done)
		}
	})

	t.Run("frfcfs_starvation_bound", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.ReorderWindow = 16
		cfg.StarveLimit = 3
		ch := NewChannel(cfg, 0)
		ch.Service(0, sameBankAddr(cfg, 0, 0), false) // open row 0
		head := &Req{Addr: sameBankAddr(cfg, 0, 9)}
		reqs := []*Req{head}
		// the remaining 7 chunks of row 0 on bank 0, all row hits queued
		// behind the row-miss head
		chunk := uint64(256 * cfg.NumBanks)
		for i := 0; i < 7; i++ {
			reqs = append(reqs, &Req{Addr: sameBankAddr(cfg, 0, 0) + uint64(i+1)*chunk})
		}
		ch.ServiceBatch(reqs)
		bypassed := 0
		for _, r := range reqs[1:] {
			if r.Done < head.Done {
				bypassed++
			}
		}
		if bypassed > cfg.StarveLimit {
			t.Fatalf("oldest request bypassed by %d row hits, starvation bound is %d", bypassed, cfg.StarveLimit)
		}
		if bypassed == 0 {
			t.Fatal("no reordering happened at all — FR-FCFS inactive")
		}
	})
}

// TestBatchNoCompletionBeforeArrival is the monotonicity property of the
// absolute-time resource model: whatever the batch shape, queue pressure
// or reordering, no request's completion may precede its arrival (and
// each needs at least a burst).
func TestBatchNoCompletionBeforeArrival(t *testing.T) {
	f := func(addrs []uint16, arrivals []uint16, depth uint8) bool {
		cfg := DefaultConfig()
		cfg.QueueDepth = int(depth%8) + 1
		ch := NewChannel(cfg, 0)
		var reqs []*Req
		for i, a := range addrs {
			arrive := uint64(0)
			if i < len(arrivals) {
				arrive = uint64(arrivals[i])
			}
			reqs = append(reqs, &Req{Arrive: arrive, Addr: uint64(a) * 64, Write: i%3 == 0})
		}
		ch.ServiceBatch(reqs)
		for _, r := range reqs {
			if r.Done < r.Arrive+uint64(cfg.TBurst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBatchDeterminism double-runs one batch shape and demands identical
// schedules — the partition drain depends on it.
func TestBatchDeterminism(t *testing.T) {
	run := func() []uint64 {
		ch := NewChannel(DefaultConfig(), 0)
		var reqs []*Req
		for i := 0; i < 64; i++ {
			reqs = append(reqs, &Req{Arrive: uint64(i % 7), Addr: uint64(i*37%256) * 256, Write: i%5 == 0})
		}
		ch.ServiceBatch(reqs)
		out := make([]uint64, len(reqs))
		for i, r := range reqs {
			out[i] = r.Done
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("batch schedule not deterministic at request %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestReset(t *testing.T) {
	ch := NewChannel(DefaultConfig(), 50)
	ch.Service(0, 0, false)
	ch.Reset()
	r, w, a, b := ch.Totals()
	if r+w+a+b != 0 {
		t.Fatal("totals not cleared")
	}
	if len(ch.EfficiencySeries()[0]) != 0 {
		t.Fatal("series not cleared")
	}
}
