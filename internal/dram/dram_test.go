package dram

import (
	"testing"
	"testing/quick"
)

func TestRowHitFasterThanRowMiss(t *testing.T) {
	ch := NewChannel(DefaultConfig(), 0)
	// first access opens the row
	e1 := ch.Service(0, 0x0, false)
	// same row: CAS only
	e2 := ch.Service(e1, 0x40, false)
	// different row, same bank: precharge + activate + CAS
	cfg := DefaultConfig()
	far := uint64(cfg.RowBytes) * uint64(cfg.NumBanks) * 256
	e3 := ch.Service(e2, far, false)
	hitLat := e2 - e1
	missLat := e3 - e2
	if hitLat >= missLat {
		t.Fatalf("row hit (%d) not faster than row miss (%d)", hitLat, missLat)
	}
	r, _, acts, _ := ch.Totals()
	if r != 3 || acts != 2 {
		t.Fatalf("reads=%d acts=%d, want 3 reads 2 activates", r, acts)
	}
}

func TestBankParallelismBeatsBankCamping(t *testing.T) {
	// The paper's §V-B phenomenon: requests hammering one bank serialise;
	// spread across banks they overlap.
	camped := NewChannel(DefaultConfig(), 0)
	var endCamped uint64
	for i := 0; i < 8; i++ {
		// same bank, different rows -> worst case
		addr := uint64(i) * uint64(DefaultConfig().RowBytes) * uint64(DefaultConfig().NumBanks) * 256
		endCamped = camped.Service(0, addr, false)
	}
	spread := NewChannel(DefaultConfig(), 0)
	var endSpread uint64
	for i := 0; i < 8; i++ {
		addr := uint64(i) * 256 // consecutive banks
		e := spread.Service(0, addr, false)
		if e > endSpread {
			endSpread = e
		}
	}
	if endSpread >= endCamped {
		t.Fatalf("bank-parallel completion %d not faster than camped %d", endSpread, endCamped)
	}
}

func TestEfficiencyAndUtilizationSeries(t *testing.T) {
	ch := NewChannel(DefaultConfig(), 100)
	for i := 0; i < 32; i++ {
		ch.Service(uint64(i*10), uint64(i)*256, i%4 == 0)
	}
	eff := ch.EfficiencySeries()
	util := ch.UtilizationSeries()
	if len(eff) != ch.NumBanks() || len(util) != ch.NumBanks() {
		t.Fatalf("series bank counts: %d/%d", len(eff), len(util))
	}
	var any float64
	for b := range eff {
		for _, v := range eff[b] {
			if v < 0 || v > 1 {
				t.Fatalf("efficiency %v out of range", v)
			}
			any += v
		}
		for _, v := range util[b] {
			if v < 0 || v > 1 {
				t.Fatalf("utilization %v out of range", v)
			}
		}
	}
	if any == 0 {
		t.Fatal("efficiency series empty despite traffic")
	}
}

// Property: completion times never precede arrival, and the data bus
// never double-books (monotone completion per issue order on one bank).
func TestServiceOrderingProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		ch := NewChannel(DefaultConfig(), 0)
		now := uint64(0)
		lastEnd := map[int]uint64{}
		for _, a := range addrs {
			addr := uint64(a) * 64
			end := ch.Service(now, addr, false)
			if end <= now {
				return false
			}
			b := ch.BankOf(addr)
			if end < lastEnd[b] {
				return false // per-bank completions must be monotone
			}
			lastEnd[b] = end
			now += 2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	ch := NewChannel(DefaultConfig(), 50)
	ch.Service(0, 0, false)
	ch.Reset()
	r, w, a, b := ch.Totals()
	if r+w+a+b != 0 {
		t.Fatal("totals not cleared")
	}
	if len(ch.EfficiencySeries()[0]) != 0 {
		t.Fatal("series not cleared")
	}
}
