// Package power is the GPUWattch analog: an event-energy model that
// splits average power into the paper's six components — core, L1 cache,
// L2 cache, NOC, DRAM and idle (Fig. 8). Constants are event energies in
// picojoules plus per-component static power in watts, calibrated so a
// compute-heavy CNN lands near the paper's reported MNIST split (≈65%
// core, ≈25% idle).
package power

import "repro/internal/timing"

// Energies holds per-event dynamic energies in picojoules.
type Energies struct {
	ALUOp      float64 // per lane-instruction (incl. register file)
	SFUOp      float64
	Issue      float64 // per warp instruction (fetch/decode/issue)
	SharedAcc  float64
	L1Acc      float64
	TexAcc     float64
	L2Acc      float64
	NoCFlit    float64
	DRAMAccess float64 // per 128B transfer incl. I/O
}

// Statics holds per-component static (leakage + constant) power in watts.
type Statics struct {
	CoreW float64
	L1W   float64
	L2W   float64
	NoCW  float64
	DRAMW float64
	IdleW float64 // chip-level constant draw attributed to "Idle"
}

// Model is a configured power model.
type Model struct {
	E Energies
	S Statics
}

// DefaultModel returns the calibrated model.
func DefaultModel() *Model {
	return &Model{
		E: Energies{
			ALUOp: 18, SFUOp: 80, Issue: 120,
			SharedAcc: 60, L1Acc: 80, TexAcc: 90,
			L2Acc: 240, NoCFlit: 100, DRAMAccess: 2600,
		},
		S: Statics{
			CoreW: 42.0, L1W: 0.8, L2W: 1.2, NoCW: 0.8, DRAMW: 2.2, IdleW: 16.0,
		},
	}
}

// Breakdown is average power per component in watts.
type Breakdown struct {
	Core float64
	L1   float64
	L2   float64
	NOC  float64
	DRAM float64
	Idle float64
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 {
	return b.Core + b.L1 + b.L2 + b.NOC + b.DRAM + b.Idle
}

// Fractions returns each component as a fraction of the total.
func (b Breakdown) Fractions() map[string]float64 {
	t := b.Total()
	if t == 0 {
		return nil
	}
	return map[string]float64{
		"Core": b.Core / t, "L1 Cache": b.L1 / t, "L2 Cache": b.L2 / t,
		"NOC": b.NOC / t, "DRAM": b.DRAM / t, "Idle": b.Idle / t,
	}
}

// Components returns name/watt pairs in the paper's Fig. 8 order.
func (b Breakdown) Components() ([]string, []float64) {
	return []string{"Core", "L1 Cache", "L2 Cache", "NOC", "DRAM", "Idle"},
		[]float64{b.Core, b.L1, b.L2, b.NOC, b.DRAM, b.Idle}
}

// Average computes the average power over a run of `cycles` cycles at
// clockMHz using the timing statistics.
func (m *Model) Average(st *timing.Stats, cycles uint64, clockMHz float64) Breakdown {
	if cycles == 0 {
		return Breakdown{Idle: m.S.IdleW}
	}
	seconds := float64(cycles) / (clockMHz * 1e6)
	pj := 1e-12
	w := func(events uint64, e float64) float64 {
		return float64(events) * e * pj / seconds
	}
	return Breakdown{
		Core: w(st.ALUOps, m.E.ALUOp) + w(st.SFUOps, m.E.SFUOp) +
			w(st.Instructions, m.E.Issue) + w(st.SharedAccesses, m.E.SharedAcc) +
			m.S.CoreW,
		L1:   w(st.L1Accesses, m.E.L1Acc) + w(st.TextureAccesses, m.E.TexAcc) + m.S.L1W,
		L2:   w(st.L2Accesses, m.E.L2Acc) + m.S.L2W,
		NOC:  w(st.NoCFlits, m.E.NoCFlit) + m.S.NoCW,
		DRAM: w(st.DRAMAccesses, m.E.DRAMAccess) + m.S.DRAMW,
		Idle: m.S.IdleW,
	}
}
