package power

import (
	"testing"

	"repro/internal/timing"
)

func TestBreakdownZeroCycles(t *testing.T) {
	m := DefaultModel()
	b := m.Average(&timing.Stats{}, 0, 1400)
	if b.Core != 0 || b.Idle != m.S.IdleW {
		t.Errorf("zero-cycle breakdown = %+v", b)
	}
}

func TestBreakdownMonotonicInActivity(t *testing.T) {
	m := DefaultModel()
	low := &timing.Stats{ALUOps: 1000, Instructions: 100, L1Accesses: 10}
	high := &timing.Stats{ALUOps: 1000000, Instructions: 100000, L1Accesses: 10000}
	bl := m.Average(low, 10000, 1400)
	bh := m.Average(high, 10000, 1400)
	if bh.Core <= bl.Core {
		t.Errorf("core power not monotone in activity: %v vs %v", bh.Core, bl.Core)
	}
	if bh.Idle != bl.Idle {
		t.Errorf("idle power must be constant: %v vs %v", bh.Idle, bl.Idle)
	}
}

func TestFractionsSumToOne(t *testing.T) {
	m := DefaultModel()
	st := &timing.Stats{
		ALUOps: 5e6, SFUOps: 1e5, Instructions: 2e5,
		L1Accesses: 3e4, L2Accesses: 1e4, DRAMAccesses: 3e3, NoCFlits: 2e4,
	}
	b := m.Average(st, 200000, 1400)
	var sum float64
	for _, f := range b.Fractions() {
		if f < 0 {
			t.Fatalf("negative fraction: %+v", b.Fractions())
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum = %v", sum)
	}
	names, watts := b.Components()
	if len(names) != 6 || len(watts) != 6 {
		t.Error("expected the paper's six components")
	}
	var total float64
	for _, w := range watts {
		total += w
	}
	if diff := total - b.Total(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("components do not sum to total: %v vs %v", total, b.Total())
	}
}
