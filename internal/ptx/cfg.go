package ptx

import "fmt"

// CFG is the control-flow graph of a kernel at basic-block granularity.
// It exists to compute the immediate post-dominator of every potentially
// divergent branch: GPGPU-Sim's SIMT reconvergence stack (and ours, in
// internal/exec) reconverges diverged warps at the IPDOM of the branch.
type CFG struct {
	Blocks []*Block
	// blockOf maps an instruction PC to its block index.
	blockOf []int
}

// Block is one basic block.
type Block struct {
	ID    int
	Start int // first instruction PC
	End   int // one past last instruction PC
	Succs []int
	Preds []int
	// IPDom is the block index of the immediate post-dominator
	// (exitBlockID for blocks that post-dominate straight to exit).
	IPDom int
}

const noBlock = -1

// BuildCFG constructs the CFG for a kernel. A virtual exit block with
// ID == len(Blocks)-1 collects ret/exit edges.
func BuildCFG(k *Kernel) (*CFG, error) {
	n := len(k.Instrs)
	if n == 0 {
		return nil, fmt.Errorf("empty kernel body")
	}
	leader := make([]bool, n)
	leader[0] = true
	for i := 0; i < n; i++ {
		in := &k.Instrs[i]
		switch in.Op {
		case OpBra:
			if in.Target < 0 || in.Target >= n {
				return nil, fmt.Errorf("branch at pc %d targets %d (out of range)", i, in.Target)
			}
			leader[in.Target] = true
			if i+1 < n {
				leader[i+1] = true
			}
		case OpRet, OpExit:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}
	cfg := &CFG{blockOf: make([]int, n)}
	for i := 0; i < n; i++ {
		if leader[i] {
			cfg.Blocks = append(cfg.Blocks, &Block{ID: len(cfg.Blocks), Start: i})
		}
		cfg.blockOf[i] = len(cfg.Blocks) - 1
	}
	for bi, b := range cfg.Blocks {
		if bi+1 < len(cfg.Blocks) {
			b.End = cfg.Blocks[bi+1].Start
		} else {
			b.End = n
		}
	}
	exit := &Block{ID: len(cfg.Blocks), Start: n, End: n}
	cfg.Blocks = append(cfg.Blocks, exit)

	addEdge := func(from, to int) {
		f := cfg.Blocks[from]
		for _, s := range f.Succs {
			if s == to {
				return
			}
		}
		f.Succs = append(f.Succs, to)
		cfg.Blocks[to].Preds = append(cfg.Blocks[to].Preds, from)
	}

	for _, b := range cfg.Blocks[:len(cfg.Blocks)-1] {
		last := &k.Instrs[b.End-1]
		switch last.Op {
		case OpBra:
			addEdge(b.ID, cfg.blockOf[last.Target])
			if last.PredReg >= 0 { // predicated branch falls through too
				if b.End < n {
					addEdge(b.ID, cfg.blockOf[b.End])
				} else {
					addEdge(b.ID, exit.ID)
				}
			}
		case OpRet, OpExit:
			addEdge(b.ID, exit.ID)
		default:
			// A predicated ret/exit mid-block cannot happen (they end
			// blocks); plain fallthrough:
			if b.End < n {
				addEdge(b.ID, cfg.blockOf[b.End])
			} else {
				addEdge(b.ID, exit.ID)
			}
		}
		// Predicated ret/exit: ret under a guard also falls through.
		if (last.Op == OpRet || last.Op == OpExit) && last.PredReg >= 0 && b.End < n {
			addEdge(b.ID, cfg.blockOf[b.End])
		}
	}
	return cfg, nil
}

// computePostDominators runs the iterative Cooper-Harvey-Kennedy algorithm
// on the reverse CFG. Every block must reach the exit block.
func (cfg *CFG) computePostDominators() error {
	nb := len(cfg.Blocks)
	exitID := nb - 1

	// Reverse post-order of the reverse graph = post-order from exit over
	// predecessor edges... we compute an ordering via DFS from exit
	// following Preds (i.e. RPO of reverse CFG).
	order := make([]int, 0, nb)
	seen := make([]bool, nb)
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, p := range cfg.Blocks[b].Preds {
			if !seen[p] {
				dfs(p)
			}
		}
		order = append(order, b)
	}
	dfs(exitID)
	for b := 0; b < nb; b++ {
		if !seen[b] {
			return fmt.Errorf("block %d (pc %d) cannot reach exit", b, cfg.Blocks[b].Start)
		}
	}
	// order is post-order of reverse graph; reverse it for RPO.
	rpo := make([]int, nb)
	pos := make([]int, nb)
	for i := range order {
		rpo[nb-1-i] = order[i]
	}
	for i, b := range rpo {
		pos[b] = i
	}

	ipdom := make([]int, nb)
	for i := range ipdom {
		ipdom[i] = noBlock
	}
	ipdom[exitID] = exitID

	intersect := func(a, b int) int {
		for a != b {
			for pos[a] > pos[b] {
				a = ipdom[a]
			}
			for pos[b] > pos[a] {
				b = ipdom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == exitID {
				continue
			}
			newIdom := noBlock
			for _, s := range cfg.Blocks[b].Succs {
				if ipdom[s] == noBlock && s != exitID {
					continue
				}
				if s == exitID || ipdom[s] != noBlock {
					if newIdom == noBlock {
						newIdom = s
					} else {
						newIdom = intersect(s, newIdom)
					}
				}
			}
			if newIdom != noBlock && ipdom[b] != newIdom {
				ipdom[b] = newIdom
				changed = true
			}
		}
	}
	for b := 0; b < nb; b++ {
		cfg.Blocks[b].IPDom = ipdom[b]
	}
	return nil
}

// AnalyzeReconvergence builds the CFG, computes post-dominators, and
// stamps every branch instruction with its reconvergence PC. A branch in
// block B reconverges at the first instruction of IPDOM(B); branches whose
// IPDOM is the virtual exit block reconverge at len(Instrs) (the sentinel
// "end of kernel" PC).
func AnalyzeReconvergence(k *Kernel) error {
	cfg, err := BuildCFG(k)
	if err != nil {
		return err
	}
	if err := cfg.computePostDominators(); err != nil {
		return err
	}
	k.cfg = cfg
	for i := range k.Instrs {
		in := &k.Instrs[i]
		if in.Op != OpBra {
			continue
		}
		b := cfg.blockOf[i]
		ip := cfg.Blocks[b].IPDom
		in.RPC = cfg.Blocks[ip].Start
	}
	return nil
}

// CFGOf exposes the computed CFG (nil before AnalyzeReconvergence).
func (k *Kernel) CFGOf() *CFG { return k.cfg }

// BlockOf returns the basic-block index containing pc.
func (cfg *CFG) BlockOf(pc int) int { return cfg.blockOf[pc] }
