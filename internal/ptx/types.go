// Package ptx implements a parser, in-memory representation, printer and
// control-flow analysis for the subset of NVIDIA's PTX virtual ISA that is
// used by the cuDNN-style kernels in this repository.
//
// The subset covers everything the paper's workloads exercise: parameter,
// global, shared, local, constant and generic memory spaces; vectorised
// loads/stores (float2/float4); predication; the SIMT-relevant control flow
// (bra/bar.sync/ret/exit); integer and floating-point arithmetic including
// the instructions the paper debugged (rem, bfe, brev); conversions
// including FP16; textures; and atomics.
package ptx

import "fmt"

// Type is a PTX operand type specifier (the ".s32" in "add.s32").
type Type uint8

// PTX scalar types.
const (
	TypeNone Type = iota
	U8
	S8
	U16
	S16
	U32
	S32
	U64
	S64
	F16
	F32
	F64
	B8
	B16
	B32
	B64
	Pred
)

var typeNames = map[Type]string{
	U8: "u8", S8: "s8", U16: "u16", S16: "s16",
	U32: "u32", S32: "s32", U64: "u64", S64: "s64",
	F16: "f16", F32: "f32", F64: "f64",
	B8: "b8", B16: "b16", B32: "b32", B64: "b64",
	Pred: "pred",
}

var typeByName = func() map[string]Type {
	m := make(map[string]Type, len(typeNames))
	for t, n := range typeNames {
		m[n] = t
	}
	return m
}()

func (t Type) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return "none"
}

// Size returns the storage size of the type in bytes.
func (t Type) Size() int {
	switch t {
	case U8, S8, B8:
		return 1
	case U16, S16, B16, F16:
		return 2
	case U32, S32, B32, F32, Pred:
		return 4
	case U64, S64, B64, F64:
		return 8
	}
	return 0
}

// Signed reports whether the type is a signed integer type.
func (t Type) Signed() bool {
	switch t {
	case S8, S16, S32, S64:
		return true
	}
	return false
}

// Float reports whether the type is a floating-point type.
func (t Type) Float() bool {
	switch t {
	case F16, F32, F64:
		return true
	}
	return false
}

// Integer reports whether the type is an integer (or untyped-bits) type.
func (t Type) Integer() bool { return t != TypeNone && t != Pred && !t.Float() }

// Space is a PTX state space.
type Space uint8

// PTX state spaces.
const (
	SpaceNone Space = iota
	SpaceGeneric
	SpaceGlobal
	SpaceShared
	SpaceLocal
	SpaceParam
	SpaceConst
	SpaceReg
	SpaceTex
)

var spaceNames = map[Space]string{
	SpaceGeneric: "gen", SpaceGlobal: "global", SpaceShared: "shared",
	SpaceLocal: "local", SpaceParam: "param", SpaceConst: "const",
	SpaceReg: "reg", SpaceTex: "tex",
}

func (s Space) String() string {
	if n, ok := spaceNames[s]; ok {
		return n
	}
	return "none"
}

// Op is a PTX opcode.
type Op uint8

// Supported opcodes.
const (
	OpInvalid Op = iota
	OpLd
	OpSt
	OpMov
	OpCvt
	OpCvta
	OpAdd
	OpSub
	OpMul
	OpMad
	OpFma
	OpDiv
	OpRem
	OpAbs
	OpNeg
	OpMin
	OpMax
	OpSqrt
	OpRsqrt
	OpRcp
	OpLg2
	OpEx2
	OpSin
	OpCos
	OpSetp
	OpSelp
	OpSlct
	OpAnd
	OpOr
	OpXor
	OpNot
	OpShl
	OpShr
	OpBrev
	OpBfe
	OpBfi
	OpPopc
	OpClz
	OpBra
	OpBar
	OpRet
	OpExit
	OpAtom
	OpTex
	OpMembar
	opMax
)

var opNames = map[Op]string{
	OpLd: "ld", OpSt: "st", OpMov: "mov", OpCvt: "cvt", OpCvta: "cvta",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpMad: "mad", OpFma: "fma",
	OpDiv: "div", OpRem: "rem", OpAbs: "abs", OpNeg: "neg", OpMin: "min",
	OpMax: "max", OpSqrt: "sqrt", OpRsqrt: "rsqrt", OpRcp: "rcp",
	OpLg2: "lg2", OpEx2: "ex2", OpSin: "sin", OpCos: "cos",
	OpSetp: "setp", OpSelp: "selp", OpSlct: "slct",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShl: "shl", OpShr: "shr", OpBrev: "brev", OpBfe: "bfe", OpBfi: "bfi",
	OpPopc: "popc", OpClz: "clz",
	OpBra: "bra", OpBar: "bar", OpRet: "ret", OpExit: "exit",
	OpAtom: "atom", OpTex: "tex", OpMembar: "membar",
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for o, n := range opNames {
		m[n] = o
	}
	return m
}()

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumOps returns the number of defined opcodes, for coverage accounting.
func NumOps() int { return int(opMax) }

// CmpOp is a comparison operator used by setp and slct.
type CmpOp uint8

// Comparison operators.
const (
	CmpNone CmpOp = iota
	CmpEq
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
	CmpLo // unsigned lt
	CmpLs // unsigned le
	CmpHi // unsigned gt
	CmpHs // unsigned ge
	CmpEqu
	CmpNeu
	CmpLtu
	CmpLeu
	CmpGtu
	CmpGeu
	CmpNum
	CmpNan
)

var cmpNames = map[CmpOp]string{
	CmpEq: "eq", CmpNe: "ne", CmpLt: "lt", CmpLe: "le", CmpGt: "gt",
	CmpGe: "ge", CmpLo: "lo", CmpLs: "ls", CmpHi: "hi", CmpHs: "hs",
	CmpEqu: "equ", CmpNeu: "neu", CmpLtu: "ltu", CmpLeu: "leu",
	CmpGtu: "gtu", CmpGeu: "geu", CmpNum: "num", CmpNan: "nan",
}

var cmpByName = func() map[string]CmpOp {
	m := make(map[string]CmpOp, len(cmpNames))
	for c, n := range cmpNames {
		m[n] = c
	}
	return m
}()

func (c CmpOp) String() string {
	if n, ok := cmpNames[c]; ok {
		return n
	}
	return "none"
}

// AtomOp is the operation performed by an atom instruction.
type AtomOp uint8

// Atomic operations.
const (
	AtomNone AtomOp = iota
	AtomAdd
	AtomMin
	AtomMax
	AtomExch
	AtomCas
	AtomAnd
	AtomOr
	AtomXor
)

var atomNames = map[AtomOp]string{
	AtomAdd: "add", AtomMin: "min", AtomMax: "max", AtomExch: "exch",
	AtomCas: "cas", AtomAnd: "and", AtomOr: "or", AtomXor: "xor",
}

var atomByName = func() map[string]AtomOp {
	m := make(map[string]AtomOp, len(atomNames))
	for a, n := range atomNames {
		m[n] = a
	}
	return m
}()

func (a AtomOp) String() string {
	if n, ok := atomNames[a]; ok {
		return n
	}
	return "none"
}

// SReg identifies a PTX special register.
type SReg uint8

// Special registers.
const (
	SRegNone SReg = iota
	SRegTidX
	SRegTidY
	SRegTidZ
	SRegNtidX
	SRegNtidY
	SRegNtidZ
	SRegCtaidX
	SRegCtaidY
	SRegCtaidZ
	SRegNctaidX
	SRegNctaidY
	SRegNctaidZ
	SRegLaneID
	SRegWarpID
	SRegClock
)

var sregNames = map[SReg]string{
	SRegTidX: "%tid.x", SRegTidY: "%tid.y", SRegTidZ: "%tid.z",
	SRegNtidX: "%ntid.x", SRegNtidY: "%ntid.y", SRegNtidZ: "%ntid.z",
	SRegCtaidX: "%ctaid.x", SRegCtaidY: "%ctaid.y", SRegCtaidZ: "%ctaid.z",
	SRegNctaidX: "%nctaid.x", SRegNctaidY: "%nctaid.y", SRegNctaidZ: "%nctaid.z",
	SRegLaneID: "%laneid", SRegWarpID: "%warpid", SRegClock: "%clock",
}

var sregByName = func() map[string]SReg {
	m := make(map[string]SReg, len(sregNames))
	for s, n := range sregNames {
		m[n] = s
	}
	return m
}()

func (s SReg) String() string {
	if n, ok := sregNames[s]; ok {
		return n
	}
	return "%sreg?"
}
