package ptx

// White-box fuzz target for the lexer: any byte soup must either
// tokenise or return an error — never panic, never loop forever.

import "testing"

func FuzzLex(f *testing.F) {
	f.Add(".version 6.0\n.target sm_61\n")
	f.Add("ld.global.f32 %f1, [%rd1+16];")
	f.Add("mov.f32 %f1, 0f3F800000;")
	f.Add("// comment\n/* block */ .reg .pred %p<2>;")
	f.Add("0x1p-3 .0e+9 %%% <<<>>>")
	f.Add("\x00\xff\"unterminated")

	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lexPTX(src)
		if err != nil {
			return
		}
		for _, tok := range toks {
			if tok.text == "" && tok.kind != tokEOF {
				// empty non-EOF tokens would wedge the parser's cursor
				t.Fatalf("lexer produced empty token of kind %d", tok.kind)
			}
		}
	})
}
