package ptx

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tokEOF       tokKind = iota
	tokIdent             // identifiers, possibly with leading % or embedded dots (%tid.x)
	tokDirective         // .version, .reg, ... (leading dot)
	tokNumber
	tokPunct // , ; [ ] { } ( ) : @ ! + - = | < >
	tokString
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lexPTX(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
		case c == '"':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '"' {
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("ptx: line %d: unterminated string literal", l.line)
			}
			l.pos++
			l.emit(tokString, l.src[start:l.pos])
		case isIdentStart(c):
			l.lexIdent()
		case c == '.':
			// directive or modifier chain start; lex as .ident
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
				l.pos++
			}
			l.emit(tokDirective, l.src[start:l.pos])
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.lexNumber()
		case strings.IndexByte(",;[]{}():@!+-=|<>*", c) >= 0:
			l.emit(tokPunct, string(c))
			l.pos++
		default:
			return nil, fmt.Errorf("ptx: line %d: unexpected character %q", l.line, c)
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, line: l.line})
}

func isIdentStart(c byte) bool {
	return c == '%' || c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// lexIdent lexes an identifier. Special registers such as %tid.x keep the
// ".x" suffix attached so the parser sees a single token; ordinary register
// or symbol names stop at the first dot.
func (l *lexer) lexIdent() {
	start := l.pos
	if l.src[l.pos] == '%' {
		l.pos++
	}
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		l.pos++
	}
	name := l.src[start:l.pos]
	if name == "%tid" || name == "%ntid" || name == "%ctaid" || name == "%nctaid" {
		if l.pos+1 < len(l.src) && l.src[l.pos] == '.' {
			l.pos += 2 // consume .x/.y/.z
			name = l.src[start:l.pos]
		}
	}
	l.emit(tokIdent, name)
}

// lexNumber lexes decimal, hex (0x...), PTX single-precision (0f...) and
// double-precision (0d...) literals, with an optional leading minus sign.
func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	if l.pos+1 < len(l.src) && l.src[l.pos] == '0' &&
		(l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X' ||
			l.src[l.pos+1] == 'f' || l.src[l.pos+1] == 'F' ||
			l.src[l.pos+1] == 'd' || l.src[l.pos+1] == 'D') {
		l.pos += 2
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.pos++
		}
	} else {
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
			l.pos++
		}
		// decimal float literals (used only in directives, rare)
		if l.pos < len(l.src) && l.src[l.pos] == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
				l.pos++
			}
		}
	}
	if l.pos < len(l.src) && l.src[l.pos] == 'U' {
		l.pos++
	}
	l.emit(tokNumber, l.src[start:l.pos])
}

func isHexDigit(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
