package ptx_test

// Native Go fuzz target for the PTX parser, seeded with the real kernel
// corpus from internal/kernels. Run ad hoc with:
//
//	go test -fuzz=FuzzParse -fuzztime=30s -run '^$' ./internal/ptx
//
// CI runs a short smoke job (see .github/workflows/ci.yml).

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/ptx"
)

// TestParseKernelCorpusRoundTrip checks every PTX translation unit of
// the cuDNN-analog library parses and survives a Print/Parse round trip
// (complements the fuzz target, which seeds only the smaller modules to
// keep mutation throughput high).
func TestParseKernelCorpusRoundTrip(t *testing.T) {
	for i, src := range kernels.AllModules() {
		m, err := ptx.Parse(src)
		if err != nil {
			t.Fatalf("module %d does not parse: %v", i, err)
		}
		if len(m.KernelNames()) == 0 {
			t.Fatalf("module %d has no kernels", i)
		}
		if _, err := ptx.Parse(ptx.Print(m)); err != nil {
			t.Fatalf("module %d does not round-trip: %v", i, err)
		}
	}
}

func FuzzParse(f *testing.F) {
	// Compact seeds covering the grammar: module directives, parameter
	// lists, ranged register declarations, shared/local memory, labels
	// and branches, predication, vector operands, textures, atomics.
	// (The full kernel corpus is too large for good mutation throughput;
	// TestParseKernelCorpusRoundTrip covers it exhaustively instead.)
	f.Add(".version 6.0\n.target sm_61\n.address_size 64\n")
	f.Add(".visible .entry e(){ret;}")
	f.Add(".visible .entry e(.param .u64 p, .param .f32 a){.reg .b32 %r<2>;ld.param.u32 %r1,[p];ret;}")
	f.Add(".visible .entry k(){.reg .pred %p<2>;.reg .b32 %r<4>;mov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;setp.lt.u32 %p1, %r1, 8;@%p1 bra L;ret;}")
	f.Add(".visible .entry s(){.shared .align 4 .b8 tile[512];.reg .f32 %f<3>;mov.f32 %f1, 0f3F800000;st.shared.f32 [tile], %f1;bar.sync 0;ret;}")
	f.Add(".visible .entry v(.param .u64 p){.reg .b64 %rd<3>;.reg .f32 %f<5>;ld.param.u64 %rd1,[p];ld.global.v4.f32 {%f1,%f2,%f3,%f4},[%rd1];ret;}")
	f.Add(".tex .u64 texA;\n.visible .entry t(){.reg .f32 %f<5>;.reg .b32 %r<3>;tex.1d.v4.f32.s32 {%f1,%f2,%f3,%f4},[texA,{%r1}];ret;}")
	f.Add(".visible .entry a(.param .u64 p){.reg .b64 %rd<2>;.reg .f32 %f<3>;ld.param.u64 %rd1,[p];atom.global.add.f32 %f1,[%rd1],0f3F800000;ret;}")
	f.Add(".entry x{") // malformed: must error, not hang or panic
	f.Add("@%p1 bra L;\nL:")
	f.Add(".version")

	f.Fuzz(func(t *testing.T, src string) {
		m, err := ptx.Parse(src)
		if err != nil {
			return // rejecting bad input is fine; panics/hangs are not
		}
		// A parsed module must survive the APIs the simulator uses.
		names := m.KernelNames()
		for _, n := range names {
			if m.Kernels[n] == nil {
				t.Fatalf("KernelNames lists %q but Kernels has no entry", n)
			}
		}
		// Round-trip: Print must emit re-parseable PTX (the debug tool's
		// instrumented-kernel path depends on this).
		if _, err := ptx.Parse(ptx.Print(m)); err != nil {
			t.Fatalf("Print output does not re-parse: %v", err)
		}
	})
}
