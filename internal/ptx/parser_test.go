package ptx

import (
	"math"
	"strings"
	"testing"
)

const vecAddSrc = `
.version 6.0
.target sm_61
.address_size 64

.visible .entry vecadd(
	.param .u64 pA,
	.param .u64 pB,
	.param .u64 pC,
	.param .u32 pN
)
{
	.reg .pred %p<2>;
	.reg .f32 %f<4>;
	.reg .b32 %r<6>;
	.reg .b64 %rd<8>;

	ld.param.u64 %rd1, [pA];
	ld.param.u64 %rd2, [pB];
	ld.param.u64 %rd3, [pC];
	ld.param.u32 %r1, [pN];
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mov.u32 %r4, %tid.x;
	mad.lo.s32 %r5, %r2, %r3, %r4;
	setp.ge.s32 %p1, %r5, %r1;
	@%p1 bra DONE;
	cvta.to.global.u64 %rd4, %rd1;
	mul.wide.s32 %rd5, %r5, 4;
	add.s64 %rd6, %rd4, %rd5;
	ld.global.f32 %f1, [%rd6];
	cvta.to.global.u64 %rd4, %rd2;
	add.s64 %rd7, %rd4, %rd5;
	ld.global.f32 %f2, [%rd7];
	add.f32 %f3, %f1, %f2;
	cvta.to.global.u64 %rd4, %rd3;
	add.s64 %rd6, %rd4, %rd5;
	st.global.f32 [%rd6], %f3;
DONE:
	ret;
}
`

func TestParseVecAdd(t *testing.T) {
	m, err := Parse(vecAddSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Version != "6.0" || m.Target != "sm_61" || m.AddressSize != 64 {
		t.Errorf("header = %q %q %d", m.Version, m.Target, m.AddressSize)
	}
	k := m.Kernels["vecadd"]
	if k == nil {
		t.Fatal("kernel vecadd missing")
	}
	if got := len(k.Params); got != 4 {
		t.Fatalf("params = %d, want 4", got)
	}
	if k.Params[3].Offset != 24 || k.Params[3].Size != 4 {
		t.Errorf("pN offset/size = %d/%d, want 24/4", k.Params[3].Offset, k.Params[3].Size)
	}
	if k.ParamBytes() != 28 {
		t.Errorf("ParamBytes = %d, want 28", k.ParamBytes())
	}
	if got := len(k.Instrs); got != 22 {
		t.Fatalf("instruction count = %d, want 22", got)
	}

	// The guarded branch must target DONE (pc 21) and reconverge there too,
	// since DONE's block post-dominates the branch.
	br := k.Instrs[9]
	if br.Op != OpBra || br.PredReg < 0 {
		t.Fatalf("pc 9 = %v, want guarded bra", br.Raw)
	}
	if br.Target != k.Labels["DONE"] {
		t.Errorf("bra target = %d, want %d", br.Target, k.Labels["DONE"])
	}
	if br.RPC != k.Labels["DONE"] {
		t.Errorf("bra RPC = %d, want %d", br.RPC, k.Labels["DONE"])
	}

	// mad.lo.s32 decoding
	mad := k.Instrs[7]
	if mad.Op != OpMad || !mad.Lo || mad.T != S32 || len(mad.Src) != 3 {
		t.Errorf("mad decode wrong: %+v", mad)
	}
	// mul.wide.s32
	mw := k.Instrs[11]
	if mw.Op != OpMul || !mw.Wide || mw.T != S32 {
		t.Errorf("mul.wide decode wrong: %+v", mw)
	}
	if mw.Src[1].Kind != OperandImm || mw.Src[1].Imm != 4 {
		t.Errorf("mul.wide imm operand wrong: %+v", mw.Src[1])
	}
	// cvta.to.global
	cv := k.Instrs[10]
	if cv.Op != OpCvta || !cv.To || cv.Space != SpaceGlobal || cv.T != U64 {
		t.Errorf("cvta decode wrong: %+v", cv)
	}
}

func TestParseImmediates(t *testing.T) {
	cases := []struct {
		lit   string
		bits  uint64
		float bool
	}{
		{"42", 42, false},
		{"-1", 0xFFFFFFFFFFFFFFFF, false},
		{"0x10", 16, false},
		{"0f3F800000", math.Float64bits(1.0), true},
		{"0f40490FDB", math.Float64bits(float64(math.Float32frombits(0x40490FDB))), true},
		{"0d3FF0000000000000", math.Float64bits(1.0), true},
	}
	for _, c := range cases {
		o, err := parseImm(c.lit)
		if err != nil {
			t.Errorf("parseImm(%q): %v", c.lit, err)
			continue
		}
		if o.Imm != c.bits || o.FloatImm != c.float {
			t.Errorf("parseImm(%q) = %x/%v, want %x/%v", c.lit, o.Imm, o.FloatImm, c.bits, c.float)
		}
	}
}

func TestParseVectorAndShared(t *testing.T) {
	src := `
.version 6.0
.target sm_61
.address_size 64
.visible .entry vk(
	.param .u64 pIn,
	.param .u64 pOut
)
{
	.reg .f32 %f<8>;
	.reg .b64 %rd<4>;
	.reg .b32 %r<4>;
	.shared .align 8 .b8 tile[512];

	ld.param.u64 %rd1, [pIn];
	cvta.to.global.u64 %rd1, %rd1;
	ld.global.v2.f32 {%f1, %f2}, [%rd1];
	ld.global.v4.f32 {%f3, %f4, %f5, %f6}, [%rd1+16];
	mov.u32 %r1, tile;
	st.shared.v2.f32 [%r1], {%f1, %f2};
	bar.sync 0;
	ld.param.u64 %rd2, [pOut];
	cvta.to.global.u64 %rd2, %rd2;
	st.global.f32 [%rd2+4], %f3;
	ret;
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k := m.Kernels["vk"]
	if k.SharedBytes != 512 {
		t.Errorf("SharedBytes = %d, want 512", k.SharedBytes)
	}
	v2 := k.Instrs[2]
	if v2.Vec != 2 || v2.Dst[0].Kind != OperandVec || len(v2.Dst[0].Elems) != 2 {
		t.Errorf("v2 load decode wrong: %+v", v2)
	}
	v4 := k.Instrs[3]
	if v4.Vec != 4 || len(v4.Dst[0].Elems) != 4 || v4.Dst[0].Elems[3].RegName != "%f6" {
		t.Errorf("v4 load decode wrong: %+v", v4)
	}
	if v4.Src[0].Kind != OperandMem || v4.Src[0].Offset != 16 {
		t.Errorf("v4 address decode wrong: %+v", v4.Src[0])
	}
	stv := k.Instrs[5]
	if stv.Op != OpSt || stv.Space != SpaceShared || stv.Vec != 2 {
		t.Errorf("shared vector store decode wrong: %+v", stv)
	}
	if stv.Src[0].Kind != OperandMem || stv.Src[1].Kind != OperandVec {
		t.Errorf("store operands wrong: %+v", stv.Src)
	}
	movSym := k.Instrs[4]
	if movSym.Src[0].Kind != OperandSym || movSym.Src[0].Sym != "tile" {
		t.Errorf("mov of shared symbol decode wrong: %+v", movSym)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undeclared register", `
.version 6.0
.target sm_61
.visible .entry k() { add.s32 %r1, %r2, %r3; ret; }`, "undeclared register"},
		{"undefined label", `
.version 6.0
.target sm_61
.visible .entry k() { .reg .pred %p<2>; @%p1 bra NOWHERE; ret; }`, "undefined label"},
		{"unknown opcode", `
.version 6.0
.target sm_61
.visible .entry k() { frobnicate.s32 %r1; ret; }`, "unknown opcode"},
		{"module initializer", `
.version 6.0
.target sm_61
.global .b32 tbl = {1,2,3};
.visible .entry k() { ret; }`, "not supported"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("Parse error = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestRoundTrip(t *testing.T) {
	m, err := Parse(vecAddSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	text := Print(m)
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-Parse of printed module failed: %v\n%s", err, text)
	}
	k1, k2 := m.Kernels["vecadd"], m2.Kernels["vecadd"]
	if len(k1.Instrs) != len(k2.Instrs) {
		t.Fatalf("instr count changed: %d -> %d", len(k1.Instrs), len(k2.Instrs))
	}
	for i := range k1.Instrs {
		a, b := k1.Instrs[i], k2.Instrs[i]
		if a.Op != b.Op || a.T != b.T || a.Space != b.Space || a.Vec != b.Vec ||
			a.Wide != b.Wide || a.Lo != b.Lo || a.Hi != b.Hi || a.Cmp != b.Cmp ||
			a.Target != b.Target || a.RPC != b.RPC {
			t.Errorf("pc %d changed: %q vs %q", i, a.Raw, b.Raw)
		}
	}
}

func TestCFGDiamond(t *testing.T) {
	src := `
.version 6.0
.target sm_61
.visible .entry diamond(.param .u64 pOut)
{
	.reg .pred %p<2>;
	.reg .b32 %r<6>;
	.reg .b64 %rd<3>;

	mov.u32 %r1, %tid.x;
	and.b32 %r2, %r1, 1;
	setp.eq.s32 %p1, %r2, 0;
	@%p1 bra EVEN;
	mul.lo.s32 %r3, %r1, 3;
	bra JOIN;
EVEN:
	mul.lo.s32 %r3, %r1, 2;
JOIN:
	ld.param.u64 %rd1, [pOut];
	cvta.to.global.u64 %rd1, %rd1;
	mul.wide.s32 %rd2, %r1, 4;
	add.s64 %rd1, %rd1, %rd2;
	st.global.s32 [%rd1], %r3;
	ret;
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k := m.Kernels["diamond"]
	join := k.Labels["JOIN"]
	br := k.Instrs[3]
	if br.Op != OpBra {
		t.Fatalf("pc 3 is %v", br.Raw)
	}
	if br.RPC != join {
		t.Errorf("diamond branch RPC = %d, want JOIN at %d", br.RPC, join)
	}
	// The unconditional bra JOIN reconverges trivially at JOIN as well.
	ub := k.Instrs[5]
	if ub.Op != OpBra || ub.PredReg >= 0 {
		t.Fatalf("pc 5 is %v", ub.Raw)
	}
	if ub.RPC != join {
		t.Errorf("uncond branch RPC = %d, want %d", ub.RPC, join)
	}
}

func TestCFGLoop(t *testing.T) {
	src := `
.version 6.0
.target sm_61
.visible .entry loopk(.param .u32 pN)
{
	.reg .pred %p<2>;
	.reg .b32 %r<6>;

	ld.param.u32 %r1, [pN];
	mov.u32 %r2, 0;
	mov.u32 %r3, 0;
LOOP:
	setp.ge.u32 %p1, %r2, %r1;
	@%p1 bra EXITL;
	add.u32 %r3, %r3, %r2;
	add.u32 %r2, %r2, 1;
	bra LOOP;
EXITL:
	ret;
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k := m.Kernels["loopk"]
	exitl := k.Labels["EXITL"]
	br := k.Instrs[4]
	if br.RPC != exitl {
		t.Errorf("loop guard RPC = %d, want EXITL %d", br.RPC, exitl)
	}
	back := k.Instrs[7]
	if back.Op != OpBra || back.Target != k.Labels["LOOP"] {
		t.Errorf("back edge decode wrong: %+v", back)
	}
}
