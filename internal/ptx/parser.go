package ptx

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse parses one PTX translation unit. Each embedded PTX file of a
// library must be parsed with its own Parse call (paper §III-A fix 2).
func Parse(src string) (*Module, error) {
	toks, err := lexPTX(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, mod: &Module{
		Kernels:     make(map[string]*Kernel),
		AddressSize: 64,
	}}
	if err := p.parseModule(); err != nil {
		return nil, err
	}
	for _, name := range p.mod.KernelOrder {
		k := p.mod.Kernels[name]
		if err := resolveBranches(k); err != nil {
			return nil, err
		}
		if err := AnalyzeReconvergence(k); err != nil {
			return nil, fmt.Errorf("ptx: kernel %s: %w", name, err)
		}
	}
	return p.mod, nil
}

type parser struct {
	toks []token
	pos  int
	mod  *Module

	// per-kernel state
	k         *Kernel
	regPrefix map[string]Type // "%f" -> F32 for ranged declarations
}

func (p *parser) cur() token { return p.toks[p.pos] }

// next consumes and returns the current token. The trailing EOF token is
// sticky: consuming it does not advance, so truncated inputs surface as
// parse errors instead of out-of-range panics.
func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("ptx: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("ptx: line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) parseModule() error {
	for {
		t := p.cur()
		switch {
		case t.kind == tokEOF:
			return nil
		case t.kind == tokDirective:
			switch t.text {
			case ".version":
				p.next()
				p.mod.Version = p.next().text
			case ".target":
				p.next()
				p.mod.Target = p.next().text
				for p.cur().kind == tokPunct && p.cur().text == "," {
					p.next()
					p.next()
				}
			case ".address_size":
				p.next()
				n, _ := strconv.Atoi(p.next().text)
				p.mod.AddressSize = n
			case ".visible", ".extern", ".weak":
				p.next()
			case ".entry":
				if err := p.parseEntry(); err != nil {
					return err
				}
			case ".global", ".const":
				if err := p.parseModuleVar(); err != nil {
					return err
				}
			case ".tex":
				p.next()
				// .tex .u64 name;
				for p.cur().kind == tokDirective {
					p.next()
				}
				p.mod.Textures = append(p.mod.Textures, p.next().text)
				if err := p.expectPunct(";"); err != nil {
					return err
				}
			default:
				return p.errf("unsupported module directive %s", t.text)
			}
		default:
			return p.errf("unexpected token %q at module scope", t.text)
		}
	}
}

// parseModuleVar handles module-scope .global/.const declarations; only
// .texref declarations are semantically used (other globals are rejected,
// mirroring GPGPU-Sim's lack of brace-initializer support noted in §III-E).
func (p *parser) parseModuleVar() error {
	p.next() // .global / .const
	isTexref := false
	for p.cur().kind == tokDirective {
		d := p.next().text
		if d == ".texref" {
			isTexref = true
		}
	}
	name := p.next().text
	if p.cur().kind == tokPunct && p.cur().text == "[" {
		return p.errf("module-scope array variables are not supported (pass tables via kernel parameters)")
	}
	if p.cur().kind == tokPunct && p.cur().text == "=" {
		return p.errf("module-scope initializers (curly-brace syntax) are not supported")
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	if isTexref {
		p.mod.Textures = append(p.mod.Textures, name)
	}
	return nil
}

func (p *parser) parseEntry() error {
	p.next() // .entry
	name := p.next().text
	k := &Kernel{
		Name:     name,
		Labels:   make(map[string]int),
		regSlots: make(map[string]int),
		DeclRegs: make(map[Type]int),
	}
	p.k = k
	p.regPrefix = make(map[string]Type)

	if p.cur().kind == tokPunct && p.cur().text == "(" {
		p.next()
		off := 0
		for {
			if p.cur().kind == tokPunct && p.cur().text == ")" {
				p.next()
				break
			}
			if p.cur().kind == tokPunct && p.cur().text == "," {
				p.next()
				continue
			}
			if p.cur().text != ".param" {
				return p.errf("expected .param in parameter list, got %q", p.cur().text)
			}
			p.next()
			align := 0
			var pt Type
			for p.cur().kind == tokDirective {
				d := p.next().text
				switch d {
				case ".align":
					a, _ := strconv.Atoi(p.next().text)
					align = a
				case ".ptr":
					// .ptr .global .align N annotations: skip
				default:
					if t, ok := typeByName[strings.TrimPrefix(d, ".")]; ok {
						pt = t
					}
				}
			}
			pname := p.next().text
			size := pt.Size()
			if p.cur().kind == tokPunct && p.cur().text == "[" {
				p.next()
				n, _ := strconv.Atoi(p.next().text)
				if err := p.expectPunct("]"); err != nil {
					return err
				}
				size = pt.Size() * n
			}
			al := pt.Size()
			if align > al {
				al = align
			}
			if al == 0 {
				al = 1
			}
			off = (off + al - 1) / al * al
			k.Params = append(k.Params, Param{Name: pname, Type: pt, Align: al, Size: size, Offset: off})
			off += size
		}
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	if err := p.parseBody(); err != nil {
		return fmt.Errorf("kernel %s: %w", name, err)
	}
	if _, dup := p.mod.Kernels[name]; dup {
		return fmt.Errorf("ptx: duplicate kernel %s within one module", name)
	}
	p.mod.Kernels[name] = k
	p.mod.KernelOrder = append(p.mod.KernelOrder, name)
	p.k = nil
	return nil
}

func (p *parser) parseBody() error {
	k := p.k
	for {
		t := p.cur()
		switch {
		case t.kind == tokEOF:
			return p.errf("unexpected EOF in kernel body")
		case t.kind == tokPunct && t.text == "}":
			p.next()
			return nil
		case t.kind == tokDirective:
			switch t.text {
			case ".reg":
				if err := p.parseRegDecl(); err != nil {
					return err
				}
			case ".shared", ".local":
				if err := p.parseMemDecl(t.text); err != nil {
					return err
				}
			case ".pragma", ".maxntid", ".reqntid", ".minnctapersm":
				for p.cur().kind != tokPunct || p.cur().text != ";" {
					if p.cur().kind == tokEOF {
						return p.errf("unexpected EOF in %s directive", t.text)
					}
					p.next()
				}
				p.next()
			default:
				return p.errf("unsupported body directive %s", t.text)
			}
		case t.kind == tokIdent && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == ":":
			k.Labels[t.text] = len(k.Instrs)
			p.next()
			p.next()
		case t.kind == tokPunct && t.text == "@":
			fallthrough
		case t.kind == tokIdent:
			if err := p.parseInstr(); err != nil {
				return err
			}
		default:
			return p.errf("unexpected token %q in kernel body", t.text)
		}
	}
}

func (p *parser) parseRegDecl() error {
	k := p.k
	p.next() // .reg
	tt := p.next()
	rt, ok := typeByName[strings.TrimPrefix(tt.text, ".")]
	if !ok {
		return p.errf("bad register type %s", tt.text)
	}
	for {
		name := p.next().text
		if p.cur().kind == tokPunct && p.cur().text == "<" {
			p.next()
			n, _ := strconv.Atoi(p.next().text)
			if err := p.expectPunct(">"); err != nil {
				return err
			}
			p.regPrefix[name] = rt
			k.DeclRegs[rt] += n
		} else {
			k.addReg(name, rt)
			k.DeclRegs[rt]++
		}
		if p.cur().kind == tokPunct && p.cur().text == "," {
			p.next()
			continue
		}
		break
	}
	return p.expectPunct(";")
}

func (p *parser) parseMemDecl(kind string) error {
	k := p.k
	p.next() // .shared / .local
	align := 4
	var et Type = B8
	for p.cur().kind == tokDirective {
		d := p.next().text
		if d == ".align" {
			align, _ = strconv.Atoi(p.next().text)
			if align <= 0 {
				return p.errf("bad %s alignment", kind)
			}
		} else if t, ok := typeByName[strings.TrimPrefix(d, ".")]; ok {
			et = t
		}
	}
	name := p.next().text
	count := 1
	if p.cur().kind == tokPunct && p.cur().text == "[" {
		p.next()
		count, _ = strconv.Atoi(p.next().text)
		if err := p.expectPunct("]"); err != nil {
			return err
		}
	}
	size := et.Size() * count
	v := MemVar{Name: name, Align: align, Size: size}
	if kind == ".shared" {
		off := (k.SharedBytes + align - 1) / align * align
		v.Offset = off
		k.SharedBytes = off + size
		k.SharedVars = append(k.SharedVars, v)
	} else {
		off := (k.LocalBytes + align - 1) / align * align
		v.Offset = off
		k.LocalBytes = off + size
		k.LocalVars = append(k.LocalVars, v)
	}
	return p.expectPunct(";")
}

// regType resolves the declared type of a register name via the ranged
// declaration prefixes.
func (p *parser) regRef(name string) (int, error) {
	k := p.k
	if s, ok := k.regSlots[name]; ok {
		return s, nil
	}
	// longest prefix with all-digit suffix
	for l := len(name) - 1; l >= 2; l-- {
		pre := name[:l]
		if rt, ok := p.regPrefix[pre]; ok && allDigits(name[l:]) {
			return k.addReg(name, rt), nil
		}
	}
	return -1, fmt.Errorf("undeclared register %s", name)
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func (p *parser) parseInstr() error {
	k := p.k
	in := Instr{PC: len(k.Instrs), PredReg: -1, Vec: 1, Target: -1, RPC: -1}
	startTok := p.pos

	if p.cur().kind == tokPunct && p.cur().text == "@" {
		p.next()
		if p.cur().kind == tokPunct && p.cur().text == "!" {
			p.next()
			in.PredNeg = true
		}
		slot, err := p.regRef(p.next().text)
		if err != nil {
			return p.errf("%v", err)
		}
		in.PredReg = slot
	}

	opTok := p.next()
	op, ok := opByName[opTok.text]
	if !ok {
		return p.errf("unknown opcode %q", opTok.text)
	}
	in.Op = op

	// modifier chain
	nTypes := 0
	for p.cur().kind == tokDirective {
		m := strings.TrimPrefix(p.next().text, ".")
		switch m {
		case "global":
			in.Space = SpaceGlobal
		case "shared":
			in.Space = SpaceShared
		case "local":
			in.Space = SpaceLocal
		case "param":
			in.Space = SpaceParam
		case "const":
			in.Space = SpaceConst
		case "gen":
			in.Space = SpaceGeneric
		case "to":
			in.To = true
		case "wide":
			in.Wide = true
		case "lo":
			in.Lo = true
		case "hi":
			in.Hi = true
		case "uni":
			in.Uni = true
		case "sync":
			// bar.sync / default
		case "approx":
			in.Approx = true
		case "full", "rn", "rz", "rm", "rp", "ftz", "sat", "nc", "cta", "gl", "relaxed", "acquire", "release":
			// rounding/caching/ordering modifiers: functionally ignored
		case "rni":
			in.Rnd = RndNearestInt
		case "rzi":
			in.Rnd = RndZeroInt
		case "rmi":
			in.Rnd = RndDownInt
		case "rpi":
			in.Rnd = RndUpInt
		case "v2":
			in.Vec = 2
		case "v4":
			in.Vec = 4
		case "1d":
			in.Geom = 1
		case "2d":
			in.Geom = 2
		default:
			if t, isType := typeByName[m]; isType {
				if nTypes == 0 {
					in.T = t
				} else {
					// cvt.rn.DST.SRC — the second type token is the source.
					in.T2 = t
				}
				nTypes++
				break
			}
			if in.Op == OpSetp || in.Op == OpSlct {
				if c, isCmp := cmpByName[m]; isCmp {
					in.Cmp = c
					break
				}
			}
			if in.Op == OpAtom {
				if a, isAtom := atomByName[m]; isAtom {
					in.Atom = a
					break
				}
			}
			return p.errf("unknown modifier .%s on %s", m, opTok.text)
		}
	}
	// cvt has dst type first, src type second: T=dst, T2=src (as parsed).
	// tex.2d.v4.f32.s32: T=f32 element type, T2=s32 coordinate type.

	// operands
	if err := p.parseOperands(&in); err != nil {
		return err
	}

	var b strings.Builder
	for i := startTok; i < p.pos; i++ {
		if i > startTok {
			prev := p.toks[i-1]
			cur := p.toks[i]
			if !(cur.kind == tokPunct && (cur.text == ";" || cur.text == "," || cur.text == "]" || cur.text == ">")) &&
				!(prev.kind == tokPunct && (prev.text == "[" || prev.text == "@" || prev.text == "!" || prev.text == "{" || prev.text == "<")) &&
				!(cur.kind == tokDirective) &&
				!(cur.kind == tokPunct && cur.text == "}") {
				b.WriteByte(' ')
			}
		}
		b.WriteString(p.toks[i].text)
	}
	in.Raw = b.String()

	k.Instrs = append(k.Instrs, in)
	return nil
}

func (p *parser) parseOperands(in *Instr) error {
	// no-operand forms
	if p.cur().kind == tokPunct && p.cur().text == ";" {
		p.next()
		return nil
	}
	switch in.Op {
	case OpBra:
		in.Label = p.next().text
		return p.expectPunct(";")
	case OpBar:
		o, err := p.parseOperand()
		if err != nil {
			return err
		}
		in.Src = append(in.Src, o)
		if p.cur().kind == tokPunct && p.cur().text == "," {
			p.next()
			o2, err := p.parseOperand()
			if err != nil {
				return err
			}
			in.Src = append(in.Src, o2)
		}
		return p.expectPunct(";")
	case OpTex:
		d, err := p.parseOperand()
		if err != nil {
			return err
		}
		in.Dst = append(in.Dst, d)
		if err := p.expectPunct(","); err != nil {
			return err
		}
		if err := p.expectPunct("["); err != nil {
			return err
		}
		in.Src = append(in.Src, Operand{Kind: OperandSym, Sym: p.next().text})
		if err := p.expectPunct(","); err != nil {
			return err
		}
		c, err := p.parseOperand()
		if err != nil {
			return err
		}
		in.Src = append(in.Src, c)
		if err := p.expectPunct("]"); err != nil {
			return err
		}
		return p.expectPunct(";")
	}

	var ops []Operand
	for {
		o, err := p.parseOperand()
		if err != nil {
			return err
		}
		ops = append(ops, o)
		if p.cur().kind == tokPunct && p.cur().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}

	switch in.Op {
	case OpSt:
		// st [addr], src — first operand is the address (no register dst)
		in.Src = ops
	case OpSetp:
		in.Dst = ops[:1]
		in.Src = ops[1:]
	default:
		if len(ops) > 0 {
			in.Dst = ops[:1]
			in.Src = ops[1:]
		}
	}
	return nil
}

func (p *parser) parseOperand() (Operand, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		return parseImm(t.text)
	case t.kind == tokPunct && t.text == "[":
		p.next()
		var o Operand
		o.Kind = OperandMem
		o.Base = -1
		bt := p.next()
		if strings.HasPrefix(bt.text, "%") {
			slot, err := p.regRef(bt.text)
			if err != nil {
				return o, p.errf("%v", err)
			}
			o.Base = slot
		} else {
			o.BaseSym = bt.text
		}
		if p.cur().kind == tokPunct && p.cur().text == "+" {
			p.next()
			nt := p.next()
			v, err := strconv.ParseInt(nt.text, 0, 64)
			if err != nil {
				return o, p.errf("bad address offset %q", nt.text)
			}
			o.Offset = v
		}
		if err := p.expectPunct("]"); err != nil {
			return o, err
		}
		return o, nil
	case t.kind == tokPunct && t.text == "{":
		p.next()
		var o Operand
		o.Kind = OperandVec
		for {
			e, err := p.parseOperand()
			if err != nil {
				return o, err
			}
			o.Elems = append(o.Elems, e)
			if p.cur().kind == tokPunct && p.cur().text == "," {
				p.next()
				continue
			}
			break
		}
		if err := p.expectPunct("}"); err != nil {
			return o, err
		}
		return o, nil
	case t.kind == tokIdent && strings.HasPrefix(t.text, "%"):
		p.next()
		if sr, ok := sregByName[t.text]; ok {
			return Operand{Kind: OperandSReg, SReg: sr}, nil
		}
		slot, err := p.regRef(t.text)
		if err != nil {
			return Operand{}, p.errf("%v", err)
		}
		return Operand{Kind: OperandReg, Reg: slot, RegName: t.text}, nil
	case t.kind == tokIdent:
		p.next()
		return Operand{Kind: OperandSym, Sym: t.text}, nil
	case t.kind == tokPunct && t.text == "!":
		// !%p in selp-like contexts is not supported; guard only.
		return Operand{}, p.errf("unexpected '!' in operand position")
	}
	return Operand{}, p.errf("unexpected operand token %q", t.text)
}

// parseImm decodes a PTX immediate literal into raw bits.
func parseImm(s string) (Operand, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	if len(s) > 2 && s[0] == '0' && (s[1] == 'f' || s[1] == 'F') {
		v, err := strconv.ParseUint(s[2:], 16, 32)
		if err != nil {
			return Operand{}, fmt.Errorf("bad f32 literal %q", s)
		}
		f := float64(math.Float32frombits(uint32(v)))
		if neg {
			f = -f
		}
		// Float immediates are canonically stored as f64 bits; the executor
		// narrows them per the instruction type.
		return Operand{Kind: OperandImm, Imm: math.Float64bits(f), FloatImm: true}, nil
	}
	if len(s) > 2 && s[0] == '0' && (s[1] == 'd' || s[1] == 'D') {
		v, err := strconv.ParseUint(s[2:], 16, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("bad f64 literal %q", s)
		}
		if neg {
			v ^= 0x8000000000000000
		}
		return Operand{Kind: OperandImm, Imm: v, FloatImm: true}, nil
	}
	s = strings.TrimSuffix(s, "U")
	if strings.Contains(s, ".") {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("bad float literal %q", s)
		}
		if neg {
			f = -f
		}
		// Decimal float immediates are stored as f64 bits; the executor
		// converts per the instruction type.
		return Operand{Kind: OperandImm, Imm: math.Float64bits(f), FloatImm: true}, nil
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return Operand{}, fmt.Errorf("bad integer literal %q", s)
	}
	if neg {
		v = uint64(-int64(v))
	}
	return Operand{Kind: OperandImm, Imm: v}, nil
}

func resolveBranches(k *Kernel) error {
	for i := range k.Instrs {
		in := &k.Instrs[i]
		if in.Op != OpBra {
			continue
		}
		pc, ok := k.Labels[in.Label]
		if !ok {
			return fmt.Errorf("ptx: kernel %s: undefined label %q", k.Name, in.Label)
		}
		in.Target = pc
	}
	return nil
}
