package ptx

import "fmt"

// Module is a parsed PTX translation unit. The paper's §III-A requires that
// each embedded PTX file of a precompiled library is parsed as a separate
// module so that duplicate symbol names across files do not collide; the
// runtime therefore keeps a list of Modules rather than one merged program.
type Module struct {
	Version     string
	Target      string
	AddressSize int
	Kernels     map[string]*Kernel
	KernelOrder []string // declaration order, for deterministic iteration
	Textures    []string // module-level .texref declarations
}

// Kernel is a parsed .entry function.
type Kernel struct {
	Name   string
	Params []Param

	// Register bookkeeping: every named register is assigned a dense slot
	// in the per-thread register file. regSlots maps "%f3" to its slot.
	regSlots    map[string]int
	regTypes    []Type // slot -> declared type
	regNames    []string
	NumSlots    int
	DeclRegs    map[Type]int // declared counts per class (informational)
	SharedVars  []MemVar
	LocalVars   []MemVar
	SharedBytes int
	LocalBytes  int

	Instrs []Instr
	Labels map[string]int

	cfg *CFG
}

// Param describes one kernel parameter.
type Param struct {
	Name   string
	Type   Type
	Align  int
	Size   int // bytes; arrays possible but unused here
	Offset int // byte offset within the parameter buffer
}

// MemVar is a statically declared .shared or .local array.
type MemVar struct {
	Name   string
	Align  int
	Size   int
	Offset int // offset within the kernel's shared/local segment
}

// ParamBytes returns the total size of the kernel parameter buffer.
func (k *Kernel) ParamBytes() int {
	if len(k.Params) == 0 {
		return 0
	}
	last := k.Params[len(k.Params)-1]
	return last.Offset + last.Size
}

// RegSlot returns the register-file slot for a register name, or -1.
func (k *Kernel) RegSlot(name string) int {
	if s, ok := k.regSlots[name]; ok {
		return s
	}
	return -1
}

// RegType returns the declared type of a register slot.
func (k *Kernel) RegType(slot int) Type { return k.regTypes[slot] }

// RegName returns the textual name of a register slot.
func (k *Kernel) RegName(slot int) string { return k.regNames[slot] }

// ParamByName returns the named parameter, or nil.
func (k *Kernel) ParamByName(name string) *Param {
	for i := range k.Params {
		if k.Params[i].Name == name {
			return &k.Params[i]
		}
	}
	return nil
}

func (k *Kernel) addReg(name string, t Type) int {
	if s, ok := k.regSlots[name]; ok {
		return s
	}
	s := k.NumSlots
	k.regSlots[name] = s
	k.regTypes = append(k.regTypes, t)
	k.regNames = append(k.regNames, name)
	k.NumSlots++
	return s
}

// RndMode is the integer-rounding modifier on cvt.
type RndMode uint8

// Rounding modes for float-to-integer-valued conversions.
const (
	RndNone       RndMode = iota
	RndNearestInt         // .rni
	RndZeroInt            // .rzi
	RndDownInt            // .rmi
	RndUpInt              // .rpi
)

func (r RndMode) String() string {
	switch r {
	case RndNearestInt:
		return "rni"
	case RndZeroInt:
		return "rzi"
	case RndDownInt:
		return "rmi"
	case RndUpInt:
		return "rpi"
	}
	return ""
}

// OperandKind discriminates Operand.
type OperandKind uint8

// Operand kinds.
const (
	OperandNone OperandKind = iota
	OperandReg
	OperandSReg
	OperandImm
	OperandMem // [base +/- offset]
	OperandVec // {%f1,%f2,...}
	OperandSym // bare symbol: label, param name, shared var, texref
)

// Operand is one instruction operand.
type Operand struct {
	Kind OperandKind

	// OperandReg
	Reg     int // register slot
	RegName string

	// OperandSReg
	SReg SReg

	// OperandImm: raw bits; FloatImm marks 0f/0d literals (already encoded).
	Imm      uint64
	FloatImm bool

	// OperandMem
	Base    int    // register slot of base, or -1 when symbol-based
	BaseSym string // param/shared/local symbol name when Base < 0
	Offset  int64

	// OperandVec
	Elems []Operand

	// OperandSym
	Sym string
}

// Instr is one decoded PTX instruction.
type Instr struct {
	PC      int
	PredReg int // register slot of guard predicate; -1 when unguarded
	PredNeg bool

	Op     Op
	T      Type // primary (destination) type
	T2     Type // source type for cvt / slct / setp second type / tex coord type
	Cmp    CmpOp
	Atom   AtomOp
	Space  Space
	Vec    int // 1, 2 or 4
	Wide   bool
	Hi     bool
	Lo     bool
	Uni    bool
	To     bool // cvta.to: generic -> space conversion
	Approx bool
	Rnd    RndMode // integer-rounding mode for cvt (.rni/.rzi/.rmi/.rpi)
	Geom   int     // tex geometry: 1 or 2 (dimensions)

	Dst []Operand
	Src []Operand

	Label  string // unresolved branch target label
	Target int    // resolved branch target PC
	RPC    int    // reconvergence PC for potentially divergent branches

	Raw string // source text, for diagnostics and instrumentation logs
}

// HasRegDst reports whether the instruction writes at least one general
// (non-predicate) register; used by the debug instrumentation pass.
func (in *Instr) HasRegDst(k *Kernel) bool {
	if len(in.Dst) == 0 {
		return false
	}
	switch in.Op {
	case OpSt, OpBra, OpBar, OpRet, OpExit, OpMembar:
		return false
	}
	d := in.Dst[0]
	switch d.Kind {
	case OperandReg:
		return k.RegType(d.Reg) != Pred
	case OperandVec:
		return true
	}
	return false
}

func (in *Instr) String() string {
	if in.Raw != "" {
		return in.Raw
	}
	return fmt.Sprintf("%s.%s", in.Op, in.T)
}

// KernelNames returns kernel names in declaration order.
func (m *Module) KernelNames() []string {
	out := make([]string, len(m.KernelOrder))
	copy(out, m.KernelOrder)
	return out
}
