package ptx

import (
	"fmt"
	"strings"
)

// Print emits the module as parseable PTX text. Round-tripping a module
// through Print and Parse yields an equivalent module; the debug package
// relies on this to re-emit instrumented kernels (paper Fig. 3).
func Print(m *Module) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".version %s\n", orDefault(m.Version, "6.0"))
	fmt.Fprintf(&b, ".target %s\n", orDefault(m.Target, "sm_61"))
	fmt.Fprintf(&b, ".address_size %d\n\n", m.AddressSize)
	for _, t := range m.Textures {
		fmt.Fprintf(&b, ".global .texref %s;\n", t)
	}
	for _, name := range m.KernelOrder {
		printKernel(&b, m.Kernels[name])
	}
	return b.String()
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

func printKernel(b *strings.Builder, k *Kernel) {
	fmt.Fprintf(b, ".visible .entry %s(\n", k.Name)
	for i, p := range k.Params {
		comma := ","
		if i == len(k.Params)-1 {
			comma = ""
		}
		if p.Size > p.Type.Size() {
			fmt.Fprintf(b, "\t.param .align %d .%s %s[%d]%s\n", p.Align, p.Type, p.Name, p.Size/p.Type.Size(), comma)
		} else {
			fmt.Fprintf(b, "\t.param .%s %s%s\n", p.Type, p.Name, comma)
		}
	}
	fmt.Fprintf(b, ")\n{\n")
	// Register declarations: one per declared register name. Ranged
	// declarations are flattened; this is still valid PTX for our parser.
	byType := map[Type][]string{}
	for slot := 0; slot < k.NumSlots; slot++ {
		t := k.regTypes[slot]
		byType[t] = append(byType[t], k.regNames[slot])
	}
	for t := Type(1); t < Pred+1; t++ {
		names := byType[t]
		if len(names) == 0 {
			continue
		}
		fmt.Fprintf(b, "\t.reg .%s %s;\n", t, strings.Join(names, ", "))
	}
	for _, v := range k.SharedVars {
		fmt.Fprintf(b, "\t.shared .align %d .b8 %s[%d];\n", v.Align, v.Name, v.Size)
	}
	for _, v := range k.LocalVars {
		fmt.Fprintf(b, "\t.local .align %d .b8 %s[%d];\n", v.Align, v.Name, v.Size)
	}
	b.WriteString("\n")

	// invert labels: pc -> names
	labelAt := map[int][]string{}
	for name, pc := range k.Labels {
		labelAt[pc] = append(labelAt[pc], name)
	}
	for pc := range k.Instrs {
		for _, l := range labelAt[pc] {
			fmt.Fprintf(b, "%s:\n", l)
		}
		fmt.Fprintf(b, "\t%s\n", FormatInstr(k, &k.Instrs[pc]))
	}
	for _, l := range labelAt[len(k.Instrs)] {
		fmt.Fprintf(b, "%s:\n", l)
	}
	b.WriteString("}\n\n")
}

// FormatInstr renders one instruction as PTX text (with trailing ';').
func FormatInstr(k *Kernel, in *Instr) string {
	var b strings.Builder
	if in.PredReg >= 0 {
		b.WriteByte('@')
		if in.PredNeg {
			b.WriteByte('!')
		}
		b.WriteString(k.RegName(in.PredReg))
		b.WriteByte(' ')
	}
	b.WriteString(in.Op.String())
	writeMods(&b, in)
	b.WriteByte(' ')

	switch in.Op {
	case OpBra:
		b.WriteString(in.Label)
	case OpTex:
		b.WriteString(formatOperand(k, &in.Dst[0]))
		b.WriteString(", [")
		b.WriteString(in.Src[0].Sym)
		b.WriteString(", ")
		b.WriteString(formatOperand(k, &in.Src[1]))
		b.WriteString("]")
	case OpSt:
		parts := make([]string, len(in.Src))
		for i := range in.Src {
			parts[i] = formatOperand(k, &in.Src[i])
		}
		b.WriteString(strings.Join(parts, ", "))
	default:
		var parts []string
		for i := range in.Dst {
			parts = append(parts, formatOperand(k, &in.Dst[i]))
		}
		for i := range in.Src {
			parts = append(parts, formatOperand(k, &in.Src[i]))
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	s := strings.TrimRight(b.String(), " ")
	return s + ";"
}

func writeMods(b *strings.Builder, in *Instr) {
	emit := func(s string) {
		b.WriteByte('.')
		b.WriteString(s)
	}
	if in.Uni {
		emit("uni")
	}
	if in.To {
		emit("to")
	}
	switch in.Space {
	case SpaceGlobal:
		emit("global")
	case SpaceShared:
		emit("shared")
	case SpaceLocal:
		emit("local")
	case SpaceParam:
		emit("param")
	case SpaceConst:
		emit("const")
	}
	if in.Op == OpAtom && in.Atom != AtomNone {
		emit(in.Atom.String())
	}
	if in.Op == OpBar {
		emit("sync")
	}
	if in.Geom == 1 {
		emit("1d")
	}
	if in.Geom == 2 {
		emit("2d")
	}
	if in.Vec == 2 {
		emit("v2")
	}
	if in.Vec == 4 {
		emit("v4")
	}
	if in.Cmp != CmpNone {
		emit(in.Cmp.String())
	}
	if in.Approx {
		emit("approx")
	}
	if in.Rnd != RndNone {
		emit(in.Rnd.String())
	}
	if in.Op == OpCvt && in.T.Float() && in.T2.Float() && in.T.Size() <= in.T2.Size() && in.Rnd == RndNone {
		emit("rn") // float narrowing conversions require a rounding mode
	}
	if in.Op == OpFma {
		emit("rn")
	}
	if (in.Op == OpDiv || in.Op == OpSqrt || in.Op == OpRcp) && in.T.Float() && !in.Approx {
		emit("rn")
	}
	if in.Wide {
		emit("wide")
	}
	if in.Lo {
		emit("lo")
	}
	if in.Hi {
		emit("hi")
	}
	if in.T != TypeNone {
		emit(in.T.String())
	}
	if in.T2 != TypeNone {
		emit(in.T2.String())
	}
}

func formatOperand(k *Kernel, o *Operand) string {
	switch o.Kind {
	case OperandReg:
		return k.RegName(o.Reg)
	case OperandSReg:
		return o.SReg.String()
	case OperandImm:
		if o.FloatImm {
			return fmt.Sprintf("0d%016X", o.Imm)
		}
		return fmt.Sprintf("%d", int64(o.Imm))
	case OperandMem:
		base := o.BaseSym
		if o.Base >= 0 {
			base = k.RegName(o.Base)
		}
		if o.Offset != 0 {
			return fmt.Sprintf("[%s+%d]", base, o.Offset)
		}
		return fmt.Sprintf("[%s]", base)
	case OperandVec:
		parts := make([]string, len(o.Elems))
		for i := range o.Elems {
			parts[i] = formatOperand(k, &o.Elems[i])
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case OperandSym:
		return o.Sym
	}
	return "?"
}
