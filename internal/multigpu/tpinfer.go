package multigpu

// Tensor-parallel transformer inference on the node: one model, its
// weights column-sharded across every device (torch.TPShard), each
// sequence computed cooperatively. Per block the schedule is five
// compute phases separated by four all-gathers — attention context,
// attention output, GELU activation, MLP output — each phase stepped
// concurrently across ranks on the host pool, each gather performed by
// the coordinator and priced as a ring all-gather on the fabric.
//
// Because every shard keeps the full K dimension of its GEMMs and the
// gathers only move bytes, each rank's final activation is bitwise
// identical to the single-device encoder's — the driver checks exactly
// that, per sequence, against the untouched reference model.

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/nvlink"
	"repro/internal/torch"
)

// TPInferResult summarises a tensor-parallel inference run.
type TPInferResult struct {
	Devices int
	Workers int
	Seqs    int
	SeqLen  int
	Layers  int

	Cycles  uint64
	Gathers uint64 // all-gather collectives issued
	// OutputDigest is FNV-1a over rank 0's output activation bytes of
	// every sequence; the driver has already verified all ranks (and the
	// single-device reference) produce the same bytes.
	OutputDigest uint64

	PerDevice []DeviceStats
	NVLink    nvlink.Stats
}

// TokensPerMcycle returns processed tokens per million modelled cycles.
func (r *TPInferResult) TokensPerMcycle() float64 {
	return float64(r.Seqs*r.SeqLen) / (float64(r.Cycles) / 1e6)
}

// tpBatch builds the deterministic inference batch (same token formula
// as the single-device transformer sample).
func tpBatch(seqs, seqLen, vocab int) [][]int32 {
	batch := make([][]int32, seqs)
	for i := range batch {
		ids := make([]int32, seqLen)
		for j := range ids {
			ids[j] = int32((i*13 + j*5) % vocab)
		}
		batch[i] = ids
	}
	return batch
}

// gather runs one all-gather collective over every shard's pending
// (shard, destination) pair.
func tpGather(n *Node, shards []*torch.TPShard) error {
	world := len(shards)
	src := make([]*torch.Tensor, world)
	dst := make([]*torch.Tensor, world)
	for r, s := range shards {
		src[r], dst[r] = s.PendingGather()
	}
	return n.AllGatherCols(src, dst)
}

// RunTPInfer runs `seqs` sequences of `seqLen` tokens through a
// tensor-parallel replica of the sample encoder sharded across the
// node's devices, verifying every sequence bitwise against the
// single-device reference.
func RunTPInfer(cfg Config, seqs, seqLen int) (*TPInferResult, error) {
	mcfg := core.DefaultTransformerConfig()
	if seqs < 1 {
		seqs = 1
	}
	if seqLen < 1 {
		seqLen = 1
	}
	if seqLen > mcfg.MaxSeq {
		return nil, fmt.Errorf("multigpu: seqLen %d exceeds MaxSeq %d", seqLen, mcfg.MaxSeq)
	}
	n, err := NewNode(cfg)
	if err != nil {
		return nil, err
	}
	defer n.Close()
	world := n.World()

	// The reference model lives on a functional-only device (no timing
	// runner): it is the weight source for the shards and the exact
	// oracle for every sequence.
	refDev, err := torch.NewDevice(exec.BugSet{})
	if err != nil {
		return nil, err
	}
	ref, err := torch.NewTransformerEncoder(refDev, rand.New(rand.NewSource(7)), mcfg)
	if err != nil {
		return nil, err
	}

	shards := make([]*torch.TPShard, world)
	baselines := make([]map[uint64]bool, world)
	for r := 0; r < world; r++ {
		// Sequential construction: NewTPShard reads the shared reference
		// weights back to the host.
		if shards[r], err = torch.NewTPShard(n.Devs[r], ref, r, world); err != nil {
			return nil, err
		}
		baselines[r] = map[uint64]bool{}
		for _, a := range n.Devs[r].Ctx.Alloc.LiveAllocations() {
			baselines[r][a] = true
		}
	}

	res := &TPInferResult{
		Devices: world, Workers: n.Workers(), Seqs: seqs, SeqLen: seqLen,
		Layers: mcfg.Layers,
	}
	digest := fnv.New64a()
	outs := make([][]float32, world)
	for _, ids := range tpBatch(seqs, seqLen, mcfg.Vocab) {
		if err := n.Parallel(func(r int) error { return shards[r].StartForward(ids) }); err != nil {
			return nil, err
		}
		for blk := 0; blk < shards[0].Layers(); blk++ {
			for _, phase := range []struct {
				name string
				f    func(s *torch.TPShard, blk int) error
			}{
				{"attn-ctx", (*torch.TPShard).AttnCtx},
				{"attn-out", (*torch.TPShard).AttnOut},
				{"mlp-act", (*torch.TPShard).MLPAct},
				{"mlp-out", (*torch.TPShard).MLPOut},
			} {
				if err := n.Parallel(func(r int) error { return phase.f(shards[r], blk) }); err != nil {
					return nil, fmt.Errorf("multigpu: block %d %s: %w", blk, phase.name, err)
				}
				if err := tpGather(n, shards); err != nil {
					return nil, fmt.Errorf("multigpu: block %d %s gather: %w", blk, phase.name, err)
				}
				res.Gathers++
			}
			if err := n.Parallel(func(r int) error { return shards[r].EndBlock(blk) }); err != nil {
				return nil, fmt.Errorf("multigpu: block %d close: %w", blk, err)
			}
		}
		if err := n.Parallel(func(r int) error {
			y, err := shards[r].Output()
			if err != nil {
				return err
			}
			outs[r] = y.ToHost()
			return nil
		}); err != nil {
			return nil, err
		}

		// Oracle: bitwise equality against the single-device forward.
		refY, err := ref.Forward(ids)
		if err != nil {
			return nil, err
		}
		want := refY.ToHost()
		for r := 0; r < world; r++ {
			if len(outs[r]) != len(want) {
				return nil, fmt.Errorf("multigpu: rank %d output has %d elements, reference %d",
					r, len(outs[r]), len(want))
			}
			for i := range want {
				if math.Float32bits(outs[r][i]) != math.Float32bits(want[i]) {
					return nil, fmt.Errorf("multigpu: rank %d output[%d] = %g, reference %g (not bitwise identical)",
						r, i, outs[r][i], want[i])
				}
			}
		}
		buf := make([]byte, 4*len(want))
		for i, v := range outs[0] {
			putLeU32(buf[4*i:], math.Float32bits(v))
		}
		digest.Write(buf)

		// Free per-sequence activations (and the reference's).
		if err := n.Parallel(func(r int) error {
			for _, a := range n.Devs[r].Ctx.Alloc.LiveAllocations() {
				if !baselines[r][a] {
					if err := n.Devs[r].Ctx.Free(a); err != nil {
						return err
					}
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	res.OutputDigest = digest.Sum64()

	// End-of-run rendezvous, as in the training driver.
	res.Cycles = n.Cycle()
	if err := n.advanceAll(res.Cycles); err != nil {
		return nil, err
	}
	for r := 0; r < world; r++ {
		res.PerDevice = append(res.PerDevice, deviceStats(n, r, len(n.Devs[r].Ctx.KernelStatsLog())))
	}
	res.NVLink = n.Fabric.Stats()
	return res, nil
}
