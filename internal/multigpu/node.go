// Package multigpu couples N independent timing engines into one
// simulated multi-GPU node. Each device is a full (Context, Handle,
// Engine) stack of its own; the node adds a modelled NVLink fabric
// (internal/nvlink) and a coordinator that drives per-device work in
// *phases*: between collectives every device runs freely — and the host
// steps them concurrently on the shared worker pool — while at a
// collective boundary the coordinator performs the functional data
// movement itself, in rank order, prices the collective on the fabric,
// and fast-forwards every engine to its completion cycle.
//
// Determinism contract, extended across devices: a phase touches only
// its own rank's state, all cross-device data flow happens on the
// coordinator in rank order, and barrier cycles are keyed only off
// modelled clocks — so modelled cycles, per-device stats and every
// weight byte are identical whether the host steps devices with 1
// worker or N.
package multigpu

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/exec"
	"repro/internal/nvlink"
	"repro/internal/timing"
	"repro/internal/torch"
)

// Config sizes a node.
type Config struct {
	// Devices is the number of simulated GPUs (>= 1).
	Devices int
	// Workers is the host worker-goroutine count stepping device phases
	// (the -j flag): 0 means 1, negative means all host CPUs. It only
	// affects wall-clock, never simulation results.
	Workers int
	// Link configures the NVLink fabric; zero values select
	// nvlink.DefaultConfig.
	Link nvlink.Config
	// Replay enables kernel-level replay memoization on every engine.
	Replay bool
	// ReplayResampleEvery re-details every Nth replay hit (0 = never).
	ReplayResampleEvery int
}

// Node is one simulated multi-GPU machine.
type Node struct {
	Devs    []*torch.Device
	Engines []*timing.Engine
	Fabric  *nvlink.Fabric
	pool    *timing.Pool
	workers int
}

// NewNode builds cfg.Devices identical GTX 1050 devices, each with its
// own single-worker engine (host parallelism lives across devices, not
// within one), connected by a fresh fabric.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Devices < 1 {
		return nil, fmt.Errorf("multigpu: node needs at least 1 device, got %d", cfg.Devices)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = 1
	} else if workers < 0 {
		workers = runtime.NumCPU()
	}
	fab, err := nvlink.New(cfg.Devices, cfg.Link)
	if err != nil {
		return nil, err
	}
	n := &Node{Fabric: fab, workers: workers, pool: timing.NewPool(workers)}
	for i := 0; i < cfg.Devices; i++ {
		dev, err := torch.NewDevice(exec.BugSet{})
		if err != nil {
			n.Close()
			return nil, err
		}
		tcfg := timing.GTX1050()
		tcfg.ReplayEnabled = cfg.Replay
		tcfg.ReplayResampleEvery = cfg.ReplayResampleEvery
		eng, err := timing.New(tcfg, timing.WithWorkers(1))
		if err != nil {
			n.Close()
			return nil, err
		}
		dev.Ctx.SetRunner(timing.Runner{E: eng})
		n.Devs = append(n.Devs, dev)
		n.Engines = append(n.Engines, eng)
	}
	return n, nil
}

// Close releases the node's engines and pool.
func (n *Node) Close() {
	for _, e := range n.Engines {
		e.Close()
	}
	n.pool.Close()
}

// World returns the device count.
func (n *Node) World() int { return len(n.Devs) }

// Workers returns the host worker count.
func (n *Node) Workers() int { return n.workers }

// Cycle returns the node clock: the furthest-ahead device cycle (at
// collective boundaries all devices agree).
func (n *Node) Cycle() uint64 {
	var m uint64
	for _, e := range n.Engines {
		if c := e.Cycle(); c > m {
			m = c
		}
	}
	return m
}

// Parallel runs f(rank) for every device, stepped concurrently on the
// node's worker pool. f must touch only rank-local state. Errors are
// collected per rank and the first (in rank order) is returned, so
// failure reporting is deterministic for any worker count.
func (n *Node) Parallel(f func(rank int) error) error {
	errs := make([]error, len(n.Devs))
	n.pool.Run(len(n.Devs), func(i int) { errs[i] = f(i) })
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("multigpu: device %d: %w", r, err)
		}
	}
	return nil
}

// MergedStats folds every device's engine statistics into one node-wide
// view, in rank order.
func (n *Node) MergedStats() *timing.Stats {
	s := timing.NewStats(n.Engines[0].Config())
	for _, e := range n.Engines {
		s.Merge(e.Stats())
	}
	return s
}

// readF32 reads a tensor's payload straight from device memory (no
// modelled transfer — collectives are priced on the fabric instead).
func readF32(dev *torch.Device, t *torch.Tensor) []float32 {
	buf := make([]byte, 4*t.Count())
	dev.Ctx.Mem.Read(t.Ptr, buf)
	out := make([]float32, t.Count())
	for i := range out {
		out[i] = math.Float32frombits(leU32(buf[4*i:]))
	}
	return out
}

// writeF32 writes a float32 slice straight into device memory.
func writeF32(dev *torch.Device, t *torch.Tensor, vals []float32) {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		putLeU32(buf[4*i:], math.Float32bits(v))
	}
	dev.Ctx.Mem.Write(t.Ptr, buf)
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLeU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// advanceAll fast-forwards every engine to the collective completion
// cycle.
func (n *Node) advanceAll(cycle uint64) error {
	for r, e := range n.Engines {
		if err := e.AdvanceTo(cycle); err != nil {
			return fmt.Errorf("multigpu: device %d: %w", r, err)
		}
	}
	return nil
}

// readyCycles snapshots every engine's clock (collective readiness).
func (n *Node) readyCycles() []uint64 {
	ready := make([]uint64, len(n.Engines))
	for i, e := range n.Engines {
		ready[i] = e.Cycle()
	}
	return ready
}

// AllReduce sums the per-rank tensor lists element-wise — in rank
// order, the same summation order the CPU mirror uses — and writes the
// sum back to every rank. The timing side is one fused ring all-reduce
// of the total byte count; every engine is advanced to its completion
// cycle. tensors[r][i] must have identical element counts across ranks.
func (n *Node) AllReduce(tensors [][]*torch.Tensor) error {
	world := n.World()
	if len(tensors) != world {
		return fmt.Errorf("multigpu: AllReduce got %d ranks, node has %d", len(tensors), world)
	}
	total := 0
	for _, t := range tensors[0] {
		total += 4 * t.Count()
	}
	end := n.Fabric.RingAllReduce(total, n.readyCycles())
	for p := range tensors[0] {
		sum := readF32(n.Devs[0], tensors[0][p])
		for r := 1; r < world; r++ {
			vals := readF32(n.Devs[r], tensors[r][p])
			if len(vals) != len(sum) {
				return fmt.Errorf("multigpu: AllReduce tensor %d: rank %d has %d elements, rank 0 has %d",
					p, r, len(vals), len(sum))
			}
			for j, v := range vals {
				sum[j] += v
			}
		}
		for r := 0; r < world; r++ {
			writeF32(n.Devs[r], tensors[r][p], sum)
		}
	}
	return n.advanceAll(end)
}

// AllGatherCols concatenates equal-width column shards row-wise: rank
// r's [rows, cols] shard becomes columns [r*cols, (r+1)*cols) of every
// rank's [rows, world*cols] destination. Pure byte movement — the
// gathered activation is bitwise the concatenation of the shards. The
// timing side is one ring all-gather of the shard size.
func (n *Node) AllGatherCols(shards, dsts []*torch.Tensor) error {
	world := n.World()
	if len(shards) != world || len(dsts) != world {
		return fmt.Errorf("multigpu: AllGatherCols got %d/%d ranks, node has %d", len(shards), len(dsts), world)
	}
	rows, cols := shards[0].Dim(0), shards[0].Dim(1)
	end := n.Fabric.RingAllGather(4*rows*cols, n.readyCycles())
	parts := make([][]byte, world)
	for r := 0; r < world; r++ {
		if shards[r].Dim(0) != rows || shards[r].Dim(1) != cols {
			return fmt.Errorf("multigpu: AllGatherCols shard %d is [%d,%d], want [%d,%d]",
				r, shards[r].Dim(0), shards[r].Dim(1), rows, cols)
		}
		buf := make([]byte, 4*rows*cols)
		n.Devs[r].Ctx.Mem.Read(shards[r].Ptr, buf)
		parts[r] = buf
	}
	full := make([]byte, 4*rows*world*cols)
	for r := 0; r < world; r++ {
		for i := 0; i < rows; i++ {
			copy(full[4*(i*world*cols+r*cols):], parts[r][4*i*cols:4*(i+1)*cols])
		}
	}
	for r := 0; r < world; r++ {
		if dsts[r].Count() != rows*world*cols {
			return fmt.Errorf("multigpu: AllGatherCols dst %d has %d elements, want %d",
				r, dsts[r].Count(), rows*world*cols)
		}
		n.Devs[r].Ctx.Mem.Write(dsts[r].Ptr, full)
	}
	return n.advanceAll(end)
}
