package multigpu

import (
	"math"
	"reflect"
	"testing"
)

// TestDPTrainWorkerDeterminism is the cross-device extension of the
// repo's -j1 vs -jN differential: data-parallel training must produce
// byte-identical modelled cycles, per-device stats, losses and final
// weights for any host worker count.
func TestDPTrainWorkerDeterminism(t *testing.T) {
	for _, devices := range []int{2, 4} {
		var base *DPTrainResult
		for _, workers := range []int{1, 4} {
			res, err := RunDPTrain(Config{Devices: devices, Workers: workers}, 2, 8)
			if err != nil {
				t.Fatalf("devices=%d workers=%d: %v", devices, workers, err)
			}
			if res.Workers != workers {
				t.Fatalf("res.Workers = %d, want %d", res.Workers, workers)
			}
			res.Workers = 0 // the only field allowed to differ
			if base == nil {
				base = res
				continue
			}
			if !reflect.DeepEqual(base, res) {
				t.Fatalf("devices=%d: -j1 vs -j4 results differ:\n  j1: %+v\n  j4: %+v", devices, base, res)
			}
		}
		if base.WeightsDigest == 0 {
			t.Fatalf("devices=%d: weights digest not computed", devices)
		}
		for r, d := range base.PerDevice {
			if d.Cycles != base.Cycles {
				t.Fatalf("devices=%d: rank %d ended at cycle %d, node at %d (collectives must align clocks)",
					devices, r, d.Cycles, base.Cycles)
			}
			if d.Instructions == 0 || d.Launches == 0 {
				t.Fatalf("devices=%d: rank %d did no work: %+v", devices, r, d)
			}
		}
		if base.NVLink.Transfers == 0 || base.NVLink.BytesMoved == 0 {
			t.Fatalf("devices=%d: no fabric traffic recorded: %+v", devices, base.NVLink)
		}
	}
}

// TestDPTrainReplayDeterminism runs the same differential with replay
// memoization on: replay counters are part of the byte-identity
// contract, and steady-state steps must actually hit the cache on every
// device.
func TestDPTrainReplayDeterminism(t *testing.T) {
	var base *DPTrainResult
	for _, workers := range []int{1, 2} {
		res, err := RunDPTrain(Config{Devices: 2, Workers: workers, Replay: true}, 3, 8)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res.Workers = 0
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("replay run differs by worker count:\n  j1: %+v\n  j2: %+v", base, res)
		}
	}
	if base.ReplayHits == 0 {
		t.Fatal("replay enabled but no hits recorded on any device")
	}
	for _, d := range base.PerDevice {
		if d.ReplayHits == 0 {
			t.Fatalf("rank %d recorded no replay hits: %+v", d.Device, d)
		}
	}
}

// TestDPTrainMatchesSingleDevice pins the multi-device-vs-single-device
// oracle: rank 0 of a data-parallel run sees the same sequences as a
// single-device run of the same formula would, and every rank's loss is
// independently checked against its CPU mirror inside the driver — here
// we additionally check the rank-0 step-0 loss equals the single-rank
// run's, since before the first all-reduce the replicas are bitwise
// identical and rank 0's sequence does not depend on the world size.
func TestDPTrainMatchesSingleDevice(t *testing.T) {
	single, err := RunDPTrain(Config{Devices: 1, Workers: 1}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunDPTrain(Config{Devices: 2, Workers: 2}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := multi.Losses[0][0], single.Losses[0][0]; math.Float32bits(got) != math.Float32bits(want) {
		t.Fatalf("step-0 rank-0 loss %g differs from single-device %g", got, want)
	}
	// A 1-device node degenerates to plain training: no fabric traffic.
	if single.NVLink.Transfers != 0 {
		t.Fatalf("single-device run moved %d fabric transfers", single.NVLink.Transfers)
	}
}

// TestTPInferWorkerDeterminism: tensor-parallel inference, byte-identity
// across host worker counts at 2 and 4 devices. The bitwise match
// against the single-device reference is asserted inside the driver for
// every sequence.
func TestTPInferWorkerDeterminism(t *testing.T) {
	for _, devices := range []int{2, 4} {
		var base *TPInferResult
		for _, workers := range []int{1, 4} {
			res, err := RunTPInfer(Config{Devices: devices, Workers: workers}, 2, 12)
			if err != nil {
				t.Fatalf("devices=%d workers=%d: %v", devices, workers, err)
			}
			res.Workers = 0
			if base == nil {
				base = res
				continue
			}
			if !reflect.DeepEqual(base, res) {
				t.Fatalf("devices=%d: -j1 vs -j4 results differ:\n  j1: %+v\n  j4: %+v", devices, base, res)
			}
		}
		// 4 all-gathers per block per sequence.
		if want := uint64(4 * base.Layers * base.Seqs); base.Gathers != want {
			t.Fatalf("devices=%d: %d gathers, want %d", devices, base.Gathers, want)
		}
	}
}

// TestTPInferDigestMatchesAcrossWorlds: the output bytes are the same
// no matter how many devices cooperate (the driver already checks each
// world against the reference; this checks world-vs-world directly).
func TestTPInferDigestMatchesAcrossWorlds(t *testing.T) {
	d2, err := RunTPInfer(Config{Devices: 2, Workers: 2}, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	d4, err := RunTPInfer(Config{Devices: 4, Workers: 2}, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if d2.OutputDigest != d4.OutputDigest {
		t.Fatalf("output digest differs across worlds: 2-dev %x, 4-dev %x", d2.OutputDigest, d4.OutputDigest)
	}
}

// TestNodeValidation covers the config edges.
func TestNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{Devices: 0}); err == nil {
		t.Fatal("NewNode accepted 0 devices")
	}
	if _, err := RunTPInfer(Config{Devices: 3, Workers: 1}, 1, 4); err == nil {
		t.Fatal("RunTPInfer accepted world 3 for a 4-head model")
	}
}
