package multigpu

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
)

// benchResult is one row of the BENCH_10.json scaling report.
type benchResult struct {
	Devices        int     `json:"devices"`
	WallNsPerOp    int64   `json:"wall_ns_per_op"`
	NsPerSimCycle  float64 `json:"ns_per_sim_cycle"`
	TokensPerSec   float64 `json:"tokens_per_sec"`
	SpeedupVsOneX  float64 `json:"speedup_vs_1dev"` // (devices × wall(1)) / wall(N)
	SimCyclesPerOp uint64  `json:"sim_cycles_per_op"`
}

// BenchmarkMultiDeviceScaling measures the host-parallelism payoff of
// sharding the simulation: one data-parallel training run at 1, 2 and 4
// devices with one host worker per device. Simulated work grows
// linearly with the device count (each replica trains its own
// sequences), so ideal wall-clock is flat and the speedup
// (devices × wall(1)) / wall(N) approaches the device count on a host
// with ≥ devices cores; on fewer cores it degenerates to per-device
// efficiency (≈ 1.0). When BENCH_OUT is set the measured table is
// written there as JSON (relative paths resolve in the package
// directory — pass an absolute path), with the host core count
// recorded so the number can be judged in context.
func BenchmarkMultiDeviceScaling(b *testing.B) {
	const steps, seqLen = 2, 8
	counts := []int{1, 2, 4}
	byDevices := map[int]benchResult{} // the harness reruns sub-benches; keep the final (longest) run
	for _, devices := range counts {
		devices := devices
		b.Run(fmt.Sprintf("devices=%d", devices), func(b *testing.B) {
			var simCycles uint64
			for i := 0; i < b.N; i++ {
				res, err := RunDPTrain(Config{Devices: devices, Workers: devices}, steps, seqLen)
				if err != nil {
					b.Fatal(err)
				}
				simCycles += res.Cycles * uint64(devices)
			}
			nsPerCycle := float64(b.Elapsed().Nanoseconds()) / float64(simCycles)
			tokensPerSec := float64(devices*steps*seqLen*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(nsPerCycle, "ns/sim-cycle")
			b.ReportMetric(tokensPerSec, "tokens/s")
			byDevices[devices] = benchResult{
				Devices:        devices,
				WallNsPerOp:    b.Elapsed().Nanoseconds() / int64(b.N),
				NsPerSimCycle:  nsPerCycle,
				TokensPerSec:   tokensPerSec,
				SimCyclesPerOp: simCycles / uint64(b.N),
			}
		})
	}
	var rows []benchResult
	for _, devices := range counts {
		if r, ok := byDevices[devices]; ok {
			rows = append(rows, r)
		}
	}
	if len(rows) > 0 && rows[0].Devices == 1 && rows[0].WallNsPerOp > 0 {
		for i := range rows {
			rows[i].SpeedupVsOneX = float64(rows[i].Devices) * float64(rows[0].WallNsPerOp) / float64(rows[i].WallNsPerOp)
		}
	}
	if out := os.Getenv("BENCH_OUT"); out != "" {
		report := struct {
			Bench    string        `json:"bench"`
			Workload string        `json:"workload"`
			HostCPUs int           `json:"host_cpus"`
			Results  []benchResult `json:"results"`
		}{
			Bench:    "BenchmarkMultiDeviceScaling",
			Workload: fmt.Sprintf("dp_train steps=%d seqLen=%d workers=devices", steps, seqLen),
			HostCPUs: runtime.NumCPU(),
			Results:  rows,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
