package multigpu

// Data-parallel training on the node: every device holds a full
// TransformerTrainer replica (same seed → identical weights, and —
// because the first-fit allocator is deterministic — identical device
// addresses), each step feeds every rank a distinct sequence, the
// coordinator all-reduces the gradients over the modelled fabric, and
// every replica applies the same SGD update with lr/N (summed gradients
// × lr/N = gradient averaging). The replicas therefore stay bitwise in
// lock-step: after every step each device holds byte-identical weights.
//
// The oracle is N CPUTrainState mirrors driven the same way: per-rank
// ForwardBackward, a host-side all-reduce in the same rank order (so
// the float32 summation rounding matches the coordinator's exactly),
// then ApplySGD(lr/N) each.

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/nvlink"
	"repro/internal/torch"
)

// DeviceStats is one device's share of a node run.
type DeviceStats struct {
	Device              int
	Cycles              uint64
	Instructions        uint64
	L2Accesses          uint64
	DRAMAccesses        uint64
	FastForwardedCycles uint64
	ReplayHits          uint64
	ReplayMisses        uint64
	Launches            int
}

// DPTrainResult summarises a data-parallel training run.
type DPTrainResult struct {
	Devices int
	Workers int
	Steps   int
	SeqLen  int
	LR      float32 // per-replica rate (global lr / devices)

	Cycles    uint64      // node clock at the end of the run
	Losses    [][]float32 // [step][rank] device loss
	CPULosses [][]float32 // [step][rank] mirror loss

	MaxLossDiff float64
	// WeightsDigest is FNV-1a over rank 0's final weight bytes in Params
	// order; the driver has already verified every rank holds the same
	// bytes.
	WeightsDigest uint64

	Replay       bool
	ReplayHits   uint64 // merged across devices
	ReplayMisses uint64

	PerDevice []DeviceStats
	NVLink    nvlink.Stats
}

// TokensPerMcycle returns trained tokens (across all replicas) per
// million modelled cycles.
func (r *DPTrainResult) TokensPerMcycle() float64 {
	return float64(r.Devices*r.Steps*r.SeqLen) / (float64(r.Cycles) / 1e6)
}

// dpSequence builds rank r's token sequence for one step — same shape
// as the single-device sample's but decorrelated across ranks.
func dpSequence(step, rank, seqLen, vocab int) []int32 {
	ids := make([]int32, seqLen)
	for j := range ids {
		ids[j] = int32((step*17 + rank*29 + j*3 + 1) % vocab)
	}
	return ids
}

// deviceStats snapshots one device's counters.
func deviceStats(n *Node, rank, launches int) DeviceStats {
	st := n.Engines[rank].Stats()
	return DeviceStats{
		Device:              rank,
		Cycles:              n.Engines[rank].Cycle(),
		Instructions:        st.Instructions,
		L2Accesses:          st.L2Accesses,
		DRAMAccesses:        st.DRAMAccesses,
		FastForwardedCycles: st.FastForwardedCycles,
		ReplayHits:          st.ReplayHits,
		ReplayMisses:        st.ReplayMisses,
		Launches:            launches,
	}
}

// RunDPTrain trains the sample encoder data-parallel across the node's
// devices for `steps` steps of `seqLen` tokens per rank.
func RunDPTrain(cfg Config, steps, seqLen int) (*DPTrainResult, error) {
	mcfg := core.DefaultTransformerConfig()
	if steps < 1 {
		steps = 1
	}
	if seqLen < 1 {
		seqLen = 1
	}
	if seqLen > mcfg.MaxSeq {
		return nil, fmt.Errorf("multigpu: train seqLen %d exceeds MaxSeq %d", seqLen, mcfg.MaxSeq)
	}
	n, err := NewNode(cfg)
	if err != nil {
		return nil, err
	}
	defer n.Close()
	world := n.World()
	lr := float32(core.DefaultTrainLR) / float32(world)

	trainers := make([]*torch.TransformerTrainer, world)
	mirrors := make([]*torch.CPUTrainState, world)
	baselines := make([]map[uint64]bool, world)
	// Replica construction is per-rank-local and could ride the pool, but
	// building on the coordinator keeps NewCPUTrainState's weight
	// readbacks trivially race-free; steady-state steps dominate anyway.
	for r := 0; r < world; r++ {
		dev := n.Devs[r]
		model, err := torch.NewTransformerEncoder(dev, rand.New(rand.NewSource(7)), mcfg)
		if err != nil {
			return nil, err
		}
		if trainers[r], err = torch.NewTransformerTrainer(dev, model, lr); err != nil {
			return nil, err
		}
		mirrors[r] = torch.NewCPUTrainState(model)
		// Arena priming, as in the single-device sample: keeps per-step
		// first-fit placements identical from step 0 so replay reaches
		// steady state immediately.
		arena, err := dev.Ctx.Malloc(16 << 20)
		if err != nil {
			return nil, err
		}
		if err := dev.Ctx.Free(arena); err != nil {
			return nil, err
		}
		baselines[r] = map[uint64]bool{}
		for _, a := range dev.Ctx.Alloc.LiveAllocations() {
			baselines[r][a] = true
		}
	}

	res := &DPTrainResult{
		Devices: world, Workers: n.Workers(), Steps: steps, SeqLen: seqLen,
		LR: lr, Replay: cfg.Replay,
	}
	devLoss := make([]float32, world)
	for step := 0; step < steps; step++ {
		// Compute phase: every rank runs forward+backward on its own
		// sequence, concurrently on the host pool.
		if err := n.Parallel(func(r int) error {
			loss, err := trainers[r].ForwardBackward(dpSequence(step, r, seqLen, mcfg.Vocab))
			devLoss[r] = loss
			return err
		}); err != nil {
			return nil, fmt.Errorf("multigpu: train step %d: %w", step, err)
		}
		res.Losses = append(res.Losses, append([]float32(nil), devLoss...))

		// Collective: ring all-reduce of every replica's gradients.
		grads := make([][]*torch.Tensor, world)
		for r := 0; r < world; r++ {
			for _, p := range trainers[r].Opt.Params {
				grads[r] = append(grads[r], p.Grad)
			}
		}
		if err := n.AllReduce(grads); err != nil {
			return nil, fmt.Errorf("multigpu: train step %d: %w", step, err)
		}

		// Update phase: each replica applies SGD(lr/N) to the summed
		// gradients, then frees its per-step activations so the next
		// step's allocations land at the same addresses. The per-rank
		// half of the mirror step (forward+backward on rank r's mirror)
		// rides the same phase — it is rank-local host math.
		cpuLoss := make([]float32, world)
		if err := n.Parallel(func(r int) error {
			if err := trainers[r].Opt.Step(); err != nil {
				return err
			}
			for _, a := range n.Devs[r].Ctx.Alloc.LiveAllocations() {
				if !baselines[r][a] {
					if err := n.Devs[r].Ctx.Free(a); err != nil {
						return err
					}
				}
			}
			cpuLoss[r] = mirrors[r].ForwardBackward(dpSequence(step, r, seqLen, mcfg.Vocab))
			return nil
		}); err != nil {
			return nil, fmt.Errorf("multigpu: train step %d update: %w", step, err)
		}

		// Mirror collective, same rank-ordered summation as AllReduce.
		torch.AllReduceCPUGrads(mirrors)
		for r := 0; r < world; r++ {
			mirrors[r].ApplySGD(lr)
		}
		res.CPULosses = append(res.CPULosses, cpuLoss)
		for r := 0; r < world; r++ {
			d := math.Abs(float64(devLoss[r] - cpuLoss[r]))
			if d > res.MaxLossDiff {
				res.MaxLossDiff = d
			}
			if d > core.TrainLossTolerance {
				return nil, fmt.Errorf("multigpu: step %d rank %d loss diverged: device %g, cpu oracle %g",
					step, r, devLoss[r], cpuLoss[r])
			}
		}
	}

	// Replicas must have stayed bitwise in lock-step.
	digest := fnv.New64a()
	for p, param := range trainers[0].Opt.Params {
		want := make([]byte, 4*param.W.Count())
		n.Devs[0].Ctx.Mem.Read(param.W.Ptr, want)
		digest.Write(want)
		for r := 1; r < world; r++ {
			got := make([]byte, len(want))
			n.Devs[r].Ctx.Mem.Read(trainers[r].Opt.Params[p].W.Ptr, got)
			if string(got) != string(want) {
				return nil, fmt.Errorf("multigpu: after %d steps, %s differs between rank 0 and rank %d",
					steps, param.Name, r)
			}
		}
	}
	res.WeightsDigest = digest.Sum64()

	// Close with a node-wide rendezvous: per-rank compute diverges by a
	// few cycles (data-dependent DRAM and cache state), so the run ends
	// on a barrier at the furthest-ahead clock, like any subsequent
	// collective would.
	res.Cycles = n.Cycle()
	if err := n.advanceAll(res.Cycles); err != nil {
		return nil, err
	}
	for r := 0; r < world; r++ {
		res.PerDevice = append(res.PerDevice, deviceStats(n, r, len(n.Devs[r].Ctx.KernelStatsLog())))
		res.ReplayHits += res.PerDevice[r].ReplayHits
		res.ReplayMisses += res.PerDevice[r].ReplayMisses
	}
	res.NVLink = n.Fabric.Stats()
	return res, nil
}
