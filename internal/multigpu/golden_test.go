package multigpu

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden stats file")

// goldenEntry pins a multi-GPU workload: modelled cycles, merged
// counters, fabric traffic and the run's functional digest (final
// weight bytes for training, output activation bytes for inference).
// Any change here is a simulator behaviour change and must be
// intentional (regenerate with -update and justify in the PR).
type goldenEntry struct {
	Devices         int      `json:"devices"`
	Cycles          uint64   `json:"cycles"`
	PerDeviceCycles []uint64 `json:"per_device_cycles"`
	Instructions    uint64   `json:"instructions"`
	L2Accesses      uint64   `json:"l2_accesses"`
	DRAMAccesses    uint64   `json:"dram_accesses"`
	Launches        int      `json:"launches"`
	NVLinkTransfers uint64   `json:"nvlink_transfers"`
	NVLinkBytes     uint64   `json:"nvlink_bytes"`
	Digest          uint64   `json:"digest"`
}

func dpEntry(r *DPTrainResult) goldenEntry {
	e := goldenEntry{
		Devices: r.Devices, Cycles: r.Cycles,
		NVLinkTransfers: r.NVLink.Transfers, NVLinkBytes: r.NVLink.BytesMoved,
		Digest: r.WeightsDigest,
	}
	for _, d := range r.PerDevice {
		e.PerDeviceCycles = append(e.PerDeviceCycles, d.Cycles)
		e.Instructions += d.Instructions
		e.L2Accesses += d.L2Accesses
		e.DRAMAccesses += d.DRAMAccesses
		e.Launches += d.Launches
	}
	return e
}

func tpEntry(r *TPInferResult) goldenEntry {
	e := goldenEntry{
		Devices: r.Devices, Cycles: r.Cycles,
		NVLinkTransfers: r.NVLink.Transfers, NVLinkBytes: r.NVLink.BytesMoved,
		Digest: r.OutputDigest,
	}
	for _, d := range r.PerDevice {
		e.PerDeviceCycles = append(e.PerDeviceCycles, d.Cycles)
		e.Instructions += d.Instructions
		e.L2Accesses += d.L2Accesses
		e.DRAMAccesses += d.DRAMAccesses
		e.Launches += d.Launches
	}
	return e
}

func TestGoldenStats(t *testing.T) {
	got := map[string]goldenEntry{}

	dp, err := RunDPTrain(Config{Devices: 2, Workers: 2}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	got["dp_train_small"] = dpEntry(dp)

	tp, err := RunTPInfer(Config{Devices: 2, Workers: 2}, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	got["tp_transformer_small"] = tpEntry(tp)

	path := filepath.Join("testdata", "golden_stats.json")
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("golden file has stale workload %q", name)
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s drifted:\n  got:  %+v\n  want: %+v", name, g, w)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("workload %q missing from golden file (run with -update)", name)
		}
	}
}
