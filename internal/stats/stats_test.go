package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPearson(t *testing.T) {
	if p := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(p-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", p)
	}
	if p := Pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); math.Abs(p+1) > 1e-12 {
		t.Errorf("perfect anti-correlation = %v", p)
	}
	if p := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); !math.IsNaN(p) {
		t.Errorf("zero-variance input should be NaN, got %v", p)
	}
	if p := Pearson([]float64{1}, []float64{1}); !math.IsNaN(p) {
		t.Errorf("short input should be NaN, got %v", p)
	}
}

// Property: Pearson is invariant under positive affine transforms.
func TestPearsonAffineInvariance(t *testing.T) {
	f := func(a, b, c, d int8) bool {
		x := []float64{1, 5, 2, 9, 3, 7}
		y := []float64{2, 4, 1, 8, 5, 6}
		scale := math.Abs(float64(a))/16 + 0.5
		scale2 := math.Abs(float64(c))/16 + 0.5
		x2 := make([]float64, len(x))
		y2 := make([]float64, len(y))
		for i := range x {
			x2[i] = x[i]*scale + float64(b)
			y2[i] = y[i]*scale2 + float64(d)
		}
		return math.Abs(Pearson(x, y)-Pearson(x2, y2)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCorrelateAggregation(t *testing.T) {
	c := Correlate([]KernelTime{
		{Name: "a", HWCycles: 100, SimCycles: 90, Launches: 1},
		{Name: "b", HWCycles: 50, SimCycles: 60, Launches: 1},
		{Name: "a", HWCycles: 100, SimCycles: 110, Launches: 1},
	})
	if len(c.Kernels) != 2 {
		t.Fatalf("kernels = %d, want 2 (merged)", len(c.Kernels))
	}
	if c.TotalHW != 250 || c.TotalSim != 260 {
		t.Errorf("totals = %v/%v", c.TotalHW, c.TotalSim)
	}
	if math.Abs(c.OverallError-10.0/250) > 1e-12 {
		t.Errorf("overall error = %v", c.OverallError)
	}
	for _, k := range c.Kernels {
		if k.Name == "a" && (k.HWCycles != 200 || k.Launches != 2) {
			t.Errorf("merge wrong: %+v", k)
		}
	}
	c.SortByHW()
	if c.Kernels[0].Name != "a" {
		t.Error("sort by HW time failed")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"x", "longer"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "longer") || !strings.HasPrefix(lines[1], "---") {
		t.Errorf("header malformed:\n%s", out)
	}
}
