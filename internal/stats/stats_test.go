package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPearson(t *testing.T) {
	if p := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(p-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", p)
	}
	if p := Pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); math.Abs(p+1) > 1e-12 {
		t.Errorf("perfect anti-correlation = %v", p)
	}
	if p := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); !math.IsNaN(p) {
		t.Errorf("zero-variance input should be NaN, got %v", p)
	}
	if p := Pearson([]float64{1}, []float64{1}); !math.IsNaN(p) {
		t.Errorf("short input should be NaN, got %v", p)
	}
}

// TestPercentileNearestRank pins the nearest-rank semantics the serving
// layer depends on: no interpolation, exact on small samples, input left
// unmodified.
func TestPercentileNearestRank(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		p       float64
		want    float64
	}{
		{"empty", nil, 50, math.NaN()},
		{"single_p50", []float64{7}, 50, 7},
		{"single_p999", []float64{7}, 99.9, 7},
		{"single_p0", []float64{7}, 0, 7},
		{"two_p50", []float64{10, 20}, 50, 10},
		{"two_p99", []float64{10, 20}, 99, 20},
		{"ties_p50", []float64{5, 5, 5, 5}, 50, 5},
		{"ties_mixed", []float64{1, 5, 5, 9}, 75, 5},
		{"already_sorted_p50", []float64{1, 2, 3, 4, 5}, 50, 3},
		{"already_sorted_p90", []float64{1, 2, 3, 4, 5}, 90, 5},
		{"unsorted_p50", []float64{9, 1, 5, 3, 7}, 50, 5},
		// nearest rank on 10 samples: p99.9 -> ceil(0.999*10)=10th value,
		// the maximum — never an interpolated value between samples
		{"p999_small_sample", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}, 99.9, 100},
		{"p90_exact_boundary", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 90, 9},
		{"p100", []float64{3, 1, 2}, 100, 3},
		{"p_negative", []float64{3, 1, 2}, -5, 1},
		{"p_over_100", []float64{3, 1, 2}, 200, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Percentile(c.samples, c.p)
			if math.IsNaN(c.want) {
				if !math.IsNaN(got) {
					t.Fatalf("Percentile(%v, %v) = %v, want NaN", c.samples, c.p, got)
				}
				return
			}
			if got != c.want {
				t.Fatalf("Percentile(%v, %v) = %v, want %v", c.samples, c.p, got, c.want)
			}
		})
	}
}

// TestPercentileDoesNotMutateInput: the helper must sort a copy, not the
// caller's slice (latency series are reported in completion order).
func TestPercentileDoesNotMutateInput(t *testing.T) {
	in := []float64{9, 1, 5, 3, 7}
	Percentile(in, 99)
	want := []float64{9, 1, 5, 3, 7}
	for i := range in {
		if in[i] != want[i] {
			t.Fatalf("input mutated: %v", in)
		}
	}
}

// Property: Pearson is invariant under positive affine transforms.
func TestPearsonAffineInvariance(t *testing.T) {
	f := func(a, b, c, d int8) bool {
		x := []float64{1, 5, 2, 9, 3, 7}
		y := []float64{2, 4, 1, 8, 5, 6}
		scale := math.Abs(float64(a))/16 + 0.5
		scale2 := math.Abs(float64(c))/16 + 0.5
		x2 := make([]float64, len(x))
		y2 := make([]float64, len(y))
		for i := range x {
			x2[i] = x[i]*scale + float64(b)
			y2[i] = y[i]*scale2 + float64(d)
		}
		return math.Abs(Pearson(x, y)-Pearson(x2, y2)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCorrelateAggregation(t *testing.T) {
	c := Correlate([]KernelTime{
		{Name: "a", HWCycles: 100, SimCycles: 90, Launches: 1},
		{Name: "b", HWCycles: 50, SimCycles: 60, Launches: 1},
		{Name: "a", HWCycles: 100, SimCycles: 110, Launches: 1},
	})
	if len(c.Kernels) != 2 {
		t.Fatalf("kernels = %d, want 2 (merged)", len(c.Kernels))
	}
	if c.TotalHW != 250 || c.TotalSim != 260 {
		t.Errorf("totals = %v/%v", c.TotalHW, c.TotalSim)
	}
	if math.Abs(c.OverallError-10.0/250) > 1e-12 {
		t.Errorf("overall error = %v", c.OverallError)
	}
	for _, k := range c.Kernels {
		if k.Name == "a" && (k.HWCycles != 200 || k.Launches != 2) {
			t.Errorf("merge wrong: %+v", k)
		}
	}
	c.SortByHW()
	if c.Kernels[0].Name != "a" {
		t.Error("sort by HW time failed")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"x", "longer"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "longer") || !strings.HasPrefix(lines[1], "---") {
		t.Errorf("header malformed:\n%s", out)
	}
}
