// Package stats provides the correlation mathematics of the paper's §IV
// (comparing simulator cycle counts to NVProf-measured hardware cycles)
// and small table-formatting helpers shared by the harness binaries.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Pearson returns the Pearson correlation coefficient of two series.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// Percentile returns the p-th percentile of samples using the
// nearest-rank method (no interpolation): the smallest value whose rank
// r satisfies r >= ceil(p/100 * N). On small samples this is exact —
// p99.9 of 16 latencies is the 16th-smallest sample, never a value that
// was not observed, which is what serving-latency reporting needs. The
// input is not modified (a sorted copy is taken); an empty input returns
// NaN, p <= 0 returns the minimum, p >= 100 the maximum.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s)))) // 1-based
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// RelativeError returns |sim-hw| / hw.
func RelativeError(hw, sim float64) float64 {
	if hw == 0 {
		return math.NaN()
	}
	return math.Abs(sim-hw) / hw
}

// KernelTime pairs one kernel's hardware and simulator cycle counts.
type KernelTime struct {
	Name      string
	HWCycles  float64
	SimCycles float64
	Launches  int
}

// Correlation summarises a hardware-vs-simulator comparison.
type Correlation struct {
	Kernels      []KernelTime
	TotalHW      float64
	TotalSim     float64
	Pearson      float64
	OverallError float64 // |sim-hw|/hw on totals
}

// Correlate aggregates per-kernel samples (same kernel name merged) and
// computes overall metrics.
func Correlate(samples []KernelTime) Correlation {
	agg := map[string]*KernelTime{}
	var order []string
	for _, s := range samples {
		k, ok := agg[s.Name]
		if !ok {
			k = &KernelTime{Name: s.Name}
			agg[s.Name] = k
			order = append(order, s.Name)
		}
		k.HWCycles += s.HWCycles
		k.SimCycles += s.SimCycles
		k.Launches += s.Launches
		if s.Launches == 0 {
			k.Launches++
		}
	}
	var c Correlation
	var hw, sim []float64
	for _, name := range order {
		k := agg[name]
		c.Kernels = append(c.Kernels, *k)
		c.TotalHW += k.HWCycles
		c.TotalSim += k.SimCycles
		hw = append(hw, k.HWCycles)
		sim = append(sim, k.SimCycles)
	}
	c.Pearson = Pearson(hw, sim)
	c.OverallError = RelativeError(c.TotalHW, c.TotalSim)
	return c
}

// SortByHW orders kernels by descending hardware time.
func (c *Correlation) SortByHW() {
	sort.Slice(c.Kernels, func(i, j int) bool {
		return c.Kernels[i].HWCycles > c.Kernels[j].HWCycles
	})
}

// Table renders a fixed-width table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// Fmt formats a float compactly.
func Fmt(v float64) string {
	switch {
	case math.IsNaN(v):
		return "n/a"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
