package serve

import (
	"fmt"
	"testing"

	"repro/internal/stats"
)

// BenchmarkServeSaturation sweeps offered load across the serving
// capacity of the small test model and reports the latency distribution
// at each point — the saturation-knee curve BENCH_7.json records. Below
// the knee goodput tracks offered load and p50 stays near the unloaded
// service time; past it the open-loop queue grows without bound and the
// tail percentiles diverge.
func BenchmarkServeSaturation(b *testing.B) {
	for _, rate := range []float64{10, 20, 40, 60, 90, 150, 300} {
		b.Run(fmt.Sprintf("rate=%g", rate), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				tr := Poisson(33, rate, 80, 6, 2)
				var err error
				res, err = Run(Config{Model: testModel()}, tr)
				if err != nil {
					b.Fatal(err)
				}
			}
			lat := res.Latencies()
			ttft := res.TTFTs()
			b.ReportMetric(res.Trace.OfferedLoad(), "offered_per_mcy")
			b.ReportMetric(res.Goodput(), "goodput_per_mcy")
			b.ReportMetric(stats.Percentile(lat, 50), "p50_cycles")
			b.ReportMetric(stats.Percentile(lat, 99), "p99_cycles")
			b.ReportMetric(stats.Percentile(lat, 99.9), "p999_cycles")
			b.ReportMetric(stats.Percentile(ttft, 50), "ttft_p50_cycles")
			b.ReportMetric(res.Utilization(), "utilization")
			b.ReportMetric(float64(res.PeakBatch), "peak_batch")
		})
	}
}
