package serve

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/torch"
)

// testModel is the small encoder the serving tests run (one layer keeps
// the -race CI step fast); testTrace arrivals are scaled so the batch
// sees queueing without the run taking minutes.
func testModel() torch.TransformerConfig {
	return torch.TransformerConfig{
		Layers: 1, Heads: 2, DModel: 16, FF: 32, Vocab: 29, MaxSeq: 8,
	}
}

func testConfig() Config {
	return Config{Model: testModel()}
}

// mixedTrace is the determinism workhorse: a Poisson baseline with a
// bursty stream merged on top, so admission sees both steady queueing
// and on/off spikes.
func mixedTrace() Trace {
	return Merge(
		Poisson(11, 60, 10, 6, 2),
		Bursty(12, 500, 3, 60_000, 6, 4, 1),
	)
}

// checkInvariants asserts the admission-order contract on any result:
// every request admitted at or after arrival, first token at or after
// admission, completion at or after first token, Admitted non-decreasing
// in arrival order (a request is never overtaken by a later arrival),
// and the batch never exceeding its cap.
func checkInvariants(t *testing.T, res *Result) {
	t.Helper()
	if res.PeakBatch > res.BatchCap {
		t.Errorf("peak batch %d exceeds cap %d", res.PeakBatch, res.BatchCap)
	}
	if len(res.Requests) != len(res.Trace.Requests) {
		t.Fatalf("completed %d of %d requests", len(res.Requests), len(res.Trace.Requests))
	}
	byID := make(map[int]RequestStats, len(res.Requests))
	for _, q := range res.Requests {
		if q.Admitted < q.Arrival {
			t.Errorf("request %d admitted at %d before arrival %d", q.ID, q.Admitted, q.Arrival)
		}
		if q.FirstToken < q.Admitted {
			t.Errorf("request %d first token %d before admission %d", q.ID, q.FirstToken, q.Admitted)
		}
		if q.Completed < q.FirstToken {
			t.Errorf("request %d completed %d before first token %d", q.ID, q.Completed, q.FirstToken)
		}
		byID[q.ID] = q
	}
	var prevAdmit uint64
	for _, r := range res.Trace.Requests {
		q, ok := byID[r.ID]
		if !ok {
			t.Fatalf("request %d never completed", r.ID)
		}
		if q.Admitted < prevAdmit {
			t.Errorf("request %d admitted at %d, before an earlier arrival's admission at %d (admission out of arrival order)", r.ID, q.Admitted, prevAdmit)
		}
		prevAdmit = q.Admitted
	}
}

// TestServeSeededTraceReproducible: the same seeded trace and config run
// twice must produce byte-identical results — per-request stats, kernel
// log and engine Stats included.
func TestServeSeededTraceReproducible(t *testing.T) {
	tr := Poisson(21, 80, 8, 6, 2)
	a, err := Run(testConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, a)
	if !reflect.DeepEqual(a.Requests, b.Requests) {
		t.Errorf("per-request stats differ across identical runs:\n%+v\n%+v", a.Requests, b.Requests)
	}
	if a.TotalCycles != b.TotalCycles || a.BusyCycles != b.BusyCycles || a.Iterations != b.Iterations {
		t.Errorf("run shape differs: %d/%d/%d vs %d/%d/%d",
			a.TotalCycles, a.BusyCycles, a.Iterations, b.TotalCycles, b.BusyCycles, b.Iterations)
	}
	if !reflect.DeepEqual(a.Log, b.Log) {
		t.Error("kernel logs differ across identical runs")
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Errorf("engine stats differ across identical runs:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

// TestServeWorkerDeterminism: serving extends the engine's -j1 vs -jN
// byte-identity contract — a mixed Poisson+bursty trace with replay
// enabled must produce identical results (replay counters included) for
// 1 and 4 workers.
func TestServeWorkerDeterminism(t *testing.T) {
	tr := mixedTrace()
	run := func(workers int) *Result {
		t.Helper()
		cfg := testConfig()
		cfg.Workers = workers
		cfg.Replay = true
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	j1 := run(1)
	j4 := run(4)
	checkInvariants(t, j1)
	if !reflect.DeepEqual(j1.Requests, j4.Requests) {
		t.Errorf("-j1 vs -j4 per-request stats differ:\n%+v\n%+v", j1.Requests, j4.Requests)
	}
	if j1.TotalCycles != j4.TotalCycles {
		t.Errorf("-j1 total %d cycles, -j4 %d", j1.TotalCycles, j4.TotalCycles)
	}
	if !reflect.DeepEqual(j1.Log, j4.Log) {
		t.Error("-j1 vs -j4 kernel logs differ")
	}
	if !reflect.DeepEqual(j1.Stats, j4.Stats) {
		t.Errorf("-j1 vs -j4 engine stats differ (replay counters included):\n%+v\n%+v", j1.Stats, j4.Stats)
	}
}

// TestServeReplayEquivalence: on a repeated-request trace, serving with
// replay must hit the memo cache and still finish with outputs
// bit-identical to detailed mode — replay memoizes timing, never
// semantics.
func TestServeReplayEquivalence(t *testing.T) {
	// Well-spaced identical requests: each one runs alone, so every chain
	// after the first has an identical composition and replays.
	tr := Trace{}
	for i := 0; i < 6; i++ {
		tr.Requests = append(tr.Requests, Request{
			ID: i, Arrival: uint64(i) * 2_000_000, SeqLen: 6, Steps: 2,
		})
	}
	run := func(replay bool) *Result {
		t.Helper()
		cfg := testConfig()
		cfg.Replay = replay
		cfg.KeepOutputs = true
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	detailed := run(false)
	replayed := run(true)
	checkInvariants(t, replayed)
	if replayed.Stats.ReplayHits == 0 {
		t.Errorf("repeated-request trace produced no replay hits: %+v", replayed.Stats)
	}
	if len(detailed.Outputs) != len(replayed.Outputs) {
		t.Fatalf("output counts differ: %d vs %d", len(detailed.Outputs), len(replayed.Outputs))
	}
	for id := range detailed.Outputs {
		if !reflect.DeepEqual(detailed.Outputs[id], replayed.Outputs[id]) {
			t.Errorf("request %d output diverges between detailed and replay mode", id)
		}
	}
	if detailed.Stats.ReplayHits != 0 {
		t.Errorf("detailed mode recorded replay hits: %+v", detailed.Stats)
	}
}

// TestServeAdmissionCapQueues: offered load far above the cap must queue
// (admission later than arrival) rather than widen the batch.
func TestServeAdmissionCapQueues(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 2
	// All 6 requests arrive at cycle 0; only 2 fit per iteration.
	tr := Trace{}
	for i := 0; i < 6; i++ {
		tr.Requests = append(tr.Requests, Request{ID: i, Arrival: 0, SeqLen: 6, Steps: 1})
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, res)
	if res.PeakBatch != 2 {
		t.Errorf("peak batch %d, want 2 (the cap)", res.PeakBatch)
	}
	if res.Iterations != 3 {
		t.Errorf("iterations %d, want 3 (6 requests / cap 2)", res.Iterations)
	}
	var queued int
	for _, q := range res.Requests {
		if q.Admitted > q.Arrival {
			queued++
		}
	}
	if queued != 4 {
		t.Errorf("queued %d requests, want 4 (all but the first batch)", queued)
	}
}

// TestServeRejectsOversizedRequest: requests longer than the model's
// MaxSeq are a config error, not a truncation.
func TestServeRejectsOversizedRequest(t *testing.T) {
	tr := Trace{Requests: []Request{{ID: 0, Arrival: 0, SeqLen: 99, Steps: 1}}}
	if _, err := Run(testConfig(), tr); err == nil {
		t.Fatal("oversized request accepted")
	}
}

// TestAdmissionCapDerivation pins the occupancy-headroom arithmetic on
// the default GTX1050 + default model: 5 SMs x 32 warp slots = 160
// contexts; the widest per-sequence kernel is the 4-head attention GEMM
// at 4 heads x 1 tile^2 x 8 warps = 32 warps -> cap 5.
func TestAdmissionCapDerivation(t *testing.T) {
	res, err := Run(Config{}, Trace{Requests: []Request{{ID: 0, Arrival: 0, SeqLen: 8, Steps: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchCap != 5 {
		t.Errorf("default GTX1050 admission cap = %d, want 5", res.BatchCap)
	}
}

func TestLatencyOverTime(t *testing.T) {
	res := &Result{
		TotalCycles: 1000,
		Requests: []RequestStats{
			{ID: 0, Arrival: 0, Completed: 100},
			{ID: 1, Arrival: 0, Completed: 450},
			{ID: 2, Arrival: 400, Completed: 990},
		},
	}
	buckets := res.LatencyOverTime(2)
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(buckets))
	}
	if buckets[0].Completed != 2 || buckets[1].Completed != 1 {
		t.Fatalf("bucket counts = %d/%d, want 2/1", buckets[0].Completed, buckets[1].Completed)
	}
	if buckets[0].P50 != 100 || buckets[0].P99 != 450 {
		t.Errorf("bucket 0 percentiles = %v/%v, want 100/450", buckets[0].P50, buckets[0].P99)
	}
	if buckets[1].P50 != 590 {
		t.Errorf("bucket 1 p50 = %v, want 590", buckets[1].P50)
	}
}

// decodeTrace is the decode-mode determinism workhorse: queued Poisson
// arrivals, each prefilling 3 prompt tokens and decoding 3 more.
func decodeTrace() Trace {
	return Poisson(31, 60, 8, 0, 0).WithDecode(3, 3)
}

// TestServeDecodeMatchesOracle serves a decode trace and checks every
// request's generated tokens against the GenerateCPU oracle of an
// identically seeded model — continuous batching, KV admission and
// session reuse must never change what gets generated.
func TestServeDecodeMatchesOracle(t *testing.T) {
	cfg := testConfig()
	cfg.KeepOutputs = true
	res, err := Run(cfg, decodeTrace())
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, res)
	if !res.Decode {
		t.Fatal("decode trace did not select decode mode")
	}
	if res.PeakKVBytes == 0 || res.PeakKVBytes > res.KVBudgetBytes {
		t.Fatalf("peak KV bytes %d outside (0, budget %d]", res.PeakKVBytes, res.KVBudgetBytes)
	}
	dev, err := torch.NewDevice(exec.BugSet{})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := torch.NewTransformerDecoder(dev, rand.New(rand.NewSource(7)), testModel())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Trace.Requests {
		want, err := oracle.GenerateCPU(tokensFor(r.ID, r.Prefill, testModel().Vocab), r.Decode)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Tokens[r.ID], want) {
			t.Errorf("request %d tokens %v, oracle %v", r.ID, res.Tokens[r.ID], want)
		}
	}
}

// TestServeDecodeWorkerDeterminism extends the -j1 vs -jN byte-identity
// contract to decode serving with replay enabled: per-request stats,
// generated tokens, kernel log and engine Stats (replay counters
// included) must all match.
func TestServeDecodeWorkerDeterminism(t *testing.T) {
	tr := decodeTrace()
	run := func(workers int) *Result {
		t.Helper()
		cfg := testConfig()
		cfg.Workers = workers
		cfg.Replay = true
		cfg.KeepOutputs = true
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	j1 := run(1)
	j4 := run(4)
	checkInvariants(t, j1)
	if !reflect.DeepEqual(j1.Requests, j4.Requests) {
		t.Errorf("-j1 vs -j4 per-request stats differ:\n%+v\n%+v", j1.Requests, j4.Requests)
	}
	if j1.TotalCycles != j4.TotalCycles {
		t.Errorf("-j1 total %d cycles, -j4 %d", j1.TotalCycles, j4.TotalCycles)
	}
	if !reflect.DeepEqual(j1.Tokens, j4.Tokens) {
		t.Errorf("-j1 vs -j4 generated tokens differ:\n%v\n%v", j1.Tokens, j4.Tokens)
	}
	if !reflect.DeepEqual(j1.Log, j4.Log) {
		t.Error("-j1 vs -j4 kernel logs differ")
	}
	if !reflect.DeepEqual(j1.Stats, j4.Stats) {
		t.Errorf("-j1 vs -j4 engine stats differ (replay counters included):\n%+v\n%+v", j1.Stats, j4.Stats)
	}
}

// TestServeDecodeKVBudgetQueues: a KV budget holding two sessions must
// bound the batch at two resident requests — later arrivals queue in
// order behind the budget, not the occupancy cap.
func TestServeDecodeKVBudgetQueues(t *testing.T) {
	model := testModel()
	kv := torch.KVCacheBytes(model)
	cfg := testConfig()
	cfg.KVBudgetBytes = 2 * kv
	tr := Trace{}
	for i := 0; i < 6; i++ {
		tr.Requests = append(tr.Requests, Request{
			ID: i, Arrival: 0, SeqLen: 3, Steps: 2, Prefill: 3, Decode: 2,
		})
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, res)
	if res.PeakBatch != 2 {
		t.Errorf("peak batch %d, want 2 (the KV budget)", res.PeakBatch)
	}
	if res.PeakKVBytes != 2*kv {
		t.Errorf("peak KV bytes %d, want %d", res.PeakKVBytes, 2*kv)
	}
	var queued int
	for _, q := range res.Requests {
		if q.Admitted > q.Arrival {
			queued++
		}
	}
	if queued != 4 {
		t.Errorf("queued %d requests, want 4 (all but the first two)", queued)
	}
}

// TestServeDecodeRejects: decode requests that cannot fit the model's
// cache or the KV budget are config errors, not truncations.
func TestServeDecodeRejects(t *testing.T) {
	over := Trace{Requests: []Request{
		{ID: 0, Arrival: 0, SeqLen: 6, Steps: 4, Prefill: 6, Decode: 4},
	}}
	if _, err := Run(testConfig(), over); err == nil {
		t.Fatal("prefill+decode past MaxSeq accepted")
	}
	cfg := testConfig()
	cfg.KVBudgetBytes = torch.KVCacheBytes(testModel()) - 1
	tr := Trace{Requests: []Request{
		{ID: 0, Arrival: 0, SeqLen: 3, Steps: 2, Prefill: 3, Decode: 2},
	}}
	if _, err := Run(cfg, tr); err == nil {
		t.Fatal("KV budget smaller than one session accepted")
	}
}
