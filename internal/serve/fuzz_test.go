package serve

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzTraceParse hammers the arrival-trace parser with arbitrary bytes:
// it must never panic, malformed input must error, and anything it
// accepts must satisfy the trace invariants and round-trip through
// Format exactly.
func FuzzTraceParse(f *testing.F) {
	f.Add("# gpgpusim-serve-trace v1\n0 6 1\n100 8 2\n")
	f.Add("104 12 1\n2260 12 2\n")
	f.Add("abc 6 1\n")
	f.Add("-5 6 1\n")
	f.Add("200 6 1\n100 6 1\n")
	f.Add("100 6\n")
	f.Add("100 6 1 9\n")
	f.Add("100 0 1\n")
	f.Add("100 6 0\n")
	f.Add("# only comments\n\n\n")
	f.Add("# gpgpusim-serve-trace v2\n0 6 1\n100 4 3\n")
	f.Add("# gpgpusim-serve-trace v2\n100 0 2\n")
	f.Add("# gpgpusim-serve-trace v2\n100 6 0\n")
	f.Add("# gpgpusim-serve-trace v2\n100 -3 2\n")
	f.Add("100 6 2\n# gpgpusim-serve-trace v2\n")
	f.Add("18446744073709551615 1 1\n")
	f.Add("99999999999999999999999999 6 1\n")
	f.Add("\x00\xff garbage")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		if vErr := tr.validate(); vErr != nil {
			t.Fatalf("accepted trace violates invariants: %v\ninput: %q", vErr, in)
		}
		for i, r := range tr.Requests {
			if r.ID != i {
				t.Fatalf("accepted trace has wrong ID at %d: %+v", i, r)
			}
		}
		var buf bytes.Buffer
		if fErr := tr.Format(&buf); fErr != nil {
			t.Fatalf("accepted trace failed to format: %v", fErr)
		}
		again, rErr := ParseTrace(&buf)
		if rErr != nil {
			t.Fatalf("round trip failed to parse: %v", rErr)
		}
		if !reflect.DeepEqual(tr, again) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", again, tr)
		}
	})
}
